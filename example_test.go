package repro_test

import (
	"fmt"
	"log"

	repro "repro"
)

// The paper's motivating example query EQ (Fig. 1): orders for cheap
// parts, with both join predicates error-prone.
func ExampleNewSession() {
	bq := repro.EQBenchmark()
	opts := repro.BenchmarkOptions()
	opts.GridRes = 10 // keep the example fast
	sess, err := repro.NewBenchmarkSession(bq, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("D =", sess.D())
	fmt.Println("SpillBound guarantee =", sess.Guarantee(repro.SpillBound))
	// Output:
	// D = 2
	// SpillBound guarantee = 10
}

func ExampleSession_Run() {
	sess, err := repro.NewBenchmarkSession(repro.EQBenchmark(), func() repro.Options {
		o := repro.BenchmarkOptions()
		o.GridRes = 10
		return o
	}())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run(repro.SpillBound, repro.Location{0.001, 0.0005})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed within the structural bound:", res.SubOpt <= 10)
	// Output:
	// completed within the structural bound: true
}

func ExampleIdentifyEPPs() {
	cat := repro.TPCHCatalog(1)
	epps, err := repro.IdentifyEPPs(cat, `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey
		  AND o.o_orderkey = l.l_orderkey
		  AND p.p_retailprice < 1000`, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(epps), "error-prone predicates identified")
	// Output:
	// 2 error-prone predicates identified
}

func ExampleOptimalContourRatio() {
	ratio, bound := repro.OptimalContourRatio(2)
	fmt.Printf("r* ≈ %.2f improves the 2D bound to %.1f\n", ratio, bound)
	// Output:
	// r* ≈ 1.82 improves the 2D bound to 9.9
}

func ExampleSession_Sweep() {
	sess, err := repro.NewBenchmarkSession(repro.EQBenchmark(), func() repro.Options {
		o := repro.BenchmarkOptions()
		o.GridRes = 8
		return o
	}())
	if err != nil {
		log.Fatal(err)
	}
	sum, err := sess.Sweep(repro.SpillBound, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exhaustive MSO within D²+3D:", sum.MSO <= 10)
	// Output:
	// exhaustive MSO within D²+3D: true
}
