// Join Order Benchmark demonstration (paper Sec 6.5): on JOB-style
// skewed-correlated workloads the native optimizer's worst case explodes,
// while SpillBound and AlignedBound stay within their structural bounds.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	bq := repro.JOB1aBenchmark()
	opts := repro.BenchmarkOptions()
	sess, err := repro.NewBenchmarkSession(bq, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query %s over the IMDB-shaped catalog, D = %d\n\n", bq.Name, sess.D())

	// Native worst case over every (estimate, actual) pair — Eq. (2).
	nat := sess.NativeMSO(1)
	sb, err := sess.Sweep(repro.SpillBound, 0)
	if err != nil {
		log.Fatal(err)
	}
	ab, err := sess.Sweep(repro.AlignedBound, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("native optimizer MSO : %8.0f   (unbounded in principle)\n", nat)
	fmt.Printf("SpillBound MSO       : %8.1f   (guarantee %.0f)\n", sb.MSO, sess.Guarantee(repro.SpillBound))
	fmt.Printf("AlignedBound MSO     : %8.1f   (range [%.0f, %.0f])\n",
		ab.MSO, sess.GuaranteeLowerAB(), sess.Guarantee(repro.AlignedBound))

	// Drill into one painful instance: the estimate is tiny, the actual
	// selectivities are large.
	truth := repro.Location{0.05, 0.1}
	natRun, err := sess.Run(repro.Native, truth)
	if err != nil {
		log.Fatal(err)
	}
	sbRun, err := sess.Run(repro.SpillBound, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat q_a=%v: native sub-opt %.1f, SpillBound sub-opt %.1f\n",
		truth, natRun.SubOpt, sbRun.SubOpt)
	fmt.Println("\nSpillBound trace:")
	fmt.Print(sbRun.Trace)
}
