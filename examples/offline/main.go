// Deployment workflow demonstration (paper Sec 7): automatic error-prone-
// predicate identification, parallel offline ESS construction, persisting
// the built space to disk, and reloading it in a fresh session — the
// "canned queries with offline enumeration" mode — plus processing under a
// bounded cost-model error.
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"
	"time"

	repro "repro"
)

func main() {
	cat := repro.TPCDSCatalog(10)
	sql := `
		SELECT * FROM catalog_returns cr, date_dim d, customer c, customer_address ca
		WHERE cr.cr_returned_date_sk = d.d_date_sk
		  AND cr.cr_returning_customer_sk = c.c_customer_sk
		  AND c.c_current_addr_sk = ca.ca_address_sk
		  AND d.d_year = 1998`

	// 1. Which predicates are error-prone? Sec 7 suggests domain knowledge
	//    or conservatism; the library ranks joins by statistics-derived
	//    error-proneness instead of requiring a manual designation.
	epps, err := repro.IdentifyEPPs(cat, sql, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified error-prone predicates: %v\n", epps)

	// 2. Offline preprocessing, parallelized across cores (Sec 7:
	//    "the contour constructions can be carried out in parallel").
	opts := repro.DefaultOptions()
	opts.GridRes = 24
	start := time.Now()
	sess, err := repro.NewSessionParallel(cat, sql, epps, opts, runtime.NumCPU())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d-contour ESS with %d POSP plans in %v on %d workers\n",
		sess.ContourCount(), sess.POSPSize(), time.Since(start).Round(time.Millisecond), runtime.NumCPU())

	// 3. Persist the investment.
	var disk bytes.Buffer
	if err := sess.SaveESS(&disk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized ESS: %d KiB\n", disk.Len()/1024)

	// 4. A later process reloads it without touching the optimizer.
	start = time.Now()
	warm, err := repro.LoadSession(cat, sql, epps, opts, &disk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded in %v\n\n", time.Since(start).Round(time.Microsecond))

	// 5. Process a query instance — and the same instance under a 30%
	//    bounded cost-model error (guarantees inflate by (1+δ)², Sec 7).
	truth := repro.Location{0.04, 0.1}
	clean, err := warm.Run(repro.SpillBound, truth)
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := warm.RunWithCostError(repro.SpillBound, truth, 0.3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SpillBound at q_a=%v: sub-optimality %.2f (bound %.0f)\n",
		truth, clean.SubOpt, warm.Guarantee(repro.SpillBound))
	fmt.Printf("same instance under δ=0.3 model error: sub-optimality %.2f (inflated bound %.1f)\n",
		noisy.SubOpt, warm.Guarantee(repro.SpillBound)*1.3*1.3)

	// 6. And the paper's Fig. 7 view of the discovery.
	plotted, err := warm.RenderRun(truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(plotted)
}
