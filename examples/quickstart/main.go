// Quickstart: process one query with SpillBound and watch the selectivity
// discovery unfold.
//
// The query is the paper's motivating scenario: two join predicates whose
// selectivities the optimizer cannot estimate reliably. SpillBound never
// estimates them — it discovers them at run time through budgeted
// spill-mode executions, with a worst-case guarantee of D²+3D = 10 that is
// known before the first tuple is read.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// A TPC-DS-shaped catalog at scale factor 10.
	cat := repro.TPCDSCatalog(10)

	// An SPJ query with two error-prone join predicates — the 2D slice of
	// the paper's running TPC-DS Q91 example (Fig. 7): the join with the
	// date dimension is epp X, the customer/address join is epp Y.
	sql := `
		SELECT * FROM catalog_returns cr, date_dim d, customer c, customer_address ca
		WHERE cr.cr_returned_date_sk = d.d_date_sk
		  AND cr.cr_returning_customer_sk = c.c_customer_sk
		  AND c.c_current_addr_sk = ca.ca_address_sk
		  AND d.d_year = 1998`
	epps := []string{
		"cr.cr_returned_date_sk = d.d_date_sk",
		"c.c_current_addr_sk = ca.ca_address_sk",
	}

	opts := repro.DefaultOptions()
	opts.GridRes = 16
	sess, err := repro.NewSession(cat, sql, epps, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("D = %d error-prone predicates\n", sess.D())
	fmt.Printf("POSP: %d plans over the ESS, %d iso-cost contours\n",
		sess.POSPSize(), sess.ContourCount())
	fmt.Printf("SpillBound guarantee (query inspection alone): MSO <= %.0f\n\n",
		sess.Guarantee(repro.SpillBound))

	// The actual selectivities — unknown to the algorithm, used only by
	// the simulated executor. The optimizer's own estimate is wildly off:
	fmt.Printf("optimizer's estimate: %v\n", sess.EstimateLocation())
	truth := repro.Location{0.04, 0.1}
	fmt.Printf("actual selectivities: %v\n\n", truth)

	res, err := sess.Run(repro.SpillBound, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovery trace (pN = spill-mode, PN = regular):")
	fmt.Print(res.Trace)
	fmt.Printf("\ntotal cost %.4g vs oracle-optimal %.4g → sub-optimality %.2f (guarantee %.0f)\n",
		res.TotalCost, res.OptimalCost, res.SubOpt, sess.Guarantee(repro.SpillBound))

	// Contrast with the traditional optimize-then-execute baseline on an
	// instance where the estimate is badly wrong in the other direction.
	hard := repro.Location{1, 1e-5}
	nat, err := sess.Run(repro.Native, hard)
	if err != nil {
		log.Fatal(err)
	}
	sbHard, err := sess.Run(repro.SpillBound, hard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat q_a=%v: native sub-optimality %.0f, SpillBound %.2f\n", hard, nat.SubOpt, sbHard.SubOpt)
	fmt.Printf("native worst case over the whole ESS (Eq. 2): %.0f — versus SpillBound's fixed %.0f\n",
		sess.NativeMSO(1), sess.Guarantee(repro.SpillBound))
}
