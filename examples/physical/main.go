// Physical execution demonstration: the same SpillBound discovery loop that
// normally drives the cost-model simulator here drives a row-at-a-time
// Volcano executor over synthetic data — budgets are enforced and
// selectivities learnt by counting actual tuples, the closest analogue of
// the paper's modified PostgreSQL engine (Sec 6.1).
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// A compact custom schema so row-at-a-time execution finishes in
	// milliseconds.
	cat := repro.NewCatalog("shop")
	for _, t := range []*repro.Table{
		{
			Name: "products", Rows: 500, RowBytes: 120,
			Columns: []repro.Column{
				{Name: "id", Distinct: 500, Min: 1, Max: 500},
				{Name: "price", Distinct: 200, Min: 0, Max: 2000},
			},
		},
		{
			Name: "sales", Rows: 6000, RowBytes: 90,
			Columns: []repro.Column{
				{Name: "product_id", Distinct: 500, Min: 1, Max: 500},
				{Name: "customer_id", Distinct: 1500, Min: 1, Max: 1500},
			},
		},
		{
			Name: "customers", Rows: 1500, RowBytes: 110,
			Columns: []repro.Column{
				{Name: "id", Distinct: 1500, Min: 1, Max: 1500},
			},
		},
	} {
		if err := cat.AddTable(t); err != nil {
			log.Fatal(err)
		}
	}

	sql := `
		SELECT * FROM products p, sales s, customers c
		WHERE p.id = s.product_id AND s.customer_id = c.id
		AND p.price < 1200`
	epps := []string{"p.id = s.product_id", "s.customer_id = c.id"}

	opts := repro.DefaultOptions()
	opts.GridRes = 12
	opts.GridLo = 1e-4
	sess, err := repro.NewSession(cat, sql, epps, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ESS ready: %d POSP plans, %d contours; SpillBound bound D²+3D = %.0f\n\n",
		sess.POSPSize(), sess.ContourCount(), sess.Guarantee(repro.SpillBound))

	for _, algo := range []repro.Algorithm{repro.PlanBouquet, repro.SpillBound, repro.AlignedBound} {
		res, err := sess.RunPhysical(algo, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s: %2d executions on real rows, work %8.0f units, sub-optimality %.2f\n",
			algo, len(res.Steps), res.TotalCost, res.SubOpt)
	}

	fmt.Println("\nSpillBound physical trace (budgets enforced by the tuple-level work meter):")
	res, err := sess.RunPhysical(repro.SpillBound, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Trace)
	fmt.Println("\nselectivities were learnt by counting join output rows — no estimation anywhere.")
}
