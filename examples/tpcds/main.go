// TPC-DS suite comparison: the paper's Sec 6 head-to-head of PlanBouquet,
// SpillBound and AlignedBound across decision-support queries with 3-6
// error-prone predicates. For each query it reports the MSO guarantees and
// the empirical MSO/ASO from an ESS sweep — the data behind Figs. 8, 10,
// 11 and 13.
//
// Grids are shrunk relative to the full experiment harness so the example
// finishes in seconds; run cmd/experiments for the full configuration.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	fmt.Printf("%-10s %2s | %8s %8s | %8s %8s %8s | %7s %7s\n",
		"query", "D", "PB MSOg", "SB MSOg", "PB MSOe", "SB MSOe", "AB MSOe", "SB ASO", "AB ASO")

	for _, bq := range repro.BenchmarkQueries() {
		// Keep the example fast: shrink the grid as D grows.
		opts := repro.BenchmarkOptions()
		switch {
		case bq.D <= 3:
			opts.GridRes = 8
		case bq.D == 4:
			opts.GridRes = 6
		default:
			opts.GridRes = 4
		}
		sess, err := repro.NewBenchmarkSession(bq, opts)
		if err != nil {
			log.Fatal(err)
		}

		const sweepCap = 64
		pb, err := sess.Sweep(repro.PlanBouquet, sweepCap)
		if err != nil {
			log.Fatal(err)
		}
		sb, err := sess.Sweep(repro.SpillBound, sweepCap)
		if err != nil {
			log.Fatal(err)
		}
		ab, err := sess.Sweep(repro.AlignedBound, sweepCap)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-10s %2d | %8.1f %8.0f | %8.1f %8.1f %8.1f | %7.1f %7.1f\n",
			bq.Name, bq.D,
			sess.Guarantee(repro.PlanBouquet), sess.Guarantee(repro.SpillBound),
			pb.MSO, sb.MSO, ab.MSO, sb.ASO, ab.ASO)
	}

	fmt.Println("\nShape to look for (paper Sec 6): SB's structural guarantee undercuts PB's")
	fmt.Println("behavioral one as D grows; empirically SB beats PB, and AB pushes the MSO")
	fmt.Println("toward the 2D+2 linear ideal.")
}
