// Platform independence demonstration (paper Secs 1.1.3 / 1.2): the same
// query is processed under two different platform cost profiles — and on a
// user-defined schema — showing that PlanBouquet's 4(1+λ)ρ guarantee moves
// with the platform while SpillBound's D²+3D is fixed by the query alone.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// A custom catalog: a small web-analytics star schema.
	cat := repro.NewCatalog("webshop")
	for _, t := range []*repro.Table{
		{
			Name: "events", Rows: 40_000_000, RowBytes: 96,
			Columns: []repro.Column{
				{Name: "user_id", Distinct: 1_500_000, Min: 1, Max: 1_500_000},
				{Name: "page_id", Distinct: 80_000, Min: 1, Max: 80_000},
				{Name: "day_id", Distinct: 1461, Min: 1, Max: 1461},
				{Name: "dwell_ms", Distinct: 60000, Min: 0, Max: 600000},
			},
		},
		{
			Name: "users", Rows: 1_500_000, RowBytes: 64,
			Columns: []repro.Column{
				{Name: "id", Distinct: 1_500_000, Min: 1, Max: 1_500_000},
				{Name: "country", Distinct: 120, Min: 1, Max: 120},
			},
		},
		{
			Name: "pages", Rows: 80_000, RowBytes: 200,
			Columns: []repro.Column{
				{Name: "id", Distinct: 80_000, Min: 1, Max: 80_000},
				{Name: "section", Distinct: 40, Min: 1, Max: 40},
			},
		},
		{
			Name: "days", Rows: 1461, RowBytes: 32,
			Columns: []repro.Column{
				{Name: "id", Distinct: 1461, Min: 1, Max: 1461},
				{Name: "year", Distinct: 4, Min: 2022, Max: 2025},
			},
		},
	} {
		if err := cat.AddTable(t); err != nil {
			log.Fatal(err)
		}
	}

	sql := `
		SELECT * FROM events e, users u, pages p, days d
		WHERE e.user_id = u.id AND e.page_id = p.id AND e.day_id = d.id
		AND u.country = 44 AND d.year = 2024`
	epps := []string{"e.user_id = u.id", "e.page_id = p.id"}

	for _, params := range []repro.CostParams{repro.PostgresProfile(), repro.CommercialProfile()} {
		opts := repro.DefaultOptions()
		opts.Params = params
		opts.GridRes = 14
		sess, err := repro.NewSession(cat, sql, epps, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profile %-16s: POSP %2d plans, %2d contours | PB MSOg = %5.1f | SB MSOg = %.0f\n",
			params.Name, sess.POSPSize(), sess.ContourCount(),
			sess.Guarantee(repro.PlanBouquet), sess.Guarantee(repro.SpillBound))
	}

	fmt.Println("\nPB's bound depends on the contour plan density ρ of the profile at hand;")
	fmt.Println("SB's bound is D²+3D from the query text alone — issue it before touching data.")
}
