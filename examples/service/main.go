// Service demonstration: the library behind an HTTP API (cmd/rqpd's
// handler), exercised in-process — the "automated assistant" deployment
// the paper's conclusions sketch. A client creates a session (paying the
// offline ESS construction once), inspects its guarantees, runs instances
// and sweeps robustness metrics.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/server"
)

func main() {
	ts := httptest.NewServer(server.New().Handler())
	defer ts.Close()
	fmt.Println("rqpd-style service running at", ts.URL)

	// Create a session for the paper's example query.
	created := post(ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 12})
	fmt.Printf("\nsession %v: D=%v, POSP %v plans, %v contours\n",
		created["id"], created["d"], created["pospSize"], created["contours"])
	fmt.Printf("guarantees: PB %.1f | SB %.0f | AB [%.0f, %.0f]\n",
		created["pbGuarantee"], created["sbGuarantee"],
		created["abGuaranteeLow"], created["abGuaranteeHigh"])

	id := created["id"].(string)

	// Process one instance.
	run := post(ts.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound",
		"truth":     []float64{0.001, 0.0004},
	})
	fmt.Printf("\nspillbound run: %v steps, sub-optimality %.2f (guarantee %v)\n",
		run["steps"], run["subOpt"], run["guarantee"])

	// Whole-ESS robustness.
	var sweep map[string]any
	get(ts.URL+"/sessions/"+id+"/sweep?algorithm=alignedbound&max=64", &sweep)
	fmt.Printf("alignedbound sweep: MSO %.2f, ASO %.2f over %v locations\n",
		sweep["mso"], sweep["aso"], sweep["locations"])
}

func post(url string, payload any) map[string]any {
	body, err := json.Marshal(payload)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if e, bad := out["error"]; bad {
		log.Fatalf("server error: %v", e)
	}
	return out
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
