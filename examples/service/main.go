// Service demonstration: the library behind an HTTP API (cmd/rqpd's
// handler), exercised in-process — the "automated assistant" deployment
// the paper's conclusions sketch. A client creates a session (paying the
// offline ESS construction once), inspects its guarantees, runs instances
// and sweeps robustness metrics.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/server"
)

func main() {
	ts := httptest.NewServer(server.New().Handler())
	defer ts.Close()
	fmt.Println("rqpd-style service running at", ts.URL)

	// Create a session for the paper's example query. Creation is
	// asynchronous (202 Accepted): the parallel ESS build runs in the
	// background while the session resource reports its progress.
	created := post(ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 12})
	id := created["id"].(string)
	fmt.Printf("\nsession %v accepted: status %v\n", id, created["status"])

	// Poll until the build is ready.
	info := created
	for info["status"] != "ready" {
		if info["status"] == "failed" {
			log.Fatalf("build failed: %v", info["buildError"])
		}
		if prog, ok := info["progress"].(map[string]any); ok {
			fmt.Printf("building: %v/%v cells\n", prog["cellsDone"], prog["cellsTotal"])
		}
		time.Sleep(20 * time.Millisecond)
		info = map[string]any{}
		get(ts.URL+"/v1/sessions/"+id, &info)
	}
	fmt.Printf("session %v ready: D=%v, POSP %v plans, %v contours\n",
		id, info["d"], info["pospSize"], info["contours"])
	fmt.Printf("guarantees: PB %.1f | SB %.0f | AB [%.0f, %.0f]\n",
		info["pbGuarantee"], info["sbGuarantee"],
		info["abGuaranteeLow"], info["abGuaranteeHigh"])

	// Process one instance.
	run := post(ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound",
		"truth":     []float64{0.001, 0.0004},
	})
	fmt.Printf("\nspillbound run: %v steps, sub-optimality %.2f (guarantee %v)\n",
		run["steps"], run["subOpt"], run["guarantee"])

	// Whole-ESS robustness (the sweep is sharded across all cores).
	var sweep map[string]any
	get(ts.URL+"/v1/sessions/"+id+"/sweep?algorithm=alignedbound&max=64", &sweep)
	fmt.Printf("alignedbound sweep: MSO %.2f, ASO %.2f over %v locations\n",
		sweep["mso"], sweep["aso"], sweep["locations"])
}

func post(url string, payload any) map[string]any {
	body, err := json.Marshal(payload)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if e, bad := out["error"]; bad {
		log.Fatalf("server error: %v", e)
	}
	return out
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
