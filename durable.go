package repro

import (
	"context"
	"fmt"

	"repro/internal/faults"
	"repro/internal/runstate"
	"repro/internal/trace"
)

// This file exposes the crash-tolerance surface of the library: durable runs
// that checkpoint their discovery state at every contour boundary, and the
// resume path that rehydrates an interrupted run from its last snapshot.
//
// The discovery state of the paper's algorithms is monotone — half-space
// pruning (Lemma 3.1) only shrinks the candidate region, the contour index
// only advances, the budget ledger only grows — so any contour-boundary
// snapshot is a valid restart point, and resuming redoes at most the one
// contour iteration that was in flight when the process died (bounded redo:
// total spend across incarnations ≤ uninterrupted spend + one contour's
// executions). See DESIGN.md, "Crash tolerance & durability".

// ErrRunCrashed reports whether the error came from an injected checkpoint
// crash (FaultPlan.CrashAtCheckpoint): the run aborted as if the process had
// died at a contour boundary, and ResumeRun will pick it up from the last
// durable snapshot.
func ErrRunCrashed(err error) bool { return faults.IsCrash(err) }

// ErrRunFenced reports whether the error came from an ownership-epoch
// fencing rejection: the session failed over to another owner while this
// process was still executing the run, and the write was refused so the
// zombie incarnation cannot clobber the new owner's state. Terminal — do
// not retry, degrade, or resume from this process.
func ErrRunFenced(err error) bool { return runstate.IsFenced(err) }

// RunDurable is RunContext with crash tolerance: the run's discovery state is
// checkpointed atomically under Options.DataDir at every contour boundary,
// keyed by runID. If the process dies mid-run, ResumeRun(runID) continues
// from the last snapshot instead of restarting from scratch. A completed run
// leaves a terminal snapshot behind (for inspection; it is not resumable).
// The session must have been created with Options.DataDir set.
func (s *Session) RunDurable(ctx context.Context, a Algorithm, truth Location, runID string) (RunResult, error) {
	if err := s.requireStore(); err != nil {
		return RunResult{}, err
	}
	st, err := strategyFor(a)
	if err != nil {
		return RunResult{}, err
	}
	if !st.Info().Resumable {
		// The native baseline is a single unbudgeted execution: there is no
		// discovery state to checkpoint and nothing to resume. Any other
		// non-resumable registered strategy is rejected the same way.
		return RunResult{}, fmt.Errorf("repro: durable runs need a resumable (contour- or ladder-budgeted) strategy; got %v", a)
	}
	// Pin the run's trace identity before the first checkpoint: the
	// context's traceparent if one is attached, a fresh one otherwise. A
	// crash-resumed incarnation reads it back, so the whole run — across
	// process restarts — is one trace.
	tp, ok := trace.FromContext(ctx)
	if !ok {
		tp = trace.New()
		ctx = trace.WithContext(ctx, tp)
	}
	rs := runstate.RunState{
		RunID:     runID,
		Algorithm: a.String(),
		Truth:     append([]float64(nil), truth...),
		Seed:      s.opts.sweepSeed(),
		TraceID:   tp.TraceID,
		// Stamp the ownership epoch the writer holds right now (disk truth,
		// not a process-lifetime cache): a healed former owner that starts
		// new runs after a failover must stamp the advanced epoch, not the
		// one it booted with.
		Epoch: s.store.Epoch(),
	}
	// Persist the initial (empty) state before the first execution, so a
	// crash at the very first checkpoint still leaves a resumable file.
	if err := s.store.SaveRun(&rs); err != nil {
		return RunResult{}, err
	}
	return s.runDurable(ctx, a, truth, runstate.NewTracker(s.store, rs), nil)
}

// ResumeRun rehydrates an interrupted durable run from its last checkpoint
// and drives it to completion: the learnt selectivities (and their
// half-space prunes), the restart contour and the budget ledger are restored
// before the first execution, a run_resume event opens the new incarnation's
// stream, and the result reports Resumed=true with TotalCost spanning every
// incarnation's checkpointed spend.
func (s *Session) ResumeRun(ctx context.Context, runID string) (RunResult, error) {
	if err := s.requireStore(); err != nil {
		return RunResult{}, err
	}
	rs, err := s.store.LoadRun(runID)
	if err != nil {
		return RunResult{}, fmt.Errorf("repro: %w", err)
	}
	if rs.Completed {
		return RunResult{}, fmt.Errorf("repro: run %s already completed; nothing to resume", runID)
	}
	a, err := ParseAlgorithm(rs.Algorithm)
	if err != nil {
		return RunResult{}, err
	}
	if len(rs.Truth) != s.D() {
		return RunResult{}, fmt.Errorf("repro: run %s has %d dims, session query has %d epps", runID, len(rs.Truth), s.D())
	}
	if rs.TraceID != "" {
		// Rejoin the original incarnation's trace: the resumed run's spans
		// carry the same trace ID, with a deterministic parent span ID
		// derived from it (the resume has no live caller span to inherit).
		ctx = trace.WithContext(ctx, trace.Traceparent{
			TraceID: rs.TraceID,
			SpanID:  trace.SpanIDFor(rs.TraceID, "resume:"+runID),
			Sampled: true,
		})
	}
	// The resuming incarnation owns the run under the session's current
	// ownership epoch — after a failover advanced it, the previous owner's
	// still-running incarnation is fenced out of the store (see epoch.go).
	rs.Epoch = s.store.Epoch()
	resume := rs.Discovery.Clone()
	return s.runDurable(ctx, a, Location(rs.Truth), runstate.NewTracker(s.store, *rs), &resume)
}

// runDurable drives a tracked run and seals the terminal snapshot on any
// completed outcome (success or degraded completion); crashed and aborted
// runs keep their last checkpoint so they stay resumable.
func (s *Session) runDurable(ctx context.Context, a Algorithm, truth Location, tr *runstate.Tracker, resume *runstate.Discovery) (RunResult, error) {
	res, err := s.runFull(ctx, a, truth, nil, tr, resume)
	if err != nil {
		return res, err
	}
	if ferr := tr.Finish(); ferr != nil {
		return res, fmt.Errorf("repro: run %s finished but its terminal snapshot failed: %w", res.RunID, ferr)
	}
	return res, nil
}

// DurableRuns lists every durable run snapshot in the session's data
// directory, completed or not, sorted by run ID.
func (s *Session) DurableRuns() ([]string, error) {
	if err := s.requireStore(); err != nil {
		return nil, err
	}
	ids, err := s.store.Runs()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return ids, nil
}

// InterruptedRuns lists the durable runs whose last snapshot is not terminal
// — the runs a recovering process should ResumeRun (sorted by run ID).
func (s *Session) InterruptedRuns() ([]string, error) {
	if err := s.requireStore(); err != nil {
		return nil, err
	}
	ids, err := s.store.Interrupted()
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return ids, nil
}

// DurableRunState reports a durable run's checkpointed progress: the restart
// contour, the budget ledger accumulated across incarnations, and whether
// the run reached a terminal snapshot.
func (s *Session) DurableRunState(runID string) (contour int, spent float64, completed bool, err error) {
	if err := s.requireStore(); err != nil {
		return 0, 0, false, err
	}
	rs, err := s.store.LoadRun(runID)
	if err != nil {
		return 0, 0, false, fmt.Errorf("repro: %w", err)
	}
	return rs.Discovery.Contour, rs.Discovery.Spent, rs.Completed, nil
}

// DeleteRun removes a durable run's snapshot (missing snapshots are not an
// error).
func (s *Session) DeleteRun(runID string) error {
	if err := s.requireStore(); err != nil {
		return err
	}
	return s.store.DeleteRun(runID)
}

// DataDir returns the session's durable data directory ("" when the session
// is not durable).
func (s *Session) DataDir() string {
	if s.store == nil {
		return ""
	}
	return s.store.Dir()
}

// OwnershipEpoch returns the session's current ownership epoch (0 until the
// first failover advances it).
func (s *Session) OwnershipEpoch() (int64, error) {
	if err := s.requireStore(); err != nil {
		return 0, err
	}
	return s.store.Epoch(), nil
}

// AdvanceOwnershipEpoch fences out every previous owner of this session's
// durable state: runs started or resumed after the advance stamp the new
// epoch, and checkpoints stamped with any older epoch are rejected with a
// terminal fencing error (see ErrRunFenced). A fleet node calls this once
// when it adopts an orphaned session, before resuming its interrupted runs;
// node names the new owner for diagnostics.
func (s *Session) AdvanceOwnershipEpoch(node string) (int64, error) {
	if err := s.requireStore(); err != nil {
		return 0, err
	}
	return s.store.AdvanceEpoch(node)
}

// requireStore guards the durable API against sessions built without a data
// directory.
func (s *Session) requireStore() error {
	if s.store == nil {
		return fmt.Errorf("repro: session is not durable (set Options.DataDir)")
	}
	return nil
}

// RunDurableWithFaults is RunDurable with a fault plan attached — the chaos
// entry point for crash-tolerance testing (FaultPlan.CrashAtCheckpoint kills
// the run loop at a chosen contour boundary; see ErrRunCrashed).
func (s *Session) RunDurableWithFaults(ctx context.Context, a Algorithm, truth Location, runID string, fp *FaultPlan) (RunResult, error) {
	return s.RunDurable(faults.With(ctx, fp.internal()), a, truth, runID)
}

// ResumeRunWithFaults is ResumeRun with a fault plan attached, so chaos
// suites can crash a run repeatedly across successive resumes.
func (s *Session) ResumeRunWithFaults(ctx context.Context, runID string, fp *FaultPlan) (RunResult, error) {
	return s.ResumeRun(faults.With(ctx, fp.internal()), runID)
}
