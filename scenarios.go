package repro

import (
	"context"
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/viz"
)

// This file exposes the error-regime scenario machinery: seeded scenario
// suites sweeping the three q-error regimes (benign, regret-correlated,
// adversarial — see PAPERS.md "When Does q-error Predict Plan Regret?"),
// per-regime MSO/ASO sweeps with a guardrail-intervention census, and the
// Graefe-style robustness atlas built from them.

// The three error regimes, as reported by Scenario.Regime and
// RegimeSummary.Regime.
const (
	// RegimeBenign: estimation error present, plan regret absent.
	RegimeBenign = "benign"
	// RegimeCorrelated: damage proportional to the error magnitude (budget
	// overruns; the watchdog's regime).
	RegimeCorrelated = "regret-correlated"
	// RegimeAdversarial: damage decoupled from the error magnitude (ESS
	// escapes, transient failures, checkpoint crashes).
	RegimeAdversarial = "adversarial"
)

// Regimes returns the regime labels in canonical sweep order.
func Regimes() []string {
	out := make([]string, 0, 3)
	for _, r := range scenario.Regimes() {
		out = append(out, r.String())
	}
	return out
}

// Scenario is one named error-regime composition of fault knobs.
type Scenario struct {
	// Name is "<regime>-<n>", unique within a suite.
	Name string
	// Regime is the scenario's error regime (RegimeBenign, RegimeCorrelated
	// or RegimeAdversarial).
	Regime string
	// Faults is the fault composition applied to every run under the
	// scenario (a fresh injection plan is instantiated per run).
	Faults FaultPlan
}

// ScenarioSuite generates perRegime scenarios for each of the three q-error
// regimes, deterministically from the seed. Knob values depend only on
// (seed, regime, index), so suites of different sizes agree on their common
// scenarios, and the leading scenario of each regime has a pinned fault
// class: "regret-correlated-1" always overruns budgets (watchdog drill),
// "adversarial-1" always skews monitoring past the ESS boundary (escape
// drill).
func ScenarioSuite(seed int64, perRegime int) []Scenario {
	suite := scenario.Suite(seed, perRegime)
	out := make([]Scenario, len(suite))
	for i, sc := range suite {
		out[i] = fromInternal(sc)
	}
	return out
}

// ScenarioByName regenerates the named scenario from the seed
// ("adversarial-2" resolves identically in every process using the same
// seed) — the lookup backing the daemon's scenario-tagged run requests.
func ScenarioByName(seed int64, name string) (Scenario, bool) {
	sc, ok := scenario.ByName(seed, name)
	if !ok {
		return Scenario{}, false
	}
	return fromInternal(sc), true
}

func fromInternal(sc scenario.Scenario) Scenario {
	k := sc.Knobs
	return Scenario{
		Name:   sc.Name,
		Regime: sc.Regime.String(),
		Faults: FaultPlan{
			FailExecAt:        k.FailExecAt,
			FailExecCount:     k.FailExecCount,
			PanicExecAt:       k.PanicExecAt,
			FailCostEvalAt:    k.FailCostEvalAt,
			Latency:           k.Latency,
			BudgetOverrun:     k.BudgetOverrun,
			SkewLearnedAt:     k.SkewLearnedAt,
			SkewLearnedFactor: k.SkewLearnedFactor,
			CrashAtCheckpoint: k.CrashAtCheckpoint,
		},
	}
}

// RegimeSummary aggregates one algorithm's robustness within one error
// regime: MSO/ASO over every (scenario, location) pair plus the census of
// guardrail interventions — the per-regime numbers that one aggregate MSO
// hides (a strategy can look robust on average while an entire regime is
// carried by the escape fallback).
type RegimeSummary struct {
	// Regime is the regime label (RegimeBenign, ...).
	Regime string
	// Algorithm is the evaluated strategy.
	Algorithm Algorithm
	// Scenarios is how many suite scenarios fed the aggregate.
	Scenarios int
	// MSO is the worst sub-optimality over every (scenario, location) pair.
	MSO float64
	// ASO is the average sub-optimality.
	ASO float64
	// Locations counts the accounted (scenario, location) evaluations.
	Locations int
	// WorstLocation attains the MSO (nil when nothing ran).
	WorstLocation Location
	// GuardVerdicts counts runs by guard intervention: "budget_abort",
	// "ess_escape", "crashed". Clean runs are not counted.
	GuardVerdicts map[string]int
	// Degraded counts runs that fell back to the Native plan.
	Degraded int
	// Skipped counts evaluations excluded from the aggregates (unexpected
	// terminal errors).
	Skipped int
}

// SweepScenarios evaluates the algorithm under every scenario of the suite
// at (a sample of) every ESS grid cell and aggregates per regime, in
// canonical regime order. Each (scenario, location) evaluation is a full
// guarded run — fault injection, watchdog, escape fallback, retry ladder —
// so the summaries report the operational robustness of the strategy, not
// just its clean-path cost. maxLocations caps the per-scenario location
// sample (0 = exhaustive); the sample is shared across scenarios and
// algorithms (Options.SweepSeed), so strategies are compared on identical
// ground truth.
func (s *Session) SweepScenarios(ctx context.Context, a Algorithm, suite []Scenario, maxLocations int) ([]RegimeSummary, error) {
	if len(suite) == 0 {
		return nil, fmt.Errorf("repro: empty scenario suite")
	}
	regimeOf := make([]string, len(suite))
	for i, sc := range suite {
		regimeOf[i] = sc.Regime
	}
	run := func(idx int, truth Location) metrics.ScenarioOutcome {
		fctx := faults.With(ctx, suite[idx].Faults.internal())
		res, err := s.runContext(fctx, a, truth, nil)
		if err != nil {
			if faults.IsCrash(err) {
				// The crash left a partial (but real) ledger: account the
				// spend and record the verdict; recovery is ResumeRun's job.
				return metrics.ScenarioOutcome{
					TotalCost: res.TotalCost, GuardVerdict: "crashed", Degraded: res.Degraded,
				}
			}
			// Unaccountable (cancellation or an unexpected terminal error):
			// exclude the unit from the aggregates.
			return metrics.ScenarioOutcome{Skip: true}
		}
		return metrics.ScenarioOutcome{
			TotalCost: res.TotalCost, GuardVerdict: res.GuardVerdict, Degraded: res.Degraded,
		}
	}
	results, err := metrics.ScenarioSweepContext(ctx, s.space, regimeOf, run, metrics.SweepOptions{
		MaxLocations: maxLocations,
		Seed:         s.opts.sweepSeed(),
		Workers:      s.opts.workers(),
	})
	if err != nil {
		return nil, fmt.Errorf("repro: scenario sweep aborted: %w", err)
	}
	out := make([]RegimeSummary, len(results))
	for i, r := range results {
		out[i] = RegimeSummary{
			Regime: r.Regime, Algorithm: a, Scenarios: r.Scenarios,
			MSO: r.MSO, ASO: r.ASO, Locations: r.Locations,
			GuardVerdicts: r.Guard, Degraded: r.Degraded, Skipped: r.Skipped,
		}
		if r.MSOCell >= 0 {
			out[i].WorstLocation = s.space.Grid.Location(r.MSOCell)
		}
	}
	return out, nil
}

// Atlas computes the per-regime robustness atlas of a 2D session: for every
// requested algorithm and every regime of the suite, a map of the worst
// sub-optimality observed at each grid cell across the regime's scenarios,
// overlaid with the guardrail interventions that occurred there — the
// Graefe-style robustness map ("Visualizing the robustness of query
// execution", PAPERS.md) extended with the runtime-guard dimension.
// maxLocations caps the per-scenario cell sample (0 = exhaustive); unswept
// cells render as unknown. Render the result with viz.AtlasSVG / AtlasJSON,
// or serve it from the daemon at GET /v1/atlas.
func (s *Session) Atlas(ctx context.Context, algos []Algorithm, suite []Scenario, maxLocations int) (*viz.Atlas, error) {
	if s.D() != 2 {
		return nil, fmt.Errorf("repro: the robustness atlas needs a 2D session, have %dD", s.D())
	}
	if len(algos) == 0 {
		algos = defaultAtlasAlgorithms()
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("repro: empty scenario suite")
	}
	name := s.query.Name
	if name == "" {
		name = s.query.String()
	}
	g := s.space.Grid
	atlas := &viz.Atlas{
		Query:   name,
		NX:      g.Res(0),
		NY:      g.Res(1),
		SelX:    append([]float64(nil), g.Points[0]...),
		SelY:    append([]float64(nil), g.Points[1]...),
		Regimes: Regimes(),
	}
	regimeOf := make([]string, len(suite))
	for i, sc := range suite {
		regimeOf[i] = sc.Regime
	}
	for _, a := range algos {
		run := func(idx int, truth Location) metrics.ScenarioOutcome {
			fctx := faults.With(ctx, suite[idx].Faults.internal())
			res, err := s.runContext(fctx, a, truth, nil)
			if err != nil {
				if faults.IsCrash(err) {
					return metrics.ScenarioOutcome{TotalCost: res.TotalCost, GuardVerdict: "crashed"}
				}
				return metrics.ScenarioOutcome{Skip: true}
			}
			return metrics.ScenarioOutcome{
				TotalCost: res.TotalCost, GuardVerdict: res.GuardVerdict, Degraded: res.Degraded,
			}
		}
		results, err := metrics.ScenarioSweepContext(ctx, s.space, regimeOf, run, metrics.SweepOptions{
			MaxLocations: maxLocations,
			Seed:         s.opts.sweepSeed(),
			Workers:      s.opts.workers(),
		})
		if err != nil {
			return nil, fmt.Errorf("repro: atlas sweep aborted: %w", err)
		}
		for _, r := range results {
			m := viz.AtlasMap{
				Algorithm: a.String(), Regime: r.Regime,
				MSO: r.MSO, ASO: r.ASO,
				Guard: r.Guard, Degraded: r.Degraded,
				SubOpt:  make([]float64, g.Size()),
				Verdict: make([]string, g.Size()),
			}
			for i, ci := range r.Cells {
				m.SubOpt[ci] = r.SubOpt[i]
				m.Verdict[ci] = r.Verdict[i]
			}
			atlas.Maps = append(atlas.Maps, m)
		}
	}
	return atlas, nil
}

// defaultAtlasAlgorithms is the atlas's default row set: the paper's
// discovery trio in their canonical order, followed by every other
// registered non-baseline strategy (the selection family, external
// registrations) sorted by name — so new strategies grow atlas rows
// without callers naming them.
func defaultAtlasAlgorithms() []Algorithm {
	algos := []Algorithm{PlanBouquet, SpillBound, AlignedBound}
	listed := map[Algorithm]bool{Native: true, PlanBouquet: true, SpillBound: true, AlignedBound: true}
	for _, name := range StrategyNames() {
		if a := Algorithm(name); !listed[a] {
			algos = append(algos, a)
		}
	}
	return algos
}
