package repro

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/runstate"
)

// TestDurableEpochFencing drives the full zombie-owner scenario through the
// run layer: an owner starts a durable run, a new owner advances the
// session's ownership epoch mid-run (what fleet adoption does after a
// failover), and the old owner's next checkpoint write must be rejected
// terminally — no retry ladder, no Native degradation, and a snapshot still
// resumable by the new owner from the last pre-fence checkpoint, replaying a
// suffix identical to the uninterrupted baseline.
func TestDurableEpochFencing(t *testing.T) {
	dir := t.TempDir()
	sess := newDurableTestSession(t, dir)
	ctx := context.Background()
	truth := Location{0.8, 0.01, 0.3}

	base, err := sess.RunDurable(ctx, SpillBound, truth, "fence-base")
	if err != nil {
		t.Fatal(err)
	}
	if epoch, err := sess.OwnershipEpoch(); err != nil || epoch != 0 {
		t.Fatalf("fresh session epoch = %d, %v; fencing must be inert at 0", epoch, err)
	}

	// A second store handle over the same durable state: the "new owner"
	// that advances the fence, and the poller that tells us the victim's
	// first checkpoint has landed.
	st, err := runstate.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Race the advance against the in-flight run: per-execution latency
	// keeps the run alive long after its first checkpoint, and the advance
	// fires as soon as that checkpoint is durable — every later write of the
	// epoch-0 incarnation must fence.
	advanced := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := st.LoadRun("fence-victim"); err == nil {
				break
			}
			if time.Now().After(deadline) {
				advanced <- errors.New("victim run never checkpointed")
				return
			}
			time.Sleep(time.Millisecond)
		}
		_, err := st.AdvanceEpoch("node-b")
		advanced <- err
	}()

	victim, err := sess.RunDurableWithFaults(ctx, SpillBound, truth, "fence-victim",
		&FaultPlan{Latency: 3 * time.Millisecond})
	if aerr := <-advanced; aerr != nil {
		t.Fatal(aerr)
	}
	if !ErrRunFenced(err) {
		t.Fatalf("superseded owner's run: want fenced error, got %v", err)
	}
	if ErrRunCrashed(err) {
		t.Fatalf("fenced error misclassified as crash: %v", err)
	}
	// Terminal rejection: the fenced incarnation must not have retried its
	// way into the Native fallback — the run is simply over for this owner.
	if victim.Degraded {
		t.Fatalf("fenced run degraded to Native: %+v", victim.DegradedReason)
	}

	// The last pre-fence checkpoint is intact and resumable.
	if _, _, completed, err := sess.DurableRunState("fence-victim"); err != nil || completed {
		t.Fatalf("fenced run snapshot: completed=%v err=%v; want a resumable checkpoint", completed, err)
	}

	// The zombie's direct checkpoint write is rejected with the sentinel.
	zerr := st.SaveRun(&runstate.RunState{RunID: "fence-zombie", Algorithm: "spillbound", Epoch: 0})
	if !errors.Is(zerr, runstate.ErrFenced) || !ErrRunFenced(zerr) {
		t.Fatalf("stale-epoch write: want ErrFenced, got %v", zerr)
	}
	if epoch, node, err := st.LoadEpoch(); err != nil || epoch != 1 || node != "node-b" {
		t.Fatalf("epoch record = (%d, %q, %v), want (1, node-b)", epoch, node, err)
	}

	// The new owner resumes from the last valid checkpoint. A fresh session
	// over the same durable state stands in for the adopting node; ResumeRun
	// re-stamps the current epoch, so the resume's own writes are not fenced.
	owner := newDurableTestSession(t, dir)
	resumed, err := owner.ResumeRun(ctx, "fence-victim")
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Fatal("resumed result not flagged as resumed")
	}

	// Identical replay: the resumed incarnation is a step-for-step suffix of
	// the uninterrupted baseline and lands on the same total.
	p := len(base.Steps) - len(resumed.Steps)
	if p < 0 {
		t.Fatalf("resumed run took %d steps, baseline only %d", len(resumed.Steps), len(base.Steps))
	}
	for i, step := range resumed.Steps {
		want := base.Steps[p+i]
		if step.Contour != want.Contour || step.SpillDim != want.SpillDim ||
			step.PlanID != want.PlanID || step.Spent != want.Spent || step.Completed != want.Completed {
			t.Fatalf("step %d diverges from baseline suffix:\n got %+v\nwant %+v", i, step, want)
		}
	}
	if relDiff(resumed.TotalCost, base.TotalCost) > 1e-9 {
		t.Errorf("resumed total %g != baseline %g", resumed.TotalCost, base.TotalCost)
	}
	if _, _, completed, err := owner.DurableRunState("fence-victim"); err != nil || !completed {
		t.Errorf("resumed run's snapshot not terminal (err=%v)", err)
	}
}

// TestDurableEpochFencingInertWithoutFailover pins the compatibility
// contract: a session that never fails over never advances its epoch, so
// every write (epoch 0 vs absent epoch file) passes and crash-resume
// behaves exactly as before the fencing layer existed.
func TestDurableEpochFencingInertWithoutFailover(t *testing.T) {
	dir := t.TempDir()
	sess := newDurableTestSession(t, dir)
	ctx := context.Background()
	truth := Location{0.8, 0.01, 0.3}

	_, err := sess.RunDurableWithFaults(ctx, SpillBound, truth, "inert", &FaultPlan{CrashAtCheckpoint: 1})
	if !ErrRunCrashed(err) {
		t.Fatalf("want crash, got %v", err)
	}
	if resumed, err := sess.ResumeRun(ctx, "inert"); err != nil || !resumed.Resumed {
		t.Fatalf("single-owner resume must be untouched by fencing: %+v, %v", resumed, err)
	}
	if epoch, err := sess.OwnershipEpoch(); err != nil || epoch != 0 {
		t.Fatalf("epoch advanced without a failover: %d, %v", epoch, err)
	}
}
