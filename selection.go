// The selection strategy family: non-discovery robust plan selection.
// Where the paper's discovery algorithms (PlanBouquet/SpillBound/
// AlignedBound) learn selectivities at run time, these strategies commit to
// ONE robust plan up front — scored over an error profile around the
// optimizer's estimate — and execute it under a budget-doubling ladder so
// the charged ledger stays bounded even when the choice was wrong:
//
//   - penaltyaware: PARQO-style robust selection (PAPERS.md). Each POSP
//     plan is scored by a blend of expected and worst-case penalty
//     (cost minus the oracle optimum) over a sampled error profile; the
//     minimizer wins.
//   - probabilistic: approximate-probabilistic plan evaluation à la
//     Kamali et al. — pick the plan minimizing expected cost under a
//     sampled selectivity distribution (no oracle calls, no penalty).
//   - minmaxregret: minmax-regret selection ordering (Alyoubi/Helmer/
//     Wood) — scenarios are the corners of a multiplicative uncertainty
//     box around the estimate plus the estimate itself; the plan with the
//     smallest maximum regret wins.
//
// None of the three carries an MSO guarantee (Session.Guarantee reports
// +Inf); the sweeps and the robustness atlas exist to measure how far
// profile-driven selection actually lands from the discovery bounds.
package repro

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

const (
	// selectionSamples is the error-profile sample count: enough to cover
	// a multi-decade q-error ball, small enough that plan scoring stays a
	// one-off session cost (POSP size × samples model evaluations).
	selectionSamples = 64
	// selectionSigmaDecades is the error profile's log10-normal standard
	// deviation: 1 decade matches the paper's observation that production
	// estimates routinely err by orders of magnitude.
	selectionSigmaDecades = 1.0
	// penaltyAlpha blends worst-case into expected penalty for the
	// penalty-aware score: score = (1-α)·E[penalty] + α·max(penalty).
	penaltyAlpha = 0.5
	// regretFactor spans minmax-regret's uncertainty box: each dimension
	// ranges over [est/F, est·F] (two decades total), clamped to the grid.
	regretFactor = 100.0
	// maxLadderSteps caps the execution ladder's budget doublings — 64
	// doublings exceed any finite cost surface; hitting the cap means the
	// cost model returned a non-finite execution cost.
	maxLadderSteps = 64
)

// selectionChoice is one strategy's committed decision for a session: the
// chosen POSP plan, its score, and the ladder's starting budget (the plan's
// predicted cost at the estimate, so a correct estimate completes in one
// step at its native cost).
type selectionChoice struct {
	planID     int
	score      float64
	initBudget float64
}

// selectionFor returns the memoized choice for the named strategy,
// computing it on first use. Registered strategy values are shared across
// sessions, so the memo lives on the Session (guarded by selMu); the
// chooser runs at most once per (session, strategy).
func (s *Session) selectionFor(name string, choose func(*Session) selectionChoice) selectionChoice {
	s.selMu.Lock()
	defer s.selMu.Unlock()
	if ch, ok := s.selections[name]; ok {
		return ch
	}
	ch := choose(s)
	if s.selections == nil {
		s.selections = make(map[string]selectionChoice)
	}
	s.selections[name] = ch
	return ch
}

// errorProfile draws n selectivity locations around the estimate: each
// dimension is perturbed by a log10-normal factor of sigma decades, clamped
// to the grid's selectivity range. The profile is deterministic in the
// seed, so plan choices — and therefore runs, sweeps and checkpoints — are
// reproducible.
func errorProfile(s *Session, seed int64, n int, sigma float64) []Location {
	est := s.EstimateLocation()
	g := s.space.Grid
	rng := rand.New(rand.NewSource(seed))
	profile := make([]Location, n)
	for i := range profile {
		q := make(Location, len(est))
		for d := range q {
			q[d] = clampSel(est[d]*math.Pow(10, sigma*rng.NormFloat64()), g.Points[d][0])
		}
		profile[i] = q
	}
	return profile
}

// clampSel clamps a perturbed selectivity into the grid's [lo, 1] range.
func clampSel(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	if v > 1 {
		return 1
	}
	return v
}

// selectionSeed derives a strategy's deterministic sampling seed from the
// session's sweep seed, so varying Options.SweepSeed re-rolls the profiles
// while distinct strategies never share a sample stream.
func selectionSeed(s *Session, salt int64) int64 {
	return s.opts.sweepSeed()*1000003 + salt
}

// scorePlans picks the POSP plan minimizing score (ties break to the lower
// plan ID, keeping the choice order-deterministic).
func scorePlans(s *Session, score func(planID int) float64) selectionChoice {
	best, bestScore := 0, math.Inf(1)
	for id := range s.space.Plans() {
		if sc := score(id); sc < bestScore {
			best, bestScore = id, sc
		}
	}
	return selectionChoice{
		planID:     best,
		score:      bestScore,
		initBudget: s.model.Eval(s.space.Plans()[best], s.EstimateLocation()),
	}
}

// choosePenaltyAware scores each POSP plan by blended expected/worst-case
// penalty — Cost(p, q) − Cost(opt(q), q) — over the error profile.
func choosePenaltyAware(s *Session) selectionChoice {
	profile := errorProfile(s, selectionSeed(s, 1), selectionSamples, selectionSigmaDecades)
	opts := make([]float64, len(profile))
	for i, q := range profile {
		_, opts[i] = s.opt.Optimize(q)
	}
	return scorePlans(s, func(id int) float64 {
		p := s.space.Plans()[id]
		var exp, worst float64
		for i, q := range profile {
			pen := s.model.Eval(p, q) - opts[i]
			exp += pen
			if pen > worst {
				worst = pen
			}
		}
		exp /= float64(len(profile))
		return (1-penaltyAlpha)*exp + penaltyAlpha*worst
	})
}

// chooseProbabilistic scores each POSP plan by expected cost under the
// sampled selectivity distribution — no oracle, just the cost model.
func chooseProbabilistic(s *Session) selectionChoice {
	profile := errorProfile(s, selectionSeed(s, 2), selectionSamples, selectionSigmaDecades)
	return scorePlans(s, func(id int) float64 {
		p := s.space.Plans()[id]
		var exp float64
		for _, q := range profile {
			exp += s.model.Eval(p, q)
		}
		return exp / float64(len(profile))
	})
}

// regretScenarios enumerates minmax-regret's scenario set: the estimate
// plus every corner of the multiplicative uncertainty box [est/F, est·F]
// per dimension, clamped to the grid range.
func regretScenarios(s *Session) []Location {
	est := s.EstimateLocation()
	g := s.space.Grid
	scenarios := []Location{est.Clone()}
	for corner := 0; corner < 1<<len(est); corner++ {
		q := make(Location, len(est))
		for d := range q {
			f := 1 / regretFactor
			if corner&(1<<d) != 0 {
				f = regretFactor
			}
			q[d] = clampSel(est[d]*f, g.Points[d][0])
		}
		scenarios = append(scenarios, q)
	}
	return scenarios
}

// chooseMinmaxRegret picks the plan minimizing the maximum regret —
// Cost(p, sc) − Cost(opt(sc), sc) — across the scenario set.
func chooseMinmaxRegret(s *Session) selectionChoice {
	scenarios := regretScenarios(s)
	opts := make([]float64, len(scenarios))
	for i, sc := range scenarios {
		_, opts[i] = s.opt.Optimize(sc)
	}
	return scorePlans(s, func(id int) float64 {
		p := s.space.Plans()[id]
		var worst float64
		for i, sc := range scenarios {
			if regret := s.model.Eval(p, sc) - opts[i]; regret > worst {
				worst = regret
			}
		}
		return worst
	})
}

// runLadder executes a committed plan choice under the budget-doubling
// ladder through the resilient executor stack: attempt k runs the plan with
// budget b0·2^k, charging min(cost, budget) per the engine contract, until
// an attempt completes. The ladder's monotone state is the attempt index
// alone, checkpointed like a contour boundary, so selection runs are
// durable and crash-resumable (the choice itself is deterministic and is
// simply recomputed on resume).
func runLadder(ctx context.Context, r *StrategyRun, name string, choose func(*Session) selectionChoice) (StrategyOutcome, error) {
	ch := r.sess.selectionFor(name, choose)
	var out StrategyOutcome
	start, _ := r.Resume()
	budget := ch.initBudget * math.Pow(2, float64(start))
	for step := start; step < maxLadderSteps; step++ {
		if err := r.Checkpoint(ctx, step); err != nil {
			return out, err
		}
		spent, completed, err := r.Execute(ctx, step+1, ch.planID, budget)
		if err != nil {
			return out, err
		}
		out.TotalCost += spent
		out.Steps = append(out.Steps, ExecutionStep{
			Contour: step + 1, SpillDim: -1, PlanID: ch.planID,
			Budget: budget, Spent: spent, Completed: completed,
		})
		if completed {
			return out, nil
		}
		budget *= 2
	}
	return out, fmt.Errorf("repro: %s budget ladder exceeded %d doublings (non-finite execution cost?)", name, maxLadderSteps)
}

// sweepLadder is the sweeps' lightweight ladder evaluator: identical cost
// accounting to runLadder (failed attempts charge their budget, the
// completing attempt charges the plan's true cost) without the executor
// stack, telemetry, or durability plumbing.
func sweepLadder(s *Session, name string, choose func(*Session) selectionChoice) func(Location) float64 {
	ch := s.selectionFor(name, choose)
	p := s.space.Plans()[ch.planID]
	return func(truth Location) float64 {
		c := s.model.Eval(p, truth)
		total, budget := 0.0, ch.initBudget
		for i := 0; c > budget && i < maxLadderSteps; i++ {
			total += budget
			budget *= 2
		}
		return total + c
	}
}

// selectionStrategy implements Strategy for one member of the selection
// family; the members differ only in descriptor, salt and chooser.
type selectionStrategy struct {
	info   StrategyInfo
	choose func(*Session) selectionChoice
}

func (st selectionStrategy) Info() StrategyInfo          { return st.info }
func (selectionStrategy) Guarantee(*Session) float64     { return math.Inf(1) }
func (st selectionStrategy) Run(ctx context.Context, r *StrategyRun) (StrategyOutcome, error) {
	return runLadder(ctx, r, st.info.Name, st.choose)
}
func (st selectionStrategy) SweepRun(s *Session) func(Location) float64 {
	return sweepLadder(s, st.info.Name, st.choose)
}

// registerSelectionStrategies registers the selection family (called from
// the strategy registry's init).
func registerSelectionStrategies() {
	mustRegisterStrategy(selectionStrategy{
		info: StrategyInfo{
			Name: "penaltyaware", Kind: "selection", Guarantee: "none",
			Resumable: true,
			Params: map[string]string{
				"samples": "64 log-normal error-profile samples (seeded by Options.SweepSeed)",
				"sigma":   "1.0 decades of multiplicative estimation error",
				"alpha":   "0.5 worst-case weight in the penalty blend",
			},
		},
		choose: choosePenaltyAware,
	})
	mustRegisterStrategy(selectionStrategy{
		info: StrategyInfo{
			Name: "probabilistic", Kind: "selection", Guarantee: "none",
			Resumable: true,
			Params: map[string]string{
				"samples": "64 log-normal selectivity samples (seeded by Options.SweepSeed)",
				"sigma":   "1.0 decades of multiplicative estimation error",
			},
		},
		choose: chooseProbabilistic,
	})
	mustRegisterStrategy(selectionStrategy{
		info: StrategyInfo{
			Name: "minmaxregret", Kind: "selection", Guarantee: "none",
			Resumable: true,
			Params: map[string]string{
				"factor": "100x per-dimension uncertainty box (estimate plus 2^D corners)",
			},
		},
		choose: chooseMinmaxRegret,
	})
}
