package repro

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunContextMatchesRun(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	for _, a := range []Algorithm{Native, PlanBouquet, SpillBound, AlignedBound} {
		plain, err := sess.Run(a, truth)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		ctxed, err := sess.RunContext(context.Background(), a, truth)
		if err != nil {
			t.Fatalf("%v ctx: %v", a, err)
		}
		if plain.TotalCost != ctxed.TotalCost || plain.SubOpt != ctxed.SubOpt {
			t.Errorf("%v: ctx run diverges: %g vs %g", a, plain.TotalCost, ctxed.TotalCost)
		}
		if ctxed.Degraded {
			t.Errorf("%v: clean run marked degraded", a)
		}
	}
}

func TestRunContextAbortsWithinDeadline(t *testing.T) {
	sess := newTestSession(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// The latency fault parks every execution, so only the deadline can end
	// the run; the assertion is that it does, promptly.
	start := time.Now()
	_, err := sess.RunWithFaults(ctx, SpillBound, Location{0.02, 0.3}, &FaultPlan{Latency: 10 * time.Second})
	took := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if took > 2*time.Second {
		t.Fatalf("abort took %v, deadline was 30ms", took)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	sess := newTestSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RunContext(ctx, SpillBound, Location{0.02, 0.3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestTransientFaultAbsorbedByRetry(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	clean, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	// One injected failure on the second execution: the backoff retry
	// re-runs the step and the discovery completes unchanged.
	res, err := sess.RunWithFaults(context.Background(), SpillBound, truth, &FaultPlan{FailExecAt: 2})
	if err != nil {
		t.Fatalf("transient fault should not error: %v", err)
	}
	if res.Degraded {
		t.Fatalf("transient fault should not degrade: %s", res.Trace)
	}
	if res.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", res.Retries)
	}
	if res.TotalCost != clean.TotalCost {
		t.Errorf("retried run cost %g != clean %g", res.TotalCost, clean.TotalCost)
	}
	if !strings.Contains(res.Trace, "resilience:") {
		t.Errorf("trace missing resilience events:\n%s", res.Trace)
	}
}

func TestPersistentFaultDegradesToNative(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	// Fail from the second execution onward, far past the retry budget:
	// mid-contour failure → backoff retries → Native-plan fallback.
	res, err := sess.RunWithFaults(context.Background(), SpillBound, truth, &FaultPlan{FailExecAt: 2, FailExecCount: 1000})
	if err != nil {
		t.Fatalf("degraded run should complete, got error: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("run not degraded:\n%s", res.Trace)
	}
	if res.DegradedReason == "" {
		t.Error("missing DegradedReason")
	}
	if res.Retries < 2 {
		t.Errorf("retries = %d, want the policy's 2", res.Retries)
	}
	// The fallback really ran: total cost covers at least the native plan,
	// and sub-optimality is well-defined.
	nat, err := sess.Run(Native, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost < nat.TotalCost {
		t.Errorf("degraded cost %g below native %g", res.TotalCost, nat.TotalCost)
	}
	if res.SubOpt < 1 {
		t.Errorf("subOpt = %g", res.SubOpt)
	}
	for _, want := range []string{"degraded:", "falling back to native plan", "guarantee downgraded"} {
		if !strings.Contains(res.Trace, want) {
			t.Errorf("trace missing %q:\n%s", want, res.Trace)
		}
	}
}

func TestPanicFaultRecovered(t *testing.T) {
	sess := newTestSession(t)
	// An injected operator panic is recovered into an error and retried;
	// the next attempt does not panic, so the run completes undegraded.
	res, err := sess.RunWithFaults(context.Background(), AlignedBound, Location{0.02, 0.3}, &FaultPlan{PanicExecAt: 1})
	if err != nil {
		t.Fatalf("panic should be recovered: %v", err)
	}
	if res.Degraded {
		t.Fatalf("single panic should be absorbed by retry:\n%s", res.Trace)
	}
	if res.Retries < 1 {
		t.Errorf("retries = %d", res.Retries)
	}
}

func TestBudgetOverrunStillCompletes(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	clean, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunWithFaults(context.Background(), SpillBound, truth, &FaultPlan{BudgetOverrun: 2})
	if err != nil {
		t.Fatalf("overrun run failed: %v", err)
	}
	if res.Degraded {
		t.Fatalf("overrun is not a failure, must not degrade:\n%s", res.Trace)
	}
	if res.TotalCost < clean.TotalCost {
		t.Errorf("overrun cost %g below clean %g", res.TotalCost, clean.TotalCost)
	}
}

// TestChaosScenarios is the seeded fault-injection suite (`make chaos`):
// every seeded scenario — clean errors, transient bursts, operator panics,
// cost-eval failures — must end in a completed run (degraded at worst),
// never a panic, hang, or error.
func TestChaosScenarios(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	algos := []Algorithm{PlanBouquet, SpillBound, AlignedBound}
	degraded := 0
	for seed := int64(1); seed <= 24; seed++ {
		a := algos[seed%int64(len(algos))]
		res, err := sess.RunWithFaults(context.Background(), a, truth, FaultScenario(seed))
		if err != nil {
			t.Fatalf("seed %d (%v): %v", seed, a, err)
		}
		if res.TotalCost <= 0 {
			t.Errorf("seed %d (%v): no work charged", seed, a)
		}
		if res.Degraded {
			degraded++
			if !strings.Contains(res.Trace, "guarantee downgraded") {
				t.Errorf("seed %d: degraded run hides the downgrade:\n%s", seed, res.Trace)
			}
		}
	}
	t.Logf("chaos: %d/24 scenarios degraded to native", degraded)
}

func TestSweepContextCancellation(t *testing.T) {
	sess := newTestSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.SweepContext(ctx, SpillBound, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	// And the uncancelled path still aggregates.
	sum, err := sess.SweepContext(context.Background(), SpillBound, 10)
	if err != nil || sum.Locations != 10 {
		t.Fatalf("sweep: %+v, %v", sum, err)
	}
}

// TestConcurrentFaultRuns exercises the new concurrent paths under -race:
// many goroutines share one session, each with its own fault plan.
func TestConcurrentFaultRuns(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := sess.RunWithFaults(context.Background(), SpillBound, truth, FaultScenario(seed))
			if err != nil {
				errc <- err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
