package repro

import (
	"context"
	"fmt"

	"repro/internal/workload"
)

// BenchmarkQuery is one query of the paper's evaluation suite: the SQL, the
// error-prone predicate designation and the recommended ESS grid.
type BenchmarkQuery = workload.Spec

// BenchmarkQueries returns the TPC-DS evaluation suite (the paper's
// Fig. 8-13 workload): eleven queries spanning 3-6 error-prone predicates.
func BenchmarkQueries() []BenchmarkQuery { return workload.TPCDSQueries() }

// BenchmarkQueryByName resolves a suite query, a Q91 dimensional variant
// ("2D_Q91".."6D_Q91") or "JOB_1a".
func BenchmarkQueryByName(name string) (BenchmarkQuery, bool) { return workload.ByName(name) }

// Q91Benchmark returns the Q91 analogue with d error-prone predicates
// (2..6), the paper's Fig. 9 dimensionality study.
func Q91Benchmark(d int) BenchmarkQuery { return workload.Q91(d) }

// JOB1aBenchmark returns the Join Order Benchmark Q1a analogue (Sec 6.5).
func JOB1aBenchmark() BenchmarkQuery { return workload.JOB1a() }

// EQBenchmark returns the paper's motivating example query EQ (Fig. 1)
// over the TPC-H schema.
func EQBenchmark() BenchmarkQuery { return workload.EQ() }

// BenchmarkOptions returns Options that defer the grid shape to each
// benchmark query's recommended resolution (see NewBenchmarkSession).
func BenchmarkOptions() Options {
	o := DefaultOptions()
	o.GridRes, o.GridLo = 0, 0
	return o
}

// NewBenchmarkSession builds a Session for a benchmark query, choosing the
// matching catalog automatically. A zero opts.GridRes uses the query's
// recommended resolution. It is NewBenchmarkSessionContext with a
// background context.
func NewBenchmarkSession(bq BenchmarkQuery, opts Options) (*Session, error) {
	return NewBenchmarkSessionContext(context.Background(), bq, opts)
}

// NewBenchmarkSessionContext is NewBenchmarkSession with cancellation: the
// parallel ESS construction aborts with the context's error on cancel or
// deadline expiry (see NewSessionContext).
func NewBenchmarkSessionContext(ctx context.Context, bq BenchmarkQuery, opts Options) (*Session, error) {
	var cat *Catalog
	switch bq.Catalog {
	case "imdb":
		cat = IMDBCatalog()
	case "tpch":
		cat = TPCHCatalog(1)
	case "tpcds", "":
		cat = TPCDSCatalog(100)
	default:
		return nil, fmt.Errorf("repro: unknown benchmark catalog %q", bq.Catalog)
	}
	if opts.GridRes == 0 {
		opts.GridRes = bq.GridRes
	}
	if opts.GridLo == 0 {
		opts.GridLo = bq.GridLo
	}
	return NewSessionContext(ctx, cat, bq.SQL, bq.EPPs, opts)
}
