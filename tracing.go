package repro

import (
	"context"
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// This file is the library's tracing surface: W3C trace-context propagation
// into runs and span trees derived from run event streams. The span model
// itself lives in internal/trace; everything here is a thin adapter so
// embedders never import internal packages.
//
// A run's trace identity resolves in this order: the context's traceparent
// (WithTraceparent, or the server middleware's parsed/minted header) wins;
// a durable run persists that trace ID in its checkpoint snapshot so a
// crash-resumed incarnation rejoins the same trace; otherwise a fresh
// random trace ID is minted per run. The span tree is a pure function of
// RunResult.Events — deterministic for a deterministic event stream.

// WithTraceparent attaches a W3C traceparent header value (version 00,
// "00-<trace-id>-<span-id>-<flags>") to the context: runs driven with the
// returned context report its trace ID in RunResult.TraceID, and durable
// runs persist it across crash-resume incarnations.
func WithTraceparent(ctx context.Context, header string) (context.Context, error) {
	tp, err := trace.Parse(header)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return trace.WithContext(ctx, tp), nil
}

// TraceTree derives the run's span tree from its event stream and renders
// it as deterministic JSON: a run root span covering the cost ledger,
// contour child spans, plan/spill execution spans (with the engine's
// budget_spend accounting children), and zero-width markers for guard
// interventions, prunes, retries, checkpoints and crash resumes. Durations
// are in cost-ledger units, the only deterministic clock a run has.
func TraceTree(res RunResult) ([]byte, error) {
	return trace.FromRun(res.TraceID, res.Events).JSON()
}

// TraceText renders the run's span tree as an indented one-span-per-line
// transcript (the `rqp -trace` output).
func TraceText(res RunResult) string {
	return trace.RenderText(trace.FromRun(res.TraceID, res.Events))
}

// TraceTreeFromEvents is TraceTree for callers holding a raw event stream
// (the server's run resources, replay tooling) instead of a RunResult.
func TraceTreeFromEvents(traceID string, events []telemetry.Event) ([]byte, error) {
	return trace.FromRun(traceID, events).JSON()
}
