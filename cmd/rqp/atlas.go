package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	repro "repro"
	"repro/internal/workload"
)

// atlasMain implements the `rqp atlas` subcommand: build a 2D benchmark
// session, sweep a seeded error-regime scenario suite across the requested
// algorithms, and dump the per-regime robustness atlas as SVG or JSON.
//
//	rqp atlas -query 2D_EQ -algos spillbound,planbouquet -seed 7 -o atlas.svg
func atlasMain(args []string) error {
	fs := flag.NewFlagSet("rqp atlas", flag.ExitOnError)
	var (
		queryName = fs.String("query", "2D_Q91", "2D benchmark query name (see rqp -list)")
		res       = fs.Int("res", 0, "grid resolution override (0 = query default)")
		profile   = fs.String("profile", "postgres", "cost profile: postgres | commercial")
		algosStr  = fs.String("algos", "planbouquet,spillbound,alignedbound", "comma-separated algorithms to map")
		seed      = fs.Int64("seed", 1, "scenario suite seed")
		perRegime = fs.Int("per-regime", 1, "scenarios per error regime")
		max       = fs.Int("max", 0, "cap the per-scenario location sample (0 = every grid cell)")
		format    = fs.String("format", "svg", "output format: svg | json")
		outPath   = fs.String("o", "-", "output file (- = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "svg" && *format != "json" {
		return fmt.Errorf("unknown format %q (want svg or json)", *format)
	}
	if *perRegime < 1 {
		return fmt.Errorf("-per-regime must be >= 1")
	}
	var algos []repro.Algorithm
	for _, name := range strings.Split(*algosStr, ",") {
		a, err := repro.ParseAlgorithm(strings.TrimSpace(strings.ToLower(name)))
		if err != nil {
			return err
		}
		algos = append(algos, a)
	}
	sp, ok := workload.ByName(*queryName)
	if !ok {
		return fmt.Errorf("unknown query %q (use rqp -list)", *queryName)
	}
	if sp.D != 2 {
		return fmt.Errorf("the robustness atlas needs a 2D query; %s is %dD", sp.Name, sp.D)
	}
	opts := repro.BenchmarkOptions()
	switch *profile {
	case "postgres":
	case "commercial":
		opts.Params = repro.CommercialProfile()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	if *res != 0 {
		opts.GridRes = *res
	}
	fmt.Fprintf(os.Stderr, "building ESS for %s and sweeping %d scenarios x %d algorithms...\n",
		sp.Name, 3**perRegime, len(algos))
	sess, err := repro.NewBenchmarkSession(sp, opts)
	if err != nil {
		return err
	}
	suite := repro.ScenarioSuite(*seed, *perRegime)
	atlas, err := sess.Atlas(context.Background(), algos, suite, *max)
	if err != nil {
		return err
	}
	// Benchmark sessions are built through the SQL parse path, which leaves
	// the query unnamed; label the atlas with the spec name the user asked for.
	atlas.Query = sp.Name
	var payload []byte
	if *format == "svg" {
		payload = []byte(atlas.SVG())
	} else {
		payload, err = atlas.JSON()
		if err != nil {
			return err
		}
	}
	if *outPath == "-" {
		_, err = os.Stdout.Write(payload)
		return err
	}
	if err := os.WriteFile(*outPath, payload, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *outPath, len(payload))
	return nil
}
