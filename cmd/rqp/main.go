// Command rqp runs a single benchmark query under one of the robust query
// processing algorithms and prints the discovery trace (the Manhattan
// profile of paper Fig. 7 in textual form), the MSO guarantee, and the
// realized sub-optimality.
//
// Usage:
//
//	rqp -query 4D_Q91 -algo spillbound -truth 0.8,0.008,0.05,0.6
//	rqp -list
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	repro "repro"
	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/rowexec"
	"repro/internal/spillbound"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	var (
		queryName = flag.String("query", "2D_Q91", "benchmark query name (see -list)")
		algoName  = flag.String("algo", "spillbound", "algorithm: native | planbouquet | spillbound | alignedbound")
		truthStr  = flag.String("truth", "", "comma-separated true selectivities (default: midpoint of each dimension)")
		res       = flag.Int("res", 0, "grid resolution override (0 = query default)")
		profile   = flag.String("profile", "postgres", "cost profile: postgres | commercial")
		list      = flag.Bool("list", false, "list available queries and exit")
		sf        = flag.Float64("sf", 100, "TPC-DS scale factor")
		plot      = flag.Bool("plot", false, "render the 2D contour map with the discovery trace (2D queries, spillbound only)")
		explain   = flag.Bool("explain", false, "print the optimal plan at q_a with per-operator rows/costs and its pipeline decomposition")
		physical  = flag.Int64("physical", -1, "execute on the row engine with this per-relation row cap (0 = catalog cardinality); truth is then emergent from the data")
		sqlText   = flag.String("sql", "", "process a custom SQL query instead of a benchmark one (requires -catalog unless the TPC-DS schema suffices)")
		catPath   = flag.String("catalog", "", "JSON catalog file for -sql (default: TPC-DS at -sf)")
		eppsFlag  = flag.String("epps", "", "semicolon-separated error-prone join predicates for -sql (default: auto-identified, up to -d of them)")
		dFlag     = flag.Int("d", 2, "number of epps to auto-identify when -epps is empty")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		for d := 2; d <= 6; d++ {
			fmt.Println(workload.Q91(d).Name)
		}
		fmt.Println("JOB_1a")
		return
	}

	if *sqlText != "" {
		if err := runCustom(*sqlText, *catPath, *eppsFlag, *dFlag, *algoName, *truthStr, *res, *profile, *sf, *plot, *explain, *physical); err != nil {
			fmt.Fprintln(os.Stderr, "rqp:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*queryName, *algoName, *truthStr, *res, *profile, *sf, *plot, *explain, *physical); err != nil {
		fmt.Fprintln(os.Stderr, "rqp:", err)
		os.Exit(1)
	}
}

// runCustom processes a user-supplied SQL query: load (or default) the
// catalog, resolve or auto-identify the epps, synthesize a workload spec
// and reuse the benchmark path.
func runCustom(sqlText, catPath, eppsFlag string, d int, algoName, truthStr string, res int, profile string, sf float64, plot, explain bool, physical int64) error {
	var cat *repro.Catalog
	if catPath != "" {
		f, err := os.Open(catPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cat, err = catalog.ReadJSON(f)
		if err != nil {
			return err
		}
	} else {
		cat = repro.TPCDSCatalog(sf)
	}
	var epps []string
	if eppsFlag != "" {
		for _, p := range strings.Split(eppsFlag, ";") {
			if p = strings.TrimSpace(p); p != "" {
				epps = append(epps, p)
			}
		}
	} else {
		var err error
		epps, err = repro.IdentifyEPPs(cat, sqlText, d)
		if err != nil {
			return err
		}
		fmt.Printf("auto-identified epps: %v\n", epps)
	}
	if res == 0 {
		res = 12
	}
	sp := workload.Spec{
		Name: "custom", D: len(epps), SQL: sqlText, EPPs: epps,
		GridRes: res, GridLo: 1e-6,
	}
	return runSpec(sp, cat, algoName, truthStr, res, profile, plot, explain, physical)
}

func run(queryName, algoName, truthStr string, res int, profile string, sf float64, plot, explain bool, physical int64) error {
	sp, ok := workload.ByName(queryName)
	if !ok {
		return fmt.Errorf("unknown query %q (use -list)", queryName)
	}
	var cat *repro.Catalog
	switch sp.Catalog {
	case "imdb":
		cat = repro.IMDBCatalog()
	case "tpch":
		cat = repro.TPCHCatalog(sf / 100)
	default:
		cat = repro.TPCDSCatalog(sf)
	}
	return runSpec(sp, cat, algoName, truthStr, res, profile, plot, explain, physical)
}

// runSpec drives one spec over one catalog.
func runSpec(sp workload.Spec, cat *repro.Catalog, algoName, truthStr string, res int, profile string, plot, explain bool, physical int64) error {
	var params cost.Params
	switch profile {
	case "postgres":
		params = cost.PostgresLike()
	case "commercial":
		params = cost.CommercialLike()
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	algo, err := repro.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	q, err := sp.Build(cat)
	if err != nil {
		return err
	}
	m, err := cost.NewModel(q, params)
	if err != nil {
		return err
	}
	o, err := optimizer.New(m)
	if err != nil {
		return err
	}
	if res == 0 {
		res = sp.GridRes
	}
	fmt.Printf("building ESS for %s (D=%d, %d^%d grid, profile %s)...\n",
		sp.Name, sp.D, res, sp.D, params.Name)
	s := ess.Build(o, ess.NewGrid(q.D(), res, sp.GridLo))
	costs := s.ContourCosts(ess.CostDoublingRatio)
	fmt.Printf("POSP: %d plans | contours: %d | C_min=%.4g C_max=%.4g\n\n",
		len(s.Plans()), len(costs), s.MinCost(), s.MaxCost())

	if physical >= 0 {
		return runPhysical(q, m, s, algo, physical)
	}
	truth, err := parseTruth(truthStr, q.D(), sp.GridLo)
	if err != nil {
		return err
	}
	fmt.Printf("true location q_a = %v\n", truth)
	optPlan, optCost := o.Optimize(truth)
	e := engine.New(m, truth)
	if explain {
		fmt.Println("\noptimal plan at q_a:")
		fmt.Print(engine.ExplainAt(m, optPlan, truth))
		fmt.Println("pipelines (execution order):")
		fmt.Print(engine.ExplainPipelines(m, optPlan))
		fmt.Println()
	}

	var total float64
	var trace string
	switch algo {
	case repro.Native:
		p, _ := o.Optimize(m.EstimateLocation())
		total = m.Eval(p, truth)
		trace = fmt.Sprintf("plan chosen at estimate %v\n", m.EstimateLocation())
	case repro.PlanBouquet:
		d := bouquet.Reduce(s, 0.2)
		fmt.Printf("PlanBouquet guarantee: 4(1+λ)ρ = %.1f\n\n", d.Guarantee(costs))
		out := bouquet.Run(d, e, ess.CostDoublingRatio)
		total = out.TotalCost
		for _, st := range out.Steps {
			trace += st.String() + "\n"
		}
	case repro.SpillBound:
		fmt.Printf("SpillBound guarantee: D²+3D = %.0f\n\n", spillbound.Guarantee(q.D()))
		out := (&spillbound.Runner{Space: s, Ratio: ess.CostDoublingRatio}).Run(e)
		total = out.TotalCost
		trace = out.Trace()
		if plot {
			if mapped, err := viz.Fig7(s, ess.CostDoublingRatio, out, truth); err == nil {
				fmt.Println(mapped)
			} else {
				fmt.Fprintln(os.Stderr, "rqp: plot:", err)
			}
		}
	case repro.AlignedBound:
		fmt.Printf("AlignedBound guarantee range: [%.0f, %.0f]\n\n",
			aligned.GuaranteeLower(q.D()), aligned.GuaranteeUpper(q.D()))
		out := (&aligned.Runner{Space: s, Ratio: ess.CostDoublingRatio}).Run(e)
		total = out.TotalCost
		trace = out.Trace()
		if plot {
			if mapped, err := viz.Fig7(s, ess.CostDoublingRatio, out.SpillOutcome(), truth); err == nil {
				fmt.Println(mapped)
			} else {
				fmt.Fprintln(os.Stderr, "rqp: plot:", err)
			}
		}
	}
	fmt.Print(trace)
	fmt.Printf("\ntotal cost: %.4g | optimal cost: %.4g | sub-optimality: %.2f\n",
		total, optCost, total/optCost)
	return nil
}

// runPhysical drives the chosen algorithm against the row engine.
func runPhysical(q *query.Query, m *cost.Model, s *ess.Space, algo repro.Algorithm, rowCap int64) error {
	re := &rowexec.Engine{Query: q, Params: m.Params, RowCap: rowCap}
	ad := &rowexec.Adapter{E: re}
	var total float64
	var trace string
	switch algo {
	case repro.PlanBouquet:
		out := bouquet.Run(bouquet.Reduce(s, 0.2), ad, ess.CostDoublingRatio)
		total = out.TotalCost
		for _, st := range out.Steps {
			trace += st.String() + "\n"
		}
	case repro.SpillBound:
		out := (&spillbound.Runner{Space: s, Ratio: ess.CostDoublingRatio}).Run(ad)
		total = out.TotalCost
		trace = out.Trace()
	case repro.AlignedBound:
		out := (&aligned.Runner{Space: s, Ratio: ess.CostDoublingRatio}).Run(ad)
		total = out.TotalCost
		trace = out.Trace()
	default:
		return fmt.Errorf("-physical supports planbouquet, spillbound, alignedbound")
	}
	best := -1.0
	for _, p := range s.Plans() {
		if r, err := re.Run(p, 0); err == nil && r.Completed {
			if best < 0 || r.Spent < best {
				best = r.Spent
			}
		}
	}
	fmt.Println("physical execution over synthetic rows:")
	fmt.Print(trace)
	if best > 0 {
		fmt.Printf("\ntotal work: %.4g | best physical plan: %.4g | sub-optimality: %.2f\n", total, best, total/best)
	}
	return nil
}

func parseTruth(s string, d int, lo float64) (cost.Location, error) {
	if s == "" {
		// Default: geometric midpoint of each dimension.
		mid := make(cost.Location, d)
		for i := range mid {
			mid[i] = math.Sqrt(lo)
		}
		return mid, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("-truth needs %d values, got %d", d, len(parts))
	}
	out := make(cost.Location, d)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad selectivity %q: %v", p, err)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("selectivity %g outside (0,1]", v)
		}
		out[i] = v
	}
	return out, nil
}
