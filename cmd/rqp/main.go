// Command rqp runs a single benchmark query under one of the robust query
// processing algorithms and prints the discovery trace (the Manhattan
// profile of paper Fig. 7 in textual form), the MSO guarantee, and the
// realized sub-optimality.
//
// Usage:
//
//	rqp -query 4D_Q91 -algo spillbound -truth 0.8,0.008,0.05,0.6
//	rqp -list
//	rqp atlas -query 2D_EQ -algos spillbound -o atlas.svg
//
// The atlas subcommand sweeps a seeded error-regime scenario suite and dumps
// the per-regime robustness atlas (see rqp atlas -h).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	repro "repro"
	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/rowexec"
	"repro/internal/spillbound"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	var (
		queryName = flag.String("query", "2D_Q91", "benchmark query name (see -list)")
		algoName  = flag.String("algo", "spillbound", "strategy name (see -strategies); short aliases like sb/pb resolve but are deprecated")
		stratList = flag.Bool("strategies", false, "list registered strategies (name, kind, guarantee) and exit")
		truthStr  = flag.String("truth", "", "comma-separated true selectivities (default: midpoint of each dimension)")
		res       = flag.Int("res", 0, "grid resolution override (0 = query default)")
		profile   = flag.String("profile", "postgres", "cost profile: postgres | commercial")
		list      = flag.Bool("list", false, "list available queries and exit")
		sf        = flag.Float64("sf", 100, "TPC-DS scale factor")
		plot      = flag.Bool("plot", false, "render the 2D contour map with the discovery trace (2D queries, spillbound only)")
		explain   = flag.Bool("explain", false, "print the optimal plan at q_a with per-operator rows/costs and its pipeline decomposition")
		physical  = flag.Int64("physical", -1, "execute on the row engine with this per-relation row cap (0 = catalog cardinality); truth is then emergent from the data")
		jsonOut   = flag.Bool("json", false, "emit the run as one JSON document (typed telemetry events instead of the textual trace)")
		spansOut  = flag.Bool("trace", false, "print the structural span tree derived from the run's telemetry (the same tree rqpd serves at /v1/runs/{traceID}/trace)")
		sqlText   = flag.String("sql", "", "process a custom SQL query instead of a benchmark one (requires -catalog unless the TPC-DS schema suffices)")
		catPath   = flag.String("catalog", "", "JSON catalog file for -sql (default: TPC-DS at -sf)")
		eppsFlag  = flag.String("epps", "", "semicolon-separated error-prone join predicates for -sql (default: auto-identified, up to -d of them)")
		dFlag     = flag.Int("d", 2, "number of epps to auto-identify when -epps is empty")
	)
	// Subcommand dispatch before flag.Parse: `rqp atlas ...` has its own
	// flag set.
	if len(os.Args) > 1 && os.Args[1] == "atlas" {
		if err := atlasMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "rqp atlas:", err)
			os.Exit(1)
		}
		return
	}
	flag.Parse()

	if *stratList {
		for _, in := range repro.Strategies() {
			fmt.Printf("%-14s %-10s guarantee: %s\n", in.Name, in.Kind, in.Guarantee)
		}
		return
	}
	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		for d := 2; d <= 6; d++ {
			fmt.Println(workload.Q91(d).Name)
		}
		fmt.Println("JOB_1a")
		return
	}

	if *sqlText != "" {
		if err := runCustom(*sqlText, *catPath, *eppsFlag, *dFlag, *algoName, *truthStr, *res, *profile, *sf, *plot, *explain, *physical, *jsonOut, *spansOut); err != nil {
			fmt.Fprintln(os.Stderr, "rqp:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*queryName, *algoName, *truthStr, *res, *profile, *sf, *plot, *explain, *physical, *jsonOut, *spansOut); err != nil {
		fmt.Fprintln(os.Stderr, "rqp:", err)
		os.Exit(1)
	}
}

// printSpanTree renders the structural span tree derived from the run's
// event stream — the CLI twin of rqpd's GET /v1/runs/{traceID}/trace. The
// tree's shape and span IDs are deterministic given the trace ID; a local
// run without one gets a fresh random trace identity.
func printSpanTree(traceID string, events []telemetry.Event) {
	if traceID == "" {
		traceID = trace.New().TraceID
	}
	fmt.Println("\nspan tree:")
	fmt.Print(trace.RenderText(trace.FromRun(traceID, events)))
}

// runCustom processes a user-supplied SQL query: load (or default) the
// catalog, resolve or auto-identify the epps, synthesize a workload spec
// and reuse the benchmark path.
func runCustom(sqlText, catPath, eppsFlag string, d int, algoName, truthStr string, res int, profile string, sf float64, plot, explain bool, physical int64, jsonOut, spansOut bool) error {
	var cat *repro.Catalog
	if catPath != "" {
		f, err := os.Open(catPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cat, err = catalog.ReadJSON(f)
		if err != nil {
			return err
		}
	} else {
		cat = repro.TPCDSCatalog(sf)
	}
	var epps []string
	if eppsFlag != "" {
		for _, p := range strings.Split(eppsFlag, ";") {
			if p = strings.TrimSpace(p); p != "" {
				epps = append(epps, p)
			}
		}
	} else {
		var err error
		epps, err = repro.IdentifyEPPs(cat, sqlText, d)
		if err != nil {
			return err
		}
		fmt.Printf("auto-identified epps: %v\n", epps)
	}
	if res == 0 {
		res = 12
	}
	sp := workload.Spec{
		Name: "custom", D: len(epps), SQL: sqlText, EPPs: epps,
		GridRes: res, GridLo: 1e-6,
	}
	return runSpec(sp, cat, algoName, truthStr, res, profile, plot, explain, physical, jsonOut, spansOut)
}

func run(queryName, algoName, truthStr string, res int, profile string, sf float64, plot, explain bool, physical int64, jsonOut, spansOut bool) error {
	sp, ok := workload.ByName(queryName)
	if !ok {
		return fmt.Errorf("unknown query %q (use -list)", queryName)
	}
	var cat *repro.Catalog
	switch sp.Catalog {
	case "imdb":
		cat = repro.IMDBCatalog()
	case "tpch":
		cat = repro.TPCHCatalog(sf / 100)
	default:
		cat = repro.TPCDSCatalog(sf)
	}
	return runSpec(sp, cat, algoName, truthStr, res, profile, plot, explain, physical, jsonOut, spansOut)
}

// runSpec drives one spec over one catalog.
func runSpec(sp workload.Spec, cat *repro.Catalog, algoName, truthStr string, res int, profile string, plot, explain bool, physical int64, jsonOut, spansOut bool) error {
	var params cost.Params
	switch profile {
	case "postgres":
		params = cost.PostgresLike()
	case "commercial":
		params = cost.CommercialLike()
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	canonical, legacy, err := repro.ParseStrategyName(algoName)
	if err != nil {
		return err
	}
	if legacy {
		fmt.Fprintf(os.Stderr, "rqp: strategy name %q is deprecated; use %q\n", algoName, canonical)
	}
	algo := repro.Algorithm(canonical)
	switch algo {
	case repro.Native, repro.PlanBouquet, repro.SpillBound, repro.AlignedBound:
	default:
		// Any other registered strategy (the selection family, external
		// registrations) runs through the library session, which owns the
		// budget-doubling ladder and its telemetry.
		if physical >= 0 {
			return fmt.Errorf("-physical supports planbouquet, spillbound, alignedbound")
		}
		return runRegistered(sp, cat, algo, truthStr, res, profile, jsonOut, spansOut)
	}
	q, err := sp.Build(cat)
	if err != nil {
		return err
	}
	m, err := cost.NewModel(q, params)
	if err != nil {
		return err
	}
	o, err := optimizer.New(m)
	if err != nil {
		return err
	}
	if res == 0 {
		res = sp.GridRes
	}
	// With -json the progress commentary moves to stderr so stdout carries
	// exactly one machine-readable document.
	info := fmt.Printf
	if jsonOut {
		info = func(format string, args ...any) (int, error) {
			return fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	info("building ESS for %s (D=%d, %d^%d grid, profile %s)...\n",
		sp.Name, sp.D, res, sp.D, params.Name)
	s := ess.Build(o, ess.NewGrid(q.D(), res, sp.GridLo))
	costs := s.ContourCosts(ess.CostDoublingRatio)
	info("POSP: %d plans | contours: %d | C_min=%.4g C_max=%.4g\n\n",
		len(s.Plans()), len(costs), s.MinCost(), s.MaxCost())

	if physical >= 0 {
		return runPhysical(sp, q, m, s, algo, physical, jsonOut, spansOut)
	}
	truth, err := parseTruth(truthStr, q.D(), sp.GridLo)
	if err != nil {
		return err
	}
	info("true location q_a = %v\n", truth)
	optPlan, optCost := o.Optimize(truth)
	e := engine.New(m, truth)
	if explain && !jsonOut {
		fmt.Println("\noptimal plan at q_a:")
		fmt.Print(engine.ExplainAt(m, optPlan, truth))
		fmt.Println("pipelines (execution order):")
		fmt.Print(engine.ExplainPipelines(m, optPlan))
		fmt.Println()
	}

	// The discovery layers emit typed telemetry events into the
	// context-carried recorder; the textual trace is their rendering.
	rec := telemetry.NewRecorder()
	ctx := telemetry.With(context.Background(), rec)
	var total, guarantee float64
	switch algo {
	case repro.Native:
		p, _ := o.Optimize(m.EstimateLocation())
		total = m.Eval(p, truth)
		rec.Record(telemetry.Event{
			Kind: telemetry.PlanExec, Dim: -1, Mode: "native",
			Location: m.EstimateLocation(), Spent: total, Completed: true,
		})
	case repro.PlanBouquet:
		d := bouquet.Reduce(s, 0.2)
		guarantee = d.Guarantee(costs)
		info("PlanBouquet guarantee: 4(1+λ)ρ = %.1f\n\n", guarantee)
		out, err := bouquet.RunContext(ctx, d, e, ess.CostDoublingRatio)
		if err != nil {
			return err
		}
		total = out.TotalCost
	case repro.SpillBound:
		guarantee = spillbound.Guarantee(q.D())
		info("SpillBound guarantee: D²+3D = %.0f\n\n", guarantee)
		out, err := (&spillbound.Runner{Space: s, Ratio: ess.CostDoublingRatio}).RunContext(ctx, e)
		if err != nil {
			return err
		}
		total = out.TotalCost
		if plot && !jsonOut {
			if mapped, err := viz.Fig7(s, ess.CostDoublingRatio, out, truth); err == nil {
				fmt.Println(mapped)
			} else {
				fmt.Fprintln(os.Stderr, "rqp: plot:", err)
			}
		}
	case repro.AlignedBound:
		guarantee = aligned.GuaranteeUpper(q.D())
		info("AlignedBound guarantee range: [%.0f, %.0f]\n\n",
			aligned.GuaranteeLower(q.D()), guarantee)
		out, err := (&aligned.Runner{Space: s, Ratio: ess.CostDoublingRatio}).RunContext(ctx, e)
		if err != nil {
			return err
		}
		total = out.TotalCost
		if plot && !jsonOut {
			if mapped, err := viz.Fig7(s, ess.CostDoublingRatio, out.SpillOutcome(), truth); err == nil {
				fmt.Println(mapped)
			} else {
				fmt.Fprintln(os.Stderr, "rqp: plot:", err)
			}
		}
	}
	rec.Record(telemetry.Event{
		Kind: telemetry.Done, Dim: -1, Algorithm: algo.String(),
		TotalCost: total, SubOpt: total / optCost, Completed: true,
	})
	events := rec.Events()
	if jsonOut {
		return writeRunJSON(runDoc{
			Query: sp.Name, Algorithm: algo.String(), D: q.D(), GridRes: res,
			Truth: truth, POSPSize: len(s.Plans()), Contours: len(costs),
			Guarantee: guarantee, TotalCost: total, OptimalCost: optCost,
			SubOpt: total / optCost,
			Trace:  telemetry.RenderTrace(events), Events: events,
		})
	}
	if algo == repro.Native {
		fmt.Printf("plan chosen at estimate %v\n", m.EstimateLocation())
	} else {
		fmt.Print(telemetry.RenderTrace(events))
	}
	if spansOut {
		printSpanTree("", events)
	}
	fmt.Printf("\ntotal cost: %.4g | optimal cost: %.4g | sub-optimality: %.2f\n",
		total, optCost, total/optCost)
	return nil
}

// runRegistered drives a non-builtin registered strategy through the full
// library session instead of the manual discovery path above: the session
// owns the selection strategies' budget-doubling ladder, their telemetry,
// and the degradation ladder the CLI would otherwise have to replicate.
func runRegistered(sp workload.Spec, cat *repro.Catalog, algo repro.Algorithm, truthStr string, res int, profile string, jsonOut, spansOut bool) error {
	opts := repro.DefaultOptions()
	switch profile {
	case "postgres":
	case "commercial":
		opts.Params = repro.CommercialProfile()
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	if res == 0 {
		res = sp.GridRes
	}
	opts.GridRes = res
	if sp.GridLo > 0 {
		opts.GridLo = sp.GridLo
	}
	info := fmt.Printf
	if jsonOut {
		info = func(format string, args ...any) (int, error) {
			return fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	info("building ESS for %s (D=%d, %d^%d grid, profile %s)...\n",
		sp.Name, sp.D, res, sp.D, opts.Params.Name)
	sess, err := repro.NewSession(cat, sp.SQL, sp.EPPs, opts)
	if err != nil {
		return err
	}
	info("POSP: %d plans | contours: %d\n\n", sess.POSPSize(), sess.ContourCount())
	truth, err := parseTruth(truthStr, sess.D(), opts.GridLo)
	if err != nil {
		return err
	}
	info("true location q_a = %v\n", truth)
	out, err := sess.RunContext(context.Background(), algo, repro.Location(truth))
	if err != nil {
		return err
	}
	if jsonOut {
		doc := runDoc{
			Query: sp.Name, Algorithm: algo.String(), D: sess.D(), GridRes: res,
			Truth: truth, POSPSize: sess.POSPSize(), Contours: sess.ContourCount(),
			TotalCost: out.TotalCost, OptimalCost: out.OptimalCost, SubOpt: out.SubOpt,
			Trace: out.Trace, Events: out.Events,
		}
		if g := sess.Guarantee(algo); !math.IsInf(g, 1) {
			doc.Guarantee = g
		}
		return writeRunJSON(doc)
	}
	fmt.Print(out.Trace)
	if spansOut {
		printSpanTree(out.TraceID, out.Events)
	}
	fmt.Printf("\ntotal cost: %.4g | optimal cost: %.4g | sub-optimality: %.2f\n",
		out.TotalCost, out.OptimalCost, out.SubOpt)
	return nil
}

// runDoc is the -json output document: the run's identity, guarantees,
// realized costs, and the full typed event stream.
type runDoc struct {
	Query       string            `json:"query"`
	Algorithm   string            `json:"algorithm"`
	D           int               `json:"d"`
	GridRes     int               `json:"gridRes"`
	Truth       []float64         `json:"truth,omitempty"`
	POSPSize    int               `json:"pospSize"`
	Contours    int               `json:"contours"`
	Guarantee   float64           `json:"guarantee,omitempty"`
	TotalCost   float64           `json:"totalCost"`
	OptimalCost float64           `json:"optimalCost,omitempty"`
	SubOpt      float64           `json:"subOpt,omitempty"`
	Trace       string            `json:"trace"`
	Events      []telemetry.Event `json:"events"`
}

func writeRunJSON(doc runDoc) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runPhysical drives the chosen algorithm against the row engine.
func runPhysical(sp workload.Spec, q *query.Query, m *cost.Model, s *ess.Space, algo repro.Algorithm, rowCap int64, jsonOut, spansOut bool) error {
	re := &rowexec.Engine{Query: q, Params: m.Params, RowCap: rowCap}
	ad := &rowexec.Adapter{E: re}
	rec := telemetry.NewRecorder()
	ctx := telemetry.With(context.Background(), rec)
	var total float64
	var runErr error
	switch algo {
	case repro.PlanBouquet:
		out, err := bouquet.RunContext(ctx, bouquet.Reduce(s, 0.2), ad, ess.CostDoublingRatio)
		total, runErr = out.TotalCost, err
	case repro.SpillBound:
		out, err := (&spillbound.Runner{Space: s, Ratio: ess.CostDoublingRatio}).RunContext(ctx, ad)
		total, runErr = out.TotalCost, err
	case repro.AlignedBound:
		out, err := (&aligned.Runner{Space: s, Ratio: ess.CostDoublingRatio}).RunContext(ctx, ad)
		total, runErr = out.TotalCost, err
	default:
		return fmt.Errorf("-physical supports planbouquet, spillbound, alignedbound")
	}
	if runErr != nil {
		return runErr
	}
	best := -1.0
	for _, p := range s.Plans() {
		if r, err := re.Run(p, 0); err == nil && r.Completed {
			if best < 0 || r.Spent < best {
				best = r.Spent
			}
		}
	}
	done := telemetry.Event{
		Kind: telemetry.Done, Dim: -1, Algorithm: algo.String(),
		TotalCost: total, Completed: true,
	}
	if best > 0 {
		done.SubOpt = total / best
	}
	rec.Record(done)
	events := rec.Events()
	rendered := telemetry.RenderTrace(events)
	if jsonOut {
		doc := runDoc{
			Query: sp.Name, Algorithm: algo.String(), D: q.D(), GridRes: len(s.Grid.Points[0]),
			POSPSize: len(s.Plans()), Contours: len(s.ContourCosts(ess.CostDoublingRatio)),
			TotalCost: total, Trace: rendered, Events: events,
		}
		if best > 0 {
			doc.OptimalCost = best
			doc.SubOpt = total / best
		}
		return writeRunJSON(doc)
	}
	fmt.Println("physical execution over synthetic rows:")
	fmt.Print(rendered)
	if spansOut {
		printSpanTree("", events)
	}
	if best > 0 {
		fmt.Printf("\ntotal work: %.4g | best physical plan: %.4g | sub-optimality: %.2f\n", total, best, total/best)
	}
	return nil
}

func parseTruth(s string, d int, lo float64) (cost.Location, error) {
	if s == "" {
		// Default: geometric midpoint of each dimension.
		mid := make(cost.Location, d)
		for i := range mid {
			mid[i] = math.Sqrt(lo)
		}
		return mid, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("-truth needs %d values, got %d", d, len(parts))
	}
	out := make(cost.Location, d)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad selectivity %q: %v", p, err)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("selectivity %g outside (0,1]", v)
		}
		out[i] = v
	}
	return out, nil
}
