// Command tracesmoke is the end-to-end drill for the tracing surface, wired
// to `make trace-smoke`. It builds rqpd, boots it, and walks the whole
// correlation contract: a session is created and a run fired with a caller
// traceparent, the response must echo that trace identity (Traceparent
// header, X-Request-ID, the run document's traceId), the span tree must be
// served back at GET /v1/runs/{traceID}/trace with a sound parent/child
// structure, the flamegraph render must be well-formed XML, the error
// envelope must carry the trace ID in-band, and the OpenMetrics exposition
// must attach trace-ID exemplars to the histogram families. Exits non-zero
// on any failure.
package main

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/smoke"
	"repro/internal/trace"
)

// The pinned caller trace identities: one for the session build (stamped on
// the create request), one for the run. Distinct, so the drill proves both
// tree kinds land under the trace ID the caller chose.
const (
	buildTraceparent = "00-aaaa0000aaaa0000aaaa0000aaaa0001-00f067aa0ba90201-01"
	runTraceparent   = "00-bbbb0000bbbb0000bbbb0000bbbb0002-00f067aa0ba90202-01"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "tracesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "rqpd")
	if err := smoke.BuildDaemon(bin); err != nil {
		return err
	}
	addr, err := smoke.FreeAddr()
	if err != nil {
		return err
	}
	stop, err := smoke.StartDaemon(bin, "-addr", addr)
	if err != nil {
		return err
	}
	defer stop()

	base := "http://" + addr
	if err := smoke.Await(base+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("daemon never became healthy: %w", err)
	}

	buildTP, _ := trace.Parse(buildTraceparent)
	runTP, _ := trace.Parse(runTraceparent)

	// Create the session under the pinned build traceparent; the async ESS
	// build's span tree is recorded under this trace ID.
	id, err := createTraced(base, `{"query":"2D_EQ","gridRes":6}`, buildTraceparent)
	if err != nil {
		return err
	}
	if err := smoke.AwaitReady(base, id, 60*time.Second); err != nil {
		return err
	}

	// Fire the run with the caller's traceparent and check every echo.
	status, headers, body, err := doTraced(http.MethodPost, base+"/v1/sessions/"+id+"/run",
		`{"algorithm":"spillbound","truth":[0.04,0.1]}`, runTraceparent)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("run: status %d: %s", status, body)
	}
	echo, err := trace.Parse(headers.Get("Traceparent"))
	if err != nil {
		return fmt.Errorf("run response Traceparent %q does not parse: %w", headers.Get("Traceparent"), err)
	}
	if echo.TraceID != runTP.TraceID {
		return fmt.Errorf("run response trace ID %s, want the caller's %s", echo.TraceID, runTP.TraceID)
	}
	if got := headers.Get("X-Request-ID"); got != runTP.TraceID {
		return fmt.Errorf("X-Request-ID %q, want trace ID %s", got, runTP.TraceID)
	}
	var runDoc struct {
		TraceID string  `json:"traceId"`
		SubOpt  float64 `json:"subOpt"`
	}
	if err := json.Unmarshal(body, &runDoc); err != nil {
		return fmt.Errorf("run response: %w", err)
	}
	if runDoc.TraceID != runTP.TraceID {
		return fmt.Errorf("run document traceId %q, want %s", runDoc.TraceID, runTP.TraceID)
	}
	log.Printf("run echoed caller trace %s", runTP.TraceID)

	// The span trees: the run's and the build's, each structurally sound.
	if err := checkTree(base, runTP.TraceID, trace.KindRun); err != nil {
		return err
	}
	if err := checkTree(base, buildTP.TraceID, trace.KindBuild); err != nil {
		return err
	}

	// The flamegraph must be well-formed XML for both.
	for _, tid := range []string{runTP.TraceID, buildTP.TraceID} {
		if err := checkSVG(base, tid); err != nil {
			return err
		}
	}

	// The error envelope carries the trace ID in-band and matches the header.
	if err := checkErrorEnvelope(base); err != nil {
		return err
	}

	// The OpenMetrics exposition attaches trace-ID exemplars.
	if err := checkExemplars(base); err != nil {
		return err
	}
	return nil
}

// createTraced POSTs the create payload under the given traceparent and
// returns the accepted session ID.
func createTraced(base, payload, traceparent string) (string, error) {
	status, _, body, err := doTraced(http.MethodPost, base+"/v1/sessions", payload, traceparent)
	if err != nil {
		return "", err
	}
	if status != http.StatusAccepted && status != http.StatusCreated {
		return "", fmt.Errorf("create session: status %d: %s", status, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || doc.ID == "" {
		return "", fmt.Errorf("create session: bad response: %s", body)
	}
	return doc.ID, nil
}

// doTraced issues one request carrying the given traceparent header.
func doTraced(method, url, body, traceparent string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Traceparent", traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b, err
}

// checkTree fetches the span tree by trace ID and validates its structure:
// the advertised kind and trace ID, a present root, a span count matching
// the actual tree, unique span IDs, and parent/child closure (every child
// names its parent and lies within the parent's extent).
func checkTree(base, traceID, wantKind string) error {
	resp, err := http.Get(base + "/v1/runs/" + traceID + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("trace %s: status %d: %s", traceID, resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		return fmt.Errorf("trace %s: content type %q", traceID, ct)
	}
	var t trace.Tree
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return fmt.Errorf("trace %s: %w", traceID, err)
	}
	if t.TraceID != traceID || t.Kind != wantKind || t.Root == nil {
		return fmt.Errorf("trace %s: kind %q root %v, want kind %q with a root", traceID, t.Kind, t.Root != nil, wantKind)
	}
	seen := map[string]bool{}
	count := 0
	var walk func(sp *trace.Span) error
	walk = func(sp *trace.Span) error {
		count++
		if sp.SpanID == "" || seen[sp.SpanID] {
			return fmt.Errorf("trace %s: span ID %q empty or duplicated", traceID, sp.SpanID)
		}
		seen[sp.SpanID] = true
		for _, c := range sp.Children {
			if c.ParentID != sp.SpanID {
				return fmt.Errorf("trace %s: span %s names parent %q, is child of %s", traceID, c.SpanID, c.ParentID, sp.SpanID)
			}
			if c.Start < sp.Start || c.End > sp.End {
				return fmt.Errorf("trace %s: span %s [%g,%g] escapes parent [%g,%g]",
					traceID, c.SpanID, c.Start, c.End, sp.Start, sp.End)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if t.Root.ParentID != "" {
		return fmt.Errorf("trace %s: root has parent %q", traceID, t.Root.ParentID)
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if count != t.Spans || count < 2 {
		return fmt.Errorf("trace %s: %d spans walked, tree advertises %d", traceID, count, t.Spans)
	}
	log.Printf("trace %s: %s tree sound, %d spans", traceID, wantKind, count)
	return nil
}

// checkSVG fetches the flamegraph and requires well-formed XML.
func checkSVG(base, traceID string) error {
	resp, err := http.Get(base + "/v1/runs/" + traceID + "/trace?format=svg")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("flamegraph %s: status %d", traceID, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "image/svg+xml") {
		return fmt.Errorf("flamegraph %s: content type %q", traceID, ct)
	}
	dec := xml.NewDecoder(resp.Body)
	elements := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("flamegraph %s is not well-formed XML: %w", traceID, err)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elements++
		}
	}
	if elements < 3 {
		return fmt.Errorf("flamegraph %s: only %d elements (empty render?)", traceID, elements)
	}
	log.Printf("flamegraph %s: well-formed, %d elements", traceID, elements)
	return nil
}

// checkErrorEnvelope hits a missing resource and requires the 404 envelope
// to carry the trace ID in-band, matching the response headers.
func checkErrorEnvelope(base string) error {
	resp, err := http.Get(base + "/v1/sessions/no-such-session")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("missing session: status %d, want 404", resp.StatusCode)
	}
	var doc struct {
		Error struct {
			Code    string `json:"code"`
			TraceID string `json:"traceId"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("error envelope: %w", err)
	}
	if doc.Error.TraceID == "" || doc.Error.TraceID != resp.Header.Get("X-Request-ID") {
		return fmt.Errorf("error envelope traceId %q, header %q — must match and be set",
			doc.Error.TraceID, resp.Header.Get("X-Request-ID"))
	}
	log.Printf("error envelope carries trace %s", doc.Error.TraceID)
	return nil
}

// checkExemplars scrapes the OpenMetrics flavor and requires at least one
// histogram bucket exemplar carrying a trace_id, plus the runtime gauges the
// classic exposition also serves.
func checkExemplars(base string) error {
	fams, err := smoke.ScrapeOpenMetrics(base)
	if err != nil {
		return err
	}
	for _, want := range []string{"rqp_goroutines", "rqp_heap_bytes", "rqp_sessions_active",
		"rqp_session_build_duration_seconds", "rqp_trace_spans_total"} {
		if fams[want] == nil {
			return fmt.Errorf("openmetrics exposition missing family %s", want)
		}
	}
	exemplars := 0
	for _, fam := range []string{"rqp_request_duration_seconds", "rqp_suboptimality"} {
		f := fams[fam]
		if f == nil {
			return fmt.Errorf("openmetrics exposition missing family %s", fam)
		}
		for _, s := range f.Samples {
			if s.Exemplar == nil {
				continue
			}
			tid := s.Exemplar.Labels["trace_id"]
			if len(tid) != 32 {
				return fmt.Errorf("family %s: exemplar trace_id %q is not a 32-hex trace ID", fam, tid)
			}
			exemplars++
		}
	}
	if exemplars == 0 {
		return fmt.Errorf("no bucket exemplars in the OpenMetrics exposition after a traced run")
	}
	log.Printf("openmetrics: %d bucket exemplars with trace IDs", exemplars)
	return nil
}
