// Command overloadsmoke is an end-to-end drill for the daemon's adaptive
// overload control, wired to `make overload-smoke`. It builds rqpd, boots it
// with deliberately low admission limits (-max-runs 1), builds one session,
// then fires a burst of concurrent sweep requests past the limit and asserts
// the contract under overload: at least one request completes (the server
// keeps doing work), at least one is shed with 429 carrying a Retry-After
// header (clients get backpressure, not queueing collapse), the scrape
// exposes the rqp_inflight / rqp_shed_total / rqp_breaker_state families
// with a non-zero shed count, and the goroutine count settles back to its
// pre-burst baseline (no leaked request handlers). Exits non-zero on any
// failure.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/smoke"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overloadsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "overloadsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "rqpd")
	if err := smoke.BuildDaemon(bin); err != nil {
		return err
	}

	addr, err := smoke.FreeAddr()
	if err != nil {
		return err
	}
	stop, err := smoke.StartDaemon(bin, "-addr", addr,
		"-max-runs", "1", "-session-max-runs", "1", "-max-builds", "2")
	if err != nil {
		return err
	}
	defer stop()

	base := "http://" + addr
	if err := smoke.Await(base+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("daemon never became healthy: %w", err)
	}

	// A denser grid plus exhaustive sweeps makes every request heavy enough
	// that the burst genuinely overlaps in the server.
	id, err := smoke.CreateSession(base, `{"query":"2D_EQ","gridRes":16}`)
	if err != nil {
		return err
	}
	if err := smoke.AwaitReady(base, id, 60*time.Second); err != nil {
		return err
	}

	baseline, err := smoke.Goroutines(base)
	if err != nil {
		return err
	}

	// The burst: with a run ceiling of 1, concurrent sweeps past the limit
	// must be shed, not queued.
	const burst = 24
	sweepURL := base + "/v1/sessions/" + id + "/sweep?algorithm=spillbound&max=0"
	var (
		mu            sync.Mutex
		okCount       int
		shedCount     int
		missingHeader int
		unexpected    []string
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(sweepURL)
			if err != nil {
				mu.Lock()
				unexpected = append(unexpected, err.Error())
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				okCount++
			case http.StatusTooManyRequests:
				shedCount++
				if resp.Header.Get("Retry-After") == "" {
					missingHeader++
				}
			default:
				unexpected = append(unexpected, fmt.Sprintf("status %d", resp.StatusCode))
			}
		}()
	}
	wg.Wait()
	if len(unexpected) > 0 {
		return fmt.Errorf("burst produced unexpected outcomes: %v", unexpected)
	}
	if okCount < 1 {
		return fmt.Errorf("burst of %d: no request completed", burst)
	}
	if shedCount < 1 {
		return fmt.Errorf("burst of %d past a run limit of 1: nothing was shed (ok=%d)", burst, okCount)
	}
	if missingHeader > 0 {
		return fmt.Errorf("%d shed responses missing Retry-After", missingHeader)
	}
	log.Printf("burst of %d: %d completed, %d shed with Retry-After", burst, okCount, shedCount)

	if err := scrapeGuards(base, float64(shedCount)); err != nil {
		return err
	}

	// Leak check: every admitted and every shed handler must have wound down.
	// Allow a small margin for unrelated runtime goroutines.
	final, err := smoke.AwaitGoroutineSettle(base, baseline, 3, 10*time.Second)
	if err != nil {
		return err
	}
	log.Printf("goroutines settled: baseline %d, now %d", baseline, final)
	return nil
}

// scrapeGuards validates the exposition and the overload-control families.
func scrapeGuards(base string, wantShed float64) error {
	fams, err := smoke.Scrape(base)
	if err != nil {
		return err
	}
	for _, want := range []string{"rqp_inflight", "rqp_shed_total", "rqp_breaker_state"} {
		if _, ok := fams[want]; !ok {
			return fmt.Errorf("exposition missing family %s", want)
		}
	}
	shed := 0.0
	for _, s := range fams["rqp_shed_total"].Samples {
		if s.Labels["class"] == "run" {
			shed += s.Value
		}
	}
	if shed < wantShed {
		return fmt.Errorf("rqp_shed_total{class=run} = %g, want >= %g", shed, wantShed)
	}
	for _, s := range fams["rqp_breaker_state"].Samples {
		if s.Value != 0 {
			return fmt.Errorf("rqp_breaker_state = %g, want 0 (closed; no build failed)", s.Value)
		}
	}
	log.Printf("guard families present, rqp_shed_total{run} = %g, breaker closed", shed)
	return nil
}
