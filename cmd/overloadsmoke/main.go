// Command overloadsmoke is an end-to-end drill for the daemon's adaptive
// overload control, wired to `make overload-smoke`. It builds rqpd, boots it
// with deliberately low admission limits (-max-runs 1), builds one session,
// then fires a burst of concurrent sweep requests past the limit and asserts
// the contract under overload: at least one request completes (the server
// keeps doing work), at least one is shed with 429 carrying a Retry-After
// header (clients get backpressure, not queueing collapse), the scrape
// exposes the rqp_inflight / rqp_shed_total / rqp_breaker_state families
// with a non-zero shed count, and the goroutine count settles back to its
// pre-burst baseline (no leaked request handlers). Exits non-zero on any
// failure.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overloadsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "overloadsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "rqpd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rqpd").CombinedOutput(); err != nil {
		return fmt.Errorf("build rqpd: %v\n%s", err, out)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	cmd := exec.Command(bin, "-addr", addr,
		"-max-runs", "1", "-session-max-runs", "1", "-max-builds", "2")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	base := "http://" + addr
	if err := await(base+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("daemon never became healthy: %w", err)
	}

	// A denser grid plus exhaustive sweeps makes every request heavy enough
	// that the burst genuinely overlaps in the server.
	id, err := createSession(base, `{"query":"2D_EQ","gridRes":16}`)
	if err != nil {
		return err
	}
	if err := awaitReady(base, id, 60*time.Second); err != nil {
		return err
	}

	baseline, err := goroutines(base)
	if err != nil {
		return err
	}

	// The burst: with a run ceiling of 1, concurrent sweeps past the limit
	// must be shed, not queued.
	const burst = 24
	sweepURL := base + "/v1/sessions/" + id + "/sweep?algorithm=spillbound&max=0"
	var (
		mu            sync.Mutex
		okCount       int
		shedCount     int
		missingHeader int
		unexpected    []string
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(sweepURL)
			if err != nil {
				mu.Lock()
				unexpected = append(unexpected, err.Error())
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				okCount++
			case http.StatusTooManyRequests:
				shedCount++
				if resp.Header.Get("Retry-After") == "" {
					missingHeader++
				}
			default:
				unexpected = append(unexpected, fmt.Sprintf("status %d", resp.StatusCode))
			}
		}()
	}
	wg.Wait()
	if len(unexpected) > 0 {
		return fmt.Errorf("burst produced unexpected outcomes: %v", unexpected)
	}
	if okCount < 1 {
		return fmt.Errorf("burst of %d: no request completed", burst)
	}
	if shedCount < 1 {
		return fmt.Errorf("burst of %d past a run limit of 1: nothing was shed (ok=%d)", burst, okCount)
	}
	if missingHeader > 0 {
		return fmt.Errorf("%d shed responses missing Retry-After", missingHeader)
	}
	log.Printf("burst of %d: %d completed, %d shed with Retry-After", burst, okCount, shedCount)

	if err := scrapeGuards(base, float64(shedCount)); err != nil {
		return err
	}

	// Leak check: every admitted and every shed handler must have wound down.
	// Allow a small margin for unrelated runtime goroutines.
	return poll("goroutines back to baseline", 10*time.Second, 100*time.Millisecond, func() (bool, error) {
		n, err := goroutines(base)
		if err != nil {
			return false, err
		}
		if n <= baseline+3 {
			log.Printf("goroutines settled: baseline %d, now %d", baseline, n)
			return true, nil
		}
		return false, nil
	})
}

// scrapeGuards validates the exposition and the overload-control families.
func scrapeGuards(base string, wantShed float64) error {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fams, err := telemetry.ParseProm(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	for _, want := range []string{"rqp_inflight", "rqp_shed_total", "rqp_breaker_state"} {
		if _, ok := fams[want]; !ok {
			return fmt.Errorf("exposition missing family %s", want)
		}
	}
	shed := 0.0
	for _, s := range fams["rqp_shed_total"].Samples {
		if s.Labels["class"] == "run" {
			shed += s.Value
		}
	}
	if shed < wantShed {
		return fmt.Errorf("rqp_shed_total{class=run} = %g, want >= %g", shed, wantShed)
	}
	for _, s := range fams["rqp_breaker_state"].Samples {
		if s.Value != 0 {
			return fmt.Errorf("rqp_breaker_state = %g, want 0 (closed; no build failed)", s.Value)
		}
	}
	log.Printf("guard families present, rqp_shed_total{run} = %g, breaker closed", shed)
	return nil
}

// goroutines reads the live goroutine count from /v1/debug/stats.
func goroutines(base string) (int, error) {
	resp, err := http.Get(base + "/v1/debug/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var doc struct {
		Runtime struct {
			Goroutines int `json:"goroutines"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, err
	}
	if doc.Runtime.Goroutines <= 0 {
		return 0, fmt.Errorf("debug stats reported %d goroutines", doc.Runtime.Goroutines)
	}
	return doc.Runtime.Goroutines, nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// poll drives fn immediately and then every interval until it reports done,
// returns a permanent error, or the deadline passes.
func poll(what string, timeout, interval time.Duration, fn func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	for {
		done, err := fn()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("timeout after %v waiting for %s", timeout, what)
		}
		if remaining < interval {
			interval = remaining
		}
		time.Sleep(interval)
	}
}

func await(url string, timeout time.Duration) error {
	return poll(url, timeout, 50*time.Millisecond, func() (bool, error) {
		resp, err := http.Get(url)
		if err != nil {
			return false, nil // booting; keep polling
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK, nil
	})
}

func createSession(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("create session: status %d: %s", resp.StatusCode, b)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	if doc.ID == "" {
		return "", fmt.Errorf("create session: no id in response")
	}
	return doc.ID, nil
}

func awaitReady(base, id string, timeout time.Duration) error {
	return poll("session "+id+" ready", timeout, 50*time.Millisecond, func() (bool, error) {
		resp, err := http.Get(base + "/v1/sessions/" + id)
		if err != nil {
			return false, err
		}
		var doc struct {
			Status     string `json:"status"`
			BuildError string `json:"buildError"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		switch doc.Status {
		case "ready":
			return true, nil
		case "failed":
			return false, fmt.Errorf("session build failed: %s", doc.BuildError)
		}
		return false, nil
	})
}
