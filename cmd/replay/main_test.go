package main

import (
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestPercentileNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5},
		{0.95, 10},
		{0.99, 10},
		{0.10, 1},
	}
	for _, tc := range cases {
		if got := percentile(s, tc.q); got != tc.want {
			t.Errorf("p%g = %g, want %g", tc.q*100, got, tc.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty sample p99 = %g, want 0", got)
	}
	if got := percentile([]float64{7}, 0.5); got != 7 {
		t.Errorf("singleton p50 = %g", got)
	}
}

func TestPickIsSeedDeterministic(t *testing.T) {
	draw := func() []trafficEvent {
		rng := rand.New(rand.NewSource(99))
		out := make([]trafficEvent, 200)
		for i := range out {
			out[i] = pick(rng, 99, []string{"spillbound", "minmaxregret"})
		}
		return out
	}
	a, b := draw(), draw()
	counts := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identically-seeded draws: %+v vs %+v", i, a[i], b[i])
		}
		counts[a[i].class]++
	}
	// Every traffic class must appear in a 200-event trace; the scenario
	// classes are what make the guardrail census non-vacuous.
	for _, class := range []string{"run", "run:adversarial", "run:correlated", "sweep", "build"} {
		if counts[class] == 0 {
			t.Errorf("class %s absent from a 200-event trace", class)
		}
	}
}

func TestRecorderCensus(t *testing.T) {
	rec := newRecorder()
	events := []telemetry.Event{
		{Kind: telemetry.PlanExec, Spent: 10},
		{Kind: telemetry.SpillExec, Spent: 4},
		{Kind: telemetry.Retry},
		{Kind: telemetry.CheckpointSave},
		{Kind: telemetry.BudgetAbort},
		{Kind: telemetry.Done},
	}
	rec.observe("run", "spillbound", "n1", "ok", 5*time.Millisecond, events, "budget_abort")
	rec.observe("run", "penaltyaware", "n2", "ok", 10*time.Millisecond, nil, "ess_escape")
	rec.observe("run", "spillbound", "n1", "shed", time.Millisecond, nil, "")
	rec.observe("build:chaos", "", "", "breaker", time.Millisecond, nil, "")
	rec.observe("sweep", "", "", "error", time.Millisecond, nil, "")
	classes, strategies, nodes, guard := rec.snapshot()
	if guard.WatchdogAborts != 1 || guard.ESSEscapes != 1 || guard.Sheds != 1 ||
		guard.BreakerRejections != 1 || guard.UnexpectedFailures != 1 {
		t.Errorf("census off: %+v", guard)
	}
	cs := classes["run"]
	if cs == nil || cs.Count != 3 || cs.Statuses["ok"] != 2 || cs.Statuses["shed"] != 1 {
		t.Errorf("run class off: %+v", cs)
	}
	// Phase breakdown: only the run with an event stream contributes, and
	// its costs land in the right buckets.
	if p := cs.Phases; p == nil || p.Runs != 1 || p.ExecCost != 10 || p.SpillCost != 4 ||
		p.Retries != 1 || p.Checkpoints != 1 || p.Guard != 1 {
		t.Errorf("run phase breakdown off: %+v", cs.Phases)
	}
	if classes["sweep"].Phases != nil {
		t.Errorf("sweep class should carry no phase breakdown: %+v", classes["sweep"].Phases)
	}
	if cs.P50Ms <= 0 || cs.P99Ms < cs.P50Ms {
		t.Errorf("percentiles off: p50=%g p99=%g", cs.P50Ms, cs.P99Ms)
	}
	// Per-strategy breakout: only run traffic with a strategy is keyed.
	if st := strategies["spillbound"]; st == nil || st.Count != 2 || st.P99Ms <= 0 {
		t.Errorf("spillbound strategy stats off: %+v", st)
	}
	if st := strategies["penaltyaware"]; st == nil || st.Count != 1 {
		t.Errorf("penaltyaware strategy stats off: %+v", st)
	}
	if len(strategies) != 2 {
		t.Errorf("strategies = %d keys, want 2", len(strategies))
	}
	// Per-node breakout (fleet spray mode): only arrivals fired at a named
	// node are keyed.
	if ns := nodes["n1"]; ns == nil || ns.Count != 2 || ns.Statuses["shed"] != 1 {
		t.Errorf("n1 node stats off: %+v", ns)
	}
	if len(nodes) != 2 {
		t.Errorf("nodes = %d keys, want 2", len(nodes))
	}
}

func TestRecorderTraceparent(t *testing.T) {
	rec := newRecorder()
	good := http.Header{}
	good.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	good.Set("X-Request-ID", "4bf92f3577b34da6a3ce929d0e0e4736")
	rec.observeTraceparent(good)
	garbled := http.Header{}
	garbled.Set("Traceparent", "not-a-traceparent")
	rec.observeTraceparent(garbled)
	noRequestID := http.Header{}
	noRequestID.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rec.observeTraceparent(noRequestID)
	_, _, _, guard := rec.snapshot()
	if guard.TraceparentViolations != 2 {
		t.Errorf("traceparent violations = %d, want 2 (garbled header + missing request id)",
			guard.TraceparentViolations)
	}
}

func TestReportProblems(t *testing.T) {
	good := &report{
		Classes: map[string]*classStats{"run": {P99Ms: 12}},
		Guardrails: guardrails{
			WatchdogAborts: 1, ESSEscapes: 2, Sheds: 3,
			BreakerRejections: 1, BreakerOpened: true,
		},
		Goroutines: leakCheck{Settled: true},
	}
	if p := good.problems(); len(p) != 0 {
		t.Errorf("good report flagged: %v", p)
	}
	bad := &report{Classes: map[string]*classStats{}}
	if p := bad.problems(); len(p) < 5 {
		t.Errorf("empty report should trip every check, got %v", p)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("sb, penaltyaware,minmaxregret")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"spillbound", "penaltyaware", "minmaxregret"}
	if len(mix) != len(want) {
		t.Fatalf("mix = %v", mix)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("mix[%d] = %q, want %q", i, mix[i], want[i])
		}
	}
	if _, err := parseMix("quantum"); err == nil {
		t.Error("unknown strategy should be rejected")
	}
	if _, err := parseMix(" ,"); err == nil {
		t.Error("empty mix should be rejected")
	}
}
