// Command replay is the live traffic-replay harness, wired to
// `make replay-smoke`. It builds rqpd, boots it with deliberately tight
// admission limits, and drives a seeded open-loop arrival process of mixed
// traffic — clean runs, scenario-tagged runs from the error-regime suite
// (adversarial-1 forces ESS escapes, regret-correlated-1 forces watchdog
// aborts), sweeps, and session builds — followed by a concentrated sweep
// burst past the run ceiling (shed drill) and a run of consecutive
// CHAOS_FAIL session builds (circuit-breaker drill).
//
// The harness measures per-class p50/p95/p99 latency, status counts, a
// per-class phase breakdown derived from each run response's typed event
// stream (exec vs spill vs degraded cost units, checkpoint and retry
// counts), the per-class distribution of advertised Retry-After values, and
// a guardrail census (watchdog aborts, ESS escapes, sheds,
// breaker rejections), cross-checks the census against the daemon's own
// /v1/metrics exposition, and emits a machine-readable JSON report. Every
// response — successes and sheds alike — must carry a valid W3C
// Traceparent and an X-Request-ID; violations are counted. With -check it
// exits non-zero unless every guardrail class fired at least once, p99
// latency was recorded for the run class, zero traceparent violations were
// seen, and the goroutine count settled back to its pre-replay baseline
// (no leaked handlers).
//
// With -retries N the mixed-traffic phase turns closed-loop: an arrival
// answered with 429/503 sleeps the server's advertised Retry-After (capped
// by -retry-cap) and tries again, up to N times — measuring whether honoring
// the advertised backoff actually clears the rejection. The report's retry
// ledger counts attempts, successes-after-retry and exhausted budgets.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	repro "repro"
	"repro/internal/smoke"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

const breakerThreshold = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay: ")
	var (
		duration = flag.Duration("duration", 15*time.Second, "mixed-traffic phase length")
		rate     = flag.Float64("rate", 20, "mean arrival rate of the open-loop process (requests/sec)")
		seed     = flag.Int64("seed", 1, "trace seed: arrivals, class mix, truth locations, scenario suite")
		outPath  = flag.String("o", "-", "report file (- = stdout)")
		check    = flag.Bool("check", false, "assert every guardrail class fired and no goroutines leaked; exit non-zero otherwise")
		mixSpec  = flag.String("strategies", "spillbound",
			"comma-separated strategy mix for clean runs; each arrival draws one uniformly (seeded), and the report breaks tail latency out per strategy")
		targetsSpec = flag.String("targets", "",
			"comma-separated addresses of an already-running fleet (host:port,...); arrivals are sprayed across them (seeded pick per arrival) and the report breaks latency out per node. Skips booting a local daemon and the shed/breaker/leak drills — the targets' limits are the operator's, not the harness's. Incompatible with -check")
		retries = flag.Int("retries", 0,
			"closed-loop retry budget per arrival: a shed/breaker response (429/503) is retried after sleeping its advertised Retry-After, up to this many times (0 = open-loop, never retry). Every attempt is recorded separately, so sheds stay visible in the census")
		retryCap = flag.Duration("retry-cap", 2*time.Second,
			"ceiling on how long one closed-loop retry sleeps, whatever Retry-After advertises (a 5m breaker cooldown should not stall the harness)")
	)
	flag.Parse()
	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	targets := splitTargets(*targetsSpec)
	if len(targets) > 0 && *check {
		log.Fatal("-check asserts the harness's own tightly-limited daemon hit every guardrail; it cannot hold against an external fleet (-targets)")
	}
	rep, err := run(*duration, *rate, *seed, mix, targets, *retries, *retryCap)
	if err != nil {
		log.Fatal(err)
	}
	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	payload = append(payload, '\n')
	if *outPath == "-" {
		os.Stdout.Write(payload)
	} else if err := os.WriteFile(*outPath, payload, 0o644); err != nil {
		log.Fatal(err)
	} else {
		log.Printf("wrote %s (%d bytes)", *outPath, len(payload))
	}
	if *check {
		if problems := rep.problems(); len(problems) > 0 {
			log.Fatalf("FAIL:\n  - %s", strings.Join(problems, "\n  - "))
		}
		log.Print("PASS: all guardrail classes fired, no goroutine leak")
	}
}

// splitTargets parses the -targets list (empty → local-daemon mode).
func splitTargets(spec string) []string {
	var out []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// parseMix resolves the -strategies knob against the strategy registry,
// canonicalizing aliases ("sb" → "spillbound") and rejecting unknown names
// before the daemon ever boots.
func parseMix(spec string) ([]string, error) {
	var mix []string
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		canonical, _, err := repro.ParseStrategyName(name)
		if err != nil {
			return nil, err
		}
		mix = append(mix, canonical)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty -strategies mix")
	}
	return mix, nil
}

// report is the machine-readable replay result.
type report struct {
	Seed      int64                  `json:"seed"`
	DurationS float64                `json:"duration_s"`
	Rate      float64                `json:"rate"`
	Mix       []string               `json:"strategy_mix"`
	Classes   map[string]*classStats `json:"classes"`
	// Strategies breaks the clean-run class out per strategy of the mix, so
	// the tail-latency cost of each selection/discovery strategy is visible
	// side by side under identical arrivals.
	Strategies map[string]*classStats `json:"strategies"`
	// Targets echoes the -targets list; Nodes breaks every class out per
	// fleet node the arrival was fired at, so a slow or overloaded member is
	// visible in its own tail (fleet spray mode only).
	Targets []string               `json:"targets,omitempty"`
	Nodes   map[string]*classStats `json:"nodes,omitempty"`
	// Guardrails is the census observed on the wire.
	Guardrails guardrails `json:"guardrails"`
	// Retry summarizes the closed-loop retry mode (-retries > 0 only): how
	// many shed responses were retried after their advertised Retry-After,
	// and how those retries ended.
	Retry *retryStats `json:"retry,omitempty"`
	// Daemon holds the cross-check scraped from /v1/metrics after the drills.
	Daemon     daemonView `json:"daemon"`
	Goroutines leakCheck  `json:"goroutines"`
}

type guardrails struct {
	WatchdogAborts    int  `json:"watchdog_aborts"`
	ESSEscapes        int  `json:"ess_escapes"`
	Sheds             int  `json:"sheds"`
	BreakerRejections int  `json:"breaker_rejections"`
	BreakerOpened     bool `json:"breaker_opened"`
	Crashes           int  `json:"crashes"`
	DegradedFallbacks int  `json:"degraded_fallbacks"`
	// TraceparentViolations counts responses — sheds and breaker rejections
	// included — that failed the correlation contract: a missing/invalid
	// Traceparent header or a missing X-Request-ID.
	TraceparentViolations int `json:"traceparent_violations"`
	UnexpectedFailures    int `json:"unexpected_failures"`
}

type daemonView struct {
	ShedTotal    float64            `json:"rqp_shed_total"`
	BreakerState float64            `json:"rqp_breaker_state"`
	Guard        map[string]float64 `json:"rqp_guard_interventions_total"`
}

type leakCheck struct {
	Baseline int  `json:"baseline"`
	Final    int  `json:"final"`
	Settled  bool `json:"settled"`
}

// retryStats is the closed-loop ledger: attempts spent on retries, arrivals
// that succeeded only because a retry was granted, and arrivals still shed
// when the budget ran out.
type retryStats struct {
	Attempts            int `json:"attempts"`
	SuccessesAfterRetry int `json:"successes_after_retry"`
	Exhausted           int `json:"exhausted"`
}

// distSummary is a small sample distribution (seconds) — used for the
// per-class Retry-After values servers advertised, making the backoff the
// fleet asked of its clients visible per traffic class.
type distSummary struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	Max   float64 `json:"max"`
}

func summarize(samples []float64) *distSummary {
	if len(samples) == 0 {
		return nil
	}
	sort.Float64s(samples)
	return &distSummary{
		Count: len(samples),
		Min:   samples[0],
		P50:   percentile(samples, 0.50),
		Max:   samples[len(samples)-1],
	}
}

// classStats aggregates one traffic class.
type classStats struct {
	Count    int            `json:"count"`
	Statuses map[string]int `json:"statuses"`
	P50Ms    float64        `json:"p50_ms"`
	P95Ms    float64        `json:"p95_ms"`
	P99Ms    float64        `json:"p99_ms"`
	// Phases is the class's run-phase breakdown, present once at least one
	// completed run contributed an event stream.
	Phases *phaseStats `json:"phases,omitempty"`
	// RetryAfterS summarizes the Retry-After values (seconds) shed responses
	// of this class advertised — the per-class backoff distribution.
	RetryAfterS *distSummary `json:"retry_after_s,omitempty"`

	lat []float64
	ra  []float64
}

// phaseStats is the per-class phase breakdown derived from run responses'
// typed event streams: where the class's budget went (regular executions,
// spill executions, the native fallback), and how often the resilience and
// durability layers fired. Costs are in the abstract cost-ledger units the
// paper's budgets are denominated in, not wall time.
type phaseStats struct {
	Runs        int     `json:"runs"`
	ExecCost    float64 `json:"exec_cost"`
	SpillCost   float64 `json:"spill_cost"`
	DegradeCost float64 `json:"degrade_cost"`
	Checkpoints int     `json:"checkpoints"`
	Retries     int     `json:"retries"`
	Guard       int     `json:"guard_interventions"`
}

// phasesOf folds one run's event stream into its phase contribution.
func phasesOf(events []telemetry.Event) phaseStats {
	var p phaseStats
	if len(events) == 0 {
		return p
	}
	p.Runs = 1
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.PlanExec:
			p.ExecCost += ev.Spent
		case telemetry.SpillExec:
			p.SpillCost += ev.Spent
		case telemetry.Degrade:
			p.DegradeCost += ev.Spent
		case telemetry.CheckpointSave:
			p.Checkpoints++
		case telemetry.Retry:
			p.Retries++
		case telemetry.BudgetAbort, telemetry.ESSEscape:
			p.Guard++
		}
	}
	return p
}

// add accumulates another run's contribution.
func (p *phaseStats) add(q phaseStats) {
	p.Runs += q.Runs
	p.ExecCost += q.ExecCost
	p.SpillCost += q.SpillCost
	p.DegradeCost += q.DegradeCost
	p.Checkpoints += q.Checkpoints
	p.Retries += q.Retries
	p.Guard += q.Guard
}

// problems lists every -check violation (empty = pass). The required
// guardrail classes are the acceptance bar: watchdog abort, ESS escape,
// shed, breaker.
func (r *report) problems() []string {
	var out []string
	if r.Guardrails.WatchdogAborts < 1 {
		out = append(out, "no watchdog abort (budget_abort) observed")
	}
	if r.Guardrails.ESSEscapes < 1 {
		out = append(out, "no ESS escape (ess_escape) observed")
	}
	if r.Guardrails.Sheds < 1 {
		out = append(out, "nothing was shed (429) despite the burst past -max-runs")
	}
	if !r.Guardrails.BreakerOpened || r.Guardrails.BreakerRejections < 1 {
		out = append(out, "the build circuit breaker never opened/rejected")
	}
	if r.Guardrails.UnexpectedFailures > 0 {
		out = append(out, fmt.Sprintf("%d requests failed outside the overload/guard contract", r.Guardrails.UnexpectedFailures))
	}
	if r.Guardrails.TraceparentViolations > 0 {
		out = append(out, fmt.Sprintf("%d responses without a valid Traceparent/X-Request-ID", r.Guardrails.TraceparentViolations))
	}
	if cs := r.Classes["run"]; cs == nil || cs.P99Ms <= 0 {
		out = append(out, "no p99 latency recorded for the run class")
	}
	if !r.Goroutines.Settled {
		out = append(out, fmt.Sprintf("goroutines leaked: baseline %d, final %d", r.Goroutines.Baseline, r.Goroutines.Final))
	}
	return out
}

// recorder accumulates per-class outcomes under concurrency.
type recorder struct {
	mu         sync.Mutex
	classes    map[string]*classStats
	strategies map[string]*classStats
	nodes      map[string]*classStats
	guard      guardrails
	retry      retryStats
}

func newRecorder() *recorder {
	return &recorder{classes: map[string]*classStats{}, strategies: map[string]*classStats{}, nodes: map[string]*classStats{}}
}

// observe records one finished request: its class, the strategy it ran (""
// for non-run traffic), the fleet node it was fired at ("" in local-daemon
// mode), coarse outcome label, wire latency, the run's event stream (nil for
// non-run traffic; folded into the class's phase breakdown), and (for runs)
// the guard verdict.
func (rec *recorder) observe(class, strategy, node, outcome string, latency time.Duration, events []telemetry.Event, verdict string) {
	phases := phasesOf(events)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	record := func(m map[string]*classStats, key string) {
		cs := m[key]
		if cs == nil {
			cs = &classStats{Statuses: map[string]int{}}
			m[key] = cs
		}
		cs.Count++
		cs.Statuses[outcome]++
		cs.lat = append(cs.lat, float64(latency)/float64(time.Millisecond))
		if phases.Runs > 0 {
			if cs.Phases == nil {
				cs.Phases = &phaseStats{}
			}
			cs.Phases.add(phases)
		}
	}
	record(rec.classes, class)
	if strategy != "" {
		record(rec.strategies, strategy)
	}
	if node != "" {
		record(rec.nodes, node)
	}
	switch outcome {
	case "shed":
		rec.guard.Sheds++
	case "breaker":
		rec.guard.BreakerRejections++
	case "error":
		rec.guard.UnexpectedFailures++
	}
	switch verdict {
	case "budget_abort":
		rec.guard.WatchdogAborts++
	case "ess_escape":
		rec.guard.ESSEscapes++
	case "crashed":
		rec.guard.Crashes++
	}
}

// observeRetryAfter records one advertised Retry-After (seconds) under the
// class, feeding the per-class backoff distribution.
func (rec *recorder) observeRetryAfter(class string, secs float64) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	cs := rec.classes[class]
	if cs == nil {
		cs = &classStats{Statuses: map[string]int{}}
		rec.classes[class] = cs
	}
	cs.ra = append(cs.ra, secs)
}

// observeRetry tallies the closed-loop ledger for one arrival: how many
// retry attempts it spent, and how it ended.
func (rec *recorder) observeRetry(attempts int, finalOutcome string) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.retry.Attempts += attempts
	if attempts == 0 {
		return
	}
	if finalOutcome == "ok" {
		rec.retry.SuccessesAfterRetry++
	} else if finalOutcome == "shed" || finalOutcome == "breaker" {
		rec.retry.Exhausted++
	}
}

// observeTraceparent enforces the correlation contract on one response:
// every response, shed or success, must carry a parseable Traceparent and a
// non-empty X-Request-ID.
func (rec *recorder) observeTraceparent(h http.Header) {
	_, err := trace.Parse(h.Get("Traceparent"))
	if err == nil && h.Get("X-Request-ID") != "" {
		return
	}
	rec.mu.Lock()
	rec.guard.TraceparentViolations++
	rec.mu.Unlock()
}

func (rec *recorder) snapshot() (classes, strategies, nodes map[string]*classStats, guard guardrails) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, m := range []map[string]*classStats{rec.classes, rec.strategies, rec.nodes} {
		for _, cs := range m {
			sort.Float64s(cs.lat)
			cs.P50Ms = percentile(cs.lat, 0.50)
			cs.P95Ms = percentile(cs.lat, 0.95)
			cs.P99Ms = percentile(cs.lat, 0.99)
			cs.RetryAfterS = summarize(cs.ra)
		}
	}
	return rec.classes, rec.strategies, rec.nodes, rec.guard
}

// percentile reads the q-quantile of a sorted sample (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// trafficEvent is one arrival of the open-loop process, fully determined by
// the trace seed before it is fired.
type trafficEvent struct {
	class    string
	strategy string // clean-run strategy ("" = not a clean run)
	body     string // run payload ("" = not a run)
	sweepMax int
	build    bool
}

// pick draws the next event from the class mix: 40% clean runs (strategy
// drawn uniformly from the -strategies mix), 15% adversarial scenario runs,
// 15% regret-correlated scenario runs, 20% sweeps, 10% session builds. The
// scenario drills stay pinned to spillbound so the guardrail census is
// independent of the mix under test.
func pick(rng *rand.Rand, seed int64, mix []string) trafficEvent {
	// Truth locations log-uniform over the selectivity range, away from the
	// exact grid edges.
	truth := func() string {
		x := math.Pow(10, -5*rng.Float64()-0.1)
		y := math.Pow(10, -5*rng.Float64()-0.1)
		return fmt.Sprintf("[%.6g,%.6g]", x, y)
	}
	r := rng.Float64()
	switch {
	case r < 0.40:
		st := mix[rng.Intn(len(mix))]
		return trafficEvent{class: "run", strategy: st,
			body: fmt.Sprintf(`{"strategy":%q,"truth":%s}`, st, truth())}
	case r < 0.55:
		return trafficEvent{class: "run:adversarial",
			body: fmt.Sprintf(`{"strategy":"spillbound","truth":%s,"scenario":"adversarial-1","scenarioSeed":%d}`, truth(), seed)}
	case r < 0.70:
		return trafficEvent{class: "run:correlated",
			body: fmt.Sprintf(`{"strategy":"spillbound","truth":%s,"scenario":"regret-correlated-1","scenarioSeed":%d}`, truth(), seed)}
	case r < 0.90:
		return trafficEvent{class: "sweep", sweepMax: 16}
	default:
		return trafficEvent{class: "build", build: true}
	}
}

func run(duration time.Duration, rate float64, seed int64, mix, targets []string, maxRetries int, retryCap time.Duration) (*report, error) {
	// The bases traffic is fired at: the -targets fleet as handed to us, or
	// one tightly-limited daemon the harness boots itself.
	var bases []string
	if len(targets) > 0 {
		for _, t := range targets {
			bases = append(bases, "http://"+t)
		}
	} else {
		dir, err := os.MkdirTemp("", "replay")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		bin := filepath.Join(dir, "rqpd")
		if err := smoke.BuildDaemon(bin); err != nil {
			return nil, err
		}
		addr, err := smoke.FreeAddr()
		if err != nil {
			return nil, err
		}
		// Tight limits so the replay itself pushes the daemon into its guardrails:
		// a run ceiling of one that the burst must overflow, a breaker that opens
		// within one drill, and a cooldown long enough that the circuit is still
		// open at the final scrape.
		stop, err := smoke.StartDaemon(bin, "-addr", addr,
			"-max-runs", "1", "-session-max-runs", "1", "-max-builds", "2",
			"-breaker-threshold", fmt.Sprint(breakerThreshold), "-breaker-cooldown", "5m")
		if err != nil {
			return nil, err
		}
		defer stop()
		bases = []string{"http://" + addr}
	}

	base := bases[0]
	for _, b := range bases {
		if err := smoke.Await(b+"/v1/healthz", 10*time.Second); err != nil {
			return nil, fmt.Errorf("daemon %s never became healthy: %w", b, err)
		}
	}
	// The anchor session every run/sweep targets: dense enough that
	// exhaustive sweeps are heavy, small enough to build quickly.
	id, err := smoke.CreateSession(base, `{"query":"2D_EQ","gridRes":16}`)
	if err != nil {
		return nil, err
	}
	if err := smoke.AwaitReady(base, id, 120*time.Second); err != nil {
		return nil, err
	}
	baseline, err := smoke.Goroutines(base)
	if err != nil {
		return nil, err
	}

	rec := newRecorder()
	rng := rand.New(rand.NewSource(seed))

	// Phase 1 — seeded open-loop mixed traffic: arrivals are a Poisson
	// process at -rate; an arrival fires regardless of how many requests are
	// still in flight (that is what makes overload real).
	log.Printf("mixed traffic: %v at %g req/s against %s across %d node(s)", duration, rate, id, len(bases))
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.Sub(start) > duration {
			break
		}
		// The target node is part of the seeded trace too: the same seed
		// sprays the same arrivals at the same members.
		nodeBase, node := base, ""
		if len(bases) > 1 {
			i := rng.Intn(len(bases))
			nodeBase, node = bases[i], targets[i]
		}
		time.Sleep(time.Until(next))
		ev := pick(rng, seed, mix)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(nodeBase, node, id, ev, rec, maxRetries, retryCap)
		}()
	}
	wg.Wait()

	settled := true
	final := baseline
	if len(targets) == 0 {
		// Phase 2 — shed drill: a concentrated burst of exhaustive sweeps past
		// the run ceiling. Admission control must shed the excess with 429, not
		// queue it.
		log.Print("shed drill: 16 concurrent exhaustive sweeps")
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The shed drill stays open-loop regardless of -retries: it
				// exists to overflow the run ceiling, not to recover from it.
				fire(base, "", id, trafficEvent{class: "sweep:burst", sweepMax: 0}, rec, 0, retryCap)
			}()
		}
		wg.Wait()

		// Phase 3 — breaker drill: CHAOS_FAIL builds fail on contact; after
		// breakerThreshold consecutive failures the next create must be rejected
		// 503 by the open circuit.
		log.Printf("breaker drill: %d consecutive failing builds", breakerThreshold)
		if err := breakerDrill(base, rec); err != nil {
			return nil, err
		}

		// Settle: the burst's handlers must wind down, not linger.
		n, settleErr := smoke.AwaitGoroutineSettle(base, baseline, 5, 15*time.Second)
		if n >= 0 {
			final = n
		}
		settled = settleErr == nil
	}

	// Scrape every node: the fleet-wide census is the sum of the members'.
	daemon := &daemonView{Guard: map[string]float64{}}
	for _, b := range bases {
		dv, err := scrapeDaemon(b)
		if err != nil {
			return nil, err
		}
		daemon.ShedTotal += dv.ShedTotal
		if dv.BreakerState > daemon.BreakerState {
			daemon.BreakerState = dv.BreakerState
		}
		for k, v := range dv.Guard {
			daemon.Guard[k] += v
		}
	}

	classes, strategies, nodes, guard := rec.snapshot()
	guard.BreakerOpened = daemon.BreakerState > 0
	rep := &report{
		Seed: seed, DurationS: duration.Seconds(), Rate: rate, Mix: mix, Targets: targets,
		Classes: classes, Strategies: strategies, Nodes: nodes, Guardrails: guard, Daemon: *daemon,
		Goroutines: leakCheck{Baseline: baseline, Final: final, Settled: settled},
	}
	if maxRetries > 0 {
		rec.mu.Lock()
		retry := rec.retry
		rec.mu.Unlock()
		rep.Retry = &retry
	}
	log.Printf("census: %d watchdog aborts, %d escapes, %d sheds, %d breaker rejections, %d crashes",
		guard.WatchdogAborts, guard.ESSEscapes, guard.Sheds, guard.BreakerRejections, guard.Crashes)
	return rep, nil
}

// fire executes one traffic event against base (attributed to node in the
// per-node breakdown when spraying a fleet) and records its outcome. In
// closed-loop mode (maxRetries > 0) a shed or breaker response is retried
// after sleeping the server's advertised Retry-After (capped at retryCap),
// up to the budget. Every attempt is recorded separately — a retried shed is
// still a shed in the census; the retry ledger tracks how the loop ended.
func fire(base, node, sessionID string, ev trafficEvent, rec *recorder, maxRetries int, retryCap time.Duration) {
	attempts := 0
	for {
		outcome, headers := fireOnce(base, node, sessionID, ev, rec)
		shed := outcome == "shed" || outcome == "breaker"
		raSecs := -1.0
		if headers != nil {
			if v, err := strconv.Atoi(headers.Get("Retry-After")); err == nil {
				raSecs = float64(v)
				if shed {
					rec.observeRetryAfter(ev.class, raSecs)
				}
			}
		}
		if !shed || attempts >= maxRetries {
			rec.observeRetry(attempts, outcome)
			return
		}
		attempts++
		// Honor the advertised backoff, bounded: the harness must not stall
		// minutes on a breaker cooldown to prove it listened.
		sleep := retryCap
		if raSecs >= 0 {
			if d := time.Duration(raSecs * float64(time.Second)); d < sleep {
				sleep = d
			}
		}
		time.Sleep(sleep)
	}
}

// fireOnce performs a single attempt of one traffic event. Contract
// outcomes: ok (200), shed (429), breaker (503), timeout (504); anything
// else is an unexpected failure. Every response's correlation headers are
// checked regardless of outcome.
func fireOnce(base, node, sessionID string, ev trafficEvent, rec *recorder) (string, http.Header) {
	var (
		status  int
		headers http.Header
		verdict string
		events  []telemetry.Event
		err     error
	)
	start := time.Now()
	switch {
	case ev.build:
		// A tiny real build: exercises the build limiter and keeps the
		// breaker's consecutive-failure count at zero during mixed traffic.
		status, headers, _, err = do(http.MethodPost, base+"/v1/sessions", `{"query":"2D_EQ","gridRes":4}`)
		if status == http.StatusAccepted || status == http.StatusCreated {
			status = http.StatusOK
		}
	case ev.body != "":
		var body []byte
		status, headers, body, err = do(http.MethodPost, base+"/v1/sessions/"+sessionID+"/run", ev.body)
		if status == http.StatusOK {
			var doc struct {
				GuardVerdict string            `json:"guardVerdict"`
				Events       []telemetry.Event `json:"events"`
			}
			if json.Unmarshal(body, &doc) == nil {
				verdict = doc.GuardVerdict
				events = doc.Events
			}
		}
	default:
		status, headers, _, err = do(http.MethodGet,
			fmt.Sprintf("%s/v1/sessions/%s/sweep?algorithm=spillbound&max=%d", base, sessionID, ev.sweepMax), "")
	}
	latency := time.Since(start)
	if err == nil {
		rec.observeTraceparent(headers)
	}
	outcome := "error"
	switch {
	case err != nil:
	case status == http.StatusOK:
		outcome = "ok"
	case status == http.StatusTooManyRequests:
		outcome = "shed"
	case status == http.StatusServiceUnavailable:
		outcome = "breaker"
	case status == http.StatusGatewayTimeout:
		outcome = "timeout"
	}
	rec.observe(ev.class, ev.strategy, node, outcome, latency, events, verdict)
	return outcome, headers
}

// breakerDrill runs breakerThreshold consecutive CHAOS_FAIL builds (each
// awaited to its failed terminal state so the failures are consecutive in
// the breaker's ledger) and then asserts the circuit rejects the next
// create with 503.
func breakerDrill(base string, rec *recorder) error {
	for i := 0; i < breakerThreshold; i++ {
		start := time.Now()
		status, headers, body, err := do(http.MethodPost, base+"/v1/sessions", `{"query":"CHAOS_FAIL"}`)
		if err != nil {
			return fmt.Errorf("chaos build %d: %w", i+1, err)
		}
		rec.observeTraceparent(headers)
		if status != http.StatusAccepted {
			return fmt.Errorf("chaos build %d: status %d: %s (breaker opened early?)", i+1, status, body)
		}
		var doc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &doc); err != nil || doc.ID == "" {
			return fmt.Errorf("chaos build %d: bad create response: %s", i+1, body)
		}
		if err := smoke.Poll("chaos session "+doc.ID+" failed", 10*time.Second, 50*time.Millisecond, func() (bool, error) {
			st, err := sessionStatus(base, doc.ID)
			return st == "failed", err
		}); err != nil {
			return err
		}
		rec.observe("build:chaos", "", "", "build_failed", time.Since(start), nil, "")
	}
	start := time.Now()
	status, headers, body, err := do(http.MethodPost, base+"/v1/sessions", `{"query":"CHAOS_FAIL"}`)
	if err != nil {
		return err
	}
	// The breaker's 503 must be correlatable too — that is the point of
	// stamping headers in the outermost middleware.
	rec.observeTraceparent(headers)
	latency := time.Since(start)
	if status != http.StatusServiceUnavailable {
		rec.observe("build:chaos", "", "", "error", latency, nil, "")
		return fmt.Errorf("create after %d consecutive build failures: status %d (want 503 from the open breaker): %s",
			breakerThreshold, status, body)
	}
	rec.observe("build:chaos", "", "", "breaker", latency, nil, "")
	return nil
}

func sessionStatus(base, id string) (string, error) {
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	return doc.Status, nil
}

// scrapeDaemon cross-checks the census against the daemon's own exposition.
func scrapeDaemon(base string) (*daemonView, error) {
	fams, err := smoke.Scrape(base)
	if err != nil {
		return nil, err
	}
	out := &daemonView{Guard: map[string]float64{}}
	if f := fams["rqp_shed_total"]; f != nil {
		for _, s := range f.Samples {
			out.ShedTotal += s.Value
		}
	}
	if f := fams["rqp_breaker_state"]; f != nil && len(f.Samples) > 0 {
		out.BreakerState = f.Samples[0].Value
	}
	if f := fams["rqp_guard_interventions_total"]; f != nil {
		for _, s := range f.Samples {
			out.Guard[s.Labels["verdict"]] += s.Value
		}
	}
	return out, nil
}

// do issues one request and returns (status, headers, body, error). Latency
// is the caller's business so retries never hide in the measurement.
func do(method, url, body string) (int, http.Header, []byte, error) {
	return smoke.Do(method, url, body)
}
