// Command metricssmoke is an end-to-end smoke test for the daemon's
// observability surface, wired to `make metrics-smoke`. It builds rqpd,
// boots it on a local port, drives one session through build → run →
// sweep, scrapes GET /v1/metrics, and validates the Prometheus text
// exposition with telemetry.ParseProm (cumulative buckets, terminal
// +Inf) plus the presence and non-zeroness of the key families. Exits
// non-zero on any failure; the daemon is shut down with SIGTERM so the
// graceful path is exercised too.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricssmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "metricssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "rqpd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rqpd").CombinedOutput(); err != nil {
		return fmt.Errorf("build rqpd: %v\n%s", err, out)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	cmd := exec.Command(bin, "-addr", addr)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	base := "http://" + addr
	if err := await(base+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("daemon never became healthy: %w", err)
	}

	// One full workflow so the run/build/sweep metrics are non-zero.
	id, err := createSession(base, `{"query":"2D_EQ","gridRes":6}`)
	if err != nil {
		return err
	}
	if err := awaitReady(base, id, 60*time.Second); err != nil {
		return err
	}
	if err := post(base+"/v1/sessions/"+id+"/run",
		`{"algorithm":"spillbound","truth":[0.04,0.1]}`); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if err := get(base + "/v1/sessions/" + id + "/sweep?algorithm=spillbound&max=16"); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	// One hit on a deprecated unversioned alias.
	if err := get(base + "/healthz"); err != nil {
		return err
	}

	return scrape(base)
}

// scrape fetches /v1/metrics and validates the exposition.
func scrape(base string) error {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fams, err := telemetry.ParseProm(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	for _, want := range []string{
		"rqp_requests_total",
		"rqp_request_duration_seconds",
		"rqp_deprecated_requests_total",
		"rqp_runs_total",
		"rqp_suboptimality",
		"rqp_session_builds_total",
		"rqp_sessions",
	} {
		f, ok := fams[want]
		if !ok {
			return fmt.Errorf("exposition missing family %s", want)
		}
		total := 0.0
		for _, s := range f.Samples {
			total += s.Value
		}
		if total <= 0 {
			return fmt.Errorf("family %s is all-zero after a run + sweep", want)
		}
	}
	log.Printf("scraped %d families, %d bytes, exposition valid", len(fams), len(body))
	return nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func await(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := get(url); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for %s", url)
}

func createSession(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("create session: status %d: %s", resp.StatusCode, b)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	if doc.ID == "" {
		return "", fmt.Errorf("create session: no id in response")
	}
	return doc.ID, nil
}

func awaitReady(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sessions/" + id)
		if err != nil {
			return err
		}
		var doc struct {
			Status     string `json:"status"`
			BuildError string `json:"buildError"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch doc.Status {
		case "ready":
			return nil
		case "failed":
			return fmt.Errorf("session build failed: %s", doc.BuildError)
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("session %s not ready after %v", id, timeout)
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return nil
}

func post(url, body string) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
	return nil
}
