// Command metricssmoke is an end-to-end smoke test for the daemon's
// observability and durability surfaces, wired to `make metrics-smoke`. It
// builds rqpd, boots it on a local port with a data directory, drives one
// session through build → durable run → sweep, scrapes GET /v1/metrics, and
// validates the Prometheus text exposition with telemetry.ParseProm
// (cumulative buckets, terminal +Inf) plus the presence and non-zeroness of
// the key families. It then stops the daemon (SIGTERM, exercising the
// graceful path), reboots it on the same -data directory, and verifies the
// recovered session serves its durable run resource over /v1 — the restart
// drill for `rqpd -data`. Exits non-zero on any failure.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/smoke"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricssmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "metricssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "rqpd")
	if err := smoke.BuildDaemon(bin); err != nil {
		return err
	}

	dataDir := filepath.Join(dir, "data")
	addr, err := smoke.FreeAddr()
	if err != nil {
		return err
	}
	stop, err := smoke.StartDaemon(bin, "-addr", addr, "-data", dataDir)
	if err != nil {
		return err
	}
	defer stop()

	base := "http://" + addr
	if err := smoke.Await(base+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("daemon never became healthy: %w", err)
	}

	// One full workflow so the run/build/sweep metrics are non-zero. The run
	// is durable so the checkpoint counter ticks and the restart drill below
	// has a run resource to recover.
	id, err := smoke.CreateSession(base, `{"query":"2D_EQ","gridRes":6}`)
	if err != nil {
		return err
	}
	if err := smoke.AwaitReady(base, id, 60*time.Second); err != nil {
		return err
	}
	if err := smoke.Post(base+"/v1/sessions/"+id+"/run",
		`{"algorithm":"spillbound","truth":[0.04,0.1],"durable":true}`); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if err := smoke.Get(base + "/v1/sessions/" + id + "/sweep?algorithm=spillbound&max=16"); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	// One hit on a deprecated unversioned alias.
	if err := smoke.Get(base + "/healthz"); err != nil {
		return err
	}
	if err := checkFamilies(base); err != nil {
		return err
	}

	// Restart drill: stop the daemon (SIGTERM — graceful path), reboot on the
	// same data directory, and the recovered session must serve its durable
	// run resource over /v1 without a client-visible rebuild.
	stop()
	addr2, err := smoke.FreeAddr()
	if err != nil {
		return err
	}
	stop2, err := smoke.StartDaemon(bin, "-addr", addr2, "-data", dataDir)
	if err != nil {
		return err
	}
	defer stop2()
	base2 := "http://" + addr2
	if err := smoke.Await(base2+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("restarted daemon never became healthy: %w", err)
	}
	if err := smoke.AwaitReady(base2, id, 60*time.Second); err != nil {
		return fmt.Errorf("recovered session: %w", err)
	}
	if err := checkRunRecovered(base2, id, "r1"); err != nil {
		return err
	}
	log.Printf("restart drill: session %s and run r1 recovered from %s", id, dataDir)
	return nil
}

// checkRunRecovered asserts the restarted daemon lists the durable run as
// completed.
func checkRunRecovered(base, sid, rid string) error {
	resp, err := http.Get(base + "/v1/sessions/" + sid + "/runs/" + rid)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("recovered run %s: status %d: %s", rid, resp.StatusCode, b)
	}
	var doc struct {
		RunID  string `json:"runId"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return err
	}
	if doc.RunID != rid || (doc.Status != "" && doc.Status != "completed") {
		return fmt.Errorf("recovered run resource: %+v", doc)
	}
	return nil
}

// checkFamilies scrapes /v1/metrics and asserts the key families are present
// and non-zero after a run + sweep.
func checkFamilies(base string) error {
	fams, err := smoke.Scrape(base)
	if err != nil {
		return err
	}
	for _, want := range []string{
		"rqp_requests_total",
		"rqp_request_duration_seconds",
		"rqp_deprecated_requests_total",
		"rqp_runs_total",
		"rqp_suboptimality",
		"rqp_session_builds_total",
		"rqp_session_build_duration_seconds",
		"rqp_sessions",
		"rqp_sessions_active",
		"rqp_checkpoints_total",
		"rqp_trace_spans_total",
		"rqp_goroutines",
		"rqp_heap_bytes",
	} {
		f, ok := fams[want]
		if !ok {
			return fmt.Errorf("exposition missing family %s", want)
		}
		total := 0.0
		for _, s := range f.Samples {
			total += s.Value
		}
		if total <= 0 {
			return fmt.Errorf("family %s is all-zero after a run + sweep", want)
		}
	}
	log.Printf("scraped %d families, exposition valid", len(fams))
	return nil
}
