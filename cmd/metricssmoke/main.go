// Command metricssmoke is an end-to-end smoke test for the daemon's
// observability and durability surfaces, wired to `make metrics-smoke`. It
// builds rqpd, boots it on a local port with a data directory, drives one
// session through build → durable run → sweep, scrapes GET /v1/metrics, and
// validates the Prometheus text exposition with telemetry.ParseProm
// (cumulative buckets, terminal +Inf) plus the presence and non-zeroness of
// the key families. It then stops the daemon (SIGTERM, exercising the
// graceful path), reboots it on the same -data directory, and verifies the
// recovered session serves its durable run resource over /v1 — the restart
// drill for `rqpd -data`. Exits non-zero on any failure.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricssmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "metricssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "rqpd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rqpd").CombinedOutput(); err != nil {
		return fmt.Errorf("build rqpd: %v\n%s", err, out)
	}

	dataDir := filepath.Join(dir, "data")
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	stop, err := startDaemon(bin, addr, dataDir)
	if err != nil {
		return err
	}
	defer stop()

	base := "http://" + addr
	if err := await(base+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("daemon never became healthy: %w", err)
	}

	// One full workflow so the run/build/sweep metrics are non-zero. The run
	// is durable so the checkpoint counter ticks and the restart drill below
	// has a run resource to recover.
	id, err := createSession(base, `{"query":"2D_EQ","gridRes":6}`)
	if err != nil {
		return err
	}
	if err := awaitReady(base, id, 60*time.Second); err != nil {
		return err
	}
	if err := post(base+"/v1/sessions/"+id+"/run",
		`{"algorithm":"spillbound","truth":[0.04,0.1],"durable":true}`); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if err := get(base + "/v1/sessions/" + id + "/sweep?algorithm=spillbound&max=16"); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	// One hit on a deprecated unversioned alias.
	if err := get(base + "/healthz"); err != nil {
		return err
	}
	if err := scrape(base); err != nil {
		return err
	}

	// Restart drill: stop the daemon (SIGTERM — graceful path), reboot on the
	// same data directory, and the recovered session must serve its durable
	// run resource over /v1 without a client-visible rebuild.
	stop()
	addr2, err := freeAddr()
	if err != nil {
		return err
	}
	stop2, err := startDaemon(bin, addr2, dataDir)
	if err != nil {
		return err
	}
	defer stop2()
	base2 := "http://" + addr2
	if err := await(base2+"/v1/healthz", 10*time.Second); err != nil {
		return fmt.Errorf("restarted daemon never became healthy: %w", err)
	}
	if err := awaitReady(base2, id, 60*time.Second); err != nil {
		return fmt.Errorf("recovered session: %w", err)
	}
	if err := checkRunRecovered(base2, id, "r1"); err != nil {
		return err
	}
	log.Printf("restart drill: session %s and run r1 recovered from %s", id, dataDir)
	return nil
}

// startDaemon boots rqpd and returns an idempotent stop function (SIGTERM
// with a kill fallback).
func startDaemon(bin, addr, dataDir string) (func(), error) {
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}, nil
}

// checkRunRecovered asserts the restarted daemon lists the durable run as
// completed.
func checkRunRecovered(base, sid, rid string) error {
	resp, err := http.Get(base + "/v1/sessions/" + sid + "/runs/" + rid)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("recovered run %s: status %d: %s", rid, resp.StatusCode, b)
	}
	var doc struct {
		RunID  string `json:"runId"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return err
	}
	if doc.RunID != rid || (doc.Status != "" && doc.Status != "completed") {
		return fmt.Errorf("recovered run resource: %+v", doc)
	}
	return nil
}

// scrape fetches /v1/metrics and validates the exposition.
func scrape(base string) error {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fams, err := telemetry.ParseProm(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	for _, want := range []string{
		"rqp_requests_total",
		"rqp_request_duration_seconds",
		"rqp_deprecated_requests_total",
		"rqp_runs_total",
		"rqp_suboptimality",
		"rqp_session_builds_total",
		"rqp_sessions",
		"rqp_checkpoints_total",
	} {
		f, ok := fams[want]
		if !ok {
			return fmt.Errorf("exposition missing family %s", want)
		}
		total := 0.0
		for _, s := range f.Samples {
			total += s.Value
		}
		if total <= 0 {
			return fmt.Errorf("family %s is all-zero after a run + sweep", want)
		}
	}
	log.Printf("scraped %d families, %d bytes, exposition valid", len(fams), len(body))
	return nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// poll drives fn immediately and then every interval until it reports done,
// returns a permanent error, or the deadline passes. The last attempt runs
// at the deadline itself (the sleep never overshoots it), so a condition
// that becomes true late still passes instead of flaking on sleep phase.
func poll(what string, timeout, interval time.Duration, fn func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	for {
		done, err := fn()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("timeout after %v waiting for %s", timeout, what)
		}
		if remaining < interval {
			interval = remaining
		}
		time.Sleep(interval)
	}
}

func await(url string, timeout time.Duration) error {
	return poll(url, timeout, 50*time.Millisecond, func() (bool, error) {
		// Connection errors are expected while the daemon boots: keep polling.
		return get(url) == nil, nil
	})
}

func createSession(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("create session: status %d: %s", resp.StatusCode, b)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	if doc.ID == "" {
		return "", fmt.Errorf("create session: no id in response")
	}
	return doc.ID, nil
}

func awaitReady(base, id string, timeout time.Duration) error {
	return poll("session "+id+" ready", timeout, 50*time.Millisecond, func() (bool, error) {
		resp, err := http.Get(base + "/v1/sessions/" + id)
		if err != nil {
			return false, err
		}
		var doc struct {
			Status     string `json:"status"`
			BuildError string `json:"buildError"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		switch doc.Status {
		case "ready":
			return true, nil
		case "failed":
			return false, fmt.Errorf("session build failed: %s", doc.BuildError)
		}
		return false, nil
	})
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return nil
}

func post(url, body string) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
	return nil
}
