// Command brownoutsmoke is the end-to-end fleet overload drill: boot a
// 3-node rqpd fleet with a deliberately tiny run ceiling and a fast brownout
// tick, saturate one node with a sweep storm, and assert the fleet-aware
// overload contract:
//
//   - the saturated owner's load vitals gossip to its peers on heartbeats,
//     and the peers' /v1/fleet/vitals view shows the owner at high pressure;
//   - peers shed traffic bound for the saturated owner AT THE EDGE
//     (rqp_proxy_sheds_total{reason="pressure"} grows, the 503 quotes the
//     owner's advertised Retry-After, and the owner never sees the request);
//   - hedging is suppressed while the fleet is pressured (zero new hedges
//     across the storm window) — a hedge under overload is amplification;
//   - a client retry storm with a spent X-Rqp-Retry-Budget is rejected
//     without a single cross-fleet wire attempt (bounded fan-out);
//   - the owner's staged brownout controller ascends to stage >= 2 under
//     sustained pressure and recovers to stage 0 once the storm stops, with
//     the transitions recorded as markers in the fleet trace;
//   - no goroutines leak on any node once the storm drains.
//
// Exits 0 on success; any violated expectation is fatal. Wired into CI via
// `make brownout-smoke`.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/smoke"
	"repro/internal/telemetry"
)

const (
	hbInterval       = 100 * time.Millisecond
	brownoutInterval = 50 * time.Millisecond
	stormWorkers     = 16
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brownoutsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "brownoutsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "rqpd")
	if err := smoke.BuildDaemon(bin); err != nil {
		return err
	}
	data := filepath.Join(tmp, "data")
	if err := os.MkdirAll(data, 0o755); err != nil {
		return err
	}

	// --- Boot a 3-node fleet tuned so one storm saturates one node. --------
	addrs := make([]string, 3)
	for i := range addrs {
		if addrs[i], err = smoke.FreeAddr(); err != nil {
			return err
		}
	}
	peers := strings.Join(addrs, ",")
	daemons := make(map[string]*smoke.Daemon, len(addrs))
	defer func() {
		for _, d := range daemons {
			d.Stop()
		}
	}()
	for _, a := range addrs {
		d, err := smoke.Start(bin,
			"-addr", a, "-peers", peers, "-data", data,
			"-heartbeat-interval", hbInterval.String(),
			"-heartbeat-down", "2", "-heartbeat-up", "2",
			// A run ceiling of one makes the storm's overflow immediate, and
			// the fast brownout tick makes the stage ladder observable within
			// the drill's patience.
			"-max-runs", "1", "-brownout-interval", brownoutInterval.String(),
			// An aggressive hedge delay: any proxied read that IS allowed to
			// hedge would — so a zero hedge delta is a real suppression proof.
			"-hedge-delay", "1ms",
			"-session-ttl", "0", "-trace-sample", "0",
		)
		if err != nil {
			return err
		}
		daemons[a] = d
	}
	for _, a := range addrs {
		if err := smoke.Await("http://"+a+"/v1/fleet/health", 10*time.Second); err != nil {
			return err
		}
	}
	// Every node must see the full membership before placement: a session
	// created against a still-forming ring can hash to a different owner
	// than the fully-formed ring reports, and the drill would then storm a
	// node that only proxies.
	for _, a := range addrs {
		addr := a
		err := smoke.Poll(addr+" to see the full fleet", 10*time.Second, 50*time.Millisecond, func() (bool, error) {
			var doc struct {
				Live int `json:"live"`
			}
			if err := getJSON(addr, "/v1/fleet/peers", &doc); err != nil {
				return false, nil
			}
			return doc.Live == len(addrs), nil
		})
		if err != nil {
			return err
		}
	}
	log.Printf("fleet of %d live: %s", len(addrs), peers)

	// --- Place a session; find its owner and a fronting peer. --------------
	// A denser grid makes every sweep heavy enough to span scheduler
	// preemption quanta even on a single-core machine: concurrent sweeps
	// then genuinely overlap inside the admission window, so the run
	// ceiling of one actually sheds (same reasoning as overloadsmoke).
	id, err := smoke.CreateSession("http://"+addrs[0], `{"query":"2D_EQ","gridRes":16}`)
	if err != nil {
		return err
	}
	var routeDoc struct {
		Owner string `json:"owner"`
	}
	if err := getJSON(addrs[0], "/v1/fleet/route?key="+id, &routeDoc); err != nil {
		return err
	}
	owner := routeDoc.Owner
	front := ""
	for _, a := range addrs {
		if a != owner {
			front = a
			break
		}
	}
	if owner == "" || front == "" {
		return fmt.Errorf("could not resolve owner/front for %s (owner %q)", id, owner)
	}
	log.Printf("session %s owned by %s, fronting via %s", id, owner, front)
	if err := smoke.AwaitReady("http://"+front, id, 60*time.Second); err != nil {
		return err
	}

	// Baselines AFTER setup: session-ready polling through the front already
	// proxied reads (and may legitimately have hedged them).
	baseline := make(map[string]int, len(addrs))
	for _, a := range addrs {
		if baseline[a], err = smoke.Goroutines("http://" + a); err != nil {
			return err
		}
	}
	frontFams, err := smoke.Scrape("http://" + front)
	if err != nil {
		return err
	}
	hedgeBase := counter(frontFams, "rqp_hedges_total", "")
	budgetShedBase := counter(frontFams, "rqp_proxy_sheds_total", "retry_budget")

	// --- Saturation storm: peg the owner's run class. ----------------------
	// Direct-at-owner sweeps keep its inflight at the ceiling and its shed
	// rate high, so its gossiped pressure reads 1.0 for the storm's duration.
	stop := make(chan struct{})
	var storm sync.WaitGroup
	var tallyMu sync.Mutex
	tally := map[string]int{}
	sweepURL := "http://" + owner + "/v1/sessions/" + id + "/sweep?algorithm=spillbound&max=0"
	for i := 0; i < stormWorkers; i++ {
		storm.Add(1)
		go func() {
			defer storm.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(sweepURL)
				k := "err"
				if err == nil {
					k = fmt.Sprint(resp.StatusCode)
					resp.Body.Close()
				}
				tallyMu.Lock()
				tally[k]++
				tallyMu.Unlock()
			}
		}()
	}
	defer func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		storm.Wait()
	}()

	// --- Gossip: the front learns the owner is saturated. ------------------
	overloadDump := func(err error) error {
		tallyMu.Lock()
		tdump := fmt.Sprint(tally)
		tallyMu.Unlock()
		_, _, vraw, _ := smoke.Do(http.MethodGet, "http://"+front+"/v1/fleet/vitals", "")
		_, _, oraw, _ := smoke.Do(http.MethodGet, "http://"+owner+"/v1/fleet/vitals", "")
		return fmt.Errorf("%w\nstorm tally: %s\nfront vitals: %s\nowner vitals: %s", err, tdump, vraw, oraw)
	}
	err = smoke.Poll("owner pressure to gossip to the front", 30*time.Second, 50*time.Millisecond, func() (bool, error) {
		p, ok, err := peerPressure(front, owner)
		if err != nil {
			return false, nil
		}
		return ok && p >= 0.9, nil
	})
	if err != nil {
		return overloadDump(err)
	}
	log.Printf("front %s sees owner pressure >= 0.9 via gossip", front)

	// --- Brownout: the owner's stage ladder ascends under pressure. --------
	err = smoke.Poll("owner brownout stage >= 2", 30*time.Second, 50*time.Millisecond, func() (bool, error) {
		st, err := brownoutStage(owner)
		return err == nil && st >= 2, nil
	})
	if err != nil {
		return overloadDump(err)
	}
	log.Printf("owner %s browned out to stage >= 2", owner)

	// --- Edge shed: the front rejects without touching the owner. ----------
	var edgeSheds int
	for i := 0; i < 10; i++ {
		st, hdr, body, err := smoke.Do(http.MethodGet, "http://"+front+"/v1/sessions/"+id, "")
		if err != nil {
			return err
		}
		if st != http.StatusServiceUnavailable {
			continue // a probe raced a vitals refresh; the count below decides
		}
		if !strings.Contains(string(body), "owner_overloaded") {
			return fmt.Errorf("edge shed body: %s", body)
		}
		if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
			return fmt.Errorf("edge shed Retry-After %q, want a positive integer", hdr.Get("Retry-After"))
		}
		edgeSheds++
	}
	if edgeSheds == 0 {
		return fmt.Errorf("no request was shed at the edge despite gossiped saturation")
	}
	fams, err := smoke.Scrape("http://" + front)
	if err != nil {
		return err
	}
	if v := counter(fams, "rqp_proxy_sheds_total", "pressure"); v < float64(edgeSheds) {
		return fmt.Errorf("rqp_proxy_sheds_total{pressure} = %v, want >= %d", v, edgeSheds)
	}
	log.Printf("edge shed %d/10 fronted reads with Retry-After", edgeSheds)

	// --- Anti-amplification: zero hedges under pressure. -------------------
	if v := counter(fams, "rqp_hedges_total", ""); v != hedgeBase {
		return fmt.Errorf("rqp_hedges_total grew %v -> %v during the storm; hedging must be suppressed under pressure", hedgeBase, v)
	}
	log.Print("no hedges launched while the fleet was pressured")

	// --- Bounded retry storm: a spent budget never crosses the fleet. ------
	const stormRequests = 20
	for i := 0; i < stormRequests; i++ {
		req, err := http.NewRequest(http.MethodGet, "http://"+front+"/v1/sessions/"+id, nil)
		if err != nil {
			return err
		}
		req.Header.Set(fleet.RetryBudgetHeader, "0")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			return fmt.Errorf("budget-0 request %d: status %d, want 429", i+1, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			return fmt.Errorf("budget-0 rejection lacks Retry-After")
		}
	}
	fams, err = smoke.Scrape("http://" + front)
	if err != nil {
		return err
	}
	if v := counter(fams, "rqp_proxy_sheds_total", "retry_budget"); v != budgetShedBase+stormRequests {
		return fmt.Errorf("rqp_proxy_sheds_total{retry_budget} = %v, want %v: every spent-budget request must be rejected before the wire",
			v, budgetShedBase+stormRequests)
	}
	log.Printf("retry storm of %d budget-0 requests rejected with zero cross-fleet attempts", stormRequests)

	// --- Recovery: stop the storm; the stage ladder descends to 0. ---------
	close(stop)
	storm.Wait()
	err = smoke.Poll("owner brownout stage back to 0", 30*time.Second, 100*time.Millisecond, func() (bool, error) {
		st, err := brownoutStage(owner)
		return err == nil && st == 0, nil
	})
	if err != nil {
		return err
	}
	log.Printf("owner recovered to stage 0")

	// The episode must be legible after the fact: the fleet trace carries the
	// stage transitions as zero-width markers.
	var peersDoc struct {
		FleetTraceID string `json:"fleetTraceId"`
	}
	if err := getJSON(owner, "/v1/fleet/peers", &peersDoc); err != nil {
		return err
	}
	st, _, tbody, err := smoke.Do(http.MethodGet, "http://"+owner+"/v1/runs/"+peersDoc.FleetTraceID+"/trace", "")
	if err != nil {
		return err
	}
	if st != http.StatusOK || !strings.Contains(string(tbody), "brownout_stage") {
		return fmt.Errorf("fleet trace %s: status %d, want 200 with brownout_stage markers: %.200s", peersDoc.FleetTraceID, st, tbody)
	}
	log.Print("fleet trace carries brownout_stage markers")

	// --- Goroutine hygiene everywhere once the storm drained. --------------
	for _, a := range addrs {
		if _, err := smoke.AwaitGoroutineSettle("http://"+a, baseline[a], 10, 20*time.Second); err != nil {
			return fmt.Errorf("goroutine leak on %s: %w", a, err)
		}
	}
	return nil
}

// peerPressure reads addr's gossiped view of peer's pressure from
// /v1/fleet/vitals; ok is false while no fresh vitals are cached.
func peerPressure(addr, peer string) (float64, bool, error) {
	var doc struct {
		Peers map[string]struct {
			Pressure float64 `json:"pressure"`
		} `json:"peers"`
	}
	if err := getJSON(addr, "/v1/fleet/vitals", &doc); err != nil {
		return 0, false, err
	}
	p, ok := doc.Peers[peer]
	return p.Pressure, ok, nil
}

// brownoutStage scrapes addr's rqp_brownout_stage gauge.
func brownoutStage(addr string) (int, error) {
	fams, err := smoke.Scrape("http://" + addr)
	if err != nil {
		return 0, err
	}
	fam, ok := fams["rqp_brownout_stage"]
	if !ok || len(fam.Samples) == 0 {
		return 0, fmt.Errorf("%s exposes no rqp_brownout_stage", addr)
	}
	return int(fam.Samples[0].Value), nil
}

// counter sums a counter family's samples, optionally filtering on a reason
// label.
func counter(fams map[string]*telemetry.ParsedFamily, name, reason string) float64 {
	fam, ok := fams[name]
	if !ok {
		return 0
	}
	var sum float64
	for _, s := range fam.Samples {
		if reason != "" && s.Labels["reason"] != reason {
			continue
		}
		sum += s.Value
	}
	return sum
}

func getJSON(addr, path string, v any) error {
	st, _, b, err := smoke.Do(http.MethodGet, "http://"+addr+path, "")
	if err != nil {
		return err
	}
	if st != http.StatusOK {
		return fmt.Errorf("GET %s%s: status %d: %s", addr, path, st, b)
	}
	return json.Unmarshal(b, v)
}
