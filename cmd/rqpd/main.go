// Command rqpd serves the robust query processing library over HTTP: build
// sessions (offline ESS construction, parallelized across -build-workers)
// asynchronously, then answer per-instance run and sweep requests with
// guarantees and traces. The API is versioned under /v1; session creation
// returns 202 Accepted and the session resource reports build progress
// until it is ready.
//
//	rqpd -addr :8080
//	curl -s localhost:8080/v1/queries
//	curl -s -XPOST localhost:8080/v1/sessions -d '{"query":"2D_EQ"}'
//	curl -s localhost:8080/v1/sessions/s1          # poll until "ready"
//	curl -s -XPOST localhost:8080/v1/sessions/s1/run \
//	     -d '{"algorithm":"spillbound","truth":[0.04,0.1]}'
//
// Observability: GET /v1/metrics serves Prometheus text exposition
// (request, run, sub-optimality and session-build metrics; negotiate
// Accept: application/openmetrics-text for bucket exemplars carrying trace
// IDs), GET /v1/debug/stats returns a JSON runtime+metrics snapshot, and
// -pprof mounts net/http/pprof under /debug/pprof/ (off by default). Every
// response carries a W3C Traceparent and X-Request-ID; span trees of
// sampled runs and builds are served at GET /v1/runs/{traceID}/trace
// (?format=svg renders a flamegraph), with retention governed by
// -trace-sample.
//
// The daemon carries the operational guard rails of internal/server: panic
// recovery, per-request timeouts (requests pass their deadline down into
// the discovery algorithms, which abort mid-contour), a session TTL with
// background eviction, slowloris-resistant socket timeouts, adaptive
// overload control (-max-runs/-max-builds AIMD limiters, -session-max-runs
// bulkheads, a -breaker-threshold build circuit breaker; excess work is shed
// with 429/503 + Retry-After), and graceful shutdown on SIGINT/SIGTERM
// (in-flight session builds are canceled).
//
// In fleet mode (-peers) nodes also gossip load vitals on their heartbeats:
// the proxy sheds traffic bound for a saturated owner at the edge
// (-shed-pressure) quoting the owner's own Retry-After hint, hedging is
// suppressed near saturation (-hedge-pressure), a per-request retry budget
// (-retry-budget, threaded via X-Rqp-Retry-Budget) caps cross-fleet
// fan-out, and a staged brownout controller (-brownout) progressively
// disables hedging and trace sampling, then sheds expensive reads, builds,
// and finally runs under sustained fleet-wide pressure.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle session eviction TTL (0 disables)")
	maxSessions := flag.Int("max-sessions", 256, "live session cap (0 = unlimited)")
	buildWorkers := flag.Int("build-workers", 0, "ESS build parallelism per session (0 = GOMAXPROCS)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown budget")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU, heap, goroutine profiles)")
	dataDir := flag.String("data", "", "durable data directory: persists sessions (ESS) and checkpointed runs; on restart, sessions are rehydrated without rebuilding and interrupted runs resume from their last checkpoint")
	maxRuns := flag.Int("max-runs", 64, "adaptive concurrent run/sweep ceiling; excess requests are shed with 429 (0 disables)")
	maxBuilds := flag.Int("max-builds", 4, "adaptive concurrent session-build ceiling (0 disables)")
	sessionMaxRuns := flag.Int("session-max-runs", 32, "per-session concurrent run bulkhead (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive session-build failures that open the build circuit breaker (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long the open build breaker rejects before a half-open probe")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling rate for span-tree retention, deterministic per trace ID (0 keeps every trace, negative keeps none)")
	peers := flag.String("peers", "", "comma-separated fleet peer addresses (host:port), this node included: enables the multi-node session fabric (consistent-hash routing, transparent proxying, any-node failover); requires -data on a shared filesystem")
	advertise := flag.String("advertise", "", "address peers reach this node at (default: -addr)")
	hbInterval := flag.Duration("heartbeat-interval", time.Second, "fleet heartbeat probe cadence")
	hbTimeout := flag.Duration("heartbeat-timeout", 0, "per-probe timeout (0 = half the interval)")
	hbDown := flag.Int("heartbeat-down", 3, "consecutive probe failures that mark a peer down")
	hbUp := flag.Int("heartbeat-up", 2, "consecutive probe successes that mark a down peer back up")
	hedgeDelay := flag.Duration("hedge-delay", 150*time.Millisecond, "delay before hedging a slow proxied idempotent read (negative disables)")
	brownout := flag.Bool("brownout", true, "staged brownout under fleet pressure: progressively disable hedging/trace sampling, then shed expensive reads, builds, and finally runs (fleet mode only; single-node rqpd never browns out)")
	brownoutInterval := flag.Duration("brownout-interval", time.Second, "brownout controller tick cadence")
	shedPressure := flag.Float64("shed-pressure", 0.9, "gossiped owner pressure at which the proxy sheds at the edge instead of forwarding (≥1 disables)")
	hedgePressure := flag.Float64("hedge-pressure", 0.6, "gossiped owner pressure at which proxied-read hedging is suppressed")
	retryBudget := flag.Int("retry-budget", 3, "wire attempts (primary+retry+hedge) one proxied request may spend across the fleet; threaded via X-Rqp-Retry-Budget")
	flag.Parse()

	api := server.NewWithConfig(server.Config{
		RequestTimeout:      *reqTimeout,
		SessionTTL:          *sessionTTL,
		MaxSessions:         *maxSessions,
		BuildWorkers:        *buildWorkers,
		DataDir:             *dataDir,
		MaxConcurrentRuns:   *maxRuns,
		MaxConcurrentBuilds: *maxBuilds,
		SessionMaxRuns:      *sessionMaxRuns,
		BreakerThreshold:    *breakerThreshold,
		BreakerCooldown:     *breakerCooldown,
		TraceSample:         *traceSample,
		// Brownout is a fleet behavior: a single node has no gossip to steer
		// by, and the single-node API must stay byte-identical. The controller
		// is only constructed (and its loop only started) in fleet mode.
		Brownout:         *peers != "" && *brownout,
		BrownoutInterval: *brownoutInterval,
	})
	api.StartEviction()
	defer api.Close()

	var node *fleet.Node
	self := *advertise
	if self == "" {
		self = *addr
	}
	if *peers != "" {
		if *dataDir == "" {
			log.Fatal("rqpd: -peers requires -data (a shared durable directory is what makes any-node failover possible)")
		}
		var err error
		node, err = fleet.New(fleet.Config{
			Self:              self,
			Peers:             strings.Split(*peers, ","),
			DataDir:           *dataDir,
			HeartbeatInterval: *hbInterval,
			ProbeTimeout:      *hbTimeout,
			MarkDown:          *hbDown,
			MarkUp:            *hbUp,
			ProxyTimeout:      *reqTimeout,
			HedgeDelay:        *hedgeDelay,
			ShedPressure:      *shedPressure,
			HedgePressure:     *hedgePressure,
			RetryBudget:       *retryBudget,
		}, api)
		if err != nil {
			log.Fatalf("rqpd fleet: %v", err)
		}
		api.StartBrownout()
	} else if *dataDir != "" {
		// Single-node restart recovery. A fleet node skips it: its initial
		// orphan scan adopts exactly the sessions the ring assigns it, so a
		// rolling restart doesn't have every node rebuild every session.
		if err := api.Recover(context.Background()); err != nil {
			log.Printf("rqpd recovery: %v", err)
		}
	}

	var handler http.Handler
	if node != nil {
		handler = node.Handler()
		node.Start()
		defer node.Close()
		log.Printf("rqpd fleet member %s of %s (trace %s)", self, *peers, node.FleetTraceID())
	} else {
		handler = api.Handler()
	}
	if *pprofOn {
		// The profiling surface bypasses the API middleware (its own mux):
		// profile streams run longer than the per-request timeout allows,
		// and a panic inside pprof handlers is a process bug worth a stack.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("rqpd profiling enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Socket-level guards against slow clients (slowloris): bound how
		// long headers may trickle in and how long idle keep-alives linger.
		// No blanket WriteTimeout — session builds legitimately run long;
		// the per-request middleware deadline governs handler work instead.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rqpd listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("rqpd shutting down (signal)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("rqpd shutdown: %v", err)
		}
		log.Printf("rqpd stopped")
	}
}
