// Command rqpd serves the robust query processing library over HTTP: build
// sessions (offline ESS construction, parallelized across -build-workers)
// asynchronously, then answer per-instance run and sweep requests with
// guarantees and traces. The API is versioned under /v1; session creation
// returns 202 Accepted and the session resource reports build progress
// until it is ready.
//
//	rqpd -addr :8080
//	curl -s localhost:8080/v1/queries
//	curl -s -XPOST localhost:8080/v1/sessions -d '{"query":"2D_EQ"}'
//	curl -s localhost:8080/v1/sessions/s1          # poll until "ready"
//	curl -s -XPOST localhost:8080/v1/sessions/s1/run \
//	     -d '{"algorithm":"spillbound","truth":[0.04,0.1]}'
//
// The daemon carries the operational guard rails of internal/server: panic
// recovery, per-request timeouts (requests pass their deadline down into
// the discovery algorithms, which abort mid-contour), a session TTL with
// background eviction, slowloris-resistant socket timeouts, and graceful
// shutdown on SIGINT/SIGTERM (in-flight session builds are canceled).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle session eviction TTL (0 disables)")
	maxSessions := flag.Int("max-sessions", 256, "live session cap (0 = unlimited)")
	buildWorkers := flag.Int("build-workers", 0, "ESS build parallelism per session (0 = GOMAXPROCS)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown budget")
	flag.Parse()

	api := server.NewWithConfig(server.Config{
		RequestTimeout: *reqTimeout,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		BuildWorkers:   *buildWorkers,
	})
	api.StartEviction()
	defer api.Close()

	srv := &http.Server{
		Addr:    *addr,
		Handler: api.Handler(),
		// Socket-level guards against slow clients (slowloris): bound how
		// long headers may trickle in and how long idle keep-alives linger.
		// No blanket WriteTimeout — session builds legitimately run long;
		// the per-request middleware deadline governs handler work instead.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rqpd listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("rqpd shutting down (signal)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("rqpd shutdown: %v", err)
		}
		log.Printf("rqpd stopped")
	}
}
