// Command rqpd serves the robust query processing library over HTTP: build
// sessions (offline ESS construction) once, then answer per-instance run
// and sweep requests with guarantees and traces.
//
//	rqpd -addr :8080
//	curl -s localhost:8080/queries
//	curl -s -XPOST localhost:8080/sessions -d '{"query":"2D_EQ"}'
//	curl -s -XPOST localhost:8080/sessions/s1/run \
//	     -d '{"algorithm":"spillbound","truth":[0.04,0.1]}'
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New().Handler(),
	}
	log.Printf("rqpd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
