// Command strategysweep is the strategy-registry smoke, wired to
// `make sweep-strategies`. It builds one 2D benchmark session, sweeps every
// registered strategy over a shared location sample (SweepStrategies), and
// asserts each strategy's MSO is finite and at least 1 — including the
// selection family, whose budget-doubling ladder has no a-priori bound but
// must still realize finite cost everywhere. Discovery strategies are
// additionally checked against their MSO guarantees.
//
// It then drives a seeded error-regime scenario sweep (watchdog and
// ESS-escape drills) for a discovery and a selection strategy and asserts
// the guard-verdict census is populated: budget aborts in the
// regret-correlated regime for both, ESS escapes in the adversarial regime
// for the discovery strategy. Exit status is non-zero on any violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	repro "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("strategysweep: ")
	var (
		queryName = flag.String("query", "2D_EQ", "2D benchmark query")
		gridRes   = flag.Int("res", 8, "ESS grid resolution")
		maxLoc    = flag.Int("max", 16, "location sample per sweep (0 = exhaustive)")
		perRegime = flag.Int("per-regime", 1, "scenarios per error regime in the census sweep")
		seed      = flag.Int64("seed", 1, "scenario suite seed")
	)
	flag.Parse()
	if err := run(*queryName, *gridRes, *maxLoc, *perRegime, *seed); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS: every registered strategy swept finite, guard census populated")
}

func run(queryName string, gridRes, maxLoc, perRegime int, seed int64) error {
	bq, ok := repro.BenchmarkQueryByName(queryName)
	if !ok {
		return fmt.Errorf("unknown query %q", queryName)
	}
	opts := repro.BenchmarkOptions()
	opts.GridRes = gridRes
	log.Printf("building %s session (res %d)...", bq.Name, gridRes)
	sess, err := repro.NewBenchmarkSession(bq, opts)
	if err != nil {
		return err
	}
	if sess.D() != 2 {
		return fmt.Errorf("%s is %dD; the smoke needs a 2D session", bq.Name, sess.D())
	}
	ctx := context.Background()

	// Phase 1 — every registered strategy over one shared cell sample.
	sums, err := sess.SweepStrategies(ctx, nil, maxLoc)
	if err != nil {
		return err
	}
	if want := len(repro.StrategyNames()); len(sums) != want {
		return fmt.Errorf("swept %d strategies, registry has %d", len(sums), want)
	}
	var problems []string
	fmt.Printf("%-14s %10s %10s %10s\n", "strategy", "MSO", "ASO", "bound")
	for _, sum := range sums {
		g := sess.Guarantee(sum.Algorithm)
		bound := "none"
		if !math.IsInf(g, 1) {
			bound = fmt.Sprintf("%.4g", g)
		}
		fmt.Printf("%-14s %10.4g %10.4g %10s\n", sum.Algorithm, sum.MSO, sum.ASO, bound)
		if math.IsInf(sum.MSO, 0) || math.IsNaN(sum.MSO) || sum.MSO < 1 {
			problems = append(problems, fmt.Sprintf("%v: MSO %g is not finite and >= 1", sum.Algorithm, sum.MSO))
		}
		if !math.IsInf(g, 1) && sum.MSO > g+1e-9 {
			problems = append(problems, fmt.Sprintf("%v: MSO %g exceeds guarantee %g", sum.Algorithm, sum.MSO, g))
		}
	}

	// Phase 2 — guard-verdict census under the error-regime suite: one
	// discovery and one selection strategy through every scenario.
	suite := repro.ScenarioSuite(seed, perRegime)
	for _, tc := range []struct {
		algo       repro.Algorithm
		wantEscape bool // spill monitoring exists, so adversarial skew must escape
	}{
		{repro.SpillBound, true},
		{repro.Algorithm("penaltyaware"), false},
	} {
		regimes, err := sess.SweepScenarios(ctx, tc.algo, suite, maxLoc)
		if err != nil {
			return fmt.Errorf("%v scenario sweep: %w", tc.algo, err)
		}
		for _, r := range regimes {
			fmt.Printf("%-14s %-18s MSO %8.4g  verdicts %v  degraded %d\n",
				tc.algo, r.Regime, r.MSO, r.GuardVerdicts, r.Degraded)
			if math.IsInf(r.MSO, 0) || math.IsNaN(r.MSO) {
				problems = append(problems, fmt.Sprintf("%v/%s: MSO %g not finite", tc.algo, r.Regime, r.MSO))
			}
			switch r.Regime {
			case repro.RegimeCorrelated:
				if r.GuardVerdicts["budget_abort"] == 0 {
					problems = append(problems, fmt.Sprintf("%v/%s: no budget_abort censused", tc.algo, r.Regime))
				}
			case repro.RegimeAdversarial:
				if tc.wantEscape && r.GuardVerdicts["ess_escape"] == 0 {
					problems = append(problems, fmt.Sprintf("%v/%s: no ess_escape censused", tc.algo, r.Regime))
				}
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "FAIL:", p)
		}
		return fmt.Errorf("%d violations", len(problems))
	}
	return nil
}
