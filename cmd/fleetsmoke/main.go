// Command fleetsmoke is the end-to-end fleet chaos drill: boot a 3-node rqpd
// fleet over a shared data directory, place a durable session through a
// non-owner (exercising the transparent proxy), crash the owner mid-run
// (checkpoint-crash injection followed by SIGKILL — the honest "kill -9"),
// and assert the fabric's failover contract:
//
//   - the survivors mark the dead owner down within the heartbeat budget and
//     re-route its sessions;
//   - the next hash owner adopts the orphaned session and resumes the
//     interrupted durable run to completion;
//   - the resumed run replays an event suffix identical to an uninterrupted
//     golden run, under the SAME trace ID as the first incarnation;
//   - a zombie (the fenced former owner) writing a stale-epoch checkpoint is
//     rejected terminally by epoch fencing;
//   - a partitioned peer (heartbeat-drop fault injection) is marked down and
//     routed around, then marked back up when the partition heals;
//   - every response along the way carries a correlatable trace identity
//     (Traceparent + X-Request-ID), fleet metrics account for the drill
//     (failovers, proxied requests, hedges, live peers), and no goroutines
//     leak on the survivors.
//
// Exits 0 on success; any violated expectation is fatal. Wired into CI via
// `make fleet-smoke`.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/runstate"
	"repro/internal/smoke"
	"repro/internal/telemetry"
)

const (
	hbInterval = 150 * time.Millisecond
	// downBudget is the generous ceiling for mark-down detection: the
	// configured hysteresis is 2 consecutive failed probes at a 150ms
	// cadence (~300ms), so 5s of slack absorbs scheduler noise without
	// masking a broken detector.
	downBudget = 5 * time.Second
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "fleetsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "rqpd")
	if err := smoke.BuildDaemon(bin); err != nil {
		return err
	}
	data := filepath.Join(tmp, "data")
	if err := os.MkdirAll(data, 0o755); err != nil {
		return err
	}

	// --- Boot a 3-node fleet on a shared data directory. -------------------
	addrs := make([]string, 3)
	for i := range addrs {
		if addrs[i], err = smoke.FreeAddr(); err != nil {
			return err
		}
	}
	peers := strings.Join(addrs, ",")
	daemons := make(map[string]*smoke.Daemon, len(addrs))
	defer func() {
		for _, d := range daemons {
			d.Stop()
		}
	}()
	for _, a := range addrs {
		d, err := smoke.Start(bin,
			"-addr", a, "-peers", peers, "-data", data,
			"-heartbeat-interval", hbInterval.String(),
			"-heartbeat-down", "2", "-heartbeat-up", "2",
			// An aggressive hedge delay so the drill's proxied reads
			// actually exercise the hedging path.
			"-hedge-delay", "1ms",
			"-session-ttl", "0", "-trace-sample", "0",
		)
		if err != nil {
			return err
		}
		daemons[a] = d
	}
	for _, a := range addrs {
		if err := smoke.Await("http://"+a+"/v1/fleet/health", 10*time.Second); err != nil {
			return err
		}
	}
	for _, a := range addrs {
		if err := awaitLive(a, len(addrs), 10*time.Second); err != nil {
			return err
		}
	}
	log.Printf("fleet of %d live: %s", len(addrs), peers)

	// Goroutine baselines for the post-drill leak check.
	baseline := make(map[string]int, len(addrs))
	for _, a := range addrs {
		if baseline[a], err = smoke.Goroutines("http://" + a); err != nil {
			return err
		}
	}

	// --- Place a durable session through a non-owner. ----------------------
	// The fleet mints the ID and pins it on the hash owner; creating it via
	// an arbitrary node exercises the create-proxy path.
	id, hdr, err := createSession(addrs[0], `{"query":"2D_EQ","gridRes":16}`)
	if err != nil {
		return err
	}
	if err := checkCorrelated(hdr); err != nil {
		return fmt.Errorf("create session response: %w", err)
	}
	owner, err := routeOwner(addrs[0], id)
	if err != nil {
		return err
	}
	if o2, err := routeOwner(addrs[1], id); err != nil {
		return err
	} else if o2 != owner {
		return fmt.Errorf("ring views disagree: %s says owner %s, %s says %s", addrs[0], owner, addrs[1], o2)
	}
	front := ""
	for _, a := range addrs {
		if a != owner {
			front = a
			break
		}
	}
	log.Printf("session %s owned by %s, fronting via %s", id, owner, front)
	if err := smoke.AwaitReady("http://"+front, id, 60*time.Second); err != nil {
		return err
	}

	// --- Golden run: the uninterrupted reference. --------------------------
	runURL := "http://" + front + "/v1/sessions/" + id + "/run"
	truth := `[0.42,0.17]`
	status, hdr, body, err := doReq("POST", runURL,
		`{"strategy":"spillbound","truth":`+truth+`,"durable":true,"runId":"golden"}`, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("golden run: status %d: %s", status, body)
	}
	if err := checkCorrelated(hdr); err != nil {
		return fmt.Errorf("golden run response: %w", err)
	}
	var golden runDoc
	if err := json.Unmarshal(body, &golden); err != nil {
		return fmt.Errorf("golden run: %w", err)
	}
	log.Printf("golden run: %d events, totalCost %.4f", len(golden.Events), golden.TotalCost)

	// --- Victim run: crash the owner mid-run. ------------------------------
	// The scenario's checkpoint-crash knob interrupts the durable run at its
	// first checkpoint (leaving a resumable snapshot), and the SIGKILL that
	// follows guarantees the owner can never resume it itself — failover or
	// nothing.
	seed := crashSeed()
	victimTrace, err := mintTraceParent()
	if err != nil {
		return err
	}
	status, hdr, body, err = doReq("POST", runURL,
		fmt.Sprintf(`{"strategy":"spillbound","truth":%s,"durable":true,"runId":"victim","scenario":"adversarial-4","scenarioSeed":%d}`, truth, seed),
		map[string]string{"Traceparent": victimTrace})
	if err != nil {
		return err
	}
	if status != http.StatusBadRequest || !strings.Contains(string(body), "crash") {
		return fmt.Errorf("victim run: want 400 with injected crash, got %d: %s", status, body)
	}
	victimID := traceIDOf(victimTrace)
	if got := hdr.Get("X-Request-ID"); got != victimID {
		return fmt.Errorf("victim run: X-Request-ID %q does not echo the request traceparent %q", got, victimID)
	}
	if err := awaitRunStatus(front, id, "victim", "interrupted", 5*time.Second); err != nil {
		return err
	}
	log.Printf("victim run interrupted at a checkpoint (trace %s); SIGKILLing owner %s", victimID, owner)
	daemons[owner].Kill()

	// --- Failover: detection, re-routing, adoption, resume. ----------------
	survivors := make([]string, 0, 2)
	for _, a := range addrs {
		if a != owner {
			survivors = append(survivors, a)
		}
	}
	start := time.Now()
	if err := awaitLive(survivors[0], len(survivors), downBudget); err != nil {
		return fmt.Errorf("owner death not detected: %w", err)
	}
	log.Printf("owner marked down after %v", time.Since(start).Round(time.Millisecond))

	var newOwner string
	err = smoke.Poll("session re-routed off the dead owner", downBudget, 50*time.Millisecond, func() (bool, error) {
		o, err := routeOwner(survivors[0], id)
		if err != nil {
			return false, nil
		}
		newOwner = o
		return o != owner, nil
	})
	if err != nil {
		return err
	}
	log.Printf("session re-routed to %s", newOwner)

	// The adopter rehydrates the session and resumes the interrupted run;
	// GET .../runs/victim serves the full resumed result once it completes.
	var resumed runDoc
	err = smoke.Poll("victim run resumed on "+newOwner, 60*time.Second, 100*time.Millisecond, func() (bool, error) {
		st, _, b, err := doReq("GET", "http://"+survivors[0]+"/v1/sessions/"+id+"/runs/victim", "", nil)
		if err != nil || st != http.StatusOK {
			return false, nil
		}
		var doc runDoc
		if json.Unmarshal(b, &doc) != nil {
			return false, nil
		}
		if !doc.Resumed || len(doc.Events) == 0 {
			return false, nil
		}
		resumed = doc
		return true, nil
	})
	if err != nil {
		return err
	}
	log.Printf("victim resumed: %d events, totalCost %.4f, trace %s", len(resumed.Events), resumed.TotalCost, resumed.TraceID)

	// --- The failover contract. --------------------------------------------
	if resumed.TraceID != victimID {
		return fmt.Errorf("resumed run trace %s != first-incarnation trace %s (one trace must span incarnations)", resumed.TraceID, victimID)
	}
	if !hasKind(resumed.Events, "run_resume") {
		return fmt.Errorf("resumed run carries no run_resume event")
	}
	fo, ok := findKind(resumed.Events, "failover")
	if !ok {
		return fmt.Errorf("resumed run carries no failover marker event")
	}
	if fo.Mode != newOwner {
		return fmt.Errorf("failover marker names adopter %q, want %q", fo.Mode, newOwner)
	}
	if err := compareSuffix(golden, resumed); err != nil {
		return err
	}
	log.Print("resumed suffix identical to golden; one trace across incarnations")

	// --- Zombie fencing. ----------------------------------------------------
	// Impersonate the dead owner: open the session's run store directly and
	// write a checkpoint stamped with the pre-failover epoch. Adoption
	// advanced the on-disk epoch, so the write must be rejected.
	st2, err := runstate.NewStore(filepath.Join(data, id))
	if err != nil {
		return err
	}
	epoch, node, err := st2.LoadEpoch()
	if err != nil {
		return err
	}
	if epoch < 1 || node != newOwner {
		return fmt.Errorf("adoption did not advance the fence: epoch %d owned by %q, want >=1 owned by %q", epoch, node, newOwner)
	}
	zerr := st2.SaveRun(&runstate.RunState{RunID: "zombie", Algorithm: "spillbound", Epoch: epoch - 1})
	if !runstate.IsFenced(zerr) {
		return fmt.Errorf("zombie checkpoint (epoch %d < %d) not fenced: err=%v", epoch-1, epoch, zerr)
	}
	log.Printf("zombie checkpoint fenced: %v", zerr)

	// --- Partition drill. ---------------------------------------------------
	// Drop a survivor's inbound heartbeats: it keeps serving, but its peers
	// must mark it down and route around it — then mark it back up when the
	// partition heals.
	partitioned, observer := survivors[0], survivors[1]
	if partitioned == newOwner {
		partitioned, observer = survivors[1], survivors[0]
	}
	if err := postJSON(partitioned, "/v1/fleet/faults", `{"dropHeartbeats":true}`); err != nil {
		return err
	}
	start = time.Now()
	if err := awaitLive(observer, 1, downBudget); err != nil {
		return fmt.Errorf("partitioned peer not marked down: %w", err)
	}
	log.Printf("partitioned peer %s marked down after %v", partitioned, time.Since(start).Round(time.Millisecond))
	if o, err := routeOwner(observer, id); err != nil || o != observer {
		return fmt.Errorf("partitioned fleet routes session to %q (err %v), want sole survivor %s", o, err, observer)
	}
	if err := postJSON(partitioned, "/v1/fleet/faults", `{"dropHeartbeats":false}`); err != nil {
		return err
	}
	if err := awaitLive(observer, 2, downBudget); err != nil {
		return fmt.Errorf("healed peer not marked back up: %w", err)
	}
	log.Printf("partition healed, %s marked back up", partitioned)

	// --- Metrics account for the drill. -------------------------------------
	var failovers, proxyOK, hedges float64
	for _, a := range survivors {
		fams, err := smoke.Scrape("http://" + a)
		if err != nil {
			return err
		}
		if g, ok := gauge(fams, "rqp_peers_live"); !ok || g != 2 {
			return fmt.Errorf("%s rqp_peers_live = %v (present %v), want 2", a, g, ok)
		}
		failovers += counter(fams, "rqp_failovers_total", "")
		proxyOK += counter(fams, "rqp_proxy_requests_total", "ok")
		hedges += counter(fams, "rqp_hedges_total", "")
	}
	if failovers < 1 {
		return fmt.Errorf("rqp_failovers_total = %v across survivors, want >= 1", failovers)
	}
	if proxyOK < 1 {
		return fmt.Errorf("rqp_proxy_requests_total{outcome=ok} = %v across survivors, want >= 1", proxyOK)
	}
	if hedges < 1 {
		return fmt.Errorf("rqp_hedges_total = %v across survivors, want >= 1 (hedge delay is 1ms)", hedges)
	}
	log.Printf("metrics: failovers %v, proxied ok %v, hedges %v", failovers, proxyOK, hedges)

	// --- The fleet membership timeline is a trace. --------------------------
	var peersDoc struct {
		FleetTraceID string `json:"fleetTraceId"`
	}
	if err := getJSON(newOwner, "/v1/fleet/peers", &peersDoc); err != nil {
		return err
	}
	st3, _, tbody, err := doReq("GET", "http://"+newOwner+"/v1/runs/"+peersDoc.FleetTraceID+"/trace", "", nil)
	if err != nil {
		return err
	}
	if st3 != http.StatusOK || !strings.Contains(string(tbody), "peer_state") {
		return fmt.Errorf("fleet trace %s: status %d, want 200 with peer_state spans: %s", peersDoc.FleetTraceID, st3, tbody)
	}
	if err := smoke.Get("http://" + newOwner + "/v1/runs/" + peersDoc.FleetTraceID + "/trace?format=svg"); err != nil {
		return fmt.Errorf("fleet flamegraph: %w", err)
	}

	// --- Goroutine hygiene on the survivors. --------------------------------
	for _, a := range survivors {
		if _, err := smoke.AwaitGoroutineSettle("http://"+a, baseline[a], 10, 10*time.Second); err != nil {
			return fmt.Errorf("goroutine leak on %s: %w", a, err)
		}
	}
	return nil
}

// runDoc is the drill's view of a run response (a subset of the server's
// runResponse).
type runDoc struct {
	TotalCost float64           `json:"totalCost"`
	SubOpt    float64           `json:"subOpt"`
	Events    []telemetry.Event `json:"events"`
	RunID     string            `json:"runId"`
	Resumed   bool              `json:"resumed"`
	TraceID   string            `json:"traceId"`
}

// crashSeed finds a scenario seed whose adversarial-4 crashes at the FIRST
// checkpoint — resolved in-process through the same registry the daemon
// uses, so the drill never guesses at fault knobs.
func crashSeed() int64 {
	for seed := int64(1); seed < 256; seed++ {
		if sc, ok := repro.ScenarioByName(seed, "adversarial-4"); ok && sc.Faults.CrashAtCheckpoint == 1 {
			return seed
		}
	}
	log.Fatal("no seed in [1,256) gives adversarial-4 a first-checkpoint crash")
	return 0
}

// compareSuffix asserts the resumed incarnation replayed exactly the golden
// run's tail: its execution events must match the last len(resumed) golden
// execution events field-for-field, and the cross-incarnation total cost
// must equal the uninterrupted one.
func compareSuffix(golden, resumed runDoc) error {
	g := execEvents(golden.Events)
	r := execEvents(resumed.Events)
	if len(r) == 0 || len(r) > len(g) {
		return fmt.Errorf("resumed run has %d execution events, golden %d", len(r), len(g))
	}
	off := len(g) - len(r)
	for i, re := range r {
		ge := g[off+i]
		if re.Kind != ge.Kind || re.Contour != ge.Contour || re.Dim != ge.Dim ||
			re.PlanID != ge.PlanID || re.Completed != ge.Completed ||
			relDiff(re.Spent, ge.Spent) > 1e-9 {
			return fmt.Errorf("resumed suffix diverges at step %d: got %+v, golden %+v", i, re, ge)
		}
	}
	if relDiff(resumed.TotalCost, golden.TotalCost) > 1e-9 {
		return fmt.Errorf("resumed totalCost %v != golden %v", resumed.TotalCost, golden.TotalCost)
	}
	return nil
}

// execEvents filters a run stream down to its deterministic execution steps
// (contour entries, plan/spill executions, prunes) — the replay-identity
// alphabet; resume markers and budget bookkeeping are incarnation-specific.
func execEvents(evs []telemetry.Event) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range evs {
		switch ev.Kind {
		case telemetry.ContourEnter, telemetry.PlanExec, telemetry.SpillExec, telemetry.HalfSpacePrune:
			out = append(out, ev)
		}
	}
	return out
}

func hasKind(evs []telemetry.Event, kind string) bool {
	_, ok := findKind(evs, kind)
	return ok
}

func findKind(evs []telemetry.Event, kind string) (telemetry.Event, bool) {
	for _, ev := range evs {
		if string(ev.Kind) == kind {
			return ev, true
		}
	}
	return telemetry.Event{}, false
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// doReq issues one request with optional extra headers, returning status,
// response headers and body.
func doReq(method, url, body string, hdr map[string]string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b, err
}

// checkCorrelated enforces the correlation contract on a response: every
// fleet-fronted response must carry a Traceparent and X-Request-ID.
func checkCorrelated(h http.Header) error {
	if h.Get("Traceparent") == "" || h.Get("X-Request-ID") == "" {
		return fmt.Errorf("response lacks trace identity (Traceparent=%q, X-Request-ID=%q)",
			h.Get("Traceparent"), h.Get("X-Request-ID"))
	}
	return nil
}

// createSession creates a session via addr and returns the fleet-minted ID
// and the response headers.
func createSession(addr, body string) (string, http.Header, error) {
	status, hdr, b, err := doReq("POST", "http://"+addr+"/v1/sessions", body, nil)
	if err != nil {
		return "", nil, err
	}
	if status != http.StatusAccepted && status != http.StatusCreated {
		return "", nil, fmt.Errorf("create session: status %d: %s", status, b)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &doc); err != nil || doc.ID == "" {
		return "", nil, fmt.Errorf("create session: bad response %s", b)
	}
	return doc.ID, hdr, nil
}

// routeOwner asks addr which node owns key under its current ring view.
func routeOwner(addr, key string) (string, error) {
	var doc struct {
		Owner string `json:"owner"`
	}
	if err := getJSON(addr, "/v1/fleet/route?key="+key, &doc); err != nil {
		return "", err
	}
	if doc.Owner == "" {
		return "", fmt.Errorf("%s reports no owner for %s", addr, key)
	}
	return doc.Owner, nil
}

// awaitLive polls addr's membership snapshot until it reports want live
// peers.
func awaitLive(addr string, want int, timeout time.Duration) error {
	return smoke.Poll(fmt.Sprintf("%s to see %d live peers", addr, want), timeout, 50*time.Millisecond, func() (bool, error) {
		var doc struct {
			Live int `json:"live"`
		}
		if err := getJSON(addr, "/v1/fleet/peers", &doc); err != nil {
			return false, nil
		}
		return doc.Live == want, nil
	})
}

// awaitRunStatus polls a durable run resource until it reports the wanted
// status.
func awaitRunStatus(addr, session, runID, want string, timeout time.Duration) error {
	url := "http://" + addr + "/v1/sessions/" + session + "/runs/" + runID
	return smoke.Poll("run "+runID+" to be "+want, timeout, 50*time.Millisecond, func() (bool, error) {
		st, _, b, err := doReq("GET", url, "", nil)
		if err != nil || st != http.StatusOK {
			return false, nil
		}
		var doc struct {
			Status string `json:"status"`
		}
		if json.Unmarshal(b, &doc) != nil {
			return false, nil
		}
		return doc.Status == want, nil
	})
}

func getJSON(addr, path string, v any) error {
	st, _, b, err := doReq("GET", "http://"+addr+path, "", nil)
	if err != nil {
		return err
	}
	if st != http.StatusOK {
		return fmt.Errorf("GET %s%s: status %d: %s", addr, path, st, b)
	}
	return json.Unmarshal(b, v)
}

func postJSON(addr, path, body string) error {
	st, _, b, err := doReq("POST", "http://"+addr+path, body, nil)
	if err != nil {
		return err
	}
	if st != http.StatusOK {
		return fmt.Errorf("POST %s%s: status %d: %s", addr, path, st, b)
	}
	return nil
}

// mintTraceParent generates a fresh W3C traceparent header value.
func mintTraceParent() (string, error) {
	b := make([]byte, 24)
	if _, err := rand.Read(b); err != nil {
		return "", err
	}
	return "00-" + hex.EncodeToString(b[:16]) + "-" + hex.EncodeToString(b[16:]) + "-01", nil
}

// traceIDOf extracts the trace ID from a traceparent header value.
func traceIDOf(tp string) string {
	parts := strings.Split(tp, "-")
	if len(parts) == 4 {
		return parts[1]
	}
	return ""
}

// gauge reads a single-sample gauge family.
func gauge(fams map[string]*telemetry.ParsedFamily, name string) (float64, bool) {
	fam, ok := fams[name]
	if !ok || len(fam.Samples) == 0 {
		return 0, false
	}
	return fam.Samples[0].Value, true
}

// counter sums a counter family's samples, optionally filtering on an
// outcome label.
func counter(fams map[string]*telemetry.ParsedFamily, name, outcome string) float64 {
	fam, ok := fams[name]
	if !ok {
		return 0
	}
	var sum float64
	for _, s := range fam.Samples {
		if outcome != "" && s.Labels["outcome"] != outcome {
			continue
		}
		sum += s.Value
	}
	return sum
}
