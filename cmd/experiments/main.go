// Command experiments regenerates the tables and figures of the paper's
// evaluation (Sec 6) over the simulated substrate and prints them as text
// tables. Absolute values differ from the paper's PostgreSQL testbed; the
// shapes — who wins, by what rough factor, where the crossovers are — are
// the reproduction target (see EXPERIMENTS.md).
//
// Usage:
//
//	experiments                 # everything
//	experiments -fig 10         # one figure
//	experiments -table 3        # one table
//	experiments -extra job      # JOB / platform extras
//	experiments -fast           # shrunken grids for a quick pass
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "regenerate one figure (7-13); 0 = all")
		table   = flag.Int("table", 0, "regenerate one table (2-4); 0 = all")
		extra   = flag.String("extra", "", "extra experiment: platform | job | ratio | delta | correlated")
		fast    = flag.Bool("fast", false, "use shrunken grids and sweep budgets")
		workers = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		asJSON  = flag.Bool("json", false, "emit every experiment's structured results as JSON")
		summary = flag.Bool("summary", false, "print the four-way native/PB/SB/AB synthesis table")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Workers = *workers
	if *fast {
		cfg.MaxLocations = 64
		cfg.ResOverride = map[string]int{}
		for _, sp := range workload.TPCDSQueries() {
			cfg.ResOverride[sp.Name] = fastRes(sp.D)
		}
		for d := 2; d <= 6; d++ {
			sp := workload.Q91(d)
			cfg.ResOverride[sp.Name] = fastRes(d)
		}
		cfg.ResOverride["JOB_1a"] = 12
	}
	lab := experiments.NewLab(cfg)

	if *asJSON {
		rep, err := lab.BuildReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *summary {
		rows, err := lab.Summary()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderSummary(rows))
		return
	}
	runAll := *fig == 0 && *table == 0 && *extra == ""
	if err := run(lab, runAll, *fig, *table, *extra); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runExtras executes the supplementary studies (Fig 7 rendering, the
// contour-ratio ablation and the δ-robustness sweep).
func runExtras(lab *experiments.Lab, all bool, extra string) error {
	if all || extra == "ratio" {
		rows, err := lab.RatioAblation()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderRatio(rows))
	}
	if all || extra == "delta" {
		rows, err := lab.DeltaRobustness()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderDelta(rows))
	}
	if all || extra == "correlated" {
		rows, err := lab.CorrelatedWorkload()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderCorrelated(rows))
	}
	if all || extra == "estimation" {
		rows, err := lab.EstimationStudy()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEstimation(rows))
	}
	if all || extra == "reopt" {
		rows, err := lab.ReoptComparison()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderReopt(rows))
	}
	if all || extra == "lambda" {
		rows, err := lab.LambdaSensitivity()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderLambda(rows))
	}
	return nil
}

func fastRes(d int) int {
	switch d {
	case 2:
		return 12
	case 3:
		return 8
	case 4:
		return 6
	case 5:
		return 5
	default:
		return 4
	}
}

func run(lab *experiments.Lab, all bool, fig, table int, extra string) error {
	want := func(f int) bool { return all || fig == f }
	wantT := func(t int) bool { return all || table == t }

	if want(7) {
		out, err := lab.Fig7()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want(8) {
		rows, err := lab.Fig8()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderGuarantees("Figure 8 — MSO guarantees (MSOg), PB vs SB", rows))
	}
	if want(9) {
		rows, err := lab.Fig9()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderGuarantees("Figure 9 — MSOg vs dimensionality (Q91, D=2..6)", rows))
	}
	if want(10) {
		rows, err := lab.Fig10()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEmpirical("Figure 10 — empirical MSO (MSOe), PB vs SB", "PB", "SB", rows))
	}
	if want(11) {
		rows, err := lab.Fig11()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEmpirical("Figure 11 — average sub-optimality (ASO), PB vs SB", "PB", "SB", rows))
	}
	if want(12) {
		res, err := lab.Fig12()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderHistogram(res))
	}
	if want(13) {
		rows, err := lab.Fig13()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEmpirical("Figure 13 — empirical MSO (MSOe), SB vs AB", "SB", "AB", rows))
	}
	if wantT(2) {
		rows, err := lab.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(rows))
	}
	if wantT(3) {
		res, err := lab.Table3()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable3(res))
	}
	if wantT(4) {
		rows, err := lab.Table4()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable4(rows))
	}
	if all || extra == "platform" {
		rows, err := lab.PlatformShift()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderPlatform(rows))
	}
	if all || extra == "job" {
		res, err := lab.JOB()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderJOB(res))
	}
	return runExtras(lab, all, extra)
}
