GO ?= go

.PHONY: all build test race vet chaos resume-chaos fleet-smoke brownout-smoke bench sweep-strategies experiments metrics-smoke overload-smoke replay-smoke trace-smoke atlas fuzz clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# chaos runs the seeded fault-injection scenarios under the race detector:
# injected errors, operator panics, cost-eval failures and latency faults
# must end in retried or cleanly degraded runs, never a crash or hang.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Resilient|Degrad' ./... -v
	$(GO) test -race ./internal/faults/ -v

# resume-chaos runs the crash-tolerance suite under the race detector: a 3D
# SpillBound run is killed at every contour checkpoint and resumed from its
# durable snapshot (identical discovery, bounded redo), the durable server
# restart drill recovers sessions and runs from disk, and the runstate
# store/tracker invariants are exercised directly.
resume-chaos:
	$(GO) test -race -run 'CrashResume|Resume|Rehydrat|Durable|Checkpoint' . ./internal/server/ -v
	$(GO) test -race ./internal/runstate/ -v
	$(GO) test -race ./internal/fleet/ -v

# fleet-smoke is the multi-node chaos drill: boot a 3-node rqpd fleet over a
# shared data directory, place a durable session through a non-owner
# (transparent proxying), crash the owner mid-run (checkpoint-crash
# injection + SIGKILL), and assert any-node failover end to end — mark-down
# within the heartbeat budget, adoption and resume on the next hash owner
# with an event suffix identical to the uninterrupted golden run under one
# trace ID, zombie checkpoints fenced by the ownership epoch, a partitioned
# peer routed around and healed, fleet metrics accounted, no goroutine leak.
fleet-smoke:
	$(GO) run ./cmd/fleetsmoke

# brownout-smoke is the fleet overload drill: boot a 3-node rqpd fleet with a
# tiny run ceiling and a fast brownout tick, saturate one node's owner with a
# concurrent sweep storm, and assert fleet-aware overload control end to end —
# the owner's vitals gossip to its peers on heartbeats, peers shed traffic for
# the saturated owner at the proxy edge (503 + the owner's advertised
# Retry-After, owner untouched), hedging is suppressed under pressure, spent
# X-Rqp-Retry-Budget requests are rejected before the wire, the staged
# brownout ladder ascends under load and recovers to stage 0 afterwards with
# the transitions recorded in the fleet trace, and no node leaks goroutines.
brownout-smoke:
	$(GO) run ./cmd/brownoutsmoke

# bench runs the serial-vs-parallel ESS build comparison first, recording
# the raw results in BENCH_build.json, then the selection-strategy
# benchmarks (penaltyaware/probabilistic/minmaxregret choose + ladder) into
# BENCH_strategy.json, then the full benchmark suite.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBuild(Serial|Parallel)$$' -benchmem -json . > BENCH_build.json
	$(GO) test -run '^$$' -bench 'BenchmarkStrategySelect' -benchmem -json . > BENCH_strategy.json
	$(GO) test -bench=. -benchmem -run '^$$'

# sweep-strategies is the strategy-registry smoke: sweeps every registered
# strategy on a 2D session (finite MSO, discovery strategies within their
# guarantees) and drives the error-regime scenario suite for a discovery and
# a selection strategy, asserting the guard-verdict census is populated.
sweep-strategies:
	$(GO) run ./cmd/strategysweep

experiments:
	$(GO) run ./cmd/experiments

# metrics-smoke boots rqpd on a local port, drives a session through
# build → run → sweep, scrapes GET /v1/metrics, and validates the
# Prometheus text exposition (parse, histogram invariants, non-zero
# run/build/request families).
metrics-smoke:
	$(GO) run ./cmd/metricssmoke

# overload-smoke boots rqpd with deliberately low admission limits, fires a
# burst of concurrent sweeps past them, and asserts the overload contract:
# some requests complete, the excess is shed with 429 + Retry-After, the
# rqp_inflight/rqp_shed_total/rqp_breaker_state families are exposed, and
# the goroutine count settles back to baseline (no leaked handlers).
overload-smoke:
	$(GO) run ./cmd/overloadsmoke

# replay-smoke boots rqpd with tight admission limits and replays a seeded
# 30s open-loop mixed trace (clean runs, adversarial / regret-correlated
# scenario runs, sweeps, builds) followed by a shed burst and a
# circuit-breaker drill. Writes replay-report.json (per-class p50/p95/p99,
# status counts, guardrail census) and -check asserts every guardrail class
# fired — watchdog abort, ESS escape, shed, breaker — with no goroutine leak.
replay-smoke:
	$(GO) run ./cmd/replay -duration 30s -rate 20 -check -o replay-report.json

# trace-smoke boots rqpd and walks the correlation contract end to end: a
# run fired with a caller traceparent must echo it (header, X-Request-ID,
# run document), serve sound run and build span trees at
# /v1/runs/{traceID}/trace, render a well-formed flamegraph SVG, carry the
# trace ID in the error envelope, and attach trace-ID exemplars to the
# OpenMetrics exposition.
trace-smoke:
	$(GO) run ./cmd/tracesmoke

# atlas renders the per-regime robustness atlas for the motivating example
# query (suboptimality heat over the ESS with guardrail-intervention
# overlays, three regimes x three strategies).
atlas:
	$(GO) run ./cmd/rqp atlas -query 2D_EQ -res 16 -max 64 -o atlas.svg

# fuzz runs the fuzz targets briefly: the runstate snapshot decoder (the
# bytes crash recovery trusts least) and the Prometheus exposition parser.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzDecodeRunState -fuzztime=$(FUZZTIME) ./internal/runstate/
	$(GO) test -fuzz=FuzzParseProm -fuzztime=$(FUZZTIME) ./internal/telemetry/

clean:
	$(GO) clean ./...
