package repro

import (
	"context"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// guardTestSession builds the EQ test session with an explicit guard policy.
func guardTestSession(t *testing.T, g *GuardPolicy) *Session {
	t.Helper()
	opts := DefaultOptions()
	opts.GridRes = 10
	opts.Guard = g
	sess, err := NewSession(TPCDSCatalog(10), paperEQ, paperEPPs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// countKind tallies events of one kind.
func countKind(events []telemetry.Event, k telemetry.Kind) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// TestBudgetAbortGolden drives a budget-overrunning engine under the default
// watchdog (zero slack) and pins the guard's observable surface: budget_abort
// events, the trace rendering, the run-level verdict, and the invariant that
// no execution ever charged past its enforcement ceiling.
func TestBudgetAbortGolden(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	res, err := sess.RunWithFaults(context.Background(), SpillBound, truth, &FaultPlan{BudgetOverrun: 2})
	if err != nil {
		t.Fatalf("overrun run should complete under the watchdog: %v", err)
	}
	if n := countKind(res.Events, telemetry.BudgetAbort); n < 1 {
		t.Fatalf("no budget_abort events in an overrun run:\n%s", res.Trace)
	}
	if res.GuardVerdict != string(telemetry.BudgetAbort) {
		t.Errorf("GuardVerdict = %q, want %q", res.GuardVerdict, telemetry.BudgetAbort)
	}
	if res.Degraded {
		t.Errorf("watchdog aborts must not degrade the run:\n%s", res.Trace)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d; budget aborts are terminal and must never be re-run", res.Retries)
	}
	if !strings.Contains(res.Trace, "guard: budget abort at ceiling") {
		t.Errorf("trace missing guard abort line:\n%s", res.Trace)
	}
	// Zero slack: every charge the run accounted is capped by its assigned
	// budget, abort events included.
	const eps = 1e-9
	for _, ev := range res.Events {
		switch ev.Kind {
		case telemetry.BudgetSpend, telemetry.BudgetAbort:
			if ev.Budget > 0 && ev.Spent > ev.Budget*(1+eps) {
				t.Errorf("%s charged %g past budget %g", ev.Kind, ev.Spent, ev.Budget)
			}
		}
	}
	if res.SubOpt < 1 {
		t.Errorf("subOpt = %g", res.SubOpt)
	}
}

// TestBudgetAbortRespectsSlack checks the λ-style allowance: with
// BudgetSlack 0.25 the enforcement ceiling is budget·1.25 and charges land
// within it (and a clean run is byte-identical to the unguarded trace shape,
// i.e. no guard lines appear).
func TestBudgetAbortRespectsSlack(t *testing.T) {
	sess := guardTestSession(t, &GuardPolicy{BudgetSlack: 0.25})
	truth := Location{0.02, 0.3}
	res, err := sess.RunWithFaults(context.Background(), SpillBound, truth, &FaultPlan{BudgetOverrun: 3})
	if err != nil {
		t.Fatalf("overrun run should complete under the watchdog: %v", err)
	}
	if n := countKind(res.Events, telemetry.BudgetAbort); n < 1 {
		t.Fatalf("no budget_abort events at overrun factor 3:\n%s", res.Trace)
	}
	const eps = 1e-9
	for _, ev := range res.Events {
		switch ev.Kind {
		case telemetry.BudgetSpend, telemetry.BudgetAbort:
			if ev.Budget > 0 && ev.Spent > ev.Budget*1.25*(1+eps) {
				t.Errorf("%s charged %g past ceiling %g", ev.Kind, ev.Spent, ev.Budget*1.25)
			}
		}
	}

	clean, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.Trace, "guard:") {
		t.Errorf("clean run trace carries guard lines:\n%s", clean.Trace)
	}
	if clean.GuardVerdict != "" {
		t.Errorf("clean run GuardVerdict = %q", clean.GuardVerdict)
	}
}

// TestESSEscapeGolden corrupts run-time monitoring so the learned selectivity
// leaves [0,1]: the guard must emit ess_escape, reroute to the max-corner
// safe path, and still return a completed, verdict-flagged result.
func TestESSEscapeGolden(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	res, err := sess.RunWithFaults(context.Background(), SpillBound, truth,
		&FaultPlan{SkewLearnedAt: 1, SkewLearnedFactor: 1e9})
	if err != nil {
		t.Fatalf("escape run should complete via the safe path: %v", err)
	}
	if n := countKind(res.Events, telemetry.ESSEscape); n != 1 {
		t.Fatalf("ess_escape events = %d, want 1:\n%s", n, res.Trace)
	}
	if res.GuardVerdict != string(telemetry.ESSEscape) {
		t.Errorf("GuardVerdict = %q, want %q", res.GuardVerdict, telemetry.ESSEscape)
	}
	for _, want := range []string{"guard: ess escape on dim", "guard: safe-path terminal plan"} {
		if !strings.Contains(res.Trace, want) {
			t.Errorf("trace missing %q:\n%s", want, res.Trace)
		}
	}
	if res.Degraded {
		t.Errorf("safe path is a guard reroute, not a degradation:\n%s", res.Trace)
	}
	if res.TotalCost <= 0 || res.SubOpt < 1 {
		t.Errorf("safe-path accounting off: total %g subOpt %g", res.TotalCost, res.SubOpt)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d; an escape is terminal and must never be re-run", res.Retries)
	}
}

// TestESSEscapeDominatesVerdict layers both faults: aborts happen first, the
// escape still wins the run-level verdict (it is the stronger intervention).
func TestESSEscapeDominatesVerdict(t *testing.T) {
	sess := newTestSession(t)
	res, err := sess.RunWithFaults(context.Background(), SpillBound, Location{0.02, 0.3},
		&FaultPlan{BudgetOverrun: 2, SkewLearnedAt: 2, SkewLearnedFactor: 1e9})
	if err != nil {
		t.Fatalf("guarded run errored: %v", err)
	}
	if res.GuardVerdict != string(telemetry.ESSEscape) {
		t.Errorf("GuardVerdict = %q, want %q (escape dominates)", res.GuardVerdict, telemetry.ESSEscape)
	}
}

// TestMSOGuaranteeUnderOverrun sweeps PlanBouquet across sampled grid truths
// with a uniformly overrunning engine and checks the enforced worst-case
// bound: the overrun factor scales the whole cost surface, so the effective
// oracle cost is factor·opt and TotalCost/(factor·opt) must stay within
// 4·(1+λ)·(1+slack)·ρ — the paper's Theorem 3.4 bound with the watchdog's
// slack made explicit (zero here).
func TestMSOGuaranteeUnderOverrun(t *testing.T) {
	sess := newTestSession(t)
	const factor = 2.0
	bound := sess.Guarantee(PlanBouquet)
	if bound <= 0 {
		t.Fatalf("guarantee = %g", bound)
	}
	g := sess.space.Grid
	aborts, worst := 0, 0.0
	for ci := 0; ci < g.Size(); ci += 7 {
		truth := Location(g.Location(ci))
		res, err := sess.RunWithFaults(context.Background(), PlanBouquet, truth, &FaultPlan{BudgetOverrun: factor})
		if err != nil {
			t.Fatalf("truth %v: %v", truth, err)
		}
		aborts += countKind(res.Events, telemetry.BudgetAbort)
		effSubOpt := res.TotalCost / (factor * res.OptimalCost)
		if effSubOpt > worst {
			worst = effSubOpt
		}
		if effSubOpt > bound*(1+1e-9) {
			t.Errorf("truth %v: enforced subOpt %g exceeds guarantee %g", truth, effSubOpt, bound)
		}
	}
	if aborts == 0 {
		t.Error("sweep never triggered the watchdog; the bound was not exercised")
	}
	t.Logf("enforced MSO over sweep = %.3g (guarantee %.3g, %d aborts)", worst, bound, aborts)
}
