package repro

import (
	"context"
	"sync"
	"testing"
)

// parallelCases are the 2D and 3D queries the equivalence tests run over
// (small enough grids to keep -race runs quick, large enough for real
// worker contention).
func parallelCases() []struct {
	name string
	bq   BenchmarkQuery
	res  int
} {
	return []struct {
		name string
		bq   BenchmarkQuery
		res  int
	}{
		{"2D_Q91", Q91Benchmark(2), 10},
		{"3D_Q91", Q91Benchmark(3), 7},
	}
}

// TestParallelBuildMatchesSerialSession proves NewSession's default
// parallel build yields a Session identical to a forced-serial build:
// same optimal cost surface, plan assignment, POSP, contour ladder and
// guarantees, on a 2D and a 3D query.
func TestParallelBuildMatchesSerialSession(t *testing.T) {
	for _, tc := range parallelCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := BenchmarkOptions()
			opts.GridRes = tc.res
			opts.Workers = 1
			serial, err := NewBenchmarkSession(tc.bq, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Workers = 8
			par, err := NewBenchmarkSession(tc.bq, opts)
			if err != nil {
				t.Fatal(err)
			}
			if par.POSPSize() != serial.POSPSize() {
				t.Fatalf("POSP %d != %d", par.POSPSize(), serial.POSPSize())
			}
			if par.ContourCount() != serial.ContourCount() {
				t.Fatalf("contours %d != %d", par.ContourCount(), serial.ContourCount())
			}
			for ci := 0; ci < serial.space.Grid.Size(); ci++ {
				if par.space.CostAt(ci) != serial.space.CostAt(ci) {
					t.Fatalf("cell %d: cost %g != %g", ci, par.space.CostAt(ci), serial.space.CostAt(ci))
				}
				if par.space.PlanIDAt(ci) != serial.space.PlanIDAt(ci) {
					t.Fatalf("cell %d: plan id %d != %d", ci, par.space.PlanIDAt(ci), serial.space.PlanIDAt(ci))
				}
				if par.space.PlanAt(ci).Fingerprint() != serial.space.PlanAt(ci).Fingerprint() {
					t.Fatalf("cell %d: plan fingerprint mismatch", ci)
				}
			}
			for _, a := range []Algorithm{PlanBouquet, SpillBound, AlignedBound} {
				if par.Guarantee(a) != serial.Guarantee(a) {
					t.Errorf("%v guarantee %g != %g", a, par.Guarantee(a), serial.Guarantee(a))
				}
			}
		})
	}
}

// TestParallelSweepMatchesSerial proves a sharded sweep reports exactly the
// serial sweep's MSO, ASO and worst cell for every algorithm, exhaustive
// and sampled, on a 2D and a 3D query.
func TestParallelSweepMatchesSerial(t *testing.T) {
	for _, tc := range parallelCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := BenchmarkOptions()
			opts.GridRes = tc.res
			sess, err := NewBenchmarkSession(tc.bq, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, max := range []int{0, 20} {
				for _, a := range []Algorithm{Native, PlanBouquet, SpillBound, AlignedBound} {
					sess.opts.Workers = 1
					serial, err := sess.Sweep(a, max)
					if err != nil {
						t.Fatal(err)
					}
					sess.opts.Workers = 8
					par, err := sess.Sweep(a, max)
					if err != nil {
						t.Fatal(err)
					}
					if par.MSO != serial.MSO || par.ASO != serial.ASO {
						t.Errorf("%v max=%d: MSO/ASO %g/%g != %g/%g", a, max, par.MSO, par.ASO, serial.MSO, serial.ASO)
					}
					if len(par.WorstLocation) != len(serial.WorstLocation) {
						t.Fatalf("%v max=%d: worst location arity differs", a, max)
					}
					for d := range par.WorstLocation {
						if par.WorstLocation[d] != serial.WorstLocation[d] {
							t.Errorf("%v max=%d: worst location %v != %v", a, max, par.WorstLocation, serial.WorstLocation)
							break
						}
					}
					if par.Locations != serial.Locations {
						t.Errorf("%v max=%d: locations %d != %d", a, max, par.Locations, serial.Locations)
					}
				}
			}
		})
	}
}

// TestSweepSeedOption proves sampled sweeps are reproducible per seed and
// that the seed is honoured through Options.
func TestSweepSeedOption(t *testing.T) {
	opts := BenchmarkOptions()
	opts.GridRes = 10
	opts.SweepSeed = 7
	sess, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sess.Sweep(SpillBound, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Sweep(SpillBound, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.MSO != b.MSO || a.ASO != b.ASO || a.Locations != b.Locations {
		t.Errorf("same-seed sweeps diverge: %+v vs %+v", a, b)
	}
	// The default seed (SweepSeed 0 → 1) must match an explicit 1.
	sess.opts.SweepSeed = 0
	c, err := sess.Sweep(SpillBound, 16)
	if err != nil {
		t.Fatal(err)
	}
	sess.opts.SweepSeed = 1
	d, err := sess.Sweep(SpillBound, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.MSO != d.MSO || c.ASO != d.ASO {
		t.Errorf("default seed is not 1: %+v vs %+v", c, d)
	}
}

// TestNewSessionContextCancel proves a canceled context aborts the ESS
// build with the context's error.
func TestNewSessionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSessionContext(ctx, TPCDSCatalog(10), paperEQ, paperEPPs, DefaultOptions()); err == nil {
		t.Fatal("canceled build should fail")
	}
}

// TestBuildProgressOption proves Options.BuildProgress observes every grid
// cell of the construction.
func TestBuildProgressOption(t *testing.T) {
	opts := BenchmarkOptions()
	opts.GridRes = 8
	var mu sync.Mutex
	calls, maxDone, lastTotal := 0, 0, 0
	opts.BuildProgress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > maxDone {
			maxDone = done
		}
		lastTotal = total
	}
	if _, err := NewBenchmarkSession(Q91Benchmark(2), opts); err != nil {
		t.Fatal(err)
	}
	if want := 8 * 8; calls != want || maxDone != want || lastTotal != want {
		t.Errorf("progress calls=%d maxDone=%d total=%d, want all %d", calls, maxDone, lastTotal, want)
	}
}

// TestSessionOptimizerReuse proves repeated runs at one truth agree with
// each other and with a fresh session (the shared memoized optimizer does
// not leak state across calls).
func TestSessionOptimizerReuse(t *testing.T) {
	opts := BenchmarkOptions()
	opts.GridRes = 8
	sess, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := Location{0.01, 0.1}
	r1, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCost != r2.TotalCost || r1.OptimalCost != r2.OptimalCost {
		t.Errorf("repeated runs diverge: %+v vs %+v", r1, r2)
	}
	fresh, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := fresh.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r1.OptimalCost != r3.OptimalCost || r1.TotalCost != r3.TotalCost {
		t.Errorf("fresh session diverges: %+v vs %+v", r1, r3)
	}
}

// TestConcurrentRunsOnOneSession hammers one session's Run and Sweep from
// many goroutines — the server serves concurrent requests against a shared
// session, so the memoized optimizer path must be race-free (exercised
// under -race in CI).
func TestConcurrentRunsOnOneSession(t *testing.T) {
	opts := BenchmarkOptions()
	opts.GridRes = 8
	sess, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sess.Run(SpillBound, Location{0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sess.Run(SpillBound, Location{0.01, 0.1})
			if err != nil {
				errs <- err
				return
			}
			if res.TotalCost != ref.TotalCost {
				errs <- errMismatch(res.TotalCost, ref.TotalCost)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sess.Sweep(AlignedBound, 12); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ got, want float64 }

func (e mismatchError) Error() string {
	return "concurrent run diverged"
}

func errMismatch(got, want float64) error { return mismatchError{got, want} }
