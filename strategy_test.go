package repro

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestParseStrategyNameAliases pins the wire-compat contract: canonical
// names resolve clean, deprecated aliases and non-canonical spellings
// resolve but are flagged legacy (so transports can census them), unknown
// names fail with the registry enumerated in the error.
func TestParseStrategyNameAliases(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		legacy    bool
	}{
		{"native", "native", false},
		{"planbouquet", "planbouquet", false},
		{"penaltyaware", "penaltyaware", false},
		{"minmaxregret", "minmaxregret", false},
		{"pb", "planbouquet", true},
		{"bouquet", "planbouquet", true},
		{"sb", "spillbound", true},
		{"ab", "alignedbound", true},
		{"penalty", "penaltyaware", true},
		{"prob", "probabilistic", true},
		{"regret", "minmaxregret", true},
		{"SpillBound", "spillbound", true},
		{" native ", "native", true},
	}
	for _, c := range cases {
		got, legacy, err := ParseStrategyName(c.in)
		if err != nil || got != c.canonical || legacy != c.legacy {
			t.Errorf("ParseStrategyName(%q) = %q, legacy=%v, err=%v; want %q, legacy=%v",
				c.in, got, legacy, err, c.canonical, c.legacy)
		}
	}
	if _, _, err := ParseStrategyName("quantum"); err == nil || !strings.Contains(err.Error(), "spillbound") {
		t.Errorf("unknown-strategy error should enumerate the registry, got %v", err)
	}
}

// TestStrategyRegistryConcurrency hammers the registry's read and write
// paths from concurrent goroutines — meaningful under -race (make race),
// where it pins the RWMutex discipline. The write path only attempts
// registrations that must be rejected (duplicate name, alias shadowing), so
// the registry is left exactly as found.
func TestStrategyRegistryConcurrency(t *testing.T) {
	t.Parallel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := RegisterStrategy(nativeStrategy{}); err == nil {
					t.Error("duplicate registration must fail")
				}
				if err := RegisterStrategy(selectionStrategy{info: StrategyInfo{Name: "sb"}}); err == nil {
					t.Error("alias-shadowing registration must fail")
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if names := StrategyNames(); len(names) < 7 {
					t.Errorf("registry shrank: %v", names)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				for _, info := range Strategies() {
					if _, ok := LookupStrategy(info.Name); !ok {
						t.Errorf("listed strategy %q not resolvable", info.Name)
					}
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := ParseStrategy("regret"); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestSelectionStrategiesRunAndSweep runs each selection-family strategy
// end-to-end on the shared 2D session: no MSO guarantee (+Inf), but every
// run must finish its budget-doubling ladder on one committed plan with the
// charged ledger matching the step stream, and sweeps must land finite.
func TestSelectionStrategiesRunAndSweep(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	for _, name := range []string{"penaltyaware", "probabilistic", "minmaxregret"} {
		a := Algorithm(name)
		if !math.IsInf(sess.Guarantee(a), 1) {
			t.Errorf("%s: selection strategies carry no MSO guarantee", name)
		}
		res, err := sess.Run(a, truth)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Algorithm != a || len(res.Steps) == 0 {
			t.Fatalf("%s: result %+v", name, res)
		}
		var sum float64
		for i, st := range res.Steps {
			sum += st.Spent
			if st.PlanID != res.Steps[0].PlanID {
				t.Errorf("%s: ladder switched plans at step %d", name, i)
			}
			if st.Completed != (i == len(res.Steps)-1) {
				t.Errorf("%s: step %d completed=%v", name, i, st.Completed)
			}
			if i > 0 && st.Budget != 2*res.Steps[i-1].Budget {
				t.Errorf("%s: budget not doubling at step %d: %g after %g",
					name, i, st.Budget, res.Steps[i-1].Budget)
			}
		}
		if math.Abs(sum-res.TotalCost) > 1e-6*res.TotalCost {
			t.Errorf("%s: step spend %g disagrees with TotalCost %g", name, sum, res.TotalCost)
		}
		if res.SubOpt < 1 {
			t.Errorf("%s: sub-optimality %g < 1", name, res.SubOpt)
		}
		sweep, err := sess.Sweep(a, 16)
		if err != nil {
			t.Fatalf("%s sweep: %v", name, err)
		}
		if math.IsInf(sweep.MSO, 0) || sweep.MSO < 1 {
			t.Errorf("%s: sweep MSO %g", name, sweep.MSO)
		}
	}
}

// TestSelectionLadderCrashResume pins the selection family's durability
// contract: the ladder's monotone attempt index checkpoints like a contour
// boundary, so a run killed mid-ladder resumes from its snapshot and plays
// out exactly the remaining suffix of the uninterrupted ladder (the plan
// choice is deterministic and recomputed on resume).
func TestSelectionLadderCrashResume(t *testing.T) {
	sess := newDurableTestSession(t, t.TempDir())
	ctx := context.Background()
	truth := Location{0.8, 0.01, 0.3}
	a := Algorithm("penaltyaware")

	base, err := sess.RunDurable(ctx, a, truth, "sel-base")
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Steps) < 3 {
		t.Fatalf("baseline ladder has %d steps; the crash drill needs a multi-attempt run", len(base.Steps))
	}

	crashed, err := sess.RunDurableWithFaults(ctx, a, truth, "sel-crash", &FaultPlan{CrashAtCheckpoint: 2})
	if !ErrRunCrashed(err) {
		t.Fatalf("want crash, got err=%v (result %+v)", err, crashed)
	}
	resumed, err := sess.ResumeRun(ctx, "sel-crash")
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Error("resumed run not flagged Resumed")
	}
	if n := len(resumed.Steps); n == 0 || n > len(base.Steps) {
		t.Fatalf("resumed ladder has %d steps, baseline %d", n, len(base.Steps))
	}
	// The checkpoint fires at each attempt's start, so the resume point is at
	// most one attempt behind the crash: the resumed steps are a suffix of
	// the baseline ladder.
	off := len(base.Steps) - len(resumed.Steps)
	if off > 2 {
		t.Errorf("resume redid %d attempts; bounded redo allows at most 2", off)
	}
	for i, st := range resumed.Steps {
		if want := base.Steps[off+i]; st != want {
			t.Errorf("resumed step %d = %+v, want %+v", i, st, want)
		}
	}
	if last := resumed.Steps[len(resumed.Steps)-1]; !last.Completed {
		t.Errorf("resumed ladder did not complete: %+v", last)
	}
	if c, _, completed, err := sess.DurableRunState("sel-crash"); err != nil || !completed {
		t.Errorf("resumed snapshot not terminal: contour=%d completed=%v err=%v", c, completed, err)
	}
}
