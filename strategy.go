// Strategy is the pluggable plan-selection/processing interface behind
// Session.Run, Sweep, the scenario sweeps, the robustness atlas, and the
// /v1 API. The paper's discovery algorithms (PlanBouquet, SpillBound,
// AlignedBound), the Native baseline, and the non-discovery selection
// strategies (penalty-aware, probabilistic, minmax-regret — see
// selection.go) are all registered implementations; Algorithm is a thin
// compatibility shim over registry lookup.
package repro

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/engine"
	"repro/internal/runstate"
	"repro/internal/spillbound"
	"repro/internal/telemetry"
)

// runExecutor is the resilient executor stack handed to strategies
// (engine → budget watchdog → retry).
type runExecutor = engine.ContextExecutor

// engineFor builds the bare cost-model executor sweeps use (no watchdog or
// retry stack: sweeps measure the strategy, not the resilience ladder).
func engineFor(s *Session, truth Location) *engine.Engine {
	return engine.New(s.model, truth)
}

// StrategyInfo describes a registered strategy for listings (the rqp CLI,
// GET /v1/strategies) and capability gating.
type StrategyInfo struct {
	// Name is the canonical registry name (lowercase, e.g. "spillbound").
	Name string `json:"name"`
	// Kind classifies the strategy: "baseline" (run the estimate-optimal
	// plan), "discovery" (contour-budgeted selectivity discovery), or
	// "selection" (robust a-priori plan selection executed under a
	// budget-doubling ladder).
	Kind string `json:"kind"`
	// Guarantee is the human-readable MSO guarantee formula ("D^2+3D",
	// "none", ...); Session.Guarantee reports the session's numeric value.
	Guarantee string `json:"guarantee"`
	// Resumable reports whether the strategy checkpoints monotone progress
	// through internal/runstate and can continue from a crash snapshot
	// (RunDurable/ResumeRun accept only resumable strategies).
	Resumable bool `json:"resumable"`
	// Params documents the strategy's tuning knobs and their defaults.
	Params map[string]string `json:"params,omitempty"`
}

// StrategyOutcome is what a strategy's Run reports back to the session
// driver: the charged cost ledger and the budgeted executions behind it.
// The driver derives SubOpt, the trace and the degradation bookkeeping.
type StrategyOutcome struct {
	// TotalCost is the strategy's total charged cost (this incarnation;
	// the driver adds any resumed ledger base).
	TotalCost float64
	// Steps lists the budgeted executions in order (empty for unbudgeted
	// baselines).
	Steps []ExecutionStep
}

// StrategyRun is the execution context handed to Strategy.Run: the session,
// the hidden truth, the resilient executor stack (engine → budget watchdog →
// retry), the run's telemetry recorder, and any crash-resume state. Budget
// semantics: every execution must go through Execute (or the internal
// runners), which charges min(cost, budget) — never run plans outside the
// ledger, or MSO accounting breaks.
type StrategyRun struct {
	sess   *Session
	rex    runExecutor
	truth  Location
	resume *runstate.Discovery
	rec    *telemetry.Recorder
}

// Session returns the owning session (grid shape, POSP, estimate, oracle).
func (r *StrategyRun) Session() *Session { return r.sess }

// Truth returns the hidden true selectivity location the run executes at.
// Strategies must not use it for plan choice — only pass it to executions.
func (r *StrategyRun) Truth() Location { return r.truth }

// Resume returns the crash-checkpoint restart state: the step/contour index
// to restart from and whether the run is a resume at all. The carried-over
// budget ledger is added by the driver, not the strategy.
func (r *StrategyRun) Resume() (step int, ok bool) {
	if r.resume == nil {
		return 0, false
	}
	return r.resume.Contour, true
}

// Execute runs one budgeted step of the POSP plan with the given 1-based
// step index through the resilient executor stack, recording the plan_exec
// event and the durable budget ledger. It returns the charged cost and
// whether the plan completed within budget; errors (cancellation, injected
// faults past the retry policy, watchdog aborts) propagate to the driver's
// degradation ladder.
func (r *StrategyRun) Execute(ctx context.Context, step, planID int, budget float64) (spent float64, completed bool, err error) {
	res, err := r.rex.ExecuteCtx(ctx, r.sess.space.Plans()[planID], budget)
	if err != nil {
		return res.Spent, false, err
	}
	runstate.Spend(ctx, res.Spent)
	r.rec.Record(telemetry.Event{
		Kind: telemetry.PlanExec, Contour: step, Dim: -1, PlanID: planID,
		Budget: budget, Spent: res.Spent, Completed: res.Completed,
	})
	return res.Spent, res.Completed, nil
}

// Checkpoint marks a step boundary for durable runs: the runstate tracker
// (if any) persists a restart snapshot for the 0-based step about to run.
// Plain runs pay two context lookups.
func (r *StrategyRun) Checkpoint(ctx context.Context, step int) error {
	return runstate.Checkpoint(ctx, step)
}

// Strategy is one pluggable processing strategy. Implementations must be
// stateless or internally synchronized: one registered value serves every
// session concurrently.
type Strategy interface {
	// Info describes the strategy (name, kind, guarantee formula,
	// capabilities).
	Info() StrategyInfo
	// Guarantee returns the numeric MSO guarantee for the session
	// (+Inf when the strategy offers none).
	Guarantee(s *Session) float64
	// Run processes one query at the run's hidden truth, driving every
	// execution through the StrategyRun's budgeted executor.
	Run(ctx context.Context, r *StrategyRun) (StrategyOutcome, error)
	// SweepRun returns the lightweight evaluator whole-space sweeps use: a
	// function from true location to total charged cost, without telemetry
	// or durability overhead. The closure is reused across every swept
	// location, so per-session precomputation belongs here.
	SweepRun(s *Session) func(truth Location) float64
}

// The strategy registry. Built-ins register at init; external packages add
// strategies via RegisterStrategy before building sessions.
var (
	strategyMu  sync.RWMutex
	strategyReg = make(map[string]Strategy)
)

// legacyStrategyAliases maps deprecated wire names to canonical registry
// names. Alias (and mixed-case) resolution succeeds but is flagged legacy,
// so callers can census deprecated usage (rqp_deprecated_requests_total).
var legacyStrategyAliases = map[string]string{
	"pb":      "planbouquet",
	"bouquet": "planbouquet",
	"sb":      "spillbound",
	"ab":      "alignedbound",
	"penalty": "penaltyaware",
	"prob":    "probabilistic",
	"regret":  "minmaxregret",
}

// RegisterStrategy adds a strategy to the registry. The name must be
// non-empty lowercase and not already taken (canonically or as a legacy
// alias). Safe for concurrent use.
func RegisterStrategy(st Strategy) error {
	name := st.Info().Name
	if name == "" || name != strings.ToLower(name) {
		return fmt.Errorf("repro: strategy name %q must be non-empty lowercase", name)
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyReg[name]; dup {
		return fmt.Errorf("repro: strategy %q already registered", name)
	}
	if _, dup := legacyStrategyAliases[name]; dup {
		return fmt.Errorf("repro: strategy name %q shadows a legacy alias", name)
	}
	strategyReg[name] = st
	return nil
}

// mustRegisterStrategy registers a built-in, panicking on conflict.
func mustRegisterStrategy(st Strategy) {
	if err := RegisterStrategy(st); err != nil {
		panic(err.Error())
	}
}

// LookupStrategy returns the strategy registered under the canonical name.
func LookupStrategy(name string) (Strategy, bool) {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	st, ok := strategyReg[name]
	return st, ok
}

// StrategyNames returns the canonical registered names, sorted.
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategyReg))
	for name := range strategyReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Strategies lists every registered strategy's descriptor, sorted by name.
func Strategies() []StrategyInfo {
	strategyMu.RLock()
	infos := make([]StrategyInfo, 0, len(strategyReg))
	for _, st := range strategyReg {
		infos = append(infos, st.Info())
	}
	strategyMu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// ParseStrategyName resolves a strategy name from the wire to its canonical
// registered form. legacy reports that a deprecated spelling was used (an
// alias like "sb", or non-canonical casing) so transports can count it.
func ParseStrategyName(name string) (canonical string, legacy bool, err error) {
	folded := strings.ToLower(strings.TrimSpace(name))
	legacy = folded != name
	if alias, ok := legacyStrategyAliases[folded]; ok {
		folded, legacy = alias, true
	}
	if _, ok := LookupStrategy(folded); !ok {
		return "", false, fmt.Errorf("repro: unknown strategy %q (registered: %s)",
			name, strings.Join(StrategyNames(), ", "))
	}
	return folded, legacy, nil
}

// ParseStrategy resolves a (possibly legacy) strategy name to its registered
// implementation.
func ParseStrategy(name string) (Strategy, error) {
	canonical, _, err := ParseStrategyName(name)
	if err != nil {
		return nil, err
	}
	st, _ := LookupStrategy(canonical)
	return st, nil
}

// The built-in strategies: the Native baseline and the paper's discovery
// algorithms, ported verbatim from the pre-registry Session switch — their
// RunResults, event streams and checkpoints are golden-pinned
// (TestStrategyGoldenEquivalence) to stay byte-identical through the
// redesign.
func init() {
	mustRegisterStrategy(nativeStrategy{})
	mustRegisterStrategy(planBouquetStrategy{})
	mustRegisterStrategy(spillBoundStrategy{})
	mustRegisterStrategy(alignedBoundStrategy{})
	registerSelectionStrategies()
}

// nativeStrategy is the traditional optimize-then-execute baseline: run the
// estimate-optimal plan unbudgeted, whatever the truth turns out to be.
type nativeStrategy struct{}

func (nativeStrategy) Info() StrategyInfo {
	return StrategyInfo{
		Name: "native", Kind: "baseline", Guarantee: "none",
	}
}

func (nativeStrategy) Guarantee(*Session) float64 { return math.Inf(1) }

func (nativeStrategy) Run(ctx context.Context, r *StrategyRun) (StrategyOutcome, error) {
	s := r.sess
	p, err := s.nativePlan()
	if err != nil {
		return StrategyOutcome{}, err
	}
	total := s.model.Eval(p, r.truth)
	r.rec.Record(telemetry.Event{
		Kind: telemetry.PlanExec, Dim: -1, Mode: "native",
		Location: s.EstimateLocation(), Spent: total, Completed: true,
	})
	return StrategyOutcome{TotalCost: total}, nil
}

func (nativeStrategy) SweepRun(s *Session) func(Location) float64 {
	est := s.EstimateLocation()
	return func(truth Location) float64 {
		g := s.space.Grid
		idx := make([]int, g.D)
		for d := range idx {
			idx[d] = g.CeilIndex(d, est[d])
		}
		return s.model.Eval(s.space.PlanAt(g.Flatten(idx)), truth)
	}
}

// planBouquetStrategy is Dutt & Haritsa's contour-budgeted discovery
// baseline over the anorexically reduced plan diagram.
type planBouquetStrategy struct{}

func (planBouquetStrategy) Info() StrategyInfo {
	return StrategyInfo{
		Name: "planbouquet", Kind: "discovery", Guarantee: "4(1+lambda)rho",
		Resumable: true,
		Params:    map[string]string{"lambda": "anorexic reduction threshold (Options.ReductionLambda, default 0.2)"},
	}
}

func (planBouquetStrategy) Guarantee(s *Session) float64 {
	return s.diag.Guarantee(s.space.ContourCosts(s.opts.ContourRatio))
}

func (planBouquetStrategy) Run(ctx context.Context, r *StrategyRun) (StrategyOutcome, error) {
	s := r.sess
	// PlanBouquet's monotone state is the contour index alone (no
	// half-space pruning), so resume reduces to a later start contour.
	startContour := 0
	if r.resume != nil {
		startContour = r.resume.Contour
		if n := len(s.space.ContourCosts(s.opts.ContourRatio)); startContour > n-1 {
			startContour = n - 1
		}
	}
	out, rerr := bouquet.RunSubspaceContext(ctx, s.space, s.diag, r.rex,
		s.space.ContourCosts(s.opts.ContourRatio), startContour, s.space.Full(), 1+s.opts.ReductionLambda)
	res := StrategyOutcome{TotalCost: out.TotalCost}
	for _, st := range out.Steps {
		res.Steps = append(res.Steps, ExecutionStep{
			Contour: st.Contour + 1, SpillDim: -1, PlanID: st.PlanID,
			Budget: st.Budget, Spent: st.Spent, Completed: st.Completed,
		})
	}
	return res, rerr
}

func (planBouquetStrategy) SweepRun(s *Session) func(Location) float64 {
	return func(truth Location) float64 {
		return bouquet.Run(s.diag, engineFor(s, truth), s.opts.ContourRatio).TotalCost
	}
}

// spillBoundStrategy is the paper's core algorithm (MSO ≤ D²+3D).
type spillBoundStrategy struct{}

func (spillBoundStrategy) Info() StrategyInfo {
	return StrategyInfo{
		Name: "spillbound", Kind: "discovery", Guarantee: "D^2+3D",
		Resumable: true,
	}
}

func (spillBoundStrategy) Guarantee(s *Session) float64 { return spillbound.Guarantee(s.D()) }

func (spillBoundStrategy) Run(ctx context.Context, r *StrategyRun) (StrategyOutcome, error) {
	s := r.sess
	out, rerr := (&spillbound.Runner{Space: s.space, Ratio: s.opts.ContourRatio, Resume: r.resume}).RunContext(ctx, r.rex)
	return StrategyOutcome{TotalCost: out.TotalCost, Steps: convertSteps(out.Executions)}, rerr
}

func (spillBoundStrategy) SweepRun(s *Session) func(Location) float64 {
	r := &spillbound.Runner{Space: s.space, Ratio: s.opts.ContourRatio}
	return func(truth Location) float64 { return r.Run(engineFor(s, truth)).TotalCost }
}

// alignedBoundStrategy is the alignment-exploiting SpillBound variant
// (MSO ∈ [2D+2, D²+3D]).
type alignedBoundStrategy struct{}

func (alignedBoundStrategy) Info() StrategyInfo {
	return StrategyInfo{
		Name: "alignedbound", Kind: "discovery", Guarantee: "[2D+2, D^2+3D]",
		Resumable: true,
	}
}

func (alignedBoundStrategy) Guarantee(s *Session) float64 { return aligned.GuaranteeUpper(s.D()) }

func (alignedBoundStrategy) Run(ctx context.Context, r *StrategyRun) (StrategyOutcome, error) {
	s := r.sess
	out, rerr := (&aligned.Runner{Space: s.space, Ratio: s.opts.ContourRatio, Resume: r.resume}).RunContext(ctx, r.rex)
	res := StrategyOutcome{TotalCost: out.TotalCost}
	for _, x := range out.Executions {
		res.Steps = append(res.Steps, stepFrom(x.Execution))
	}
	return res, rerr
}

func (alignedBoundStrategy) SweepRun(s *Session) func(Location) float64 {
	r := &aligned.Runner{Space: s.space, Ratio: s.opts.ContourRatio}
	return func(truth Location) float64 { return r.Run(engineFor(s, truth)).TotalCost }
}
