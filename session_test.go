package repro

import (
	"math"
	"testing"
)

// paperEQ is the paper's motivating example query EQ (Fig. 1), expressed
// over the TPC-DS-shaped catalog via the catalog-sales / item / date chain.
const paperEQ = `
SELECT * FROM catalog_sales cs, item i, date_dim d
WHERE cs.cs_item_sk = i.i_item_sk AND cs.cs_sold_date_sk = d.d_date_sk
AND i.i_current_price < 50`

var paperEPPs = []string{
	"cs.cs_item_sk = i.i_item_sk",
	"cs.cs_sold_date_sk = d.d_date_sk",
}

func newTestSession(t *testing.T) *Session {
	t.Helper()
	opts := DefaultOptions()
	opts.GridRes = 10
	sess, err := NewSession(TPCDSCatalog(10), paperEQ, paperEPPs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestNewSessionBasics(t *testing.T) {
	sess := newTestSession(t)
	if sess.D() != 2 {
		t.Fatalf("D = %d", sess.D())
	}
	if sess.POSPSize() < 2 {
		t.Errorf("POSP = %d", sess.POSPSize())
	}
	if sess.ContourCount() < 3 {
		t.Errorf("contours = %d", sess.ContourCount())
	}
	est := sess.EstimateLocation()
	if len(est) != 2 || est[0] <= 0 || est[0] > 1 {
		t.Errorf("estimate = %v", est)
	}
}

func TestNewSessionErrors(t *testing.T) {
	cat := TPCDSCatalog(1)
	cases := []struct {
		sql  string
		epps []string
		opts Options
	}{
		{"SELECT * FROM nothere", nil, DefaultOptions()},
		{paperEQ, []string{"a.b = c.d"}, DefaultOptions()},
		{paperEQ, paperEPPs, Options{GridRes: 1, Params: PostgresProfile()}},
	}
	for i, tc := range cases {
		if _, err := NewSession(cat, tc.sql, tc.epps, tc.opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGuarantees(t *testing.T) {
	sess := newTestSession(t)
	if g := sess.Guarantee(SpillBound); g != 10 {
		t.Errorf("SB guarantee = %g, want 10 (D=2)", g)
	}
	if g := sess.Guarantee(AlignedBound); g != 10 {
		t.Errorf("AB upper = %g", g)
	}
	if g := sess.GuaranteeLowerAB(); g != 6 {
		t.Errorf("AB lower = %g", g)
	}
	if g := sess.Guarantee(PlanBouquet); g < 4 {
		t.Errorf("PB guarantee = %g", g)
	}
	if !math.IsInf(sess.Guarantee(Native), 1) {
		t.Error("native guarantee should be unbounded")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.01, 0.001}
	for _, a := range []Algorithm{Native, PlanBouquet, SpillBound, AlignedBound} {
		res, err := sess.Run(a, truth)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.SubOpt < 1-1e-9 {
			t.Errorf("%v: SubOpt %g < 1", a, res.SubOpt)
		}
		if res.Trace == "" {
			t.Errorf("%v: empty trace", a)
		}
		if a != Native && len(res.Steps) == 0 {
			t.Errorf("%v: no steps", a)
		}
		if g := sess.Guarantee(a); res.SubOpt > g {
			t.Errorf("%v: SubOpt %g exceeds guarantee %g", a, res.SubOpt, g)
		}
	}
}

func TestRunValidation(t *testing.T) {
	sess := newTestSession(t)
	if _, err := sess.Run(SpillBound, Location{0.5}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := sess.Run(SpillBound, Location{0.5, 0}); err == nil {
		t.Error("zero selectivity should error")
	}
	if _, err := sess.Run(SpillBound, Location{0.5, 1.5}); err == nil {
		t.Error("selectivity above 1 should error")
	}
	if _, err := sess.Run(Algorithm("bogus"), Location{0.5, 0.5}); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestSweepOrdering(t *testing.T) {
	sess := newTestSession(t)
	sb, err := sess.Sweep(SpillBound, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sb.MSO > sess.Guarantee(SpillBound) {
		t.Errorf("SB sweep MSO %g exceeds bound", sb.MSO)
	}
	if sb.ASO > sb.MSO || sb.ASO < 1 {
		t.Errorf("ASO %g vs MSO %g", sb.ASO, sb.MSO)
	}
	if sb.Locations != 100 {
		t.Errorf("exhaustive sweep locations = %d, want 100", sb.Locations)
	}
	if len(sb.WorstLocation) != 2 {
		t.Errorf("worst location = %v", sb.WorstLocation)
	}
	capped, err := sess.Sweep(SpillBound, 20)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Locations != 20 {
		t.Errorf("capped sweep locations = %d", capped.Locations)
	}
	if _, err := sess.Sweep(Algorithm("bogus"), 0); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestNativeMSOMotivation(t *testing.T) {
	sess := newTestSession(t)
	nat := sess.NativeMSO(1)
	sb, _ := sess.Sweep(SpillBound, 0)
	if nat < sb.MSO {
		t.Errorf("native MSO %g should be at least SB's %g", nat, sb.MSO)
	}
}

func TestAlgorithmNames(t *testing.T) {
	for _, a := range []Algorithm{Native, PlanBouquet, SpillBound, AlignedBound} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm(nope) should fail")
	}
	if Algorithm("bogus").String() != "bogus" {
		t.Error("Algorithm String should echo the registry name")
	}
	// Legacy aliases resolve (flagged legacy) for wire compatibility.
	if got, err := ParseAlgorithm("SB"); err != nil || got != SpillBound {
		t.Errorf("ParseAlgorithm(SB) = %v, %v", got, err)
	}
}

func TestProfilesExported(t *testing.T) {
	if PostgresProfile().Name == CommercialProfile().Name {
		t.Error("profiles should differ")
	}
	if TPCDSCatalog(1).Len() == 0 || IMDBCatalog().Len() == 0 {
		t.Error("catalogs should be populated")
	}
	c := NewCatalog("custom")
	if c.Len() != 0 {
		t.Error("new catalog should be empty")
	}
}

func TestBenchmarkQueryHelpers(t *testing.T) {
	suite := BenchmarkQueries()
	if len(suite) < 11 {
		t.Fatalf("suite = %d", len(suite))
	}
	if _, ok := BenchmarkQueryByName("4D_Q91"); !ok {
		t.Error("ByName(4D_Q91) failed")
	}
	if _, ok := BenchmarkQueryByName("4D_Q25"); !ok {
		t.Error("ByName(4D_Q25) failed")
	}
	if _, ok := BenchmarkQueryByName("zzz"); ok {
		t.Error("ByName(zzz) should fail")
	}
	if JOB1aBenchmark().Catalog != "imdb" {
		t.Error("JOB1a catalog")
	}
	if EQBenchmark().Catalog != "tpch" {
		t.Error("EQ catalog")
	}
	// Unknown catalog in a synthetic spec.
	bad := BenchmarkQuery{Name: "x", Catalog: "nope", SQL: "SELECT * FROM part", GridRes: 4, GridLo: 1e-4}
	if _, err := NewBenchmarkSession(bad, BenchmarkOptions()); err == nil {
		t.Error("unknown catalog should error")
	}
}

func TestSweepAllAlgorithms(t *testing.T) {
	sess := newTestSession(t)
	for _, a := range []Algorithm{Native, PlanBouquet, AlignedBound} {
		sum, err := sess.Sweep(a, 16)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if sum.MSO < 1 || sum.Locations != 16 {
			t.Errorf("%v: %+v", a, sum)
		}
	}
}
