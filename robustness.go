package repro

import (
	"context"
	"time"

	"repro/internal/faults"
	"repro/internal/guard"
)

// This file exposes the operational-robustness surface of the library: the
// context/deadline contract of the public API, the fault-injection harness,
// and the degradation ladder configuration. The paper's MSO machinery bounds
// the damage of adversarial selectivity *estimates*; this layer bounds the
// damage of adversarial *operations* — a failing or panicking execution
// step, artificial latency, a budget-overrunning operator — with a fixed
// ladder: retry the step with exponential backoff, then fall back to the
// Native (estimate-optimal) plan and report the downgraded guarantee.

// RetryPolicy configures step-level retry with exponential backoff (the
// middle rung of the degradation ladder). The zero value disables retries;
// Options.Retry = nil uses the default (2 retries from 1ms, capped at 50ms).
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after a step's first failure.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; each retry doubles
	// it.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (0 = uncapped).
	MaxBackoff time.Duration
}

// GuardPolicy configures the runtime guarantee guardrails: the budget
// watchdog that hard-aborts any execution charging past its contour budget,
// and the ESS-escape fallback that reroutes a run whose monitored
// selectivity leaves the enumerated space. Options.Guard = nil enables both
// with zero slack; set Disabled to restore the unguarded behaviour.
type GuardPolicy struct {
	// Disabled turns the watchdog and the ESS-escape check off.
	Disabled bool
	// BudgetSlack is the tolerated overshoot fraction above each assigned
	// budget before the watchdog aborts (the enforcement ceiling is
	// budget·(1+BudgetSlack)) — the λ-style allowance made explicit. It
	// enters the effective worst-case bound multiplicatively: PlanBouquet's
	// enforced MSO becomes 4·(1+λ)·(1+BudgetSlack)·ρ.
	BudgetSlack float64
}

// guardPolicy resolves the session's guard configuration.
func (s *Session) guardPolicy() guard.Policy {
	if g := s.opts.Guard; g != nil {
		return guard.Policy{Slack: g.BudgetSlack, Disabled: g.Disabled}
	}
	return guard.Policy{}
}

// FaultPlan describes operational faults to inject into a run — the chaos
// half of the resilience harness. Counters are 1-based over the executions
// the engine performs; the zero value injects nothing.
type FaultPlan struct {
	// FailExecAt makes the Nth execution fail with an injected error
	// (0 = never).
	FailExecAt int
	// FailExecCount is how many consecutive executions fail from
	// FailExecAt on (0 means 1 when FailExecAt is set). Set it beyond the
	// retry budget to force the Native fallback.
	FailExecCount int
	// PanicExecAt makes the Nth execution panic, simulating an operator
	// bug; the resilience layer recovers it into an error (0 = never).
	PanicExecAt int
	// FailCostEvalAt makes the Nth cost evaluation fail (0 = never).
	FailCostEvalAt int
	// Latency adds an artificial delay to every execution, to exercise
	// deadline enforcement.
	Latency time.Duration
	// BudgetOverrun > 1 multiplies every execution's charged cost, like an
	// operator spending past its assigned budget.
	BudgetOverrun float64
	// SkewLearnedAt corrupts the Nth spill-mode learned selectivity
	// (1-based) by multiplying it with SkewLearnedFactor — run-time
	// monitoring gone wrong. A factor pushing the value past 1 drives the
	// discovery outside the ESS, triggering the guard's safe-path fallback
	// (0 = never).
	SkewLearnedAt int
	// SkewLearnedFactor is the multiplier applied at SkewLearnedAt
	// (values <= 0 are treated as 1).
	SkewLearnedFactor float64
	// CrashAtCheckpoint kills the run loop at the Nth contour-boundary
	// checkpoint (1-based), *before* the snapshot lands — simulating the
	// process dying there. Unlike the other faults it bypasses the
	// retry/degradation ladder: the run aborts with an error matched by
	// ErrRunCrashed, and ResumeRun recovers from the previous durable
	// snapshot (0 = never).
	CrashAtCheckpoint int
}

// internal converts the public plan to the context-threaded form.
func (fp *FaultPlan) internal() *faults.Plan {
	if fp == nil {
		return nil
	}
	return &faults.Plan{
		FailExecAt:        fp.FailExecAt,
		FailExecCount:     fp.FailExecCount,
		PanicExecAt:       fp.PanicExecAt,
		FailCostEvalAt:    fp.FailCostEvalAt,
		Latency:           fp.Latency,
		BudgetOverrun:     fp.BudgetOverrun,
		SkewLearnedAt:     fp.SkewLearnedAt,
		SkewLearnedFactor: fp.SkewLearnedFactor,
		CrashAtCheckpoint: fp.CrashAtCheckpoint,
	}
}

// FaultScenario returns a deterministic seeded fault plan: the seed selects
// a fault class (clean error, transient burst, panic, cost-eval failure,
// budget overrun, or monitoring skew) and its trigger point. Identical seeds
// produce identical plans, so chaos findings replay exactly.
func FaultScenario(seed int64) *FaultPlan {
	p := faults.Scenario(seed)
	return &FaultPlan{
		FailExecAt:        p.FailExecAt,
		FailExecCount:     p.FailExecCount,
		PanicExecAt:       p.PanicExecAt,
		FailCostEvalAt:    p.FailCostEvalAt,
		Latency:           p.Latency,
		BudgetOverrun:     p.BudgetOverrun,
		SkewLearnedAt:     p.SkewLearnedAt,
		SkewLearnedFactor: p.SkewLearnedFactor,
	}
}

// RunWithFaults is RunContext with the fault plan injected into the
// execution engine. Injected failures ride the same degradation ladder as
// real ones: step retry with exponential backoff, then Native-plan fallback
// with the downgrade recorded in the trace (RunResult.Degraded).
func (s *Session) RunWithFaults(ctx context.Context, a Algorithm, truth Location, fp *FaultPlan) (RunResult, error) {
	return s.RunContext(faults.With(ctx, fp.internal()), a, truth)
}
