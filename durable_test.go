package repro

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// newDurableTestSession builds the shared 3D durable session the crash-resume
// tests run against (one ESS build serves every incarnation).
func newDurableTestSession(t *testing.T, dir string) *Session {
	t.Helper()
	opts := BenchmarkOptions()
	opts.GridRes = 7
	opts.DataDir = dir
	sess, err := NewBenchmarkSession(Q91Benchmark(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func countEvents(evs []telemetry.Event, kind telemetry.Kind) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestCrashResumeChaos is the tentpole chaos suite: a 3D SpillBound run is
// killed at every contour checkpoint in turn, resumed from the durable
// snapshot, and each resumed incarnation must (a) reproduce the
// uninterrupted run's plan sequence and final discovery exactly, and
// (b) keep the total spend across incarnations within one contour iteration
// of the uninterrupted spend (bounded redo — the monotone-state argument of
// DESIGN.md, "Crash tolerance & durability").
func TestCrashResumeChaos(t *testing.T) {
	sess := newDurableTestSession(t, t.TempDir())
	ctx := context.Background()
	truth := Location{0.8, 0.01, 0.3}

	base, err := sess.RunDurable(ctx, SpillBound, truth, "base")
	if err != nil {
		t.Fatal(err)
	}
	if base.RunID != "base" || base.Resumed {
		t.Fatalf("baseline run metadata wrong: %+v", base)
	}
	K := countEvents(base.Events, telemetry.CheckpointSave)
	if K < 3 {
		t.Fatalf("baseline hit only %d checkpoints; the chaos sweep needs a multi-contour run", K)
	}
	if c, _, completed, err := sess.DurableRunState("base"); err != nil || !completed {
		t.Fatalf("baseline snapshot not terminal: contour=%d completed=%v err=%v", c, completed, err)
	}

	// An execution's charge never exceeds its budget, and one SpillBound
	// contour iteration runs at most D spill executions, so one in-flight
	// contour iteration costs at most D times the largest per-step budget.
	maxBudget := 0.0
	for _, st := range base.Steps {
		maxBudget = math.Max(maxBudget, st.Budget)
	}
	redoBound := float64(sess.D())*maxBudget + 1e-9

	for k := 1; k <= K; k++ {
		rid := fmt.Sprintf("crash%d", k)
		crashed, err := sess.RunDurableWithFaults(ctx, SpillBound, truth, rid, &FaultPlan{CrashAtCheckpoint: k})
		if !ErrRunCrashed(err) {
			t.Fatalf("k=%d: want crash, got err=%v", k, err)
		}
		if crashed.RunID != rid {
			t.Fatalf("k=%d: crashed result run id %q", k, crashed.RunID)
		}

		// The crash fired before checkpoint k persisted: the durable state is
		// the previous boundary's snapshot, still resumable.
		_, spentCk, completed, err := sess.DurableRunState(rid)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if completed {
			t.Fatalf("k=%d: crashed run marked completed", k)
		}
		interrupted, err := sess.InterruptedRuns()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !containsString(interrupted, rid) {
			t.Fatalf("k=%d: %s missing from interrupted runs %v", k, rid, interrupted)
		}

		resumed, err := sess.ResumeRun(ctx, rid)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if !resumed.Resumed || resumed.RunID != rid {
			t.Fatalf("k=%d: resumed metadata wrong: %+v", k, resumed)
		}
		if countEvents(resumed.Events, telemetry.RunResume) != 1 {
			t.Errorf("k=%d: resumed stream missing its run_resume event", k)
		}

		// (a) Identical discovery: the resumed incarnation replays a suffix of
		// the uninterrupted run step-for-step and lands on the same final plan.
		p := len(base.Steps) - len(resumed.Steps)
		if p < 0 {
			t.Fatalf("k=%d: resumed run took %d steps, baseline only %d", k, len(resumed.Steps), len(base.Steps))
		}
		for i, st := range resumed.Steps {
			want := base.Steps[p+i]
			if st.Contour != want.Contour || st.SpillDim != want.SpillDim ||
				st.PlanID != want.PlanID || st.Spent != want.Spent || st.Completed != want.Completed {
				t.Fatalf("k=%d: step %d diverges from baseline suffix:\n got %+v\nwant %+v", k, i, st, want)
			}
		}
		if relDiff(resumed.TotalCost, base.TotalCost) > 1e-9 {
			t.Errorf("k=%d: resumed total %g != baseline %g", k, resumed.TotalCost, base.TotalCost)
		}
		if resumed.SubOpt > sess.Guarantee(SpillBound) {
			t.Errorf("k=%d: resumed SubOpt %g exceeds guarantee %g", k, resumed.SubOpt, sess.Guarantee(SpillBound))
		}

		// (b) Bounded redo: everything the crashed incarnation spent past its
		// last durable checkpoint is re-done on resume; that lost work is at
		// most one contour iteration.
		redo := crashed.TotalCost - spentCk
		if redo < -1e-9 || redo > redoBound {
			t.Errorf("k=%d: redo spend %g outside [0, %g]", k, redo, redoBound)
		}
		total := crashed.TotalCost + (resumed.TotalCost - spentCk)
		if total > base.TotalCost+redoBound {
			t.Errorf("k=%d: cross-incarnation spend %g exceeds uninterrupted %g + one contour %g",
				k, total, base.TotalCost, redoBound)
		}

		if _, _, completed, err := sess.DurableRunState(rid); err != nil || !completed {
			t.Errorf("k=%d: resumed run's snapshot not terminal (err=%v)", k, err)
		}
	}

	// Every crashed run was driven to completion: nothing is left interrupted.
	interrupted, err := sess.InterruptedRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(interrupted) != 0 {
		t.Errorf("interrupted runs remain after the sweep: %v", interrupted)
	}
}

// TestResumeMatchesForAllAlgorithms spot-checks the resume invariants for
// PlanBouquet and AlignedBound (the chaos sweep above covers SpillBound
// exhaustively): crash mid-run, resume, and land on the baseline's result.
func TestResumeMatchesForAllAlgorithms(t *testing.T) {
	sess := newDurableTestSession(t, t.TempDir())
	ctx := context.Background()
	truth := Location{0.8, 0.01, 0.3}
	for _, a := range []Algorithm{PlanBouquet, AlignedBound} {
		t.Run(a.String(), func(t *testing.T) {
			baseID := "base-" + a.String()
			base, err := sess.RunDurable(ctx, a, truth, baseID)
			if err != nil {
				t.Fatal(err)
			}
			K := countEvents(base.Events, telemetry.CheckpointSave)
			if K < 2 {
				t.Fatalf("baseline hit only %d checkpoints", K)
			}
			// Crash at a mid-run boundary, then resume to completion.
			rid := "crash-" + a.String()
			_, err = sess.RunDurableWithFaults(ctx, a, truth, rid, &FaultPlan{CrashAtCheckpoint: (K + 1) / 2})
			if !ErrRunCrashed(err) {
				t.Fatalf("want crash, got %v", err)
			}
			resumed, err := sess.ResumeRun(ctx, rid)
			if err != nil {
				t.Fatal(err)
			}
			if !resumed.Resumed {
				t.Error("result not flagged as resumed")
			}
			if relDiff(resumed.TotalCost, base.TotalCost) > 1e-9 {
				t.Errorf("resumed total %g != baseline %g", resumed.TotalCost, base.TotalCost)
			}
			if len(resumed.Steps) == 0 || len(base.Steps) == 0 {
				t.Fatal("no steps recorded")
			}
			last, want := resumed.Steps[len(resumed.Steps)-1], base.Steps[len(base.Steps)-1]
			if last.PlanID != want.PlanID || !last.Completed {
				t.Errorf("final step %+v, want plan %d completed", last, want.PlanID)
			}
		})
	}
}

// TestSessionRehydratesPersistedESS proves a second session on the same data
// directory skips the optimizer enumeration entirely (the build-progress hook
// never fires) and behaves identically, while a grid-incompatible request
// falls back to a fresh build instead of serving a stale surface.
func TestSessionRehydratesPersistedESS(t *testing.T) {
	dir := t.TempDir()
	opts := BenchmarkOptions()
	opts.GridRes = 8
	opts.DataDir = dir
	builds := 0
	opts.BuildProgress = func(done, total int) { builds++ }
	opts.Workers = 1 // serial build so the progress counter needs no lock
	first, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if builds == 0 {
		t.Fatal("first session did not build")
	}

	opts.BuildProgress = func(done, total int) {
		t.Error("rehydrated session re-ran the ESS build")
	}
	second, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.POSPSize() != first.POSPSize() || second.ContourCount() != first.ContourCount() {
		t.Fatalf("rehydrated session differs: POSP %d/%d contours %d/%d",
			second.POSPSize(), first.POSPSize(), second.ContourCount(), first.ContourCount())
	}
	for _, a := range []Algorithm{PlanBouquet, SpillBound, AlignedBound} {
		if second.Guarantee(a) != first.Guarantee(a) {
			t.Errorf("%v guarantee %g != %g", a, second.Guarantee(a), first.Guarantee(a))
		}
	}
	truth := Location{0.01, 0.1}
	r1, err := first.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := second.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCost != r2.TotalCost || r1.SubOpt != r2.SubOpt {
		t.Errorf("rehydrated run diverges: %g/%g vs %g/%g", r2.TotalCost, r2.SubOpt, r1.TotalCost, r1.SubOpt)
	}

	// A different grid resolution must not accept the persisted surface.
	opts.GridRes = 6
	rebuilt := 0
	opts.BuildProgress = func(done, total int) { rebuilt++ }
	if _, err := NewBenchmarkSession(Q91Benchmark(2), opts); err != nil {
		t.Fatal(err)
	}
	if rebuilt == 0 {
		t.Error("grid-mismatched session served the stale persisted ESS")
	}

	// A torn space file (crash mid-write of a non-atomic copy, disk
	// corruption) must fall back to a fresh build, never a partial session.
	if err := os.WriteFile(filepath.Join(dir, "space.ess"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts.GridRes = 8
	rebuilt = 0
	recovered, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == 0 {
		t.Error("corrupt persisted ESS did not trigger a rebuild")
	}
	if recovered.POSPSize() != first.POSPSize() {
		t.Errorf("rebuilt session POSP %d != %d", recovered.POSPSize(), first.POSPSize())
	}
}

// TestDurableAPIGuards covers the durable surface's failure modes: plain
// sessions reject durable calls, the native baseline is not checkpointable,
// and completed or unknown runs are not resumable.
func TestDurableAPIGuards(t *testing.T) {
	ctx := context.Background()
	opts := BenchmarkOptions()
	opts.GridRes = 8
	plain, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.RunDurable(ctx, SpillBound, Location{0.1, 0.1}, "r1"); err == nil {
		t.Error("RunDurable on a non-durable session should fail")
	}
	if _, err := plain.ResumeRun(ctx, "r1"); err == nil {
		t.Error("ResumeRun on a non-durable session should fail")
	}
	if plain.DataDir() != "" {
		t.Errorf("plain session has data dir %q", plain.DataDir())
	}

	opts.DataDir = t.TempDir()
	sess, err := NewBenchmarkSession(Q91Benchmark(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunDurable(ctx, Native, Location{0.1, 0.1}, "r1"); err == nil {
		t.Error("Native runs have no discovery state to checkpoint")
	}
	if _, err := sess.RunDurable(ctx, SpillBound, Location{0.1, 0.1}, "../evil"); err == nil {
		t.Error("path-traversal run ids must be rejected")
	}
	if _, err := sess.ResumeRun(ctx, "nope"); err == nil {
		t.Error("unknown run id should fail")
	}
	if _, err := sess.RunDurable(ctx, SpillBound, Location{0.1, 0.1}, "done"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ResumeRun(ctx, "done"); err == nil {
		t.Error("completed runs are not resumable")
	}
	runs, err := sess.DurableRuns()
	if err != nil {
		t.Fatal(err)
	}
	if !containsString(runs, "done") {
		t.Errorf("runs = %v, want done listed", runs)
	}
	if err := sess.DeleteRun("done"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sess.DurableRunState("done"); err == nil {
		t.Error("deleted run still loads")
	}
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}
