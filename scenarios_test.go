package repro

import (
	"context"
	"strings"
	"testing"
)

func TestScenarioSuitePublicAPI(t *testing.T) {
	suite := ScenarioSuite(42, 2)
	if len(suite) != 6 {
		t.Fatalf("suite size %d, want 6", len(suite))
	}
	counts := map[string]int{}
	for _, sc := range suite {
		counts[sc.Regime]++
		got, ok := ScenarioByName(42, sc.Name)
		if !ok || got != sc {
			t.Errorf("ScenarioByName(%q) = %+v, %v; want %+v", sc.Name, got, ok, sc)
		}
	}
	for _, r := range Regimes() {
		if counts[r] != 2 {
			t.Errorf("regime %s: %d scenarios, want 2", r, counts[r])
		}
	}
	if _, ok := ScenarioByName(42, "chaotic-1"); ok {
		t.Error("unknown scenario name resolved")
	}
	// The canonical drills the replay harness relies on.
	if sc, _ := ScenarioByName(42, "adversarial-1"); sc.Faults.SkewLearnedFactor < 1e6 {
		t.Errorf("adversarial-1 is not escape-scale skew: %+v", sc.Faults)
	}
	if sc, _ := ScenarioByName(42, "regret-correlated-1"); sc.Faults.BudgetOverrun <= 1 {
		t.Errorf("regret-correlated-1 has no budget overrun: %+v", sc.Faults)
	}
}

// TestSweepScenariosAcrossAlgorithms is the tentpole acceptance check: one
// seeded suite drives per-regime MSO/ASO for all three q-error regimes
// across every robust strategy, from a single harness.
func TestSweepScenariosAcrossAlgorithms(t *testing.T) {
	sess := newTestSession(t)
	suite := ScenarioSuite(42, 2)
	want := Regimes()
	for _, a := range []Algorithm{PlanBouquet, SpillBound, AlignedBound} {
		summaries, err := sess.SweepScenarios(context.Background(), a, suite, 8)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(summaries) != 3 {
			t.Fatalf("%v: %d regime summaries, want 3", a, len(summaries))
		}
		var escapes int
		for i, rs := range summaries {
			if rs.Regime != want[i] {
				t.Errorf("%v: regime[%d] = %s, want %s", a, i, rs.Regime, want[i])
			}
			if rs.Algorithm != a || rs.Scenarios != 2 {
				t.Errorf("%v/%s: algorithm/scenario bookkeeping: %+v", a, rs.Regime, rs)
			}
			if rs.Locations == 0 || rs.MSO < 1 || rs.ASO < 1 || rs.MSO < rs.ASO {
				t.Errorf("%v/%s: implausible aggregates MSO=%g ASO=%g locations=%d",
					a, rs.Regime, rs.MSO, rs.ASO, rs.Locations)
			}
			if rs.MSO > 1 && rs.WorstLocation == nil {
				t.Errorf("%v/%s: missing worst location", a, rs.Regime)
			}
			escapes += rs.GuardVerdicts["ess_escape"]
		}
		// adversarial-1 skews monitoring past the ESS boundary, so the escape
		// guardrail must fire for the spill-monitoring strategies. PlanBouquet
		// never spills — learned-selectivity skew is physically inert there.
		if a != PlanBouquet && escapes == 0 {
			t.Errorf("%v: no ess_escape interventions across the suite", a)
		}
	}
}

func TestSweepScenariosRejectsEmptySuite(t *testing.T) {
	sess := newTestSession(t)
	if _, err := sess.SweepScenarios(context.Background(), SpillBound, nil, 4); err == nil {
		t.Error("empty suite accepted")
	}
}

func TestSessionAtlas(t *testing.T) {
	sess := newTestSession(t)
	suite := ScenarioSuite(7, 1)
	atlas, err := sess.Atlas(context.Background(), []Algorithm{PlanBouquet, SpillBound}, suite, 6)
	if err != nil {
		t.Fatal(err)
	}
	if atlas.NX != 10 || atlas.NY != 10 {
		t.Errorf("atlas grid %dx%d, want 10x10", atlas.NX, atlas.NY)
	}
	if len(atlas.Maps) != 2*3 {
		t.Fatalf("%d maps, want 6 (2 algorithms x 3 regimes)", len(atlas.Maps))
	}
	for _, m := range atlas.Maps {
		if len(m.SubOpt) != 100 || len(m.Verdict) != 100 {
			t.Fatalf("%s/%s: per-cell layers sized %d/%d, want 100",
				m.Algorithm, m.Regime, len(m.SubOpt), len(m.Verdict))
		}
	}
	svg := atlas.SVG()
	if !strings.Contains(svg, "robustness atlas") || !strings.Contains(svg, "</svg>") {
		t.Error("SVG render incomplete")
	}
	if b, err := atlas.JSON(); err != nil || len(b) == 0 {
		t.Errorf("JSON render failed: %v", err)
	}
	// The atlas is a 2D artifact.
	sess3, err := NewBenchmarkSession(Q91Benchmark(3), func() Options {
		o := BenchmarkOptions()
		o.GridRes = 4
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess3.Atlas(context.Background(), nil, suite, 2); err == nil {
		t.Error("3D atlas accepted")
	}
}
