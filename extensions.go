package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/engine"
	"repro/internal/eppid"
	"repro/internal/ess"
	"repro/internal/rowexec"
	"repro/internal/spillbound"
	"repro/internal/sqlmini"
	"repro/internal/viz"
)

// This file exposes the deployment-oriented extensions of the library
// (paper Sec 7 and the Sec 4.2 remark): automatic error-prone-predicate
// identification, ESS persistence, parallel ESS construction, contour-ratio
// tuning, bounded cost-model-error injection, and the textual Fig. 7
// renderer.

// IdentifyEPPs parses the SQL against the catalog and returns the k most
// error-prone join predicates (rendered "alias.col = alias.col", ready for
// NewSession) according to the statistics heuristic of internal/eppid —
// the paper's Sec 7 deployment aid. k <= 0 selects every join predicate
// (the conservative fallback).
func IdentifyEPPs(cat *Catalog, sql string, k int) ([]string, error) {
	q, err := sqlmini.Parse(cat, sql)
	if err != nil {
		return nil, err
	}
	ids := eppid.Identify(q, k)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = q.Joins[id].String()
	}
	return out, nil
}

// SpillBoundGuaranteeWithRatio returns SpillBound's MSO bound under a
// geometric contour ratio r (Sec 4.2 remark); r=2 gives D²+3D.
func SpillBoundGuaranteeWithRatio(d int, r float64) float64 {
	return spillbound.GuaranteeWithRatio(d, r)
}

// OptimalContourRatio returns the contour ratio minimizing SpillBound's
// bound for dimensionality d, with the minimized bound (≈1.82 and 9.9 for
// d=2, per the paper's remark).
func OptimalContourRatio(d int) (ratio, bound float64) { return spillbound.OptimalRatio(d) }

// SaveESS writes the session's built selectivity space (grid, optimal cost
// surface, POSP) so later sessions can skip the optimizer enumeration —
// the paper's Sec 7 offline-preprocessing deployment mode.
func (s *Session) SaveESS(w io.Writer) error { return s.space.Save(w) }

// LoadSession rebuilds a Session from SQL plus a previously saved ESS,
// skipping the grid enumeration. The query and options must match the ones
// the space was built with (dimensionality is validated; costs are trusted).
func LoadSession(cat *Catalog, sql string, epps []string, opts Options, saved io.Reader) (*Session, error) {
	q, err := sqlmini.Parse(cat, sql)
	if err != nil {
		return nil, err
	}
	if err := q.MarkEPPs(epps...); err != nil {
		return nil, err
	}
	m, err := newModel(q, opts.Params)
	if err != nil {
		return nil, err
	}
	sp, err := ess.Load(saved, m)
	if err != nil {
		return nil, err
	}
	return newSession(opts, q, m, sp)
}

// NewSessionParallel is NewSession with the ESS enumeration spread over the
// given number of workers (Sec 7: contour constructions parallelize
// trivially). The result is identical to NewSession's. Deprecated in
// spirit: NewSession now parallelizes by default; this remains as a
// convenience for callers that want an explicit worker count without
// touching Options.Workers.
func NewSessionParallel(cat *Catalog, sql string, epps []string, opts Options, workers int) (*Session, error) {
	opts.Workers = workers
	return NewSessionContext(context.Background(), cat, sql, epps, opts)
}

// RunWithCostError is Run with bounded cost-model error injected into the
// executor: every execution's true cost is the model's prediction times a
// deterministic factor in [1/(1+delta), 1+delta] keyed by (plan, seed).
// Per paper Sec 7, guarantees inflate by at most (1+delta)².
func (s *Session) RunWithCostError(a Algorithm, truth Location, delta float64, seed uint64) (RunResult, error) {
	if delta < 0 {
		return RunResult{}, fmt.Errorf("repro: negative delta %g", delta)
	}
	return s.run(a, truth, engine.DeterministicCostError(delta, seed))
}

// ContourMap renders the session's 2D ESS as a textual contour-band map.
func (s *Session) ContourMap() (string, error) {
	return viz.ContourMap(s.space, s.opts.ContourRatio)
}

// RenderRun executes SpillBound at the given truth and renders the Fig. 7
// style Manhattan discovery profile over the contour map (2D only).
func (s *Session) RenderRun(truth Location) (string, error) {
	if len(truth) != s.D() {
		return "", fmt.Errorf("repro: truth has %d dims, query has %d epps", len(truth), s.D())
	}
	out := (&spillbound.Runner{Space: s.space, Ratio: s.opts.ContourRatio}).Run(engine.New(s.model, truth))
	return viz.Fig7(s.space, s.opts.ContourRatio, out, truth)
}

// GuaranteeRangeAB returns AlignedBound's [2D+2, D²+3D] guarantee range.
func (s *Session) GuaranteeRangeAB() (lo, hi float64) {
	return aligned.GuaranteeLower(s.D()), aligned.GuaranteeUpper(s.D())
}

// RunPhysical executes the chosen robust algorithm end-to-end on the
// row-at-a-time engine over deterministic synthetic data (the closest
// analogue of the paper's modified PostgreSQL): budgets are enforced — and
// selectivities learnt — by actual tuple execution rather than the cost
// simulator. rowCap bounds each relation's generated cardinality
// (0 = catalog cardinality; keep it small, execution is O(rows)). The
// reported OptimalCost is the cheapest measured execution among the POSP
// plans, so SubOpt compares like with like. Native is not supported here
// (it needs no discovery machinery).
func (s *Session) RunPhysical(a Algorithm, rowCap int64) (RunResult, error) {
	re := &rowexec.Engine{Query: s.query, Params: s.opts.Params, RowCap: rowCap}
	ad := &rowexec.Adapter{E: re}
	res := RunResult{Algorithm: a}
	switch a {
	case PlanBouquet:
		out := bouquet.Run(s.diag, ad, s.opts.ContourRatio)
		res.TotalCost = out.TotalCost
		for _, st := range out.Steps {
			res.Steps = append(res.Steps, ExecutionStep{
				Contour: st.Contour + 1, SpillDim: -1, PlanID: st.PlanID,
				Budget: st.Budget, Spent: st.Spent, Completed: st.Completed,
			})
			res.Trace += st.String() + "\n"
		}
	case SpillBound:
		out := (&spillbound.Runner{Space: s.space, Ratio: s.opts.ContourRatio}).Run(ad)
		res.TotalCost = out.TotalCost
		res.Steps = convertSteps(out.Executions)
		res.Trace = out.Trace()
	case AlignedBound:
		out := (&aligned.Runner{Space: s.space, Ratio: s.opts.ContourRatio}).Run(ad)
		res.TotalCost = out.TotalCost
		for _, x := range out.Executions {
			res.Steps = append(res.Steps, stepFrom(x.Execution))
		}
		res.Trace = out.Trace()
	default:
		return RunResult{}, fmt.Errorf("repro: physical execution supports planbouquet, spillbound, alignedbound; got %v", a)
	}
	// Physical oracle: the cheapest measured POSP plan execution.
	best := -1.0
	for _, p := range s.space.Plans() {
		r, err := re.Run(p, 0)
		if err != nil || !r.Completed {
			continue
		}
		if best < 0 || r.Spent < best {
			best = r.Spent
		}
	}
	if best <= 0 {
		return RunResult{}, fmt.Errorf("repro: no POSP plan executed physically")
	}
	res.OptimalCost = best
	res.SubOpt = res.TotalCost / best
	return res, nil
}
