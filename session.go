package repro

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/native"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/runstate"
	"repro/internal/spillbound"
	"repro/internal/sqlmini"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Algorithm selects a query processing strategy. It is a thin compatibility
// shim over the strategy registry (see strategy.go): the value IS the
// registered strategy name, so every Algorithm-typed API accepts any
// registered strategy, not just the built-in constants below.
type Algorithm string

// The built-in processing strategies (see Strategies() for the full
// registry, including the selection strategies of selection.go).
const (
	// Native is the traditional optimize-then-execute baseline: pick the
	// plan optimal at the statistics estimate and run it regardless.
	Native Algorithm = "native"
	// PlanBouquet is Dutt & Haritsa's contour-budgeted discovery baseline.
	PlanBouquet Algorithm = "planbouquet"
	// SpillBound is the paper's core algorithm (MSO ≤ D²+3D).
	SpillBound Algorithm = "spillbound"
	// AlignedBound is the alignment-exploiting variant
	// (MSO ∈ [2D+2, D²+3D]).
	AlignedBound Algorithm = "alignedbound"
)

// String names the algorithm: the canonical registry name.
func (a Algorithm) String() string { return string(a) }

// ParseAlgorithm resolves an algorithm name (as produced by String) against
// the strategy registry, accepting legacy aliases ("sb", "pb", ...) and
// non-canonical casing; use ParseStrategyName to detect legacy spellings.
func ParseAlgorithm(name string) (Algorithm, error) {
	canonical, _, err := ParseStrategyName(name)
	if err != nil {
		return "", err
	}
	return Algorithm(canonical), nil
}

// strategyFor resolves the Algorithm shim to its registered strategy. Exact
// canonical values (the common path: the built-in constants, names already
// resolved by ParseAlgorithm) avoid the alias fold.
func strategyFor(a Algorithm) (Strategy, error) {
	if st, ok := LookupStrategy(string(a)); ok {
		return st, nil
	}
	return ParseStrategy(string(a))
}

// Options configures a Session.
type Options struct {
	// Params is the platform cost profile.
	Params CostParams
	// GridRes is the per-dimension ESS grid resolution.
	GridRes int
	// GridLo is the smallest grid selectivity.
	GridLo float64
	// ContourRatio is the iso-cost contour cost ratio (paper default 2).
	ContourRatio float64
	// ReductionLambda is PlanBouquet's anorexic reduction threshold.
	ReductionLambda float64
	// Retry configures the degradation ladder's step retry (see
	// RetryPolicy); nil uses the default (2 retries, 1ms base backoff).
	Retry *RetryPolicy
	// Guard configures the runtime guarantee guardrails (budget watchdog and
	// ESS-escape fallback, see GuardPolicy); nil enables them with zero
	// budget slack.
	Guard *GuardPolicy
	// Workers bounds the parallelism of ESS construction and whole-space
	// sweeps: 0 uses GOMAXPROCS, 1 forces serial execution. Results are
	// identical regardless of the worker count.
	Workers int
	// SweepSeed drives the deterministic location subsample when a sweep's
	// MaxLocations budget is exceeded; 0 uses the default seed 1, so
	// sampled sweeps are reproducible unless explicitly varied.
	SweepSeed int64
	// BuildProgress, when non-nil, observes ESS construction progress as
	// (cells optimized, total cells). It is invoked concurrently from
	// build workers; implementations must be safe for concurrent use.
	BuildProgress func(done, total int)
	// DataDir, when non-empty, makes the session durable: the built ESS is
	// persisted under the directory (and rehydrated on the next start,
	// skipping the optimizer enumeration), and RunDurable/ResumeRun
	// checkpoint run state there so interrupted runs survive a process
	// crash. The directory is created if needed; one directory serves one
	// session (query + options) at a time.
	DataDir string
}

// workers resolves the configured parallelism (0 = GOMAXPROCS).
func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// sweepSeed resolves the sampled-sweep seed (0 = the default seed 1).
func (o Options) sweepSeed() int64 {
	if o.SweepSeed == 0 {
		return 1
	}
	return o.SweepSeed
}

// DefaultOptions returns the paper-faithful defaults with a moderate grid.
func DefaultOptions() Options {
	return Options{
		Params:          PostgresProfile(),
		GridRes:         12,
		GridLo:          1e-6,
		ContourRatio:    ess.CostDoublingRatio,
		ReductionLambda: 0.2,
	}
}

// Session holds everything needed to process one query robustly: the bound
// query, its cost model, the explored ESS (POSP + optimal cost surface +
// contours), the reduced plan diagram for PlanBouquet, and a shared
// memoized optimizer answering per-run oracle calls.
type Session struct {
	opts  Options
	query *query.Query
	model *cost.Model
	space *ess.Space
	diag  *bouquet.Diagram
	opt   *optimizer.Shared
	store *runstate.Store // non-nil iff Options.DataDir was set

	// selMu guards selections, the per-session memo of the selection
	// strategies' plan choices (see selection.go): registered strategy
	// values are shared across sessions, so their per-session state lives
	// here, computed once and reused by runs and sweeps alike.
	selMu      sync.Mutex
	selections map[string]selectionChoice
}

// NewSession parses and binds the SQL against the catalog, marks the given
// join predicates (rendered "alias.col = alias.col") as error-prone, and
// builds the ESS by exhaustive optimizer calls over the grid, parallelized
// across Options.Workers (GOMAXPROCS by default). It is NewSessionContext
// with a background context.
func NewSession(cat *Catalog, sql string, epps []string, opts Options) (*Session, error) {
	return NewSessionContext(context.Background(), cat, sql, epps, opts)
}

// NewSessionContext is NewSession with cancellation: the ESS construction —
// the session's long-running offline phase — polls the context between
// optimizer calls and abandons the build with the context's error on
// cancel or deadline expiry. Options.BuildProgress, when set, observes the
// build as it runs.
func NewSessionContext(ctx context.Context, cat *Catalog, sql string, epps []string, opts Options) (*Session, error) {
	if opts.GridRes < 2 {
		return nil, fmt.Errorf("repro: grid resolution %d too small", opts.GridRes)
	}
	q, err := sqlmini.Parse(cat, sql)
	if err != nil {
		return nil, err
	}
	if err := q.MarkEPPs(epps...); err != nil {
		return nil, err
	}
	m, err := cost.NewModel(q, opts.Params)
	if err != nil {
		return nil, err
	}
	grid := ess.NewGrid(q.D(), opts.GridRes, opts.GridLo)

	var store *runstate.Store
	var sp *ess.Space
	if opts.DataDir != "" {
		store, err = runstate.NewStore(opts.DataDir)
		if err != nil {
			return nil, err
		}
		// Rehydrate the persisted ESS when one matching the requested grid
		// exists — a restarted process then skips the optimizer enumeration
		// entirely. A missing, corrupt or grid-mismatched file falls back to
		// a fresh build (which then replaces it).
		sp = loadSpaceFile(store.SpacePath(), m, grid)
	}
	if sp == nil {
		sp, err = ess.BuildParallelContext(ctx, m, grid, opts.workers(), ess.BuildProgress(opts.BuildProgress))
		if err != nil {
			return nil, err
		}
		if store != nil {
			if err := saveSpaceFile(store.SpacePath(), sp); err != nil {
				return nil, err
			}
		}
	}
	s, err := newSession(opts, q, m, sp)
	if err != nil {
		return nil, err
	}
	// The post-build assembly (diagram reduction + shared optimizer memo)
	// closes a traced session build.
	telemetry.From(ctx).Record(telemetry.Event{Kind: telemetry.BuildMemo, Dim: -1})
	s.store = store
	return s, nil
}

// loadSpaceFile loads a persisted ESS and validates it against the requested
// grid, returning nil (build from scratch) on any failure — durability must
// never wedge session construction on a stale artifact.
func loadSpaceFile(path string, m *cost.Model, want ess.Grid) *ess.Space {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	sp, err := ess.Load(f, m)
	if err != nil || !gridsEqual(sp.Grid, want) {
		return nil
	}
	return sp
}

// saveSpaceFile persists the built ESS atomically next to the run snapshots.
func saveSpaceFile(path string, sp *ess.Space) error {
	var buf bytes.Buffer
	if err := sp.Save(&buf); err != nil {
		return err
	}
	return runstate.WriteFileAtomic(path, buf.Bytes())
}

// gridsEqual reports whether two grids have identical point sets. Both sides
// derive from the same deterministic construction, so exact float comparison
// is the correct check (any difference means different options).
func gridsEqual(a, b ess.Grid) bool {
	if a.D != b.D || len(a.Points) != len(b.Points) {
		return false
	}
	for d := range a.Points {
		if len(a.Points[d]) != len(b.Points[d]) {
			return false
		}
		for i := range a.Points[d] {
			if a.Points[d][i] != b.Points[d][i] {
				return false
			}
		}
	}
	return true
}

// newSession assembles a Session around a built space: the PlanBouquet
// diagram and the session-lifetime shared optimizer.
func newSession(opts Options, q *query.Query, m *cost.Model, sp *ess.Space) (*Session, error) {
	o, err := optimizer.NewShared(m)
	if err != nil {
		return nil, err
	}
	return &Session{
		opts:  opts,
		query: q,
		model: m,
		space: sp,
		diag:  bouquet.Reduce(sp, opts.ReductionLambda),
		opt:   o,
	}, nil
}

// D returns the number of error-prone predicates.
func (s *Session) D() int { return s.query.D() }

// POSPSize returns the number of distinct plans optimal somewhere in the
// ESS.
func (s *Session) POSPSize() int { return len(s.space.Plans()) }

// ContourCount returns the number of doubling iso-cost contours.
func (s *Session) ContourCount() int { return len(s.space.ContourCosts(s.opts.ContourRatio)) }

// EstimateLocation returns the traditional optimizer's statistics-derived
// selectivity estimate for the epps.
func (s *Session) EstimateLocation() Location { return s.model.EstimateLocation() }

// Guarantee returns the strategy's MSO guarantee for this session:
// PlanBouquet's behavioral 4(1+λ)ρ, SpillBound's structural D²+3D,
// AlignedBound's worst-case D²+3D, and +Inf (none) for the native baseline,
// the selection strategies, and unregistered names.
func (s *Session) Guarantee(a Algorithm) float64 {
	st, err := strategyFor(a)
	if err != nil {
		return math.Inf(1)
	}
	return st.Guarantee(s)
}

// GuaranteeLowerAB returns AlignedBound's aligned-case bound 2D+2.
func (s *Session) GuaranteeLowerAB() float64 { return aligned.GuaranteeLower(s.D()) }

// ExecutionStep is one budgeted execution of a robust run.
type ExecutionStep struct {
	// Contour is the 1-based contour number.
	Contour int
	// SpillDim is the ESS dimension spilled on, or -1 for regular runs.
	SpillDim int
	// PlanID is the executed plan's POSP index.
	PlanID int
	// Budget and Spent are the assigned and charged costs.
	Budget, Spent float64
	// Completed reports completion within budget.
	Completed bool
	// Learned is the selectivity learnt for SpillDim (exact on completion,
	// monitoring lower bound otherwise).
	Learned float64
}

// RunResult reports one query processing run at a hidden true location.
type RunResult struct {
	// Algorithm is the strategy used.
	Algorithm Algorithm
	// Steps lists the budgeted executions (empty for the native baseline,
	// which runs one plan without budget).
	Steps []ExecutionStep
	// TotalCost is the strategy's total charged cost.
	TotalCost float64
	// OptimalCost is the oracle cost Cost(P_qa, q_a).
	OptimalCost float64
	// SubOpt is TotalCost/OptimalCost (Eq. 1/3).
	SubOpt float64
	// Events is the typed run-event stream recorded during the run: contour
	// entries, budgeted executions, half-space prunes, budget accounting,
	// retries, degradation, and the terminal summary, in emission order.
	// Trace, Retries, Degraded and DegradedReason are all derived from it.
	Events []telemetry.Event
	// Trace is a human-readable execution transcript — the deterministic
	// rendering of Events (telemetry.RenderTrace).
	Trace string
	// Retries counts the step retry attempts the resilience layer performed
	// (transient failures absorbed without degrading).
	Retries int
	// Degraded reports that the robust discovery failed mid-run (after
	// exhausting retries) and the session fell back to the Native
	// estimate-optimal plan; the MSO guarantee no longer applies and the
	// trace records the downgrade.
	Degraded bool
	// DegradedReason is the terminal failure that forced the fallback
	// (empty when Degraded is false).
	DegradedReason string
	// GuardVerdict reports runtime-guard interventions during the run:
	// "budget_abort" when the watchdog hard-aborted at least one execution at
	// its cost ceiling (discovery continued under the enforced ledger),
	// "ess_escape" when monitoring left the ESS and the run completed via the
	// safe path, "" for unguarded or clean runs.
	GuardVerdict string
	// RunID names the durable run the result belongs to (empty for plain,
	// non-durable runs).
	RunID string
	// Resumed reports that the run was rehydrated from a crash checkpoint:
	// TotalCost then includes the budget ledger carried over from the
	// interrupted incarnation(s), so SubOpt accounts the whole run.
	Resumed bool
	// TraceID identifies the run's trace: the W3C trace ID propagated on the
	// context (WithTraceparent, the server's traceparent middleware) or a
	// fresh random one. A crash-resumed run reuses the original incarnation's
	// trace ID, so one trace spans every process incarnation. The span tree
	// is derived from Events (see TraceTree). Excluded from the JSON form:
	// a minted trace ID is random, and serialized RunResults (goldens,
	// caches) must stay deterministic — carriers that want it in-band (the
	// server's run response) surface it under their own key.
	TraceID string `json:"-"`
}

// newModel builds the cost model for a bound query (shared by the session
// constructors in this file and extensions.go).
func newModel(q *query.Query, p CostParams) (*cost.Model, error) {
	return cost.NewModel(q, p)
}

// Run processes the query with the chosen algorithm against a true
// selectivity location (unknown to the algorithm; used only by the
// simulated executor) and reports cost and sub-optimality.
func (s *Session) Run(a Algorithm, truth Location) (RunResult, error) {
	return s.runContext(context.Background(), a, truth, nil)
}

// RunContext is Run with cancellation and resilience: the context's
// deadline/cancel aborts the discovery at the next contour or execution
// boundary (returning the context's error), fault plans attached via
// RunWithFaults inject failures, and a step that keeps failing past the
// retry policy degrades the run to the Native plan instead of erroring out
// (see RunResult.Degraded).
func (s *Session) RunContext(ctx context.Context, a Algorithm, truth Location) (RunResult, error) {
	return s.runContext(ctx, a, truth, nil)
}

// run is Run with an optional injected cost-model error.
func (s *Session) run(a Algorithm, truth Location, costErr engine.CostErrorFn) (RunResult, error) {
	return s.runContext(context.Background(), a, truth, costErr)
}

// retryPolicy resolves the session's step-retry configuration.
func (s *Session) retryPolicy() engine.Policy {
	if r := s.opts.Retry; r != nil {
		return engine.Policy{MaxRetries: r.MaxRetries, BaseBackoff: r.BaseBackoff, MaxBackoff: r.MaxBackoff}
	}
	return engine.DefaultPolicy()
}

// runContext drives one robust processing run with the full degradation
// ladder: algorithm → step retry with exponential backoff → Native-plan
// fallback.
func (s *Session) runContext(ctx context.Context, a Algorithm, truth Location, costErr engine.CostErrorFn) (RunResult, error) {
	return s.runFull(ctx, a, truth, costErr, nil, nil)
}

// runFull is the full-generality run driver: runContext plus optional
// durability. A non-nil tracker checkpoints the discovery state at contour
// boundaries; a non-nil resume restores a checkpointed state (restart
// contour, learnt selectivities, budget ledger) before the first execution.
func (s *Session) runFull(ctx context.Context, a Algorithm, truth Location, costErr engine.CostErrorFn, tr *runstate.Tracker, resume *runstate.Discovery) (RunResult, error) {
	if len(truth) != s.D() {
		return RunResult{}, fmt.Errorf("repro: truth has %d dims, query has %d epps", len(truth), s.D())
	}
	for _, v := range truth {
		if v <= 0 || v > 1 {
			return RunResult{}, fmt.Errorf("repro: selectivity %g outside (0,1]", v)
		}
	}
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	st, err := strategyFor(a)
	if err != nil {
		return RunResult{}, err
	}
	opt, err := s.optimalCost(truth)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Algorithm: a, OptimalCost: opt}
	e, err := engine.NewChecked(s.model, truth)
	if err != nil {
		return RunResult{}, fmt.Errorf("repro: %w", err)
	}
	e.CostError = costErr
	// The executor stack, innermost out: engine → budget watchdog (ledger
	// enforcement + ESS validation) → retry. The watchdog sits inside the
	// retry layer so its aborts — classified terminal — are never re-run.
	rex := &engine.Resilient{Exec: guard.New(e, s.guardPolicy()), Policy: s.retryPolicy()}

	// Every run records into a fresh context-carried recorder: the discovery
	// layers (bouquet, spillbound, aligned, engine, rowexec) emit typed
	// events into it, and the result's Trace/Retries/Degraded fields are all
	// derived from the one stream below.
	rec := telemetry.NewRecorder()
	ctx = telemetry.With(ctx, rec)

	// Every run belongs to a trace: the context's traceparent (an HTTP
	// request's W3C header, a durable run's persisted trace ID) or a fresh
	// random one. The span tree is derived from the event stream afterwards,
	// so the run itself only needs the identity.
	tp, hasTP := trace.FromContext(ctx)
	if !hasTP {
		tp = trace.New()
	}
	res.TraceID = tp.TraceID

	// Durable runs additionally carry a runstate tracker: the discovery
	// layers checkpoint through it, and a resumed run opens its stream with
	// the carried-over ledger (base) so the final accounting spans every
	// process incarnation.
	var base float64
	if tr != nil {
		ctx = runstate.With(ctx, tr)
		res.RunID = tr.State().RunID
		if resume != nil {
			base = resume.Spent
			res.Resumed = true
			rec.Record(telemetry.Event{
				Kind: telemetry.RunResume, Contour: resume.Contour + 1, Dim: -1,
				Spent: base, Detail: res.RunID,
			})
		}
	}

	out, runErr := st.Run(ctx, &StrategyRun{sess: s, rex: rex, truth: truth, resume: resume, rec: rec})
	res.TotalCost = out.TotalCost
	res.Steps = out.Steps
	res.TotalCost += base
	if runErr != nil {
		if faults.IsCrash(runErr) {
			// An injected checkpoint crash models the process dying: no
			// retry, no degradation — recovery belongs to ResumeRun. The
			// partial result (events, ledger so far) is returned with the
			// error so chaos harnesses can account the lost work.
			res.SubOpt = res.TotalCost / opt
			return finishRun(rec, res, false), fmt.Errorf("repro: run crashed: %w", runErr)
		}
		if runstate.IsFenced(runErr) {
			// An epoch-fencing rejection means the session failed over and
			// another node owns this run now: terminal, like a crash. No
			// retry and — critically — no Native degradation, which would
			// burn budget racing the legitimate owner.
			res.SubOpt = res.TotalCost / opt
			return finishRun(rec, res, false), fmt.Errorf("repro: run fenced: %w", runErr)
		}
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			return RunResult{}, fmt.Errorf("repro: run aborted: %w", runErr)
		}
		if guard.IsEscape(runErr) {
			return s.safePath(rec, res, truth)
		}
		return s.degrade(rec, res, a, truth, runErr)
	}
	res.SubOpt = res.TotalCost / opt
	return finishRun(rec, res, true), nil
}

// finishRun seals the run's event stream (the terminal Done summary) and
// derives every event-sourced RunResult field from it in one place, so the
// trace, retry count and degradation flags cannot drift from the events.
func finishRun(rec *telemetry.Recorder, res RunResult, completed bool) RunResult {
	rec.Record(telemetry.Event{
		Kind: telemetry.Done, Dim: -1, Algorithm: res.Algorithm.String(),
		TotalCost: res.TotalCost, SubOpt: res.SubOpt, Completed: completed,
	})
	res.Events = rec.Events()
	res.Trace = telemetry.RenderTrace(res.Events)
	res.Retries = telemetry.CountRetries(res.Events)
	res.Degraded, res.DegradedReason = telemetry.Degradation(res.Events)
	res.GuardVerdict = telemetry.GuardVerdict(res.Events)
	return res
}

// safePath completes an ESS-escape run: run-time monitoring produced a
// selectivity the ESS cannot contain, so instead of indexing off-grid the
// session executes the max-corner terminal plan — which, by the contour
// construction (Lemma 3.2's terminus), completes at any location the space
// covers — in native (unbudgeted) mode. The discovery spend so far is kept;
// the MSO guarantee still holds in the cost ledger because the terminal
// plan's cost bounds the final contour's budget.
func (s *Session) safePath(rec *telemetry.Recorder, res RunResult, truth Location) (RunResult, error) {
	ci := s.space.Full().MaxCorner()
	spent := s.model.Eval(s.space.PlanAt(ci), truth)
	res.TotalCost += spent
	res.SubOpt = res.TotalCost / res.OptimalCost
	rec.Record(telemetry.Event{
		Kind: telemetry.PlanExec, Dim: -1, Mode: "guard",
		PlanID: s.space.PlanIDAt(ci), Spent: spent, Completed: true,
	})
	return finishRun(rec, res, true), nil
}

// nativePlan optimizes at the statistics estimate — the traditional plan
// and the bottom rung of the degradation ladder. The session's shared
// optimizer memoizes the result, so repeated runs pay one optimization.
func (s *Session) nativePlan() (*plan.Plan, error) {
	p, _ := s.opt.Optimize(s.EstimateLocation())
	return p, nil
}

// degrade completes a failed robust run with the Native plan: the partial
// discovery spend is kept (it was really charged), the estimate-optimal
// plan's cost at the truth is added, and a Degrade event records that the
// MSO guarantee no longer holds for this run.
func (s *Session) degrade(rec *telemetry.Recorder, res RunResult, a Algorithm, truth Location, cause error) (RunResult, error) {
	p, err := s.nativePlan()
	if err != nil {
		return RunResult{}, fmt.Errorf("repro: degraded run failed to build native plan: %w (cause: %v)", err, cause)
	}
	nat := s.model.Eval(p, truth)
	res.TotalCost += nat
	res.SubOpt = res.TotalCost / res.OptimalCost
	// Strategies without an MSO bound (the selection family) degrade with
	// Guarantee -1 — the event stream's JSON-safe "none" marker, mirroring
	// Budget -1 for unbudgeted executions.
	g := s.Guarantee(a)
	if math.IsInf(g, 1) {
		g = -1
	}
	rec.Record(telemetry.Event{
		Kind: telemetry.Degrade, Dim: -1, Detail: cause.Error(),
		Location: s.EstimateLocation(), Spent: nat,
		Guarantee: g, Algorithm: a.String(),
	})
	return finishRun(rec, res, true), nil
}

func convertSteps(xs []spillbound.Execution) []ExecutionStep {
	out := make([]ExecutionStep, len(xs))
	for i, x := range xs {
		out[i] = stepFrom(x)
	}
	return out
}

func stepFrom(x spillbound.Execution) ExecutionStep {
	return ExecutionStep{
		Contour: x.Contour + 1, SpillDim: x.Dim, PlanID: x.PlanID,
		Budget: x.Budget, Spent: x.Spent, Completed: x.Completed, Learned: x.Learned,
	}
}

// optimalCost optimizes at the exact (possibly off-grid) truth through the
// session's shared memoized optimizer.
func (s *Session) optimalCost(truth Location) (float64, error) {
	_, c := s.opt.Optimize(truth)
	return c, nil
}

// SweepSummary aggregates a whole-ESS robustness evaluation.
type SweepSummary struct {
	// Algorithm is the evaluated strategy.
	Algorithm Algorithm
	// MSO is the maximum sub-optimality over the swept locations (Eq. 4).
	MSO float64
	// ASO is the average sub-optimality (Eq. 8).
	ASO float64
	// Locations is the number of true locations evaluated.
	Locations int
	// WorstLocation attains the MSO.
	WorstLocation Location
}

// Sweep evaluates the algorithm's MSO and ASO by treating (a sample of)
// every ESS grid cell as the true location. maxLocations caps the sweep
// (0 = exhaustive).
func (s *Session) Sweep(a Algorithm, maxLocations int) (SweepSummary, error) {
	return s.SweepContext(context.Background(), a, maxLocations)
}

// SweepContext is Sweep with cancellation: the context is polled between
// location evaluations, and an expired deadline aborts the sweep with the
// context's error. The sweep is sharded across Options.Workers goroutines
// (GOMAXPROCS by default); MSO, ASO and the worst cell are identical to a
// serial sweep regardless of worker count, and sampled sweeps draw their
// locations from Options.SweepSeed.
func (s *Session) SweepContext(ctx context.Context, a Algorithm, maxLocations int) (SweepSummary, error) {
	st, err := strategyFor(a)
	if err != nil {
		return SweepSummary{}, err
	}
	run := metrics.RunFunc(st.SweepRun(s))
	res, err := metrics.SweepContext(ctx, s.space, run, metrics.SweepOptions{
		MaxLocations: maxLocations,
		Seed:         s.opts.sweepSeed(),
		Workers:      s.opts.workers(),
	})
	if err != nil {
		return SweepSummary{}, fmt.Errorf("repro: sweep aborted: %w", err)
	}
	sum := SweepSummary{Algorithm: a, MSO: res.MSO, ASO: res.ASO, Locations: len(res.Cells)}
	if res.MSOCell >= 0 {
		sum.WorstLocation = s.space.Grid.Location(res.MSOCell)
	}
	return sum, nil
}

// SweepStrategies evaluates several strategies' MSO/ASO over one shared
// location sample (identical truth cells per strategy, including under
// subsampling), returning one summary per requested strategy in request
// order. Names resolve like ParseAlgorithm (legacy aliases accepted);
// duplicates collapse to their first occurrence. An empty names slice
// sweeps every registered strategy, sorted by name — the comparison the
// `make sweep-strategies` smoke and the strategy-breadth experiments run.
func (s *Session) SweepStrategies(ctx context.Context, names []string, maxLocations int) ([]SweepSummary, error) {
	if len(names) == 0 {
		names = StrategyNames()
	}
	runs := make(map[string]metrics.RunFunc, len(names))
	order := make([]string, 0, len(names))
	for _, name := range names {
		canonical, _, err := ParseStrategyName(name)
		if err != nil {
			return nil, err
		}
		if _, dup := runs[canonical]; dup {
			continue
		}
		st, _ := LookupStrategy(canonical)
		runs[canonical] = st.SweepRun(s)
		order = append(order, canonical)
	}
	results, err := metrics.SweepManyContext(ctx, s.space, runs, metrics.SweepOptions{
		MaxLocations: maxLocations,
		Seed:         s.opts.sweepSeed(),
		Workers:      s.opts.workers(),
	})
	if err != nil {
		return nil, fmt.Errorf("repro: sweep aborted: %w", err)
	}
	out := make([]SweepSummary, 0, len(order))
	for _, name := range order {
		res := results[name]
		sum := SweepSummary{Algorithm: Algorithm(name), MSO: res.MSO, ASO: res.ASO, Locations: len(res.Cells)}
		if res.MSOCell >= 0 {
			sum.WorstLocation = s.space.Grid.Location(res.MSOCell)
		}
		out = append(out, sum)
	}
	return out, nil
}

// NativeMSO returns the native baseline's MSO maximized over both the
// estimate and actual locations (Eq. 2), the paper's headline motivation
// metric. stride subsamples for large grids (1 = exhaustive).
func (s *Session) NativeMSO(stride int) float64 { return native.MSO(s.space, stride) }
