package metrics

import (
	"math"

	"repro/internal/cost"
	"repro/internal/ess"
)

// Weighted sweeps evaluate a strategy under a non-uniform workload
// distribution over the true location — the paper's Eq. (8) assumes all
// q_a equally likely; real workloads concentrate, and the paper's stated
// future work (Sec 9) is the case of *dependent* predicate selectivities.
// A weighted sweep with a correlated density probes exactly that scenario:
// the per-instance MSO guarantee is unaffected (it holds pointwise), while
// the average-case behaviour shifts with the workload's shape.

// Density maps an ESS location to an unnormalized workload probability.
type Density func(loc cost.Location) float64

// WeightedSweep evaluates the strategy at every grid cell (subject to the
// sampling options) and aggregates with the density as weight: ASO becomes
// the density-weighted mean sub-optimality; MSO remains the maximum over
// cells with non-zero weight.
func WeightedSweep(s *ess.Space, run RunFunc, w Density, opts SweepOptions) SweepResult {
	g := s.Grid
	cells := pickCells(g.Size(), opts)
	res := SweepResult{Cells: cells, SubOpt: make([]float64, len(cells)), MSOCell: -1}
	sum, wsum := 0.0, 0.0
	for i, ci := range cells {
		loc := g.Location(ci)
		weight := w(loc)
		if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
			weight = 0
		}
		so := run(loc) / s.CostAt(ci)
		res.SubOpt[i] = so
		if weight > 0 {
			sum += weight * so
			wsum += weight
			if so > res.MSO {
				res.MSO = so
				res.MSOCell = ci
			}
		}
	}
	if wsum > 0 {
		res.ASO = sum / wsum
	}
	return res
}

// CorrelatedLogNormal returns a Density modeling *dependent* predicate
// selectivities: the log10-selectivities are jointly Gaussian with common
// mean center, standard deviation sigma (in decades) and exchangeable
// pairwise correlation rho in (-1/(D-1), 1). rho = 0 recovers independent
// log-normal selectivities; rho → 1 makes the predicates move together —
// the paper's dependent-selectivity regime.
func CorrelatedLogNormal(d int, center, sigma, rho float64) Density {
	if sigma <= 0 {
		panic("metrics: sigma must be positive")
	}
	lo := -1.0 / float64(d-1)
	if d == 1 {
		lo = -1
	}
	if rho <= lo || rho >= 1 {
		panic("metrics: rho outside the exchangeable-correlation range")
	}
	// Inverse of Σ = σ²[(1-ρ)I + ρJ]:
	// Σ⁻¹ = a·I + b·J with a = 1/(σ²(1-ρ)), b = -aρ/(1+(D-1)ρ).
	a := 1 / (sigma * sigma * (1 - rho))
	b := -a * rho / (1 + float64(d-1)*rho)
	return func(loc cost.Location) float64 {
		xs := make([]float64, len(loc))
		sum := 0.0
		for i, v := range loc {
			if v <= 0 {
				return 0
			}
			xs[i] = math.Log10(v) - center
			sum += xs[i]
		}
		quad := 0.0
		for _, x := range xs {
			quad += a * x * x
		}
		quad += b * sum * sum
		return math.Exp(-0.5 * quad)
	}
}
