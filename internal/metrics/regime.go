package metrics

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/ess"
)

// ScenarioOutcome is one strategy run at one true location under one fault
// scenario: the charged cost plus the operational outcome the fault plan
// provoked.
type ScenarioOutcome struct {
	// TotalCost is the strategy's total charged cost (partial for crashed
	// runs — the spend up to the crash point is real).
	TotalCost float64
	// GuardVerdict is the run's guard intervention: "budget_abort",
	// "ess_escape", "crashed", or "" for a clean run.
	GuardVerdict string
	// Degraded reports the run fell back to the Native plan.
	Degraded bool
	// Skip excludes the outcome from the aggregates entirely (the run could
	// not be accounted — e.g. an unexpected terminal error).
	Skip bool
}

// ScenarioRunFunc executes a strategy at truth under the suite scenario with
// the given index. Implementations must be safe for concurrent use when the
// sweep runs with Workers > 1.
type ScenarioRunFunc func(scenario int, truth cost.Location) ScenarioOutcome

// RegimeResult aggregates a scenario sweep within one error regime: the
// familiar MSO/ASO pair plus the guardrail-intervention census that plain
// sub-optimality numbers hide.
type RegimeResult struct {
	// Regime is the regime label the result aggregates.
	Regime string
	// Scenarios is how many suite scenarios fed the aggregate.
	Scenarios int
	// MSO is the worst sub-optimality over every (scenario, location) pair.
	MSO float64
	// MSOCell is the grid cell attaining MSO (-1 when nothing ran).
	MSOCell int
	// ASO is the average sub-optimality over every accounted pair.
	ASO float64
	// Locations counts the accounted (scenario, location) evaluations.
	Locations int
	// Guard counts runs by guard verdict ("budget_abort", "ess_escape",
	// "crashed"); clean runs are not counted.
	Guard map[string]int
	// Degraded counts runs that fell back to the Native plan.
	Degraded int
	// Skipped counts evaluations excluded from the aggregates.
	Skipped int

	// Cells and per-cell aggregates over the swept sample, parallel slices:
	// SubOpt[i] is the worst sub-optimality observed at Cells[i] across the
	// regime's scenarios, Verdict[i] the most severe guard verdict there
	// ("" when every scenario ran clean). They feed the robustness atlas.
	Cells   []int
	SubOpt  []float64
	Verdict []string
}

// verdictRank orders guard verdicts by severity for the per-cell overlay:
// an escape (the guarantee's last resort) dominates a watchdog abort, which
// dominates a crash (recoverable by design), which dominates degradation.
func verdictRank(v string) int {
	switch v {
	case "ess_escape":
		return 4
	case "budget_abort":
		return 3
	case "crashed":
		return 2
	case "degraded":
		return 1
	}
	return 0
}

// ScenarioSweepContext evaluates run for every suite scenario at (a sample
// of) every grid cell and aggregates per regime. regimeOf[i] labels scenario
// i's regime; results are keyed and ordered by first appearance in regimeOf.
// The context is polled between evaluations; on cancellation the partial
// aggregates are returned with the context's error. The location sample is
// drawn once (SweepOptions) and shared by every scenario, so regimes are
// compared on identical ground truth.
func ScenarioSweepContext(ctx context.Context, s *ess.Space, regimeOf []string, run ScenarioRunFunc, opts SweepOptions) ([]*RegimeResult, error) {
	g := s.Grid
	cells := pickCells(g.Size(), opts)

	// One result slot per regime, in first-appearance order.
	byRegime := map[string]*RegimeResult{}
	var order []*RegimeResult
	for _, label := range regimeOf {
		if byRegime[label] == nil {
			r := &RegimeResult{
				Regime: label, MSOCell: -1, Guard: map[string]int{},
				Cells:   cells,
				SubOpt:  make([]float64, len(cells)),
				Verdict: make([]string, len(cells)),
			}
			byRegime[label] = r
			order = append(order, r)
		}
		byRegime[label].Scenarios++
	}

	// The work product: every (scenario, cell) pair, evaluated independently.
	type unit struct{ sc, cell int }
	units := make([]unit, 0, len(regimeOf)*len(cells))
	for sc := range regimeOf {
		for i := range cells {
			units = append(units, unit{sc, i})
		}
	}
	type eval struct {
		out    ScenarioOutcome
		subOpt float64
		done   bool
	}
	evals := make([]eval, len(units))

	evalOne := func(u unit) eval {
		out := run(u.sc, g.Location(cells[u.cell]))
		return eval{out: out, subOpt: out.TotalCost / s.CostAt(cells[u.cell]), done: true}
	}

	workers := opts.Workers
	if workers > 1 && len(units) > 1 {
		var wg sync.WaitGroup
		next := int64(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(units) {
						return
					}
					evals[i] = evalOne(units[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for i, u := range units {
			if ctx.Err() != nil {
				break
			}
			evals[i] = evalOne(u)
		}
	}
	err := ctx.Err()

	// Serial aggregation keeps a completed sweep deterministic regardless of
	// worker count; an aborted sweep aggregates whatever evaluations finished
	// before the cancellation (mirroring SweepContext's partial return).
	sums := map[string]float64{}
	for i := range units {
		u, ev := units[i], evals[i]
		if !ev.done {
			continue
		}
		r := byRegime[regimeOf[u.sc]]
		if ev.out.Skip {
			r.Skipped++
			continue
		}
		r.Locations++
		sums[r.Regime] += ev.subOpt
		if ev.subOpt > r.MSO {
			r.MSO = ev.subOpt
			r.MSOCell = cells[u.cell]
		}
		if ev.subOpt > r.SubOpt[u.cell] {
			r.SubOpt[u.cell] = ev.subOpt
		}
		verdict := ev.out.GuardVerdict
		if verdict != "" {
			r.Guard[verdict]++
		}
		if ev.out.Degraded {
			r.Degraded++
			if verdict == "" {
				verdict = "degraded"
			}
		}
		if verdictRank(verdict) > verdictRank(r.Verdict[u.cell]) {
			r.Verdict[u.cell] = verdict
		}
	}
	for _, r := range order {
		if r.Locations > 0 {
			r.ASO = sums[r.Regime] / float64(r.Locations)
		}
	}
	return order, err
}
