package metrics

import (
	"math"
	"testing"

	"repro/internal/cost"
)

func TestWeightedSweepUniformMatchesPlain(t *testing.T) {
	s := buildSpace(t, 8)
	run := func(truth cost.Location) float64 { return s.CostAt(0) * 3 }
	plain := Sweep(s, run, SweepOptions{})
	weighted := WeightedSweep(s, run, func(cost.Location) float64 { return 1 }, SweepOptions{})
	if math.Abs(plain.ASO-weighted.ASO) > 1e-12 {
		t.Errorf("uniform weighted ASO %g != plain %g", weighted.ASO, plain.ASO)
	}
	if plain.MSO != weighted.MSO {
		t.Errorf("uniform weighted MSO %g != plain %g", weighted.MSO, plain.MSO)
	}
}

func TestWeightedSweepConcentration(t *testing.T) {
	s := buildSpace(t, 8)
	g := s.Grid
	// Sub-optimality profile that grows with the cell index.
	run := func(truth cost.Location) float64 {
		ci := g.Flatten([]int{g.CeilIndex(0, truth[0]), g.CeilIndex(1, truth[1])})
		return s.CostAt(ci) * (1 + float64(ci)/float64(g.Size()))
	}
	// Mass near the origin → low ASO; mass near the terminus → high ASO.
	atOrigin := WeightedSweep(s, run, CorrelatedLogNormal(2, -6, 0.5, 0), SweepOptions{})
	atTerminus := WeightedSweep(s, run, CorrelatedLogNormal(2, 0, 0.5, 0), SweepOptions{})
	if atOrigin.ASO >= atTerminus.ASO {
		t.Errorf("origin-weighted ASO %g should undercut terminus-weighted %g",
			atOrigin.ASO, atTerminus.ASO)
	}
}

func TestWeightedSweepIgnoresBadWeights(t *testing.T) {
	s := buildSpace(t, 6)
	run := func(truth cost.Location) float64 { return s.CostAt(0) }
	res := WeightedSweep(s, run, func(loc cost.Location) float64 {
		if loc[0] < 1e-3 {
			return math.NaN()
		}
		return 1
	}, SweepOptions{})
	if res.ASO <= 0 || math.IsNaN(res.ASO) {
		t.Errorf("ASO = %g with NaN weights present", res.ASO)
	}
}

func TestCorrelatedLogNormalShape(t *testing.T) {
	d := CorrelatedLogNormal(2, -3, 1, 0.8)
	center := cost.Location{1e-3, 1e-3}
	onDiag := cost.Location{1e-2, 1e-2}
	offDiag := cost.Location{1e-2, 1e-4}
	if d(center) <= d(onDiag) {
		t.Error("density should peak at the center")
	}
	// Positive correlation favours locations where both selectivities move
	// together over anti-diagonal ones at equal total displacement.
	if d(onDiag) <= d(offDiag) {
		t.Errorf("ρ=0.8 should favour the diagonal: %g vs %g", d(onDiag), d(offDiag))
	}
	// Independent case treats them equally.
	ind := CorrelatedLogNormal(2, -3, 1, 0)
	if math.Abs(ind(onDiag)-ind(offDiag)) > 1e-12 {
		t.Errorf("ρ=0 should be symmetric: %g vs %g", ind(onDiag), ind(offDiag))
	}
	if d(cost.Location{0, 1e-3}) != 0 {
		t.Error("non-positive selectivities get zero mass")
	}
}

func TestCorrelatedLogNormalPanics(t *testing.T) {
	for _, f := range []func(){
		func() { CorrelatedLogNormal(2, 0, 0, 0.5) },  // sigma
		func() { CorrelatedLogNormal(2, 0, 1, 1) },    // rho high
		func() { CorrelatedLogNormal(3, 0, 1, -0.6) }, // rho below -1/(D-1)
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
