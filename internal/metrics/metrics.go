// Package metrics computes the paper's robustness metrics over the ESS:
// MSO — the worst-case sub-optimality of a processing strategy over every
// possible true location (Eq. 2/4) — ASO, its average-case counterpart
// (Eq. 8), and the sub-optimality distribution histograms of Sec 6.2.5.
// Strategies are abstracted as a function from the true location to total
// discovery cost, so PlanBouquet, SpillBound, AlignedBound and the native
// baseline all sweep through the same machinery.
package metrics

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/ess"
)

// RunFunc executes a processing strategy against the given true location
// and returns its total cost (the numerator of Eq. 3).
type RunFunc func(truth cost.Location) float64

// SweepOptions controls an ESS sweep.
type SweepOptions struct {
	// MaxLocations caps the number of true locations evaluated; 0 means
	// exhaustive. Large high-dimensional grids are subsampled
	// deterministically (by Seed) to keep sweeps laptop-scale; the paper
	// used exhaustive enumeration on a cluster.
	MaxLocations int
	// Seed drives the subsample when MaxLocations is exceeded.
	Seed int64
	// Workers > 1 evaluates locations concurrently. The RunFunc must then
	// be safe for concurrent use: the discovery runners over a shared
	// Space are (the contour cache is mutex-protected, engines are
	// per-call), but a shared *optimizer.Optimizer is not — its DP scratch
	// is reused across calls. Results are deterministic regardless of
	// worker count.
	Workers int
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	// MSO is the maximum observed sub-optimality (Eq. 4).
	MSO float64
	// MSOCell is the grid cell attaining it.
	MSOCell int
	// ASO is the average sub-optimality (Eq. 8).
	ASO float64
	// SubOpt holds the per-location sub-optimalities, parallel to Cells.
	SubOpt []float64
	// Cells holds the evaluated grid cells.
	Cells []int
}

// Sweep evaluates the strategy at (a sample of) every grid cell as the
// true location and aggregates the sub-optimalities.
func Sweep(s *ess.Space, run RunFunc, opts SweepOptions) SweepResult {
	res, _ := SweepContext(context.Background(), s, run, opts)
	return res
}

// SweepContext is Sweep with cancellation: the context is polled between
// location evaluations (workers stop claiming new cells once it is done),
// and the partial aggregate computed so far is returned with the context's
// error. Locations never evaluated hold a zero sub-optimality and are
// excluded from the abort-time aggregate by the early return.
func SweepContext(ctx context.Context, s *ess.Space, run RunFunc, opts SweepOptions) (SweepResult, error) {
	g := s.Grid
	cells := pickCells(g.Size(), opts)
	res := SweepResult{Cells: cells, SubOpt: make([]float64, len(cells)), MSOCell: -1}

	if opts.Workers > 1 && len(cells) > 1 {
		var wg sync.WaitGroup
		next := int64(-1)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(cells) {
						return
					}
					ci := cells[i]
					res.SubOpt[i] = run(g.Location(ci)) / s.CostAt(ci)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, ci := range cells {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			res.SubOpt[i] = run(g.Location(ci)) / s.CostAt(ci)
		}
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	sum := 0.0
	for i, so := range res.SubOpt {
		sum += so
		if so > res.MSO {
			res.MSO = so
			res.MSOCell = cells[i]
		}
	}
	if len(cells) > 0 {
		res.ASO = sum / float64(len(cells))
	}
	return res, nil
}

// SweepManyContext evaluates several named strategies over one shared cell
// sample: pickCells is deterministic in the options, so every strategy is
// measured at identical true locations — including under subsampling — and
// the per-strategy MSO/ASO aggregates are directly comparable. Strategies
// run in name order; a context abort returns the aggregates completed so
// far with the context's error.
func SweepManyContext(ctx context.Context, s *ess.Space, runs map[string]RunFunc, opts SweepOptions) (map[string]SweepResult, error) {
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]SweepResult, len(runs))
	for _, name := range names {
		res, err := SweepContext(ctx, s, runs[name], opts)
		if err != nil {
			return out, err
		}
		out[name] = res
	}
	return out, nil
}

// pickCells returns the sweep's cell sample: every cell when within budget,
// otherwise a deterministic uniform sample that always includes the origin
// and terminus.
func pickCells(size int, opts SweepOptions) []int {
	if opts.MaxLocations <= 0 || size <= opts.MaxLocations {
		out := make([]int, size)
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	seen := map[int]bool{0: true, size - 1: true}
	out := []int{0, size - 1}
	for len(out) < opts.MaxLocations {
		ci := rng.Intn(size)
		if !seen[ci] {
			seen[ci] = true
			out = append(out, ci)
		}
	}
	sort.Ints(out)
	return out
}

// Bucket is one bar of a sub-optimality histogram.
type Bucket struct {
	// Lo and Hi bound the bucket [Lo, Hi).
	Lo, Hi float64
	// Count is the number of locations falling in the bucket.
	Count int
	// Pct is Count as a percentage of all locations.
	Pct float64
}

// Histogram buckets the sub-optimalities into ranges of the given width
// (the paper's Fig. 12 uses width 5), with a final overflow bucket
// collecting everything at or above maxBuckets*width.
func Histogram(subOpt []float64, width float64, maxBuckets int) []Bucket {
	if width <= 0 || maxBuckets < 1 {
		return nil
	}
	buckets := make([]Bucket, maxBuckets+1)
	for i := 0; i < maxBuckets; i++ {
		buckets[i].Lo = float64(i) * width
		buckets[i].Hi = float64(i+1) * width
	}
	buckets[maxBuckets].Lo = float64(maxBuckets) * width
	buckets[maxBuckets].Hi = math.Inf(1)
	for _, so := range subOpt {
		i := int(so / width)
		if i > maxBuckets {
			i = maxBuckets
		}
		buckets[i].Count++
	}
	if n := len(subOpt); n > 0 {
		for i := range buckets {
			buckets[i].Pct = 100 * float64(buckets[i].Count) / float64(n)
		}
	}
	return buckets
}
