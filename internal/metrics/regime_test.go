package metrics

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cost"
)

// fakeScenarioRun is a deterministic synthetic strategy: the scenario index
// selects the outcome shape.
func fakeScenarioRun(scenario int, truth cost.Location) ScenarioOutcome {
	switch scenario {
	case 0: // benign: flat cost, clean
		return ScenarioOutcome{TotalCost: 2}
	case 1: // correlated: costlier, with a watchdog abort
		return ScenarioOutcome{TotalCost: 3, GuardVerdict: "budget_abort"}
	case 2: // adversarial: costliest, via the escape path
		return ScenarioOutcome{TotalCost: 5, GuardVerdict: "ess_escape"}
	default: // adversarial: degraded variant
		return ScenarioOutcome{TotalCost: 4, Degraded: true}
	}
}

func TestScenarioSweepAggregatesPerRegime(t *testing.T) {
	s := buildSpace(t, 4)
	// Normalize: have every cell cost 1 so TotalCost equals sub-optimality.
	// buildSpace costs vary; instead scale outcomes by the cell's cost via
	// the run closure.
	g := s.Grid
	costAt := func(truth cost.Location) float64 {
		idx := make([]int, g.D)
		for d := range idx {
			idx[d] = g.CeilIndex(d, truth[d])
		}
		return s.CostAt(g.Flatten(idx))
	}
	regimeOf := []string{"benign", "regret-correlated", "adversarial", "adversarial"}
	run := func(scenario int, truth cost.Location) ScenarioOutcome {
		c := costAt(truth)
		switch scenario {
		case 0:
			return ScenarioOutcome{TotalCost: 2 * c}
		case 1:
			return ScenarioOutcome{TotalCost: 3 * c, GuardVerdict: "budget_abort"}
		case 2:
			return ScenarioOutcome{TotalCost: 5 * c, GuardVerdict: "ess_escape"}
		default:
			return ScenarioOutcome{TotalCost: 4 * c, Degraded: true}
		}
	}

	results, err := ScenarioSweepContext(context.Background(), s, regimeOf, run, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d regime results, want 3", len(results))
	}
	size := s.Grid.Size()
	benign, corr, adv := results[0], results[1], results[2]
	if benign.Regime != "benign" || corr.Regime != "regret-correlated" || adv.Regime != "adversarial" {
		t.Fatalf("regime order wrong: %s, %s, %s", benign.Regime, corr.Regime, adv.Regime)
	}
	if benign.Scenarios != 1 || adv.Scenarios != 2 {
		t.Errorf("scenario counts: benign %d, adversarial %d", benign.Scenarios, adv.Scenarios)
	}
	if benign.MSO != 2 || benign.ASO != 2 || benign.Locations != size {
		t.Errorf("benign: MSO=%g ASO=%g locations=%d", benign.MSO, benign.ASO, benign.Locations)
	}
	if corr.MSO != 3 || corr.Guard["budget_abort"] != size {
		t.Errorf("correlated: MSO=%g guard=%v", corr.MSO, corr.Guard)
	}
	// Adversarial mixes the 5x escape and the 4x degraded scenario: MSO 5,
	// ASO 4.5, one escape per cell, one degradation per cell.
	if adv.MSO != 5 || adv.ASO != 4.5 || adv.Locations != 2*size {
		t.Errorf("adversarial: MSO=%g ASO=%g locations=%d", adv.MSO, adv.ASO, adv.Locations)
	}
	if adv.Guard["ess_escape"] != size || adv.Degraded != size {
		t.Errorf("adversarial census: guard=%v degraded=%d", adv.Guard, adv.Degraded)
	}
	// Per-cell atlas data: the worst scenario per cell wins, and the verdict
	// overlay keeps the most severe verdict (escape > degraded).
	for i := range adv.Cells {
		if adv.SubOpt[i] != 5 {
			t.Fatalf("adversarial cell %d SubOpt=%g, want 5", i, adv.SubOpt[i])
		}
		if adv.Verdict[i] != "ess_escape" {
			t.Fatalf("adversarial cell %d verdict=%q, want ess_escape", i, adv.Verdict[i])
		}
	}
}

func TestScenarioSweepParallelMatchesSerial(t *testing.T) {
	s := buildSpace(t, 4)
	regimeOf := []string{"benign", "regret-correlated", "adversarial", "adversarial"}
	run := ScenarioRunFunc(fakeScenarioRun)
	serial, err := ScenarioSweepContext(context.Background(), s, regimeOf, run, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ScenarioSweepContext(context.Background(), s, regimeOf, run, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel sweep differs from serial:\n%+v\nvs\n%+v", serial, parallel)
	}
}

func TestScenarioSweepSkipAndCancel(t *testing.T) {
	s := buildSpace(t, 4)
	run := func(scenario int, truth cost.Location) ScenarioOutcome {
		return ScenarioOutcome{Skip: true}
	}
	results, err := ScenarioSweepContext(context.Background(), s, []string{"benign"}, run, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Locations != 0 || r.Skipped != s.Grid.Size() || r.MSOCell != -1 {
		t.Errorf("skip accounting: %+v", r)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ScenarioSweepContext(ctx, s, []string{"benign"}, run, SweepOptions{}); err == nil {
		t.Error("canceled sweep reported no error")
	}
}

func TestScenarioSweepSampling(t *testing.T) {
	s := buildSpace(t, 8)
	run := func(scenario int, truth cost.Location) ScenarioOutcome {
		return ScenarioOutcome{TotalCost: 1}
	}
	results, err := ScenarioSweepContext(context.Background(), s, []string{"benign", "benign"}, run,
		SweepOptions{MaxLocations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if len(r.Cells) != 10 {
		t.Errorf("sampled %d cells, want 10", len(r.Cells))
	}
	if r.Locations != 20 {
		t.Errorf("two scenarios over 10 cells accounted %d evaluations", r.Locations)
	}
}
