package metrics

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/spillbound"
	"repro/internal/sqlmini"
)

func buildSpace(t *testing.T, res int) *ess.Space {
	t.Helper()
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	q := sqlmini.MustParse(c, `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(2, res, 1e-6))
}

func TestSweepExhaustive(t *testing.T) {
	s := buildSpace(t, 8)
	r := spillbound.NewRunner(s)
	run := func(truth cost.Location) float64 {
		return r.Run(engine.New(s.Model, truth)).TotalCost
	}
	res := Sweep(s, run, SweepOptions{})
	if len(res.Cells) != s.Grid.Size() {
		t.Fatalf("exhaustive sweep visited %d cells", len(res.Cells))
	}
	if res.MSO < 1 || res.ASO < 1 || res.ASO > res.MSO {
		t.Errorf("MSO=%g ASO=%g inconsistent", res.MSO, res.ASO)
	}
	if res.MSOCell < 0 || res.SubOpt[indexOf(res.Cells, res.MSOCell)] != res.MSO {
		t.Errorf("MSOCell %d does not attain MSO", res.MSOCell)
	}
	// The structural bound holds across the sweep.
	if res.MSO > spillbound.Guarantee(2) {
		t.Errorf("MSO %g exceeds bound", res.MSO)
	}
}

func indexOf(cells []int, ci int) int {
	for i, c := range cells {
		if c == ci {
			return i
		}
	}
	return -1
}

func TestSweepSampled(t *testing.T) {
	s := buildSpace(t, 8)
	run := func(truth cost.Location) float64 { return s.MinCost() * 2 }
	res := Sweep(s, run, SweepOptions{MaxLocations: 10, Seed: 1})
	if len(res.Cells) != 10 {
		t.Fatalf("sampled sweep visited %d cells, want 10", len(res.Cells))
	}
	// Origin and terminus always included.
	if res.Cells[0] != 0 || res.Cells[len(res.Cells)-1] != s.Grid.Size()-1 {
		t.Errorf("sample must include origin and terminus: %v", res.Cells)
	}
	// Determinism by seed.
	res2 := Sweep(s, run, SweepOptions{MaxLocations: 10, Seed: 1})
	for i := range res.Cells {
		if res.Cells[i] != res2.Cells[i] {
			t.Fatal("sampling not deterministic for equal seeds")
		}
	}
}

func TestHistogram(t *testing.T) {
	subOpt := []float64{1, 2, 4.9, 5, 7, 12, 100}
	h := Histogram(subOpt, 5, 3)
	if len(h) != 4 {
		t.Fatalf("histogram has %d buckets, want 4", len(h))
	}
	// [0,5): 1,2,4.9 -> 3; [5,10): 5,7 -> 2; [10,15): 12 -> 1; [15,inf): 100 -> 1.
	wantCounts := []int{3, 2, 1, 1}
	total := 0.0
	for i, b := range h {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
		total += b.Pct
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("percentages sum to %g", total)
	}
	if !math.IsInf(h[3].Hi, 1) {
		t.Error("overflow bucket should be unbounded")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := Histogram(nil, 5, 2); len(h) != 3 {
		t.Errorf("empty input should still shape buckets: %d", len(h))
	}
	if Histogram([]float64{1}, 0, 2) != nil {
		t.Error("zero width should return nil")
	}
	if Histogram([]float64{1}, 5, 0) != nil {
		t.Error("zero buckets should return nil")
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	s := buildSpace(t, 8)
	r := spillbound.NewRunner(s)
	run := func(truth cost.Location) float64 {
		return r.Run(engine.New(s.Model, truth)).TotalCost
	}
	seq := Sweep(s, run, SweepOptions{})
	par := Sweep(s, run, SweepOptions{Workers: 8})
	if seq.MSO != par.MSO || seq.ASO != par.ASO || seq.MSOCell != par.MSOCell {
		t.Errorf("parallel sweep diverges: %+v vs %+v", par, seq)
	}
	for i := range seq.SubOpt {
		if seq.SubOpt[i] != par.SubOpt[i] {
			t.Fatalf("cell %d: %g vs %g", i, par.SubOpt[i], seq.SubOpt[i])
		}
	}
}
