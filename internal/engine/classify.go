// Error classification and the cost-ceiling contract of the budget
// watchdog (internal/guard). The paper's ledger analysis (Sec 3, MSO ≤
// 4(1+λ)ρ) assumes every budgeted execution is forcibly terminated at its
// contour budget; the watchdog enforces that assumption at run time by
// attaching a hard cost ceiling to the execution context. Substrates that
// meter their own work (this engine, internal/rowexec) consult the ceiling
// cooperatively and abort with ErrBudgetAborted the moment charged cost
// would cross it.
//
// Classification answers the retry layer's only question: is an error worth
// re-attempting? Watchdog aborts, injected checkpoint crashes and context
// cancellation are terminal — re-running the step cannot change the outcome
// and would double-charge the ledger — while everything else (injected
// failures, panics recovered into errors, transient substrate trouble) is
// transient and rides the backoff schedule.
package engine

import (
	"context"
	"errors"

	"repro/internal/faults"
)

// ErrBudgetAborted marks an execution hard-aborted by the budget watchdog:
// its charged cost reached the guard's ceiling (budget plus the explicit λ
// slack) and the plan was cooperatively cancelled mid-flight. The partial
// charge up to the ceiling stands in the ledger; the discovery loops treat
// the execution as a failed (incomplete) step and continue at the next
// plan/contour. Terminal: never retried.
var ErrBudgetAborted = errors.New("engine: execution aborted at budget ceiling")

// IsBudgetAbort reports whether the error is a watchdog budget abort.
func IsBudgetAbort(err error) bool { return errors.Is(err, ErrBudgetAborted) }

// terminalError lets error types outside this package (e.g. the guard's
// ESS-escape) declare themselves terminal without an import cycle.
type terminalError interface{ Terminal() bool }

// Class partitions execution-step errors for the retry policy.
type Class int

const (
	// Transient errors are worth re-attempting under backoff.
	Transient Class = iota
	// TerminalClass errors propagate immediately: retrying cannot succeed
	// and may double-charge the budget ledger.
	TerminalClass
)

// Classify buckets an execution-step error: context cancellation and
// deadline expiry, watchdog budget aborts, injected checkpoint crashes
// (faults.ErrCrashed / repro.ErrRunCrashed) and any error implementing
// Terminal() true are terminal; everything else is transient.
func Classify(err error) Class {
	if Terminal(err) {
		return TerminalClass
	}
	return Transient
}

// Terminal reports whether the error must not be retried.
func Terminal(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	if errors.Is(err, ErrBudgetAborted) || faults.IsCrash(err) {
		return true
	}
	var te terminalError
	return errors.As(err, &te) && te.Terminal()
}

// ceilingKey is the private context key for the watchdog's cost ceiling.
type ceilingKey struct{}

// WithCostCeiling attaches a hard charged-cost ceiling to the context. The
// metering substrates stop the execution and return ErrBudgetAborted once
// their charge reaches the ceiling; the charge is clamped to it.
func WithCostCeiling(ctx context.Context, ceiling float64) context.Context {
	return context.WithValue(ctx, ceilingKey{}, ceiling)
}

// CostCeiling extracts the active cost ceiling; ok is false when no
// watchdog guards the execution.
func CostCeiling(ctx context.Context) (float64, bool) {
	c, ok := ctx.Value(ceilingKey{}).(float64)
	return c, ok
}
