package engine

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

func TestExplainAnnotatesNodes(t *testing.T) {
	m := testModel(t)
	truth := cost.Location{1e-4, 1e-3}
	e := New(m, truth)
	p, c := optimalPlanAt(t, m, truth)
	out := e.Explain(p)
	for _, want := range []string{"Scan", "rows=", "cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// The root line carries the full plan cost.
	first := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(first, "cost=") {
		t.Errorf("root line unannotated: %q", first)
	}
	_ = c
	// All three relations appear by alias.
	for _, alias := range []string{"p", "l", "o"} {
		if !strings.Contains(out, " "+alias) && !strings.Contains(out, alias+"\n") && !strings.Contains(out, alias+" ") {
			t.Errorf("Explain missing relation %q:\n%s", alias, out)
		}
	}
}

func TestExplainIndexNestLoop(t *testing.T) {
	m := testModel(t)
	inl := plan.New(&plan.Node{Kind: plan.IndexNestLoop, Rel: -1, JoinIDs: []int{1},
		Left: &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
			Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
			Right: &plan.Node{Kind: plan.SeqScan, Rel: 1}},
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 2},
	})
	out := ExplainAt(m, inl, cost.Location{1e-4, 1e-4})
	if !strings.Contains(out, "Index Nested Loop") {
		t.Errorf("missing INL header:\n%s", out)
	}
	if !strings.Contains(out, "Index probe") {
		t.Errorf("inner side should render as an index probe:\n%s", out)
	}
	if strings.Count(out, "Scan") != 2 {
		t.Errorf("INL inner must not render as a scan:\n%s", out)
	}
}

func TestExplainPipelines(t *testing.T) {
	m := testModel(t)
	o := optimizer.MustNew(m)
	p, _ := o.Optimize(cost.Location{1e-4, 1e-3})
	out := ExplainPipelines(m, p)
	if !strings.Contains(out, "L1:") {
		t.Errorf("missing first pipeline:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != len(p.Pipelines()) {
		t.Errorf("rendered %d pipelines, plan has %d", lines, len(p.Pipelines()))
	}
}
