// Degradation-aware execution (operational robustness). The paper bounds the
// damage of adversarial selectivity estimates; this file bounds the damage
// of operational failures with a fixed ladder: a failing execution step is
// retried with exponential backoff, and a step that keeps failing aborts the
// discovery run with a typed error so the session layer can fall back to the
// Native (estimate-optimal) plan and report the downgraded guarantee —
// instead of panicking or hanging.
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/telemetry"
)

// Policy configures step-level retry with exponential backoff.
type Policy struct {
	// MaxRetries is the number of re-attempts after the first failure of a
	// single execution step. Past it the step error propagates.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. 0 means no cap.
	MaxBackoff time.Duration
}

// DefaultPolicy returns the standard ladder: two retries starting at 1ms —
// enough to absorb transient faults without stretching a simulated run.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// backoff returns the delay before retry attempt n (1-based).
func (p Policy) backoff(n int) time.Duration {
	d := p.BaseBackoff << uint(n-1)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// StepError wraps the terminal failure of one execution step after the
// retry budget is exhausted, so callers can distinguish "this step is
// broken, degrade" from cancellation.
type StepError struct {
	// Attempts is the total number of attempts made (1 + retries).
	Attempts int
	// Err is the last attempt's failure.
	Err error
}

func (e *StepError) Error() string {
	return fmt.Sprintf("engine: execution step failed after %d attempts: %v", e.Attempts, e.Err)
}

func (e *StepError) Unwrap() error { return e.Err }

// Resilient wraps a ContextExecutor with the retry half of the degradation
// ladder: panics in the substrate are recovered into errors, failed steps
// are retried with exponential backoff, and cancellation is never retried.
// It implements ContextExecutor, so discovery runners use it transparently.
type Resilient struct {
	// Exec is the wrapped substrate.
	Exec ContextExecutor
	// Policy is the retry configuration (zero value: no retries).
	Policy Policy
	// Sleep replaces time.Sleep in tests; nil uses a context-aware sleep.
	Sleep func(context.Context, time.Duration) error

	mu      sync.Mutex
	retries int
	events  []string
}

// NewResilient wraps the executor with the default policy.
func NewResilient(e Executor) *Resilient {
	return &Resilient{Exec: AsContextExecutor(e), Policy: DefaultPolicy()}
}

// Retries reports the total number of retry attempts performed.
func (r *Resilient) Retries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// Events returns the recovery log (one line per recovered failure or
// retry), for inclusion in run traces.
func (r *Resilient) Events() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func (r *Resilient) note(format string, args ...any) {
	r.mu.Lock()
	r.events = append(r.events, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// attempt runs fn once, converting a panic in the substrate into an error.
func attempt(fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("engine: panic during execution: %v", rec)
		}
	}()
	return fn()
}

// retry drives fn through the policy's backoff schedule. fn is re-invoked
// until it succeeds, the retry budget is exhausted (→ *StepError), or the
// failure is terminal (Classify): cancellation, a watchdog budget abort, or
// an injected checkpoint crash propagate immediately — re-attempting cannot
// change the outcome and would double-charge the budget ledger.
func (r *Resilient) retry(ctx context.Context, kind string, fn func() error) error {
	var last error
	for n := 0; ; n++ {
		last = attempt(fn)
		if last == nil {
			return nil
		}
		if Classify(last) == TerminalClass {
			return last
		}
		if n >= r.Policy.MaxRetries {
			note := fmt.Sprintf("%s: giving up after %d attempts: %v", kind, n+1, last)
			r.note("%s", note)
			telemetry.From(ctx).Record(telemetry.Event{
				Kind: telemetry.Retry, Dim: -1, Detail: note, Final: true,
			})
			return &StepError{Attempts: n + 1, Err: last}
		}
		d := r.Policy.backoff(n + 1)
		r.mu.Lock()
		r.retries++
		r.mu.Unlock()
		note := fmt.Sprintf("%s: attempt %d failed (%v), retrying in %s", kind, n+1, last, d)
		r.note("%s", note)
		telemetry.From(ctx).Record(telemetry.Event{Kind: telemetry.Retry, Dim: -1, Detail: note})
		sleep := r.Sleep
		if sleep == nil {
			sleep = sleepUntil
		}
		if err := sleep(ctx, d); err != nil {
			return err
		}
	}
}

// sleepUntil sleeps for d or until ctx is done.
func sleepUntil(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ExecuteCtx runs the plan under budget with retry-on-failure.
func (r *Resilient) ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (Result, error) {
	var res Result
	err := r.retry(ctx, "execute", func() error {
		var e error
		res, e = r.Exec.ExecuteCtx(ctx, p, budget)
		return e
	})
	return res, err
}

// ExecuteSpillCtx runs the spill-mode execution with retry-on-failure.
func (r *Resilient) ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (SpillResult, bool, error) {
	var res SpillResult
	var ok bool
	err := r.retry(ctx, "spill", func() error {
		var e error
		res, ok, e = r.Exec.ExecuteSpillCtx(ctx, p, dim, budget)
		return e
	})
	return res, ok, err
}

// Execute implements the plain Executor interface (no cancellation, no
// faults) by delegating with a background context.
func (r *Resilient) Execute(p *plan.Plan, budget float64) Result {
	res, _ := r.ExecuteCtx(context.Background(), p, budget)
	return res
}

// ExecuteSpill implements the plain Executor interface.
func (r *Resilient) ExecuteSpill(p *plan.Plan, dim int, budget float64) (SpillResult, bool) {
	res, ok, _ := r.ExecuteSpillCtx(context.Background(), p, dim, budget)
	return res, ok
}

var _ ContextExecutor = (*Resilient)(nil)
