package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sqlmini"
)

func testModel(t *testing.T) *cost.Model {
	t.Helper()
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	q := sqlmini.MustParse(c, `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	return cost.MustNewModel(q, cost.PostgresLike())
}

func optimalPlanAt(t *testing.T, m *cost.Model, at cost.Location) (*plan.Plan, float64) {
	t.Helper()
	o := optimizer.MustNew(m)
	return o.Optimize(at)
}

func TestExecuteWithinBudget(t *testing.T) {
	m := testModel(t)
	truth := cost.Location{1e-4, 1e-4}
	e := New(m, truth)
	p, c := optimalPlanAt(t, m, truth)
	res := e.Execute(p, c*1.01)
	if !res.Completed {
		t.Fatal("execution within budget should complete")
	}
	if math.Abs(res.Spent-c)/c > 1e-9 {
		t.Errorf("Spent = %g, want full cost %g", res.Spent, c)
	}
}

func TestExecuteBudgetExpiry(t *testing.T) {
	m := testModel(t)
	truth := cost.Location{1e-2, 1e-2}
	e := New(m, truth)
	p, c := optimalPlanAt(t, m, truth)
	res := e.Execute(p, c/10)
	if res.Completed {
		t.Fatal("execution over budget should abort")
	}
	if res.Spent != c/10 {
		t.Errorf("Spent = %g, want exactly the budget %g", res.Spent, c/10)
	}
}

func TestExecuteSpillCompletes(t *testing.T) {
	m := testModel(t)
	truth := cost.Location{1e-5, 1e-5}
	e := New(m, truth)
	p, c := optimalPlanAt(t, m, truth)
	// A budget covering the whole plan certainly covers any subtree.
	res, ok := e.ExecuteSpill(p, 0, c)
	if !ok {
		t.Fatal("plan should contain epp 0")
	}
	if !res.Completed {
		t.Fatal("spill within budget should complete")
	}
	if res.Learned != truth[0] {
		t.Errorf("Learned = %g, want exact truth %g", res.Learned, truth[0])
	}
	if res.Spent > c {
		t.Errorf("subtree spent %g exceeds full plan cost %g", res.Spent, c)
	}
}

// TestSpillHalfSpacePruning verifies Lemma 3.1: executing P in spill-mode on
// the predicate chosen by spill-node identification, with budget Cost(P, q),
// either learns the exact selectivity or proves q_a.j > q.j. The lemma
// relies on the spill target being the first unlearned epp in the total
// order, so that its subtree contains no other unlearned epp — spilling on
// a downstream epp carries no such guarantee, which is precisely why the
// identification procedure exists.
func TestSpillHalfSpacePruning(t *testing.T) {
	m := testModel(t)
	rng := rand.New(rand.NewSource(11))
	o := optimizer.MustNew(m)
	epps := m.Query.EPPs
	for trial := 0; trial < 60; trial++ {
		q := cost.Location{math.Pow(10, -6*rng.Float64()), math.Pow(10, -6*rng.Float64())}
		truth := cost.Location{math.Pow(10, -6*rng.Float64()), math.Pow(10, -6*rng.Float64())}
		p, budget := o.Optimize(q)
		tgt, ok := p.SpillTarget(epps, nil)
		if !ok {
			t.Fatal("optimal plan has no spillable epp")
		}
		dim, isEPP := m.Query.IsEPP(tgt.JoinID)
		if !isEPP {
			t.Fatalf("spill target %d is not an epp", tgt.JoinID)
		}
		e := New(m, truth)
		res, ok := e.ExecuteSpill(p, dim, budget)
		if !ok {
			t.Fatal("spill on identified target must be possible")
		}
		if res.Completed {
			if res.Learned != truth[dim] {
				t.Fatalf("completed spill learned %g, truth %g", res.Learned, truth[dim])
			}
			continue
		}
		// Not completed: monitoring bound must be a valid lower bound and
		// at least q's coordinate (half-space pruning).
		if res.Learned >= truth[dim] {
			t.Fatalf("bound %g not strictly below truth %g", res.Learned, truth[dim])
		}
		if res.Learned < q[dim]-1e-9 {
			t.Fatalf("trial %d dim %d: bound %g below contour coordinate %g (Lemma 3.1 violated)",
				trial, dim, res.Learned, q[dim])
		}
	}
}

func TestSpillMonitoringTightness(t *testing.T) {
	m := testModel(t)
	truth := cost.Location{1e-1, 1e-1}
	e := New(m, truth)
	p, _ := optimalPlanAt(t, m, truth)
	// Find the subtree's full cost, then give half of it: the bound should
	// be strictly between 0 and the truth, and the subtree cost at the
	// bound should be within a hair of the budget.
	full, ok := e.ExecuteSpill(p, 0, math.Inf(1))
	if !ok || !full.Completed {
		t.Fatal("setup failed")
	}
	budget := full.Spent / 2
	res, _ := e.ExecuteSpill(p, 0, budget)
	if res.Completed {
		t.Fatal("half budget should not complete")
	}
	if res.Learned <= 0 || res.Learned >= truth[0] {
		t.Fatalf("bound %g outside (0, %g)", res.Learned, truth[0])
	}
	joinID := m.Query.EPPs[0]
	sub := p.Subtree(joinID)
	probe := truth.Clone()
	probe[0] = res.Learned
	c := m.Eval(sub, probe)
	if c > budget*(1+1e-6) {
		t.Errorf("cost at bound %g exceeds budget %g", c, budget)
	}
}

func TestExecuteSpillMissingPredicate(t *testing.T) {
	m := testModel(t)
	e := New(m, cost.Location{1e-4, 1e-4})
	// A plan over only part ⋈ lineitem has no node for epp 1.
	sub := plan.New(&plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
		Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 1},
	})
	if _, ok := e.ExecuteSpill(sub, 1, 1000); ok {
		t.Error("spill on absent predicate should report !ok")
	}
}

func TestSeconds(t *testing.T) {
	m := testModel(t)
	e := New(m, cost.Location{1e-4, 1e-4})
	if e.Seconds(500) != 500 {
		t.Error("without TimeScale Seconds should be identity")
	}
	e.TimeScale = 100
	if e.Seconds(500) != 5 {
		t.Errorf("Seconds(500) = %g, want 5", e.Seconds(500))
	}
}

func TestNewPanicsOnDimMismatch(t *testing.T) {
	m := testModel(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(m, cost.Location{0.5})
}
