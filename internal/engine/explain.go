package engine

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/plan"
)

// Explain renders an EXPLAIN-ANALYZE-style view of a plan at the engine's
// true location: the operator tree annotated with each node's estimated
// output cardinality and cumulative cost under the model, resolving
// relation names through the query. Spill-mode views (Subtree) render the
// same way.
func (e *Engine) Explain(p *plan.Plan) string {
	return ExplainAt(e.Model, p, e.Truth)
}

// ExplainAt renders the annotated plan at an arbitrary location.
func ExplainAt(m *cost.Model, p *plan.Plan, at cost.Location) string {
	detail := m.EvalTree(p, at)
	names := make([]string, len(m.Query.Relations))
	for i, r := range m.Query.Relations {
		names[i] = r.Alias
	}
	var b strings.Builder
	var rec func(n *plan.Node, depth int)
	rec = func(n *plan.Node, depth int) {
		if n == nil {
			return
		}
		nc, known := detail[n]
		b.WriteString(strings.Repeat("  ", depth))
		switch n.Kind {
		case plan.SeqScan:
			fmt.Fprintf(&b, "Scan %s", names[n.Rel])
		case plan.Sort:
			b.WriteString("Sort")
		case plan.Aggregate:
			b.WriteString("HashAggregate")
		default:
			preds := make([]string, len(n.JoinIDs))
			for i, id := range n.JoinIDs {
				preds[i] = m.Query.Joins[id].String()
			}
			fmt.Fprintf(&b, "%s on %s", opName(n.Kind), strings.Join(preds, " AND "))
		}
		if known {
			fmt.Fprintf(&b, "  (rows=%.3g cost=%.4g)", nc.Rows, nc.Total)
		}
		b.WriteByte('\n')
		rec(n.Left, depth+1)
		// An index nested-loop's inner side is reached through its index;
		// render it as an access path rather than a scanned child.
		if n.Kind == plan.IndexNestLoop && n.Right != nil {
			b.WriteString(strings.Repeat("  ", depth+1))
			fmt.Fprintf(&b, "Index probe %s\n", names[n.Right.Rel])
			return
		}
		rec(n.Right, depth+1)
	}
	rec(p.Root, 0)
	return b.String()
}

func opName(k plan.OpKind) string {
	switch k {
	case plan.HashJoin:
		return "Hash Join"
	case plan.MergeJoin:
		return "Merge Join"
	case plan.NestLoop:
		return "Nested Loop"
	case plan.IndexNestLoop:
		return "Index Nested Loop"
	}
	return k.String()
}

// ExplainPipelines lists a plan's pipelines in execution order with their
// operators — the decomposition driving spill-node identification
// (Sec 3.1.1/3.1.3).
func ExplainPipelines(m *cost.Model, p *plan.Plan) string {
	names := make([]string, len(m.Query.Relations))
	for i, r := range m.Query.Relations {
		names[i] = r.Alias
	}
	var b strings.Builder
	for i, pl := range p.Pipelines() {
		fmt.Fprintf(&b, "L%d:", i+1)
		for _, n := range pl.Nodes {
			switch n.Kind {
			case plan.SeqScan:
				fmt.Fprintf(&b, " Scan(%s)", names[n.Rel])
			case plan.Sort:
				b.WriteString(" Sort")
			case plan.Aggregate:
				b.WriteString(" Agg")
			default:
				fmt.Fprintf(&b, " %s[j%d]", n.Kind, n.JoinIDs[0])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
