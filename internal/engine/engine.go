// Package engine simulates the modified database executor the paper built
// into PostgreSQL (Sec 6.1): plan execution under a cost budget with forced
// termination, spill-mode execution that runs only the subtree rooted at an
// error-prone predicate's node while discarding its output (Sec 3.1.2), and
// run-time selectivity monitoring that, on budget expiry, reports the
// largest selectivity consistent with the work performed — realizing the
// half-space pruning guarantee of Lemma 3.1.
//
// The simulation is cost-model-faithful: executing plan P at the true
// location q_a costs Cost(P, q_a) units; a run whose cost exceeds its budget
// is charged exactly the budget and aborted. All robustness guarantees in
// the paper are stated in these units, so the simulator exercises the same
// algorithmic behaviour as a wall-clock engine.
package engine

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/plan"
)

// Executor abstracts the execution substrate the discovery algorithms
// drive: budget-limited plan execution and spill-mode execution with
// selectivity monitoring. The cost-model simulator (*Engine) is the default
// implementation; rowexec.Adapter provides a row-at-a-time physical one.
type Executor interface {
	// Execute runs the plan under a cost budget.
	Execute(p *plan.Plan, budget float64) Result
	// ExecuteSpill runs the plan in spill-mode on the ESS dimension.
	ExecuteSpill(p *plan.Plan, dim int, budget float64) (SpillResult, bool)
}

// Engine executes plans against a fixed true selectivity location q_a.
type Engine struct {
	// Model is the shared cost model.
	Model *cost.Model
	// Truth is the actual selectivity location q_a, unknown to the
	// algorithms and only consulted by the simulated executor.
	Truth cost.Location
	// TimeScale converts cost units to simulated seconds for wall-clock
	// reports (cost units per second). Zero disables conversion.
	TimeScale float64
	// CostError optionally injects bounded cost-model error: every
	// execution's true cost is the model's prediction times this factor
	// (see DeterministicCostError and paper Sec 7). Nil disables injection.
	CostError CostErrorFn
}

// New returns an engine executing at the given true location.
func New(m *cost.Model, truth cost.Location) *Engine {
	if len(truth) != m.Query.D() {
		panic(fmt.Sprintf("engine: truth has %d dims, query has %d epps", len(truth), m.Query.D()))
	}
	return &Engine{Model: m, Truth: truth, TimeScale: 0}
}

// Result reports one budgeted (non-spill) execution.
type Result struct {
	// Completed is true if the plan ran to completion within its budget.
	Completed bool
	// Spent is the cost charged: the plan's full cost when completed, the
	// entire budget otherwise (partial results are discarded, per the
	// PlanBouquet protocol).
	Spent float64
}

// Execute runs the plan with the given cost budget.
func (e *Engine) Execute(p *plan.Plan, budget float64) Result {
	c := e.execCost(p)
	if c <= budget {
		return Result{Completed: true, Spent: c}
	}
	return Result{Completed: false, Spent: budget}
}

// SpillResult reports one spill-mode execution.
type SpillResult struct {
	// Completed is true if the epp subtree ran to completion, fully
	// learning the predicate's selectivity.
	Completed bool
	// Spent is the cost charged.
	Spent float64
	// Learned is the selectivity information gained for the spilled
	// dimension: the exact selectivity when Completed, otherwise the
	// largest selectivity whose subtree cost fits in the budget — a strict
	// lower bound on the true value (run-time monitoring, Lemma 3.1).
	Learned float64
}

// ExecuteSpill runs plan p in spill-mode on ESS dimension dim with the
// given budget: the plan is truncated to the subtree rooted at the node
// applying the dimension's predicate, the subtree's output is discarded,
// and the whole budget is devoted to learning that predicate's selectivity.
// ok is false if the plan does not apply the predicate (no spill possible).
func (e *Engine) ExecuteSpill(p *plan.Plan, dim int, budget float64) (SpillResult, bool) {
	joinID := e.Model.Query.EPPs[dim]
	sub := p.Subtree(joinID)
	if sub == nil {
		return SpillResult{}, false
	}
	factor := e.errorFactor(p)
	full := e.Model.Eval(sub, e.Truth) * factor
	if full <= budget {
		return SpillResult{Completed: true, Spent: full, Learned: e.Truth[dim]}, true
	}
	return SpillResult{
		Completed: false,
		Spent:     budget,
		Learned:   e.monitorBound(sub, dim, budget/factor),
	}, true
}

// monitorBound inverts the (monotone) subtree cost along dimension dim:
// the largest selectivity s <= truth[dim] with Cost(subtree, truth[dim:=s])
// <= budget. This simulates counting the rows the spilled operator produced
// before the budget expired.
func (e *Engine) monitorBound(sub *plan.Plan, dim int, budget float64) float64 {
	probe := e.Truth.Clone()
	eval := func(s float64) float64 {
		probe[dim] = s
		return e.Model.Eval(sub, probe)
	}
	lo, hi := 0.0, e.Truth[dim]
	if eval(lo) > budget {
		// Even the zero-selectivity work exceeds the budget: nothing about
		// the dimension was learnt.
		return 0
	}
	for i := 0; i < 64 && hi-lo > 1e-16; i++ {
		mid := (lo + hi) / 2
		if eval(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Seconds converts cost units to simulated wall-clock seconds under the
// engine's TimeScale; it returns the raw units when no scale is set.
func (e *Engine) Seconds(costUnits float64) float64 {
	if e.TimeScale <= 0 {
		return costUnits
	}
	return costUnits / e.TimeScale
}
