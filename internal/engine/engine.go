// Package engine simulates the modified database executor the paper built
// into PostgreSQL (Sec 6.1): plan execution under a cost budget with forced
// termination, spill-mode execution that runs only the subtree rooted at an
// error-prone predicate's node while discarding its output (Sec 3.1.2), and
// run-time selectivity monitoring that, on budget expiry, reports the
// largest selectivity consistent with the work performed — realizing the
// half-space pruning guarantee of Lemma 3.1.
//
// The simulation is cost-model-faithful: executing plan P at the true
// location q_a costs Cost(P, q_a) units; a run whose cost exceeds its budget
// is charged exactly the budget and aborted. All robustness guarantees in
// the paper are stated in these units, so the simulator exercises the same
// algorithmic behaviour as a wall-clock engine.
package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// Executor abstracts the execution substrate the discovery algorithms
// drive: budget-limited plan execution and spill-mode execution with
// selectivity monitoring. The cost-model simulator (*Engine) is the default
// implementation; rowexec.Adapter provides a row-at-a-time physical one.
type Executor interface {
	// Execute runs the plan under a cost budget.
	Execute(p *plan.Plan, budget float64) Result
	// ExecuteSpill runs the plan in spill-mode on the ESS dimension.
	ExecuteSpill(p *plan.Plan, dim int, budget float64) (SpillResult, bool)
}

// ContextExecutor is an Executor that additionally supports cancellable,
// fault-aware execution: the context carries the caller's deadline and any
// injected fault plan (internal/faults), and errors — injected or real —
// surface instead of panicking. The discovery runners prefer this interface
// when the substrate provides it.
type ContextExecutor interface {
	Executor
	// ExecuteCtx is Execute honouring cancellation and fault injection.
	ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (Result, error)
	// ExecuteSpillCtx is ExecuteSpill honouring cancellation and fault
	// injection.
	ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (SpillResult, bool, error)
}

// AsContextExecutor adapts any Executor to the context-aware interface:
// native ContextExecutors pass through; plain ones get a wrapper that checks
// cancellation before delegating (the execution itself is then atomic from
// the caller's point of view).
func AsContextExecutor(e Executor) ContextExecutor {
	if ce, ok := e.(ContextExecutor); ok {
		return ce
	}
	return plainCtxExecutor{e}
}

type plainCtxExecutor struct{ Executor }

func (w plainCtxExecutor) ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return w.Execute(p, budget), nil
}

func (w plainCtxExecutor) ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (SpillResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return SpillResult{}, false, err
	}
	res, ok := w.ExecuteSpill(p, dim, budget)
	return res, ok, nil
}

// Engine executes plans against a fixed true selectivity location q_a.
type Engine struct {
	// Model is the shared cost model.
	Model *cost.Model
	// Truth is the actual selectivity location q_a, unknown to the
	// algorithms and only consulted by the simulated executor.
	Truth cost.Location
	// TimeScale converts cost units to simulated seconds for wall-clock
	// reports (cost units per second). Zero disables conversion.
	TimeScale float64
	// CostError optionally injects bounded cost-model error: every
	// execution's true cost is the model's prediction times this factor
	// (see DeterministicCostError and paper Sec 7). Nil disables injection.
	CostError CostErrorFn
}

// New returns an engine executing at the given true location. It panics on
// a truth/query dimensionality mismatch; callers handling untrusted input
// should use NewChecked.
func New(m *cost.Model, truth cost.Location) *Engine {
	e, err := NewChecked(m, truth)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// NewChecked is New returning an error instead of panicking on invalid
// input — the constructor for request-driven paths (e.g. the HTTP server)
// where a bad payload must yield a 4xx, not a crash.
func NewChecked(m *cost.Model, truth cost.Location) (*Engine, error) {
	if len(truth) != m.Query.D() {
		return nil, fmt.Errorf("engine: truth has %d dims, query has %d epps", len(truth), m.Query.D())
	}
	for d, v := range truth {
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("engine: truth[%d] = %g outside (0,1]", d, v)
		}
	}
	return &Engine{Model: m, Truth: truth, TimeScale: 0}, nil
}

// Result reports one budgeted (non-spill) execution.
type Result struct {
	// Completed is true if the plan ran to completion within its budget.
	Completed bool
	// Spent is the cost charged: the plan's full cost when completed, the
	// entire budget otherwise (partial results are discarded, per the
	// PlanBouquet protocol). Under an injected budget-overrun fault the
	// incomplete charge exceeds the budget by the overrun factor, and under
	// a watchdog ceiling it is clamped at the ceiling (see classify.go).
	Spent float64
}

// Execute runs the plan with the given cost budget.
func (e *Engine) Execute(p *plan.Plan, budget float64) Result {
	c := e.execCost(p)
	if c <= budget {
		return Result{Completed: true, Spent: c}
	}
	return Result{Completed: false, Spent: budget}
}

// ExecuteCtx is Execute with cancellation and fault injection: it checks the
// context before doing work, consults any fault plan attached to the context
// (latency, injected error or panic, cost-eval failure, budget overrun), and
// returns the failure instead of silently proceeding.
func (e *Engine) ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	fp := faults.From(ctx)
	if err := fp.BeforeExec(ctx); err != nil {
		return Result{}, err
	}
	if err := fp.OnCostEval(); err != nil {
		return Result{}, err
	}
	factor := fp.OverrunFactor()
	c := e.execCost(p) * factor
	res := Result{Completed: c <= budget, Spent: c}
	if !res.Completed {
		// Forced termination at budget expiry. A well-behaved operator is
		// charged exactly the budget; a misbehaving one (injected overrun
		// factor > 1) spends past its assigned budget before the termination
		// lands, and the ledger records the real, inflated charge — this is
		// what the budget watchdog detects and hard-stops.
		res.Spent = math.Min(c, budget*factor)
	}
	if ceil, guarded := CostCeiling(ctx); guarded && res.Spent > ceil {
		// Cooperative cancellation at the watchdog's ceiling: the charge is
		// clamped there, the partial result discarded, and the abort
		// surfaces as a terminal (never-retried) error.
		res = Result{Completed: false, Spent: ceil}
		recordSpend(ctx, "exec", -1, budget, res.Spent, false, 0)
		return res, fmt.Errorf("engine: charge would exceed cost ceiling %.4g (budget %.4g): %w",
			ceil, budget, ErrBudgetAborted)
	}
	recordSpend(ctx, "exec", -1, budget, res.Spent, res.Completed, 0)
	return res, nil
}

// recordSpend emits the engine-level BudgetSpend accounting event to any
// recorder on the context. An unbudgeted execution (budget +Inf) is recorded
// with Budget -1, keeping the event stream JSON-safe.
func recordSpend(ctx context.Context, mode string, dim int, budget, spent float64, completed bool, learned float64) {
	rec := telemetry.From(ctx)
	if rec == nil {
		return
	}
	if math.IsInf(budget, 1) {
		budget = -1
	}
	rec.Record(telemetry.Event{
		Kind: telemetry.BudgetSpend, Mode: mode, Dim: dim,
		Budget: budget, Spent: spent, Completed: completed, Learned: learned,
	})
}

// ExecuteSpillCtx is ExecuteSpill with cancellation and fault injection.
func (e *Engine) ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (SpillResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return SpillResult{}, false, err
	}
	fp := faults.From(ctx)
	if err := fp.BeforeExec(ctx); err != nil {
		return SpillResult{}, false, err
	}
	if err := fp.OnCostEval(); err != nil {
		return SpillResult{}, false, err
	}
	res, ok := e.executeSpill(p, dim, budget, fp.OverrunFactor())
	if ok {
		res.Learned = fp.OnLearned(res.Learned)
		if ceil, guarded := CostCeiling(ctx); guarded && res.Spent > ceil {
			// Cooperative cancellation mid-spill: the monitoring lower bound
			// gathered so far is still valid (Lemma 3.1 is monotone in the
			// budget), but the charge is clamped at the ceiling and the
			// abort surfaces as a terminal error.
			res.Completed = false
			res.Spent = ceil
			recordSpend(ctx, "spill", dim, budget, res.Spent, false, res.Learned)
			return res, true, fmt.Errorf("engine: spill charge would exceed cost ceiling %.4g (budget %.4g): %w",
				ceil, budget, ErrBudgetAborted)
		}
		recordSpend(ctx, "spill", dim, budget, res.Spent, res.Completed, res.Learned)
	}
	return res, ok, nil
}

// SpillResult reports one spill-mode execution.
type SpillResult struct {
	// Completed is true if the epp subtree ran to completion, fully
	// learning the predicate's selectivity.
	Completed bool
	// Spent is the cost charged.
	Spent float64
	// Learned is the selectivity information gained for the spilled
	// dimension: the exact selectivity when Completed, otherwise the
	// largest selectivity whose subtree cost fits in the budget — a strict
	// lower bound on the true value (run-time monitoring, Lemma 3.1).
	Learned float64
}

// ExecuteSpill runs plan p in spill-mode on ESS dimension dim with the
// given budget: the plan is truncated to the subtree rooted at the node
// applying the dimension's predicate, the subtree's output is discarded,
// and the whole budget is devoted to learning that predicate's selectivity.
// ok is false if the plan does not apply the predicate (no spill possible).
func (e *Engine) ExecuteSpill(p *plan.Plan, dim int, budget float64) (SpillResult, bool) {
	return e.executeSpill(p, dim, budget, 1)
}

// executeSpill is ExecuteSpill with an extra charged-cost multiplier
// (fault-injected budget overrun; 1 when disabled).
func (e *Engine) executeSpill(p *plan.Plan, dim int, budget float64, overrun float64) (SpillResult, bool) {
	joinID := e.Model.Query.EPPs[dim]
	sub := p.Subtree(joinID)
	if sub == nil {
		return SpillResult{}, false
	}
	factor := e.errorFactor(p) * overrun
	full := e.Model.Eval(sub, e.Truth) * factor
	if full <= budget {
		return SpillResult{Completed: true, Spent: full, Learned: e.Truth[dim]}, true
	}
	// Budget expiry: a well-behaved subtree charges exactly the budget; an
	// overrunning one (overrun > 1) spends past it before the forced
	// termination lands, making the injected fault ledger-visible.
	return SpillResult{
		Completed: false,
		Spent:     math.Min(full, budget*overrun),
		Learned:   e.monitorBound(sub, dim, budget/factor),
	}, true
}

// monitorBound inverts the (monotone) subtree cost along dimension dim:
// the largest selectivity s <= truth[dim] with Cost(subtree, truth[dim:=s])
// <= budget. This simulates counting the rows the spilled operator produced
// before the budget expired.
func (e *Engine) monitorBound(sub *plan.Plan, dim int, budget float64) float64 {
	probe := e.Truth.Clone()
	eval := func(s float64) float64 {
		probe[dim] = s
		return e.Model.Eval(sub, probe)
	}
	lo, hi := 0.0, e.Truth[dim]
	if eval(lo) > budget {
		// Even the zero-selectivity work exceeds the budget: nothing about
		// the dimension was learnt.
		return 0
	}
	for i := 0; i < 64 && hi-lo > 1e-16; i++ {
		mid := (lo + hi) / 2
		if eval(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Seconds converts cost units to simulated wall-clock seconds under the
// engine's TimeScale; it returns the raw units when no scale is set.
func (e *Engine) Seconds(costUnits float64) float64 {
	if e.TimeScale <= 0 {
		return costUnits
	}
	return costUnits / e.TimeScale
}
