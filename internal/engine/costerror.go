package engine

import (
	"hash/fnv"
	"math"

	"repro/internal/plan"
)

// Cost-model error injection (paper Sec 7): the MSO guarantees assume a
// perfect cost model; if modeling errors are bounded within a δ factor, the
// guarantees carry through inflated by (1+δ)². To validate that claim — and
// to exercise the algorithms' behaviour when executions run slower or
// faster than the optimizer predicted — the engine can apply a per-plan
// multiplicative error to every *execution* cost while the optimizer (and
// hence budgets, contours and plan choices) continues to use the unperturbed
// model.

// CostErrorFn maps a plan to the multiplicative factor its true execution
// cost carries relative to the cost model's prediction.
type CostErrorFn func(p *plan.Plan) float64

// DeterministicCostError returns a CostErrorFn assigning each plan a
// deterministic pseudo-random factor in [1/(1+delta), 1+delta], keyed by the
// plan fingerprint and seed. delta = 0 yields the identity.
func DeterministicCostError(delta float64, seed uint64) CostErrorFn {
	if delta < 0 {
		panic("engine: negative cost-error delta")
	}
	return func(p *plan.Plan) float64 {
		if delta == 0 {
			return 1
		}
		h := fnv.New64a()
		var b [8]byte
		for i := range b {
			b[i] = byte(seed >> (8 * uint(i)))
		}
		h.Write(b[:])
		h.Write([]byte(p.Fingerprint()))
		u := float64(h.Sum64()%1_000_003) / 1_000_003 // [0,1)
		// Log-uniform over [1/(1+δ), 1+δ]: symmetric optimism/pessimism.
		lo, hi := math.Log(1/(1+delta)), math.Log(1+delta)
		return math.Exp(lo + u*(hi-lo))
	}
}

// execCost returns the plan's true execution cost at the engine's hidden
// location, including any injected cost-model error.
func (e *Engine) execCost(p *plan.Plan) float64 {
	c := e.Model.Eval(p, e.Truth)
	if e.CostError != nil {
		c *= e.CostError(p)
	}
	return c
}

// errorFactor returns the injected factor for the plan (1 when disabled).
func (e *Engine) errorFactor(p *plan.Plan) float64 {
	if e.CostError == nil {
		return 1
	}
	return e.CostError(p)
}
