package engine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

func TestDeterministicCostErrorRange(t *testing.T) {
	m := testModel(t)
	o := optimizer.MustNew(m)
	fn := DeterministicCostError(0.3, 7)
	seen := map[float64]bool{}
	for _, x := range []float64{1e-6, 1e-4, 1e-2, 1} {
		p, _ := o.Optimize(cost.Location{x, x})
		f := fn(p)
		if f < 1/1.3-1e-9 || f > 1.3+1e-9 {
			t.Errorf("factor %g outside [1/1.3, 1.3]", f)
		}
		seen[f] = true
		// Deterministic per plan.
		if fn(p) != f {
			t.Error("factor not deterministic")
		}
	}
	if len(seen) < 2 {
		t.Error("all plans share one factor; expected plan-dependent error")
	}
}

func TestDeterministicCostErrorZeroDelta(t *testing.T) {
	m := testModel(t)
	o := optimizer.MustNew(m)
	p, _ := o.Optimize(cost.Location{1e-4, 1e-4})
	if f := DeterministicCostError(0, 1)(p); f != 1 {
		t.Errorf("delta=0 factor = %g, want 1", f)
	}
}

func TestDeterministicCostErrorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delta should panic")
		}
	}()
	DeterministicCostError(-0.1, 1)
}

func TestDeterministicCostErrorQuick(t *testing.T) {
	m := testModel(t)
	o := optimizer.MustNew(m)
	p, _ := o.Optimize(cost.Location{1e-3, 1e-3})
	f := func(d uint8, seed uint64) bool {
		delta := float64(d%50) / 100 // [0, 0.49]
		factor := DeterministicCostError(delta, seed)(p)
		return factor >= 1/(1+delta)-1e-9 && factor <= 1+delta+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecuteWithCostError(t *testing.T) {
	m := testModel(t)
	truth := cost.Location{1e-3, 1e-3}
	e := New(m, truth)
	p, c := optimalPlanAt(t, m, truth)

	// Pessimistic model: every execution is 20% more expensive than
	// predicted. A budget of exactly the predicted cost now expires.
	e.CostError = func(_ *plan.Plan) float64 { return 1.2 }
	res := e.Execute(p, c)
	if res.Completed {
		t.Error("pessimistic execution within predicted budget should expire")
	}
	if res.Spent != c {
		t.Errorf("Spent = %g, want the budget %g", res.Spent, c)
	}
	res = e.Execute(p, c*1.2*1.0001)
	if !res.Completed || math.Abs(res.Spent-c*1.2)/c > 1e-9 {
		t.Errorf("inflated budget should complete at 1.2×cost; got %+v", res)
	}

	// Optimistic model: execution 20% cheaper than predicted.
	e.CostError = func(_ *plan.Plan) float64 { return 0.8 }
	res = e.Execute(p, c)
	if !res.Completed || math.Abs(res.Spent-c*0.8)/c > 1e-9 {
		t.Errorf("optimistic execution should complete at 0.8×cost; got %+v", res)
	}
}

func TestSpillWithCostError(t *testing.T) {
	m := testModel(t)
	truth := cost.Location{1e-1, 1e-1}
	clean := New(m, truth)
	p, _ := optimalPlanAt(t, m, truth)

	// Choose a budget where the clean spill does not complete.
	full, ok := clean.ExecuteSpill(p, 0, math.Inf(1))
	if !ok || !full.Completed {
		t.Fatal("setup failed")
	}
	budget := full.Spent / 2
	cleanRes, _ := clean.ExecuteSpill(p, 0, budget)
	if cleanRes.Completed {
		t.Fatal("setup: clean spill should not complete at half budget")
	}

	// Under a pessimistic model the same budget buys less learning.
	pess := New(m, truth)
	pess.CostError = func(_ *plan.Plan) float64 { return 1.5 }
	pessRes, _ := pess.ExecuteSpill(p, 0, budget)
	if pessRes.Completed {
		t.Fatal("pessimistic spill should not complete")
	}
	if pessRes.Learned >= cleanRes.Learned {
		t.Errorf("pessimistic bound %g should trail clean bound %g", pessRes.Learned, cleanRes.Learned)
	}

	// Under an optimistic model it buys more (or completes).
	opti := New(m, truth)
	opti.CostError = func(_ *plan.Plan) float64 { return 0.5 }
	optiRes, _ := opti.ExecuteSpill(p, 0, budget)
	if !optiRes.Completed && optiRes.Learned <= cleanRes.Learned {
		t.Errorf("optimistic bound %g should lead clean bound %g", optiRes.Learned, cleanRes.Learned)
	}
}
