package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/plan"
)

// scriptedExec fails (or panics) for the first N calls, then succeeds.
type scriptedExec struct {
	failures  int
	panics    int
	calls     int
	lastErr   error
	succeedAs Result
}

func (s *scriptedExec) step() error {
	s.calls++
	if s.panics > 0 {
		s.panics--
		panic("scripted operator bug")
	}
	if s.failures > 0 {
		s.failures--
		if s.lastErr == nil {
			s.lastErr = errors.New("scripted failure")
		}
		return s.lastErr
	}
	return nil
}

func (s *scriptedExec) Execute(p *plan.Plan, budget float64) Result { return s.succeedAs }
func (s *scriptedExec) ExecuteSpill(p *plan.Plan, dim int, budget float64) (SpillResult, bool) {
	return SpillResult{}, true
}
func (s *scriptedExec) ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (Result, error) {
	if err := s.step(); err != nil {
		return Result{}, err
	}
	return s.succeedAs, nil
}
func (s *scriptedExec) ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (SpillResult, bool, error) {
	if err := s.step(); err != nil {
		return SpillResult{}, false, err
	}
	return SpillResult{Completed: true}, true, nil
}

// noSleep makes backoff instantaneous in tests.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestResilientRetriesTransientFailure(t *testing.T) {
	ex := &scriptedExec{failures: 2, succeedAs: Result{Completed: true, Spent: 7}}
	r := &Resilient{Exec: ex, Policy: Policy{MaxRetries: 2, BaseBackoff: time.Nanosecond}, Sleep: noSleep}
	res, err := r.ExecuteCtx(context.Background(), nil, 100)
	if err != nil {
		t.Fatalf("retries should absorb 2 failures: %v", err)
	}
	if !res.Completed || res.Spent != 7 {
		t.Fatalf("result = %+v", res)
	}
	if r.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", r.Retries())
	}
	if len(r.Events()) != 2 {
		t.Fatalf("events = %v", r.Events())
	}
}

func TestResilientGivesUpAfterBudget(t *testing.T) {
	ex := &scriptedExec{failures: 10}
	r := &Resilient{Exec: ex, Policy: Policy{MaxRetries: 2, BaseBackoff: time.Nanosecond}, Sleep: noSleep}
	_, err := r.ExecuteCtx(context.Background(), nil, 100)
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("want StepError, got %v", err)
	}
	if se.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", se.Attempts)
	}
	if ex.calls != 3 {
		t.Fatalf("substrate calls = %d", ex.calls)
	}
}

func TestResilientRecoversPanic(t *testing.T) {
	ex := &scriptedExec{panics: 1, succeedAs: Result{Completed: true}}
	r := &Resilient{Exec: ex, Policy: Policy{MaxRetries: 1, BaseBackoff: time.Nanosecond}, Sleep: noSleep}
	res, err := r.ExecuteCtx(context.Background(), nil, 100)
	if err != nil {
		t.Fatalf("panic should be recovered and retried: %v", err)
	}
	if !res.Completed {
		t.Fatalf("result = %+v", res)
	}
}

func TestResilientPersistentPanicBecomesError(t *testing.T) {
	ex := &scriptedExec{panics: 5}
	r := &Resilient{Exec: ex, Policy: Policy{MaxRetries: 1, BaseBackoff: time.Nanosecond}, Sleep: noSleep}
	_, err := r.ExecuteCtx(context.Background(), nil, 100)
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("want StepError, got %v", err)
	}
}

func TestResilientDoesNotRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &scriptedExec{succeedAs: Result{Completed: true}}
	r := &Resilient{Exec: AsContextExecutor(plainOnly{ex}), Policy: DefaultPolicy(), Sleep: noSleep}
	_, err := r.ExecuteCtx(ctx, nil, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("cancellation must not be retried (retries = %d)", r.Retries())
	}
}

func TestResilientSpillRetry(t *testing.T) {
	ex := &scriptedExec{failures: 1}
	r := &Resilient{Exec: ex, Policy: Policy{MaxRetries: 1, BaseBackoff: time.Nanosecond}, Sleep: noSleep}
	res, ok, err := r.ExecuteSpillCtx(context.Background(), nil, 0, 100)
	if err != nil || !ok || !res.Completed {
		t.Fatalf("spill retry: res=%+v ok=%v err=%v", res, ok, err)
	}
}

func TestPolicyBackoffDoublesAndCaps(t *testing.T) {
	p := Policy{MaxRetries: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35}
	for i, w := range want {
		if d := p.backoff(i + 1); d != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
}

// plainOnly strips the context methods so AsContextExecutor takes the
// wrapping path (its pre-execution ctx check is what this test exercises).
type plainOnly struct{ e Executor }

func (p plainOnly) Execute(pl *plan.Plan, budget float64) Result { return p.e.Execute(pl, budget) }
func (p plainOnly) ExecuteSpill(pl *plan.Plan, dim int, budget float64) (SpillResult, bool) {
	return p.e.ExecuteSpill(pl, dim, budget)
}
