// Package cost implements the plan cost model the whole stack shares.
// It provides cardinality propagation with injectable selectivities for the
// error-prone predicates (the ESS coordinates), per-operator cost functions
// that are monotone nondecreasing in every input cardinality — which makes
// Plan Cost Monotonicity (paper Eq. 5) hold by construction — and two
// platform profiles with different operator constants, used to demonstrate
// the platform dependence of PlanBouquet's behavioral bound.
package cost

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/query"
)

// Location is a point of the error-prone selectivity space: Location[d] is
// the selectivity in (0,1] of the query's d-th error-prone predicate.
type Location []float64

// Clone returns an independent copy of the location.
func (l Location) Clone() Location {
	out := make(Location, len(l))
	copy(out, l)
	return out
}

// Dominates reports whether l dominates m: l[d] >= m[d] in every dimension
// (paper Sec 2.1's ⪰ relation). Both locations must have equal length.
func (l Location) Dominates(m Location) bool {
	for d := range l {
		if l[d] < m[d] {
			return false
		}
	}
	return true
}

// StrictlyDominates reports whether l > m in every dimension (paper's ≻).
func (l Location) StrictlyDominates(m Location) bool {
	for d := range l {
		if l[d] <= m[d] {
			return false
		}
	}
	return true
}

// String renders the location compactly in scientific notation.
func (l Location) String() string {
	s := "("
	for d, v := range l {
		if d > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3g", v)
	}
	return s + ")"
}

// Params holds the operator cost constants of one database platform.
// All costs are in abstract optimizer units (a PostgreSQL-like scale where
// one sequential page fetch costs SeqPageCost).
type Params struct {
	// Name labels the profile.
	Name string
	// PageBytes is the disk page size.
	PageBytes int
	// SeqPageCost is the cost of one sequential page fetch.
	SeqPageCost float64
	// RandPageCost is the cost of one random page fetch (index descent).
	RandPageCost float64
	// CPUTupleCost is the cost of emitting one tuple.
	CPUTupleCost float64
	// CPUOperCost is the cost of one operator-internal step per tuple.
	CPUOperCost float64
	// HashQualCost is the per-tuple cost of hashing/probing.
	HashQualCost float64
	// SortCmpCost is the per-comparison cost of sorting (n·log2 n model).
	SortCmpCost float64
	// RowsPerPage approximates intermediate-result packing for spill I/O.
	RowsPerPage float64
	// WorkMemRows is the number of rows fitting in memory for hash/sort;
	// larger inputs pay spill I/O.
	WorkMemRows float64
	// MaterializeCost is the per-tuple cost of materializing a nested-loop
	// inner.
	MaterializeCost float64
	// NLPairCost is the per-(outer×inner) pair cost of a materialized
	// nested-loop join.
	NLPairCost float64
	// IndexProbeCost is the per-outer-tuple cost of one index descent.
	IndexProbeCost float64
}

// PostgresLike returns cost constants in the spirit of PostgreSQL's
// defaults (seq_page_cost=1, cpu_tuple_cost=0.01, ...).
func PostgresLike() Params {
	return Params{
		Name:            "postgres-like",
		PageBytes:       8192,
		SeqPageCost:     1.0,
		RandPageCost:    4.0,
		CPUTupleCost:    0.01,
		CPUOperCost:     0.0025,
		HashQualCost:    0.0035,
		SortCmpCost:     0.002,
		RowsPerPage:     100,
		WorkMemRows:     1 << 20,
		MaterializeCost: 0.0025,
		NLPairCost:      0.0025,
		IndexProbeCost:  4.5,
	}
}

// CommercialLike returns a second profile with different operator trade-off
// points (cheaper sorts and index probes, pricier hashing), standing in for
// the commercial engine of paper Sec 1.1.3.
func CommercialLike() Params {
	return Params{
		Name:            "commercial-like",
		PageBytes:       16384,
		SeqPageCost:     1.0,
		RandPageCost:    2.5,
		CPUTupleCost:    0.012,
		CPUOperCost:     0.002,
		HashQualCost:    0.006,
		SortCmpCost:     0.001,
		RowsPerPage:     180,
		WorkMemRows:     1 << 21,
		MaterializeCost: 0.002,
		NLPairCost:      0.003,
		IndexProbeCost:  2.0,
	}
}

// Model evaluates plan cardinalities and costs for one query under one
// parameter profile. It precomputes filtered base cardinalities and the
// statistics-derived default selectivity of every join predicate; the
// selectivities of the query's epps are injected per evaluation through a
// Location.
type Model struct {
	// Query is the evaluated query.
	Query *query.Query
	// Params is the platform profile.
	Params Params

	baseRows []float64 // filtered row count per relation
	joinSel  []float64 // statistics-derived selectivity per join predicate
	eppDim   []int     // join ID -> ESS dimension, or -1
	innerNDV []float64 // join ID -> NDV of the inner (right) column

	// groupEstimate is the estimated group count for the query's GROUP BY
	// (product of the grouping columns' NDVs), 0 when the query does not
	// aggregate.
	groupEstimate float64
}

// NewModel builds a cost model for the query under the given parameters.
// The query must have been validated.
func NewModel(q *query.Query, p Params) (*Model, error) {
	m := &Model{Query: q, Params: p}
	m.baseRows = make([]float64, len(q.Relations))
	for i, r := range q.Relations {
		rows := float64(r.Table.Rows)
		for _, f := range q.FiltersOn(i) {
			sel, err := FilterSelectivity(r.Table, f)
			if err != nil {
				return nil, err
			}
			rows *= sel
		}
		if rows < 1 {
			rows = 1
		}
		m.baseRows[i] = rows
	}
	m.joinSel = make([]float64, len(q.Joins))
	m.eppDim = make([]int, len(q.Joins))
	m.innerNDV = make([]float64, len(q.Joins))
	for i, j := range q.Joins {
		lt := q.Relations[j.LeftRel].Table
		rt := q.Relations[j.RightRel].Table
		lc, ok := lt.Column(j.Left.Column)
		if !ok {
			return nil, fmt.Errorf("cost: missing column %v", j.Left)
		}
		rc, ok := rt.Column(j.Right.Column)
		if !ok {
			return nil, fmt.Errorf("cost: missing column %v", j.Right)
		}
		m.joinSel[i] = 1.0 / math.Max(float64(lc.Distinct), float64(rc.Distinct))
		m.innerNDV[i] = float64(rc.Distinct)
		m.eppDim[i] = -1
	}
	for d, id := range q.EPPs {
		m.eppDim[id] = d
	}
	if len(q.GroupBy) > 0 {
		m.groupEstimate = 1
		for _, gb := range q.GroupBy {
			rel, _ := q.RelationIndex(gb.Alias)
			if col, ok := q.Relations[rel].Table.Column(gb.Column); ok {
				m.groupEstimate *= float64(col.Distinct)
			}
		}
	}
	return m, nil
}

// MustNewModel is NewModel that panics on error.
func MustNewModel(q *query.Query, p Params) *Model {
	m, err := NewModel(q, p)
	if err != nil {
		panic(err)
	}
	return m
}

// BaseRows returns the filtered cardinality of relation rel.
func (m *Model) BaseRows(rel int) float64 { return m.baseRows[rel] }

// DefaultSelectivity returns the statistics-derived selectivity of the join
// predicate — what a traditional optimizer would estimate (paper's q_e).
func (m *Model) DefaultSelectivity(joinID int) float64 { return m.joinSel[joinID] }

// Selectivity returns the selectivity of the join predicate at the given
// ESS location: the injected coordinate for an epp, the statistics default
// otherwise.
func (m *Model) Selectivity(joinID int, at Location) float64 {
	if d := m.eppDim[joinID]; d >= 0 {
		return at[d]
	}
	return m.joinSel[joinID]
}

// EstimateLocation returns the traditional optimizer's estimate q_e as an
// ESS location: the statistics-derived selectivity of each epp.
func (m *Model) EstimateLocation() Location {
	loc := make(Location, len(m.Query.EPPs))
	for d, id := range m.Query.EPPs {
		loc[d] = m.joinSel[id]
	}
	return loc
}

// FilterSelectivity estimates a filter predicate's selectivity from table
// statistics using textbook System-R formulas.
func FilterSelectivity(t *catalog.Table, f query.Filter) (float64, error) {
	col, ok := t.Column(f.Col.Column)
	if !ok {
		return 0, fmt.Errorf("cost: table %q has no column %q", t.Name, f.Col.Column)
	}
	ndv := float64(col.Distinct)
	frac := func(v float64) float64 { // fraction of domain below v
		if col.Max <= col.Min {
			return 0.5
		}
		x := (v - col.Min) / (col.Max - col.Min)
		return clamp01(x)
	}
	var sel float64
	switch f.Op {
	case query.OpEq:
		sel = 1 / ndv
	case query.OpNe:
		sel = 1 - 1/ndv
	case query.OpLt, query.OpLe:
		sel = frac(f.Args[0])
	case query.OpGt, query.OpGe:
		sel = 1 - frac(f.Args[0])
	case query.OpBetween:
		if len(f.Args) != 2 {
			return 0, fmt.Errorf("cost: BETWEEN needs 2 args, got %d", len(f.Args))
		}
		sel = clamp01(frac(f.Args[1]) - frac(f.Args[0]))
	case query.OpIn:
		sel = clamp01(float64(len(f.Args)) / ndv)
	default:
		return 0, fmt.Errorf("cost: unsupported filter op %v", f.Op)
	}
	const selFloor = 1e-9
	if sel < selFloor {
		sel = selFloor
	}
	sel *= 1 - col.NullFrac
	return clamp01At(sel, selFloor), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clamp01At(x, lo float64) float64 {
	if x < lo {
		return lo
	}
	if x > 1 {
		return 1
	}
	return x
}
