package cost

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlmini"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "p_retailprice", Distinct: 1000, Min: 0, Max: 2000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	return c
}

// exampleQuery mirrors the paper's EQ (Fig. 1) with both joins error-prone.
func exampleModel(t *testing.T) *Model {
	t.Helper()
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND p.p_retailprice < 1000`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(q, PostgresLike())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// leftDeepHJ builds HJ[j1]( HJ[j0](Scan p, Scan l), Scan o ).
func leftDeepHJ() *plan.Plan {
	hj0 := &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
		Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 1},
	}
	hj1 := &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{1},
		Left:  hj0,
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 2},
	}
	return plan.New(hj1)
}

func TestBaseRowsApplyFilters(t *testing.T) {
	m := exampleModel(t)
	// part has 20000 rows and a < 1000 filter over [0,2000]: sel 0.5.
	if got := m.BaseRows(0); math.Abs(got-10000) > 1 {
		t.Errorf("BaseRows(part) = %g, want 10000", got)
	}
	if got := m.BaseRows(1); got != 600000 {
		t.Errorf("BaseRows(lineitem) = %g, want 600000", got)
	}
}

func TestSelectivityInjection(t *testing.T) {
	m := exampleModel(t)
	at := Location{0.25, 0.5}
	if got := m.Selectivity(0, at); got != 0.25 {
		t.Errorf("Selectivity(epp0) = %g, want injected 0.25", got)
	}
	if got := m.Selectivity(1, at); got != 0.5 {
		t.Errorf("Selectivity(epp1) = %g, want injected 0.5", got)
	}
}

func TestDefaultSelectivityFromNDV(t *testing.T) {
	m := exampleModel(t)
	if got := m.DefaultSelectivity(0); math.Abs(got-1.0/20000) > 1e-12 {
		t.Errorf("DefaultSelectivity(j0) = %g, want 1/20000", got)
	}
	est := m.EstimateLocation()
	if len(est) != 2 || est[0] != m.DefaultSelectivity(0) || est[1] != m.DefaultSelectivity(1) {
		t.Errorf("EstimateLocation = %v", est)
	}
}

func TestEvalCardinalityPropagation(t *testing.T) {
	m := exampleModel(t)
	p := leftDeepHJ()
	at := Location{1e-4, 1e-5}
	tree := m.EvalTree(p, at)
	hj0 := p.Root.Left
	// out(hj0) = 10000 * 600000 * 1e-4 = 600000.
	if got := tree[hj0].Rows; math.Abs(got-600000) > 1 {
		t.Errorf("hj0 rows = %g, want 600000", got)
	}
	// out(root) = 600000 * 150000 * 1e-5 = 900000.
	if got := tree[p.Root].Rows; math.Abs(got-900000) > 1 {
		t.Errorf("root rows = %g, want 900000", got)
	}
	if tree[p.Root].Total <= tree[hj0].Total {
		t.Error("root total should exceed child total")
	}
	if got := m.Eval(p, at); got != tree[p.Root].Total {
		t.Errorf("Eval = %g, EvalTree root total = %g", got, tree[p.Root].Total)
	}
	if got := m.EvalRows(p, at); got != tree[p.Root].Rows {
		t.Errorf("EvalRows = %g, want %g", got, tree[p.Root].Rows)
	}
}

// TestPCM is the property test for Plan Cost Monotonicity (paper Eq. 5):
// for any plan shape and any pair of locations with q_b ≻ q_c, the plan
// must not be cheaper at q_b.
func TestPCM(t *testing.T) {
	m := exampleModel(t)
	plans := []*plan.Plan{leftDeepHJ(), rightDeepMix(), inlPlan()}
	rng := rand.New(rand.NewSource(42))
	f := func(a0, a1, b0, b1 float64) bool {
		lo := Location{math.Min(a0, b0), math.Min(a1, b1)}
		hi := Location{math.Max(a0, b0), math.Max(a1, b1)}
		for _, p := range plans {
			if m.Eval(p, hi) < m.Eval(p, lo)-1e-9 {
				t.Logf("PCM violated: plan %s, lo=%v hi=%v", p.Fingerprint(), lo, hi)
				return false
			}
		}
		return true
	}
	for i := 0; i < 500; i++ {
		gen := func() float64 { return math.Pow(10, -6*rng.Float64()) }
		if !f(gen(), gen(), gen(), gen()) {
			t.Fatal("PCM property failed")
		}
	}
}

// TestPCMQuick re-checks the monotonicity property with testing/quick's own
// generator over the unit square.
func TestPCMQuick(t *testing.T) {
	m := exampleModel(t)
	p := leftDeepHJ()
	prop := func(x, y, dx, dy uint16) bool {
		lo := Location{
			math.Max(1e-6, float64(x)/65535),
			math.Max(1e-6, float64(y)/65535),
		}
		hi := Location{
			math.Min(1, lo[0]+float64(dx)/65535),
			math.Min(1, lo[1]+float64(dy)/65535),
		}
		return m.Eval(p, hi) >= m.Eval(p, lo)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// rightDeepMix builds MJ[j1]( Sort(Scan o), Sort(HJ[j0](Scan l, Scan p)) ).
func rightDeepMix() *plan.Plan {
	hj0 := &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
		Left:  &plan.Node{Kind: plan.SeqScan, Rel: 1},
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 0},
	}
	mj := &plan.Node{Kind: plan.MergeJoin, Rel: -1, JoinIDs: []int{1},
		Left:  &plan.Node{Kind: plan.Sort, Rel: -1, Left: &plan.Node{Kind: plan.SeqScan, Rel: 2}},
		Right: &plan.Node{Kind: plan.Sort, Rel: -1, Left: hj0},
	}
	return plan.New(mj)
}

// inlPlan builds INL[j1]( HJ[j0](Scan p, Scan l), Scan o ).
func inlPlan() *plan.Plan {
	hj := &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
		Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 1},
	}
	inl := &plan.Node{Kind: plan.IndexNestLoop, Rel: -1, JoinIDs: []int{1},
		Left:  hj,
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 2},
	}
	return plan.New(inl)
}

func TestIndexNestLoopTradeoff(t *testing.T) {
	m := exampleModel(t)
	inl := inlPlan()
	hj := leftDeepHJ()
	// At tiny selectivities the INL plan avoids scanning orders and wins;
	// at sel=1 it pays a random fetch per matched row and loses badly.
	lo := Location{1e-8, 1e-8}
	hi := Location{1e-2, 1e-1}
	if m.Eval(inl, lo) >= m.Eval(hj, lo) {
		t.Errorf("at %v INL (%.0f) should beat HJ (%.0f)", lo, m.Eval(inl, lo), m.Eval(hj, lo))
	}
	if m.Eval(inl, hi) <= m.Eval(hj, hi) {
		t.Errorf("at %v HJ (%.0f) should beat INL (%.0f)", hi, m.Eval(hj, hi), m.Eval(inl, hi))
	}
}

func TestLocationOps(t *testing.T) {
	a := Location{0.5, 0.5}
	b := Location{0.5, 0.4}
	c := Location{0.6, 0.6}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Error("Dominates misbehaves")
	}
	if !c.StrictlyDominates(b) || a.StrictlyDominates(b) {
		t.Error("StrictlyDominates misbehaves")
	}
	cl := a.Clone()
	cl[0] = 0.9
	if a[0] != 0.5 {
		t.Error("Clone aliases the original")
	}
	if s := a.String(); !strings.Contains(s, "0.5") {
		t.Errorf("String = %q", s)
	}
}

func TestFilterSelectivity(t *testing.T) {
	tab := &catalog.Table{Name: "t", Rows: 100, RowBytes: 8, Columns: []catalog.Column{
		{Name: "c", Distinct: 10, Min: 0, Max: 100},
	}}
	cat := catalog.New("x")
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op   query.FilterOp
		args []float64
		want float64
	}{
		{query.OpEq, []float64{5}, 0.1},
		{query.OpNe, []float64{5}, 0.9},
		{query.OpLt, []float64{25}, 0.25},
		{query.OpGe, []float64{25}, 0.75},
		{query.OpBetween, []float64{10, 60}, 0.5},
		{query.OpIn, []float64{1, 2, 3}, 0.3},
	}
	for _, tc := range cases {
		f := query.Filter{Col: query.ColumnRef{Alias: "t", Column: "c"}, Op: tc.op, Args: tc.args}
		got, err := FilterSelectivity(tab, f)
		if err != nil {
			t.Errorf("%v: %v", tc.op, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%v%v sel = %g, want %g", tc.op, tc.args, got, tc.want)
		}
	}
	// Out-of-range BETWEEN clamps to the floor, not negative.
	f := query.Filter{Col: query.ColumnRef{Alias: "t", Column: "c"}, Op: query.OpBetween, Args: []float64{200, 300}}
	got, err := FilterSelectivity(tab, f)
	if err != nil || got <= 0 || got > 1e-6 {
		t.Errorf("out-of-range BETWEEN sel = %g, %v", got, err)
	}
}

func TestProfilesDiffer(t *testing.T) {
	pg, com := PostgresLike(), CommercialLike()
	if pg.Name == com.Name {
		t.Error("profiles share a name")
	}
	if pg.IndexProbeCost == com.IndexProbeCost && pg.SortCmpCost == com.SortCmpCost {
		t.Error("profiles should differ in operator constants")
	}
}

func TestJoinRowsFloor(t *testing.T) {
	m := exampleModel(t)
	p := leftDeepHJ()
	// Absurdly small selectivities must not drive cardinalities below 1.
	rows := m.EvalRows(p, Location{1e-30, 1e-30})
	if rows < 1 {
		t.Errorf("rows = %g, want >= 1", rows)
	}
}

func TestSpillIOKicksIn(t *testing.T) {
	m := exampleModel(t)
	small := m.spillIO(100)
	big := m.spillIO(m.Params.WorkMemRows * 4)
	if small != 0 {
		t.Errorf("spillIO(small) = %g, want 0", small)
	}
	if big <= 0 {
		t.Errorf("spillIO(big) = %g, want > 0", big)
	}
}

func TestAggNC(t *testing.T) {
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l
		WHERE p.p_partkey = l.l_partkey
		GROUP BY p.p_retailprice`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey"); err != nil {
		t.Fatal(err)
	}
	m := MustNewModel(q, PostgresLike())
	in := NodeCost{Rows: 1e6, Self: 100, Total: 1000}
	out := m.AggNC(in)
	// Group estimate is p_retailprice's NDV (1000), capped below input.
	if out.Rows != 1000 {
		t.Errorf("agg rows = %g, want 1000", out.Rows)
	}
	if out.Total <= in.Total || out.Self <= 0 {
		t.Errorf("agg cost not additive: %+v", out)
	}
	// Tiny input: output capped by input rows, floored at 1.
	small := m.AggNC(NodeCost{Rows: 3})
	if small.Rows != 3 {
		t.Errorf("small agg rows = %g", small.Rows)
	}
	zero := m.AggNC(NodeCost{Rows: 0})
	if zero.Rows != 1 {
		t.Errorf("zero agg rows = %g, want floor 1", zero.Rows)
	}
	// Spilling input pays extra I/O.
	big := m.AggNC(NodeCost{Rows: m.Params.WorkMemRows * 2})
	noSpill := m.AggNC(NodeCost{Rows: m.Params.WorkMemRows})
	if big.Self <= 2*noSpill.Self {
		t.Errorf("agg spill I/O missing: %g vs %g", big.Self, noSpill.Self)
	}
	// Aggregate plans evaluate through the tree path too.
	o := mustOptimizer(t, m)
	p, c := o.Optimize(Location{1e-4})
	if ev := m.Eval(p, Location{1e-4}); math.Abs(ev-c)/c > 1e-9 {
		t.Errorf("agg plan eval mismatch: %g vs %g", ev, c)
	}
}

func mustOptimizer(t *testing.T, m *Model) interface {
	Optimize(Location) (*plan.Plan, float64)
} {
	t.Helper()
	return optimizerShim{m}
}

// optimizerShim avoids an import cycle in tests: it mirrors the DP
// optimizer's contract using exhaustive two-relation enumeration (the test
// query joins exactly two relations).
type optimizerShim struct{ m *Model }

func (s optimizerShim) Optimize(at Location) (*plan.Plan, float64) {
	best := (*plan.Plan)(nil)
	bestC := math.Inf(1)
	for _, root := range []*plan.Node{
		{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
			Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
			Right: &plan.Node{Kind: plan.SeqScan, Rel: 1}},
		{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
			Left:  &plan.Node{Kind: plan.SeqScan, Rel: 1},
			Right: &plan.Node{Kind: plan.SeqScan, Rel: 0}},
	} {
		wrapped := plan.New(&plan.Node{Kind: plan.Aggregate, Rel: -1, Left: root})
		if c := s.m.Eval(wrapped, at); c < bestC {
			best, bestC = wrapped, c
		}
	}
	return best, bestC
}

func TestSelectivityDefaultPath(t *testing.T) {
	m := exampleModel(t)
	// Join 0 and 1 are epps; a synthetic non-epp id hits the default path.
	q := m.Query
	if len(q.Joins) < 2 {
		t.Skip("needs two joins")
	}
	// Temporarily unmark epp 1.
	saved := q.EPPs
	q.EPPs = saved[:1]
	m2 := MustNewModel(q, PostgresLike())
	q.EPPs = saved
	got := m2.Selectivity(1, Location{0.5})
	if got != m2.DefaultSelectivity(1) {
		t.Errorf("non-epp selectivity %g != default %g", got, m2.DefaultSelectivity(1))
	}
}

func TestNewModelErrors(t *testing.T) {
	m := exampleModel(t)
	q := *m.Query
	q.Joins = append([]query.Join(nil), m.Query.Joins...)
	q.Joins[0].Left.Column = "gone"
	if _, err := NewModel(&q, PostgresLike()); err == nil {
		t.Error("missing join column should error")
	}
}

func TestClampHelpers(t *testing.T) {
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.3) != 0.3 {
		t.Error("clamp01 misbehaves")
	}
	if clamp01At(0, 1e-9) != 1e-9 || clamp01At(5, 1e-9) != 1 {
		t.Error("clamp01At misbehaves")
	}
}
