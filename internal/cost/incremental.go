package cost

import (
	"math"

	"repro/internal/plan"
)

// The incremental API computes NodeCosts from child NodeCosts without
// walking subtrees; it is the single source of truth for operator costing —
// the tree evaluator in eval.go is built on it — and lets the dynamic
// programming optimizer cost candidate joins in O(1) per candidate.

// ScanNC returns the NodeCost of scanning relation rel.
func (m *Model) ScanNC(rel int) NodeCost {
	p := &m.Params
	rows := m.baseRows[rel]
	tab := m.Query.Relations[rel].Table
	self := float64(tab.Pages(p.PageBytes))*p.SeqPageCost +
		float64(tab.Rows)*p.CPUOperCost +
		rows*p.CPUTupleCost
	return NodeCost{Rows: rows, Self: self, Total: self}
}

// SortNC returns the NodeCost of sorting the given input.
func (m *Model) SortNC(in NodeCost) NodeCost {
	p := &m.Params
	nrows := math.Max(in.Rows, 2)
	self := in.Rows*math.Log2(nrows)*p.SortCmpCost + m.spillIO(in.Rows)
	return NodeCost{Rows: in.Rows, Self: self, Total: in.Total + self}
}

// AggNC returns the NodeCost of hash-aggregating the input by the query's
// GROUP BY columns: output cardinality is the group-count estimate capped
// by the input cardinality; cost is one hash probe per input row plus
// emission of the groups.
func (m *Model) AggNC(in NodeCost) NodeCost {
	p := &m.Params
	out := m.groupEstimate
	if out > in.Rows {
		out = in.Rows
	}
	if out < 1 {
		out = 1
	}
	self := in.Rows*(p.CPUOperCost+p.HashQualCost) + out*p.CPUTupleCost
	if in.Rows > p.WorkMemRows {
		self += m.spillIO(in.Rows)
	}
	return NodeCost{Rows: out, Self: self, Total: in.Total + self}
}

// JoinRowsFor returns the output cardinality of joining inputs with the
// given cardinalities under the listed predicates at the location.
func (m *Model) JoinRowsFor(joinIDs []int, lrows, rrows float64, at Location) float64 {
	out := lrows * rrows
	for _, id := range joinIDs {
		out *= m.Selectivity(id, at)
	}
	if out < 1 {
		out = 1
	}
	return out
}

// JoinNC returns the NodeCost of a join of the given physical kind applying
// joinIDs over children l and r. For IndexNestLoop, innerRel names the
// probed base relation: its scan cost is not paid (r should be its ScanNC;
// only its cardinality is used). For other kinds innerRel is ignored.
func (m *Model) JoinNC(kind plan.OpKind, joinIDs []int, l, r NodeCost, innerRel int, at Location) NodeCost {
	p := &m.Params
	switch kind {
	case plan.HashJoin:
		out := m.JoinRowsFor(joinIDs, l.Rows, r.Rows, at)
		self := r.Rows*(p.CPUOperCost+p.HashQualCost) +
			l.Rows*p.HashQualCost +
			out*p.CPUTupleCost
		if r.Rows > p.WorkMemRows {
			self += m.spillIO(r.Rows) + m.spillIO(l.Rows)
		}
		return NodeCost{Rows: out, Self: self, Total: l.Total + r.Total + self}
	case plan.MergeJoin:
		out := m.JoinRowsFor(joinIDs, l.Rows, r.Rows, at)
		self := (l.Rows+r.Rows)*p.CPUOperCost + out*p.CPUTupleCost
		return NodeCost{Rows: out, Self: self, Total: l.Total + r.Total + self}
	case plan.NestLoop:
		out := m.JoinRowsFor(joinIDs, l.Rows, r.Rows, at)
		self := r.Rows*p.MaterializeCost +
			l.Rows*r.Rows*p.NLPairCost +
			out*p.CPUTupleCost
		return NodeCost{Rows: out, Self: self, Total: l.Total + r.Total + self}
	case plan.IndexNestLoop:
		innerRows := m.baseRows[innerRel]
		out := m.JoinRowsFor(joinIDs, l.Rows, innerRows, at)
		self := l.Rows*p.IndexProbeCost +
			out*(p.RandPageCost+p.CPUTupleCost)
		return NodeCost{Rows: out, Self: self, Total: l.Total + self}
	}
	return NodeCost{}
}
