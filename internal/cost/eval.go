package cost

import (
	"repro/internal/plan"
)

// NodeCost is the evaluation result for one plan node at one location.
type NodeCost struct {
	// Rows is the node's output cardinality.
	Rows float64
	// Self is the node's own cost excluding children.
	Self float64
	// Total is the cumulative cost of the subtree rooted at the node.
	Total float64
}

// Eval returns the total cost of executing the plan at the given ESS
// location: the paper's Cost(P, q).
func (m *Model) Eval(p *plan.Plan, at Location) float64 {
	nc := m.evalNode(p.Root, at)
	return nc.Total
}

// EvalRows returns the plan's output cardinality at the location.
func (m *Model) EvalRows(p *plan.Plan, at Location) float64 {
	return m.evalNode(p.Root, at).Rows
}

// EvalTree evaluates the plan and returns the per-node breakdown, keyed by
// node pointer; useful for traces and tests.
func (m *Model) EvalTree(p *plan.Plan, at Location) map[*plan.Node]NodeCost {
	out := make(map[*plan.Node]NodeCost)
	var rec func(n *plan.Node) NodeCost
	rec = func(n *plan.Node) NodeCost {
		if n == nil {
			return NodeCost{}
		}
		nc := m.evalNodeWith(n, at, rec)
		out[n] = nc
		return nc
	}
	rec(p.Root)
	return out
}

// evalNode computes the NodeCost of the subtree rooted at n.
func (m *Model) evalNode(n *plan.Node, at Location) NodeCost {
	if n == nil {
		return NodeCost{}
	}
	var rec func(*plan.Node) NodeCost
	rec = func(c *plan.Node) NodeCost { return m.evalNodeWith(c, at, rec) }
	return m.evalNodeWith(n, at, rec)
}

// evalNodeWith computes one node's cost given a recursion function for its
// children (allowing EvalTree to intercept every node). It delegates to the
// incremental per-operator API in incremental.go.
func (m *Model) evalNodeWith(n *plan.Node, at Location, rec func(*plan.Node) NodeCost) NodeCost {
	switch n.Kind {
	case plan.SeqScan:
		return m.ScanNC(n.Rel)
	case plan.Sort:
		return m.SortNC(rec(n.Left))
	case plan.Aggregate:
		return m.AggNC(rec(n.Left))
	case plan.IndexNestLoop:
		// The inner base relation is reached through its index; its scan
		// cost is never paid, so the right child is not recursed into.
		return m.JoinNC(n.Kind, n.JoinIDs, rec(n.Left), NodeCost{}, n.Right.Rel, at)
	case plan.HashJoin, plan.MergeJoin, plan.NestLoop:
		return m.JoinNC(n.Kind, n.JoinIDs, rec(n.Left), rec(n.Right), -1, at)
	}
	return NodeCost{}
}

// spillIO models the two-pass disk cost of a hash or sort input exceeding
// working memory.
func (m *Model) spillIO(rows float64) float64 {
	p := &m.Params
	if rows <= p.WorkMemRows {
		return 0
	}
	return 2 * (rows / p.RowsPerPage) * p.SeqPageCost
}
