package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
	"repro/internal/native"
	"repro/internal/workload"
)

// SummaryRow is the cross-algorithm synthesis (beyond the paper's figures,
// which compare two algorithms at a time): empirical MSO of the native
// optimizer and the three robust algorithms on one query.
type SummaryRow struct {
	// Query is the xD_Qz name.
	Query string
	// D is the epp count.
	D int
	// Native is the native optimizer's MSO over (estimate, actual) pairs
	// (Eq. 2), possibly stride-subsampled on large grids.
	Native float64
	// PB, SB, AB are the robust algorithms' empirical MSOs.
	PB, SB, AB float64
}

// Summary computes the four-way comparison across the suite.
func (l *Lab) Summary() ([]SummaryRow, error) {
	var rows []SummaryRow
	for _, sp := range workload.TPCDSQueries() {
		s, err := l.Space(sp)
		if err != nil {
			return nil, err
		}
		d, err := l.Diagram(sp)
		if err != nil {
			return nil, err
		}
		stride := 1
		if size := s.Grid.Size(); size > 1024 {
			stride = size / 1024
		}
		pb := l.cachedSweep("pb:"+sp.Name, s, l.pbRun(d))
		sb := l.cachedSweep("sb:"+sp.Name, s, l.sbRun(s))
		ab, _ := l.abSweep(sp.Name, s)
		rows = append(rows, SummaryRow{
			Query: sp.Name, D: sp.D,
			Native: native.MSO(s, stride),
			PB:     pb.MSO, SB: sb.MSO, AB: ab.MSO,
		})
	}
	return rows, nil
}

// RenderSummary renders the four-way table.
func RenderSummary(rows []SummaryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Empirical MSO, all strategies (synthesis)\n%-10s %3s %10s %10s %10s %10s\n",
		"query", "D", "native", "PB", "SB", "AB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %3d %10.0f %10.1f %10.1f %10.1f\n",
			r.Query, r.D, r.Native, r.PB, r.SB, r.AB)
	}
	return b.String()
}

// Report bundles every experiment's structured results for machine
// consumption (the -json mode of cmd/experiments).
type Report struct {
	// Config echoes the lab configuration knobs that shape the numbers.
	Config struct {
		Profile      string
		Ratio        float64
		Lambda       float64
		MaxLocations int
		ScaleFactor  float64
	}
	Fig8       []GuaranteeRow
	Fig9       []GuaranteeRow
	Fig10      []EmpiricalRow
	Fig11      []EmpiricalRow
	Fig12      Fig12Result
	Fig13      []EmpiricalRow
	Table2     []Table2Row
	Table3     Table3Result
	Table4     []Table4Row
	Platform   []PlatformRow
	JOB        JOBResult
	Ratio      []RatioRow
	Delta      []DeltaRow
	Correlated []CorrelatedRow
	Estimation []EstimationRow
	Reopt      []ReoptRow
	Lambda     []LambdaRow
	Summary    []SummaryRow
}

// BuildReport runs every experiment and collects the structured results.
func (l *Lab) BuildReport() (*Report, error) {
	var r Report
	r.Config.Profile = l.Config.Params.Name
	r.Config.Ratio = l.Config.Ratio
	r.Config.Lambda = l.Config.Lambda
	r.Config.MaxLocations = l.Config.MaxLocations
	r.Config.ScaleFactor = l.Config.ScaleFactor
	var err error
	if r.Fig8, err = l.Fig8(); err != nil {
		return nil, err
	}
	if r.Fig9, err = l.Fig9(); err != nil {
		return nil, err
	}
	if r.Fig10, err = l.Fig10(); err != nil {
		return nil, err
	}
	if r.Fig11, err = l.Fig11(); err != nil {
		return nil, err
	}
	if r.Fig12, err = l.Fig12(); err != nil {
		return nil, err
	}
	if r.Fig13, err = l.Fig13(); err != nil {
		return nil, err
	}
	if r.Table2, err = l.Table2(); err != nil {
		return nil, err
	}
	if r.Table3, err = l.Table3(); err != nil {
		return nil, err
	}
	if r.Table4, err = l.Table4(); err != nil {
		return nil, err
	}
	if r.Platform, err = l.PlatformShift(); err != nil {
		return nil, err
	}
	if r.JOB, err = l.JOB(); err != nil {
		return nil, err
	}
	if r.Ratio, err = l.RatioAblation(); err != nil {
		return nil, err
	}
	if r.Delta, err = l.DeltaRobustness(); err != nil {
		return nil, err
	}
	if r.Correlated, err = l.CorrelatedWorkload(); err != nil {
		return nil, err
	}
	if r.Estimation, err = l.EstimationStudy(); err != nil {
		return nil, err
	}
	if r.Reopt, err = l.ReoptComparison(); err != nil {
		return nil, err
	}
	if r.Lambda, err = l.LambdaSensitivity(); err != nil {
		return nil, err
	}
	if r.Summary, err = l.Summary(); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteJSON streams the report as indented JSON. Infinities (possible in
// Table 2's max penalty) are replaced by a large sentinel to stay within
// JSON's number grammar.
func (r *Report) WriteJSON(w io.Writer) error {
	clean := *r
	clean.Table2 = append([]Table2Row(nil), r.Table2...)
	for i := range clean.Table2 {
		if clean.Table2[i].MaxLambda > 1e300 {
			clean.Table2[i].MaxLambda = 1e300
		}
	}
	// The histograms' overflow buckets are [x, +Inf).
	clean.Fig12.PB = clampBuckets(r.Fig12.PB)
	clean.Fig12.SB = clampBuckets(r.Fig12.SB)
	clean.Fig12.AB = clampBuckets(r.Fig12.AB)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&clean)
}

func clampBuckets(in []metrics.Bucket) []metrics.Bucket {
	out := append([]metrics.Bucket(nil), in...)
	for i := range out {
		if out[i].Hi > 1e300 {
			out[i].Hi = 1e300
		}
	}
	return out
}
