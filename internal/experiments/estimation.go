package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bouquet"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/estimate"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/reopt"
	"repro/internal/spillbound"
	"repro/internal/workload"
)

// EstimationRow quantifies the paper's premise for one skew setting: the
// true join selectivity of the synthetic data versus the statistics-only
// (AVI) and sampling-based estimates, with multiplicative error factors.
type EstimationRow struct {
	// Skew is the generator's heavy-hitter parameter (0 = uniform).
	Skew float64
	// True is the data's actual join selectivity.
	True float64
	// AVI and Sampled are the two estimates.
	AVI, Sampled float64
	// AVIError and SampledError are max(t/e, e/t).
	AVIError, SampledError float64
}

// EstimationStudy measures estimation error as data skew grows — the
// "selectivity estimates ... often significantly in error" motivation of
// the paper's introduction. The robust algorithms are indifferent to these
// errors (their guarantees hold at every ESS location); the native
// optimizer's sub-optimality is driven by them.
func (l *Lab) EstimationStudy() ([]EstimationRow, error) {
	var rows []EstimationRow
	for _, skew := range []float64{0, 0.5, 1, 2, 4} {
		q, err := skewJoinQuery(skew)
		if err != nil {
			return nil, err
		}
		truth, err := estimate.TrueJoinSelectivity(q, 0, 40000)
		if err != nil {
			return nil, err
		}
		avi, err := estimate.AVIJoinSelectivity(q, 0)
		if err != nil {
			return nil, err
		}
		sampled, err := estimate.SampledJoinSelectivity(q, 0, 5000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EstimationRow{
			Skew: skew, True: truth, AVI: avi, Sampled: sampled,
			AVIError:     estimate.ErrorFactor(truth, avi),
			SampledError: estimate.ErrorFactor(truth, sampled),
		})
	}
	return rows, nil
}

// skewJoinQuery builds an orders ⋈ lineitem-shaped join whose key columns
// carry the given skew.
func skewJoinQuery(skew float64) (*query.Query, error) {
	c := catalog.New("skewstudy")
	if err := c.AddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 104,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000, Skew: skew},
		},
	}); err != nil {
		return nil, err
	}
	if err := c.AddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 112,
		Columns: []catalog.Column{
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000, Skew: skew},
		},
	}); err != nil {
		return nil, err
	}
	ot, _ := c.Table("orders")
	lt, _ := c.Table("lineitem")
	q := &query.Query{
		Name: fmt.Sprintf("skew_%g", skew),
		Relations: []query.Relation{
			{Alias: "o", Table: ot},
			{Alias: "l", Table: lt},
		},
		Joins: []query.Join{{
			ID:   0,
			Left: query.ColumnRef{Alias: "o", Column: "o_orderkey"},
			Right: query.ColumnRef{
				Alias: "l", Column: "l_orderkey",
			},
		}},
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// RenderEstimation renders the estimation error study.
func RenderEstimation(rows []EstimationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Selectivity estimation error vs data skew (paper Sec 1 premise)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %12s %10s %12s\n",
		"skew", "true sel", "AVI est", "sampled est", "AVI err×", "sampled err×")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.1f %12.3g %12.3g %12.3g %10.1f %12.1f\n",
			r.Skew, r.True, r.AVI, r.Sampled, r.AVIError, r.SampledError)
	}
	b.WriteString("\nthe robust algorithms' guarantees are independent of every column above.\n")
	return b.String()
}

// ReoptRow compares the POP-style progressive reoptimization heuristic
// (Sec 8's contrast class) with the bounded algorithms on one query.
type ReoptRow struct {
	// Query is the benchmark query.
	Query string
	// D is the epp count.
	D int
	// POP, Rio, SB, AB are the empirical MSOs.
	POP, Rio, SB, AB float64
	// SBBound is D²+3D.
	SBBound float64
}

// ReoptComparison sweeps the POP-style baseline against SpillBound and
// AlignedBound on the 2D and 3D Q91 instances, demonstrating the absence
// of a bound for validity-range heuristics.
func (l *Lab) ReoptComparison() ([]ReoptRow, error) {
	var rows []ReoptRow
	for _, d := range []int{2, 3} {
		sp := workload.Q91(d)
		s, err := l.Space(sp)
		if err != nil {
			return nil, err
		}
		cat, err := l.Catalog(sp.Catalog)
		if err != nil {
			return nil, err
		}
		q, err := sp.Build(cat)
		if err != nil {
			return nil, err
		}
		m, err := cost.NewModel(q, l.Config.Params)
		if err != nil {
			return nil, err
		}
		o, err := optimizer.New(m)
		if err != nil {
			return nil, err
		}
		pop := reopt.NewRunner(o)
		// The POP runner re-invokes the (non-concurrency-safe) optimizer,
		// so its sweep stays sequential regardless of Config.Workers.
		popSweep := metrics.Sweep(s, func(truth cost.Location) float64 {
			return pop.Run(truth).TotalCost
		}, metrics.SweepOptions{MaxLocations: l.Config.MaxLocations, Seed: l.Config.Seed})
		rio := reopt.NewRioRunner(s)
		rioSweep := l.sweep(s, rio.Run)
		sb := l.cachedSweep("sb:"+sp.Name, s, l.sbRun(s))
		ab, _ := l.abSweep(sp.Name, s)
		rows = append(rows, ReoptRow{
			Query: sp.Name, D: d,
			POP: popSweep.MSO, Rio: rioSweep.MSO, SB: sb.MSO, AB: ab.MSO,
			SBBound: spillbound.Guarantee(d),
		})
	}
	return rows, nil
}

// RenderReopt renders the reoptimization comparison.
func RenderReopt(rows []ReoptRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan-switching heuristics vs bounded discovery (Sec 8)\n")
	fmt.Fprintf(&b, "%-8s %3s %12s %12s %8s %8s %8s\n", "query", "D", "POP MSOe", "Rio MSOe", "SB MSOe", "AB MSOe", "D²+3D")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %3d %12.1f %12.1f %8.1f %8.1f %8.0f\n", r.Query, r.D, r.POP, r.Rio, r.SB, r.AB, r.SBBound)
	}
	return b.String()
}

// LambdaRow is one line of the anorexic-reduction sensitivity study:
// PlanBouquet's plan count, guarantee and empirical MSO under one reduction
// threshold λ.
type LambdaRow struct {
	// Lambda is the reduction threshold.
	Lambda float64
	// Plans is the reduced diagram's plan count.
	Plans int
	// Rho is the max contour density.
	Rho int
	// Guarantee is 4(1+λ)ρ.
	Guarantee float64
	// MSOe is the measured MSO.
	MSOe float64
}

// LambdaSensitivity probes the paper's critique (iii) of PlanBouquet:
// "ensuring a bound that is small enough to be of practical value is
// contingent on the heuristic of anorexic reduction holding true". Without
// reduction (λ=0) the raw POSP density makes the guarantee enormous;
// growing λ shrinks ρ but inflates every budget by (1+λ).
func (l *Lab) LambdaSensitivity() ([]LambdaRow, error) {
	sp := workload.Q91(4)
	s, err := l.Space(sp)
	if err != nil {
		return nil, err
	}
	var rows []LambdaRow
	for _, lambda := range []float64{0, 0.1, 0.2, 0.5, 1.0} {
		d := bouquet.Reduce(s, lambda)
		costs := s.ContourCosts(l.Config.Ratio)
		_, rho := bouquet.ContourDensities(s, d, costs)
		sweep := l.sweep(s, func(truth cost.Location) float64 {
			return bouquet.Run(d, engine.New(s.Model, truth), l.Config.Ratio).TotalCost
		})
		rows = append(rows, LambdaRow{
			Lambda: lambda, Plans: d.PlanCount(), Rho: rho,
			Guarantee: 4 * (1 + lambda) * float64(rho),
			MSOe:      sweep.MSO,
		})
	}
	return rows, nil
}

// RenderLambda renders the λ sensitivity table.
func RenderLambda(rows []LambdaRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Anorexic reduction sensitivity (PlanBouquet, 4D_Q91)\n")
	fmt.Fprintf(&b, "%6s %8s %6s %12s %8s\n", "λ", "plans", "ρ", "4(1+λ)ρ", "MSOe")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.1f %8d %6d %12.1f %8.1f\n", r.Lambda, r.Plans, r.Rho, r.Guarantee, r.MSOe)
	}
	return b.String()
}
