package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/metrics"
	"repro/internal/spillbound"
	"repro/internal/viz"
	"repro/internal/workload"
)

// Fig7 renders the paper's Fig. 7 — the SpillBound execution trace for the
// 2D Q91 instance at q_a = (0.04, 0.1) — as a textual contour map with the
// Manhattan discovery profile overlaid, plus the budgeted execution
// transcript.
func (l *Lab) Fig7() (string, error) {
	sp := workload.Q91(2)
	s, err := l.Space(sp)
	if err != nil {
		return "", err
	}
	truth := cost.Location{0.04, 0.1} // the paper's example location
	r := &spillbound.Runner{Space: s, Ratio: l.Config.Ratio}
	out := r.Run(engine.New(s.Model, truth))
	m, err := viz.Fig7(s, l.Config.Ratio, out, truth)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — SpillBound execution trace (%s, q_a=%v)\n\n", sp.Name, truth)
	b.WriteString(m)
	b.WriteString("\nbudgeted executions:\n")
	b.WriteString(out.Trace())
	fmt.Fprintf(&b, "sub-optimality: %.2f (bound %.0f)\n",
		out.TotalCost/optCostOnGrid(s, truth), spillbound.Guarantee(2))
	return b.String(), nil
}

// optCostOnGrid approximates the oracle cost at an off-grid location by the
// covering grid cell's optimum (exact when truth is on-grid).
func optCostOnGrid(s *ess.Space, truth cost.Location) float64 {
	g := s.Grid
	idx := make([]int, g.D)
	for d := range idx {
		idx[d] = g.CeilIndex(d, truth[d])
	}
	return s.CostAt(g.Flatten(idx))
}

// RatioRow is one line of the contour-ratio ablation (Sec 4.2 remark): the
// theoretical bound and the measured MSO under each contour ratio.
type RatioRow struct {
	// Ratio is the geometric contour cost ratio.
	Ratio float64
	// Bound is SpillBound's guarantee D·r²/(r-1) + D(D-1)/2·r.
	Bound float64
	// MSOe is the measured MSO over the sweep.
	MSOe float64
}

// RatioAblation sweeps SpillBound on 2D_Q91 under several contour ratios,
// including the theoretical optimum (≈1.82 at D=2), validating the paper's
// remark that doubling is near-optimal but not ideal for SpillBound.
func (l *Lab) RatioAblation() ([]RatioRow, error) {
	sp := workload.Q91(2)
	s, err := l.Space(sp)
	if err != nil {
		return nil, err
	}
	optR, _ := spillbound.OptimalRatio(sp.D)
	ratios := []float64{1.4, 1.6, optR, 2.0, 2.5, 3.0}
	var rows []RatioRow
	for _, r := range ratios {
		runner := &spillbound.Runner{Space: s, Ratio: r}
		res := l.sweep(s, func(truth cost.Location) float64 {
			return runner.Run(engine.New(s.Model, truth)).TotalCost
		})
		rows = append(rows, RatioRow{
			Ratio: r,
			Bound: spillbound.GuaranteeWithRatio(sp.D, r),
			MSOe:  res.MSO,
		})
	}
	return rows, nil
}

// DeltaRow is one line of the cost-model-error robustness study (Sec 7):
// measured MSO under bounded model error δ against the inflated guarantee.
type DeltaRow struct {
	// Delta is the injected error bound.
	Delta float64
	// InflatedBound is (D²+3D)(1+δ)².
	InflatedBound float64
	// MSOe is the measured MSO (denominator conservatively deflated by
	// (1+δ) since the perturbed-world oracle may be that much cheaper).
	MSOe float64
}

// DeltaRobustness sweeps SpillBound on 2D_Q91 under injected cost-model
// error, validating Sec 7's claim that guarantees carry through modulo
// (1+δ)².
func (l *Lab) DeltaRobustness() ([]DeltaRow, error) {
	sp := workload.Q91(2)
	s, err := l.Space(sp)
	if err != nil {
		return nil, err
	}
	runner := &spillbound.Runner{Space: s, Ratio: l.Config.Ratio}
	var rows []DeltaRow
	for _, delta := range []float64{0, 0.1, 0.3, 0.5} {
		errFn := engine.DeterministicCostError(delta, uint64(l.Config.Seed)+1)
		res := metrics.Sweep(s, func(truth cost.Location) float64 {
			e := engine.New(s.Model, truth)
			e.CostError = errFn
			// Conservative denominator handling: scale the numerator up by
			// (1+δ) instead of tracking the perturbed-world oracle.
			return runner.Run(e).TotalCost * (1 + delta)
		}, metrics.SweepOptions{MaxLocations: l.Config.MaxLocations, Seed: l.Config.Seed})
		rows = append(rows, DeltaRow{
			Delta:         delta,
			InflatedBound: spillbound.Guarantee(sp.D) * (1 + delta) * (1 + delta),
			MSOe:          res.MSO,
		})
	}
	return rows, nil
}

// CorrelatedRow is one line of the dependent-selectivities study (the
// paper's Sec 9 future work): average sub-optimality under a workload whose
// epp selectivities are jointly log-normal with exchangeable correlation ρ.
type CorrelatedRow struct {
	// Rho is the pairwise correlation of the log-selectivities.
	Rho float64
	// SBASO and ABASO are the workload-weighted average sub-optimalities.
	SBASO, ABASO float64
	// SBMSO is the maximum over the workload's support — still within the
	// structural bound, which holds pointwise regardless of dependence.
	SBMSO float64
}

// CorrelatedWorkload evaluates SpillBound and AlignedBound on 2D_Q91 under
// increasingly correlated workload distributions. The per-instance D²+3D
// guarantee is distribution-free; the experiment shows how the
// *average-case* picture moves when selectivities are dependent.
func (l *Lab) CorrelatedWorkload() ([]CorrelatedRow, error) {
	sp := workload.Q91(2)
	s, err := l.Space(sp)
	if err != nil {
		return nil, err
	}
	sbRunner := &spillbound.Runner{Space: s, Ratio: l.Config.Ratio}
	abRunner := newABRunner(l, s)
	opts := metrics.SweepOptions{MaxLocations: l.Config.MaxLocations, Seed: l.Config.Seed}
	var rows []CorrelatedRow
	for _, rho := range []float64{0, 0.5, 0.9} {
		density := metrics.CorrelatedLogNormal(sp.D, -3, 1.5, rho)
		sb := metrics.WeightedSweep(s, func(truth cost.Location) float64 {
			return sbRunner.Run(engine.New(s.Model, truth)).TotalCost
		}, density, opts)
		ab := metrics.WeightedSweep(s, func(truth cost.Location) float64 {
			return abRunner.Run(engine.New(s.Model, truth)).TotalCost
		}, density, opts)
		rows = append(rows, CorrelatedRow{Rho: rho, SBASO: sb.ASO, ABASO: ab.ASO, SBMSO: sb.MSO})
	}
	return rows, nil
}

// RenderCorrelated renders the dependent-selectivities study.
func RenderCorrelated(rows []CorrelatedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dependent selectivities (Sec 9 future work, 2D_Q91)\n%8s %10s %10s %10s\n",
		"ρ", "SB ASO", "AB ASO", "SB MSO")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %10.2f %10.2f %10.2f\n", r.Rho, r.SBASO, r.ABASO, r.SBMSO)
	}
	return b.String()
}

// RenderRatio renders the ratio ablation.
func RenderRatio(rows []RatioRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Contour-ratio ablation (Sec 4.2 remark, 2D_Q91)\n%8s %10s %10s\n", "ratio", "bound", "MSOe")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.3f %10.2f %10.2f\n", r.Ratio, r.Bound, r.MSOe)
	}
	return b.String()
}

// RenderDelta renders the δ-robustness study.
func RenderDelta(rows []DeltaRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cost-model-error robustness (Sec 7, 2D_Q91)\n%8s %16s %10s\n", "δ", "(D²+3D)(1+δ)²", "MSOe")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %16.2f %10.2f\n", r.Delta, r.InflatedBound, r.MSOe)
	}
	return b.String()
}
