package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/native"
	"repro/internal/optimizer"
	"repro/internal/spillbound"
	"repro/internal/workload"
)

// Table2Row is one row of the contour alignment cost study (paper Table 2):
// what fraction of a query's contours satisfies contour alignment natively,
// and under bounded replacement penalties.
type Table2Row struct {
	// Query is the xD_Qz name.
	Query string
	// OriginalPct is the percentage of contours natively aligned.
	OriginalPct float64
	// Pct12, Pct15, Pct20 are the percentages aligned with replacement
	// penalty at most 1.2, 1.5, 2.0.
	Pct12, Pct15, Pct20 float64
	// MaxLambda is the penalty needed to align every contour (+Inf if some
	// contour cannot be aligned at any cost).
	MaxLambda float64
}

// table2Queries lists the queries the paper tabulates.
var table2Queries = []string{"3D_Q96", "4D_Q7", "4D_Q26", "4D_Q91", "5D_Q29", "5D_Q84"}

// Table2 computes the cost of enforcing contour alignment (paper Table 2).
func (l *Lab) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range table2Queries {
		sp, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown table-2 query %q", name)
		}
		s, err := l.Space(sp)
		if err != nil {
			return nil, err
		}
		st := aligned.AnalyzeAlignment(s, l.Config.Ratio)
		rows = append(rows, Table2Row{
			Query:       sp.Name,
			OriginalPct: st.NativePct(),
			Pct12:       st.WithinPct(1.2),
			Pct15:       st.WithinPct(1.5),
			Pct20:       st.WithinPct(2.0),
			MaxLambda:   st.MaxPenalty(),
		})
	}
	return rows, nil
}

// Table3Row is one contour line of the SpillBound execution drill-down
// (paper Table 3): the selectivity learnt per epp on that contour and the
// cumulative simulated time.
type Table3Row struct {
	// Contour is the 1-based contour number.
	Contour int
	// SelPct[d] is the running learnt selectivity of epp d, in percent.
	SelPct []float64
	// Plans[d] names the plan execution that advanced epp d on this
	// contour ("p7" spill-mode, "P10" regular), empty if none.
	Plans []string
	// CumSeconds is the cumulative simulated wall-clock after the contour.
	CumSeconds float64
}

// Table3Result is the full wall-clock experiment of Sec 6.3: the SpillBound
// drill-down plus the end-to-end comparison of the native optimizer,
// SpillBound and AlignedBound at one true location.
type Table3Result struct {
	// Query is the drilled query (paper: 4D_Q91).
	Query string
	// Truth is the chosen actual selectivity location.
	Truth cost.Location
	// Rows is the per-contour drill-down.
	Rows []Table3Row
	// OptSeconds is the oracle-optimal simulated time (paper: 44 s).
	OptSeconds float64
	// NativeSeconds, SBSeconds, ABSeconds are the three strategies' times.
	NativeSeconds, SBSeconds, ABSeconds float64
	// NativeSubOpt, SBSubOpt, ABSubOpt are the corresponding
	// sub-optimalities.
	NativeSubOpt, SBSubOpt, ABSubOpt float64
	// SBExecutions counts SpillBound's partial plan executions.
	SBExecutions int
}

// Table3 reproduces the wall-clock experiment on 4D_Q91 (paper Table 3 and
// Sec 6.3). The paper's optimal plan took 44 seconds on their testbed; the
// simulation's TimeScale is normalized so the oracle time matches, making
// the reported seconds directly comparable in shape.
func (l *Lab) Table3() (Table3Result, error) {
	sp := workload.Q91(4)
	s, err := l.Space(sp)
	if err != nil {
		return Table3Result{}, err
	}
	// A challenging actual location: high selectivity on the date join,
	// middling elsewhere — mirroring the paper's learnt (80%, 0.8%, 5%,
	// 60%) endpoint.
	truth := cost.Location{0.8, 0.008, 0.05, 0.6}
	optPlan, optCost := optimalAt(l, sp, truth)
	_ = optPlan

	const paperOptSeconds = 44.0
	timeScale := optCost / paperOptSeconds

	e := engine.New(s.Model, truth)
	e.TimeScale = timeScale
	sb := (&spillbound.Runner{Space: s, Ratio: l.Config.Ratio}).Run(e)

	res := Table3Result{
		Query: sp.Name, Truth: truth,
		OptSeconds:   paperOptSeconds,
		SBSeconds:    optCost / timeScale * (sb.TotalCost / optCost),
		SBSubOpt:     sb.TotalCost / optCost,
		SBExecutions: len(sb.Executions),
	}

	// Drill-down rows: fold the execution list per contour.
	d := s.Query.D()
	sel := make([]float64, d)
	cum := 0.0
	var cur *Table3Row
	flush := func() {
		if cur != nil {
			res.Rows = append(res.Rows, *cur)
			cur = nil
		}
	}
	for _, x := range sb.Executions {
		if cur == nil || cur.Contour != x.Contour+1 {
			flush()
			cur = &Table3Row{
				Contour: x.Contour + 1,
				SelPct:  append([]float64(nil), sel...),
				Plans:   make([]string, d),
			}
		}
		cum += x.Spent
		cur.CumSeconds = cum / timeScale
		if x.Dim >= 0 {
			if x.Learned*100 > cur.SelPct[x.Dim] {
				cur.SelPct[x.Dim] = x.Learned * 100
				sel[x.Dim] = x.Learned * 100
			}
			cur.Plans[x.Dim] = fmt.Sprintf("p%d", x.PlanID)
		} else if len(cur.Plans) > 0 {
			// Terminal 1-D phase: attribute to the single unlearned dim.
			for dim := 0; dim < d; dim++ {
				if sel[dim] < truth[dim]*100 {
					cur.Plans[dim] = fmt.Sprintf("P%d", x.PlanID)
					if x.Completed {
						cur.SelPct[dim] = truth[dim] * 100
						sel[dim] = truth[dim] * 100
					}
				}
			}
		}
	}
	flush()

	// Native and AlignedBound comparisons at the same location.
	estCell := estimateCell(s)
	nativeCost := s.Model.Eval(s.PlanAt(estCell), truth)
	res.NativeSubOpt = nativeCost / optCost
	res.NativeSeconds = nativeCost / timeScale

	ab := (&aligned.Runner{Space: s, Ratio: l.Config.Ratio}).Run(engine.New(s.Model, truth))
	res.ABSubOpt = ab.TotalCost / optCost
	res.ABSeconds = ab.TotalCost / timeScale
	return res, nil
}

// Table4Row is one row of the AlignedBound maximum-penalty study (paper
// Table 4).
type Table4Row struct {
	// Query is the xD_Qz name.
	Query string
	// MaxPenalty is the largest partition penalty π* encountered across
	// the query's MSO sweep.
	MaxPenalty float64
}

// Table4 computes per-query maximum AlignedBound partition penalties.
func (l *Lab) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, sp := range workload.TPCDSQueries() {
		s, err := l.Space(sp)
		if err != nil {
			return nil, err
		}
		_, maxPen := l.abSweep(sp.Name, s)
		rows = append(rows, Table4Row{Query: sp.Name, MaxPenalty: maxPen})
	}
	return rows, nil
}

// PlatformRow is the Sec 1.1.3 demonstration: PlanBouquet's behavioral
// guarantee shifts across platforms while SpillBound's structural bound is
// identical.
type PlatformRow struct {
	// Profile names the cost-model profile.
	Profile string
	// RhoRed and PB are the profile-specific density and guarantee.
	RhoRed int
	// PB is PlanBouquet's guarantee under the profile.
	PB float64
	// SB is SpillBound's (platform-independent) guarantee.
	SB float64
}

// PlatformShift evaluates the Q25 analogue (the paper's Sec 1.1.3 example)
// under both cost profiles.
func (l *Lab) PlatformShift() ([]PlatformRow, error) {
	sp := workload.Q25()
	var rows []PlatformRow
	for _, params := range []cost.Params{cost.PostgresLike(), cost.CommercialLike()} {
		s, err := l.SpaceWith(sp, params)
		if err != nil {
			return nil, err
		}
		d := bouquet.Reduce(s, l.Config.Lambda)
		costs := s.ContourCosts(l.Config.Ratio)
		_, rho := bouquet.ContourDensities(s, d, costs)
		rows = append(rows, PlatformRow{
			Profile: params.Name, RhoRed: rho,
			PB: 4 * (1 + l.Config.Lambda) * float64(rho),
			SB: spillbound.Guarantee(sp.D),
		})
	}
	return rows, nil
}

// JOBResult is the Sec 6.5 evaluation on the JOB Q1a analogue.
type JOBResult struct {
	// Query is the JOB query name.
	Query string
	// NativeMSO is the native optimizer's MSO over estimate/actual pairs.
	NativeMSO float64
	// SBMSO and ABMSO are the robust algorithms' empirical MSOs.
	SBMSO, ABMSO float64
}

// JOB evaluates the native optimizer, SpillBound and AlignedBound on the
// JOB Q1a analogue (paper Sec 6.5: native MSO above 6000, SB ≈ 12, AB < 9).
func (l *Lab) JOB() (JOBResult, error) {
	sp := workload.JOB1a()
	s, err := l.Space(sp)
	if err != nil {
		return JOBResult{}, err
	}
	sb := l.cachedSweep("sb:"+sp.Name, s, l.sbRun(s))
	ab, _ := l.abSweep(sp.Name, s)
	return JOBResult{
		Query:     sp.Name,
		NativeMSO: native.MSO(s, 1),
		SBMSO:     sb.MSO,
		ABMSO:     ab.MSO,
	}, nil
}

// optimalAt optimizes the spec's query at an off-grid location.
func optimalAt(l *Lab, sp workload.Spec, truth cost.Location) (planFP string, optCost float64) {
	s, err := l.Space(sp)
	if err != nil {
		return "", math.NaN()
	}
	// Re-run the optimizer at the exact location (the grid only holds
	// on-grid optima).
	cat, _ := l.Catalog(sp.Catalog)
	q, _ := sp.Build(cat)
	m, _ := cost.NewModel(q, s.Model.Params)
	o, err := optimizer.New(m)
	if err != nil {
		return "", math.NaN()
	}
	p, c := o.Optimize(truth)
	return p.Fingerprint(), c
}

// estimateCell snaps the model's statistics-derived estimate to its grid
// cell.
func estimateCell(s *ess.Space) int {
	g := s.Grid
	est := s.Model.EstimateLocation()
	idx := make([]int, g.D)
	for d := range idx {
		idx[d] = g.CeilIndex(d, est[d])
	}
	return g.Flatten(idx)
}

// RenderTable2 renders the alignment cost table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cost of enforcing contour alignment (Table 2)\n%-10s %9s %7s %7s %7s %8s\n",
		"query", "original", "λ=1.2", "λ=1.5", "λ=2.0", "max λ")
	for _, r := range rows {
		maxStr := fmt.Sprintf("%8.2f", r.MaxLambda)
		if math.IsInf(r.MaxLambda, 1) {
			maxStr = "     inf"
		}
		fmt.Fprintf(&b, "%-10s %8.0f%% %6.0f%% %6.0f%% %6.0f%% %s\n",
			r.Query, r.OriginalPct, r.Pct12, r.Pct15, r.Pct20, maxStr)
	}
	return b.String()
}

// RenderTable3 renders the wall-clock drill-down.
func RenderTable3(res Table3Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SpillBound execution on %s at q_a=%v (Table 3 / Sec 6.3)\n", res.Query, res.Truth)
	fmt.Fprintf(&b, "%-8s", "contour")
	for d := range res.Truth {
		fmt.Fprintf(&b, " %14s", fmt.Sprintf("e%d sel%%(plan)", d+1))
	}
	fmt.Fprintf(&b, " %10s\n", "time (s)")
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%-8d", row.Contour)
		for d := range row.SelPct {
			cell := fmt.Sprintf("%.3g", row.SelPct[d])
			if row.Plans[d] != "" {
				cell += " (" + row.Plans[d] + ")"
			}
			fmt.Fprintf(&b, " %14s", cell)
		}
		fmt.Fprintf(&b, " %10.1f\n", row.CumSeconds)
	}
	fmt.Fprintf(&b, "\noptimal: %.0f s | native: %.0f s (subopt %.1f) | SB: %.0f s (subopt %.1f, %d executions) | AB: %.0f s (subopt %.1f)\n",
		res.OptSeconds, res.NativeSeconds, res.NativeSubOpt,
		res.SBSeconds, res.SBSubOpt, res.SBExecutions,
		res.ABSeconds, res.ABSubOpt)
	return b.String()
}

// RenderTable4 renders the AlignedBound penalty summary.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Maximum partition penalty for AB (Table 4)\n%-10s %12s\n", "query", "max penalty")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.2f\n", r.Query, r.MaxPenalty)
	}
	return b.String()
}

// RenderPlatform renders the platform-shift rows.
func RenderPlatform(rows []PlatformRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Platform dependence of PB's guarantee (Sec 1.1.3, 4D_Q25)\n%-16s %6s %10s %10s\n",
		"profile", "ρ_red", "PB MSOg", "SB MSOg")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %6d %10.1f %10.0f\n", r.Profile, r.RhoRed, r.PB, r.SB)
	}
	return b.String()
}

// RenderJOB renders the JOB evaluation.
func RenderJOB(res JOBResult) string {
	return fmt.Sprintf("JOB evaluation (Sec 6.5, %s)\nnative MSO: %.0f\nSB MSO:     %.1f\nAB MSO:     %.1f\n",
		res.Query, res.NativeMSO, res.SBMSO, res.ABMSO)
}
