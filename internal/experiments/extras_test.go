package experiments

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestFig7Renders(t *testing.T) {
	l := testLab()
	out, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 7", "q_run", "X", "budgeted executions", "sub-optimality"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestRatioAblation(t *testing.T) {
	l := testLab()
	rows, err := l.RatioAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	minBound := math.Inf(1)
	minAt := 0.0
	for _, r := range rows {
		if r.MSOe > r.Bound+1e-9 {
			t.Errorf("ratio %.3f: MSOe %.2f exceeds bound %.2f", r.Ratio, r.MSOe, r.Bound)
		}
		if r.Bound < minBound {
			minBound, minAt = r.Bound, r.Ratio
		}
	}
	// The theoretical minimum sits at the included optimal ratio ≈1.816.
	if math.Abs(minAt-1.8165) > 0.02 {
		t.Errorf("bound minimized at %.3f, want ≈1.816", minAt)
	}
	if out := RenderRatio(rows); !strings.Contains(out, "ratio") {
		t.Error("render missing header")
	}
}

func TestCorrelatedWorkload(t *testing.T) {
	l := testLab()
	rows, err := l.CorrelatedWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.SBASO < 1 || r.ABASO < 1 {
			t.Errorf("ρ=%.1f: ASO below 1", r.Rho)
		}
		if r.SBMSO > 10 {
			t.Errorf("ρ=%.1f: SB MSO %.2f exceeds the distribution-free bound 10", r.Rho, r.SBMSO)
		}
		// The pointwise worst case does not depend on the workload's
		// distribution (same support).
		if i > 0 && r.SBMSO != rows[0].SBMSO {
			t.Errorf("MSO changed with ρ: %g vs %g", r.SBMSO, rows[0].SBMSO)
		}
	}
	if out := RenderCorrelated(rows); !strings.Contains(out, "ρ") {
		t.Error("render missing header")
	}
}

func TestDeltaRobustness(t *testing.T) {
	l := testLab()
	rows, err := l.DeltaRobustness()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Delta != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	for i, r := range rows {
		if r.MSOe > r.InflatedBound+1e-9 {
			t.Errorf("δ=%.2f: MSOe %.2f exceeds inflated bound %.2f", r.Delta, r.MSOe, r.InflatedBound)
		}
		if i > 0 && r.InflatedBound <= rows[i-1].InflatedBound {
			t.Error("inflated bounds should grow with δ")
		}
	}
	if out := RenderDelta(rows); !strings.Contains(out, "δ") {
		t.Error("render missing header")
	}
}

func TestSummaryAndReport(t *testing.T) {
	l := testLab()
	rows, err := l.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("summary rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.Native >= r.PB && r.PB >= r.SB*0.5) {
			t.Logf("note %s: native %.0f PB %.1f SB %.1f AB %.1f", r.Query, r.Native, r.PB, r.SB, r.AB)
		}
		// AB usually beats SB but is not pointwise dominated by it; require
		// it competitive and within its retained upper bound.
		if r.AB > r.SB*1.5 {
			t.Errorf("%s: AB MSO %.2f much worse than SB %.2f", r.Query, r.AB, r.SB)
		}
		if r.AB > float64(r.D*r.D+3*r.D) {
			t.Errorf("%s: AB MSO %.2f above D²+3D", r.Query, r.AB)
		}
		if r.Native < r.SB {
			t.Errorf("%s: native MSO %.2f below SB %.2f", r.Query, r.Native, r.SB)
		}
	}
	if out := RenderSummary(rows); !strings.Contains(out, "native") {
		t.Error("render missing native column")
	}

	rep, err := l.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	for _, want := range []string{"\"Fig8\"", "\"Table3\"", "\"Summary\"", "\"JOB\"", "\"Correlated\""} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	// encoding/json rejects infinities outright, so a successful encode
	// plus a well-formed round trip is the real check.
	var back map[string]any
	if err := json.Unmarshal([]byte(js), &back); err != nil {
		t.Errorf("report JSON does not round-trip: %v", err)
	}
}

func TestEstimationStudy(t *testing.T) {
	l := testLab()
	rows, err := l.EstimationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Skew != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	for i, r := range rows {
		if r.True <= 0 || r.AVI <= 0 || r.Sampled <= 0 {
			t.Errorf("skew %g: non-positive selectivities", r.Skew)
		}
		// AVI error grows with skew; sampling stays near 1.
		if i > 0 && r.AVIError < rows[i-1].AVIError-1e-9 {
			t.Errorf("AVI error not monotone at skew %g", r.Skew)
		}
		if r.SampledError > 2 {
			t.Errorf("skew %g: sampled error %.2f too large", r.Skew, r.SampledError)
		}
	}
	if last := rows[len(rows)-1]; last.AVIError < 100 {
		t.Errorf("heavy skew AVI error %.1f; expected orders of magnitude", last.AVIError)
	}
	if out := RenderEstimation(rows); !strings.Contains(out, "AVI err") {
		t.Error("render missing column")
	}
}

func TestReoptComparison(t *testing.T) {
	l := testLab()
	rows, err := l.ReoptComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SB > r.SBBound || r.AB > r.SBBound {
			t.Errorf("%s: bounded algorithms exceeded D²+3D", r.Query)
		}
		if r.POP < 1 {
			t.Errorf("%s: POP MSO %.2f below 1", r.Query, r.POP)
		}
		// The heuristic's worst case dwarfs the structural bound on this
		// workload — the Sec 8 point.
		if r.POP < r.SBBound {
			t.Logf("note %s: POP happened to stay under the bound (no guarantee)", r.Query)
		}
	}
	if out := RenderReopt(rows); !strings.Contains(out, "POP MSOe") {
		t.Error("render missing column")
	}
}

func TestLambdaSensitivity(t *testing.T) {
	l := testLab()
	rows, err := l.LambdaSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Lambda != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	for i, r := range rows {
		if r.MSOe > r.Guarantee {
			t.Errorf("λ=%.1f: MSOe %.1f above guarantee %.1f", r.Lambda, r.MSOe, r.Guarantee)
		}
		if i > 0 && r.Plans > rows[i-1].Plans {
			t.Errorf("λ=%.1f: plan count grew under looser threshold", r.Lambda)
		}
	}
	// The paper's critique: the unreduced guarantee is far above the
	// default-λ one.
	if rows[0].Guarantee < 2*rows[2].Guarantee {
		t.Errorf("unreduced guarantee %.1f not dramatically above λ=0.2's %.1f",
			rows[0].Guarantee, rows[2].Guarantee)
	}
	if out := RenderLambda(rows); !strings.Contains(out, "4(1+λ)ρ") {
		t.Error("render missing formula column")
	}
}
