package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/spillbound"
	"repro/internal/workload"
)

// testLab returns a lab with shrunken grids and sweep budgets so the whole
// experiment suite exercises in seconds.
func testLab() *Lab {
	cfg := DefaultConfig()
	cfg.MaxLocations = 48
	cfg.ResOverride = map[string]int{}
	for _, sp := range workload.TPCDSQueries() {
		switch sp.D {
		case 3:
			cfg.ResOverride[sp.Name] = 6
		case 4:
			cfg.ResOverride[sp.Name] = 5
		default:
			cfg.ResOverride[sp.Name] = 4
		}
	}
	for d := 2; d <= 6; d++ {
		name := workload.Q91(d).Name
		if _, ok := cfg.ResOverride[name]; !ok {
			cfg.ResOverride[name] = []int{0, 0, 10, 6, 5, 4, 4}[d]
		}
	}
	cfg.ResOverride["JOB_1a"] = 10
	return NewLab(cfg)
}

func TestFig8Guarantees(t *testing.T) {
	l := testLab()
	rows, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.TPCDSQueries()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SB != spillbound.Guarantee(r.D) {
			t.Errorf("%s: SB guarantee %g != %g", r.Query, r.SB, spillbound.Guarantee(r.D))
		}
		if r.RhoRed < 1 || r.PB != 4*1.2*float64(r.RhoRed) {
			t.Errorf("%s: PB guarantee inconsistent: ρ=%d PB=%g", r.Query, r.RhoRed, r.PB)
		}
	}
	out := RenderGuarantees("Fig 8", rows)
	if !strings.Contains(out, "4D_Q91") {
		t.Errorf("render missing query:\n%s", out)
	}
}

func TestFig9Dimensionality(t *testing.T) {
	l := testLab()
	rows, err := l.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (D=2..6)", len(rows))
	}
	// SB's guarantee grows as D²+3D; at high D it should be at or below
	// PB's behavioral bound if ρ grows (paper Fig. 9 shape) — we assert
	// only the structural values.
	for i, r := range rows {
		wantD := i + 2
		if r.D != wantD || r.SB != spillbound.Guarantee(wantD) {
			t.Errorf("row %d: D=%d SB=%g", i, r.D, r.SB)
		}
	}
}

func TestFig10EmpiricalMSO(t *testing.T) {
	l := testLab()
	rows, err := l.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.A < 1 || r.B < 1 {
			t.Errorf("%s: MSOe below 1: PB=%g SB=%g", r.Query, r.A, r.B)
		}
		if r.B > spillbound.Guarantee(r.D)+1e-9 {
			t.Errorf("%s: SB MSOe %g exceeds structural bound %g", r.Query, r.B, spillbound.Guarantee(r.D))
		}
	}
	out := RenderEmpirical("Fig 10", "PB", "SB", rows)
	if !strings.Contains(out, "PB") {
		t.Error("render missing header")
	}
}

func TestFig11ASO(t *testing.T) {
	l := testLab()
	rows, err := l.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.A < 1 || r.B < 1 {
			t.Errorf("%s: ASO below 1: PB=%g SB=%g", r.Query, r.A, r.B)
		}
	}
}

func TestFig12Histogram(t *testing.T) {
	l := testLab()
	res, err := l.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	sum := func(h []float64) float64 {
		s := 0.0
		for _, v := range h {
			s += v
		}
		return s
	}
	var pb, sb []float64
	for i := range res.PB {
		pb = append(pb, res.PB[i].Pct)
		sb = append(sb, res.SB[i].Pct)
	}
	if math.Abs(sum(pb)-100) > 1e-6 || math.Abs(sum(sb)-100) > 1e-6 {
		t.Errorf("histogram pcts sum to %g / %g", sum(pb), sum(sb))
	}
	out := RenderHistogram(res)
	if !strings.Contains(out, "[0,5)") || !strings.Contains(out, "inf") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFig13ABvsSB(t *testing.T) {
	l := testLab()
	rows, err := l.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ref != float64(2*r.D+2) {
			t.Errorf("%s: ref %g != 2D+2", r.Query, r.Ref)
		}
		if r.B > spillbound.Guarantee(r.D)+1e-9 {
			t.Errorf("%s: AB MSOe %g exceeds upper bound", r.Query, r.B)
		}
	}
	out := RenderEmpirical("Fig 13", "SB", "AB", rows)
	if !strings.Contains(out, "2D+2") {
		t.Error("render missing reference column")
	}
}

func TestTable2Alignment(t *testing.T) {
	l := testLab()
	rows, err := l.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.OriginalPct < 0 || r.OriginalPct > 100 {
			t.Errorf("%s: original %g%%", r.Query, r.OriginalPct)
		}
		if r.Pct12 > r.Pct15+1e-9 || r.Pct15 > r.Pct20+1e-9 {
			t.Errorf("%s: percentages not monotone: %g %g %g", r.Query, r.Pct12, r.Pct15, r.Pct20)
		}
		if r.OriginalPct > r.Pct12+1e-9 {
			t.Errorf("%s: original %g%% exceeds λ=1.2 %g%%", r.Query, r.OriginalPct, r.Pct12)
		}
	}
	if out := RenderTable2(rows); !strings.Contains(out, "max λ") {
		t.Error("render missing max λ column")
	}
}

func TestTable3WallClock(t *testing.T) {
	l := testLab()
	res, err := l.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no drill-down rows")
	}
	if res.OptSeconds != 44 {
		t.Errorf("OptSeconds = %g", res.OptSeconds)
	}
	for _, so := range []float64{res.NativeSubOpt, res.SBSubOpt, res.ABSubOpt} {
		if so < 1-1e-6 {
			t.Errorf("sub-optimality %g below 1", so)
		}
	}
	if res.SBSubOpt > spillbound.Guarantee(4) {
		t.Errorf("SB subopt %g exceeds bound", res.SBSubOpt)
	}
	// Cumulative time must be nondecreasing.
	prev := 0.0
	for _, row := range res.Rows {
		if row.CumSeconds < prev {
			t.Errorf("cumulative time decreased: %g after %g", row.CumSeconds, prev)
		}
		prev = row.CumSeconds
	}
	if out := RenderTable3(res); !strings.Contains(out, "optimal: 44 s") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable4Penalties(t *testing.T) {
	l := testLab()
	rows, err := l.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.TPCDSQueries()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxPenalty < 0 || math.IsInf(r.MaxPenalty, 1) {
			t.Errorf("%s: max penalty %g", r.Query, r.MaxPenalty)
		}
	}
	if out := RenderTable4(rows); !strings.Contains(out, "max penalty") {
		t.Error("render missing header")
	}
}

func TestPlatformShift(t *testing.T) {
	l := testLab()
	rows, err := l.PlatformShift()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// SpillBound's bound is identical across platforms; that is the point.
	if rows[0].SB != rows[1].SB {
		t.Errorf("SB bound differs across platforms: %g vs %g", rows[0].SB, rows[1].SB)
	}
	if out := RenderPlatform(rows); !strings.Contains(out, "postgres-like") {
		t.Error("render missing profile")
	}
}

func TestJOBEvaluation(t *testing.T) {
	l := testLab()
	res, err := l.JOB()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Sec 6.5 shape: native far above the robust algorithms.
	if res.NativeMSO <= res.SBMSO {
		t.Errorf("native MSO %g should exceed SB %g", res.NativeMSO, res.SBMSO)
	}
	if res.SBMSO > spillbound.Guarantee(2) {
		t.Errorf("SB MSO %g exceeds bound 10", res.SBMSO)
	}
	if out := RenderJOB(res); !strings.Contains(out, "native MSO") {
		t.Error("render missing native row")
	}
}

func TestLabCatalogErrors(t *testing.T) {
	l := testLab()
	if _, err := l.Catalog("nope"); err == nil {
		t.Error("unknown catalog should error")
	}
}

func TestSpaceCaching(t *testing.T) {
	l := testLab()
	sp, _ := workload.ByName("3D_Q96")
	a, err := l.Space(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Space(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Space not cached")
	}
}
