// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 6): the MSO guarantee and empirical MSO comparisons of
// PlanBouquet vs SpillBound (Figs. 8–10), average sub-optimality (Fig. 11),
// sub-optimality distributions (Fig. 12), the SpillBound vs AlignedBound
// comparison (Fig. 13), the contour alignment cost study (Table 2), the
// wall-clock execution trace (Table 3 / Sec 6.3), the AlignedBound penalty
// summary (Table 4), the platform-dependence demonstration (Sec 1.1.3) and
// the JOB evaluation (Sec 6.5).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/spillbound"
	"repro/internal/workload"
)

// Config collects the experiment-wide knobs.
type Config struct {
	// Params is the platform cost profile (paper: PostgreSQL).
	Params cost.Params
	// Ratio is the contour cost ratio (paper default 2).
	Ratio float64
	// Lambda is the anorexic reduction threshold for PlanBouquet
	// (paper default 0.2).
	Lambda float64
	// MaxLocations caps per-query MSO sweeps; 0 = exhaustive. The paper
	// enumerated exhaustively; large high-D grids are subsampled here to
	// stay laptop-scale.
	MaxLocations int
	// Seed drives sweep subsampling.
	Seed int64
	// ScaleFactor is the TPC-DS scale (paper: 100, i.e. 100 GB).
	ScaleFactor float64
	// ResOverride optionally overrides the grid resolution per query name
	// (useful to shrink benchmark runtimes).
	ResOverride map[string]int
	// Workers parallelizes MSO sweeps (the runners are concurrency-safe
	// over a shared space); 0 uses GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Params:       cost.PostgresLike(),
		Ratio:        ess.CostDoublingRatio,
		Lambda:       0.2,
		MaxLocations: 512,
		Seed:         1,
		ScaleFactor:  100,
	}
}

// Lab owns the built ESS spaces and reduced diagrams, caching them across
// experiments (contour construction is the expensive preprocessing step the
// paper discusses in Sec 7).
type Lab struct {
	// Config is the lab's configuration.
	Config Config

	mu        sync.Mutex
	tpcds     *catalog.Catalog
	tpch      *catalog.Catalog
	imdb      *catalog.Catalog
	spaces    map[string]*ess.Space
	diagrams  map[string]*bouquet.Diagram
	sweeps    map[string]metrics.SweepResult
	abPenalty map[string]float64
}

// NewLab returns a Lab with the given configuration.
func NewLab(cfg Config) *Lab {
	return &Lab{
		Config:   cfg,
		spaces:   make(map[string]*ess.Space),
		diagrams: make(map[string]*bouquet.Diagram),
		sweeps:   make(map[string]metrics.SweepResult),
	}
}

// Catalog returns the named catalog, constructing it on first use.
func (l *Lab) Catalog(name string) (*catalog.Catalog, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch name {
	case "tpcds":
		if l.tpcds == nil {
			l.tpcds = catalog.TPCDS(l.Config.ScaleFactor)
		}
		return l.tpcds, nil
	case "tpch":
		if l.tpch == nil {
			l.tpch = catalog.TPCH(l.Config.ScaleFactor)
		}
		return l.tpch, nil
	case "imdb":
		if l.imdb == nil {
			l.imdb = catalog.IMDB()
		}
		return l.imdb, nil
	}
	return nil, fmt.Errorf("experiments: unknown catalog %q", name)
}

// Space returns the built ESS for the spec, caching per (query, profile).
func (l *Lab) Space(sp workload.Spec) (*ess.Space, error) {
	return l.SpaceWith(sp, l.Config.Params)
}

// SpaceWith is Space under an explicit cost profile.
func (l *Lab) SpaceWith(sp workload.Spec, params cost.Params) (*ess.Space, error) {
	key := sp.Name + "@" + params.Name
	l.mu.Lock()
	if s, ok := l.spaces[key]; ok {
		l.mu.Unlock()
		return s, nil
	}
	l.mu.Unlock()

	cat, err := l.Catalog(sp.Catalog)
	if err != nil {
		return nil, err
	}
	q, err := sp.Build(cat)
	if err != nil {
		return nil, err
	}
	m, err := cost.NewModel(q, params)
	if err != nil {
		return nil, err
	}
	o, err := optimizer.New(m)
	if err != nil {
		return nil, err
	}
	res := sp.GridRes
	if r, ok := l.Config.ResOverride[sp.Name]; ok {
		res = r
	}
	s := ess.Build(o, ess.NewGrid(q.D(), res, sp.GridLo))

	l.mu.Lock()
	l.spaces[key] = s
	l.mu.Unlock()
	return s, nil
}

// Diagram returns the anorexic-reduced plan diagram for the spec.
func (l *Lab) Diagram(sp workload.Spec) (*bouquet.Diagram, error) {
	key := sp.Name + "@" + l.Config.Params.Name
	l.mu.Lock()
	if d, ok := l.diagrams[key]; ok {
		l.mu.Unlock()
		return d, nil
	}
	l.mu.Unlock()

	s, err := l.Space(sp)
	if err != nil {
		return nil, err
	}
	d := bouquet.Reduce(s, l.Config.Lambda)
	l.mu.Lock()
	l.diagrams[key] = d
	l.mu.Unlock()
	return d, nil
}

// sweep runs the strategy over the space's grid per the lab's sampling
// configuration.
func (l *Lab) sweep(s *ess.Space, run metrics.RunFunc) metrics.SweepResult {
	workers := l.Config.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return metrics.Sweep(s, run, metrics.SweepOptions{
		MaxLocations: l.Config.MaxLocations,
		Seed:         l.Config.Seed,
		Workers:      workers,
	})
}

// cachedSweep memoizes a sweep per (query space, algorithm tag); figures
// 10, 11 and 13 share the underlying PB/SB/AB sweeps.
func (l *Lab) cachedSweep(key string, s *ess.Space, run metrics.RunFunc) metrics.SweepResult {
	l.mu.Lock()
	res, ok := l.sweeps[key]
	l.mu.Unlock()
	if ok {
		return res
	}
	res = l.sweep(s, run)
	l.mu.Lock()
	l.sweeps[key] = res
	l.mu.Unlock()
	return res
}

// pbRun returns a RunFunc executing PlanBouquet on the reduced diagram.
func (l *Lab) pbRun(d *bouquet.Diagram) metrics.RunFunc {
	return func(truth cost.Location) float64 {
		e := engine.New(d.Space.Model, truth)
		return bouquet.Run(d, e, l.Config.Ratio).TotalCost
	}
}

// sbRun returns a RunFunc executing SpillBound.
func (l *Lab) sbRun(s *ess.Space) metrics.RunFunc {
	r := &spillbound.Runner{Space: s, Ratio: l.Config.Ratio}
	return func(truth cost.Location) float64 {
		return r.Run(engine.New(s.Model, truth)).TotalCost
	}
}

// abRun returns a RunFunc executing AlignedBound, optionally reporting the
// maximum partition penalty seen across the sweep (safe under parallel
// sweeps).
func (l *Lab) abRun(s *ess.Space, maxPenalty *float64) metrics.RunFunc {
	r := &aligned.Runner{Space: s, Ratio: l.Config.Ratio}
	var mu sync.Mutex
	return func(truth cost.Location) float64 {
		out := r.Run(engine.New(s.Model, truth))
		if maxPenalty != nil {
			mu.Lock()
			if out.MaxPartitionPenalty > *maxPenalty {
				*maxPenalty = out.MaxPartitionPenalty
			}
			mu.Unlock()
		}
		return out.TotalCost
	}
}

// newABRunner builds an AlignedBound runner under the lab's configuration.
func newABRunner(l *Lab, s *ess.Space) *aligned.Runner {
	return &aligned.Runner{Space: s, Ratio: l.Config.Ratio}
}

// abSweep runs (and caches) the AlignedBound sweep for a query, returning
// both the sweep and the maximum partition penalty observed — shared by
// Fig. 13 and Table 4.
func (l *Lab) abSweep(name string, s *ess.Space) (metrics.SweepResult, float64) {
	key := "ab:" + name
	l.mu.Lock()
	res, ok := l.sweeps[key]
	pen := l.abPenalty[key]
	l.mu.Unlock()
	if ok {
		return res, pen
	}
	var maxPen float64
	res = l.sweep(s, l.abRun(s, &maxPen))
	l.mu.Lock()
	l.sweeps[key] = res
	if l.abPenalty == nil {
		l.abPenalty = make(map[string]float64)
	}
	l.abPenalty[key] = maxPen
	l.mu.Unlock()
	return res, maxPen
}
