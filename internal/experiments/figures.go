package experiments

import (
	"fmt"
	"strings"

	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/metrics"
	"repro/internal/spillbound"
	"repro/internal/workload"
)

// GuaranteeRow is one bar pair of Fig. 8/9: the MSO guarantees of
// PlanBouquet (4·(1+λ)·ρ_red, behavioral) and SpillBound (D²+3D,
// structural).
type GuaranteeRow struct {
	// Query is the xD_Qz name.
	Query string
	// D is the epp count.
	D int
	// RhoRed is the max contour plan density after anorexic reduction.
	RhoRed int
	// PB and SB are the two guarantees.
	PB, SB float64
}

// Fig8 computes the MSO guarantee comparison over the full TPC-DS suite
// (paper Fig. 8).
func (l *Lab) Fig8() ([]GuaranteeRow, error) {
	var rows []GuaranteeRow
	for _, sp := range workload.TPCDSQueries() {
		row, err := l.guaranteeRow(sp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9 computes the guarantee-vs-dimensionality profile for Q91 with 2–6
// epps (paper Fig. 9).
func (l *Lab) Fig9() ([]GuaranteeRow, error) {
	var rows []GuaranteeRow
	for d := 2; d <= 6; d++ {
		row, err := l.guaranteeRow(workload.Q91(d))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (l *Lab) guaranteeRow(sp workload.Spec) (GuaranteeRow, error) {
	s, err := l.Space(sp)
	if err != nil {
		return GuaranteeRow{}, err
	}
	d, err := l.Diagram(sp)
	if err != nil {
		return GuaranteeRow{}, err
	}
	costs := s.ContourCosts(l.Config.Ratio)
	_, rho := bouquet.ContourDensities(s, d, costs)
	return GuaranteeRow{
		Query: sp.Name, D: sp.D, RhoRed: rho,
		PB: 4 * (1 + l.Config.Lambda) * float64(rho),
		SB: spillbound.Guarantee(sp.D),
	}, nil
}

// EmpiricalRow is one entry of Figs. 10/11/13: a per-query metric for two
// algorithms (MSO_e for Figs. 10/13, ASO for Fig. 11).
type EmpiricalRow struct {
	// Query is the xD_Qz name.
	Query string
	// D is the epp count.
	D int
	// A and B are the two algorithms' metric values (PB/SB for Figs.
	// 10-11, SB/AB for Fig. 13).
	A, B float64
	// Ref is a reference line value where the figure shows one (Fig. 13's
	// 2D+2 lower guarantee); zero otherwise.
	Ref float64
}

// Fig10 computes the empirical MSO comparison of PlanBouquet vs SpillBound
// over the suite (paper Fig. 10).
func (l *Lab) Fig10() ([]EmpiricalRow, error) {
	return l.empirical(func(sp workload.Spec) (float64, float64, float64, error) {
		s, err := l.Space(sp)
		if err != nil {
			return 0, 0, 0, err
		}
		d, err := l.Diagram(sp)
		if err != nil {
			return 0, 0, 0, err
		}
		pb := l.cachedSweep("pb:"+sp.Name, s, l.pbRun(d))
		sb := l.cachedSweep("sb:"+sp.Name, s, l.sbRun(s))
		return pb.MSO, sb.MSO, 0, nil
	})
}

// Fig11 computes the ASO comparison of PlanBouquet vs SpillBound (paper
// Fig. 11).
func (l *Lab) Fig11() ([]EmpiricalRow, error) {
	return l.empirical(func(sp workload.Spec) (float64, float64, float64, error) {
		s, err := l.Space(sp)
		if err != nil {
			return 0, 0, 0, err
		}
		d, err := l.Diagram(sp)
		if err != nil {
			return 0, 0, 0, err
		}
		pb := l.cachedSweep("pb:"+sp.Name, s, l.pbRun(d))
		sb := l.cachedSweep("sb:"+sp.Name, s, l.sbRun(s))
		return pb.ASO, sb.ASO, 0, nil
	})
}

// Fig13 computes the empirical MSO comparison of SpillBound vs AlignedBound
// with the 2D+2 reference line (paper Fig. 13).
func (l *Lab) Fig13() ([]EmpiricalRow, error) {
	return l.empirical(func(sp workload.Spec) (float64, float64, float64, error) {
		s, err := l.Space(sp)
		if err != nil {
			return 0, 0, 0, err
		}
		sb := l.cachedSweep("sb:"+sp.Name, s, l.sbRun(s))
		ab, _ := l.abSweep(sp.Name, s)
		return sb.MSO, ab.MSO, aligned.GuaranteeLower(sp.D), nil
	})
}

func (l *Lab) empirical(f func(workload.Spec) (a, b, ref float64, err error)) ([]EmpiricalRow, error) {
	var rows []EmpiricalRow
	for _, sp := range workload.TPCDSQueries() {
		a, b, ref, err := f(sp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EmpiricalRow{Query: sp.Name, D: sp.D, A: a, B: b, Ref: ref})
	}
	return rows, nil
}

// Fig12Result is the sub-optimality distribution of Fig. 12: histogram
// buckets (width 5) for PlanBouquet and SpillBound on 4D_Q91, extended
// with AlignedBound's distribution (which the paper defers to its
// technical report).
type Fig12Result struct {
	// Query is the profiled query (paper: 4D_Q91).
	Query string
	// PB, SB and AB are the per-algorithm histograms over the same
	// buckets.
	PB, SB, AB []metrics.Bucket
}

// Fig12 profiles the sub-optimality distribution over the ESS for 4D_Q91
// (paper Fig. 12; bucket width 5), plus AlignedBound's distribution.
func (l *Lab) Fig12() (Fig12Result, error) {
	sp := workload.Q91(4)
	s, err := l.Space(sp)
	if err != nil {
		return Fig12Result{}, err
	}
	d, err := l.Diagram(sp)
	if err != nil {
		return Fig12Result{}, err
	}
	pb := l.cachedSweep("pb:"+sp.Name, s, l.pbRun(d))
	sb := l.cachedSweep("sb:"+sp.Name, s, l.sbRun(s))
	ab, _ := l.abSweep(sp.Name, s)
	const width, buckets = 5.0, 8
	return Fig12Result{
		Query: sp.Name,
		PB:    metrics.Histogram(pb.SubOpt, width, buckets),
		SB:    metrics.Histogram(sb.SubOpt, width, buckets),
		AB:    metrics.Histogram(ab.SubOpt, width, buckets),
	}, nil
}

// RenderGuarantees renders Fig. 8/9 rows as an aligned text table.
func RenderGuarantees(title string, rows []GuaranteeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-10s %3s %6s %10s %10s\n", title, "query", "D", "ρ_red", "PB MSOg", "SB MSOg")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %3d %6d %10.1f %10.0f\n", r.Query, r.D, r.RhoRed, r.PB, r.SB)
	}
	return b.String()
}

// RenderEmpirical renders Fig. 10/11/13 rows; labels name the two columns.
func RenderEmpirical(title, labelA, labelB string, rows []EmpiricalRow) string {
	var b strings.Builder
	withRef := false
	for _, r := range rows {
		if r.Ref != 0 {
			withRef = true
		}
	}
	fmt.Fprintf(&b, "%s\n%-10s %3s %10s %10s", title, "query", "D", labelA, labelB)
	if withRef {
		fmt.Fprintf(&b, " %8s", "2D+2")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %3d %10.1f %10.1f", r.Query, r.D, r.A, r.B)
		if withRef {
			fmt.Fprintf(&b, " %8.0f", r.Ref)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderHistogram renders a Fig. 12 histogram pair.
func RenderHistogram(res Fig12Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sub-optimality distribution (%s)\n%-12s %10s %10s %10s\n",
		res.Query, "bucket", "PB %locs", "SB %locs", "AB %locs")
	for i := range res.PB {
		lo, hi := res.PB[i].Lo, res.PB[i].Hi
		label := fmt.Sprintf("[%.0f,%.0f)", lo, hi)
		if i == len(res.PB)-1 {
			label = fmt.Sprintf("[%.0f,inf)", lo)
		}
		ab := 0.0
		if i < len(res.AB) {
			ab = res.AB[i].Pct
		}
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %10.1f\n", label, res.PB[i].Pct, res.SB[i].Pct, ab)
	}
	return b.String()
}
