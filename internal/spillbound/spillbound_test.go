package spillbound

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/sqlmini"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
			{Name: "l_suppkey", Distinct: 1000, Min: 1, Max: 1000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "supplier", Rows: 1000, RowBytes: 60,
		Columns: []catalog.Column{
			{Name: "s_suppkey", Distinct: 1000, Min: 1, Max: 1000},
		},
	})
	return c
}

func build2D(t *testing.T, res int) *ess.Space {
	t.Helper()
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(2, res, 1e-6))
}

func build3D(t *testing.T, res int) *ess.Space {
	t.Helper()
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o, supplier s
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND l.l_suppkey = s.s_suppkey`)
	if err := q.MarkEPPs(
		"p.p_partkey = l.l_partkey",
		"l.l_orderkey = o.o_orderkey",
		"l.l_suppkey = s.s_suppkey",
	); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(3, res, 1e-6))
}

func TestGuaranteeFormula(t *testing.T) {
	cases := map[int]float64{1: 4, 2: 10, 3: 18, 4: 28, 5: 40, 6: 54}
	for d, want := range cases {
		if got := Guarantee(d); got != want {
			t.Errorf("Guarantee(%d) = %g, want %g", d, got, want)
		}
	}
}

func TestRunCompletes(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	for _, truth := range []cost.Location{
		{1e-6, 1e-6}, {1e-3, 1e-5}, {1, 1}, {1e-6, 1}, {0.03, 0.1},
	} {
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		if !out.Completed {
			t.Fatalf("truth %v: did not complete\n%s", truth, out.Trace())
		}
		if out.TotalCost <= 0 {
			t.Errorf("truth %v: non-positive cost", truth)
		}
	}
}

// TestMSOWithinStructuralBound is the paper's headline claim: for every
// true location in the ESS, SubOpt <= D²+3D (Theorem 4.5), here verified
// exhaustively over the grid for D=2 (bound 10).
func TestMSOWithinStructuralBound(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	g := s.Grid
	bound := Guarantee(2)
	worst := 0.0
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		subOpt := out.TotalCost / s.CostAt(ci)
		if subOpt > worst {
			worst = subOpt
		}
		if subOpt > bound {
			t.Fatalf("truth %v: SubOpt %.2f exceeds D²+3D = %g\n%s",
				truth, subOpt, bound, out.Trace())
		}
	}
	t.Logf("2D empirical MSO = %.2f (bound %g)", worst, bound)
	if worst < 1 {
		t.Error("MSO below 1 — accounting broken")
	}
}

func TestMSOWithinStructuralBound3D(t *testing.T) {
	s := build3D(t, 6)
	r := NewRunner(s)
	g := s.Grid
	bound := Guarantee(3)
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		subOpt := out.TotalCost / s.CostAt(ci)
		if subOpt > bound {
			t.Fatalf("truth %v: SubOpt %.2f exceeds D²+3D = %g\n%s",
				truth, subOpt, bound, out.Trace())
		}
	}
}

// TestCDIExecution checks contour-density-independent execution: within one
// visit of a contour (between learning events), at most one spill per free
// dimension is issued — i.e., per contour the number of fresh spill
// executions never exceeds D (Lemma 4.4's fresh-execution bound).
func TestCDIExecution(t *testing.T) {
	s := build3D(t, 6)
	r := NewRunner(s)
	g := s.Grid
	for ci := 0; ci < g.Size(); ci += 3 {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		fresh := map[int]int{}
		repeats := 0
		for _, x := range out.Executions {
			if x.Dim < 0 {
				continue
			}
			if x.Repeat {
				repeats++
			} else {
				fresh[x.Contour]++
			}
		}
		for contour, n := range fresh {
			if n > 3 {
				t.Fatalf("truth %v: contour %d has %d fresh spills (> D=3)\n%s",
					truth, contour, n, out.Trace())
			}
		}
		if repeats > 3 { // D(D-1)/2 = 3 for D=3
			t.Fatalf("truth %v: %d repeat executions (> D(D-1)/2 = 3)\n%s",
				truth, repeats, out.Trace())
		}
	}
}

// TestLemma41ExecutionCounts verifies Lemma 4.1 for 2D-SpillBound: at most
// two plans are executed from each explored contour, except for at most one
// contour in which at most three plans are executed (the contour where a
// selectivity is fully learnt and the 1-D PlanBouquet takes over).
func TestLemma41ExecutionCounts(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	g := s.Grid
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		out := r.Run(engine.New(s.Model, truth))
		perContour := map[int]int{}
		for _, x := range out.Executions {
			perContour[x.Contour]++
		}
		three := 0
		for contour, n := range perContour {
			if n > 3 {
				t.Fatalf("truth %v: contour %d has %d executions (>3)\n%s",
					truth, contour, n, out.Trace())
			}
			if n == 3 {
				three++
			}
		}
		if three > 1 {
			t.Fatalf("truth %v: %d contours with three executions (Lemma 4.1 allows one)\n%s",
				truth, three, out.Trace())
		}
	}
}

// TestMonotoneDiscovery verifies that the learned running location only
// moves toward the truth: every spill's Learned value is a valid lower
// bound, and completed spills learn the exact coordinate.
func TestMonotoneDiscovery(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	truth := cost.Location{0.01, 0.2}
	e := engine.New(s.Model, truth)
	out := r.Run(e)
	qrun := cost.Location{0, 0}
	for _, x := range out.Executions {
		if x.Dim < 0 {
			continue
		}
		if x.Learned < qrun[x.Dim]-1e-12 {
			t.Errorf("learning went backwards on dim %d: %g after %g", x.Dim, x.Learned, qrun[x.Dim])
		}
		if x.Learned > truth[x.Dim]+1e-12 {
			t.Errorf("dim %d learned %g beyond truth %g", x.Dim, x.Learned, truth[x.Dim])
		}
		if x.Completed && x.Learned != truth[x.Dim] {
			t.Errorf("completed spill learned %g, want exact %g", x.Learned, truth[x.Dim])
		}
		if x.Learned > qrun[x.Dim] {
			qrun[x.Dim] = x.Learned
		}
	}
	for d, sel := range out.LearnedSel {
		if sel != truth[d] {
			t.Errorf("LearnedSel[%d] = %g, want %g", d, sel, truth[d])
		}
	}
}

func TestTerminal1DPhaseIsRegularMode(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	e := engine.New(s.Model, cost.Location{0.04, 0.1})
	out := r.Run(e)
	sawSpill, saw1D := false, false
	for _, x := range out.Executions {
		if x.Dim >= 0 {
			sawSpill = true
			if saw1D {
				t.Error("spill execution after the 1-D phase began")
			}
		} else {
			saw1D = true
		}
	}
	if !sawSpill || !saw1D {
		t.Errorf("expected both phases: spill=%v 1D=%v\n%s", sawSpill, saw1D, out.Trace())
	}
	// The final execution completes the query in regular mode.
	last := out.Executions[len(out.Executions)-1]
	if last.Dim != -1 || !last.Completed {
		t.Errorf("last execution should be a completing regular run: %+v", last)
	}
}

func TestContoursNondecreasing(t *testing.T) {
	s := build3D(t, 6)
	r := NewRunner(s)
	e := engine.New(s.Model, cost.Location{1e-3, 1e-3, 1e-2})
	out := r.Run(e)
	prev := 0
	for _, x := range out.Executions {
		if x.Contour < prev {
			t.Fatalf("contour decreased: %d after %d\n%s", x.Contour, prev, out.Trace())
		}
		prev = x.Contour
	}
}

func TestDeterminism(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	truth := cost.Location{2e-4, 3e-3}
	a := r.Run(engine.New(s.Model, truth))
	b := r.Run(engine.New(s.Model, truth))
	if a.Trace() != b.Trace() || a.TotalCost != b.TotalCost {
		t.Error("SpillBound is not deterministic")
	}
}

func TestExecutionString(t *testing.T) {
	x := Execution{Contour: 1, Dim: 0, PlanID: 6, Budget: 4, Learned: 8e-4}
	if s := x.String(); !strings.Contains(s, "p6") || !strings.Contains(s, "IC2") {
		t.Errorf("spill String = %q", s)
	}
	x.Repeat = true
	if s := x.String(); !strings.Contains(s, "repeat") {
		t.Errorf("repeat String = %q", s)
	}
	reg := Execution{Contour: 0, Dim: -1, PlanID: 2, Budget: 10, Completed: true}
	if s := reg.String(); !strings.Contains(s, "P2") || !strings.Contains(s, "✓") {
		t.Errorf("regular String = %q", s)
	}
}

// TestLemma44RepeatBound4D checks Lemma 4.4's global repeat-execution bound
// D(D-1)/2 on a 4D instance (bound 6) over the whole grid.
func TestLemma44RepeatBound4D(t *testing.T) {
	s := build4D(t, 5)
	r := NewRunner(s)
	g := s.Grid
	bound := 4 * 3 / 2
	for ci := 0; ci < g.Size(); ci += 2 {
		out := r.Run(engine.New(s.Model, g.Location(ci)))
		repeats := 0
		perContourFresh := map[int]int{}
		for _, x := range out.Executions {
			if x.Dim < 0 {
				continue
			}
			if x.Repeat {
				repeats++
			} else {
				perContourFresh[x.Contour]++
			}
		}
		if repeats > bound {
			t.Fatalf("cell %d: %d repeats exceed D(D-1)/2=%d\n%s", ci, repeats, bound, out.Trace())
		}
		for contour, n := range perContourFresh {
			if n > 4 {
				t.Fatalf("cell %d contour %d: %d fresh spills (> D)", ci, contour, n)
			}
		}
	}
}

func build4D(t *testing.T, res int) *ess.Space {
	t.Helper()
	c := testCatalog()
	c.MustAddTable(&catalog.Table{
		Name: "nation", Rows: 25, RowBytes: 30,
		Columns: []catalog.Column{{Name: "n_key", Distinct: 25, Min: 1, Max: 25}},
	})
	q := sqlmini.MustParse(c, `
		SELECT * FROM part p, lineitem l, orders o, supplier s, nation n
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND l.l_suppkey = s.s_suppkey AND s.s_suppkey = n.n_key`)
	if err := q.MarkEPPs(
		"p.p_partkey = l.l_partkey",
		"l.l_orderkey = o.o_orderkey",
		"l.l_suppkey = s.s_suppkey",
		"s.s_suppkey = n.n_key",
	); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(4, res, 1e-6))
}
