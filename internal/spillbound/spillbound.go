// Package spillbound implements the SpillBound algorithm (paper Sec 4),
// the core contribution: contour-wise selectivity discovery in which, on
// each contour and for each unlearned error-prone predicate e_j, the plan
// P^j_max offering the maximal guaranteed learning along dimension j is
// executed in spill-mode under the contour budget. Half-space pruning
// (Lemma 3.1) and contour-density-independent execution (Lemma 3.2/4.3)
// yield the platform-independent guarantee MSO <= D² + 3D (Theorem 4.5).
package spillbound

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/bouquet"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/runstate"
	"repro/internal/telemetry"
)

// Guarantee returns SpillBound's structural MSO bound D²+3D (Theorem 4.5),
// computable by query inspection alone.
func Guarantee(d int) float64 { return float64(d*d + 3*d) }

// Execution records one budgeted execution performed by SpillBound: a
// spill-mode execution on some dimension, or a regular execution during the
// terminal 1-D PlanBouquet phase.
type Execution struct {
	// Contour is the contour index explored.
	Contour int
	// Dim is the ESS dimension spilled on, or -1 for a regular execution.
	Dim int
	// PlanID is the executed plan's POSP index.
	PlanID int
	// CellLoc is the contour location whose plan was chosen.
	CellLoc cost.Location
	// Budget and Spent are the assigned and charged costs.
	Budget, Spent float64
	// Completed reports full completion (of the subtree for spills, of the
	// query for regular executions).
	Completed bool
	// Learned is the selectivity information gained on Dim (exact value or
	// monitoring lower bound); zero for regular executions.
	Learned float64
	// Repeat marks a repeat execution: the dimension had already been
	// spilled on this contour, and its P^j_max changed after another epp
	// was fully learnt (paper Sec 4.2).
	Repeat bool
}

// String renders the execution in the paper's trace notation (lowercase p
// for spill-mode).
func (x Execution) String() string {
	if x.Dim < 0 {
		mark := "✗"
		if x.Completed {
			mark = "✓"
		}
		return fmt.Sprintf("IC%d: P%d|%.4g %s", x.Contour+1, x.PlanID, x.Budget, mark)
	}
	tag := ""
	if x.Repeat {
		tag = " (repeat)"
	}
	return fmt.Sprintf("IC%d: p%d|%.4g spill dim %d → %.3g%s",
		x.Contour+1, x.PlanID, x.Budget, x.Dim, x.Learned, tag)
}

// Outcome is a full SpillBound run.
type Outcome struct {
	// Executions lists every budgeted execution in order.
	Executions []Execution
	// TotalCost is the summed charged cost — the numerator of Eq. (3).
	TotalCost float64
	// Completed reports whether the query finished (always true under PCM).
	Completed bool
	// LearnedSel holds the exact selectivities discovered, indexed by
	// dimension; entries for dimensions resolved by the terminal 1-D phase
	// are the phase's implicit discovery and remain NaN-free only when
	// individually learnt.
	LearnedSel map[int]float64
}

// Trace renders the execution list, one line each.
func (o Outcome) Trace() string {
	var b strings.Builder
	for _, x := range o.Executions {
		b.WriteString(x.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner executes SpillBound over a prebuilt ESS.
type Runner struct {
	// Space is the explored ESS.
	Space *ess.Space
	// Ratio is the contour cost ratio (the paper's default doubling).
	Ratio float64
	// Resume, when non-nil, restarts the discovery from a checkpointed
	// state instead of from scratch: the contour index and the learnt
	// selectivities (and hence the pruned half-spaces, Lemma 3.1) are
	// restored before the first execution. The outcome then reports only
	// the resumed incarnation's new executions and spend; the caller owns
	// the carried-over budget ledger (Resume.Spent).
	Resume *runstate.Discovery
}

// NewRunner returns a Runner with the paper's default cost-doubling
// contours.
func NewRunner(s *ess.Space) *Runner {
	return &Runner{Space: s, Ratio: ess.CostDoublingRatio}
}

// maxCell identifies q^j_max and P^j_max for dimension dim on the contour
// cells (paper Sec 3.2): among the cells whose optimal plan spills on dim
// (under the learned set), the one with the maximum dim-coordinate.
// ok is false when no contour plan spills on the dimension.
func (r *Runner) maxCell(cells []int, dim int, learned map[int]bool) (cell int, ok bool) {
	s := r.Space
	epps := s.Query.EPPs
	bestCoord := -1
	for _, ci := range cells {
		p := s.PlanAt(ci)
		tgt, has := p.SpillTarget(epps, learned)
		if !has {
			continue
		}
		d, isEPP := s.Query.IsEPP(tgt.JoinID)
		if !isEPP || d != dim {
			continue
		}
		if c := s.Grid.Coord(ci, dim); c > bestCoord {
			bestCoord = c
			cell = ci
		}
	}
	return cell, bestCoord >= 0
}

// Run performs SpillBound discovery against the engine's hidden true
// location and returns the full outcome (Algorithm 1).
func (r *Runner) Run(e engine.Executor) Outcome {
	out, _ := r.RunContext(context.Background(), e)
	return out
}

// RunContext is Run with cancellation and error-aware execution: the
// context is checked at every contour iteration and spill boundary, and on
// abort the partial outcome is returned with the error so the caller can
// degrade (fall back to the Native plan) or propagate the cancellation.
func (r *Runner) RunContext(ctx context.Context, e engine.Executor) (Outcome, error) {
	ce := engine.AsContextExecutor(e)
	rec := telemetry.From(ctx)
	s := r.Space
	g := s.Grid
	costs := s.ContourCosts(r.Ratio)
	learned := make(map[int]bool)       // by join ID (plan.SpillTarget keys)
	learnedDim := make(map[int]bool)    // by ESS dimension
	learnedSel := make(map[int]float64) // by ESS dimension
	sub := s.Full()
	out := Outcome{LearnedSel: learnedSel}

	// spilledOnContour tracks which dimensions already had a spill on the
	// current contour, to label repeat executions.
	spilledOnContour := make(map[int]bool)
	contourOfSpills := -1

	start := 0
	if r.Resume != nil {
		// Restore the checkpointed monotone state: the contour about to be
		// explored and every fully learnt selectivity with its half-space
		// prune. Discovery from here on is identical to the uninterrupted
		// run's tail — the state is monotone, so the snapshot is always a
		// valid (merely conservative) restart point.
		start = r.Resume.Contour
		if start > len(costs)-1 {
			start = len(costs) - 1
		}
		for dim, sel := range r.Resume.Learned {
			learned[s.Query.EPPs[dim]] = true
			learnedDim[dim] = true
			learnedSel[dim] = sel
			sub = sub.Fix(dim, g.CeilIndex(dim, sel))
		}
	}

	for i := start; i < len(costs); {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		free := sub.FreeDims()
		if len(free) == 1 {
			// Terminal 1-D phase: plain PlanBouquet over the remaining
			// dimension, starting from the current contour, in regular
			// (non-spill) mode — spilling in 1-D weakens the bound.
			tail, err := bouquet.RunSubspaceContext(ctx, s, s, ce, costs, i, sub, 1)
			for _, st := range tail.Steps {
				out.Executions = append(out.Executions, Execution{
					Contour: st.Contour, Dim: -1, PlanID: st.PlanID,
					Budget: st.Budget, Spent: st.Spent, Completed: st.Completed,
				})
			}
			out.TotalCost += tail.TotalCost
			out.Completed = tail.Completed
			return out, err
		}

		// Contour-iteration boundary: persist the monotone discovery state
		// (and give the crash-point injector its window). Re-explorations of
		// the same contour after a prune checkpoint again — the learnt set
		// grew, so the restart point improved.
		if err := runstate.Checkpoint(ctx, i); err != nil {
			return out, err
		}

		if i != contourOfSpills {
			contourOfSpills = i
			spilledOnContour = make(map[int]bool)
		}
		rec.EnterContour(i + 1)

		cells := sub.ContourCellsCached(costs[i])
		if len(cells) == 0 {
			i++
			continue
		}
		progressed := false
		for _, dim := range free {
			cell, ok := r.maxCell(cells, dim, learned)
			if !ok {
				continue // no contour plan spills on this epp: skip it
			}
			p := s.PlanAt(cell)
			res, ok, err := ce.ExecuteSpillCtx(ctx, p, dim, costs[i])
			if err != nil && !engine.IsBudgetAbort(err) {
				return out, err
			}
			if !ok {
				continue
			}
			// A watchdog budget abort is an incomplete spill, not a failed
			// run: the clamped charge and the partial monitoring bound are
			// recorded below and discovery moves on (next dim, then next
			// contour per Lemma 4.3).
			x := Execution{
				Contour: i, Dim: dim, PlanID: s.PlanIDAt(cell),
				CellLoc: g.Location(cell), Budget: costs[i],
				Spent: res.Spent, Completed: res.Completed, Learned: res.Learned,
				Repeat: spilledOnContour[dim],
			}
			spilledOnContour[dim] = true
			out.Executions = append(out.Executions, x)
			out.TotalCost += res.Spent
			runstate.Spend(ctx, res.Spent)
			rec.Record(telemetry.Event{
				Kind: telemetry.SpillExec, Contour: i + 1, Dim: dim, PlanID: x.PlanID,
				Budget: x.Budget, Spent: x.Spent, Completed: x.Completed,
				Learned: x.Learned, Repeat: x.Repeat,
			})
			if res.Completed {
				// Selectivity fully learnt: restrict the effective search
				// space and re-explore the same contour with the reduced
				// EPP set (Algorithm 1's break).
				learned[s.Query.EPPs[dim]] = true
				learnedDim[dim] = true
				learnedSel[dim] = res.Learned
				sub = sub.Fix(dim, g.CeilIndex(dim, res.Learned))
				runstate.Learn(ctx, dim, res.Learned)
				rec.Record(telemetry.Event{
					Kind: telemetry.HalfSpacePrune, Contour: i + 1, Dim: dim, Learned: res.Learned,
				})
				progressed = true
				break
			}
			runstate.Bound(ctx, dim, res.Learned)
		}
		if !progressed {
			i++ // quantum progress: jump to the next contour (Lemma 4.3)
		}
	}

	// Unreachable under PCM (the final contour's spills complete, reducing
	// to the 1-D phase); kept as a defensive fallback mirroring
	// bouquet.RunSubspace's guard.
	ci := sub.MaxCorner()
	p := s.PlanAt(ci)
	res, err := ce.ExecuteCtx(ctx, p, math.Inf(1))
	if err != nil {
		return out, err
	}
	rec.Record(telemetry.Event{
		Kind: telemetry.PlanExec, Contour: len(costs), Dim: -1, PlanID: s.PlanIDAt(ci),
		Budget: res.Spent, Spent: res.Spent, Completed: true,
	})
	out.Executions = append(out.Executions, Execution{
		Contour: len(costs) - 1, Dim: -1, PlanID: s.PlanIDAt(ci),
		Budget: res.Spent, Spent: res.Spent, Completed: true,
	})
	out.TotalCost += res.Spent
	runstate.Spend(ctx, res.Spent)
	out.Completed = true
	return out, nil
}
