package spillbound

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/plan"
)

// TestMSOUnderCostModelError validates paper Sec 7: with cost-model errors
// bounded within a δ factor, the MSO guarantee carries through inflated by
// (1+δ)² — i.e. MSO ≤ (D²+3D)(1+δ)². Exhaustive over the 2D grid for
// several δ values and error seeds (the injected factors are log-uniform in
// [1/(1+δ), 1+δ], so the bound applies).
func TestMSOUnderCostModelError(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	g := s.Grid
	for _, delta := range []float64{0.1, 0.3, 0.5} {
		bound := Guarantee(2) * (1 + delta) * (1 + delta)
		for seed := uint64(1); seed <= 3; seed++ {
			errFn := engine.DeterministicCostError(delta, seed)
			worst := 0.0
			for ci := 0; ci < g.Size(); ci++ {
				truth := g.Location(ci)
				e := engine.New(s.Model, truth)
				e.CostError = errFn
				out := r.Run(e)
				if !out.Completed {
					t.Fatalf("δ=%g seed=%d truth %v: did not complete", delta, seed, truth)
				}
				// The oracle in the perturbed world can itself be up to
				// (1+δ) cheaper than the model's optimal cost; comparing
				// against the model optimum is therefore conservative in
				// the denominator and the (1+δ)² inflation absorbs it.
				so := out.TotalCost / (s.CostAt(ci) / (1 + delta))
				if so > worst {
					worst = so
				}
			}
			if worst > bound {
				t.Errorf("δ=%g seed=%d: MSO %.2f exceeds (D²+3D)(1+δ)² = %.2f",
					delta, seed, worst, bound)
			}
			t.Logf("δ=%g seed=%d: MSO %.2f (inflated bound %.2f)", delta, seed, worst, bound)
		}
	}
}

// TestCostErrorExercisesFallbacks makes sure severely pessimistic models —
// where even the final contour's budgets can expire — still complete, via
// the defensive unbudgeted fallbacks if needed, with costs fully accounted.
func TestCostErrorExercisesFallbacks(t *testing.T) {
	s := build2D(t, 8)
	r := NewRunner(s)
	g := s.Grid
	for ci := 0; ci < g.Size(); ci += 3 {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		e.CostError = func(_ *plan.Plan) float64 { return 3.0 } // 3× slower than modeled
		out := r.Run(e)
		if !out.Completed {
			t.Fatalf("truth %v: severely pessimistic run did not complete\n%s", truth, out.Trace())
		}
		if out.TotalCost <= 0 {
			t.Fatalf("truth %v: unaccounted cost", truth)
		}
	}
}
