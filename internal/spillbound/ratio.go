package spillbound

// Contour cost-ratio analysis (paper Sec 4.2, Remark): with a geometric
// contour ratio r instead of the expository doubling, SpillBound's
// worst-case analysis gives
//
//	MSO(D, r) <= D·r²/(r-1) + D(D-1)/2·r
//
// (the D fresh executions per contour pay the geometric series
// sum_{i<=k+1} r^{i-1} <= r²·r^{k-1}/(r-1), the D(D-1)/2 repeats pay
// r·r^{k-1} each, and the oracle pays at least r^{k-1}·CC1). At r=2 this is
// exactly D²+3D (Theorem 4.5); the paper notes r≈1.8 improves the 2D bound
// from 10 to 9.9, with only marginal gains at higher D.

// GuaranteeWithRatio returns SpillBound's MSO bound under contour cost
// ratio r (> 1). GuaranteeWithRatio(d, 2) equals Guarantee(d).
func GuaranteeWithRatio(d int, r float64) float64 {
	if r <= 1 {
		panic("spillbound: contour ratio must exceed 1")
	}
	fd := float64(d)
	return fd*r*r/(r-1) + fd*(fd-1)/2*r
}

// OptimalRatio returns the contour ratio minimizing GuaranteeWithRatio for
// the given dimensionality, along with the minimized bound. The minimizer
// solves (D/((r-1)²))·(r²-2r) + D(D-1)/2 = 0; a ternary search over
// (1, 4] is used since the bound is strictly unimodal there.
func OptimalRatio(d int) (ratio, bound float64) {
	lo, hi := 1.0001, 4.0
	for i := 0; i < 200; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if GuaranteeWithRatio(d, m1) < GuaranteeWithRatio(d, m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	ratio = (lo + hi) / 2
	return ratio, GuaranteeWithRatio(d, ratio)
}
