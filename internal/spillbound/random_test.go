package spillbound

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// TestStructuralBoundOnRandomQueries is the capstone property test of the
// paper's Theorem 4.5: the D²+3D bound is *structural* — it must hold for
// any SPJ query, not just the curated benchmark suite. Random acyclic
// queries over the TPC-DS catalog are drawn, their ESS built on a small
// grid, and SpillBound swept exhaustively; every run must complete within
// the bound.
func TestStructuralBoundOnRandomQueries(t *testing.T) {
	cat := catalog.TPCDS(1)
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		q, err := workload.Random(cat, rng, workload.GenOptions{
			Relations:  2 + rng.Intn(4),
			EPPs:       1 + rng.Intn(3),
			MaxFilters: 2,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m, err := cost.NewModel(q, cost.PostgresLike())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		o, err := optimizer.New(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := []int{0, 0, 10, 6, 4}[q.D()] // per-D grid resolution
		if res == 0 {
			res = 10
		}
		s := ess.Build(o, ess.NewGrid(q.D(), res, 1e-6))
		r := NewRunner(s)
		bound := Guarantee(q.D())
		g := s.Grid
		for ci := 0; ci < g.Size(); ci++ {
			truth := g.Location(ci)
			out := r.Run(engine.New(s.Model, truth))
			if !out.Completed {
				t.Fatalf("trial %d (%s) truth %v: did not complete",
					trial, workload.Describe(q), truth)
			}
			if so := out.TotalCost / s.CostAt(ci); so > bound {
				t.Fatalf("trial %d (%s) truth %v: SubOpt %.2f exceeds D²+3D=%g\n%s",
					trial, workload.Describe(q), truth, so, bound, out.Trace())
			}
		}
	}
}
