package spillbound

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/engine"
)

func TestGuaranteeWithRatioReducesToTheorem(t *testing.T) {
	for d := 1; d <= 8; d++ {
		if got, want := GuaranteeWithRatio(d, 2), Guarantee(d); math.Abs(got-want) > 1e-9 {
			t.Errorf("D=%d: GuaranteeWithRatio(2) = %g, want %g", d, got, want)
		}
	}
}

// TestOptimalRatio2D reproduces the paper's Sec 4.2 remark: "a factor of
// 1.8 improves SpillBound's MSO guarantee from 10 to 9.9 in the 2D case".
func TestOptimalRatio2D(t *testing.T) {
	r, b := OptimalRatio(2)
	if math.Abs(r-1.8165) > 0.01 {
		t.Errorf("optimal 2D ratio = %.4f, want ≈1.8165", r)
	}
	if math.Abs(b-9.899) > 0.01 {
		t.Errorf("optimal 2D bound = %.4f, want ≈9.899", b)
	}
	if approx := GuaranteeWithRatio(2, 1.8); approx > 9.91 || approx < 9.89 {
		t.Errorf("bound at r=1.8 = %.4f, want ≈9.9", approx)
	}
}

// TestMarginalImprovementAtHigherD checks the remark's second half: "only
// marginal improvements are obtained with these ideal factors for the ESS
// dimensionalities considered in our study" (D up to 6).
func TestMarginalImprovementAtHigherD(t *testing.T) {
	for d := 2; d <= 6; d++ {
		_, opt := OptimalRatio(d)
		std := Guarantee(d)
		gain := (std - opt) / std
		if opt > std+1e-9 {
			t.Errorf("D=%d: optimal bound %g worse than doubling %g", d, opt, std)
		}
		if gain > 0.10 {
			t.Errorf("D=%d: gain %.1f%% is not marginal", d, gain*100)
		}
	}
}

func TestGuaranteeWithRatioUnimodal(t *testing.T) {
	// Sanity: the bound blows up toward r→1⁺ and grows for large r, and
	// the ternary-search optimum beats nearby ratios.
	for d := 2; d <= 6; d++ {
		rStar, bStar := OptimalRatio(d)
		for _, dr := range []float64{-0.3, -0.1, 0.1, 0.3} {
			r := rStar + dr
			if r <= 1 {
				continue
			}
			if GuaranteeWithRatio(d, r) < bStar-1e-9 {
				t.Errorf("D=%d: r=%.3f beats the reported optimum %.3f", d, r, rStar)
			}
		}
	}
}

func TestGuaranteeWithRatioQuick(t *testing.T) {
	f := func(du uint8, ru uint16) bool {
		d := int(du%8) + 1
		r := 1.05 + float64(ru)/65535*3 // (1.05, 4.05)
		b := GuaranteeWithRatio(d, r)
		return b > 0 && !math.IsInf(b, 0) && !math.IsNaN(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuaranteeWithRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ratio <= 1 should panic")
		}
	}()
	GuaranteeWithRatio(2, 1)
}

// TestRunWithNonDoublingRatio executes SpillBound under r=1.8 and verifies
// the generalized bound holds empirically, exhaustively over the 2D grid.
func TestRunWithNonDoublingRatio(t *testing.T) {
	s := build2D(t, 10)
	r := &Runner{Space: s, Ratio: 1.8}
	g := s.Grid
	bound := GuaranteeWithRatio(2, 1.8)
	worst := 0.0
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		if !out.Completed {
			t.Fatalf("truth %v: did not complete", truth)
		}
		so := out.TotalCost / s.CostAt(ci)
		if so > worst {
			worst = so
		}
		if so > bound {
			t.Fatalf("truth %v: SubOpt %.2f exceeds r=1.8 bound %.2f\n%s", truth, so, bound, out.Trace())
		}
	}
	t.Logf("2D MSOe at r=1.8: %.2f (bound %.2f)", worst, bound)
}

func TestRatioAffectsContourCount(t *testing.T) {
	s := build2D(t, 10)
	if len(s.ContourCosts(1.5)) <= len(s.ContourCosts(2.0)) {
		t.Error("smaller ratio should produce more contours")
	}
	_ = cost.Location{} // keep import for symmetry with sibling tests
}
