// Package fleet turns N rqpd processes into one fault-tolerant session
// fabric. Distribution is a backend, not a behavior change (the Cascading
// model): the library and the single-node server are byte-identical, and
// this package only decides WHERE a session lives and WHO picks up its
// durable runs when that place dies.
//
//   - Membership: a static -peers list probed by periodic heartbeats with
//     mark-down/mark-up hysteresis and probe backoff (membership.go).
//   - Placement: consistent-hash routing of session IDs over the live peer
//     set (ring.go); any node answers any request, transparently proxying
//     to the owner with deadline/traceparent/X-Request-ID propagation, a
//     per-class retry budget and a single hedge for idempotent reads
//     (proxy.go).
//   - Failover: when a heartbeat declares an owner dead, the next hash
//     owner adopts the session from the shared data dir and resumes its
//     interrupted durable runs; an ownership epoch stamped into every
//     runstate snapshot fences out the dead owner's late checkpoints
//     (failover.go, internal/runstate/epoch.go).
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config wires one node into the fabric. Zero durations and counts take the
// defaults noted per field.
type Config struct {
	// Self is the address peers reach this node at (host:port); it must
	// appear in Peers.
	Self string
	// Peers is the full static fleet, self included.
	Peers []string
	// DataDir is the SHARED durable data directory — every node must see
	// the same filesystem, it is what makes any-node failover possible.
	DataDir string
	// HeartbeatInterval is the probe cadence (default 1s).
	HeartbeatInterval time.Duration
	// ProbeTimeout is the per-probe HTTP budget (default interval/2).
	ProbeTimeout time.Duration
	// MarkDown / MarkUp are the hysteresis thresholds: consecutive probe
	// failures to take a peer down (default 3) and consecutive successes
	// to bring it back (default 2).
	MarkDown int
	MarkUp   int
	// MaxBackoff caps the probe backoff while a peer is down (default
	// 8×interval).
	MaxBackoff time.Duration
	// ProxyTimeout bounds one proxied request, hedges included (default
	// 30s).
	ProxyTimeout time.Duration
	// HedgeDelay is how long an idempotent read waits on the owner before
	// launching its single hedge request (default 150ms; negative disables
	// hedging).
	HedgeDelay time.Duration
	// Replicas is the virtual-node count per ring member (default 64).
	Replicas int
	// ShedPressure is the owner-pressure threshold at or above which the
	// proxy rejects at the edge instead of forwarding — the cheapest
	// rejection point, sparing the saturated owner the request entirely
	// (default 0.9; ≥ 1 never edge-sheds on pressure alone).
	ShedPressure float64
	// HedgePressure is the owner-pressure threshold at or above which
	// hedging is suppressed: a hedge against a struggling owner is pure
	// load amplification (default 0.6).
	HedgePressure float64
	// RetryBudget caps the wire attempts (primary + retry + hedge) one
	// request may spend across the fleet, and is threaded through the
	// X-Rqp-Retry-Budget header so client-side retry storms cannot fan out
	// unboundedly (default 3). An incoming header may lower the cap for a
	// given request, never raise it.
	RetryBudget int
}

// withDefaults returns the config with unset knobs defaulted.
func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.HeartbeatInterval / 2
	}
	if c.MarkDown < 1 {
		c.MarkDown = 3
	}
	if c.MarkUp < 1 {
		c.MarkUp = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.HeartbeatInterval
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 150 * time.Millisecond
	}
	if c.Replicas < 1 {
		c.Replicas = defaultReplicas
	}
	if c.ShedPressure <= 0 {
		c.ShedPressure = 0.9
	}
	if c.HedgePressure <= 0 {
		c.HedgePressure = 0.6
	}
	if c.RetryBudget < 1 {
		c.RetryBudget = 3
	}
	return c
}

// Node is one fleet member: the local server plus membership, routing and
// failover. Construct with New, start probing with Start, mount Handler.
type Node struct {
	cfg        Config
	srv        *server.Server
	membership *Membership
	inner      http.Handler
	client     *http.Client

	// plan is the node-local chaos plan; its heartbeat-drop toggle makes
	// this node look partitioned without stopping it (POST /v1/fleet/faults).
	plan *faults.Plan

	// The membership event stream: every down/up transition and failover
	// adoption records here, and the derived fleet trace (trace.FromFleet)
	// is re-published into the server's trace store after each event — a
	// flamegraph-able membership timeline under fleetTraceID.
	rec          *telemetry.Recorder
	fleetTraceID string

	metrics fleetMetrics

	ringMu sync.Mutex
	ring   *Ring

	adoptMu  sync.Mutex
	adopting map[string]bool

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// fleetMetrics are the fabric's instruments, registered on the SERVER's
// registry so one /v1/metrics scrape covers both layers.
type fleetMetrics struct {
	peersLive  *telemetry.Gauge
	proxy      *telemetry.CounterVec
	proxySheds *telemetry.CounterVec
	failovers  *telemetry.Counter
	hedges     *telemetry.Counter
}

// New wires a node over its server. The server must share cfg.DataDir, and
// cfg.Self must appear in cfg.Peers.
func New(cfg Config, srv *server.Server) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("fleet: Self address required")
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("fleet: shared DataDir required (any-node failover resumes from it)")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("fleet: Self %q missing from Peers %v", cfg.Self, cfg.Peers)
	}
	n := &Node{
		cfg:      cfg,
		srv:      srv,
		inner:    srv.Handler(),
		plan:     &faults.Plan{},
		rec:      telemetry.NewRecorder(),
		adopting: map[string]bool{},
		stop:     make(chan struct{}),
		client: &http.Client{
			// No overall client timeout: per-request contexts carry the
			// proxy deadline, and hedged requests share one budget.
			Transport: &http.Transport{MaxIdleConnsPerHost: 16},
		},
	}
	n.fleetTraceID = trace.New().TraceID
	reg := srv.Metrics()
	n.metrics = fleetMetrics{
		peersLive: reg.Gauge("rqp_peers_live",
			"Fleet members currently considered live (self included)."),
		proxy: reg.CounterVec("rqp_proxy_requests_total",
			"Requests proxied to a peer by outcome (ok, client_error, shed, error).", "outcome"),
		proxySheds: reg.CounterVec("rqp_proxy_sheds_total",
			"Requests rejected at the proxy edge before reaching the owner, by reason (pressure, retry_budget).",
			"reason"),
		failovers: reg.Counter("rqp_failovers_total",
			"Orphaned durable runs resumed by this node after their owner was marked down."),
		hedges: reg.Counter("rqp_hedges_total",
			"Hedge requests launched for slow idempotent reads."),
	}
	// Pre-touch the edge-shed reasons so the family renders before the
	// first rejection (drills scrape deltas).
	n.metrics.proxySheds.With("pressure").Add(0)
	n.metrics.proxySheds.With("retry_budget").Add(0)
	// Fleet-aware overload hooks: the server's brownout tick folds in the
	// fleet pressure aggregate, and stage transitions are recorded into the
	// membership timeline (zero-width markers under the fleet trace ID).
	srv.SetFleetPressure(n.fleetPressureAggregate)
	srv.OnBrownoutStage(func(from, to int) {
		n.rec.Record(telemetry.Event{Kind: telemetry.BrownoutStage, Contour: to, Dim: from, Detail: n.cfg.Self})
		n.publishFleetTrace()
	})
	n.membership = newMembership(cfg.Self, cfg.Peers, cfg.HeartbeatInterval, cfg.ProbeTimeout,
		cfg.MaxBackoff, cfg.MarkDown, cfg.MarkUp, n.onTransition)
	n.metrics.peersLive.Set(float64(n.membership.LiveCount()))
	n.rebuildRing()
	return n, nil
}

// Start launches heartbeat probing, the initial orphan scan (adopting the
// share of on-disk sessions this node owns at boot), and the periodic
// rescan that catches sessions orphaned while this node was between
// transitions.
func (n *Node) Start() {
	n.membership.start()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.scanOrphans()
		t := time.NewTicker(2 * n.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				n.scanOrphans()
			}
		}
	}()
}

// Close stops probing and background scans.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.stop)
		n.membership.close()
	})
	n.wg.Wait()
}

// FleetTraceID returns the trace ID the membership timeline is published
// under (GET /v1/runs/{id}/trace renders it like any run trace).
func (n *Node) FleetTraceID() string { return n.fleetTraceID }

// onTransition handles one heartbeat hysteresis crossing: rebuild the ring,
// emit the zero-width trace marker, update gauges, and — on a mark-down —
// immediately scan for the dead peer's orphaned sessions.
func (n *Node) onTransition(addr string, live bool) {
	n.rebuildRing()
	n.metrics.peersLive.Set(float64(n.membership.LiveCount()))
	kind := telemetry.PeerDown
	if live {
		kind = telemetry.PeerUp
	}
	n.rec.Record(telemetry.Event{Kind: kind, Dim: -1, Detail: addr})
	n.publishFleetTrace()
	if !live {
		// The dead peer's sessions re-hash to survivors NOW; adopt this
		// node's share without waiting for the periodic rescan.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.scanOrphans()
		}()
	}
}

// publishFleetTrace re-derives the membership span tree and stores it.
func (n *Node) publishFleetTrace() {
	n.srv.RecordTrace(trace.FromFleet(n.fleetTraceID, n.rec.Events()))
}

// rebuildRing recomputes the consistent-hash ring over the live peer set.
func (n *Node) rebuildRing() {
	ring := NewRing(n.membership.Live(), n.cfg.Replicas)
	n.ringMu.Lock()
	n.ring = ring
	n.ringMu.Unlock()
}

// owner returns the live node owning a session key.
func (n *Node) owner(key string) string {
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	return n.ring.Owner(key)
}

// Handler mounts the fleet surface over the server's /v1 API:
//
//	GET  /v1/fleet/health  heartbeat endpoint (fault-injectable)
//	GET  /v1/fleet/peers   membership snapshot + ring + fleet trace ID
//	GET  /v1/fleet/route   ?key=X → the key's current owner
//	POST /v1/fleet/faults  chaos toggles (heartbeat dropping)
//
// plus ownership routing for every session-scoped request: serve locally
// when this node owns the session (adopting it first if it is orphaned on
// the shared disk), proxy to the owner otherwise.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/fleet/health", n.handleHealth)
	mux.HandleFunc("GET /v1/fleet/peers", n.handlePeers)
	mux.HandleFunc("GET /v1/fleet/vitals", n.handleVitals)
	mux.HandleFunc("GET /v1/fleet/route", n.handleRoute)
	mux.HandleFunc("POST /v1/fleet/faults", n.handleFaults)
	mux.HandleFunc("/", n.route)
	return mux
}

// fleetJSON writes a fleet-endpoint JSON response (the fleet surface sits
// outside the server's middleware, so it stamps its own trace identity).
func (n *Node) fleetJSON(w http.ResponseWriter, status int, v any) {
	if w.Header().Get("X-Request-ID") == "" {
		tp := trace.New()
		w.Header().Set("Traceparent", tp.Header())
		w.Header().Set("X-Request-ID", tp.TraceID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleHealth answers heartbeat probes. It consults the node's chaos plan
// first: with heartbeat dropping injected, the node answers 503 — alive but
// unreachable as far as the fleet can tell, the asymmetric-partition case.
// Healthy responses piggyback the node's load vitals: heartbeats ARE the
// gossip channel, so saturation news travels at probe cadence with zero
// extra traffic.
func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	if err := n.plan.OnHeartbeat(); err != nil {
		n.fleetJSON(w, http.StatusServiceUnavailable, map[string]string{
			"node": n.cfg.Self, "status": "partitioned", "error": err.Error(),
		})
		return
	}
	v := n.srv.Vitals()
	v.Node = n.cfg.Self
	n.fleetJSON(w, http.StatusOK, healthResponse{Node: n.cfg.Self, Status: "ok", Vitals: &v})
}

// handleVitals serves the node's fleet-wide load view: its own vitals, every
// fresh gossiped peer snapshot, and the derived pressure figures feeding the
// brownout controller — the operator's window into WHY a stage moved.
func (n *Node) handleVitals(w http.ResponseWriter, r *http.Request) {
	self := n.srv.Vitals()
	self.Node = n.cfg.Self
	peers := n.membership.PeerVitalsSnapshot()
	peerOut := map[string]any{}
	for addr, v := range peers {
		peerOut[addr] = map[string]any{"vitals": v, "pressure": v.Pressure()}
	}
	n.fleetJSON(w, http.StatusOK, map[string]any{
		"self":          self,
		"selfPressure":  self.Pressure(),
		"peers":         peerOut,
		"fleetPressure": n.fleetPressureAggregate(),
		"brownoutStage": n.srv.Stage(),
	})
}

// fleetPressureAggregate folds the fresh gossiped peer pressures into one
// scalar: the mean over peers with known vitals (0 when nothing is fresh —
// unknown load must not brown the node out). The brownout tick maxes this
// with the node's own local pressure, so a node browns out when IT is
// saturated or when the fleet around it is drowning — the latter matters
// because proxied load re-hashes to survivors the moment an owner dies.
func (n *Node) fleetPressureAggregate() float64 {
	peers := n.membership.PeerVitalsSnapshot()
	if len(peers) == 0 {
		return 0
	}
	var sum float64
	for _, v := range peers {
		sum += v.Pressure()
	}
	return sum / float64(len(peers))
}

// handlePeers serves the membership snapshot.
func (n *Node) handlePeers(w http.ResponseWriter, r *http.Request) {
	peers := n.membership.Snapshot()
	sort.Slice(peers, func(i, j int) bool {
		if peers[i].Self != peers[j].Self {
			return peers[i].Self
		}
		return peers[i].Addr < peers[j].Addr
	})
	n.fleetJSON(w, http.StatusOK, map[string]any{
		"self":         n.cfg.Self,
		"live":         n.membership.LiveCount(),
		"peers":        peers,
		"fleetTraceId": n.fleetTraceID,
	})
}

// handleRoute answers ?key=X with the key's current owner — the smoke
// drill's (and operators') window into placement.
func (n *Node) handleRoute(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		n.fleetJSON(w, http.StatusBadRequest, map[string]string{"error": "missing key parameter"})
		return
	}
	owner := n.owner(key)
	n.fleetJSON(w, http.StatusOK, map[string]any{
		"key": key, "owner": owner, "self": owner == n.cfg.Self,
	})
}

// fleetFaultsRequest is the chaos-toggle payload.
type fleetFaultsRequest struct {
	DropHeartbeats *bool `json:"dropHeartbeats"`
}

// handleFaults toggles the node's chaos plan at runtime (drill tooling).
func (n *Node) handleFaults(w http.ResponseWriter, r *http.Request) {
	var req fleetFaultsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		n.fleetJSON(w, http.StatusBadRequest, map[string]string{"error": "bad payload: " + err.Error()})
		return
	}
	if req.DropHeartbeats != nil {
		n.plan.SetDropHeartbeats(*req.DropHeartbeats)
	}
	n.fleetJSON(w, http.StatusOK, map[string]any{
		"node": n.cfg.Self, "dropHeartbeats": req.DropHeartbeats != nil && *req.DropHeartbeats,
	})
}

// route is the ownership router for everything below the fleet endpoints.
// Requests already forwarded once (the proxy stamps ForwardedHeader) are
// always served locally — the sender routed on ITS ring view, and a second
// hop could only loop during a membership disagreement window.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	// Give the request its trace identity up front: the routing decision
	// itself (a proxy error, an adoption 503) must be correlatable even
	// though the server middleware hasn't run yet.
	if r.Header.Get("Traceparent") == "" {
		r.Header.Set("Traceparent", trace.New().Header())
	}
	if r.Header.Get(ForwardedHeader) != "" {
		n.inner.ServeHTTP(w, r)
		return
	}
	if id, ok := createSessionRequest(r); ok {
		// Placement: mint the session ID here (or honor a pre-pinned one in
		// tests), hash it over the live ring, and create AT the owner with
		// the ID pinned, so every node derives the same placement.
		if id == "" {
			id = mintSessionID()
		}
		r.Header.Set(server.FleetSessionHeader, id)
		if owner := n.owner(id); owner != n.cfg.Self {
			n.proxy(w, r, owner)
			return
		}
		n.inner.ServeHTTP(w, r)
		return
	}
	id := sessionScope(r)
	if id == "" {
		// Node-local resources (queries, strategies, metrics, traces,
		// debug): every node answers for itself.
		n.inner.ServeHTTP(w, r)
		return
	}
	owner := n.owner(id)
	if owner != n.cfg.Self && owner != "" {
		n.proxy(w, r, owner)
		return
	}
	if !n.srv.HasSession(id) && n.sessionOnDisk(id) {
		// This node just became the owner of a session another node built:
		// adopt it (synchronous registration, asynchronous rebuild), then
		// serve — the client sees 409 session_building until rehydration
		// lands, same as a fresh create.
		n.adopt(id)
	}
	n.inner.ServeHTTP(w, r)
}

// createSessionRequest reports whether the request creates a session, and
// any pre-pinned fleet session ID it carries.
func createSessionRequest(r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		return "", false
	}
	p := r.URL.Path
	if p == "/v1/sessions" || p == "/sessions" {
		return r.Header.Get(server.FleetSessionHeader), true
	}
	return "", false
}

// sessionScope extracts the owning session ID of a request path, or "" for
// node-local resources. Session-scoped shapes:
//
//	/v1/sessions/{id}[/...]   (and the legacy /sessions/{id}[/...])
//	/v1/atlas?session={id}    (and legacy /atlas)
func sessionScope(r *http.Request) string {
	p := r.URL.Path
	for _, prefix := range []string{"/v1/sessions/", "/sessions/"} {
		if rest, ok := strings.CutPrefix(p, prefix); ok {
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			return rest
		}
	}
	if p == "/v1/atlas" || p == "/atlas" {
		return r.URL.Query().Get("session")
	}
	return ""
}
