package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/guard"
)

// Membership tracks the liveness of the fleet's peers by periodic heartbeat
// probes (GET /v1/fleet/health with a short per-probe timeout). State
// transitions are hysteretic — MarkDown consecutive failures take a peer
// down, MarkUp consecutive successes bring it back — so one dropped packet
// never reshuffles the ring, and a flapping peer must prove itself before
// reclaiming its sessions. While a peer is down its probe cadence backs off
// exponentially (capped), so a long-dead node costs a trickle, not a
// heartbeat storm.
//
// Peers start optimistically live: at boot the ring spans the full static
// peer list, and genuinely dead peers are marked down within
// MarkDown*Interval. The alternative (pessimistic start) would make every
// node adopt the whole keyspace during a rolling restart.
type Membership struct {
	self     string
	interval time.Duration
	timeout  time.Duration
	markDown int
	markUp   int
	maxBack  time.Duration
	client   *http.Client

	// onTransition fires outside the member lock on every down/up crossing.
	onTransition func(addr string, live bool)

	mu    sync.Mutex
	peers map[string]*member

	stop chan struct{}
	wg   sync.WaitGroup
}

// member is one probed peer's hysteresis state plus its last gossiped load
// vitals (heartbeat responses piggyback the peer's vitals payload).
type member struct {
	addr     string
	live     bool
	fails    int // consecutive probe failures
	oks      int // consecutive probe successes
	backoff  time.Duration
	lastErr  string
	probes   int
	lastSeen time.Time

	// vitals is the peer's last advertised load snapshot; vitalsAt is when
	// the advertising probe landed (zero = never). Consumers must treat
	// vitals older than the staleness bound as unknown — routing decisions
	// on stale saturation data would shed against a peer that recovered.
	vitals   guard.Vitals
	vitalsAt time.Time
}

// PeerStatus is the externally visible liveness record of one fleet member
// (self included), served by GET /v1/fleet/peers.
type PeerStatus struct {
	Addr string `json:"addr"`
	Self bool   `json:"self,omitempty"`
	Live bool   `json:"live"`
	// Fails and Oks are the current consecutive-probe counters feeding the
	// mark-down/mark-up hysteresis.
	Fails int `json:"fails,omitempty"`
	Oks   int `json:"oks,omitempty"`
	// Probes counts probes sent to this peer; LastError is the most recent
	// probe failure (sticky until the next success).
	Probes   int    `json:"probes,omitempty"`
	LastErr  string `json:"lastError,omitempty"`
	LastSeen string `json:"lastSeen,omitempty"`
}

// newMembership wires a membership tracker for self over the static peer
// list; probing starts with start().
func newMembership(self string, peers []string, interval, timeout, maxBack time.Duration,
	markDown, markUp int, onTransition func(addr string, live bool)) *Membership {
	m := &Membership{
		self:     self,
		interval: interval,
		timeout:  timeout,
		markDown: markDown,
		markUp:   markUp,
		maxBack:  maxBack,
		client: &http.Client{
			Timeout: timeout,
			// Heartbeats are tiny and latency-sensitive: don't let a wedged
			// keep-alive connection stand in for the peer's actual health.
			Transport: &http.Transport{DisableKeepAlives: true},
		},
		onTransition: onTransition,
		peers:        map[string]*member{},
		stop:         make(chan struct{}),
	}
	for _, addr := range peers {
		if addr == "" || addr == self {
			continue
		}
		m.peers[addr] = &member{addr: addr, live: true}
	}
	return m
}

// start launches one probe loop per peer.
func (m *Membership) start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.peers {
		m.wg.Add(1)
		go m.probeLoop(p.addr)
	}
}

// close stops every probe loop and waits them out.
func (m *Membership) close() {
	close(m.stop)
	m.wg.Wait()
}

// probeLoop probes one peer forever at the membership cadence, stretching
// to the backed-off cadence while the peer is down.
func (m *Membership) probeLoop(addr string) {
	defer m.wg.Done()
	timer := time.NewTimer(m.interval)
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C:
		}
		ok, vitals, err := m.probe(addr)
		next := m.observe(addr, ok, vitals, err)
		timer.Reset(next)
	}
}

// healthResponse is the heartbeat payload: liveness plus the gossiped load
// vitals (see Node.handleHealth).
type healthResponse struct {
	Node   string        `json:"node"`
	Status string        `json:"status"`
	Vitals *guard.Vitals `json:"vitals,omitempty"`
}

// probe performs one heartbeat: any 2xx body counts as alive, anything else
// (timeout, refused connection, 503 from a fault-injected handler) counts
// as a failure. A successful probe's body carries the peer's load vitals —
// the gossip channel — returned for observe to cache.
func (m *Membership) probe(addr string) (bool, *guard.Vitals, error) {
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/fleet/health", nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return false, nil, fmt.Errorf("health probe: status %d", resp.StatusCode)
	}
	var hr healthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hr); err != nil {
		// An alive peer with an undecodable body (older build mid-rolling-
		// restart) is still alive; it just has no vitals to gossip.
		return true, nil, nil
	}
	return true, hr.Vitals, nil
}

// observe feeds one probe outcome into the hysteresis state and returns the
// delay until the peer's next probe. Transitions fire the callback outside
// the lock.
func (m *Membership) observe(addr string, ok bool, vitals *guard.Vitals, err error) time.Duration {
	m.mu.Lock()
	p := m.peers[addr]
	if p == nil {
		m.mu.Unlock()
		return m.interval
	}
	p.probes++
	var transition bool
	var nowLive bool
	if ok {
		p.oks++
		p.fails = 0
		p.lastErr = ""
		p.lastSeen = time.Now()
		p.backoff = 0
		if vitals != nil {
			p.vitals = *vitals
			p.vitalsAt = p.lastSeen
		}
		if !p.live && p.oks >= m.markUp {
			p.live, transition, nowLive = true, true, true
		}
	} else {
		p.fails++
		p.oks = 0
		if err != nil {
			p.lastErr = err.Error()
		}
		if p.live && p.fails >= m.markDown {
			p.live, transition, nowLive = false, true, false
		}
	}
	next := m.interval
	if !p.live {
		// Exponential probe backoff while down, capped: a dead peer is
		// cheap to keep an eye on, and the first successful probe resets
		// the cadence.
		if p.backoff < m.interval {
			p.backoff = m.interval
		} else {
			p.backoff *= 2
		}
		if p.backoff > m.maxBack {
			p.backoff = m.maxBack
		}
		next = p.backoff
	}
	m.mu.Unlock()
	if transition && m.onTransition != nil {
		m.onTransition(addr, nowLive)
	}
	return next
}

// vitalsStaleAfter is the gossip staleness bound in heartbeat intervals: a
// cached vitals snapshot older than this is treated as unknown rather than
// acted on — edge-shedding against a peer on data three probes old would
// keep rejecting after the peer recovered.
const vitalsStaleAfter = 3

// PeerVitals returns the peer's last gossiped vitals, when fresh (cached
// within vitalsStaleAfter heartbeat intervals). ok is false for self,
// unknown addresses, never-probed peers, and stale caches.
func (m *Membership) PeerVitals(addr string) (guard.Vitals, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[addr]
	if p == nil || p.vitalsAt.IsZero() {
		return guard.Vitals{}, false
	}
	if time.Since(p.vitalsAt) > vitalsStaleAfter*m.interval {
		return guard.Vitals{}, false
	}
	return p.vitals, true
}

// PeerVitalsSnapshot returns every live peer's fresh vitals keyed by
// address (self excluded — the caller owns its local snapshot).
func (m *Membership) PeerVitalsSnapshot() map[string]guard.Vitals {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]guard.Vitals{}
	now := time.Now()
	for addr, p := range m.peers {
		if !p.live || p.vitalsAt.IsZero() || now.Sub(p.vitalsAt) > vitalsStaleAfter*m.interval {
			continue
		}
		out[addr] = p.vitals
	}
	return out
}

// setPeerVitals force-caches a peer's vitals (tests).
func (m *Membership) setPeerVitals(addr string, v guard.Vitals) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.peers[addr]; p != nil {
		p.vitals = v
		p.vitalsAt = time.Now()
	}
}

// Live returns the live node set, self always included, sorted by the map
// iteration-free path the ring construction re-sorts anyway.
func (m *Membership) Live() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []string{m.self}
	for _, p := range m.peers {
		if p.live {
			out = append(out, p.addr)
		}
	}
	return out
}

// LiveCount reports how many fleet members (self included) are live.
func (m *Membership) LiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 1
	for _, p := range m.peers {
		if p.live {
			n++
		}
	}
	return n
}

// Snapshot returns every member's status (self first, then peers sorted by
// address at the caller's leisure — the fleet handler sorts).
func (m *Membership) Snapshot() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []PeerStatus{{Addr: m.self, Self: true, Live: true}}
	for _, p := range m.peers {
		st := PeerStatus{
			Addr: p.addr, Live: p.live, Fails: p.fails, Oks: p.oks,
			Probes: p.probes, LastErr: p.lastErr,
		}
		if !p.lastSeen.IsZero() {
			st.LastSeen = p.lastSeen.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, st)
	}
	return out
}
