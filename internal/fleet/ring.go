package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the fleet's live nodes: each node
// contributes Replicas virtual points (FNV-64a of "addr#i") on a 64-bit
// circle, and a key's owner is the first virtual point at or after the
// key's hash. Consistent hashing gives the two placement properties the
// failover design leans on: removing a node moves only the keys it owned
// (each lands on its "next hash owner"), and re-adding it moves exactly
// those keys back — so a healed partition reclaims its own sessions and
// nothing else reshuffles.
type Ring struct {
	points []point
}

// point is one virtual node position.
type point struct {
	hash uint64
	addr string
}

// defaultReplicas is the virtual-node count per node: enough to spread
// 3-10 node fleets to within a few percent of even, cheap to rebuild on
// every membership transition.
const defaultReplicas = 64

// NewRing builds a ring over the node addresses (duplicates are collapsed;
// replicas < 1 uses the default). An empty node list yields an empty ring
// whose Owner is always "".
func NewRing(nodes []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = defaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{points: make([]point, 0, len(nodes)*replicas)}
	for _, addr := range nodes {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{hash: hash64(addr + "#" + strconv.Itoa(i)), addr: addr})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on address so the ring is deterministic even across the
		// (vanishingly unlikely) 64-bit collision of two virtual points.
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// Owner returns the node owning the key: the first virtual point clockwise
// from the key's hash, wrapping at the top of the circle. "" on an empty
// ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// Nodes returns the distinct node addresses on the ring, sorted.
func (r *Ring) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	sort.Strings(out)
	return out
}

// hash64 is FNV-64a — the repo's standard dependency-free hash (same family
// as trace.SpanIDFor), deterministic across processes so every node derives
// the same placement.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
