package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/server"
)

// saturatedVitals is a gossip snapshot reading as fully saturated (pressure
// 1.0): runs pegged at their AIMD limit.
func saturatedVitals(hint int) guard.Vitals {
	return guard.Vitals{RunInflight: 8, RunLimit: 8, RetryAfterHint: hint}
}

func TestHealthResponseCarriesVitals(t *testing.T) {
	n := testNode(t, "127.0.0.1:1", -1)
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/fleet/health", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("health status %d", w.Code)
	}
	var hr healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Vitals == nil {
		t.Fatalf("heartbeat lacks gossip payload: %+v", hr)
	}
	if hr.Vitals.Node != n.cfg.Self {
		t.Fatalf("vitals node %q, want %q", hr.Vitals.Node, n.cfg.Self)
	}
	if hr.Vitals.Goroutines <= 0 || hr.Vitals.RetryAfterHint < 1 {
		t.Fatalf("vitals not populated: %+v", hr.Vitals)
	}
}

func TestMembershipCachesGossipedVitals(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v := saturatedVitals(5)
		_ = json.NewEncoder(w).Encode(healthResponse{Node: "peer", Status: "ok", Vitals: &v})
	}))
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")

	m := newMembership("self:1", []string{addr}, 5*time.Millisecond, 3*time.Millisecond,
		20*time.Millisecond, 2, 2, nil)
	m.start()
	defer m.close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := m.PeerVitals(addr); ok {
			if p := v.Pressure(); p != 1.0 {
				t.Fatalf("gossiped pressure %v, want 1.0", p)
			}
			if v.RetryAfterHint != 5 {
				t.Fatalf("gossiped hint %d, want 5", v.RetryAfterHint)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("vitals never gossiped through the heartbeat probe")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap := m.PeerVitalsSnapshot(); len(snap) != 1 {
		t.Fatalf("snapshot has %d peers, want 1", len(snap))
	}
}

func TestPeerVitalsGoStale(t *testing.T) {
	m := newMembership("self:1", []string{"peer:1"}, 5*time.Millisecond, 3*time.Millisecond,
		20*time.Millisecond, 2, 2, nil)
	if _, ok := m.PeerVitals("peer:1"); ok {
		t.Fatal("never-probed peer reported fresh vitals")
	}
	m.setPeerVitals("peer:1", saturatedVitals(5))
	if _, ok := m.PeerVitals("peer:1"); !ok {
		t.Fatal("just-cached vitals reported stale")
	}
	// Past vitalsStaleAfter heartbeat intervals the cache must read unknown:
	// acting on it would shed against a peer that may have recovered.
	time.Sleep(vitalsStaleAfter*5*time.Millisecond + 10*time.Millisecond)
	if _, ok := m.PeerVitals("peer:1"); ok {
		t.Fatal("stale vitals still reported fresh")
	}
	if snap := m.PeerVitalsSnapshot(); len(snap) != 0 {
		t.Fatalf("stale snapshot not empty: %v", snap)
	}
}

func TestProxyEdgeShedsSaturatedOwner(t *testing.T) {
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, -1)
	n.membership.setPeerVitals(ownerAddr, saturatedVitals(5))
	id := keyOwnedBy(t, n, ownerAddr)

	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want edge-shed 503", w.Code)
	}
	if hits.Load() != 0 {
		t.Fatalf("owner saw %d requests; the edge shed must not touch the wire", hits.Load())
	}
	if !strings.Contains(w.Body.String(), "owner_overloaded") {
		t.Fatalf("error envelope: %s", w.Body.String())
	}
	// Retry-After quotes the owner's own hint (5) plus per-request jitter in
	// [0, 5/2+3).
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 5 || ra >= 10 {
		t.Fatalf("Retry-After %q, want the owner's hint 5 + jitter in [5, 10)", w.Header().Get("Retry-After"))
	}
	if v := n.metrics.proxySheds.With("pressure").Value(); v != 1 {
		t.Fatalf("rqp_proxy_sheds_total{pressure} = %v, want 1", v)
	}
	if w.Header().Get("X-Request-ID") == "" {
		t.Fatal("edge shed lacks trace identity")
	}

	// Stale vitals must NOT shed: after the staleness bound the same request
	// goes through to the owner.
	n.membership.mu.Lock()
	n.membership.peers[ownerAddr].vitalsAt = time.Now().Add(-time.Hour)
	n.membership.mu.Unlock()
	w = httptest.NewRecorder()
	n.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil))
	if hits.Load() != 1 {
		t.Fatalf("stale-vitals request did not reach the owner (hits %d)", hits.Load())
	}
}

func TestProxyRejectsSpentRetryBudget(t *testing.T) {
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, -1)
	id := keyOwnedBy(t, n, ownerAddr)

	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	req.Header.Set(RetryBudgetHeader, "0")
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 for a spent budget", w.Code)
	}
	if hits.Load() != 0 {
		t.Fatalf("owner saw %d requests despite a spent budget", hits.Load())
	}
	if !strings.Contains(w.Body.String(), "retry_budget_exhausted") {
		t.Fatalf("error envelope: %s", w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("budget rejection lacks Retry-After")
	}
	if v := n.metrics.proxySheds.With("retry_budget").Value(); v != 1 {
		t.Fatalf("rqp_proxy_sheds_total{retry_budget} = %v, want 1", v)
	}
}

func TestProxyStampsDecrementedBudgetDownstream(t *testing.T) {
	var got atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(RetryBudgetHeader))
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, -1)
	id := keyOwnedBy(t, n, ownerAddr)

	// Default cap 3, primary spends 1 → the owner sees 2 remaining.
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil))
	if v, _ := got.Load().(string); v != "2" {
		t.Fatalf("forwarded budget %q, want %q (cap 3 minus the primary)", v, "2")
	}

	// An inflated incoming header cannot raise the cap...
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	req.Header.Set(RetryBudgetHeader, "99")
	n.Handler().ServeHTTP(httptest.NewRecorder(), req)
	if v, _ := got.Load().(string); v != "2" {
		t.Fatalf("forwarded budget %q after inflated header, want %q", v, "2")
	}

	// ...but a lower one tightens it.
	req = httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	req.Header.Set(RetryBudgetHeader, "1")
	n.Handler().ServeHTTP(httptest.NewRecorder(), req)
	if v, _ := got.Load().(string); v != "0" {
		t.Fatalf("forwarded budget %q after header 1, want %q", v, "0")
	}
}

func TestProxyBudgetCapsHedge(t *testing.T) {
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			time.Sleep(60 * time.Millisecond)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, 5*time.Millisecond)
	id := keyOwnedBy(t, n, ownerAddr)

	// Budget 1: the primary spends the only token, so the hedge that would
	// fire at 5ms must stay grounded even though the primary dawdles.
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	req.Header.Set(RetryBudgetHeader, "1")
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if v := n.metrics.hedges.Value(); v != 0 {
		t.Fatalf("rqp_hedges_total = %v, want 0 (budget exhausted)", v)
	}
	if hits.Load() != 1 {
		t.Fatalf("owner saw %d requests, want the primary only", hits.Load())
	}
}

func TestProxyHedgeSuppressedByOwnerPressure(t *testing.T) {
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			time.Sleep(60 * time.Millisecond)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, 5*time.Millisecond)
	id := keyOwnedBy(t, n, ownerAddr)

	// Owner pressure 0.75: above HedgePressure (0.6) but below ShedPressure
	// (0.9) — forwarded, not shed, but never hedged.
	n.membership.setPeerVitals(ownerAddr, guard.Vitals{RunInflight: 6, RunLimit: 8})
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if v := n.metrics.hedges.Value(); v != 0 {
		t.Fatalf("rqp_hedges_total = %v, want 0 (owner under pressure)", v)
	}
	if hits.Load() != 1 {
		t.Fatalf("owner saw %d requests, want 1 — a hedge against a pressured owner is amplification", hits.Load())
	}
}

func TestProxyHedgeSuppressedDuringBrownout(t *testing.T) {
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			time.Sleep(60 * time.Millisecond)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	srv := server.NewWithConfig(server.Config{
		DataDir: t.TempDir(), Brownout: true, BrownoutInterval: time.Millisecond,
	})
	t.Cleanup(func() { srv.Close() })
	n, err := New(Config{
		Self:              "127.0.0.1:9",
		Peers:             []string{"127.0.0.1:9", ownerAddr},
		DataDir:           t.TempDir(),
		HeartbeatInterval: time.Second,
		HedgeDelay:        5 * time.Millisecond,
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the fleet view: the peer's gossiped pressure (1.0) drives the
	// fleet aggregate, and the brownout tick lifts the local stage off it —
	// the full fleet-pressure → brownout → hedge-suppression chain.
	n.membership.setPeerVitals(ownerAddr, saturatedVitals(5))
	srv.StartBrownout()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stage() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("fleet pressure never lifted the brownout stage")
		}
		time.Sleep(time.Millisecond)
	}
	// Drop the gossiped pressure below HedgePressure so only the brownout
	// stage (not owner pressure) can be suppressing the hedge. The controller
	// holds stage ≥ 1 for DwellTicks after pressure recedes.
	n.membership.setPeerVitals(ownerAddr, guard.Vitals{})

	id := keyOwnedBy(t, n, ownerAddr)
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if v := n.metrics.hedges.Value(); v != 0 {
		t.Fatalf("rqp_hedges_total = %v, want 0 during brownout", v)
	}
}

func TestFleetVitalsEndpoint(t *testing.T) {
	n := testNode(t, "127.0.0.1:1", -1)
	n.membership.setPeerVitals("127.0.0.1:1", saturatedVitals(5))

	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/fleet/vitals", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("vitals status %d", w.Code)
	}
	var body struct {
		Self          guard.Vitals              `json:"self"`
		SelfPressure  float64                   `json:"selfPressure"`
		Peers         map[string]map[string]any `json:"peers"`
		FleetPressure float64                   `json:"fleetPressure"`
		BrownoutStage int                       `json:"brownoutStage"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Self.Node != n.cfg.Self {
		t.Fatalf("self vitals node %q", body.Self.Node)
	}
	if body.FleetPressure != 1.0 {
		t.Fatalf("fleetPressure %v, want 1.0 (sole peer saturated)", body.FleetPressure)
	}
	peer, ok := body.Peers["127.0.0.1:1"]
	if !ok || peer["pressure"].(float64) != 1.0 {
		t.Fatalf("peer entry missing or unpressured: %v", body.Peers)
	}
	if body.BrownoutStage != 0 {
		t.Fatalf("brownoutStage %d on a calm node", body.BrownoutStage)
	}
}

func TestFleetPressureAggregate(t *testing.T) {
	n := testNode(t, "127.0.0.1:1", -1)
	if p := n.fleetPressureAggregate(); p != 0 {
		t.Fatalf("aggregate %v with no fresh gossip, want 0 (unknown load is not overload)", p)
	}
	n.membership.setPeerVitals("127.0.0.1:1", guard.Vitals{RunInflight: 4, RunLimit: 8})
	if p := n.fleetPressureAggregate(); p != 0.5 {
		t.Fatalf("aggregate %v, want 0.5", p)
	}
}
