package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

func TestRingDeterministicAcrossViews(t *testing.T) {
	nodes := []string{"10.0.0.1:80", "10.0.0.2:80", "10.0.0.3:80"}
	a := NewRing(nodes, 0)
	// A permuted (and duplicated) peer list is the same ring: every node
	// computes placement independently from its own -peers flag, and the
	// views must agree.
	b := NewRing([]string{"10.0.0.3:80", "10.0.0.1:80", "10.0.0.2:80", "10.0.0.1:80"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("f%04d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ring views disagree on %s: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingRebalanceMovesOnlyDeadOwnersKeys(t *testing.T) {
	nodes := []string{"10.0.0.1:80", "10.0.0.2:80", "10.0.0.3:80"}
	full := NewRing(nodes, 0)
	shrunk := NewRing([]string{"10.0.0.1:80", "10.0.0.3:80"}, 0)

	perOwner := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("f%04d", i)
		before := full.Owner(key)
		perOwner[before]++
		after := shrunk.Owner(key)
		if before != "10.0.0.2:80" && after != before {
			t.Fatalf("key %s moved %s -> %s although its owner survived", key, before, after)
		}
		if before == "10.0.0.2:80" && after == "10.0.0.2:80" {
			t.Fatalf("key %s still routed to the removed node", key)
		}
	}
	// Consistent hashing must also spread keys: no member owns everything
	// or (nearly) nothing.
	for _, n := range nodes {
		if perOwner[n] < 3000/10 {
			t.Errorf("lopsided ring: %s owns only %d/3000 keys", n, perOwner[n])
		}
	}
}

func TestRingSingleNodeOwnsAll(t *testing.T) {
	r := NewRing([]string{"10.0.0.1:80"}, 0)
	for i := 0; i < 50; i++ {
		if o := r.Owner(fmt.Sprintf("k%d", i)); o != "10.0.0.1:80" {
			t.Fatalf("sole member does not own key: %s", o)
		}
	}
}

func TestMembershipHysteresis(t *testing.T) {
	m := newMembership("self:1", []string{"peer:1"}, 10*time.Millisecond, 5*time.Millisecond,
		80*time.Millisecond, 3, 2, nil)
	var transitions []string
	m.onTransition = func(addr string, live bool) {
		transitions = append(transitions, fmt.Sprintf("%s=%v", addr, live))
	}

	fail := fmt.Errorf("probe: connection refused")
	// Optimistic start: live until MarkDown consecutive failures.
	if got := m.Live(); len(got) != 2 {
		t.Fatalf("fresh membership live set: %v", got)
	}
	m.observe("peer:1", false, nil, fail)
	m.observe("peer:1", true, nil, nil) // a success resets the failure streak
	m.observe("peer:1", false, nil, fail)
	m.observe("peer:1", false, nil, fail)
	if len(transitions) != 0 {
		t.Fatalf("peer marked down before %d consecutive failures: %v", 3, transitions)
	}
	next := m.observe("peer:1", false, nil, fail) // third consecutive: down
	if len(transitions) != 1 || transitions[0] != "peer:1=false" {
		t.Fatalf("mark-down transition missing: %v", transitions)
	}
	if next != 10*time.Millisecond {
		t.Fatalf("first down-probe delay %v, want the base interval", next)
	}
	// Backoff doubles while down, capped.
	if next = m.observe("peer:1", false, nil, fail); next != 20*time.Millisecond {
		t.Fatalf("backoff after second down-probe = %v, want 20ms", next)
	}
	for i := 0; i < 6; i++ {
		next = m.observe("peer:1", false, nil, fail)
	}
	if next != 80*time.Millisecond {
		t.Fatalf("backoff not capped: %v", next)
	}

	// One success is not enough to rejoin (MarkUp=2)...
	m.observe("peer:1", true, nil, nil)
	if len(transitions) != 1 {
		t.Fatalf("peer rejoined after a single success: %v", transitions)
	}
	if got := m.Live(); len(got) != 1 || got[0] != "self:1" {
		t.Fatalf("down peer still in live set: %v", got)
	}
	// ...two are.
	if next = m.observe("peer:1", true, nil, nil); next != 10*time.Millisecond {
		t.Fatalf("probe cadence after recovery = %v, want the base interval", next)
	}
	if len(transitions) != 2 || transitions[1] != "peer:1=true" {
		t.Fatalf("mark-up transition missing: %v", transitions)
	}
	if got := m.Live(); len(got) != 2 {
		t.Fatalf("recovered peer missing from live set: %v", got)
	}
}

func TestMembershipProbesRealListeners(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/fleet/health" {
			t.Errorf("probe hit %s, want /v1/fleet/health", r.URL.Path)
		}
		if !healthy.Load() {
			http.Error(w, "partitioned", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")

	downc := make(chan bool, 8)
	m := newMembership("self:1", []string{addr}, 5*time.Millisecond, 3*time.Millisecond,
		20*time.Millisecond, 2, 2, func(_ string, live bool) { downc <- live })
	m.start()
	defer m.close()

	healthy.Store(false) // a 503-ing health endpoint is a partitioned peer
	select {
	case live := <-downc:
		if live {
			t.Fatal("first transition was a mark-up")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unhealthy peer never marked down")
	}
	healthy.Store(true)
	select {
	case live := <-downc:
		if !live {
			t.Fatal("expected a mark-up transition")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healed peer never marked back up")
	}
}

// testNode builds an unstarted fleet node (no probing, no rescan ticker)
// whose ring spans self plus the given peer address.
func testNode(t *testing.T, peer string, hedge time.Duration) *Node {
	t.Helper()
	srv := server.NewWithConfig(server.Config{DataDir: t.TempDir()})
	t.Cleanup(func() { srv.Close() })
	n, err := New(Config{
		Self:              "127.0.0.1:9",
		Peers:             []string{"127.0.0.1:9", peer},
		DataDir:           t.TempDir(),
		HeartbeatInterval: time.Second,
		HedgeDelay:        hedge,
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// keyOwnedBy finds a session ID the ring places on owner.
func keyOwnedBy(t *testing.T, n *Node, owner string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("f%04d", i)
		if n.owner(id) == owner {
			return id
		}
	}
	t.Fatalf("no key hashes to %s", owner)
	return ""
}

func TestProxyForwardsDownstreamRetryAfter(t *testing.T) {
	// The downstream owner sheds with an explicit cooldown; the fronting
	// node must hand that exact value to the client, not its generic
	// fallback.
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":{"code":"overloaded"}}`, http.StatusServiceUnavailable)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, -1)
	id := keyOwnedBy(t, n, ownerAddr)

	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want proxied 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the downstream's own %q", got, "7")
	}
	if w.Header().Get("Traceparent") == "" || w.Header().Get("X-Request-ID") == "" {
		t.Fatal("proxied shed response lacks trace identity")
	}
	if v := n.metrics.proxy.With("shed").Value(); v != 1 {
		t.Fatalf("rqp_proxy_requests_total{outcome=shed} = %v, want 1", v)
	}
}

func TestProxyUnreachableOwnerAdvertisesHeartbeat(t *testing.T) {
	// Nothing listens on the owner address: the proxy must fail fast with a
	// 502 whose Retry-After matches the heartbeat interval — the soonest
	// routing can have changed.
	n := testNode(t, "127.0.0.1:1", -1)
	id := keyOwnedBy(t, n, "127.0.0.1:1")

	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/run", strings.NewReader(`{}`))
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After %q, want %q (one heartbeat interval)", got, "1")
	}
	if !strings.Contains(w.Body.String(), "peer_unreachable") {
		t.Fatalf("error envelope: %s", w.Body.String())
	}
	if v := n.metrics.proxy.With("error").Value(); v != 1 {
		t.Fatalf("rqp_proxy_requests_total{outcome=error} = %v, want 1", v)
	}
}

func TestProxyHedgesSlowIdempotentReads(t *testing.T) {
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond) // slow primary
		}
		w.Header().Set("X-Hit", fmt.Sprint(hits.Load()))
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, 5*time.Millisecond)
	id := keyOwnedBy(t, n, ownerAddr)

	start := time.Now()
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if v := n.metrics.hedges.Value(); v != 1 {
		t.Fatalf("rqp_hedges_total = %v, want 1", v)
	}
	// The hedge, not the slow primary, should have answered.
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Errorf("hedged read took %v; the 150ms primary appears to have been awaited", el)
	}
	if hits.Load() != 2 {
		t.Errorf("owner saw %d requests, want primary+hedge", hits.Load())
	}
}

func TestProxyHedgedWinnerBodyDeliveredIntact(t *testing.T) {
	// Regression: forward() used to cancel BOTH attempts' contexts the
	// moment a winner emerged — including the winner's own — so the proxy
	// copied the response body under a canceled context and every hedged
	// read could be silently truncated after the status line was written.
	payload := strings.Repeat("x", 1<<18)
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond) // slow primary: the hedge wins
		}
		w.WriteHeader(http.StatusOK)
		// Stream the body in two flushed chunks with a pause, so it is
		// still in flight when forward() hands the winning response back.
		fmt.Fprint(w, payload[:1024])
		w.(http.Flusher).Flush()
		time.Sleep(50 * time.Millisecond)
		fmt.Fprint(w, payload[1024:])
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, 5*time.Millisecond)
	id := keyOwnedBy(t, n, ownerAddr)

	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if v := n.metrics.hedges.Value(); v != 1 {
		t.Fatalf("rqp_hedges_total = %v, want 1", v)
	}
	if got := w.Body.Len(); got != len(payload) {
		t.Fatalf("hedged response body truncated: %d of %d bytes reached the client", got, len(payload))
	}
}

func TestProxyHedgeLaunchesEarlyWhenPrimaryDies(t *testing.T) {
	// The primary attempt AND its read-class retry die on the wire long
	// before the hedge delay elapses: the hedge must launch immediately
	// instead of waiting out the delay (the "early hedge" rule).
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			// Kill the connection before any response bytes: a transport
			// error, consuming the primary and its one retry.
			if c, _, err := w.(http.Hijacker).Hijack(); err == nil {
				c.Close()
			}
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	// A hedge delay far beyond the test budget: only the early launch can
	// answer quickly.
	n := testNode(t, ownerAddr, 10*time.Second)
	id := keyOwnedBy(t, n, ownerAddr)

	start := time.Now()
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("dead primary waited out the hedge delay: %v", el)
	}
	if v := n.metrics.hedges.Value(); v != 1 {
		t.Fatalf("rqp_hedges_total = %v, want 1 early hedge", v)
	}
	if hits.Load() != 3 {
		t.Errorf("owner saw %d requests, want primary + retry + early hedge", hits.Load())
	}
}

func TestProxyWritesAreNeverHedged(t *testing.T) {
	var hits atomic.Int32
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		time.Sleep(30 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, time.Millisecond)
	id := keyOwnedBy(t, n, ownerAddr)

	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/run", strings.NewReader(`{}`))
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if v := n.metrics.hedges.Value(); v != 0 {
		t.Fatalf("a write was hedged: rqp_hedges_total = %v", v)
	}
	if hits.Load() != 1 {
		t.Fatalf("owner saw %d requests for one write", hits.Load())
	}
}

func TestForwardedRequestsServedLocally(t *testing.T) {
	// A request that already crossed one hop must be served locally even if
	// this node's ring view says a peer owns it — the loop-prevention rule.
	n := testNode(t, "127.0.0.1:1", -1)
	id := keyOwnedBy(t, n, "127.0.0.1:1")

	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	req.Header.Set(ForwardedHeader, "127.0.0.1:1")
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	// Served by the local server (which has no such session): a clean local
	// 404 — NOT a 502 from re-proxying to the unreachable "owner".
	if w.Code != http.StatusNotFound {
		t.Fatalf("forwarded request: status %d, want local 404", w.Code)
	}
	if v := n.metrics.proxy.With("error").Value(); v != 0 {
		t.Fatalf("forwarded request was re-proxied: %v", v)
	}
}

func TestHopHeadersStripped(t *testing.T) {
	var got http.Header
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Clone()
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	ownerAddr := strings.TrimPrefix(owner.URL, "http://")

	n := testNode(t, ownerAddr, -1)
	id := keyOwnedBy(t, n, ownerAddr)

	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id, nil)
	req.Header.Set("Proxy-Authorization", "secret")
	req.Header.Set("X-Custom", "kept")
	w := httptest.NewRecorder()
	n.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if got.Get("Proxy-Authorization") != "" {
		t.Error("hop-by-hop header crossed the proxy")
	}
	if got.Get("X-Custom") != "kept" {
		t.Error("end-to-end header dropped by the proxy")
	}
	if got.Get(ForwardedHeader) != "127.0.0.1:9" {
		t.Errorf("forwarding marker %q, want the sender's self address", got.Get(ForwardedHeader))
	}
	if got.Get(DeadlineHeader) == "" {
		t.Error("proxied request carries no deadline")
	}
	if _, err := time.Parse(time.RFC3339Nano, got.Get(DeadlineHeader)); err != nil {
		t.Errorf("deadline header %q not RFC3339Nano: %v", got.Get(DeadlineHeader), err)
	}
}
