package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/trace"
)

// ForwardedHeader marks a request that already crossed one fleet hop. The
// receiving node serves it locally unconditionally: the sender routed on
// its ring view, and honoring a divergent local view would let a membership
// disagreement bounce a request forever.
const ForwardedHeader = "X-Rqp-Forwarded"

// DeadlineHeader propagates the proxy deadline downstream (RFC3339Nano), so
// the owner's handlers see the same budget the front door promised the
// client instead of restarting the clock per hop.
const DeadlineHeader = "X-Rqp-Deadline"

// RetryBudgetHeader carries the remaining wire-attempt budget across hops.
// Every attempt the proxy makes (primary, retry, hedge) spends one token;
// the decremented remainder is stamped on each outbound request. An incoming
// header can only LOWER the per-request cap — a client cannot mint itself a
// bigger fan-out — and a request arriving with a spent budget is rejected
// before it touches the wire, which is what stops a retry storm from
// amplifying through the fleet.
const RetryBudgetHeader = "X-Rqp-Retry-Budget"

// errBudgetExhausted reports a wire attempt suppressed because the request's
// retry-budget pool ran dry.
var errBudgetExhausted = fmt.Errorf("fleet: retry budget exhausted")

// retryTokens is one proxied request's wire-attempt budget: a shared atomic
// pool the primary, retry, and hedge attempts all draw from, so their sum can
// never exceed the cap no matter how the race interleaves.
type retryTokens struct{ left atomic.Int64 }

func newRetryTokens(cap int) *retryTokens {
	t := &retryTokens{}
	t.left.Store(int64(cap))
	return t
}

// take spends one token; false when the pool is dry.
func (t *retryTokens) take() bool {
	for {
		cur := t.left.Load()
		if cur <= 0 {
			return false
		}
		if t.left.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// remaining reports the unspent tokens (floor 0).
func (t *retryTokens) remaining() int {
	if r := t.left.Load(); r > 0 {
		return int(r)
	}
	return 0
}

// proxyMaxBody caps the request body a node will buffer for proxying —
// matching the server's own request-body limit, so the proxy can replay the
// body across retry and hedge attempts.
const proxyMaxBody = 1 << 20

// hopHeaders are the HTTP/1.1 hop-by-hop headers a proxy must not forward.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// mintSessionID mints a fleet session ID: "f" + 12 random hex digits.
// Random (not sequential) because every node mints independently against
// the same shared data directory — sequential allocators collide across
// nodes, random IDs also spread placement uniformly over the ring.
func mintSessionID() string {
	b := make([]byte, 6)
	_, _ = rand.Read(b)
	return "f" + hex.EncodeToString(b)
}

// proxy forwards the request to owner, propagating the deadline, the trace
// identity (Traceparent was ensured by route) and the body; idempotent
// reads get one transport-error retry and a single hedge after HedgeDelay,
// writes get neither (a write that died on the wire may have executed).
// Response headers are copied verbatim — a downstream shed's Retry-After
// reaches the client untouched.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, owner string) {
	n.stampTrace(w, r)
	body, err := io.ReadAll(io.LimitReader(r.Body, proxyMaxBody+1))
	if err != nil {
		n.metrics.proxy.With("error").Inc()
		n.proxyError(w, http.StatusBadGateway, fmt.Errorf("fleet: read request body: %w", err))
		return
	}
	if len(body) > proxyMaxBody {
		n.metrics.proxy.With("client_error").Inc()
		n.proxyError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("fleet: request body exceeds %d bytes", proxyMaxBody))
		return
	}

	// Retry-budget gate: the per-request wire-attempt cap, lowered (never
	// raised) by an incoming X-Rqp-Retry-Budget. A request arriving with no
	// budget left is rejected here, before any wire attempt — the
	// anti-amplification backstop against client retry storms.
	budgetCap := n.cfg.RetryBudget
	if h := r.Header.Get(RetryBudgetHeader); h != "" {
		if v, err := strconv.Atoi(h); err == nil && v < budgetCap {
			budgetCap = v
		}
	}
	if budgetCap <= 0 {
		n.metrics.proxySheds.With("retry_budget").Inc()
		n.metrics.proxy.With("shed").Inc()
		n.setShedRetryAfter(w, ceilSeconds(n.cfg.HeartbeatInterval))
		n.proxyShed(w, http.StatusTooManyRequests, "retry_budget_exhausted",
			fmt.Sprintf("fleet: retry budget exhausted for peer %s; back off before retrying", owner))
		return
	}
	tokens := newRetryTokens(budgetCap)

	// Edge shed: when gossip says the owner is saturated, reject HERE — the
	// cheapest rejection point, sparing the drowning owner even the cost of
	// saying no. The owner's own advertised Retry-After hint (jittered per
	// request) tells the client when pressure plausibly recedes. Stale or
	// missing vitals never shed: unknown load is not overload.
	ownerPressure := 0.0
	if v, ok := n.membership.PeerVitals(owner); ok {
		ownerPressure = v.Pressure()
		if ownerPressure >= n.cfg.ShedPressure {
			n.metrics.proxySheds.With("pressure").Inc()
			n.metrics.proxy.With("shed").Inc()
			n.setShedRetryAfter(w, v.RetryAfterHint)
			n.proxyShed(w, http.StatusServiceUnavailable, "owner_overloaded",
				fmt.Sprintf("fleet: peer %s is shedding load (pressure %.2f); retry after the advertised delay", owner, ownerPressure))
			return
		}
	}

	// One deadline spans the whole proxied exchange, hedges included; an
	// upstream hop's deadline (we are never >1 hop deep, but a client may
	// set one) caps it.
	budget := n.cfg.ProxyTimeout
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if t, err := time.Parse(time.RFC3339Nano, h); err == nil {
			if rem := time.Until(t); rem > 0 && rem < budget {
				budget = rem
			}
		}
	}
	deadline := time.Now().Add(budget)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead

	// Hedge suppression: a hedge is a deliberate load amplifier, exactly the
	// wrong reflex under pressure. Suppress it when this node is itself
	// browning out (stage ≥ 1) or when gossip puts the owner anywhere near
	// saturation — tail latency is the acceptable casualty of an overload.
	hedge := idempotent && n.srv.Stage() < 1 && ownerPressure < n.cfg.HedgePressure

	resp, release, err := n.forward(ctx, r, owner, body, deadline, idempotent, hedge, tokens)
	if err != nil {
		n.metrics.proxy.With("error").Inc()
		// The owner is unreachable (or the budget expired). Tell the client
		// when routing plausibly changes: one heartbeat interval from now
		// the owner is either probed back or marked down and re-hashed.
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(n.cfg.HeartbeatInterval)))
		n.proxyError(w, http.StatusBadGateway, fmt.Errorf("fleet: peer %s unreachable: %w", owner, err))
		return
	}
	// release (when non-nil) cancels the winning attempt's context; it must
	// not run until the body copy below has finished, or the read fails with
	// "context canceled" after the status line is already on the wire.
	if release != nil {
		defer release()
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		n.metrics.proxy.With("shed").Inc()
	case resp.StatusCode/100 == 4:
		n.metrics.proxy.With("client_error").Inc()
	case resp.StatusCode/100 == 5:
		n.metrics.proxy.With("error").Inc()
	default:
		n.metrics.proxy.With("ok").Inc()
	}

	// Copy the downstream response verbatim: headers first (Retry-After,
	// Traceparent, X-Request-ID all pass through untouched), then status,
	// then body.
	h := w.Header()
	for k, vv := range resp.Header {
		if isHopHeader(k) {
			continue
		}
		h[k] = append([]string(nil), vv...)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// forward performs the outbound exchange against owner: the primary
// attempt, a single transport-error retry for idempotent requests (writes
// get none), and — when hedging is allowed — a single hedge launched after
// HedgeDelay when the primary is slow, or immediately when the primary dies
// before the delay elapses. Every wire attempt first spends a token from the
// request's shared retry budget; a dry pool suppresses retries and hedges
// alike, so primary+retry+hedge can never exceed the cap. First response
// wins; only the loser's context is canceled. The returned release func
// (non-nil exactly when resp is from a hedged race) cancels the WINNER's
// context and must be called only after resp.Body has been fully consumed —
// canceling earlier kills the body read mid-stream.
func (n *Node) forward(ctx context.Context, r *http.Request, owner string, body []byte, deadline time.Time, idempotent, hedge bool, tokens *retryTokens) (*http.Response, context.CancelFunc, error) {
	attempt := func(ctx context.Context) (*http.Response, error) {
		if !tokens.take() {
			return nil, errBudgetExhausted
		}
		out, err := n.outboundRequest(ctx, r, owner, body, deadline, tokens.remaining())
		if err != nil {
			return nil, err
		}
		resp, err := n.client.Do(out)
		if err == nil || !idempotent || ctx.Err() != nil {
			return resp, err
		}
		// Read-class retry: one immediate retry on a transport error, budget
		// permitting. GETs are idempotent and the error means no response
		// was produced, so a duplicate is safe.
		if !tokens.take() {
			return nil, err
		}
		out, rerr := n.outboundRequest(ctx, r, owner, body, deadline, tokens.remaining())
		if rerr != nil {
			return nil, err
		}
		return n.client.Do(out)
	}

	if !hedge || n.cfg.HedgeDelay < 0 {
		resp, err := attempt(ctx)
		return resp, nil, err
	}

	// Each attempt is tagged with its slot (0 primary, 1 hedge) so the
	// winner's cancel func — cancels[res.id] — can be told apart from the
	// loser's. Only the select loop touches cancels; attempts report ids.
	type result struct {
		id   int
		resp *http.Response
		err  error
	}
	var cancels [2]context.CancelFunc
	results := make(chan result, 2)
	pending := 0
	launch := func(id int) {
		var actx context.Context
		actx, cancels[id] = context.WithCancel(ctx)
		pending++
		go func() {
			resp, err := attempt(actx)
			results <- result{id, resp, err}
		}()
	}
	// drainLate reaps still-inflight attempts after the race is decided:
	// their contexts are canceled (idempotent re-cancel for the loser) and
	// their bodies closed so connections are returned or shut.
	drainLate := func(left int) {
		if left <= 0 {
			return
		}
		go func() {
			for i := 0; i < left; i++ {
				late := <-results
				if c := cancels[late.id]; c != nil {
					c()
				}
				if late.resp != nil {
					late.resp.Body.Close()
				}
			}
		}()
	}

	launch(0)
	hedgeTimer := time.NewTimer(n.cfg.HedgeDelay)
	defer hedgeTimer.Stop()

	launched := false
	var firstErr error
	for {
		select {
		case <-hedgeTimer.C:
			if !launched {
				launched = true
				if tokens.remaining() > 0 {
					n.metrics.hedges.Inc()
					launch(1)
				}
			}
		case res := <-results:
			pending--
			if res.err == nil {
				// Winner: cancel only the loser and drain it in the
				// background; the winner's own context stays live until the
				// caller has copied the body and invokes the release func.
				if other := cancels[1-res.id]; other != nil {
					other()
				}
				drainLate(pending)
				return res.resp, cancels[res.id], nil
			}
			cancels[res.id]()
			if firstErr == nil {
				firstErr = res.err
			}
			if !launched {
				// The primary died before the hedge fired: launch the hedge
				// immediately rather than waiting out the delay (budget
				// permitting).
				launched = true
				hedgeTimer.Stop()
				if tokens.remaining() > 0 {
					n.metrics.hedges.Inc()
					launch(1)
					continue
				}
			}
			if pending == 0 {
				return nil, nil, firstErr
			}
		case <-ctx.Done():
			for _, c := range cancels {
				if c != nil {
					c()
				}
			}
			drainLate(pending)
			return nil, nil, ctx.Err()
		}
	}
}

// outboundRequest builds one proxied attempt: same method/path/query against
// the owner, headers copied minus hop-by-hop, forwarding marker, deadline and
// remaining retry budget stamped, body replayed from the buffer.
func (n *Node) outboundRequest(ctx context.Context, r *http.Request, owner string, body []byte, deadline time.Time, budgetLeft int) (*http.Request, error) {
	u := *r.URL
	u.Scheme = "http"
	u.Host = owner
	out, err := http.NewRequestWithContext(ctx, r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vv := range r.Header {
		if isHopHeader(k) {
			continue
		}
		out.Header[k] = append([]string(nil), vv...)
	}
	out.Header.Set(ForwardedHeader, n.cfg.Self)
	out.Header.Set(DeadlineHeader, deadline.UTC().Format(time.RFC3339Nano))
	out.Header.Set(RetryBudgetHeader, strconv.Itoa(budgetLeft))
	return out, nil
}

// isHopHeader reports whether the canonical header is hop-by-hop.
func isHopHeader(k string) bool {
	for _, h := range hopHeaders {
		if strings.EqualFold(k, h) {
			return true
		}
	}
	return false
}

// stampTrace pre-stamps the response with the request's trace identity, so
// proxy-level failures are correlatable even though no downstream handler
// ever ran. On success the downstream's headers overwrite these with the
// same trace ID (the traceparent was forwarded).
func (n *Node) stampTrace(w http.ResponseWriter, r *http.Request) {
	if w.Header().Get("X-Request-ID") != "" {
		return
	}
	if tp, err := trace.Parse(r.Header.Get("Traceparent")); err == nil {
		w.Header().Set("Traceparent", tp.Header())
		w.Header().Set("X-Request-ID", tp.TraceID)
	}
}

// proxyError writes a fleet-level error in the server's envelope shape,
// trace-correlated via the request's (ensured) traceparent.
func (n *Node) proxyError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]map[string]string{"error": {
		"code":    "peer_unreachable",
		"message": err.Error(),
		"traceId": w.Header().Get("X-Request-ID"),
	}})
}

// setShedRetryAfter stamps a shed response's Retry-After: the advertised
// base plus the deterministic per-request jitter that de-synchronizes the
// herd of rejected clients (same discipline as the server's own sheds).
func (n *Node) setShedRetryAfter(w http.ResponseWriter, base int) {
	w.Header().Set("Retry-After",
		strconv.Itoa(guard.JitterRetryAfter(w.Header().Get("X-Request-ID"), base)))
}

// proxyShed writes an edge-shed rejection in the server's envelope shape.
func (n *Node) proxyShed(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]map[string]string{"error": {
		"code":    code,
		"message": msg,
		"traceId": w.Header().Get("X-Request-ID"),
	}})
}

// ceilSeconds converts a duration to whole seconds, floor 1.
func ceilSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
