package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// ForwardedHeader marks a request that already crossed one fleet hop. The
// receiving node serves it locally unconditionally: the sender routed on
// its ring view, and honoring a divergent local view would let a membership
// disagreement bounce a request forever.
const ForwardedHeader = "X-Rqp-Forwarded"

// DeadlineHeader propagates the proxy deadline downstream (RFC3339Nano), so
// the owner's handlers see the same budget the front door promised the
// client instead of restarting the clock per hop.
const DeadlineHeader = "X-Rqp-Deadline"

// proxyMaxBody caps the request body a node will buffer for proxying —
// matching the server's own request-body limit, so the proxy can replay the
// body across retry and hedge attempts.
const proxyMaxBody = 1 << 20

// hopHeaders are the HTTP/1.1 hop-by-hop headers a proxy must not forward.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// mintSessionID mints a fleet session ID: "f" + 12 random hex digits.
// Random (not sequential) because every node mints independently against
// the same shared data directory — sequential allocators collide across
// nodes, random IDs also spread placement uniformly over the ring.
func mintSessionID() string {
	b := make([]byte, 6)
	_, _ = rand.Read(b)
	return "f" + hex.EncodeToString(b)
}

// proxy forwards the request to owner, propagating the deadline, the trace
// identity (Traceparent was ensured by route) and the body; idempotent
// reads get one transport-error retry and a single hedge after HedgeDelay,
// writes get neither (a write that died on the wire may have executed).
// Response headers are copied verbatim — a downstream shed's Retry-After
// reaches the client untouched.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, owner string) {
	n.stampTrace(w, r)
	body, err := io.ReadAll(io.LimitReader(r.Body, proxyMaxBody+1))
	if err != nil {
		n.metrics.proxy.With("error").Inc()
		n.proxyError(w, http.StatusBadGateway, fmt.Errorf("fleet: read request body: %w", err))
		return
	}
	if len(body) > proxyMaxBody {
		n.metrics.proxy.With("client_error").Inc()
		n.proxyError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("fleet: request body exceeds %d bytes", proxyMaxBody))
		return
	}

	// One deadline spans the whole proxied exchange, hedges included; an
	// upstream hop's deadline (we are never >1 hop deep, but a client may
	// set one) caps it.
	budget := n.cfg.ProxyTimeout
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if t, err := time.Parse(time.RFC3339Nano, h); err == nil {
			if rem := time.Until(t); rem > 0 && rem < budget {
				budget = rem
			}
		}
	}
	deadline := time.Now().Add(budget)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead

	resp, err := n.forward(ctx, r, owner, body, deadline, idempotent)
	if err != nil {
		n.metrics.proxy.With("error").Inc()
		// The owner is unreachable (or the budget expired). Tell the client
		// when routing plausibly changes: one heartbeat interval from now
		// the owner is either probed back or marked down and re-hashed.
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(n.cfg.HeartbeatInterval)))
		n.proxyError(w, http.StatusBadGateway, fmt.Errorf("fleet: peer %s unreachable: %w", owner, err))
		return
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		n.metrics.proxy.With("shed").Inc()
	case resp.StatusCode/100 == 4:
		n.metrics.proxy.With("client_error").Inc()
	case resp.StatusCode/100 == 5:
		n.metrics.proxy.With("error").Inc()
	default:
		n.metrics.proxy.With("ok").Inc()
	}

	// Copy the downstream response verbatim: headers first (Retry-After,
	// Traceparent, X-Request-ID all pass through untouched), then status,
	// then body.
	h := w.Header()
	for k, vv := range resp.Header {
		if isHopHeader(k) {
			continue
		}
		h[k] = append([]string(nil), vv...)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// forward performs the outbound exchange against owner: the primary
// attempt, a single transport-error retry for idempotent requests (the
// read-class retry budget; writes have none), and a single hedge launched
// after HedgeDelay when the primary is slow. First response wins; the
// loser's context is canceled.
func (n *Node) forward(ctx context.Context, r *http.Request, owner string, body []byte, deadline time.Time, idempotent bool) (*http.Response, error) {
	attempt := func(ctx context.Context) (*http.Response, error) {
		out, err := n.outboundRequest(ctx, r, owner, body, deadline)
		if err != nil {
			return nil, err
		}
		resp, err := n.client.Do(out)
		if err == nil || !idempotent || ctx.Err() != nil {
			return resp, err
		}
		// Read-class retry budget: one immediate retry on a transport
		// error. GETs are idempotent and the error means no response was
		// produced, so a duplicate is safe.
		out, rerr := n.outboundRequest(ctx, r, owner, body, deadline)
		if rerr != nil {
			return nil, err
		}
		return n.client.Do(out)
	}

	if !idempotent || n.cfg.HedgeDelay < 0 {
		return attempt(ctx)
	}

	type result struct {
		resp *http.Response
		err  error
	}
	primCtx, primCancel := context.WithCancel(ctx)
	results := make(chan result, 2)
	go func() {
		resp, err := attempt(primCtx)
		results <- result{resp, err}
	}()

	hedgeTimer := time.NewTimer(n.cfg.HedgeDelay)
	defer hedgeTimer.Stop()

	var hedgeCancel context.CancelFunc
	launched := false
	pending := 1
	var firstErr error
	for {
		select {
		case <-hedgeTimer.C:
			if !launched {
				launched = true
				n.metrics.hedges.Inc()
				var hctx context.Context
				hctx, hedgeCancel = context.WithCancel(ctx)
				pending++
				go func() {
					resp, err := attempt(hctx)
					results <- result{resp, err}
				}()
			}
		case res := <-results:
			pending--
			if res.err == nil {
				// Winner: cancel the loser and drain it in the background
				// so its connection is returned or closed.
				if hedgeCancel != nil {
					hedgeCancel()
				}
				primCancel()
				if pending > 0 {
					go func(left int) {
						for i := 0; i < left; i++ {
							if late := <-results; late.resp != nil {
								late.resp.Body.Close()
							}
						}
					}(pending)
				}
				return res.resp, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if pending == 0 {
				primCancel()
				if hedgeCancel != nil {
					hedgeCancel()
				}
				return nil, firstErr
			}
			// One attempt failed but another is still in flight (or the
			// hedge hasn't launched): if the primary died before the hedge
			// fired, launch the hedge immediately rather than waiting out
			// the delay.
			if !launched {
				hedgeTimer.Reset(0)
			}
		case <-ctx.Done():
			primCancel()
			if hedgeCancel != nil {
				hedgeCancel()
			}
			if pending > 0 {
				go func(left int) {
					for i := 0; i < left; i++ {
						if late := <-results; late.resp != nil {
							late.resp.Body.Close()
						}
					}
				}(pending)
			}
			return nil, ctx.Err()
		}
	}
}

// outboundRequest builds one proxied attempt: same method/path/query against
// the owner, headers copied minus hop-by-hop, forwarding marker and deadline
// stamped, body replayed from the buffer.
func (n *Node) outboundRequest(ctx context.Context, r *http.Request, owner string, body []byte, deadline time.Time) (*http.Request, error) {
	u := *r.URL
	u.Scheme = "http"
	u.Host = owner
	out, err := http.NewRequestWithContext(ctx, r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vv := range r.Header {
		if isHopHeader(k) {
			continue
		}
		out.Header[k] = append([]string(nil), vv...)
	}
	out.Header.Set(ForwardedHeader, n.cfg.Self)
	out.Header.Set(DeadlineHeader, deadline.UTC().Format(time.RFC3339Nano))
	return out, nil
}

// isHopHeader reports whether the canonical header is hop-by-hop.
func isHopHeader(k string) bool {
	for _, h := range hopHeaders {
		if strings.EqualFold(k, h) {
			return true
		}
	}
	return false
}

// stampTrace pre-stamps the response with the request's trace identity, so
// proxy-level failures are correlatable even though no downstream handler
// ever ran. On success the downstream's headers overwrite these with the
// same trace ID (the traceparent was forwarded).
func (n *Node) stampTrace(w http.ResponseWriter, r *http.Request) {
	if w.Header().Get("X-Request-ID") != "" {
		return
	}
	if tp, err := trace.Parse(r.Header.Get("Traceparent")); err == nil {
		w.Header().Set("Traceparent", tp.Header())
		w.Header().Set("X-Request-ID", tp.TraceID)
	}
}

// proxyError writes a fleet-level error in the server's envelope shape,
// trace-correlated via the request's (ensured) traceparent.
func (n *Node) proxyError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]map[string]string{"error": {
		"code":    "peer_unreachable",
		"message": err.Error(),
		"traceId": w.Header().Get("X-Request-ID"),
	}})
}

// ceilSeconds converts a duration to whole seconds, floor 1.
func ceilSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
