package fleet

import (
	"os"
	"path/filepath"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// Any-node failover. The shared data directory is the durable substrate:
// every session's metadata, persisted ESS and checkpointed run states live
// under <DataDir>/<sessionID>/, written atomically by the owning node. When
// a heartbeat marks an owner down, its sessions re-hash to survivors, and
// each survivor adopts the share it now owns: re-register the session from
// its metadata, rehydrate the persisted ESS, advance the ownership epoch
// (fencing the dead — or merely partitioned — owner's late checkpoints
// out), and resume every interrupted durable run from its last checkpoint.
// Nothing is replicated and nothing is coordinated: the ring is derived
// state, the epoch file is the lock, and the monotone discovery state makes
// any checkpoint a valid restart point.

// scanOrphans walks the shared data directory and adopts every session this
// node owns under the current ring but does not hold in memory. It runs at
// boot (this node's share of a cold fleet), on every peer mark-down (the
// dead peer's share), and periodically (races between scan and transition).
func (n *Node) scanOrphans() {
	entries, err := os.ReadDir(n.cfg.DataDir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		if n.owner(id) != n.cfg.Self || n.srv.HasSession(id) {
			continue
		}
		n.adopt(id)
	}
}

// sessionOnDisk reports whether the shared data directory holds a session
// directory (with metadata) under id.
func (n *Node) sessionOnDisk(id string) bool {
	if n.cfg.DataDir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(n.cfg.DataDir, id, "session.json"))
	return err == nil
}

// adopt takes ownership of one orphaned session: synchronous registration
// (requests immediately see it building), asynchronous ESS rehydration,
// then epoch fencing and checkpoint resume inside the server's adoption
// path. Concurrent adopters of the same session (a request racing the
// orphan scan) collapse to one — the server rejects duplicate IDs, and the
// adopting set keeps this node from even trying twice.
func (n *Node) adopt(id string) {
	n.adoptMu.Lock()
	if n.adopting[id] {
		n.adoptMu.Unlock()
		return
	}
	n.adopting[id] = true
	n.adoptMu.Unlock()
	defer func() {
		n.adoptMu.Lock()
		delete(n.adopting, id)
		n.adoptMu.Unlock()
	}()

	err := n.srv.AdoptSession(id, server.AdoptOptions{
		Node: n.cfg.Self,
		OnFailover: func(runID string, rerr error) {
			if rerr != nil {
				return
			}
			n.metrics.failovers.Inc()
			// The failover lands in the fleet's membership timeline too, so
			// one flamegraph shows the mark-down and the adoptions it
			// triggered side by side.
			n.rec.Record(telemetry.Event{Kind: telemetry.Failover, Dim: -1, Detail: runID, Mode: n.cfg.Self})
			n.publishFleetTrace()
		},
	})
	_ = err // duplicate registration (a racing adopter won) is fine
}
