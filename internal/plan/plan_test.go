package plan

import (
	"math/rand"
	"strings"
	"testing"
)

// buildExample constructs the shape of the paper's Fig. 4 discussion:
//
//	HJ[j2]( HJ[j0](Scan0, Scan1), Sort(NL[j1](Scan2, Scan3)) ) — but
//
// simplified here to a three-join tree exercising every operator kind:
//
//	MJ[j2]
//	├─ Sort ─ HJ[j0](Scan0, Scan1)
//	└─ Sort ─ NL[j1](Scan2, Scan3)
func buildExample() *Plan {
	hj := &Node{Kind: HashJoin, Rel: -1, JoinIDs: []int{0},
		Left:  &Node{Kind: SeqScan, Rel: 0},
		Right: &Node{Kind: SeqScan, Rel: 1},
	}
	nl := &Node{Kind: NestLoop, Rel: -1, JoinIDs: []int{1},
		Left:  &Node{Kind: SeqScan, Rel: 2},
		Right: &Node{Kind: SeqScan, Rel: 3},
	}
	mj := &Node{Kind: MergeJoin, Rel: -1, JoinIDs: []int{2},
		Left:  &Node{Kind: Sort, Rel: -1, Left: hj},
		Right: &Node{Kind: Sort, Rel: -1, Left: nl},
	}
	return New(mj)
}

func TestFingerprintIdentity(t *testing.T) {
	a, b := buildExample(), buildExample()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical trees fingerprint differently: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	// Swapping join inputs must change the fingerprint.
	c := buildExample()
	c.Root.Left.Left.Left, c.Root.Left.Left.Right = c.Root.Left.Left.Right, c.Root.Left.Left.Left
	c = New(c.Root)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("swapped-input tree has same fingerprint")
	}
}

func TestRelationsMask(t *testing.T) {
	p := buildExample()
	if p.Relations() != 0b1111 {
		t.Errorf("Relations = %b, want 1111", p.Relations())
	}
}

func TestFindJoinNode(t *testing.T) {
	p := buildExample()
	for id := 0; id < 3; id++ {
		n := p.FindJoinNode(id)
		if n == nil {
			t.Fatalf("FindJoinNode(%d) = nil", id)
		}
		if n.JoinIDs[0] != id {
			t.Errorf("FindJoinNode(%d).JoinIDs = %v", id, n.JoinIDs)
		}
	}
	if p.FindJoinNode(9) != nil {
		t.Error("FindJoinNode(9) should be nil")
	}
}

func TestPipelineDecomposition(t *testing.T) {
	p := buildExample()
	pls := p.Pipelines()
	// Expected pipelines in execution order:
	//  0: Scan1 (HJ build)
	//  1: Scan0, HJ, Sort      (left sort input)
	//  2: Scan3 (NL inner materialization)
	//  3: Scan2, NL, Sort      (right sort input)
	//  4: MJ                   (root)
	if len(pls) != 5 {
		t.Fatalf("pipelines = %d, want 5:\n%s", len(pls), p.Format(nil))
	}
	kindSeq := func(pl Pipeline) string {
		var parts []string
		for _, n := range pl.Nodes {
			parts = append(parts, n.Kind.String())
		}
		return strings.Join(parts, ",")
	}
	want := []string{"Scan", "Scan,HJ,Sort", "Scan", "Scan,NL,Sort", "MJ"}
	for i, w := range want {
		if got := kindSeq(pls[i]); got != w {
			t.Errorf("pipeline %d = %s, want %s", i, got, w)
		}
	}
}

func TestPipelineSimpleHashChain(t *testing.T) {
	// HJ1(probe=HJ0(probe=Scan0, build=Scan1), build=Scan2):
	// builds complete before their probe pipelines stream; the top build
	// (Scan2) materializes first under demand-driven pulls.
	hj0 := &Node{Kind: HashJoin, Rel: -1, JoinIDs: []int{0},
		Left: &Node{Kind: SeqScan, Rel: 0}, Right: &Node{Kind: SeqScan, Rel: 1}}
	hj1 := &Node{Kind: HashJoin, Rel: -1, JoinIDs: []int{1},
		Left: hj0, Right: &Node{Kind: SeqScan, Rel: 2}}
	p := New(hj1)
	pls := p.Pipelines()
	if len(pls) != 3 {
		t.Fatalf("pipelines = %d, want 3", len(pls))
	}
	if pls[0].Nodes[0].Rel != 2 {
		t.Errorf("first pipeline scans rel %d, want 2 (outermost build)", pls[0].Nodes[0].Rel)
	}
	if pls[1].Nodes[0].Rel != 1 {
		t.Errorf("second pipeline scans rel %d, want 1", pls[1].Nodes[0].Rel)
	}
	last := pls[2].Nodes
	if len(last) != 3 || last[0].Rel != 0 || last[1] != hj0 || last[2] != hj1 {
		t.Errorf("root pipeline malformed: %v", last)
	}
}

func TestEPPOrder(t *testing.T) {
	p := buildExample()
	order := p.EPPOrder([]int{0, 1, 2}, nil)
	if len(order) != 3 {
		t.Fatalf("EPPOrder len = %d, want 3", len(order))
	}
	// HJ (j0) streams in pipeline 1, NL (j1) in pipeline 3, MJ (j2) in
	// pipeline 4: inter-pipeline rule orders them j0, j1, j2.
	want := []int{0, 1, 2}
	for i, e := range order {
		if e.JoinID != want[i] {
			t.Errorf("order[%d] = j%d, want j%d", i, e.JoinID, want[i])
		}
	}
}

func TestEPPOrderIntraPipeline(t *testing.T) {
	// Two hash joins in the same probe pipeline: upstream (deeper) first.
	hj0 := &Node{Kind: HashJoin, Rel: -1, JoinIDs: []int{0},
		Left: &Node{Kind: SeqScan, Rel: 0}, Right: &Node{Kind: SeqScan, Rel: 1}}
	hj1 := &Node{Kind: HashJoin, Rel: -1, JoinIDs: []int{1},
		Left: hj0, Right: &Node{Kind: SeqScan, Rel: 2}}
	p := New(hj1)
	order := p.EPPOrder([]int{0, 1}, nil)
	if len(order) != 2 || order[0].JoinID != 0 || order[1].JoinID != 1 {
		t.Fatalf("EPPOrder = %+v, want j0 before j1", order)
	}
	if order[0].Pipeline != order[1].Pipeline {
		t.Errorf("hash joins should share a pipeline: %d vs %d", order[0].Pipeline, order[1].Pipeline)
	}
}

func TestEPPOrderLearnedExcluded(t *testing.T) {
	p := buildExample()
	order := p.EPPOrder([]int{0, 1, 2}, map[int]bool{0: true})
	if len(order) != 2 || order[0].JoinID != 1 {
		t.Fatalf("EPPOrder with learned j0 = %+v", order)
	}
	// Subset of epps only.
	order = p.EPPOrder([]int{2}, nil)
	if len(order) != 1 || order[0].JoinID != 2 {
		t.Fatalf("EPPOrder([2]) = %+v", order)
	}
}

func TestSpillTarget(t *testing.T) {
	p := buildExample()
	e, ok := p.SpillTarget([]int{1, 2}, nil)
	if !ok || e.JoinID != 1 {
		t.Errorf("SpillTarget = %+v, %v; want j1", e, ok)
	}
	if _, ok := p.SpillTarget([]int{0}, map[int]bool{0: true}); ok {
		t.Error("SpillTarget with everything learned should report !ok")
	}
}

func TestSubtree(t *testing.T) {
	p := buildExample()
	sub := p.Subtree(0)
	if sub == nil {
		t.Fatal("Subtree(0) = nil")
	}
	if sub.Root.Kind != HashJoin || sub.Relations() != 0b0011 {
		t.Errorf("Subtree(0) root=%v rels=%b", sub.Root.Kind, sub.Relations())
	}
	if got := len(sub.Pipelines()); got != 2 {
		t.Errorf("subtree pipelines = %d, want 2", got)
	}
	if p.Subtree(42) != nil {
		t.Error("Subtree(42) should be nil")
	}
}

func TestFormat(t *testing.T) {
	p := buildExample()
	out := p.Format([]string{"a", "b", "c", "d"})
	for _, want := range []string{"MJ[j2]", "Scan(a)", "Scan(d)", "Sort"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	// Unnamed relations fall back to rel indices.
	out = p.Format(nil)
	if !strings.Contains(out, "rel0") {
		t.Errorf("Format(nil) should use rel indices:\n%s", out)
	}
}

func TestOpKindString(t *testing.T) {
	kinds := map[OpKind]string{SeqScan: "Scan", HashJoin: "HJ", MergeJoin: "MJ", NestLoop: "NL", Sort: "Sort"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(OpKind(42).String(), "42") {
		t.Error("unknown OpKind should include its value")
	}
}

// TestFingerprintUniquenessOnRandomTrees: structurally different random
// trees must fingerprint differently (collision-freedom in practice).
func TestFingerprintUniquenessOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var build func(depth int, nextRel *int, nextJoin *int) *Node
	build = func(depth int, nextRel *int, nextJoin *int) *Node {
		if depth == 0 || rng.Intn(3) == 0 {
			n := &Node{Kind: SeqScan, Rel: *nextRel}
			*nextRel++
			return n
		}
		kinds := []OpKind{HashJoin, MergeJoin, NestLoop, IndexNestLoop}
		kind := kinds[rng.Intn(len(kinds))]
		var left, right *Node
		if kind == MergeJoin {
			left = &Node{Kind: Sort, Rel: -1, Left: build(depth-1, nextRel, nextJoin)}
			right = &Node{Kind: Sort, Rel: -1, Left: build(depth-1, nextRel, nextJoin)}
		} else {
			left = build(depth-1, nextRel, nextJoin)
			right = &Node{Kind: SeqScan, Rel: *nextRel}
			*nextRel++
			if kind != IndexNestLoop && rng.Intn(2) == 0 {
				right = build(depth-1, nextRel, nextJoin)
			}
		}
		n := &Node{Kind: kind, Rel: -1, JoinIDs: []int{*nextJoin}, Left: left, Right: right}
		*nextJoin++
		return n
	}
	seen := map[string]string{}
	for trial := 0; trial < 300; trial++ {
		rel, join := 0, 0
		p := New(build(3, &rel, &join))
		fp := p.Fingerprint()
		if prev, dup := seen[fp]; dup && prev != p.Format(nil) {
			t.Fatalf("fingerprint collision:\n%s\nvs\n%s", prev, p.Format(nil))
		}
		seen[fp] = p.Format(nil)
	}
	if len(seen) < 50 {
		t.Errorf("generator produced only %d distinct trees", len(seen))
	}
}
