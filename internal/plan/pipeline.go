package plan

// Pipeline is a maximal set of concurrently executing operators under the
// demand-driven iterator model. Nodes appear in upstream-to-downstream
// order: Nodes[0] is the deepest producer, the last entry is the operator
// whose output leaves the pipeline (to a blocking consumer or the user).
type Pipeline struct {
	// Nodes lists the pipeline's operators upstream-first.
	Nodes []*Node
}

// decompose splits a plan tree into its pipelines in execution order:
// pipelines[i] runs to completion before pipelines[j] for i < j. The rules
// mirror common engine behaviour (and paper Sec 3.1.1):
//
//   - a hash join's build side forms earlier pipelines; the join itself
//     streams in its probe side's pipeline;
//   - a nested-loop join's inner side is materialized first (earlier
//     pipelines); the join streams with its outer side;
//   - Sort is a pipeline breaker terminating its input pipeline;
//   - MergeJoin streams from its (sorted) inputs.
func decompose(root *Node) []Pipeline {
	var result []Pipeline
	var rec func(n *Node, cur *[]*Node)
	rec = func(n *Node, cur *[]*Node) {
		switch n.Kind {
		case SeqScan:
			*cur = append(*cur, n)
		case HashJoin, NestLoop:
			// Blocking child first: build side / materialized inner.
			var blocked []*Node
			rec(n.Right, &blocked)
			result = append(result, Pipeline{Nodes: blocked})
			rec(n.Left, cur)
			*cur = append(*cur, n)
		case MergeJoin:
			rec(n.Left, cur)
			rec(n.Right, cur)
			*cur = append(*cur, n)
		case IndexNestLoop:
			// The inner relation is probed through its index per outer
			// tuple; no separate pipeline materializes. The scan node is
			// recorded in the same pipeline for completeness.
			rec(n.Left, cur)
			rec(n.Right, cur)
			*cur = append(*cur, n)
		case Sort, Aggregate:
			var in []*Node
			rec(n.Left, &in)
			in = append(in, n)
			result = append(result, Pipeline{Nodes: in})
		}
	}
	var rootP []*Node
	rec(root, &rootP)
	result = append(result, Pipeline{Nodes: rootP})
	return result
}

// Pipelines returns the plan's pipelines in execution order.
func (p *Plan) Pipelines() []Pipeline { return p.pipelines }

// EPPNode pairs an error-prone join predicate with the plan node that
// applies it.
type EPPNode struct {
	// JoinID is the predicate's ID in the query's join list.
	JoinID int
	// Node is the join node applying it.
	Node *Node
	// Pipeline is the index of the node's pipeline in execution order.
	Pipeline int
	// Position is the node's upstream-first position within the pipeline.
	Position int
}

// EPPOrder returns the plan's error-prone predicate nodes in the total
// order of paper Sec 3.1.3: first by the execution order of their
// pipelines (inter-pipeline rule), then upstream-before-downstream within
// a pipeline (intra-pipeline rule). Only predicates in epps are considered;
// predicates in learned are excluded. The first element, if any, is the
// plan's spill node.
func (p *Plan) EPPOrder(epps []int, learned map[int]bool) []EPPNode {
	want := make(map[int]bool, len(epps))
	for _, id := range epps {
		if !learned[id] {
			want[id] = true
		}
	}
	var out []EPPNode
	for pi, pl := range p.pipelines {
		for pos, n := range pl.Nodes {
			if n.Kind == SeqScan || n.Kind == Sort || n.Kind == Aggregate || len(n.JoinIDs) == 0 {
				continue
			}
			if id := n.JoinIDs[0]; want[id] {
				out = append(out, EPPNode{JoinID: id, Node: n, Pipeline: pi, Position: pos})
			}
		}
	}
	return out
}

// SpillTarget returns the predicate and node this plan would spill on given
// the unlearned epp set: the first entry of EPPOrder. ok is false when the
// plan contains no spillable epp node.
func (p *Plan) SpillTarget(epps []int, learned map[int]bool) (EPPNode, bool) {
	order := p.EPPOrder(epps, learned)
	if len(order) == 0 {
		return EPPNode{}, false
	}
	return order[0], true
}

// Subtree returns the plan consisting only of the subtree rooted at the
// node applying joinID — the modified plan that spill-mode execution runs
// (paper Sec 3.1.2). It returns nil if the predicate is not applied by
// this plan.
func (p *Plan) Subtree(joinID int) *Plan {
	n := p.FindJoinNode(joinID)
	if n == nil {
		return nil
	}
	return New(n)
}
