// Package plan defines physical execution plan trees and the structural
// analyses the robust-processing algorithms need: pipeline decomposition
// under the demand-driven iterator model (paper Sec 3.1.1), the total order
// over error-prone predicate nodes that drives spill-node identification
// (Sec 3.1.3), and canonical plan fingerprints used for POSP identity.
package plan

import (
	"fmt"
	"strings"
)

// OpKind enumerates the physical operators.
type OpKind int

// Physical operator kinds.
const (
	// SeqScan reads a base relation, applying its filter predicates.
	SeqScan OpKind = iota
	// HashJoin builds a hash table on the right (build) child and probes
	// it with tuples from the left (probe) child.
	HashJoin
	// MergeJoin merges its two sorted children; children are Sort nodes
	// unless already sorted.
	MergeJoin
	// NestLoop is a block nested-loops join: the right (inner) child is
	// materialized once, then scanned per outer tuple.
	NestLoop
	// IndexNestLoop probes an index on the right child's base relation for
	// each outer tuple; the right child must be a SeqScan node standing for
	// the indexed relation. Cheap at low join selectivity, catastrophic at
	// high — the classic robustness trap.
	IndexNestLoop
	// Sort sorts its input; a pipeline breaker.
	Sort
	// Aggregate hash-aggregates its input by the query's GROUP BY columns;
	// a pipeline breaker (consumes all input before emitting groups).
	Aggregate
)

// String returns a short operator mnemonic.
func (k OpKind) String() string {
	switch k {
	case SeqScan:
		return "Scan"
	case HashJoin:
		return "HJ"
	case MergeJoin:
		return "MJ"
	case NestLoop:
		return "NL"
	case IndexNestLoop:
		return "INL"
	case Sort:
		return "Sort"
	case Aggregate:
		return "Agg"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Node is one operator in a plan tree. Nodes are immutable after
// construction; per-location cost annotations live outside the tree
// (see package cost) so that POSP plans can be shared across the ESS.
type Node struct {
	// Kind is the physical operator.
	Kind OpKind
	// Rel is the relation index for SeqScan nodes, -1 otherwise.
	Rel int
	// JoinIDs lists the join predicates applied at this node (for join
	// kinds): the first entry is the primary equi-join condition; further
	// entries are predicates that become applicable because both their
	// sides are present.
	JoinIDs []int
	// Left and Right are the children. SeqScan has none; Sort has only
	// Left.
	Left, Right *Node
}

// Plan is an immutable physical plan with cached derived structure.
type Plan struct {
	// Root is the top operator.
	Root *Node

	fingerprint string
	pipelines   []Pipeline
	relSet      uint64
}

// New constructs a Plan around the given root and precomputes its
// fingerprint and pipeline decomposition.
func New(root *Node) *Plan {
	p := &Plan{Root: root}
	p.fingerprint = fingerprint(root)
	p.pipelines = decompose(root)
	root.walk(func(n *Node) {
		if n.Kind == SeqScan {
			p.relSet |= 1 << uint(n.Rel)
		}
	})
	return p
}

// Fingerprint returns a canonical string identifying the plan's structure;
// two plans with equal fingerprints are the same plan.
func (p *Plan) Fingerprint() string { return p.fingerprint }

// Relations returns the bitmask of relation indices the plan scans.
func (p *Plan) Relations() uint64 { return p.relSet }

// walk visits the subtree rooted at n in pre-order.
func (n *Node) walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	n.Left.walk(f)
	n.Right.walk(f)
}

// Walk visits every node of the plan in pre-order.
func (p *Plan) Walk(f func(*Node)) { p.Root.walk(f) }

// FindJoinNode returns the node applying the given join predicate as its
// primary condition, or nil if the plan has no such node.
func (p *Plan) FindJoinNode(joinID int) *Node {
	var found *Node
	p.Walk(func(n *Node) {
		if found != nil || n.Kind == SeqScan || n.Kind == Sort || n.Kind == Aggregate {
			return
		}
		for _, id := range n.JoinIDs {
			if id == joinID {
				found = n
				return
			}
		}
	})
	return found
}

func fingerprint(n *Node) string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case SeqScan:
		return fmt.Sprintf("S%d", n.Rel)
	case Sort:
		return "σ(" + fingerprint(n.Left) + ")"
	case Aggregate:
		return "γ(" + fingerprint(n.Left) + ")"
	default:
		ids := make([]string, len(n.JoinIDs))
		for i, id := range n.JoinIDs {
			ids[i] = fmt.Sprint(id)
		}
		return fmt.Sprintf("%s%s(%s,%s)", n.Kind, strings.Join(ids, "+"),
			fingerprint(n.Left), fingerprint(n.Right))
	}
}

// Format renders the plan as an indented tree, with relation aliases
// resolved through names (indexed by relation).
func (p *Plan) Format(names []string) string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if n == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		switch n.Kind {
		case SeqScan:
			name := fmt.Sprintf("rel%d", n.Rel)
			if n.Rel >= 0 && n.Rel < len(names) {
				name = names[n.Rel]
			}
			fmt.Fprintf(&b, "Scan(%s)\n", name)
		case Sort:
			b.WriteString("Sort\n")
		case Aggregate:
			b.WriteString("Aggregate\n")
		default:
			ids := make([]string, len(n.JoinIDs))
			for i, id := range n.JoinIDs {
				ids[i] = fmt.Sprintf("j%d", id)
			}
			fmt.Fprintf(&b, "%s[%s]\n", n.Kind, strings.Join(ids, ","))
		}
		rec(n.Left, depth+1)
		rec(n.Right, depth+1)
	}
	rec(p.Root, 0)
	return b.String()
}
