package runstate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store manages one session's durable data directory:
//
//	<dir>/space.ess       the persisted ESS (written by the session layer)
//	<dir>/runs/<id>.json  one versioned RunState snapshot per durable run
//
// All writes are atomic (temp file in the same directory + rename), so a
// crash mid-write never corrupts the previous snapshot: readers see either
// the old state or the new one, never a torn file.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the session data directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstate: empty data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// SpacePath returns the path the persisted ESS lives at.
func (st *Store) SpacePath() string { return filepath.Join(st.dir, "space.ess") }

// runPath returns the snapshot path of a run.
func (st *Store) runPath(runID string) string {
	return filepath.Join(st.dir, "runs", runID+".json")
}

// validRunID rejects IDs that would escape the runs directory.
func validRunID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return fmt.Errorf("runstate: invalid run id %q", id)
	}
	return nil
}

// SaveRun atomically persists the snapshot under its RunID. Writes stamped
// with an ownership epoch older than the session's on-disk epoch are
// rejected with ErrFenced: after a failover advanced the epoch, the
// previous owner's late checkpoints must not clobber the new owner's state.
func (st *Store) SaveRun(rs *RunState) error {
	if err := validRunID(rs.RunID); err != nil {
		return err
	}
	// The fence fails closed: an unreadable epoch state (degraded shared FS —
	// exactly the conditions under which failover happens) must block the
	// write, not silently skip the check. LoadEpoch maps not-exist to (0, nil)
	// so single-process deployments never pay for this.
	cur, node, err := st.LoadEpoch()
	if err != nil {
		return fmt.Errorf("runstate: save run %s: fence check: %w", rs.RunID, err)
	}
	if cur > rs.Epoch {
		return fmt.Errorf("%w: run %s stamped epoch %d, session epoch %d (owner %s)",
			ErrFenced, rs.RunID, rs.Epoch, cur, node)
	}
	rs.SchemaVersion = Version
	data, err := json.Marshal(rs)
	if err != nil {
		return fmt.Errorf("runstate: encode run %s: %w", rs.RunID, err)
	}
	return WriteFileAtomic(st.runPath(rs.RunID), data)
}

// Decode parses and validates a serialized run snapshot — the pure half of
// LoadRun, factored out so untrusted bytes (torn files, version skew, fuzz
// inputs) exercise exactly the code recovery runs.
func Decode(data []byte) (*RunState, error) {
	var rs RunState
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("runstate: decode run: %w", err)
	}
	if rs.SchemaVersion != Version {
		return nil, fmt.Errorf("runstate: decode run: unsupported version %d", rs.SchemaVersion)
	}
	return &rs, nil
}

// LoadRun reads and validates a run snapshot.
func (st *Store) LoadRun(runID string) (*RunState, error) {
	if err := validRunID(runID); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(st.runPath(runID))
	if err != nil {
		return nil, fmt.Errorf("runstate: load run %s: %w", runID, err)
	}
	rs, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("runstate: load run %s: %w", runID, err)
	}
	if rs.RunID == "" {
		rs.RunID = runID
	}
	return rs, nil
}

// DeleteRun removes a run snapshot (missing files are not an error).
func (st *Store) DeleteRun(runID string) error {
	if err := validRunID(runID); err != nil {
		return err
	}
	if err := os.Remove(st.runPath(runID)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("runstate: delete run %s: %w", runID, err)
	}
	return nil
}

// Runs lists every run snapshot ID in the store, sorted.
func (st *Store) Runs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "runs"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runstate: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(out)
	return out, nil
}

// Interrupted lists the runs whose last snapshot is not terminal — the runs
// a recovering process should resume (or fail over). Snapshots that fail to
// load (torn by a crash predating atomic writes, or version-skewed) are
// skipped rather than wedging recovery.
func (st *Store) Interrupted() ([]string, error) {
	ids, err := st.Runs()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, id := range ids {
		rs, err := st.LoadRun(id)
		if err != nil || rs.Completed {
			continue
		}
		out = append(out, id)
	}
	return out, nil
}

// WriteFileAtomic writes data to path via a temp file in the same directory
// followed by a rename, so concurrent readers and post-crash recovery never
// observe a partially written file.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runstate: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstate: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstate: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("runstate: commit %s: %w", path, err)
	}
	return nil
}
