package runstate

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeRunState throws arbitrary bytes at the snapshot decoder — the
// exact code path crash recovery runs against on-disk files it did not
// necessarily write (torn by a pre-atomic-write crash, version-skewed, or
// corrupted). The decoder must never panic, must reject version skew, and an
// accepted snapshot must survive a re-encode/decode round trip.
func FuzzDecodeRunState(f *testing.F) {
	valid, err := json.Marshal(RunState{
		SchemaVersion: Version, RunID: "r1", Algorithm: "spillbound",
		Truth: []float64{0.02, 0.3}, Seed: 7,
		Discovery: Discovery{
			Contour: 2, Spent: 12.5,
			Learned: map[int]float64{0: 0.3},
			Bounds:  map[int]float64{1: 0.01},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"version":99,"runId":"r2"}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"truth":[1e999]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := Decode(data)
		if err != nil {
			if rs != nil {
				t.Fatalf("Decode returned both a state and an error: %v", err)
			}
			return
		}
		if rs == nil {
			t.Fatal("Decode returned nil state without error")
		}
		if rs.SchemaVersion != Version {
			t.Fatalf("accepted snapshot with version %d", rs.SchemaVersion)
		}
		out, err := json.Marshal(rs)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
	})
}
