package runstate

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestAdvanceEpochConcurrentAdoptersElectOneOwnerPerEpoch pins the CAS
// contract the fence rests on: when several nodes race AdvanceEpoch over the
// same session directory (divergent ring views during a membership
// transition), no two adopters may ever be handed the SAME epoch — that
// would leave neither fencing the other. Losers get ErrEpochRace, and the
// final on-disk epoch equals exactly one advance per win.
func TestAdvanceEpochConcurrentAdoptersElectOneOwnerPerEpoch(t *testing.T) {
	dir := t.TempDir()
	const adopters = 8
	var wg sync.WaitGroup
	startc := make(chan struct{})
	epochs := make([]int64, adopters)
	results := make([]error, adopters)
	for i := 0; i < adopters; i++ {
		st, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			<-startc
			epochs[i], results[i] = st.AdvanceEpoch(fmt.Sprintf("node-%d", i))
		}(i, st)
	}
	close(startc)
	wg.Wait()

	won := map[int64]int{}
	wins := 0
	for i, err := range results {
		if err == nil {
			wins++
			if prev, dup := won[epochs[i]]; dup {
				t.Fatalf("epoch %d claimed by adopters %d and %d: the advance is not atomic", epochs[i], prev, i)
			}
			won[epochs[i]] = i
			continue
		}
		if !IsEpochRace(err) {
			t.Fatalf("adopter %d: non-race failure: %v", i, err)
		}
	}
	if wins == 0 {
		t.Fatal("no adopter won the epoch CAS")
	}
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if final, _, err := st.LoadEpoch(); err != nil || final != int64(wins) {
		t.Fatalf("final epoch = %d (err %v), want one advance per CAS win = %d", final, err, wins)
	}
}

// TestAdvanceEpochSequenceAndRecord: sequential advances claim consecutive
// epochs, each recording its node, and a rival's claim appearing on disk is
// simply the new maximum for the next advance.
func TestAdvanceEpochSequenceAndRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := st.AdvanceEpoch("node-a"); err != nil || n != 1 {
		t.Fatalf("first advance = (%d, %v), want 1", n, err)
	}
	// A rival winner's claim landing on shared disk (what a concurrent
	// adoption on another node leaves behind) raises the maximum...
	if err := os.WriteFile(filepath.Join(dir, "epoch-4.json"), []byte(`{"epoch":4,"node":"rival"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if epoch, node, err := st.LoadEpoch(); err != nil || epoch != 4 || node != "rival" {
		t.Fatalf("epoch record = (%d, %q, %v), want (4, rival)", epoch, node, err)
	}
	// ...and the next advance claims past it.
	if n, err := st.AdvanceEpoch("node-a"); err != nil || n != 5 {
		t.Fatalf("advance past rival claim = (%d, %v), want 5", n, err)
	}
}

// TestEpochTornClaimStillFences: a creator that crashed between the O_EXCL
// create and the body write leaves an empty claim file. The filename is the
// commit point — the epoch must count and fence, only the owning node's
// name is lost.
func TestEpochTornClaimStillFences(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "epoch-2.json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	epoch, node, err := st.LoadEpoch()
	if err != nil || epoch != 2 || node != "" {
		t.Fatalf("torn claim loaded as (%d, %q, %v), want (2, \"\")", epoch, node, err)
	}
	if err := st.SaveRun(&RunState{RunID: "r1", Epoch: 0}); !IsFenced(err) {
		t.Fatalf("stale write past a torn claim: want ErrFenced, got %v", err)
	}
	if err := st.SaveRun(&RunState{RunID: "r1", Epoch: 2}); err != nil {
		t.Fatalf("current-epoch write rejected: %v", err)
	}
}

// TestSaveRunFailsClosedOnUnreadableEpoch: when the epoch state cannot be
// read at all (degraded shared filesystem — the very conditions failover
// happens under), the fence must reject the write rather than silently
// skipping the check.
func TestSaveRunFailsClosedOnUnreadableEpoch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the session directory into a plain file: the epoch scan now
	// fails with ENOTDIR instead of not-exist.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = st.SaveRun(&RunState{RunID: "r1"})
	if err == nil || IsFenced(err) || !strings.Contains(err.Error(), "fence check") {
		t.Fatalf("want a fail-closed fence-check error, got %v", err)
	}
}
