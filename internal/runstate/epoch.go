package runstate

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Ownership epochs fence a session's durable runs across owner changes.
//
// A single-process deployment never advances the epoch: every snapshot and
// the (absent) epoch files agree on epoch 0 and fencing is inert. In a
// fleet, the node adopting an orphaned session calls AdvanceEpoch before
// resuming its runs; the new epoch is stamped into every snapshot the new
// owner writes, and SaveRun rejects any write whose stamped epoch is older
// than the session's on-disk epoch. A "zombie" owner — one that lost the
// session to failover but is still executing a run — therefore gets a
// terminal ErrFenced on its next checkpoint instead of silently clobbering
// the new owner's state.
//
// The epoch is materialized as one claim file per advance,
// <dir>/epoch-<n>.json, created with O_EXCL so claiming epoch n is an
// atomic compare-and-swap against the shared filesystem: two nodes whose
// ring views diverged during a membership transition can both try to adopt
// the same session, and exactly one create of epoch-<n>.json succeeds — the
// loser gets ErrEpochRace and must abandon the adoption. The epoch number
// lives in the FILENAME (creation is the commit point); the JSON body only
// records the owning node for diagnostics, so a crash between create and
// write leaves a claim that still fences. The current epoch is the maximum
// claim present and is read from disk on every save, so a stale in-memory
// copy can never widen the race window.

// ErrFenced marks a durable write rejected because the writer's ownership
// epoch was superseded. It is terminal: callers must not retry or degrade
// the run, because another owner has taken over.
var ErrFenced = errors.New("runstate: ownership epoch superseded")

// IsFenced reports whether err is (or wraps) an epoch-fencing rejection.
func IsFenced(err error) bool { return errors.Is(err, ErrFenced) }

// ErrEpochRace marks a lost AdvanceEpoch compare-and-swap: another node
// claimed the same epoch first. The loser must abandon its adoption — the
// winner owns the session and has fenced everyone else out.
var ErrEpochRace = errors.New("runstate: lost ownership-epoch race")

// IsEpochRace reports whether err is (or wraps) a lost epoch CAS.
func IsEpochRace(err error) bool { return errors.Is(err, ErrEpochRace) }

// epochRecord is the on-disk body of <dir>/epoch-<n>.json. Advisory: the
// authoritative epoch number is the filename.
type epochRecord struct {
	Epoch int64  `json:"epoch"`
	Node  string `json:"node,omitempty"`
}

const (
	epochPrefix = "epoch-"
	epochSuffix = ".json"
)

// epochClaimPath returns the claim-file path for epoch n.
func (st *Store) epochClaimPath(n int64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%d%s", epochPrefix, n, epochSuffix))
}

// epochFromName extracts the epoch number from a claim filename.
func epochFromName(name string) (int64, bool) {
	if !strings.HasPrefix(name, epochPrefix) || !strings.HasSuffix(name, epochSuffix) {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, epochPrefix), epochSuffix), 10, 64)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// LoadEpoch reads the session's current ownership epoch — the maximum claim
// file present — and the node that advanced it. No claim files means epoch 0
// (never failed over), not an error. A claim whose body is torn (creator
// crashed between create and write) still counts: the filename is the
// commit point, only the node name is lost.
func (st *Store) LoadEpoch() (int64, string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", nil
		}
		return 0, "", fmt.Errorf("runstate: load epoch: %w", err)
	}
	var cur int64
	var curName string
	for _, e := range entries {
		if n, ok := epochFromName(e.Name()); ok && n > cur {
			cur, curName = n, e.Name()
		}
	}
	if cur == 0 {
		return 0, "", nil
	}
	var rec epochRecord
	if data, err := os.ReadFile(filepath.Join(st.dir, curName)); err == nil {
		_ = json.Unmarshal(data, &rec)
	}
	return cur, rec.Node, nil
}

// Epoch returns the session's current ownership epoch (disk truth; 0 when
// the session has never been failed over).
func (st *Store) Epoch() int64 {
	epoch, _, _ := st.LoadEpoch()
	return epoch
}

// AdvanceEpoch bumps the ownership epoch, recording node as the new owner,
// and returns the new epoch. The advance is an atomic CAS: the claim file
// for the next epoch is created with O_EXCL, so when two nodes race to
// adopt the same session exactly one wins and the other gets ErrEpochRace.
// Runs resumed (or started) after a successful advance stamp the new epoch
// into their snapshots; snapshots stamped with any older epoch are fenced
// by SaveRun from then on.
func (st *Store) AdvanceEpoch(node string) (int64, error) {
	cur, _, err := st.LoadEpoch()
	if err != nil {
		return 0, err
	}
	next := cur + 1
	f, err := os.OpenFile(st.epochClaimPath(next), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return 0, fmt.Errorf("%w: epoch %d already claimed", ErrEpochRace, next)
		}
		return 0, fmt.Errorf("runstate: claim epoch %d: %w", next, err)
	}
	// The claim exists — the CAS is won and the fence is up even if the
	// body write below fails; the record is diagnostics only.
	data, err := json.Marshal(epochRecord{Epoch: next, Node: node})
	if err == nil {
		_, err = f.Write(data)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return next, fmt.Errorf("runstate: record epoch %d owner: %w", next, err)
	}
	return next, nil
}
