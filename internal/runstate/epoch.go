package runstate

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Ownership epochs fence a session's durable runs across owner changes.
//
// A single-process deployment never advances the epoch: every snapshot and
// the (absent) epoch file agree on epoch 0 and fencing is inert. In a fleet,
// the node adopting an orphaned session calls AdvanceEpoch before resuming
// its runs; the new epoch is stamped into every snapshot the new owner
// writes, and SaveRun rejects any write whose stamped epoch is older than
// the session's on-disk epoch. A "zombie" owner — one that lost the session
// to failover but is still executing a run — therefore gets a terminal
// ErrFenced on its next checkpoint instead of silently clobbering the new
// owner's state. The epoch file is the fencing token and is read from disk
// on every save, so a stale in-memory copy can never widen the race window
// past one atomic rename.

// ErrFenced marks a durable write rejected because the writer's ownership
// epoch was superseded. It is terminal: callers must not retry or degrade
// the run, because another owner has taken over.
var ErrFenced = errors.New("runstate: ownership epoch superseded")

// IsFenced reports whether err is (or wraps) an epoch-fencing rejection.
func IsFenced(err error) bool { return errors.Is(err, ErrFenced) }

// epochRecord is the on-disk shape of <dir>/epoch.json.
type epochRecord struct {
	Epoch int64  `json:"epoch"`
	Node  string `json:"node,omitempty"`
}

// epochPath returns the session's ownership-epoch file path.
func (st *Store) epochPath() string { return filepath.Join(st.dir, "epoch.json") }

// LoadEpoch reads the session's current ownership epoch and the node that
// advanced it. A missing file is epoch 0 (never failed over), not an error.
func (st *Store) LoadEpoch() (int64, string, error) {
	data, err := os.ReadFile(st.epochPath())
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", nil
		}
		return 0, "", fmt.Errorf("runstate: load epoch: %w", err)
	}
	var rec epochRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return 0, "", fmt.Errorf("runstate: decode epoch: %w", err)
	}
	return rec.Epoch, rec.Node, nil
}

// Epoch returns the session's current ownership epoch (disk truth; 0 when
// the session has never been failed over).
func (st *Store) Epoch() int64 {
	epoch, _, _ := st.LoadEpoch()
	return epoch
}

// AdvanceEpoch bumps the ownership epoch, recording node as the new owner,
// and returns the new epoch. Runs resumed (or started) after the advance
// stamp the new epoch into their snapshots; snapshots stamped with any
// older epoch are fenced by SaveRun from then on.
func (st *Store) AdvanceEpoch(node string) (int64, error) {
	cur, _, err := st.LoadEpoch()
	if err != nil {
		return 0, err
	}
	rec := epochRecord{Epoch: cur + 1, Node: node}
	data, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("runstate: encode epoch: %w", err)
	}
	if err := WriteFileAtomic(st.epochPath(), data); err != nil {
		return 0, err
	}
	return rec.Epoch, nil
}
