// Package runstate makes robust-processing runs crash-tolerant: it
// snapshots a run's discovery state at every contour boundary so an
// interrupted run can be resumed with bounded redo instead of being
// restarted from scratch.
//
// The key observation is that SpillBound-style discovery state is
// *monotone*: half-space pruning (paper Lemma 3.1) only ever shrinks the
// candidate region, the contour index only advances, and the budget ledger
// only grows. A snapshot taken at a contour boundary is therefore always a
// valid — merely conservative — restart point: resuming from the last
// durable checkpoint re-executes at most the one contour iteration that was
// in flight when the process died, keeping the MSO accounting intact across
// failures (total spend ≤ uninterrupted spend + one contour's executions).
//
// A Tracker travels on the context, exactly like telemetry.Recorder and
// faults.Plan: the discovery runners (bouquet, spillbound, aligned) report
// state transitions through nil-safe package helpers, and the tracker
// persists a versioned snapshot atomically (temp file + rename) at each
// checkpoint. Runs that carry no tracker pay one context lookup per contour.
package runstate

import (
	"context"
	"sync"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// Version is the on-disk snapshot format version, validated on load like
// the ESS persistence DTO's.
const Version = 1

// Discovery is the monotone discovery state of a contour-budgeted run at a
// checkpoint boundary. Every field only ever grows (or, for the candidate
// region implied by Learned, shrinks) as the run progresses, which is what
// makes any snapshot a safe restart point.
type Discovery struct {
	// Contour is the contour index (0-based) about to be explored when the
	// snapshot was taken.
	Contour int `json:"contour"`
	// Learned maps ESS dimension → exact selectivity discovered by a
	// completed spill execution (the pruned half-spaces of Lemma 3.1).
	Learned map[int]float64 `json:"learned,omitempty"`
	// Bounds maps ESS dimension → the largest monitoring lower bound
	// observed so far for a not-yet-resolved dimension (run-time
	// selectivity monitoring; informational, monotone nondecreasing).
	Bounds map[int]float64 `json:"bounds,omitempty"`
	// Spent is the budget ledger: total cost charged across all executions
	// — and all process incarnations — before Contour was entered.
	Spent float64 `json:"spent"`
	// Executions counts the budgeted executions behind Spent.
	Executions int `json:"executions"`
	// Events is the number of telemetry events emitted before the
	// checkpoint, so a resumed run can report how much of the stream the
	// crashed incarnation had already published.
	Events int `json:"events"`
}

// Clone returns a deep copy of the discovery state, so callers can hand a
// snapshot to a runner while a live tracker keeps mutating the original.
func (d Discovery) Clone() Discovery { return d.clone() }

// clone deep-copies the discovery state for a race-free snapshot.
func (d Discovery) clone() Discovery {
	out := d
	out.Learned = make(map[int]float64, len(d.Learned))
	for k, v := range d.Learned {
		out.Learned[k] = v
	}
	out.Bounds = make(map[int]float64, len(d.Bounds))
	for k, v := range d.Bounds {
		out.Bounds[k] = v
	}
	return out
}

// RunState is the versioned on-disk snapshot of one durable run: enough to
// re-create the engine (algorithm + truth), re-seed any sampled decision
// (Seed), and restart the discovery from the last contour boundary.
type RunState struct {
	// SchemaVersion is the snapshot format version (see Version).
	SchemaVersion int `json:"version"`
	// RunID names the run within its session's data directory.
	RunID string `json:"runId"`
	// Algorithm is the strategy name (repro.Algorithm.String).
	Algorithm string `json:"algorithm"`
	// Truth is the hidden true selectivity location the run executes at.
	Truth []float64 `json:"truth"`
	// Seed is the session's deterministic sampling seed, recorded so a
	// resumed incarnation reproduces any seeded choices identically.
	Seed int64 `json:"seed,omitempty"`
	// TraceID is the W3C trace ID of the run's first incarnation; resumed
	// incarnations rejoin it, so one trace spans every process the run
	// touched. Optional — snapshots predating tracing load fine without it.
	TraceID string `json:"traceId,omitempty"`
	// Epoch is the session ownership epoch the writer held when it started
	// (or resumed) the run. SaveRun fences writes whose epoch is older than
	// the session's on-disk epoch — see epoch.go. Zero (the single-owner
	// steady state, and every snapshot predating fencing) is never fenced
	// unless the session has actually failed over.
	Epoch int64 `json:"epoch,omitempty"`
	// Completed marks a terminal snapshot: the run finished and is not
	// resumable (kept for inspection; InterruptedRuns skips it).
	Completed bool `json:"completed,omitempty"`
	// Discovery is the checkpointed discovery state.
	Discovery Discovery `json:"discovery"`
}

// Tracker accumulates the discovery state of one in-flight durable run and
// persists it at checkpoint boundaries. It is safe for concurrent use and a
// nil *Tracker is a valid no-op sink (mirroring telemetry.Recorder).
type Tracker struct {
	store *Store

	mu          sync.Mutex
	rs          RunState
	checkpoints int
}

// NewTracker returns a tracker persisting into store. rs seeds the state:
// a zero Discovery for a fresh run, a loaded snapshot for a resumed one
// (its Spent becomes the ledger base the new incarnation accumulates onto).
func NewTracker(store *Store, rs RunState) *Tracker {
	rs.SchemaVersion = Version
	if rs.Discovery.Learned == nil {
		rs.Discovery.Learned = make(map[int]float64)
	}
	if rs.Discovery.Bounds == nil {
		rs.Discovery.Bounds = make(map[int]float64)
	}
	return &Tracker{store: store, rs: rs}
}

// State returns a deep copy of the current run state.
func (t *Tracker) State() RunState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.rs
	out.Discovery = t.rs.Discovery.clone()
	return out
}

// Checkpoints reports how many snapshots this tracker has persisted.
func (t *Tracker) Checkpoints() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpoints
}

// learn records an exact selectivity for a dimension (half-space prune).
func (t *Tracker) learn(dim int, sel float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rs.Discovery.Learned[dim] = sel
	delete(t.rs.Discovery.Bounds, dim)
	t.mu.Unlock()
}

// bound records a monitoring lower bound for a dimension, keeping the max.
func (t *Tracker) bound(dim int, sel float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, exact := t.rs.Discovery.Learned[dim]; !exact && sel > t.rs.Discovery.Bounds[dim] {
		t.rs.Discovery.Bounds[dim] = sel
	}
	t.mu.Unlock()
}

// spend advances the budget ledger by one execution's charged cost.
func (t *Tracker) spend(cost float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rs.Discovery.Spent += cost
	t.rs.Discovery.Executions++
	t.mu.Unlock()
}

// checkpoint persists the current state as a restart point for the given
// contour. events is the telemetry stream length at the boundary.
func (t *Tracker) checkpoint(contour, events int) (RunState, error) {
	t.mu.Lock()
	t.rs.Discovery.Contour = contour
	t.rs.Discovery.Events = events
	snap := t.rs
	snap.Discovery = t.rs.Discovery.clone()
	t.checkpoints++
	t.mu.Unlock()
	return snap, t.store.SaveRun(&snap)
}

// Finish persists the terminal snapshot, marking the run complete (and thus
// not resumable). Nil-safe.
func (t *Tracker) Finish() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.rs.Completed = true
	snap := t.rs
	snap.Discovery = t.rs.Discovery.clone()
	t.mu.Unlock()
	return t.store.SaveRun(&snap)
}

// ctxKey keys the tracker on a context.
type ctxKey struct{}

// With attaches the tracker to the context; the discovery runners pick it
// up through the package-level helpers below.
func With(ctx context.Context, t *Tracker) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// From extracts the context's tracker, or nil (a valid no-op sink).
func From(ctx context.Context) *Tracker {
	t, _ := ctx.Value(ctxKey{}).(*Tracker)
	return t
}

// Learn reports an exact learnt selectivity (half-space prune) for dim.
func Learn(ctx context.Context, dim int, sel float64) {
	From(ctx).learn(dim, sel)
}

// Bound reports a monitoring lower bound for dim.
func Bound(ctx context.Context, dim int, sel float64) {
	From(ctx).bound(dim, sel)
}

// Spend reports one execution's charged cost into the budget ledger.
func Spend(ctx context.Context, cost float64) {
	From(ctx).spend(cost)
}

// Checkpoint marks a contour boundary: the crash-point injector (if a fault
// plan is attached) may abort the run here, simulating the process dying at
// the boundary *before* the new snapshot lands — the last durable state
// then remains the previous checkpoint, which is exactly the bounded-redo
// case resume must handle. Otherwise the tracker (if any) persists the
// snapshot and records a checkpoint_save telemetry event. Runs carrying
// neither a fault plan nor a tracker pay two context lookups.
func Checkpoint(ctx context.Context, contour int) error {
	if err := faults.From(ctx).OnCheckpoint(); err != nil {
		return err
	}
	t := From(ctx)
	if t == nil {
		return nil
	}
	rec := telemetry.From(ctx)
	snap, err := t.checkpoint(contour, rec.Len())
	if err != nil {
		return err
	}
	rec.Record(telemetry.Event{
		Kind: telemetry.CheckpointSave, Contour: contour + 1, Dim: -1,
		Spent: snap.Discovery.Spent, Detail: snap.RunID,
	})
	return nil
}
