package runstate

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	st := newStore(t)
	rs := RunState{
		RunID: "r1", Algorithm: "spillbound", Truth: []float64{0.2, 0.5}, Seed: 7,
		Discovery: Discovery{
			Contour: 3, Spent: 42.5, Executions: 6, Events: 11,
			Learned: map[int]float64{0: 0.2},
			Bounds:  map[int]float64{1: 0.1},
		},
	}
	if err := st.SaveRun(&rs); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != Version {
		t.Errorf("version = %d, want %d", got.SchemaVersion, Version)
	}
	if got.Algorithm != "spillbound" || got.Seed != 7 || got.Completed {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Discovery, rs.Discovery) {
		t.Errorf("discovery = %+v, want %+v", got.Discovery, rs.Discovery)
	}
}

func TestStoreRejectsBadRunIDs(t *testing.T) {
	st := newStore(t)
	for _, id := range []string{"", ".", "..", "a/b", `a\b`} {
		if err := st.SaveRun(&RunState{RunID: id}); err == nil {
			t.Errorf("SaveRun(%q) should fail", id)
		}
		if _, err := st.LoadRun(id); err == nil {
			t.Errorf("LoadRun(%q) should fail", id)
		}
	}
}

func TestStoreRejectsVersionSkew(t *testing.T) {
	st := newStore(t)
	if err := WriteFileAtomic(filepath.Join(st.Dir(), "runs", "old.json"),
		[]byte(`{"version":99,"runId":"old"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadRun("old"); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew should fail, got %v", err)
	}
}

func TestInterruptedSkipsCompletedAndCorrupt(t *testing.T) {
	st := newStore(t)
	if err := st.SaveRun(&RunState{RunID: "live"}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRun(&RunState{RunID: "done", Completed: true}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir(), "runs", "torn.json"), []byte("{junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := st.Interrupted()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"live"}) {
		t.Errorf("interrupted = %v, want [live]", ids)
	}
	all, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, []string{"done", "live", "torn"}) {
		t.Errorf("runs = %v", all)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "two" {
		t.Fatalf("read %q, %v", data, err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("leftover temp files: %v", entries)
	}
}

func TestTrackerMonotoneState(t *testing.T) {
	st := newStore(t)
	tr := NewTracker(st, RunState{RunID: "r1", Algorithm: "spillbound"})
	tr.spend(10)
	tr.bound(0, 0.05)
	tr.bound(0, 0.02) // lower bound never regresses
	tr.spend(5)
	tr.learn(1, 0.3)
	tr.bound(1, 0.9) // exact value wins over later bounds
	d := tr.State().Discovery
	if d.Spent != 15 || d.Executions != 2 {
		t.Errorf("ledger = %+v", d)
	}
	if d.Bounds[0] != 0.05 {
		t.Errorf("bound[0] = %g, want 0.05", d.Bounds[0])
	}
	if d.Learned[1] != 0.3 {
		t.Errorf("learned[1] = %g", d.Learned[1])
	}
	if _, ok := d.Bounds[1]; ok {
		t.Error("learnt dimension should drop its bound")
	}

	if _, err := tr.checkpoint(2, 7); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Discovery.Contour != 2 || got.Discovery.Events != 7 || got.Discovery.Spent != 15 {
		t.Errorf("checkpoint = %+v", got.Discovery)
	}
	if got.Completed {
		t.Error("checkpoint must not be terminal")
	}
	if err := tr.Finish(); err != nil {
		t.Fatal(err)
	}
	got, err = st.LoadRun("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Completed {
		t.Error("Finish should mark the snapshot terminal")
	}
}

func TestCheckpointContextHelpers(t *testing.T) {
	st := newStore(t)
	tr := NewTracker(st, RunState{RunID: "r1"})
	rec := telemetry.NewRecorder()
	ctx := telemetry.With(With(context.Background(), tr), rec)

	Spend(ctx, 3)
	Learn(ctx, 0, 0.2)
	if err := Checkpoint(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if tr.Checkpoints() != 1 {
		t.Errorf("checkpoints = %d", tr.Checkpoints())
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.CheckpointSave || evs[0].Detail != "r1" {
		t.Errorf("events = %+v", evs)
	}

	// A context without a tracker is a no-op sink, not a failure.
	if err := Checkpoint(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	Spend(context.Background(), 1)
}

func TestCheckpointCrashFiresBeforeSave(t *testing.T) {
	st := newStore(t)
	tr := NewTracker(st, RunState{RunID: "r1"})
	ctx := faults.With(With(context.Background(), tr), &faults.Plan{CrashAtCheckpoint: 2})

	if err := Checkpoint(ctx, 0); err != nil {
		t.Fatal(err)
	}
	Spend(ctx, 10)
	err := Checkpoint(ctx, 1)
	if !faults.IsCrash(err) {
		t.Fatalf("checkpoint 2 should crash, got %v", err)
	}
	// The crash aborted the boundary before persisting: the durable state is
	// still the first checkpoint (contour 0, zero spend).
	got, lerr := st.LoadRun("r1")
	if lerr != nil {
		t.Fatal(lerr)
	}
	if got.Discovery.Contour != 0 || got.Discovery.Spent != 0 {
		t.Errorf("durable state advanced past the crash: %+v", got.Discovery)
	}
	if tr.Checkpoints() != 1 {
		t.Errorf("persisted checkpoints = %d, want 1", tr.Checkpoints())
	}
}
