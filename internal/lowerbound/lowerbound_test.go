package lowerbound

import (
	"math"
	"math/rand"
	"testing"
)

// roundRobin is the natural matching strategy: probe each dimension once
// with a distinguishing budget (enough to complete cold dims), then execute
// the plan of whichever instance survives.
type roundRobin struct {
	g     *Game
	order []int
}

func (r *roundRobin) Next(history []Step) (Action, bool) {
	probed := map[int]bool{}
	remaining := map[int]bool{}
	for k := 0; k < r.g.D; k++ {
		remaining[k] = true
	}
	for _, st := range history {
		if st.Action.Probe {
			probed[st.Action.Dim] = true
			if st.Obs.Completed && st.Obs.Learned == ColdSel {
				delete(remaining, st.Action.Dim)
			}
		}
	}
	// Probe dims in the fixed order until only one candidate remains.
	if len(remaining) > 1 {
		for _, d := range r.order {
			if !probed[d] {
				// Distinguishing budget: covers cold, not hot.
				return Action{Probe: true, Dim: d, Budget: (1 - r.g.Gamma/2) * r.g.C}, false
			}
		}
	}
	// Execute the surviving instance's plan.
	for k := range remaining {
		return Action{Probe: false, Plan: k, Budget: r.g.C}, false
	}
	return Action{}, true
}

func TestRoundRobinAchievesThetaD(t *testing.T) {
	for d := 2; d <= 6; d++ {
		g := NewGame(d)
		res := g.Play(&roundRobin{g: g, order: identity(d)})
		if !res.Completed {
			t.Fatalf("D=%d: round robin did not complete", d)
		}
		if res.MSO < g.LowerBound()-1e-9 {
			t.Errorf("D=%d: MSO %.3f below the forced bound %.3f", d, res.MSO, g.LowerBound())
		}
		// Matching upper bound: (D-1)(1-γ) + 1 <= D, so MSO ~ D.
		if res.MSO > float64(d)+1e-9 {
			t.Errorf("D=%d: matching strategy MSO %.3f exceeds D=%d", d, res.MSO, d)
		}
	}
}

func identity(d int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestAllProbeOrdersForcedToD: whatever deterministic order the strategy
// probes in, the adversary forces MSO >= D(1-γ) — the Theorem 4.6 claim for
// this strategy family, checked exhaustively over all D! orders for small D
// and by random sample beyond.
func TestAllProbeOrdersForcedToD(t *testing.T) {
	for d := 2; d <= 4; d++ {
		g := NewGame(d)
		permute(identity(d), func(order []int) {
			res := g.Play(&roundRobin{g: g, order: append([]int(nil), order...)})
			if !res.Completed {
				t.Fatalf("D=%d order %v: did not complete", d, order)
			}
			if res.MSO < g.LowerBound()-1e-9 {
				t.Fatalf("D=%d order %v: MSO %.3f below bound %.3f", d, order, res.MSO, g.LowerBound())
			}
		})
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		d := 5 + rng.Intn(3)
		g := NewGame(d)
		order := rng.Perm(d)
		res := g.Play(&roundRobin{g: g, order: order})
		if res.MSO < g.LowerBound()-1e-9 {
			t.Fatalf("D=%d order %v: MSO %.3f below bound %.3f", d, order, res.MSO, g.LowerBound())
		}
	}
}

func permute(xs []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(xs) {
			f(xs)
			return
		}
		for i := k; i < len(xs); i++ {
			xs[k], xs[i] = xs[i], xs[k]
			rec(k + 1)
			xs[k], xs[i] = xs[i], xs[k]
		}
	}
	rec(0)
}

// blindExecutor bets on plans without probing: the adversary punishes the
// gamble — either the budget is refused (cost piles up) or the algorithm
// pays the brittle-plan price.
type blindExecutor struct{ g *Game }

func (b *blindExecutor) Next(history []Step) (Action, bool) {
	k := len(history)
	if k >= b.g.D-1 {
		// Last candidate standing: pay up.
		return Action{Probe: false, Plan: b.g.D - 1, Budget: b.g.C}, false
	}
	return Action{Probe: false, Plan: k, Budget: b.g.C}, false
}

func TestBlindExecutionCannotBeatBound(t *testing.T) {
	for d := 2; d <= 6; d++ {
		g := NewGame(d)
		res := g.Play(&blindExecutor{g: g})
		if res.Completed && res.MSO < g.LowerBound()-1e-9 {
			t.Errorf("D=%d: blind executor beat the bound with MSO %.3f", d, res.MSO)
		}
	}
}

// cheapProber tries to identify the live instance with tiny budgets; those
// probes yield no distinguishing information, so it can never finish below
// the bound.
type cheapProber struct {
	g *Game
}

func (c *cheapProber) Next(history []Step) (Action, bool) {
	if len(history) < c.g.D {
		return Action{Probe: true, Dim: len(history) % c.g.D, Budget: c.g.C / 1000}, false
	}
	// Saw nothing; fall back to the honest strategy.
	rr := &roundRobin{g: c.g, order: identity(c.g.D)}
	a, done := rr.Next(history[c.g.D:])
	return a, done
}

func TestCheapProbesAreUseless(t *testing.T) {
	g := NewGame(3)
	res := g.Play(&cheapProber{g: g})
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.MSO < g.LowerBound()-1e-9 {
		t.Errorf("cheap probes beat the bound: MSO %.3f", res.MSO)
	}
	// The wasted probes must be accounted.
	honest := g.Play(&roundRobin{g: g, order: identity(3)})
	if res.TotalCost <= honest.TotalCost {
		t.Errorf("wasted probes should cost extra: %.1f vs %.1f", res.TotalCost, honest.TotalCost)
	}
}

// overpayingProber probes with budgets covering even the hot case; the
// adversary's answers keep it at the same Θ(D) total.
type overpayingProber struct{ g *Game }

func (o *overpayingProber) Next(history []Step) (Action, bool) {
	remaining := map[int]bool{}
	for k := 0; k < o.g.D; k++ {
		remaining[k] = true
	}
	probed := map[int]bool{}
	for _, st := range history {
		if st.Action.Probe {
			probed[st.Action.Dim] = true
			if st.Obs.Completed && st.Obs.Learned == ColdSel {
				delete(remaining, st.Action.Dim)
			}
		}
	}
	if len(remaining) > 1 {
		for d := 0; d < o.g.D; d++ {
			if !probed[d] {
				return Action{Probe: true, Dim: d, Budget: 2 * o.g.C}, false
			}
		}
	}
	for k := range remaining {
		return Action{Probe: false, Plan: k, Budget: o.g.C}, false
	}
	return Action{}, true
}

func TestOverpayingProberStillPaysD(t *testing.T) {
	for d := 2; d <= 5; d++ {
		g := NewGame(d)
		res := g.Play(&overpayingProber{g: g})
		if !res.Completed {
			t.Fatalf("D=%d: did not complete", d)
		}
		if res.MSO < g.LowerBound()-1e-9 {
			t.Errorf("D=%d: MSO %.3f below bound", d, res.MSO)
		}
	}
}

func TestGameSanity(t *testing.T) {
	g := NewGame(3)
	if g.LowerBound() <= 2.9 || g.LowerBound() > 3 {
		t.Errorf("LowerBound = %g", g.LowerBound())
	}
	if math.IsNaN(g.probeCost(0, 0)) || g.probeCost(0, 1) >= g.probeCost(0, 0) {
		t.Error("cold probe should be cheaper than hot")
	}
	// Non-terminating strategies are cut off.
	res := g.Play(algFunc(func([]Step) (Action, bool) {
		return Action{Probe: true, Dim: 0, Budget: 1}, false
	}))
	if res.Completed {
		t.Error("endless prober should not complete")
	}
	if len(res.Steps) != maxSteps {
		t.Errorf("expected cutoff at %d steps, got %d", maxSteps, len(res.Steps))
	}
}

type algFunc func([]Step) (Action, bool)

func (f algFunc) Next(h []Step) (Action, bool) { return f(h) }
