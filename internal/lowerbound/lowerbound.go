// Package lowerbound realizes the adversarial construction behind the
// paper's Theorem 4.6: for any deterministic algorithm in the class E of
// half-space-pruning selectivity discovery algorithms, and any D >= 2,
// there exists a D-dimensional ESS on which the algorithm's MSO is at
// least D.
//
// The construction is rendered as an oracle game. The adversary maintains a
// family of D candidate instances I_1..I_D; instance I_k has the k-th epp
// "hot" (selectivity 1) and every other epp cold (selectivity δ≈0), with
// the cost geometry normalized so each instance's oracle-optimal cost is C:
//
//   - probing (spill-executing on) dimension j teaches only half-space
//     information about dimension j — the defining property of the class E;
//   - the probe completes, fully revealing q_a.j, only when its budget
//     reaches the dimension's subtree cost, which is at least (1-γ)·C even
//     for cold dimensions (the epp's subtree processes the fact table
//     regardless of how few rows it emits);
//   - the plans are brittle: the plan ideal for I_k costs an arbitrarily
//     large multiple of C on any other instance, so finishing the query
//     cheaply requires knowing which instance is live.
//
// Against any deterministic strategy the adversary answers each
// distinguishing probe so as to eliminate at most one candidate, so
// identifying the live instance costs at least (D-1)(1-γ)C, plus C for the
// final complete execution: MSO >= D(1-γ) -> D as γ -> 0. The package also
// provides the matching upper-bound strategy (probe each dimension once,
// then execute), demonstrating tightness at Θ(D).
package lowerbound

import (
	"fmt"
	"math"
)

// Game is one adversarial lower-bound instance family.
type Game struct {
	// D is the ESS dimensionality (number of candidate instances).
	D int
	// C is the oracle-optimal cost of every instance.
	C float64
	// Gamma in (0,1) is the discount on cold dimensions' probe cost; the
	// bound obtained is D·(1-Gamma).
	Gamma float64
	// WrongPlanFactor is the cost multiple a brittle plan pays on a
	// non-matching instance.
	WrongPlanFactor float64
}

// NewGame returns a game with the given dimensionality and a small gamma.
func NewGame(d int) *Game {
	return &Game{D: d, C: 1000, Gamma: 0.01, WrongPlanFactor: 1e6}
}

// ColdSel is the cold dimensions' selectivity.
const ColdSel = 1e-6

// Action is one move of the algorithm under test.
type Action struct {
	// Probe, when true, spill-executes on dimension Dim with Budget;
	// otherwise the action executes the plan specialized for instance
	// Plan (0-based) with Budget, attempting to produce the query result.
	Probe  bool
	Dim    int
	Plan   int
	Budget float64
}

// Observation is the half-space information returned for an action.
type Observation struct {
	// Completed reports whether the probe subtree (or final plan) ran to
	// completion within its budget.
	Completed bool
	// Learned is the revealed selectivity of the probed dimension when a
	// probe completes (ColdSel or 1); NaN otherwise.
	Learned float64
	// Spent is the cost charged.
	Spent float64
}

// Algorithm is a deterministic strategy: given the history of its own
// actions and the adversary's observations, produce the next action.
// Returning done=true before the query has completed forfeits.
type Algorithm interface {
	// Next returns the strategy's next action.
	Next(history []Step) (a Action, done bool)
}

// Step pairs an action with its observation.
type Step struct {
	// Action is the move taken.
	Action Action
	// Obs is the adversary's answer.
	Obs Observation
}

// Result summarizes one adversarial play.
type Result struct {
	// TotalCost is everything the algorithm spent.
	TotalCost float64
	// Instance is the instance the adversary finally committed to.
	Instance int
	// Completed reports whether the query was eventually produced.
	Completed bool
	// Steps is the full transcript.
	Steps []Step
	// MSO is TotalCost / C.
	MSO float64
}

// maxSteps bounds a play to guard against non-terminating strategies.
const maxSteps = 100000

// probeCost returns the cost to fully learn dimension j under instance k.
func (g *Game) probeCost(j, k int) float64 {
	if j == k {
		return g.C // the hot dimension's subtree costs the full C
	}
	return (1 - g.Gamma) * g.C
}

// Play runs the algorithm against the adaptive adversary and returns the
// forced outcome.
func (g *Game) Play(alg Algorithm) Result {
	alive := make(map[int]bool, g.D)
	for k := 0; k < g.D; k++ {
		alive[k] = true
	}
	// lowBound[j] tracks the published half-space knowledge: q_a.j > lowBound[j].
	var history []Step
	total := 0.0

	anyAliveExcept := func(k int) (int, bool) {
		for m := range alive {
			if m != k {
				return m, true
			}
		}
		return -1, false
	}

	for len(history) < maxSteps {
		a, done := alg.Next(history)
		if done {
			break
		}
		var obs Observation
		obs.Learned = math.NaN()
		switch {
		case a.Probe:
			if a.Dim < 0 || a.Dim >= g.D {
				panic(fmt.Sprintf("lowerbound: probe dim %d out of range", a.Dim))
			}
			cold, hot := g.probeCost(a.Dim, (a.Dim+1)%g.D), g.probeCost(a.Dim, a.Dim)
			switch {
			case a.Budget < cold:
				// Cannot complete under any alive instance: pure
				// half-space progress, nothing distinguished.
				obs = Observation{Completed: false, Learned: math.NaN(), Spent: a.Budget}
			case a.Budget < hot:
				// Completes iff the dimension is cold — a distinguishing
				// probe. The adversary keeps the larger candidate set:
				// answering "completed cold" eliminates only I_dim.
				if len(alive) > 1 || !alive[a.Dim] {
					delete(alive, a.Dim)
					obs = Observation{Completed: true, Learned: ColdSel, Spent: cold}
				} else {
					// Only I_dim remains: it is hot, probe expires.
					obs = Observation{Completed: false, Learned: math.NaN(), Spent: a.Budget}
				}
			default:
				// Budget covers even the hot case: completes regardless,
				// revealing the dimension fully. The adversary again
				// prefers the answer preserving more candidates.
				if len(alive) > 1 || !alive[a.Dim] {
					delete(alive, a.Dim)
					obs = Observation{Completed: true, Learned: ColdSel, Spent: cold}
				} else {
					obs = Observation{Completed: true, Learned: 1, Spent: hot}
				}
			}
		default:
			if a.Plan < 0 || a.Plan >= g.D {
				panic(fmt.Sprintf("lowerbound: plan %d out of range", a.Plan))
			}
			// The brittle plan for I_k finishes at cost C only on I_k.
			if m, other := anyAliveExcept(a.Plan); other {
				// The adversary keeps a non-matching instance alive: the
				// plan would cost WrongPlanFactor·C there, far over any
				// sane budget. If the algorithm nevertheless paid for it,
				// the adversary happily completes at that price.
				wrong := g.WrongPlanFactor * g.C
				if a.Budget >= wrong {
					alive = map[int]bool{m: true}
					obs = Observation{Completed: true, Spent: wrong}
				} else {
					// A failed run rules out I_plan only if the budget
					// would have sufficed there (cost C): the algorithm
					// may deduce q_a ≠ I_plan exactly in that case.
					if a.Budget >= g.C && alive[a.Plan] && len(alive) > 1 {
						delete(alive, a.Plan)
					}
					obs = Observation{Completed: false, Spent: a.Budget}
				}
			} else if alive[a.Plan] {
				// Only the matching instance remains.
				if a.Budget >= g.C {
					obs = Observation{Completed: true, Spent: g.C}
				} else {
					obs = Observation{Completed: false, Spent: a.Budget}
				}
			} else {
				// Algorithm bets on an eliminated instance.
				obs = Observation{Completed: false, Spent: math.Min(a.Budget, g.WrongPlanFactor*g.C)}
			}
		}
		total += obs.Spent
		history = append(history, Step{Action: a, Obs: obs})
		if !a.Probe && obs.Completed {
			inst := -1
			for m := range alive {
				inst = m
			}
			return Result{
				TotalCost: total, Instance: inst, Completed: true,
				Steps: history, MSO: total / g.C,
			}
		}
	}
	inst := -1
	for m := range alive {
		inst = m
	}
	return Result{TotalCost: total, Instance: inst, Completed: false, Steps: history, MSO: total / g.C}
}

// LowerBound returns the MSO floor the game forces on every deterministic
// algorithm: D·(1-Gamma) (approaching Theorem 4.6's D as Gamma → 0).
func (g *Game) LowerBound() float64 { return float64(g.D) * (1 - g.Gamma) }
