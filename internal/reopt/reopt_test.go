package reopt

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/spillbound"
	"repro/internal/workload"
)

func buildQ91(t *testing.T) (*optimizer.Optimizer, *ess.Space) {
	t.Helper()
	cat := catalog.TPCDS(10)
	q, err := workload.Q91(2).Build(cat)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	o := optimizer.MustNew(m)
	return o, ess.Build(o, ess.NewGrid(2, 10, 1e-6))
}

func TestRunCompletes(t *testing.T) {
	o, s := buildQ91(t)
	r := NewRunner(o)
	for ci := 0; ci < s.Grid.Size(); ci += 7 {
		truth := s.Grid.Location(ci)
		out := r.Run(truth)
		if !out.Completed {
			t.Fatalf("truth %v: did not complete\n%s", truth, out.Trace())
		}
		if out.TotalCost <= 0 {
			t.Fatalf("truth %v: no cost", truth)
		}
		last := out.Attempts[len(out.Attempts)-1]
		if !last.Completed || last.TriggeredBy != -1 {
			t.Fatalf("truth %v: final attempt inconsistent: %+v", truth, last)
		}
		// At most D+1 attempts (each reopt learns a dimension).
		if len(out.Attempts) > 3 {
			t.Fatalf("truth %v: %d attempts for D=2", truth, len(out.Attempts))
		}
	}
}

func TestReoptimizationHappens(t *testing.T) {
	o, s := buildQ91(t)
	r := NewRunner(o)
	// Far from the tiny estimate, the initial plan should be invalidated
	// somewhere in the grid.
	sawReopt := false
	for ci := 0; ci < s.Grid.Size(); ci++ {
		out := r.Run(s.Grid.Location(ci))
		if len(out.Attempts) > 1 {
			sawReopt = true
			break
		}
	}
	if !sawReopt {
		t.Error("no location triggered reoptimization; checkpoints inert")
	}
}

// TestNoBoundVersusSpillBound is the paper's Sec 8 point made empirical:
// the heuristic baseline has no MSO guarantee — its worst case over the
// ESS exceeds SpillBound's structural bound, while SpillBound stays under
// D²+3D everywhere.
func TestNoBoundVersusSpillBound(t *testing.T) {
	o, s := buildQ91(t)
	pop := NewRunner(o)
	sb := spillbound.NewRunner(s)
	worstPOP, worstSB := 0.0, 0.0
	for ci := 0; ci < s.Grid.Size(); ci++ {
		truth := s.Grid.Location(ci)
		opt := s.CostAt(ci)
		if so := pop.Run(truth).TotalCost / opt; so > worstPOP {
			worstPOP = so
		}
		if so := sb.Run(engine.New(s.Model, truth)).TotalCost / opt; so > worstSB {
			worstSB = so
		}
	}
	t.Logf("MSOe: POP-style %.1f vs SpillBound %.2f (bound 10)", worstPOP, worstSB)
	if worstSB > spillbound.Guarantee(2) {
		t.Errorf("SpillBound exceeded its bound: %.2f", worstSB)
	}
	if worstPOP <= spillbound.Guarantee(2) {
		t.Logf("note: POP stayed under SB's bound on this grid (no guarantee it does)")
	}
}

func TestDeterminism(t *testing.T) {
	o, s := buildQ91(t)
	r := NewRunner(o)
	truth := s.Grid.Location(s.Grid.Size() / 2)
	a, b := r.Run(truth), r.Run(truth)
	if a.Trace() != b.Trace() || a.TotalCost != b.TotalCost {
		t.Error("not deterministic")
	}
}

func TestTraceRendering(t *testing.T) {
	o, s := buildQ91(t)
	out := NewRunner(o).Run(s.Grid.Location(s.Grid.Size() - 1))
	tr := out.Trace()
	if tr == "" || len(out.Attempts) == 0 {
		t.Fatal("empty trace")
	}
}

func TestRioChoosesRobustPlan(t *testing.T) {
	_, s := buildQ91(t)
	rio := NewRioRunner(s)
	id := rio.ChoosePlan()
	if id < 0 || id >= len(s.Plans()) {
		t.Fatalf("plan id %d out of range", id)
	}
	// The corner-robust plan's worst cost over the box must be no worse
	// than the estimate-optimal plan's.
	est := s.Model.EstimateLocation()
	g := s.Grid
	idx := make([]int, g.D)
	for d := range idx {
		idx[d] = g.CeilIndex(d, est[d])
	}
	naiveID := s.PlanIDAt(g.Flatten(idx))
	worst := func(pid int) float64 {
		w := 0.0
		for mask := 0; mask < 4; mask++ {
			c := est.Clone()
			for j := 0; j < 2; j++ {
				if mask&(1<<uint(j)) != 0 {
					c[j] = clampSel(c[j] * rio.BoxFactor)
				} else {
					c[j] = clampSel(c[j] / rio.BoxFactor)
				}
			}
			if v := s.Model.Eval(s.Plans()[pid], c); v > w {
				w = v
			}
		}
		return w
	}
	if worst(id) > worst(naiveID)+1e-9 {
		t.Errorf("robust plan worse over the box than the naive one: %g vs %g", worst(id), worst(naiveID))
	}
}

// TestRioUnboundedOutsideBox: corner-robustness says nothing about
// locations outside the uncertainty box — the worst case over the full ESS
// remains unbounded relative to SpillBound's guarantee.
func TestRioUnboundedOutsideBox(t *testing.T) {
	_, s := buildQ91(t)
	rio := NewRioRunner(s)
	worst := 0.0
	for ci := 0; ci < s.Grid.Size(); ci++ {
		if so := rio.Run(s.Grid.Location(ci)) / s.CostAt(ci); so > worst {
			worst = so
		}
	}
	t.Logf("Rio-style MSOe over the full ESS: %.1f (SB bound: 10)", worst)
	if worst < 1 {
		t.Error("sub-optimality below 1; accounting broken")
	}
}

func TestClampSel(t *testing.T) {
	if clampSel(2) != 1 || clampSel(-1) <= 0 || clampSel(0.5) != 0.5 {
		t.Error("clampSel misbehaves")
	}
}
