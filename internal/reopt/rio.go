package reopt

import (
	"repro/internal/cost"
	"repro/internal/ess"
)

// Rio-style baseline (Babu, Bizarro & DeWitt, SIGMOD 2005): instead of the
// estimate-optimal plan, pick a *robust* plan by examining the corners of
// an uncertainty box around the estimate — the plan whose worst-case cost
// over the corners is least — and run it. The paper's Sec 8 critique:
// "its definition of plan robustness based solely on the performance at
// the corners of the ESS has not been validated"; corners say nothing
// about the interior or about locations outside the box, so no bound
// exists. This implementation draws candidates from the POSP.

// RioRunner executes the corner-robust baseline over a prebuilt space.
type RioRunner struct {
	// Space supplies the candidate plans (POSP) and the cost model.
	Space *ess.Space
	// BoxFactor scales the uncertainty box: each epp's selectivity ranges
	// over [est/BoxFactor, est*BoxFactor], clamped to (0, 1]. Rio's
	// uncertainty buckets map to a modest factor; default 16.
	BoxFactor float64
}

// NewRioRunner returns a RioRunner with the default uncertainty box.
func NewRioRunner(s *ess.Space) *RioRunner {
	return &RioRunner{Space: s, BoxFactor: 16}
}

// ChoosePlan returns the POSP index of the corner-robust plan for the
// model's statistics estimate.
func (r *RioRunner) ChoosePlan() int {
	s := r.Space
	est := s.Model.EstimateLocation()
	d := len(est)
	corners := make([]cost.Location, 0, 1<<uint(d))
	for mask := 0; mask < 1<<uint(d); mask++ {
		c := make(cost.Location, d)
		for j := 0; j < d; j++ {
			if mask&(1<<uint(j)) != 0 {
				c[j] = clampSel(est[j] * r.BoxFactor)
			} else {
				c[j] = clampSel(est[j] / r.BoxFactor)
			}
		}
		corners = append(corners, c)
	}
	bestID, bestWorst := 0, -1.0
	for id, p := range s.Plans() {
		worst := 0.0
		for _, c := range corners {
			if cst := s.Model.Eval(p, c); cst > worst {
				worst = cst
			}
		}
		if bestWorst < 0 || worst < bestWorst {
			bestID, bestWorst = id, worst
		}
	}
	return bestID
}

// Run executes the corner-robust plan to completion at the true location
// and returns its cost — Rio's headline behaviour without the mid-flight
// switching machinery (which shares POP's structure and is covered by
// Runner).
func (r *RioRunner) Run(truth cost.Location) float64 {
	id := r.ChoosePlan()
	return r.Space.Model.Eval(r.Space.Plans()[id], truth)
}

func clampSel(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v <= 0 {
		return 1e-12
	}
	return v
}
