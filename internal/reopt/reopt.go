// Package reopt implements a POP-style progressive reoptimization baseline
// (Markl et al., SIGMOD 2004), the class of plan-switching heuristics the
// paper contrasts with in Sec 8: start from the optimizer's estimate,
// monitor observed cardinalities at checkpoints during execution, and
// reoptimize with the learned selectivities when the running plan stops
// looking optimal. Unlike PlanBouquet/SpillBound, there are no calibrated
// cost budgets: the engine only learns an error-prone predicate's
// selectivity *after* paying for the subtree that produces it — under the
// plan chosen by the (possibly wildly wrong) current estimate. The paper's
// critique is structural: "POP and Rio are based on heuristics and do not
// provide any performance bounds"; this implementation exhibits exactly
// that unboundedness while usually behaving reasonably.
//
// Simplifications (documented per DESIGN.md's substitution policy):
// checkpoints sit at the error-prone join operators (where POP places CHECK
// operators above significant cardinality errors); the validity test is
// "does the optimizer still pick this plan given everything learnt";
// restarted attempts do not reuse intermediate results (pessimistic for
// POP on reuse, optimistic in that restart is always possible).
package reopt

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

// Attempt records one plan execution attempt.
type Attempt struct {
	// PlanFP is the attempt's plan fingerprint.
	PlanFP string
	// Assumed is the selectivity location the plan was optimized for
	// (learned dimensions carry their true values, the rest estimates).
	Assumed cost.Location
	// Spent is the execution cost charged for the attempt.
	Spent float64
	// Completed reports whether this attempt ran the query to completion.
	Completed bool
	// TriggeredBy is the ESS dimension whose observation triggered
	// reoptimization (-1 when completed).
	TriggeredBy int
}

// Outcome is a full progressive-reoptimization run.
type Outcome struct {
	// Attempts lists the plan attempts in order.
	Attempts []Attempt
	// TotalCost is the summed charged cost.
	TotalCost float64
	// Completed reports overall completion (always true: the final attempt
	// runs under fully learned selectivities).
	Completed bool
}

// Trace renders the attempts.
func (o Outcome) Trace() string {
	var b strings.Builder
	for i, a := range o.Attempts {
		status := fmt.Sprintf("reoptimized on dim %d", a.TriggeredBy)
		if a.Completed {
			status = "completed"
		}
		fmt.Fprintf(&b, "attempt %d: assumed %v, spent %.4g, %s\n", i+1, a.Assumed, a.Spent, status)
	}
	return b.String()
}

// Runner executes the POP-style baseline for one query.
type Runner struct {
	// Opt is the optimizer (the reoptimization oracle).
	Opt *optimizer.Optimizer
}

// NewRunner returns a Runner over the given optimizer.
func NewRunner(o *optimizer.Optimizer) *Runner { return &Runner{Opt: o} }

// Run processes the query whose true epp selectivities are truth, starting
// from the model's statistics estimate.
func (r *Runner) Run(truth cost.Location) Outcome {
	m := r.Opt.Model()
	q := m.Query
	d := q.D()
	assumed := m.EstimateLocation()
	learned := make([]bool, d)
	var out Outcome

	for attempt := 0; attempt <= d; attempt++ {
		p, _ := r.Opt.Optimize(assumed)
		a := Attempt{PlanFP: p.Fingerprint(), Assumed: assumed.Clone(), TriggeredBy: -1}

		// Walk the plan's epp observation points in pipeline order; each
		// unlearned epp is observed only after paying for the subtree that
		// produces it (at the true selectivities).
		reoptimized := false
		for _, en := range p.EPPOrder(q.EPPs, learnedSet(q, learned)) {
			dim, ok := q.IsEPP(en.JoinID)
			if !ok {
				continue
			}
			sub := plan.New(en.Node)
			a.Spent = maxf(a.Spent, m.Eval(sub, truth))
			learned[dim] = true
			assumed[dim] = truth[dim]
			// Validity check: would the optimizer still run this plan?
			np, _ := r.Opt.Optimize(assumed)
			if np.Fingerprint() != p.Fingerprint() {
				a.TriggeredBy = dim
				reoptimized = true
				break
			}
		}
		if !reoptimized {
			// No checkpoint fired: the attempt runs to completion.
			a.Spent = m.Eval(p, truth)
			a.Completed = true
			out.Attempts = append(out.Attempts, a)
			out.TotalCost += a.Spent
			out.Completed = true
			return out
		}
		out.Attempts = append(out.Attempts, a)
		out.TotalCost += a.Spent
	}
	// Defensive: with all D epps learnable this loop always completes
	// within d+1 attempts; guard anyway.
	p, _ := r.Opt.Optimize(truth)
	c := m.Eval(p, truth)
	out.Attempts = append(out.Attempts, Attempt{
		PlanFP: p.Fingerprint(), Assumed: truth.Clone(), Spent: c, Completed: true, TriggeredBy: -1,
	})
	out.TotalCost += c
	out.Completed = true
	return out
}

// learnedSet converts the learned flags into the join-ID set EPPOrder
// expects.
func learnedSet(q *query.Query, learned []bool) map[int]bool {
	out := map[int]bool{}
	for dim, l := range learned {
		if l {
			out[q.EPPs[dim]] = true
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
