// Package trace is the distributed-tracing layer of the repository: W3C
// traceparent propagation (this file) and span trees derived from the
// telemetry event stream (span.go). It is dependency-free by design — the
// span model is a pure function of []telemetry.Event, so goldens can pin
// span trees exactly like they pin event streams, and nothing here imports
// an OpenTelemetry SDK.
//
// A Traceparent travels on the context (WithContext/FromContext), exactly
// like telemetry.Recorder and runstate.Tracker: the HTTP middleware parses
// or mints one per request, the run driver stamps its trace ID onto the
// RunResult, and durable runs persist it so a crash-resumed run is one
// trace spanning process incarnations.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"strings"
)

// Traceparent is one parsed W3C trace-context header (version 00):
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// TraceID identifies the whole trace, SpanID the caller's span, and Sampled
// mirrors the sampled flag bit.
type Traceparent struct {
	TraceID string
	SpanID  string
	Sampled bool
}

// Header renders the canonical version-00 header value.
func (tp Traceparent) Header() string {
	flags := "00"
	if tp.Sampled {
		flags = "01"
	}
	return "00-" + tp.TraceID + "-" + tp.SpanID + "-" + flags
}

// Valid reports whether the traceparent carries well-formed, non-zero IDs.
func (tp Traceparent) Valid() bool {
	return validHex(tp.TraceID, 32) && validHex(tp.SpanID, 16)
}

// Parse parses a traceparent header value. It accepts any version except
// the forbidden ff, ignores trailing version-specific fields, and rejects
// the all-zero trace and span IDs the spec reserves as invalid.
func Parse(header string) (Traceparent, error) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) < 4 {
		return Traceparent{}, fmt.Errorf("trace: malformed traceparent %q", header)
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	// Version and flags may legitimately be all-zero ("00" is the current
	// version; flags 00 means not sampled) — only the IDs carry the spec's
	// all-zero-is-invalid rule.
	if !isHex(version, 2) || version == "ff" {
		return Traceparent{}, fmt.Errorf("trace: bad traceparent version %q", version)
	}
	if !validHex(traceID, 32) {
		return Traceparent{}, fmt.Errorf("trace: bad trace ID %q", traceID)
	}
	if !validHex(spanID, 16) {
		return Traceparent{}, fmt.Errorf("trace: bad parent span ID %q", spanID)
	}
	if !isHex(flags, 2) {
		return Traceparent{}, fmt.Errorf("trace: bad trace flags %q", flags)
	}
	var fb byte
	_, _ = fmt.Sscanf(flags, "%02x", &fb)
	return Traceparent{TraceID: traceID, SpanID: spanID, Sampled: fb&0x01 != 0}, nil
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// validHex reports whether s is exactly n lowercase hex digits and not all
// zero (the spec's invalid sentinel for trace and span IDs).
func validHex(s string, n int) bool {
	if !isHex(s, n) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

// New mints a fresh sampled traceparent with random IDs.
func New() Traceparent {
	return Traceparent{TraceID: randomHex(16), SpanID: randomHex(8), Sampled: true}
}

// randomHex returns 2n lowercase hex digits from crypto/rand, retrying the
// (cosmically unlikely) all-zero draw the spec forbids.
func randomHex(n int) string {
	b := make([]byte, n)
	for {
		_, _ = rand.Read(b)
		for _, c := range b {
			if c != 0 {
				return hex.EncodeToString(b)
			}
		}
	}
}

// SpanIDFor derives a deterministic 16-hex-digit span ID from the trace ID
// and a structural path (e.g. "0.2.1", the span's position in its tree).
// Deriving IDs from coordinates instead of emission order is what keeps
// span trees byte-identical across serial/parallel builds and resume
// replays.
func SpanIDFor(traceID string, path string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(traceID))
	_, _ = h.Write([]byte{'|'})
	_, _ = h.Write([]byte(path))
	v := h.Sum64()
	if v == 0 {
		v = 1 // the all-zero span ID is invalid per spec
	}
	return fmt.Sprintf("%016x", v)
}

// Sample decides head sampling for a trace deterministically from the trace
// ID: the low 8 bytes, read as a fraction of 2^64, are compared against
// rate. rate >= 1 keeps everything, rate <= 0 nothing; the same trace ID
// yields the same verdict in every process, so a distributed deployment
// makes one coherent decision per trace.
func Sample(traceID string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 || !validHex(traceID, 32) {
		return false
	}
	b, err := hex.DecodeString(traceID[16:])
	if err != nil {
		return false
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return float64(v)/float64(1<<63)/2 < rate
}

// ctxKey keys the traceparent on a context.
type ctxKey struct{}

// WithContext attaches the traceparent to the context.
func WithContext(ctx context.Context, tp Traceparent) context.Context {
	return context.WithValue(ctx, ctxKey{}, tp)
}

// FromContext extracts the context's traceparent, reporting whether one was
// attached.
func FromContext(ctx context.Context) (Traceparent, bool) {
	tp, ok := ctx.Value(ctxKey{}).(Traceparent)
	return tp, ok
}
