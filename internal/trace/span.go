package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Span taxonomy. Every span kind is derived from one or more telemetry
// event kinds; the mapping is documented per constant. Durations are in
// cost-ledger units for run trees (the budget ledger is the only
// deterministic clock a simulated run has — wall time would break golden
// determinism) and in grid-cell units for session-build trees.
const (
	// KindRun is a run tree's root: one robust processing run.
	KindRun = "run"
	// KindResume is the zero-width run_resume marker: a crash-resumed
	// incarnation picking the trace up at the carried budget ledger.
	KindResume = "run_resume"
	// KindContour covers one iso-cost contour's executions (contour_enter
	// to the next contour_enter).
	KindContour = "contour"
	// KindPlanExec and KindSpillExec are budgeted executions; their width
	// is the charged cost.
	KindPlanExec  = "plan_exec"
	KindSpillExec = "spill_exec"
	// KindBudgetSpend is the engine-level accounting child of an execution.
	KindBudgetSpend = "budget_spend"
	// KindGuard marks a runtime-guard intervention (budget_abort,
	// ess_escape).
	KindGuard = "guard"
	// KindPrune marks a half-space prune (Lemma 3.1).
	KindPrune = "half_space_prune"
	// KindRetry marks a resilience-layer retry attempt.
	KindRetry = "retry"
	// KindDegrade covers the Native-plan fallback execution.
	KindDegrade = "degrade"
	// KindCheckpoint marks a durable run-state snapshot.
	KindCheckpoint = "checkpoint_save"
	// KindBuild is a session-build tree's root; KindBuildChunk covers one
	// worker's contiguous grid range and KindBuildMemo the post-build
	// assembly (diagram reduction + shared optimizer memo).
	KindBuild      = "session_build"
	KindBuildChunk = "build_chunk"
	KindBuildMemo  = "optimizer_memo"
	// KindFailover is the zero-width failover marker: an orphaned durable
	// run resumed by a new owner after its previous owner was marked down.
	KindFailover = "failover"
	// KindPeer marks a fleet heartbeat state transition (peer_down /
	// peer_up); KindFleet is the root of a fleet membership tree, whose
	// clock is the transition ordinal rather than the cost ledger.
	KindPeer  = "peer_state"
	KindFleet = "fleet"
	// KindBrownout is the zero-width marker for a staged-brownout stage
	// transition on a node (see internal/guard.Brownout).
	KindBrownout = "brownout_stage"
)

// Span is one node of a trace tree. Start and End are in the tree's work
// units (cost ledger for runs, grid cells for builds); markers have
// Start == End. Span IDs are deterministic — SpanIDFor over the span's
// structural path — so identical event streams yield byte-identical trees.
type Span struct {
	SpanID   string            `json:"spanId"`
	ParentID string            `json:"parentId,omitempty"`
	Name     string            `json:"name"`
	Kind     string            `json:"kind"`
	Start    float64           `json:"start"`
	End      float64           `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// Tree is one trace's span tree with its identity and span count.
type Tree struct {
	TraceID string `json:"traceId"`
	Kind    string `json:"kind"` // KindRun or KindBuild
	Spans   int    `json:"spans"`
	Root    *Span  `json:"root"`
}

// JSON renders the tree as deterministic indented JSON: struct fields in
// declaration order, attr maps in sorted key order (encoding/json), floats
// in shortest round-trip form.
func (t *Tree) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// num formats a work-unit value the way the JSON encoder would.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// FromRun derives a run's span tree from its telemetry event stream. The
// derivation is a pure function of (traceID, events): the cost ledger is
// the clock — each execution advances it by its charged cost — so the tree
// is byte-identical across repeated runs, serial/parallel-built sessions
// and crash-resume replays of the same stream. A resumed incarnation's
// tree starts at the carried ledger base (the [0, base) prefix is the
// crashed incarnations' spend), marked by a run_resume span.
func FromRun(traceID string, events []telemetry.Event) *Tree {
	root := &Span{Kind: KindRun, Name: "run", Attrs: map[string]string{}}
	clock := 0.0
	var contour *Span             // open contour span, nil outside contours
	var pending []telemetry.Event // budget_spend events awaiting their execution
	scope := func() *Span {
		if contour != nil {
			return contour
		}
		return root
	}
	closeContour := func() {
		if contour != nil {
			contour.End = clock
			contour = nil
		}
	}
	// flushPending turns budget_spend events that never met an execution
	// span (aborted steps) into zero-width markers at the current clock.
	flushPending := func(into *Span) {
		for _, ev := range pending {
			into.Children = append(into.Children, &Span{
				Kind: KindBudgetSpend, Name: "budget_spend:" + ev.Mode,
				Start: clock, End: clock,
				Attrs: map[string]string{"budget": num(ev.Budget), "spent": num(ev.Spent)},
			})
		}
		pending = nil
	}
	marker := func(kind, name string, attrs map[string]string) *Span {
		sp := &Span{Kind: kind, Name: name, Start: clock, End: clock, Attrs: attrs}
		scope().Children = append(scope().Children, sp)
		return sp
	}

	for _, ev := range events {
		switch ev.Kind {
		case telemetry.RunResume:
			clock = ev.Spent
			root.Start = clock // markers below stay in range; reset at seal
			marker(KindResume, "run_resume", map[string]string{
				"runId": ev.Detail, "contour": strconv.Itoa(ev.Contour), "ledger": num(ev.Spent),
			})
			root.Attrs["resumed"] = "true"
		case telemetry.ContourEnter:
			flushPending(scope())
			closeContour()
			contour = &Span{
				Kind: KindContour, Name: "contour:" + strconv.Itoa(ev.Contour),
				Start: clock, End: clock,
				Attrs: map[string]string{"contour": strconv.Itoa(ev.Contour)},
			}
			root.Children = append(root.Children, contour)
		case telemetry.PlanExec, telemetry.SpillExec:
			kind := KindPlanExec
			if ev.Kind == telemetry.SpillExec {
				kind = KindSpillExec
			}
			attrs := map[string]string{
				"planId":    strconv.Itoa(ev.PlanID),
				"completed": strconv.FormatBool(ev.Completed),
			}
			if ev.Budget != 0 {
				attrs["budget"] = num(ev.Budget)
			}
			if ev.Dim >= 0 {
				attrs["dim"] = strconv.Itoa(ev.Dim)
			}
			if ev.Learned != 0 {
				attrs["learned"] = num(ev.Learned)
			}
			if ev.Mode != "" {
				attrs["mode"] = ev.Mode
			}
			if ev.Repeat {
				attrs["repeat"] = "true"
			}
			if ev.Penalty != 0 {
				attrs["penalty"] = num(ev.Penalty)
			}
			sp := &Span{
				Kind: kind, Name: fmt.Sprintf("%s:p%d", kind, ev.PlanID),
				Start: clock, End: clock + ev.Spent, Attrs: attrs,
			}
			// The engine's budget_spend accounting precedes its execution
			// event in the stream; it becomes the execution span's child,
			// sharing its extent.
			for _, pe := range pending {
				sp.Children = append(sp.Children, &Span{
					Kind: KindBudgetSpend, Name: "budget_spend:" + pe.Mode,
					Start: sp.Start, End: sp.End,
					Attrs: map[string]string{"budget": num(pe.Budget), "spent": num(pe.Spent)},
				})
			}
			pending = nil
			scope().Children = append(scope().Children, sp)
			clock = sp.End
		case telemetry.BudgetSpend:
			pending = append(pending, ev)
		case telemetry.BudgetAbort:
			flushPending(scope())
			marker(KindGuard, "guard:budget_abort", map[string]string{
				"verdict": "budget_abort", "budget": num(ev.Budget), "spent": num(ev.Spent),
			})
		case telemetry.ESSEscape:
			flushPending(scope())
			attrs := map[string]string{"verdict": "ess_escape"}
			if ev.Dim >= 0 {
				attrs["dim"] = strconv.Itoa(ev.Dim)
			}
			if ev.Learned != 0 {
				attrs["learned"] = num(ev.Learned)
			}
			marker(KindGuard, "guard:ess_escape", attrs)
		case telemetry.HalfSpacePrune:
			attrs := map[string]string{"dim": strconv.Itoa(ev.Dim)}
			if ev.Learned != 0 {
				attrs["learned"] = num(ev.Learned)
			}
			marker(KindPrune, fmt.Sprintf("half_space_prune:dim%d", ev.Dim), attrs)
		case telemetry.Retry:
			attrs := map[string]string{}
			if ev.Detail != "" {
				attrs["detail"] = ev.Detail
			}
			if ev.Final {
				attrs["final"] = "true"
			}
			marker(KindRetry, "retry", attrs)
		case telemetry.Degrade:
			flushPending(scope())
			closeContour()
			attrs := map[string]string{"cause": ev.Detail}
			sp := &Span{
				Kind: KindDegrade, Name: "degrade:native",
				Start: clock, End: clock + ev.Spent, Attrs: attrs,
			}
			root.Children = append(root.Children, sp)
			clock = sp.End
		case telemetry.CheckpointSave:
			marker(KindCheckpoint, "checkpoint_save", map[string]string{
				"runId": ev.Detail, "contour": strconv.Itoa(ev.Contour), "ledger": num(ev.Spent),
			})
		case telemetry.Failover:
			// A failover marker sits at the resume ledger: the previous
			// owner died (or was partitioned away) and this incarnation's
			// node adopted the run.
			attrs := map[string]string{"runId": ev.Detail, "ledger": num(ev.Spent)}
			if ev.Mode != "" {
				attrs["node"] = ev.Mode
			}
			marker(KindFailover, "failover", attrs)
		case telemetry.PeerDown, telemetry.PeerUp:
			marker(KindPeer, string(ev.Kind), map[string]string{"peer": ev.Detail})
		case telemetry.Done:
			flushPending(scope())
			closeContour()
			if ev.Algorithm != "" {
				root.Name = "run:" + ev.Algorithm
				root.Attrs["algorithm"] = ev.Algorithm
			}
			root.Attrs["totalCost"] = num(ev.TotalCost)
			root.Attrs["subOpt"] = num(ev.SubOpt)
			root.Attrs["completed"] = strconv.FormatBool(ev.Completed)
		}
	}
	flushPending(scope())
	closeContour()
	// A resumed tree spans the whole run: the root starts at 0 (the crashed
	// incarnations' ledger is [0, resume base)) and ends at the final clock.
	root.Start = 0
	root.End = clock
	t := &Tree{TraceID: traceID, Kind: KindRun, Root: root}
	seal(t)
	return t
}

// FromBuild derives a session-build span tree from the build's telemetry
// events: one build_chunk span per worker grid range (the clock is the flat
// cell index), an optimizer_memo marker for the post-build assembly, under a
// session_build root. Chunk events arrive in nondeterministic worker order;
// they are normalized by sorting on the chunk's first cell, so the tree
// depends only on the partition, never on scheduling.
func FromBuild(traceID string, events []telemetry.Event) *Tree {
	root := &Span{Kind: KindBuild, Name: "session_build", Attrs: map[string]string{}}
	var chunks []*Span
	total := 0.0
	memo := false
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.BuildChunk:
			chunks = append(chunks, &Span{
				Kind:  KindBuildChunk,
				Name:  fmt.Sprintf("build_chunk:%d-%d", ev.CellLo, ev.CellHi),
				Start: float64(ev.CellLo), End: float64(ev.CellHi),
				Attrs: map[string]string{"cells": strconv.Itoa(ev.CellHi - ev.CellLo)},
			})
			if float64(ev.CellHi) > total {
				total = float64(ev.CellHi)
			}
		case telemetry.BuildMemo:
			memo = true
		}
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].Start < chunks[j].Start })
	root.Children = chunks
	root.End = total
	root.Attrs["cells"] = num(total)
	root.Attrs["chunks"] = strconv.Itoa(len(chunks))
	if memo {
		root.Children = append(root.Children, &Span{
			Kind: KindBuildMemo, Name: "optimizer_memo", Start: total, End: total,
		})
	}
	t := &Tree{TraceID: traceID, Kind: KindBuild, Root: root}
	seal(t)
	return t
}

// FromFleet derives a fleet-membership span tree from a node's heartbeat
// event stream (peer_down / peer_up transitions and failover adoptions).
// The clock is the transition ordinal — membership changes have no cost
// ledger — so every transition is a zero-width marker at its sequence
// position, and the flamegraph of a fleet trace reads as a membership
// timeline. Pure function of (traceID, events), like FromRun.
func FromFleet(traceID string, events []telemetry.Event) *Tree {
	root := &Span{Kind: KindFleet, Name: "fleet", Attrs: map[string]string{}}
	clock := 0.0
	transitions, failovers, brownouts := 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.PeerDown, telemetry.PeerUp:
			transitions++
			root.Children = append(root.Children, &Span{
				Kind: KindPeer, Name: string(ev.Kind) + ":" + ev.Detail,
				Start: clock, End: clock,
				Attrs: map[string]string{"peer": ev.Detail},
			})
			clock++
		case telemetry.Failover:
			failovers++
			attrs := map[string]string{"runId": ev.Detail, "ledger": num(ev.Spent)}
			if ev.Mode != "" {
				attrs["node"] = ev.Mode
			}
			root.Children = append(root.Children, &Span{
				Kind: KindFailover, Name: "failover:" + ev.Detail,
				Start: clock, End: clock, Attrs: attrs,
			})
			clock++
		case telemetry.BrownoutStage:
			brownouts++
			attrs := map[string]string{
				"stage": strconv.Itoa(ev.Contour),
				"from":  strconv.Itoa(ev.Dim),
			}
			if ev.Detail != "" {
				attrs["node"] = ev.Detail
			}
			root.Children = append(root.Children, &Span{
				Kind: KindBrownout, Name: "brownout_stage:" + strconv.Itoa(ev.Contour),
				Start: clock, End: clock, Attrs: attrs,
			})
			clock++
		}
	}
	root.End = clock
	root.Attrs["transitions"] = strconv.Itoa(transitions)
	root.Attrs["failovers"] = strconv.Itoa(failovers)
	if brownouts > 0 {
		root.Attrs["brownouts"] = strconv.Itoa(brownouts)
	}
	t := &Tree{TraceID: traceID, Kind: KindFleet, Root: root}
	seal(t)
	return t
}

// seal assigns deterministic span and parent IDs over the finished tree
// (SpanIDFor over each span's structural path) and counts the spans. It
// runs after any normalization sorting, so concurrent emission order can
// never leak into the IDs.
func seal(t *Tree) {
	n := 0
	var walk func(sp *Span, parentID, path string)
	walk = func(sp *Span, parentID, path string) {
		n++
		sp.SpanID = SpanIDFor(t.TraceID, path)
		sp.ParentID = parentID
		for i, c := range sp.Children {
			walk(c, sp.SpanID, path+"."+strconv.Itoa(i))
		}
	}
	walk(t.Root, "", "0")
	t.Spans = n
}

// RenderText renders the tree as an indented one-span-per-line transcript
// for CLI output (`rqp -trace`).
func RenderText(t *Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d spans (%s)\n", t.TraceID, t.Spans, t.Kind)
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if sp.Start == sp.End {
			fmt.Fprintf(&b, "- %s @%s", sp.Name, num(sp.Start))
		} else {
			fmt.Fprintf(&b, "- %s [%s, %s] width=%s", sp.Name, num(sp.Start), num(sp.End), num(sp.End-sp.Start))
		}
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, sp.Attrs[k])
		}
		b.WriteByte('\n')
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}
