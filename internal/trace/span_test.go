package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// runEvents is a compact synthetic run: two contours, a budgeted execution
// with its engine accounting, a spill execution, a prune, a guard verdict,
// and the terminal summary.
func runEvents() []telemetry.Event {
	return []telemetry.Event{
		{Kind: telemetry.ContourEnter, Contour: 0, Dim: -1},
		{Kind: telemetry.BudgetSpend, Mode: "exec", Budget: 10, Spent: 10, Dim: -1},
		{Kind: telemetry.PlanExec, PlanID: 3, Budget: 10, Spent: 10, Dim: -1},
		{Kind: telemetry.HalfSpacePrune, Dim: 1, Learned: 0.25},
		{Kind: telemetry.ContourEnter, Contour: 1, Dim: -1},
		{Kind: telemetry.SpillExec, PlanID: 5, Budget: 20, Spent: 20, Dim: 0, Completed: true},
		{Kind: telemetry.BudgetAbort, Budget: 40, Spent: 41, Dim: -1},
		{Kind: telemetry.Done, Algorithm: "spillbound", TotalCost: 30, SubOpt: 1.5, Completed: true, Dim: -1},
	}
}

func TestFromRunShape(t *testing.T) {
	tree := FromRun(testTraceID, runEvents())
	root := tree.Root
	if root.Kind != KindRun || root.Name != "run:spillbound" {
		t.Fatalf("root %q kind %q", root.Name, root.Kind)
	}
	if root.Start != 0 || root.End != 30 {
		t.Fatalf("root extent [%g, %g], want [0, 30] (the cost-ledger clock)", root.Start, root.End)
	}
	if root.Attrs["totalCost"] != "30" || root.Attrs["subOpt"] != "1.5" || root.Attrs["completed"] != "true" {
		t.Errorf("root attrs %v", root.Attrs)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 contours", len(root.Children))
	}
	c0, c1 := root.Children[0], root.Children[1]
	if c0.Kind != KindContour || c0.Start != 0 || c0.End != 10 {
		t.Errorf("contour 0: kind %q [%g, %g]", c0.Kind, c0.Start, c0.End)
	}
	if c1.Start != 10 || c1.End != 30 {
		t.Errorf("contour 1 extent [%g, %g], want [10, 30]", c1.Start, c1.End)
	}
	// Contour 0: the plan_exec (with its budget_spend child) then the prune
	// marker at the post-exec clock.
	if len(c0.Children) != 2 {
		t.Fatalf("contour 0 has %d children", len(c0.Children))
	}
	exec := c0.Children[0]
	if exec.Kind != KindPlanExec || exec.Start != 0 || exec.End != 10 {
		t.Errorf("exec span %q [%g, %g]", exec.Kind, exec.Start, exec.End)
	}
	if len(exec.Children) != 1 || exec.Children[0].Kind != KindBudgetSpend {
		t.Errorf("budget_spend not attached to its execution: %+v", exec.Children)
	}
	if prune := c0.Children[1]; prune.Kind != KindPrune || prune.Start != 10 || prune.End != 10 {
		t.Errorf("prune marker %q [%g, %g]", prune.Kind, prune.Start, prune.End)
	}
	// Contour 1: the spill exec and the guard marker.
	if len(c1.Children) != 2 || c1.Children[0].Kind != KindSpillExec || c1.Children[1].Kind != KindGuard {
		t.Errorf("contour 1 children: %+v", c1.Children)
	}
	if tree.Spans != 8 {
		t.Errorf("tree advertises %d spans", tree.Spans)
	}
}

func TestFromRunDeterministicJSON(t *testing.T) {
	a, err := FromRun(testTraceID, runEvents()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRun(testTraceID, runEvents()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same (traceID, events) produced different JSON")
	}
	c, err := FromRun(strings.Repeat("ab", 16), runEvents()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different trace IDs produced identical JSON (span IDs must differ)")
	}
}

func TestFromRunResume(t *testing.T) {
	// A resumed incarnation: the stream opens with run_resume carrying the
	// ledger base; the tree must start its clock there but the root must
	// still span [0, end] — the prefix is the crashed incarnations' spend.
	events := append([]telemetry.Event{
		{Kind: telemetry.RunResume, Detail: "r7", Contour: 1, Spent: 100, Dim: -1},
	}, []telemetry.Event{
		{Kind: telemetry.ContourEnter, Contour: 1, Dim: -1},
		{Kind: telemetry.PlanExec, PlanID: 2, Spent: 15, Dim: -1, Completed: true},
		{Kind: telemetry.Done, Algorithm: "spillbound", TotalCost: 115, SubOpt: 2, Completed: true, Dim: -1},
	}...)
	tree := FromRun(testTraceID, events)
	root := tree.Root
	if root.Attrs["resumed"] != "true" {
		t.Error("resumed run not marked on the root")
	}
	if root.Start != 0 || root.End != 115 {
		t.Errorf("root extent [%g, %g], want [0, 115]", root.Start, root.End)
	}
	if len(root.Children) < 2 || root.Children[0].Kind != KindResume {
		t.Fatalf("first child %+v, want the run_resume marker", root.Children[0])
	}
	resume := root.Children[0]
	if resume.Start != 100 || resume.End != 100 || resume.Attrs["ledger"] != "100" {
		t.Errorf("resume marker [%g, %g] attrs %v", resume.Start, resume.End, resume.Attrs)
	}
	contour := root.Children[1]
	if contour.Start != 100 || contour.End != 115 {
		t.Errorf("resumed contour [%g, %g], want [100, 115]", contour.Start, contour.End)
	}
}

func TestFromRunDegradedAndAbortedSpend(t *testing.T) {
	// A budget_spend with no following execution (the step was aborted)
	// flushes as a zero-width marker; the degrade execution closes the
	// contour and lands under the root.
	events := []telemetry.Event{
		{Kind: telemetry.ContourEnter, Contour: 0, Dim: -1},
		{Kind: telemetry.BudgetSpend, Mode: "exec", Budget: 10, Spent: 10, Dim: -1},
		{Kind: telemetry.Degrade, Detail: "watchdog", Spent: 50, Dim: -1},
		{Kind: telemetry.Done, Algorithm: "spillbound", TotalCost: 50, SubOpt: 9, Dim: -1},
	}
	tree := FromRun(testTraceID, events)
	root := tree.Root
	if len(root.Children) != 2 {
		t.Fatalf("root children %d, want contour + degrade", len(root.Children))
	}
	contour := root.Children[0]
	if len(contour.Children) != 1 || contour.Children[0].Kind != KindBudgetSpend {
		t.Fatalf("aborted budget_spend not flushed into its contour: %+v", contour.Children)
	}
	if sp := contour.Children[0]; sp.Start != sp.End {
		t.Errorf("flushed spend should be a zero-width marker, got [%g, %g]", sp.Start, sp.End)
	}
	deg := root.Children[1]
	if deg.Kind != KindDegrade || deg.Start != 0 || deg.End != 50 {
		t.Errorf("degrade span %q [%g, %g]", deg.Kind, deg.Start, deg.End)
	}
}

func TestFromBuildNormalizesChunkOrder(t *testing.T) {
	// Chunk events in scrambled worker-completion order must yield the same
	// tree as sorted order: FromBuild sorts on the chunk's first cell before
	// sealing IDs.
	scrambled := []telemetry.Event{
		{Kind: telemetry.BuildChunk, CellLo: 32, CellHi: 64, Dim: -1},
		{Kind: telemetry.BuildChunk, CellLo: 0, CellHi: 32, Dim: -1},
		{Kind: telemetry.BuildMemo, Dim: -1},
	}
	ordered := []telemetry.Event{
		{Kind: telemetry.BuildChunk, CellLo: 0, CellHi: 32, Dim: -1},
		{Kind: telemetry.BuildChunk, CellLo: 32, CellHi: 64, Dim: -1},
		{Kind: telemetry.BuildMemo, Dim: -1},
	}
	a, err := FromBuild(testTraceID, scrambled).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromBuild(testTraceID, ordered).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("chunk emission order leaked into the build tree")
	}
	tree := FromBuild(testTraceID, ordered)
	if tree.Root.End != 64 || tree.Root.Attrs["chunks"] != "2" {
		t.Errorf("build root end %g attrs %v", tree.Root.End, tree.Root.Attrs)
	}
	last := tree.Root.Children[len(tree.Root.Children)-1]
	if last.Kind != KindBuildMemo || last.Start != 64 {
		t.Errorf("memo marker %+v", last)
	}
	if tree.Spans != 4 {
		t.Errorf("spans = %d, want 4", tree.Spans)
	}
}

func TestSealIDsAndRenderText(t *testing.T) {
	tree := FromRun(testTraceID, runEvents())
	seen := map[string]bool{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if sp.SpanID == "" || seen[sp.SpanID] {
			t.Fatalf("span ID %q empty or duplicated", sp.SpanID)
		}
		seen[sp.SpanID] = true
		for _, c := range sp.Children {
			if c.ParentID != sp.SpanID {
				t.Fatalf("child %s names parent %q under %s", c.SpanID, c.ParentID, sp.SpanID)
			}
			walk(c)
		}
	}
	if tree.Root.ParentID != "" {
		t.Fatalf("root has a parent")
	}
	walk(tree.Root)

	text := RenderText(tree)
	if !strings.Contains(text, "run:spillbound") || !strings.Contains(text, "contour:1") {
		t.Errorf("render missing spans:\n%s", text)
	}
	if RenderText(tree) != text {
		t.Error("RenderText is not deterministic")
	}
}
