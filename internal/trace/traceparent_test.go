package trace

import (
	"context"
	"strings"
	"testing"
)

const (
	w3cExample = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	exTraceID  = "4bf92f3577b34da6a3ce929d0e0e4736"
	exSpanID   = "00f067aa0ba902b7"
)

func TestParseHeaderRoundTrip(t *testing.T) {
	tp, err := Parse(w3cExample)
	if err != nil {
		t.Fatalf("Parse(%q): %v", w3cExample, err)
	}
	if tp.TraceID != exTraceID || tp.SpanID != exSpanID || !tp.Sampled {
		t.Fatalf("parsed %+v", tp)
	}
	if got := tp.Header(); got != w3cExample {
		t.Errorf("Header() = %q, want %q", got, w3cExample)
	}
	if !tp.Valid() {
		t.Error("parsed traceparent reports invalid")
	}
}

func TestParseNotSampled(t *testing.T) {
	// Flags 00 (not sampled) is a legal all-zero field; only the IDs carry
	// the all-zero-is-invalid rule.
	tp, err := Parse("00-" + exTraceID + "-" + exSpanID + "-00")
	if err != nil {
		t.Fatalf("unsampled header rejected: %v", err)
	}
	if tp.Sampled {
		t.Error("flags 00 parsed as sampled")
	}
	if got := tp.Header(); !strings.HasSuffix(got, "-00") {
		t.Errorf("Header() = %q, want -00 flags", got)
	}
}

func TestParseFutureVersionAndExtraFields(t *testing.T) {
	// Per spec, a parser must accept headers from future versions with
	// trailing version-specific fields.
	tp, err := Parse("01-" + exTraceID + "-" + exSpanID + "-01-extradata")
	if err != nil {
		t.Fatalf("future-version header rejected: %v", err)
	}
	if tp.TraceID != exTraceID {
		t.Errorf("trace ID %q", tp.TraceID)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"not-a-traceparent",
		"00-" + exTraceID + "-" + exSpanID, // missing flags
		"ff-" + exTraceID + "-" + exSpanID + "-01",                  // forbidden version
		"00-00000000000000000000000000000000-" + exSpanID + "-01",   // all-zero trace ID
		"00-" + exTraceID + "-0000000000000000-01",                  // all-zero span ID
		"00-" + strings.ToUpper(exTraceID) + "-" + exSpanID + "-01", // uppercase hex
		"00-" + exTraceID[:31] + "-" + exSpanID + "-01",             // short trace ID
		"00-" + exTraceID + "-" + exSpanID + "-0g",                  // non-hex flags
		"zz-" + exTraceID + "-" + exSpanID + "-01",                  // non-hex version
	}
	for _, h := range bad {
		if _, err := Parse(h); err == nil {
			t.Errorf("Parse(%q) accepted", h)
		}
	}
}

func TestNewMintsValid(t *testing.T) {
	a, b := New(), New()
	if !a.Valid() || !a.Sampled {
		t.Fatalf("New() = %+v", a)
	}
	if _, err := Parse(a.Header()); err != nil {
		t.Fatalf("minted header does not round-trip: %v", err)
	}
	if a.TraceID == b.TraceID {
		t.Error("two minted traceparents share a trace ID")
	}
}

func TestSpanIDFor(t *testing.T) {
	id := SpanIDFor(exTraceID, "0.1.2")
	if len(id) != 16 || !validHex(id, 16) {
		t.Fatalf("SpanIDFor = %q", id)
	}
	if id != SpanIDFor(exTraceID, "0.1.2") {
		t.Error("SpanIDFor is not deterministic")
	}
	if id == SpanIDFor(exTraceID, "0.1.3") {
		t.Error("sibling paths collide")
	}
	if id == SpanIDFor(strings.Repeat("ab", 16), "0.1.2") {
		t.Error("same path under different traces collides")
	}
}

func TestSampleBoundariesAndDeterminism(t *testing.T) {
	if !Sample(exTraceID, 1) || !Sample(exTraceID, 2) {
		t.Error("rate >= 1 must keep everything")
	}
	if Sample(exTraceID, 0) || Sample(exTraceID, -1) {
		t.Error("rate <= 0 must keep nothing")
	}
	if Sample("not-hex", 0.5) {
		t.Error("malformed trace ID must not be kept at fractional rates")
	}
	// Deterministic per ID, and a fractional rate splits a population.
	kept := 0
	for i := 0; i < 256; i++ {
		id := New().TraceID
		a, b := Sample(id, 0.5), Sample(id, 0.5)
		if a != b {
			t.Fatalf("verdict for %s flapped", id)
		}
		if a {
			kept++
		}
	}
	if kept == 0 || kept == 256 {
		t.Errorf("rate 0.5 kept %d/256 traces", kept)
	}
	// Monotone in rate: a trace kept at rate r stays kept at r' > r.
	for i := 0; i < 64; i++ {
		id := New().TraceID
		if Sample(id, 0.1) && !Sample(id, 0.9) {
			t.Fatalf("trace %s kept at 0.1 but dropped at 0.9", id)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context reports a traceparent")
	}
	tp := New()
	got, ok := FromContext(WithContext(context.Background(), tp))
	if !ok || got != tp {
		t.Fatalf("round-trip = %+v, %v", got, ok)
	}
}
