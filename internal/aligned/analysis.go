package aligned

import (
	"math"

	"repro/internal/ess"
)

// AlignmentStats summarizes how cheaply contour alignment (Sec 3.3) can be
// enforced across a query's contours — the data behind paper Table 2.
type AlignmentStats struct {
	// Contours is the number of contours analyzed.
	Contours int
	// MinPenalty[i] is contour i's cheapest alignment penalty: 1 when the
	// contour is natively aligned along some dimension, the minimum plan
	// replacement cost ratio otherwise, +Inf if unalignable.
	MinPenalty []float64
}

// NativePct returns the percentage of contours aligned without any
// replacement (the "Original" column of Table 2).
func (a AlignmentStats) NativePct() float64 { return a.WithinPct(1) }

// WithinPct returns the percentage of contours that are aligned when
// replacement plans may incur penalty at most lambda.
func (a AlignmentStats) WithinPct(lambda float64) float64 {
	if a.Contours == 0 {
		return 0
	}
	n := 0
	for _, p := range a.MinPenalty {
		if p <= lambda+1e-9 {
			n++
		}
	}
	return 100 * float64(n) / float64(a.Contours)
}

// MaxPenalty returns the penalty needed for every contour to satisfy
// alignment (the "Max λ" column of Table 2).
func (a AlignmentStats) MaxPenalty() float64 {
	max := 0.0
	for _, p := range a.MinPenalty {
		if p > max {
			max = p
		}
	}
	return max
}

// AnalyzeAlignment computes per-contour alignment penalties for the space's
// doubling contours: for each contour, the cheapest way — over all
// dimensions j — to have an extreme location along j hold a plan that
// spills on j, natively or by minimum-penalty replacement (Sec 5.1).
func AnalyzeAlignment(s *ess.Space, ratio float64) AlignmentStats {
	g := s.Grid
	epps := s.Query.EPPs
	costs := s.ContourCosts(ratio)
	full := s.Full()
	stats := AlignmentStats{Contours: len(costs)}

	// Plan pools by spill dimension (nothing learnt yet).
	pools := map[int][]int{}
	for id, p := range s.Plans() {
		if tgt, ok := p.SpillTarget(epps, nil); ok {
			if d, isEPP := s.Query.IsEPP(tgt.JoinID); isEPP {
				pools[d] = append(pools[d], id)
			}
		}
	}

	for _, cc := range costs {
		cells := full.ContourCells(cc)
		best := math.Inf(1)
		for dim := 0; dim < g.D; dim++ {
			// Extreme locations along dim: max dim-coordinate on contour.
			extCoord := -1
			for _, ci := range cells {
				if c := g.Coord(ci, dim); c > extCoord {
					extCoord = c
				}
			}
			if extCoord < 0 {
				continue
			}
			native := false
			for _, ci := range cells {
				if g.Coord(ci, dim) != extCoord {
					continue
				}
				if tgt, ok := s.PlanAt(ci).SpillTarget(epps, nil); ok {
					if d, isEPP := s.Query.IsEPP(tgt.JoinID); isEPP && d == dim {
						native = true
						break
					}
				}
			}
			if native {
				best = 1
				break
			}
			// Induced alignment along dim: cheapest replacement at any
			// extreme location by a dim-spilling plan.
			for _, ci := range cells {
				if g.Coord(ci, dim) != extCoord {
					continue
				}
				loc := g.Location(ci)
				opt := s.CostAt(ci)
				for _, id := range pools[dim] {
					if pen := s.Model.Eval(s.Plans()[id], loc) / opt; pen < best {
						best = pen
					}
				}
			}
		}
		stats.MinPenalty = append(stats.MinPenalty, best)
	}
	return stats
}
