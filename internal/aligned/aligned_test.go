package aligned

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/spillbound"
	"repro/internal/sqlmini"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
			{Name: "l_suppkey", Distinct: 1000, Min: 1, Max: 1000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "supplier", Rows: 1000, RowBytes: 60,
		Columns: []catalog.Column{
			{Name: "s_suppkey", Distinct: 1000, Min: 1, Max: 1000},
		},
	})
	return c
}

func build2D(t *testing.T, res int) *ess.Space {
	t.Helper()
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(2, res, 1e-6))
}

func build3D(t *testing.T, res int) *ess.Space {
	t.Helper()
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o, supplier s
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND l.l_suppkey = s.s_suppkey`)
	if err := q.MarkEPPs(
		"p.p_partkey = l.l_partkey",
		"l.l_orderkey = o.o_orderkey",
		"l.l_suppkey = s.s_suppkey",
	); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(3, res, 1e-6))
}

func TestGuaranteeFormulas(t *testing.T) {
	if GuaranteeLower(4) != 10 {
		t.Errorf("GuaranteeLower(4) = %g", GuaranteeLower(4))
	}
	if GuaranteeUpper(4) != 28 {
		t.Errorf("GuaranteeUpper(4) = %g", GuaranteeUpper(4))
	}
}

func TestRunCompletes(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	for _, truth := range []cost.Location{
		{1e-6, 1e-6}, {1e-3, 1e-5}, {1, 1}, {1e-6, 1}, {0.03, 0.1},
	} {
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		if !out.Completed {
			t.Fatalf("truth %v: did not complete\n%s", truth, out.Trace())
		}
	}
}

// TestMSOWithinUpperBound verifies AlignedBound never exceeds the retained
// D²+3D guarantee, exhaustively over the 2D grid.
func TestMSOWithinUpperBound(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	g := s.Grid
	bound := GuaranteeUpper(2)
	worst := 0.0
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		subOpt := out.TotalCost / s.CostAt(ci)
		if subOpt > worst {
			worst = subOpt
		}
		if subOpt > bound {
			t.Fatalf("truth %v: SubOpt %.2f exceeds %g\n%s", truth, subOpt, bound, out.Trace())
		}
	}
	t.Logf("2D AB empirical MSO = %.2f (range [%g, %g])", worst, GuaranteeLower(2), bound)
}

func TestMSOWithinUpperBound3D(t *testing.T) {
	s := build3D(t, 6)
	r := NewRunner(s)
	g := s.Grid
	bound := GuaranteeUpper(3)
	worst := 0.0
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		out := r.Run(e)
		subOpt := out.TotalCost / s.CostAt(ci)
		if subOpt > worst {
			worst = subOpt
		}
		if subOpt > bound {
			t.Fatalf("truth %v: SubOpt %.2f exceeds %g\n%s", truth, subOpt, bound, out.Trace())
		}
	}
	t.Logf("3D AB empirical MSO = %.2f (range [%g, %g])", worst, GuaranteeLower(3), bound)
}

// TestPenaltiesRecorded checks that induced executions carry their penalty
// and that π* tracking reports at least the executed parts' penalties.
func TestPenaltiesRecorded(t *testing.T) {
	s := build3D(t, 6)
	r := NewRunner(s)
	e := engine.New(s.Model, cost.Location{1e-3, 1e-2, 1e-4})
	out := r.Run(e)
	for _, x := range out.Executions {
		if x.Dim < 0 {
			continue // 1-D phase
		}
		if x.Penalty < 1-1e-9 {
			t.Errorf("spill execution with penalty %g < 1: %+v", x.Penalty, x)
		}
		if x.Native && math.Abs(x.Penalty-1) > 1e-9 {
			t.Errorf("native execution with penalty %g", x.Penalty)
		}
	}
	if out.MaxPartitionPenalty < 1 && len(out.Executions) > 1 {
		t.Errorf("MaxPartitionPenalty = %g", out.MaxPartitionPenalty)
	}
}

// TestABCompetitiveWithSB: AlignedBound's whole point is improving on
// SpillBound for challenging instances; across the grid its MSO must not be
// dramatically worse, and per the paper's findings we expect it at or below
// SB's MSO on this workload.
func TestABCompetitiveWithSB(t *testing.T) {
	s := build2D(t, 10)
	ab := NewRunner(s)
	sb := spillbound.NewRunner(s)
	g := s.Grid
	worstAB, worstSB := 0.0, 0.0
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		oAB := ab.Run(engine.New(s.Model, truth))
		oSB := sb.Run(engine.New(s.Model, truth))
		if so := oAB.TotalCost / s.CostAt(ci); so > worstAB {
			worstAB = so
		}
		if so := oSB.TotalCost / s.CostAt(ci); so > worstSB {
			worstSB = so
		}
	}
	t.Logf("MSOe: AB=%.2f SB=%.2f", worstAB, worstSB)
	if worstAB > worstSB*1.5 {
		t.Errorf("AB MSO %.2f much worse than SB %.2f", worstAB, worstSB)
	}
}

func TestDeterminism(t *testing.T) {
	s := build3D(t, 6)
	r := NewRunner(s)
	truth := cost.Location{1e-4, 1e-3, 1e-2}
	a := r.Run(engine.New(s.Model, truth))
	b := r.Run(engine.New(s.Model, truth))
	if a.Trace() != b.Trace() || a.TotalCost != b.TotalCost {
		t.Error("AlignedBound is not deterministic")
	}
}

func TestAnalyzeAlignment(t *testing.T) {
	s := build2D(t, 10)
	stats := AnalyzeAlignment(s, 2)
	if stats.Contours != len(s.ContourCosts(2)) {
		t.Fatalf("Contours = %d", stats.Contours)
	}
	if len(stats.MinPenalty) != stats.Contours {
		t.Fatalf("MinPenalty len = %d", len(stats.MinPenalty))
	}
	for i, p := range stats.MinPenalty {
		if p < 1-1e-9 {
			t.Errorf("contour %d min penalty %g < 1", i, p)
		}
	}
	native := stats.NativePct()
	if native < 0 || native > 100 {
		t.Errorf("NativePct = %g", native)
	}
	// WithinPct is monotone in lambda and reaches 100 at MaxPenalty (when
	// finite).
	if stats.WithinPct(1.2) > stats.WithinPct(2.0)+1e-9 {
		t.Error("WithinPct not monotone")
	}
	if mp := stats.MaxPenalty(); !math.IsInf(mp, 1) {
		if got := stats.WithinPct(mp); got < 100-1e-6 {
			t.Errorf("WithinPct(MaxPenalty) = %g, want 100", got)
		}
	}
}

func TestAlignmentStatsEdgeCases(t *testing.T) {
	var empty AlignmentStats
	if empty.WithinPct(2) != 0 {
		t.Error("empty stats WithinPct should be 0")
	}
	if empty.MaxPenalty() != 0 {
		t.Error("empty stats MaxPenalty should be 0")
	}
}

func TestSpillOutcomeView(t *testing.T) {
	s := build2D(t, 10)
	r := NewRunner(s)
	out := r.Run(engine.New(s.Model, cost.Location{0.02, 0.1}))
	view := out.SpillOutcome()
	if view.TotalCost != out.TotalCost || view.Completed != out.Completed {
		t.Error("view diverges from the outcome")
	}
	if len(view.Executions) != len(out.Executions) {
		t.Fatalf("view has %d executions, outcome %d", len(view.Executions), len(out.Executions))
	}
	for i := range view.Executions {
		if view.Executions[i].String() != out.Executions[i].Execution.String() {
			t.Fatalf("execution %d mismatch", i)
		}
	}
}
