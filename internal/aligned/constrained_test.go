package aligned

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/optimizer"
)

// TestConstrainedSearchKeepsBound runs AlignedBound with the
// spill-constrained optimizer feature enabled (Sec 6.1) and verifies that
// the D²+3D upper bound and completion still hold exhaustively over the
// grid, and that the feature never *increases* partition penalties (it only
// widens the replacement candidate pool).
func TestConstrainedSearchKeepsBound(t *testing.T) {
	s := build2D(t, 10)
	o := optimizer.MustNew(s.Model)
	plain := NewRunner(s)
	enhanced := &Runner{Space: s, Ratio: plain.Ratio, Opt: o, BeamK: 6}

	g := s.Grid
	bound := GuaranteeUpper(2)
	worstPlain, worstEnh := 0.0, 0.0
	maxPenPlain, maxPenEnh := 0.0, 0.0
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		op := plain.Run(engine.New(s.Model, truth))
		oe := enhanced.Run(engine.New(s.Model, truth))
		if !oe.Completed {
			t.Fatalf("truth %v: enhanced run did not complete", truth)
		}
		if so := oe.TotalCost / s.CostAt(ci); so > bound {
			t.Fatalf("truth %v: enhanced SubOpt %.2f exceeds bound\n%s", truth, so, oe.Trace())
		} else if so > worstEnh {
			worstEnh = so
		}
		if so := op.TotalCost / s.CostAt(ci); so > worstPlain {
			worstPlain = so
		}
		if op.MaxPartitionPenalty > maxPenPlain {
			maxPenPlain = op.MaxPartitionPenalty
		}
		if oe.MaxPartitionPenalty > maxPenEnh {
			maxPenEnh = oe.MaxPartitionPenalty
		}
	}
	t.Logf("MSOe plain %.2f vs constrained %.2f; max penalty %.2f vs %.2f",
		worstPlain, worstEnh, maxPenPlain, maxPenEnh)
	if maxPenEnh > maxPenPlain+1e-9 {
		t.Errorf("constrained search increased the max penalty: %.3f > %.3f", maxPenEnh, maxPenPlain)
	}
}

func TestConstrainedSearchDeterminism(t *testing.T) {
	s := build3D(t, 5)
	o := optimizer.MustNew(s.Model)
	r := &Runner{Space: s, Ratio: 2, Opt: o}
	truth := cost.Location{1e-3, 1e-2, 1e-4}
	a := r.Run(engine.New(s.Model, truth))
	b := r.Run(engine.New(s.Model, truth))
	if a.Trace() != b.Trace() || a.TotalCost != b.TotalCost {
		t.Error("constrained AlignedBound is not deterministic")
	}
}
