// Package aligned implements the AlignedBound algorithm (paper Sec 5),
// which bridges SpillBound's quadratic-to-linear MSO gap by exploiting —
// and, where absent, inducing at bounded cost penalty — the contour
// alignment and predicate set alignment (PSA) properties. On every contour
// it selects the minimum-penalty partition cover of the remaining epps,
// executes one spill-mode plan per part (its leader's replacement plan),
// and achieves quantum progress with as few as one execution per contour,
// for an MSO guarantee in the platform-independent range [2D+2, D²+3D].
package aligned

import (
	"context"
	"math"

	"repro/internal/bouquet"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/runstate"
	"repro/internal/spillbound"
	"repro/internal/telemetry"
)

// GuaranteeLower returns the aligned-case MSO bound 2D+2 (Theorem 5.1).
func GuaranteeLower(d int) float64 { return float64(2*d + 2) }

// GuaranteeUpper returns AlignedBound's worst-case bound D²+3D, retained
// from SpillBound.
func GuaranteeUpper(d int) float64 { return spillbound.Guarantee(d) }

// Runner executes AlignedBound over a prebuilt ESS.
type Runner struct {
	// Space is the explored ESS.
	Space *ess.Space
	// Ratio is the contour cost ratio (paper default: doubling).
	Ratio float64
	// Opt, when set, enables the spill-constrained plan search the paper's
	// evaluation added to PostgreSQL ("a feature that obtains a least cost
	// plan from optimizer which spills on a user-specified epp ...
	// primarily needed for AlignedBound", Sec 6.1): induced replacements
	// may then draw on beam-enumerated plans beyond the POSP pool.
	Opt *optimizer.Optimizer
	// BeamK is the beam width of the constrained search (defaults to 8).
	BeamK int
	// Resume, when non-nil, restarts the discovery from a checkpointed
	// state: the contour index and learnt selectivities (with their
	// half-space prunes, Lemma 3.1) are restored before the first
	// execution, mirroring spillbound.Runner.Resume. The outcome reports
	// only the resumed incarnation's new spend; the caller owns the
	// carried-over ledger (Resume.Spent).
	Resume *runstate.Discovery
}

// NewRunner returns a Runner with the default doubling contours.
func NewRunner(s *ess.Space) *Runner {
	return &Runner{Space: s, Ratio: ess.CostDoublingRatio}
}

// partExec describes the single spill-mode execution chosen for one part of
// a partition cover: the leader dimension's (possibly replacement) plan,
// the location it substitutes at, and the penalty relative to that
// location's optimal cost.
type partExec struct {
	leader  int // ESS dimension
	planID  int
	plan    *plan.Plan // non-nil for beam-enumerated (non-POSP) replacements
	cell    int
	budget  float64
	penalty float64
	native  bool
	empty   bool // no contour cell spills on any dim of the part
}

// Execution re-exports SpillBound's execution record; AlignedBound traces
// carry the same fields plus the part's penalty.
type Execution struct {
	spillbound.Execution
	// Penalty is Cost(P,q)/Cost(Pq,q) for the executed (replacement) plan,
	// 1 for natively aligned executions, 0 for the terminal 1-D phase.
	Penalty float64
	// Native reports whether the alignment was native rather than induced.
	Native bool
}

// Outcome is a full AlignedBound run.
type Outcome struct {
	// Executions lists every budgeted execution in order.
	Executions []Execution
	// TotalCost is the summed charged cost.
	TotalCost float64
	// Completed reports whether the query finished.
	Completed bool
	// MaxPartitionPenalty is the largest per-partition total penalty π*
	// encountered across explored contours (paper Table 4).
	MaxPartitionPenalty float64
}

// SpillOutcome converts the run into a spillbound.Outcome view, so the
// shared tooling (e.g. viz.Fig7's Manhattan rendering) applies to
// AlignedBound traces too.
func (o Outcome) SpillOutcome() spillbound.Outcome {
	out := spillbound.Outcome{TotalCost: o.TotalCost, Completed: o.Completed}
	for _, x := range o.Executions {
		out.Executions = append(out.Executions, x.Execution)
	}
	return out
}

// Trace renders the executions, one line each.
func (o Outcome) Trace() string {
	s := ""
	for _, x := range o.Executions {
		s += x.String() + "\n"
	}
	return s
}

// contourState caches the per-contour analysis AlignedBound needs: the
// contour cells, each cell's spill dimension, and the pool of plans per
// spill dimension.
type contourState struct {
	r        *Runner
	cells    []int
	spillDim []int           // parallel to cells
	pools    map[int][]int   // dim -> POSP plan IDs spilling on dim
	memo     map[[2]int]memo // (part mask, leader) -> part penalty
	indMemo  map[[2]int]memo // (leader, coord) -> induced replacement
	learned  map[int]bool

	// maxCoord[d][j] is the maximum j-coordinate over contour cells whose
	// plan spills on d, or -1 when no cell spills on d; jmaxCell[j] is the
	// cell attaining maxCoord[j][j] (the paper's q^j_max).
	maxCoord [][]int
	jmaxCell []int
}

type memo struct {
	exec     partExec
	feasible bool
}

// newContourState analyzes one contour under the current learned set,
// precomputing the per-dimension extreme coordinates that make partition
// penalty queries O(D) instead of O(|contour|).
func (r *Runner) newContourState(cells []int, learned map[int]bool) *contourState {
	s := r.Space
	g := s.Grid
	st := &contourState{
		r: r, cells: cells, learned: learned,
		spillDim: make([]int, len(cells)),
		pools:    map[int][]int{},
		memo:     map[[2]int]memo{},
		indMemo:  map[[2]int]memo{},
		maxCoord: make([][]int, g.D),
		jmaxCell: make([]int, g.D),
	}
	for d := range st.maxCoord {
		st.maxCoord[d] = make([]int, g.D)
		for j := range st.maxCoord[d] {
			st.maxCoord[d][j] = -1
		}
		st.jmaxCell[d] = -1
	}
	epps := s.Query.EPPs
	for i, ci := range cells {
		st.spillDim[i] = -1
		tgt, ok := s.PlanAt(ci).SpillTarget(epps, learned)
		if !ok {
			continue
		}
		d, isEPP := s.Query.IsEPP(tgt.JoinID)
		if !isEPP {
			continue
		}
		st.spillDim[i] = d
		for j := 0; j < g.D; j++ {
			if c := g.Coord(ci, j); c > st.maxCoord[d][j] {
				st.maxCoord[d][j] = c
				if d == j {
					st.jmaxCell[d] = ci
				}
			}
		}
	}
	for id, p := range s.Plans() {
		if tgt, ok := p.SpillTarget(epps, learned); ok {
			if d, isEPP := s.Query.IsEPP(tgt.JoinID); isEPP {
				st.pools[d] = append(st.pools[d], id)
			}
		}
	}
	return st
}

// partPenalty computes the minimum-penalty way to make part T (a bitmask
// over ESS dimensions) satisfy predicate set alignment with the given
// leader dimension (paper Sec 5.2.1), returning the execution that enforces
// it. Parts none of whose dimensions are spilled on the contour need no
// execution and cost nothing.
func (st *contourState) partPenalty(mask int, leader int) (partExec, bool) {
	key := [2]int{mask, leader}
	if m, ok := st.memo[key]; ok {
		return m.exec, m.feasible
	}
	exec, feasible := st.computePartPenalty(mask, leader)
	st.memo[key] = memo{exec, feasible}
	return exec, feasible
}

func (st *contourState) computePartPenalty(mask int, leader int) (partExec, bool) {
	s := st.r.Space

	// Members: contour cells whose optimal plan spills on a dim in T.
	// Their extreme leader-coordinate is the max over the part's dims of
	// the precomputed per-spill-dim extremes.
	memberMax := -1
	for d := 0; d < s.Grid.D; d++ {
		if mask&(1<<uint(d)) == 0 {
			continue
		}
		if c := st.maxCoord[d][leader]; c > memberMax {
			memberMax = c
		}
	}
	if memberMax < 0 {
		return partExec{leader: leader, empty: true}, true
	}

	// q^j_max: the max-leader-coordinate cell among cells spilling on the
	// leader itself (Sec 3.2). Native PSA holds when it attains memberMax.
	if ci := st.jmaxCell[leader]; ci >= 0 && st.maxCoord[leader][leader] >= memberMax {
		return partExec{
			leader: leader, planID: s.PlanIDAt(ci), cell: ci,
			budget: s.CostAt(ci), penalty: 1, native: true,
		}, true
	}
	return st.inducedReplacement(leader, memberMax)
}

// inducedReplacement finds the minimum-penalty (plan, location) pair that
// induces PSA with the given leader at the given extreme coordinate:
// S = contour cells whose leader coordinate equals coord, candidates are
// the leader-spilling plans (Sec 5.2.1). Memoized per (leader, coord) —
// the coordinate can only be one of D precomputed extremes.
func (st *contourState) inducedReplacement(leader, coord int) (partExec, bool) {
	key := [2]int{leader, coord}
	if m, ok := st.indMemo[key]; ok {
		return m.exec, m.feasible
	}
	s := st.r.Space
	g := s.Grid
	pool := st.pools[leader]
	best := partExec{leader: leader, penalty: math.Inf(1)}
	for _, ci := range st.cells {
		if g.Coord(ci, leader) != coord {
			continue
		}
		loc := g.Location(ci)
		opt := s.CostAt(ci)
		for _, id := range pool {
			c := s.Model.Eval(s.Plans()[id], loc)
			if pen := c / opt; pen < best.penalty {
				best = partExec{
					leader: leader, planID: id, cell: ci,
					budget: c, penalty: pen,
				}
			}
		}
		// Spill-constrained optimizer search (paper Sec 6.1 feature): ask
		// for the cheapest plan at this location that spills on the
		// leader, beyond what the POSP offers.
		if st.r.Opt != nil {
			k := st.r.BeamK
			if k <= 0 {
				k = 8
			}
			if sp, ok := st.r.Opt.BestSpillingOn(loc, leader, k, st.learned); ok {
				if pen := sp.Cost / opt; pen < best.penalty {
					best = partExec{
						leader: leader, planID: -1, plan: sp.Plan, cell: ci,
						budget: sp.Cost, penalty: pen,
					}
				}
			}
		}
	}
	feasible := !math.IsInf(best.penalty, 1)
	if !feasible {
		best = partExec{}
	}
	st.indMemo[key] = memo{best, feasible}
	return best, feasible
}

// bestPartition enumerates the set partitions of the free dimensions
// (Sec 5.2.2 justifies restricting to partition covers) and returns the
// minimum total-penalty cover with each part's chosen leader execution.
func (st *contourState) bestPartition(free []int) ([]partExec, float64, bool) {
	bestPenalty := math.Inf(1)
	var best []partExec

	parts := make([][]int, 0, len(free))
	var rec func(k int)
	rec = func(k int) {
		if k == len(free) {
			var total float64
			execs := make([]partExec, 0, len(parts))
			for _, part := range parts {
				mask := 0
				for _, d := range part {
					mask |= 1 << uint(d)
				}
				pe := partExec{penalty: math.Inf(1)}
				ok := false
				for _, leader := range part {
					// An empty part (no contour cell spills on any of its
					// dims) has penalty 0 under every leader and needs no
					// execution, so the min below handles it uniformly.
					if cand, feasible := st.partPenalty(mask, leader); feasible && cand.penalty < pe.penalty {
						pe = cand
						ok = true
					}
				}
				if !ok {
					return // infeasible partition
				}
				total += pe.penalty
				execs = append(execs, pe)
			}
			if total < bestPenalty {
				bestPenalty = total
				best = execs
			}
			return
		}
		d := free[k]
		for i := range parts {
			parts[i] = append(parts[i], d)
			rec(k + 1)
			parts[i] = parts[i][:len(parts[i])-1]
		}
		parts = append(parts, []int{d})
		rec(k + 1)
		parts = parts[:len(parts)-1]
	}
	rec(0)
	if best == nil {
		return nil, 0, false
	}
	return best, bestPenalty, true
}

// Run performs AlignedBound discovery (Algorithm 2) against the engine's
// hidden true location.
func (r *Runner) Run(e engine.Executor) Outcome {
	out, _ := r.RunContext(context.Background(), e)
	return out
}

// RunContext is Run with cancellation and error-aware execution, mirroring
// spillbound.Runner.RunContext: the partial outcome is returned with the
// abort error.
func (r *Runner) RunContext(ctx context.Context, e engine.Executor) (Outcome, error) {
	ce := engine.AsContextExecutor(e)
	rec := telemetry.From(ctx)
	s := r.Space
	g := s.Grid
	costs := s.ContourCosts(r.Ratio)
	learned := make(map[int]bool) // by join ID
	sub := s.Full()
	var out Outcome

	start := 0
	if r.Resume != nil {
		// Restore the checkpointed monotone state (contour index plus every
		// learnt selectivity and its half-space prune); the tail of the
		// discovery proceeds as in the uninterrupted run.
		start = r.Resume.Contour
		if start > len(costs)-1 {
			start = len(costs) - 1
		}
		for dim, sel := range r.Resume.Learned {
			learned[s.Query.EPPs[dim]] = true
			sub = sub.Fix(dim, g.CeilIndex(dim, sel))
		}
	}

	for i := start; i < len(costs); {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		free := sub.FreeDims()
		if len(free) == 1 {
			tail, err := bouquet.RunSubspaceContext(ctx, s, s, ce, costs, i, sub, 1)
			for _, stp := range tail.Steps {
				out.Executions = append(out.Executions, Execution{
					Execution: spillbound.Execution{
						Contour: stp.Contour, Dim: -1, PlanID: stp.PlanID,
						Budget: stp.Budget, Spent: stp.Spent, Completed: stp.Completed,
					},
				})
			}
			out.TotalCost += tail.TotalCost
			out.Completed = tail.Completed
			return out, err
		}

		// Contour-iteration boundary: persist the monotone discovery state
		// (and give the crash-point injector its window), mirroring
		// SpillBound's placement after the 1-D hand-off check.
		if err := runstate.Checkpoint(ctx, i); err != nil {
			return out, err
		}

		rec.EnterContour(i + 1)
		cells := sub.ContourCellsCached(costs[i])
		if len(cells) == 0 {
			i++
			continue
		}
		st := r.newContourState(cells, learned)
		execs, penalty, ok := st.bestPartition(free)
		if penalty > out.MaxPartitionPenalty {
			out.MaxPartitionPenalty = penalty
		}
		if !ok {
			// Cannot happen: the all-singletons partition is always
			// feasible (a part {j} is natively aligned by construction).
			// Guard by falling through to the next contour.
			i++
			continue
		}

		progressed := false
		for _, pe := range execs {
			if pe.empty {
				continue
			}
			p := pe.plan
			if p == nil {
				p = s.Plans()[pe.planID]
			}
			res, okSpill, err := ce.ExecuteSpillCtx(ctx, p, pe.leader, pe.budget)
			if err != nil && !engine.IsBudgetAbort(err) {
				return out, err
			}
			if !okSpill {
				continue
			}
			// A watchdog budget abort is an incomplete spill (the clamped
			// charge is recorded below); discovery moves on as after a
			// regular budget expiry.
			out.Executions = append(out.Executions, Execution{
				Execution: spillbound.Execution{
					Contour: i, Dim: pe.leader, PlanID: pe.planID,
					CellLoc: g.Location(pe.cell), Budget: pe.budget,
					Spent: res.Spent, Completed: res.Completed, Learned: res.Learned,
				},
				Penalty: pe.penalty, Native: pe.native,
			})
			out.TotalCost += res.Spent
			runstate.Spend(ctx, res.Spent)
			rec.Record(telemetry.Event{
				Kind: telemetry.SpillExec, Contour: i + 1, Dim: pe.leader, PlanID: pe.planID,
				Budget: pe.budget, Spent: res.Spent, Completed: res.Completed,
				Learned: res.Learned, Penalty: pe.penalty,
			})
			if res.Completed {
				learned[s.Query.EPPs[pe.leader]] = true
				sub = sub.Fix(pe.leader, g.CeilIndex(pe.leader, res.Learned))
				runstate.Learn(ctx, pe.leader, res.Learned)
				rec.Record(telemetry.Event{
					Kind: telemetry.HalfSpacePrune, Contour: i + 1, Dim: pe.leader, Learned: res.Learned,
				})
				progressed = true
				break
			}
			runstate.Bound(ctx, pe.leader, res.Learned)
		}
		if !progressed {
			i++
		}
	}

	// Defensive fallback mirroring SpillBound's.
	ci := sub.MaxCorner()
	p := s.PlanAt(ci)
	res, err := ce.ExecuteCtx(ctx, p, math.Inf(1))
	if err != nil {
		return out, err
	}
	rec.Record(telemetry.Event{
		Kind: telemetry.PlanExec, Contour: len(costs), Dim: -1, PlanID: s.PlanIDAt(ci),
		Budget: res.Spent, Spent: res.Spent, Completed: true,
	})
	out.Executions = append(out.Executions, Execution{
		Execution: spillbound.Execution{
			Contour: len(costs) - 1, Dim: -1, PlanID: s.PlanIDAt(ci),
			Budget: res.Spent, Spent: res.Spent, Completed: true,
		},
	})
	out.TotalCost += res.Spent
	runstate.Spend(ctx, res.Spent)
	out.Completed = true
	return out, nil
}
