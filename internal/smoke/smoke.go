// Package smoke is the shared toolkit of the end-to-end daemon drills
// (cmd/metricssmoke, cmd/overloadsmoke, cmd/tracesmoke, cmd/fleetsmoke,
// cmd/brownoutsmoke, cmd/replay): build and boot rqpd, poll with a deadline,
// drive the /v1 session lifecycle, scrape the Prometheus exposition, and
// check goroutine hygiene after load. Every helper is a plain function
// returning errors — the drills decide what is fatal.
package smoke

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

// Poll drives fn immediately and then every interval until it reports done,
// returns a permanent error, or the deadline passes. The last attempt runs
// at the deadline itself (the sleep never overshoots it), so a condition
// that becomes true late still passes instead of flaking on sleep phase.
func Poll(what string, timeout, interval time.Duration, fn func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	for {
		done, err := fn()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("timeout after %v waiting for %s", timeout, what)
		}
		if remaining < interval {
			interval = remaining
		}
		time.Sleep(interval)
	}
}

// FreeAddr reserves and releases a loopback TCP address for the daemon.
func FreeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// BuildDaemon compiles ./cmd/rqpd into binPath.
func BuildDaemon(binPath string) error {
	if out, err := exec.Command("go", "build", "-o", binPath, "./cmd/rqpd").CombinedOutput(); err != nil {
		return fmt.Errorf("build rqpd: %v\n%s", err, out)
	}
	return nil
}

// Daemon is a started rqpd process handle. Most drills only ever Stop()
// (graceful SIGTERM); the fleet chaos drill also Kill()s an owner mid-run —
// SIGKILL, no shutdown hooks, the honest crash.
type Daemon struct {
	cmd     *exec.Cmd
	stopped bool
}

// Start boots a built rqpd with the given flags, forwarding its output to
// stderr.
func Start(binPath string, args ...string) (*Daemon, error) {
	cmd := exec.Command(binPath, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &Daemon{cmd: cmd}, nil
}

// Stop terminates the daemon gracefully (SIGTERM with a kill fallback after
// 10s). Idempotent.
func (d *Daemon) Stop() {
	if d.stopped {
		return
	}
	d.stopped = true
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

// Kill SIGKILLs the daemon immediately — no graceful shutdown, in-flight
// runs die at whatever checkpoint they last persisted. Idempotent.
func (d *Daemon) Kill() {
	if d.stopped {
		return
	}
	d.stopped = true
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// StartDaemon boots a built rqpd with the given flags, forwarding its output
// to stderr, and returns an idempotent stop function (SIGTERM with a kill
// fallback after 10s — the graceful-shutdown drill by default).
func StartDaemon(binPath string, args ...string) (stop func(), err error) {
	d, err := Start(binPath, args...)
	if err != nil {
		return nil, err
	}
	return d.Stop, nil
}

// Await polls url until it answers 200 (connection errors mean "booting" and
// keep the poll alive).
func Await(url string, timeout time.Duration) error {
	return Poll(url, timeout, 50*time.Millisecond, func() (bool, error) {
		resp, err := http.Get(url)
		if err != nil {
			return false, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK, nil
	})
}

// CreateSession POSTs the create payload and returns the accepted session ID
// (the build is still asynchronous — pair with AwaitReady).
func CreateSession(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("create session: status %d: %s", resp.StatusCode, b)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	if doc.ID == "" {
		return "", fmt.Errorf("create session: no id in response")
	}
	return doc.ID, nil
}

// AwaitReady polls the session resource until its status is ready; a failed
// build is a permanent error.
func AwaitReady(base, id string, timeout time.Duration) error {
	return Poll("session "+id+" ready", timeout, 50*time.Millisecond, func() (bool, error) {
		resp, err := http.Get(base + "/v1/sessions/" + id)
		if err != nil {
			return false, err
		}
		var doc struct {
			Status     string `json:"status"`
			BuildError string `json:"buildError"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		switch doc.Status {
		case "ready":
			return true, nil
		case "failed":
			return false, fmt.Errorf("session build failed: %s", doc.BuildError)
		}
		return false, nil
	})
}

// Get fetches url and requires a 200.
func Get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// Post sends a JSON payload and requires a 200.
func Post(url, body string) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
	return nil
}

// Do issues one request with an optional JSON body and returns the status,
// the response headers, and the response body. The headers matter to drills
// that assert on the correlation contract (Traceparent, X-Request-ID,
// Retry-After); latency is the caller's business so retries never hide in
// the measurement.
func Do(method, url, body string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b, err
}

// Scrape fetches /v1/metrics and returns the parsed Prometheus families.
func Scrape(base string) (map[string]*telemetry.ParsedFamily, error) {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	fams, err := telemetry.ParseProm(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("exposition does not parse: %w", err)
	}
	return fams, nil
}

// ScrapeOpenMetrics fetches /v1/metrics negotiating the OpenMetrics flavor
// (which additionally carries histogram bucket exemplars) and returns the
// parsed families.
func ScrapeOpenMetrics(base string) (map[string]*telemetry.ParsedFamily, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		return nil, fmt.Errorf("openmetrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	fams, err := telemetry.ParseProm(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("openmetrics exposition does not parse: %w", err)
	}
	return fams, nil
}

// AwaitGoroutineSettle polls /v1/debug/stats until the daemon's goroutine
// count drops back to within slack of the pre-drill baseline, returning the
// last observed count either way. Every drill that stresses the daemon ends
// with this check: handlers that survive their request are leaks, and a leak
// under a one-shot drill is a flood under production load.
func AwaitGoroutineSettle(base string, baseline, slack int, timeout time.Duration) (int, error) {
	final := -1
	err := Poll("goroutines back to baseline", timeout, 100*time.Millisecond, func() (bool, error) {
		n, err := Goroutines(base)
		if err != nil {
			return false, err
		}
		final = n
		return n <= baseline+slack, nil
	})
	return final, err
}

// Goroutines reads the live goroutine count from /v1/debug/stats.
func Goroutines(base string) (int, error) {
	resp, err := http.Get(base + "/v1/debug/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var doc struct {
		Runtime struct {
			Goroutines int `json:"goroutines"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, err
	}
	if doc.Runtime.Goroutines <= 0 {
		return 0, fmt.Errorf("debug stats reported %d goroutines", doc.Runtime.Goroutines)
	}
	return doc.Runtime.Goroutines, nil
}
