package ess

import (
	"context"
	"sync"
	"testing"
)

// TestBuildParallelContextMatchesSequential proves the pooled build is
// byte-identical to the sequential one: same costs, same plan numbering,
// same fingerprints, same contour ladder.
func TestBuildParallelContextMatchesSequential(t *testing.T) {
	s := buildSpace(t, 8) // sequential reference
	for _, workers := range []int{1, 2, 3, 8, 64} {
		par, err := BuildParallelContext(context.Background(), s.Model, s.Grid, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Plans()) != len(s.Plans()) {
			t.Fatalf("workers=%d: POSP %d != %d", workers, len(par.Plans()), len(s.Plans()))
		}
		for ci := 0; ci < s.Grid.Size(); ci++ {
			if par.CostAt(ci) != s.CostAt(ci) {
				t.Fatalf("workers=%d cell %d: cost %g != %g", workers, ci, par.CostAt(ci), s.CostAt(ci))
			}
			if par.PlanIDAt(ci) != s.PlanIDAt(ci) {
				t.Fatalf("workers=%d cell %d: plan id %d != %d", workers, ci, par.PlanIDAt(ci), s.PlanIDAt(ci))
			}
			if par.PlanAt(ci).Fingerprint() != s.PlanAt(ci).Fingerprint() {
				t.Fatalf("workers=%d cell %d: plan mismatch", workers, ci)
			}
		}
		want, got := s.ContourCosts(CostDoublingRatio), par.ContourCosts(CostDoublingRatio)
		if len(want) != len(got) {
			t.Fatalf("workers=%d: contour count %d != %d", workers, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d: contour %d cost %g != %g", workers, i, got[i], want[i])
			}
		}
	}
}

// TestBuildParallelContextCancel proves an already-canceled context aborts
// the build with the context's error instead of returning a partial space.
func TestBuildParallelContextCancel(t *testing.T) {
	s := buildSpace(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp, err := BuildParallelContext(ctx, s.Model, s.Grid, 4, nil)
	if err == nil || sp != nil {
		t.Fatalf("canceled build returned (%v, %v), want nil space and ctx error", sp, err)
	}
	if ctx.Err() == nil || err.Error() != ctx.Err().Error() {
		t.Errorf("err = %v, want %v", err, ctx.Err())
	}
}

// TestBuildParallelContextProgress proves the progress callback observes
// every cell exactly once and the final count equals the grid size.
func TestBuildParallelContextProgress(t *testing.T) {
	s := buildSpace(t, 6)
	var mu sync.Mutex
	calls := 0
	maxDone := 0
	_, err := BuildParallelContext(context.Background(), s.Model, s.Grid, 4, func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > maxDone {
			maxDone = done
		}
		if total != s.Grid.Size() {
			t.Errorf("total = %d, want %d", total, s.Grid.Size())
		}
		if done < 1 || done > total {
			t.Errorf("done = %d outside [1,%d]", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != s.Grid.Size() {
		t.Errorf("progress called %d times, want %d", calls, s.Grid.Size())
	}
	if maxDone != s.Grid.Size() {
		t.Errorf("max done %d, want %d", maxDone, s.Grid.Size())
	}
}
