package ess

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/telemetry"
)

// Space is the explored ESS: the optimal cost surface (OCS) and the
// parametric optimal set of plans (POSP) over a grid, produced by repeated
// optimizer invocations with injected selectivities (paper Sec 2.2).
type Space struct {
	// Grid is the discretization.
	Grid Grid
	// Query is the underlying query.
	Query *query.Query
	// Model is the shared cost model.
	Model *cost.Model

	optCost []float64
	planIdx []int32
	plans   []*plan.Plan

	mu           sync.Mutex
	contourCache map[string][]int
}

// Build enumerates the whole grid through the optimizer, recording the
// optimal plan and cost of every cell. This is the preprocessing step whose
// expense the paper notes (Sec 7); for the grid resolutions used here it is
// laptop-scale.
func Build(opt *optimizer.Optimizer, g Grid) *Space {
	s := &Space{
		Grid:    g,
		Query:   opt.Model().Query,
		Model:   opt.Model(),
		optCost: make([]float64, g.Size()),
		planIdx: make([]int32, g.Size()),
	}
	byFP := make(map[string]int32)
	for ci := 0; ci < g.Size(); ci++ {
		p, c := opt.Optimize(g.Location(ci))
		fp := p.Fingerprint()
		id, ok := byFP[fp]
		if !ok {
			id = int32(len(s.plans))
			s.plans = append(s.plans, p)
			byFP[fp] = id
		}
		s.optCost[ci] = c
		s.planIdx[ci] = id
	}
	return s
}

// BuildParallel is Build with the grid partitioned across workers, each
// running its own optimizer instance over the shared cost model — the
// paper's Sec 7 observation that "the contour constructions can be carried
// out in parallel since they do not have any dependence on each other".
// workers <= 0 uses GOMAXPROCS. The result is bit-identical to Build's.
func BuildParallel(m *cost.Model, g Grid, workers int) (*Space, error) {
	return BuildParallelContext(context.Background(), m, g, workers, nil)
}

// BuildProgress observes an in-flight build: done of total grid cells have
// been optimized. It is invoked concurrently from worker goroutines, so
// implementations must be safe for concurrent use (an atomic store or a
// mutex suffices). done is monotone nondecreasing per observer call site
// only in aggregate; treat each call as "at least done cells finished".
type BuildProgress func(done, total int)

// buildChunkCells is the fixed work-unit size of a parallel build: workers
// pull chunks of this many contiguous cells from a shared queue. The chunk
// geometry depends only on the grid — never on the worker count — so the
// build_chunk event set (and hence the session-build span tree) is
// byte-identical across serial and parallel builds; parallelism only changes
// which worker claims which chunk, and span derivation sorts chunks by
// CellLo, so scheduling never shows in the tree.
const buildChunkCells = 32

// BuildParallelContext is BuildParallel with cancellation and progress
// reporting: the context is polled between optimizer calls (an expired
// deadline or cancel abandons the build and returns the context's error),
// and progress, when non-nil, observes the running cell count. workers <= 0
// uses GOMAXPROCS; the grid is split into fixed-size chunks pulled by the
// workers, one optimizer instance per worker. Plan numbering follows first
// appearance in flat cell order, so the resulting Space is identical to the
// sequential Build's regardless of worker count.
func BuildParallelContext(ctx context.Context, m *cost.Model, g Grid, workers int, progress BuildProgress) (*Space, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.Size() {
		workers = g.Size()
	}
	s := &Space{
		Grid:    g,
		Query:   m.Query,
		Model:   m,
		optCost: make([]float64, g.Size()),
		planIdx: make([]int32, g.Size()),
	}
	type cellPlan struct {
		fp   string
		plan *plan.Plan
	}
	fps := make([]cellPlan, g.Size())

	var wg sync.WaitGroup
	var done atomic.Int64
	var nextChunk atomic.Int64
	total := g.Size()
	numChunks := (total + buildChunkCells - 1) / buildChunkCells
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o, err := optimizer.New(m)
			if err != nil {
				errs[w] = err
				return
			}
			for {
				k := int(nextChunk.Add(1)) - 1
				if k >= numChunks || ctx.Err() != nil {
					return
				}
				lo, hi := k*buildChunkCells, (k+1)*buildChunkCells
				if hi > total {
					hi = total
				}
				for ci := lo; ci < hi; ci++ {
					if ctx.Err() != nil {
						return
					}
					p, c := o.Optimize(g.Location(ci))
					s.optCost[ci] = c
					fps[ci] = cellPlan{fp: p.Fingerprint(), plan: p}
					n := done.Add(1)
					if progress != nil {
						progress(int(n), total)
					}
				}
				// One build_chunk event per completed work unit: the
				// per-chunk spans of a session-build trace. The recorder is
				// concurrency-safe.
				telemetry.From(ctx).Record(telemetry.Event{
					Kind: telemetry.BuildChunk, Dim: -1, CellLo: lo, CellHi: hi,
				})
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Deterministic plan numbering: first appearance in cell order, as in
	// the sequential Build.
	byFP := make(map[string]int32)
	for ci := 0; ci < g.Size(); ci++ {
		id, ok := byFP[fps[ci].fp]
		if !ok {
			id = int32(len(s.plans))
			s.plans = append(s.plans, fps[ci].plan)
			byFP[fps[ci].fp] = id
		}
		s.planIdx[ci] = id
	}
	return s, nil
}

// FromSurface constructs a Space from an explicit optimal-cost surface and
// plan assignment, bypassing the optimizer. It exists for adversarial and
// synthetic analyses (e.g. the Theorem 4.6 lower-bound construction) and
// for tests that need full control of the cost geometry. costAt must be
// monotone nondecreasing along every axis (PCM); planAt must index into
// plans. The model m is still used to cost plan executions.
func FromSurface(m *cost.Model, g Grid, plans []*plan.Plan, costAt func(ci int) float64, planAt func(ci int) int) *Space {
	s := &Space{
		Grid:    g,
		Query:   m.Query,
		Model:   m,
		optCost: make([]float64, g.Size()),
		planIdx: make([]int32, g.Size()),
		plans:   plans,
	}
	for ci := 0; ci < g.Size(); ci++ {
		s.optCost[ci] = costAt(ci)
		s.planIdx[ci] = int32(planAt(ci))
	}
	return s
}

// CostAt returns the optimal cost Cost(Pq,q) of cell ci.
func (s *Space) CostAt(ci int) float64 { return s.optCost[ci] }

// PlanIDAt returns the POSP index of cell ci's optimal plan.
func (s *Space) PlanIDAt(ci int) int { return int(s.planIdx[ci]) }

// PlanAt returns cell ci's optimal plan.
func (s *Space) PlanAt(ci int) *plan.Plan { return s.plans[s.planIdx[ci]] }

// Plans returns the POSP — every plan optimal somewhere on the grid.
func (s *Space) Plans() []*plan.Plan { return s.plans }

// MinCost returns the optimal cost at the origin (C_min).
func (s *Space) MinCost() float64 { return s.optCost[s.Grid.Origin()] }

// MaxCost returns the optimal cost at the terminus (C_max).
func (s *Space) MaxCost() float64 { return s.optCost[s.Grid.Terminus()] }

// ContourCosts returns the iso-cost contour budgets of paper Sec 2.5:
// CC_1 = C_min, doubling thereafter, with the final value capped at C_max.
// The geometric ratio is configurable through r (the paper uses 2; Sec 4.2
// notes slightly better constants near 1.8 for SpillBound).
func (s *Space) ContourCosts(r float64) []float64 {
	if r <= 1 {
		panic("ess: contour cost ratio must exceed 1")
	}
	cmin, cmax := s.MinCost(), s.MaxCost()
	var out []float64
	for c := cmin; c < cmax; c *= r {
		out = append(out, c)
	}
	return append(out, cmax)
}

// CostDoublingRatio is the paper's default contour cost ratio.
const CostDoublingRatio = 2.0

// Subspace is the effective search space after zero or more dimensions have
// been fully learnt and snapped to grid coordinates (paper Sec 4.2: "the
// effective search space is the subset of locations ... whose selectivity
// along the learnt dimensions matches the learnt selectivities").
type Subspace struct {
	s *Space
	// fixed[d] is the grid index dimension d is pinned to, or -1 if free.
	fixed []int
}

// Full returns the unrestricted subspace.
func (s *Space) Full() Subspace {
	f := make([]int, s.Grid.D)
	for d := range f {
		f[d] = -1
	}
	return Subspace{s: s, fixed: f}
}

// Space returns the underlying space.
func (u Subspace) Space() *Space { return u.s }

// Fix returns a copy of the subspace with dimension d pinned to grid index
// gi.
func (u Subspace) Fix(d, gi int) Subspace {
	nf := make([]int, len(u.fixed))
	copy(nf, u.fixed)
	nf[d] = gi
	return Subspace{s: u.s, fixed: nf}
}

// Fixed reports whether dimension d is pinned, and to which grid index.
func (u Subspace) Fixed(d int) (int, bool) {
	gi := u.fixed[d]
	return gi, gi >= 0
}

// FreeDims returns the unpinned dimensions in ascending order.
func (u Subspace) FreeDims() []int {
	var out []int
	for d, gi := range u.fixed {
		if gi < 0 {
			out = append(out, d)
		}
	}
	return out
}

// Each calls f for every flat cell index inside the subspace, in ascending
// flat order.
func (u Subspace) Each(f func(ci int)) {
	g := u.s.Grid
	free := u.FreeDims()
	idx := make([]int, g.D)
	for d, gi := range u.fixed {
		if gi >= 0 {
			idx[d] = gi
		}
	}
	var rec func(k int)
	rec = func(k int) {
		if k == len(free) {
			f(g.Flatten(idx))
			return
		}
		d := free[k]
		for i := 0; i < g.Res(d); i++ {
			idx[d] = i
			rec(k + 1)
		}
	}
	rec(0)
}

// MinCorner returns the flat index of the subspace's minimum cell.
func (u Subspace) MinCorner() int {
	g := u.s.Grid
	idx := make([]int, g.D)
	for d, gi := range u.fixed {
		if gi >= 0 {
			idx[d] = gi
		}
	}
	return g.Flatten(idx)
}

// MaxCorner returns the flat index of the subspace's maximum cell (its
// terminus).
func (u Subspace) MaxCorner() int {
	g := u.s.Grid
	idx := make([]int, g.D)
	for d, gi := range u.fixed {
		if gi >= 0 {
			idx[d] = gi
		} else {
			idx[d] = g.Res(d) - 1
		}
	}
	return g.Flatten(idx)
}

// ContourCells returns the cells of the iso-cost contour with budget cc
// inside the subspace: the maximal cells (under the dominance order over
// free dimensions) of the hypograph {q : Cost(Pq,q) <= cc}. Plan cost
// monotonicity makes the single-step successor test sufficient. The result
// is empty when the hypograph does not intersect the subspace.
func (u Subspace) ContourCells(cc float64) []int {
	g := u.s.Grid
	free := u.FreeDims()
	var out []int
	u.Each(func(ci int) {
		if u.s.optCost[ci] > cc {
			return
		}
		for _, d := range free {
			if next, ok := g.Step(ci, d); ok && u.s.optCost[next] <= cc {
				return // a dominating cell is still inside: not maximal
			}
		}
		out = append(out, ci)
	})
	return out
}

// Key returns a canonical string identifying the subspace's fixed
// dimensions, used as a cache key.
func (u Subspace) Key() string {
	var b strings.Builder
	for d, gi := range u.fixed {
		if gi >= 0 {
			fmt.Fprintf(&b, "%d=%d;", d, gi)
		}
	}
	return b.String()
}

// ContourCellsCached is ContourCells with memoization on the underlying
// Space, safe for concurrent use. Discovery sweeps re-explore the same
// contours for every candidate true location; the frontier depends only on
// the subspace and the budget, so caching removes the dominant cost.
func (u Subspace) ContourCellsCached(cc float64) []int {
	key := fmt.Sprintf("%s|%x", u.Key(), math.Float64bits(cc))
	u.s.mu.Lock()
	if u.s.contourCache == nil {
		u.s.contourCache = make(map[string][]int)
	}
	cells, ok := u.s.contourCache[key]
	u.s.mu.Unlock()
	if ok {
		return cells
	}
	cells = u.ContourCells(cc)
	u.s.mu.Lock()
	u.s.contourCache[key] = cells
	u.s.mu.Unlock()
	return cells
}

// CoveringContour returns the index (into costs) of the first contour whose
// hypograph contains the subspace cell ci — the contour an execution at ci
// completes within.
func CoveringContour(costs []float64, c float64) int {
	for i, cc := range costs {
		if c <= cc*(1+1e-12) {
			return i
		}
	}
	return len(costs) - 1
}

// NearlyEqual reports approximate float equality with relative tolerance.
func NearlyEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}
