package ess

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/cost"
	"repro/internal/plan"
)

// Persistence for built spaces. The paper notes (Sec 7) that contour
// construction is computationally intensive but, for canned queries, can be
// enumerated offline; Save/Load make that offline investment reusable
// across processes. The query and cost model are not serialized — the
// caller re-binds them at load time and the dimensionality is validated.

// spaceDTO is the on-disk representation.
type spaceDTO struct {
	Version    int
	GridPoints [][]float64
	OptCost    []float64
	PlanIdx    []int32
	Plans      []*nodeDTO
}

// nodeDTO serializes one plan node.
type nodeDTO struct {
	Kind        int8
	Rel         int32
	JoinIDs     []int
	Left, Right *nodeDTO
}

const persistVersion = 1

func toDTO(n *plan.Node) *nodeDTO {
	if n == nil {
		return nil
	}
	return &nodeDTO{
		Kind:    int8(n.Kind),
		Rel:     int32(n.Rel),
		JoinIDs: n.JoinIDs,
		Left:    toDTO(n.Left),
		Right:   toDTO(n.Right),
	}
}

func fromDTO(d *nodeDTO) *plan.Node {
	if d == nil {
		return nil
	}
	return &plan.Node{
		Kind:    plan.OpKind(d.Kind),
		Rel:     int(d.Rel),
		JoinIDs: d.JoinIDs,
		Left:    fromDTO(d.Left),
		Right:   fromDTO(d.Right),
	}
}

// Save writes the space's grid, cost surface and POSP to w in a compact
// binary encoding.
func (s *Space) Save(w io.Writer) error {
	dto := spaceDTO{
		Version:    persistVersion,
		GridPoints: s.Grid.Points,
		OptCost:    s.optCost,
		PlanIdx:    s.planIdx,
		Plans:      make([]*nodeDTO, len(s.plans)),
	}
	for i, p := range s.plans {
		dto.Plans[i] = toDTO(p.Root)
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// Load reads a space previously written by Save and re-binds it to the
// given cost model, whose query must have the same ESS dimensionality and
// at least as many relations and join predicates as the saved plans
// reference.
func Load(r io.Reader, m *cost.Model) (*Space, error) {
	var dto spaceDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("ess: load: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("ess: load: unsupported version %d", dto.Version)
	}
	if len(dto.GridPoints) != m.Query.D() {
		return nil, fmt.Errorf("ess: load: saved space has %d dims, query has %d epps",
			len(dto.GridPoints), m.Query.D())
	}
	g := newGridFromPoints(dto.GridPoints)
	if len(dto.OptCost) != g.Size() || len(dto.PlanIdx) != g.Size() {
		return nil, fmt.Errorf("ess: load: surface size mismatch")
	}
	s := &Space{
		Grid:    g,
		Query:   m.Query,
		Model:   m,
		optCost: dto.OptCost,
		planIdx: dto.PlanIdx,
		plans:   make([]*plan.Plan, len(dto.Plans)),
	}
	nRel, nJoin := len(m.Query.Relations), len(m.Query.Joins)
	for i, d := range dto.Plans {
		root := fromDTO(d)
		if err := validateNode(root, nRel, nJoin); err != nil {
			return nil, fmt.Errorf("ess: load: plan %d: %w", i, err)
		}
		s.plans[i] = plan.New(root)
	}
	for _, id := range s.planIdx {
		if int(id) < 0 || int(id) >= len(s.plans) {
			return nil, fmt.Errorf("ess: load: plan index %d out of range", id)
		}
	}
	return s, nil
}

func validateNode(n *plan.Node, nRel, nJoin int) error {
	if n == nil {
		return fmt.Errorf("nil node")
	}
	switch n.Kind {
	case plan.SeqScan:
		if n.Rel < 0 || n.Rel >= nRel {
			return fmt.Errorf("scan relation %d out of range", n.Rel)
		}
		return nil
	case plan.Sort, plan.Aggregate:
		return validateNode(n.Left, nRel, nJoin)
	case plan.HashJoin, plan.MergeJoin, plan.NestLoop, plan.IndexNestLoop:
		for _, id := range n.JoinIDs {
			if id < 0 || id >= nJoin {
				return fmt.Errorf("join predicate %d out of range", id)
			}
		}
		if err := validateNode(n.Left, nRel, nJoin); err != nil {
			return err
		}
		return validateNode(n.Right, nRel, nJoin)
	}
	return fmt.Errorf("unknown operator kind %d", n.Kind)
}
