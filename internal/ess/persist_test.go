package ess

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := buildSpace(t, 8)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, s.Model)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Grid.Size() != s.Grid.Size() || loaded.Grid.D != s.Grid.D {
		t.Fatal("grid mismatch")
	}
	if len(loaded.Plans()) != len(s.Plans()) {
		t.Fatalf("plans = %d, want %d", len(loaded.Plans()), len(s.Plans()))
	}
	for ci := 0; ci < s.Grid.Size(); ci++ {
		if loaded.CostAt(ci) != s.CostAt(ci) {
			t.Fatalf("cell %d cost %g != %g", ci, loaded.CostAt(ci), s.CostAt(ci))
		}
		if loaded.PlanAt(ci).Fingerprint() != s.PlanAt(ci).Fingerprint() {
			t.Fatalf("cell %d plan mismatch", ci)
		}
	}
	// Loaded plans must re-evaluate to the recorded surface.
	for ci := 0; ci < s.Grid.Size(); ci += 5 {
		ev := loaded.Model.Eval(loaded.PlanAt(ci), loaded.Grid.Location(ci))
		if !NearlyEqual(ev, loaded.CostAt(ci), 1e-9) {
			t.Fatalf("cell %d: eval %g vs recorded %g", ci, ev, loaded.CostAt(ci))
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	s := buildSpace(t, 6)
	if _, err := Load(strings.NewReader("junk"), s.Model); err == nil {
		t.Error("garbage input should fail")
	}

	// Dimensionality mismatch: save a 2D space, load against a model whose
	// query has 1 epp.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q1 := *s.Query
	q1.EPPs = s.Query.EPPs[:1]
	if err := q1.Validate(); err != nil {
		t.Fatal(err)
	}
	m1 := cost.MustNewModel(&q1, cost.PostgresLike())
	if _, err := Load(&buf, m1); err == nil || !strings.Contains(err.Error(), "dims") {
		t.Errorf("dimension mismatch should fail, got %v", err)
	}
}

func TestLoadRejectsTruncatedInput(t *testing.T) {
	s := buildSpace(t, 6)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a torn file; every prefix must error out (not
	// panic, not return a partial space).
	full := buf.Bytes()
	for _, n := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if sp, err := Load(bytes.NewReader(full[:n]), s.Model); err == nil || sp != nil {
			t.Errorf("truncated input (%d/%d bytes) should fail, got space=%v err=%v", n, len(full), sp != nil, err)
		}
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	s := buildSpace(t, 6)
	var buf bytes.Buffer
	dto := spaceDTO{Version: persistVersion + 1, GridPoints: s.Grid.Points}
	if err := gob.NewEncoder(&buf).Encode(&dto); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, s.Model); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future persist version should fail, got %v", err)
	}
}

func TestLoadValidatesPlanReferences(t *testing.T) {
	s := buildSpace(t, 4)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a rogue relation index by round-tripping through the
	// DTO layer directly: simplest is to corrupt via a fresh save of a
	// synthetic space with a bad plan.
	bad := plan.New(&plan.Node{Kind: plan.SeqScan, Rel: 99})
	sy := FromSurface(s.Model, s.Grid, []*plan.Plan{bad},
		func(ci int) float64 { return float64(ci + 1) },
		func(ci int) int { return 0 })
	var buf2 bytes.Buffer
	if err := sy.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2, s.Model); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("rogue relation index should fail, got %v", err)
	}
}

func TestBuildParallelMatchesSequential(t *testing.T) {
	s := buildSpace(t, 8) // sequential reference
	par, err := BuildParallel(s.Model, s.Grid, 4)
	if err != nil {
		t.Fatalf("BuildParallel: %v", err)
	}
	if len(par.Plans()) != len(s.Plans()) {
		t.Fatalf("parallel POSP %d != sequential %d", len(par.Plans()), len(s.Plans()))
	}
	for ci := 0; ci < s.Grid.Size(); ci++ {
		if par.CostAt(ci) != s.CostAt(ci) {
			t.Fatalf("cell %d: %g != %g", ci, par.CostAt(ci), s.CostAt(ci))
		}
		if par.PlanAt(ci).Fingerprint() != s.PlanAt(ci).Fingerprint() {
			t.Fatalf("cell %d: plan mismatch", ci)
		}
		if par.PlanIDAt(ci) != s.PlanIDAt(ci) {
			t.Fatalf("cell %d: plan numbering differs (%d vs %d)", ci, par.PlanIDAt(ci), s.PlanIDAt(ci))
		}
	}
}

func TestBuildParallelSingleWorker(t *testing.T) {
	s := buildSpace(t, 4)
	par, err := BuildParallel(s.Model, s.Grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if par.MaxCost() != s.MaxCost() {
		t.Error("single-worker parallel build diverges")
	}
}

func TestFromSurface(t *testing.T) {
	s := buildSpace(t, 4)
	p0 := plan.New(&plan.Node{Kind: plan.SeqScan, Rel: 0})
	sy := FromSurface(s.Model, s.Grid, []*plan.Plan{p0},
		func(ci int) float64 { return float64(ci + 1) },
		func(ci int) int { return 0 })
	if sy.CostAt(0) != 1 || sy.CostAt(5) != 6 {
		t.Errorf("surface costs not honoured: %g, %g", sy.CostAt(0), sy.CostAt(5))
	}
	if sy.PlanAt(3) != p0 {
		t.Error("plan assignment not honoured")
	}
	// Flat-index order is monotone along each axis here, so contour
	// machinery applies.
	costs := sy.ContourCosts(2)
	if costs[0] != 1 || costs[len(costs)-1] != float64(sy.Grid.Size()) {
		t.Errorf("contour costs = %v", costs)
	}
}

func optimizerFor(t *testing.T, s *Space) *optimizer.Optimizer {
	t.Helper()
	return optimizer.MustNew(s.Model)
}
