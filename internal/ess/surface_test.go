package ess

import (
	"math/rand"
	"testing"

	"repro/internal/plan"
)

// randomMonotoneSpace builds a Space over a random strictly-monotone cost
// surface (independent positive per-dimension increments), exercising the
// contour machinery on geometries far from what the optimizer produces.
func randomMonotoneSpace(t *testing.T, d, res int, rng *rand.Rand) *Space {
	t.Helper()
	base := buildSpace(t, 4) // borrow a valid model for the Space shell
	g := NewGrid(d, res, 1e-4)
	cum := make([][]float64, d)
	for dim := 0; dim < d; dim++ {
		cum[dim] = make([]float64, res)
		acc := 0.0
		for i := 0; i < res; i++ {
			acc += 1 + rng.Float64()*100
			cum[dim][i] = acc
		}
	}
	dummy := plan.New(&plan.Node{Kind: plan.SeqScan, Rel: 0})
	idx := make([]int, d)
	return FromSurface(base.Model, g, []*plan.Plan{dummy},
		func(ci int) float64 {
			g.Unflatten(ci, idx)
			total := 1.0
			for dim, i := range idx {
				total += cum[dim][i]
			}
			return total
		},
		func(ci int) int { return 0 })
}

// TestContourPropertiesOnRandomSurfaces is the property-based version of
// TestContourFrontier: on arbitrary monotone surfaces, every contour must
// be an antichain inside the hypograph that dominates the whole hypograph.
func TestContourPropertiesOnRandomSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(3) // 2..4
		res := 3 + rng.Intn(4)
		s := randomMonotoneSpace(t, d, res, rng)
		g := s.Grid
		full := s.Full()
		// A few random budgets between C_min and C_max.
		for k := 0; k < 4; k++ {
			cc := s.MinCost() + rng.Float64()*(s.MaxCost()-s.MinCost())
			cells := full.ContourCells(cc)
			if len(cells) == 0 {
				t.Fatalf("trial %d: empty contour at %g within [%g,%g]", trial, cc, s.MinCost(), s.MaxCost())
			}
			for _, ci := range cells {
				if s.CostAt(ci) > cc {
					t.Fatalf("trial %d: contour cell above budget", trial)
				}
			}
			for _, a := range cells {
				for _, b := range cells {
					if a != b && g.Location(a).Dominates(g.Location(b)) {
						t.Fatalf("trial %d: contour not an antichain", trial)
					}
				}
			}
			for ci := 0; ci < g.Size(); ci++ {
				if s.CostAt(ci) > cc {
					continue
				}
				covered := false
				loc := g.Location(ci)
				for _, fc := range cells {
					if g.Location(fc).Dominates(loc) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("trial %d: hypograph cell uncovered", trial)
				}
			}
		}
	}
}

// TestSubspaceContourOnRandomSurfaces checks the restricted-frontier
// properties inside random fixed-coordinate subspaces.
func TestSubspaceContourOnRandomSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		d := 3
		res := 4 + rng.Intn(3)
		s := randomMonotoneSpace(t, d, res, rng)
		g := s.Grid
		sub := s.Full().Fix(rng.Intn(d), rng.Intn(res))
		cc := s.CostAt(sub.MaxCorner()) // guarantees a non-empty hypograph
		cells := sub.ContourCells(cc)
		if len(cells) == 0 {
			t.Fatalf("trial %d: empty subspace contour", trial)
		}
		fixedDim := -1
		for dd := 0; dd < d; dd++ {
			if _, ok := sub.Fixed(dd); ok {
				fixedDim = dd
			}
		}
		for _, ci := range cells {
			if gi, _ := sub.Fixed(fixedDim); g.Coord(ci, fixedDim) != gi {
				t.Fatalf("trial %d: contour cell escapes the fixed dimension", trial)
			}
			if s.CostAt(ci) > cc {
				t.Fatalf("trial %d: contour cell above budget", trial)
			}
		}
		// The subspace terminus is always on the final contour.
		found := false
		for _, ci := range cells {
			if ci == sub.MaxCorner() {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: subspace terminus missing from its own-cost contour", trial)
		}
	}
}

// TestContourCostsGeometricOnRandomSurfaces verifies the budget ladder's
// invariants for arbitrary ratios.
func TestContourCostsGeometricOnRandomSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		s := randomMonotoneSpace(t, 2, 5, rng)
		ratio := 1.2 + rng.Float64()*2
		costs := s.ContourCosts(ratio)
		if costs[0] != s.MinCost() || costs[len(costs)-1] != s.MaxCost() {
			t.Fatalf("trial %d: ladder endpoints wrong", trial)
		}
		for i := 1; i < len(costs)-1; i++ {
			if r := costs[i] / costs[i-1]; r < ratio-1e-9 || r > ratio+1e-9 {
				t.Fatalf("trial %d: interior step ratio %g != %g", trial, r, ratio)
			}
		}
	}
}
