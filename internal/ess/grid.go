// Package ess implements the error-prone selectivity space machinery of the
// paper (Sec 2): the discretized D-dimensional selectivity grid, the
// parametric optimal set of plans (POSP) and optimal cost surface obtained
// by exhaustive optimizer calls over the grid, the doubling iso-cost
// contours realized as dominance frontiers of cost hypographs, and the
// sub-ESS restriction applied as selectivities become fully learnt.
package ess

import (
	"fmt"
	"math"

	"repro/internal/cost"
)

// Grid is the discretization of [lo,1]^D: per dimension, Res log-spaced
// selectivity points ending at 1. Paper Sec 2.1: "In practice, an
// appropriately discretized grid version of [0,1]^D is considered as the
// ESS."
type Grid struct {
	// D is the number of dimensions (epps).
	D int
	// Points[d] lists dimension d's selectivity values in ascending order;
	// the last value is always 1.
	Points [][]float64

	strides []int
	size    int
}

// NewGrid builds a grid with res points per dimension, log-spaced from lo
// up to 1. It panics for d < 1, res < 2 or lo outside (0,1).
func NewGrid(d, res int, lo float64) Grid {
	if d < 1 || res < 2 || lo <= 0 || lo >= 1 {
		panic(fmt.Sprintf("ess: bad grid spec d=%d res=%d lo=%g", d, res, lo))
	}
	pts := make([]float64, res)
	for i := 0; i < res; i++ {
		// lo^(1 - i/(res-1)): lo at i=0, 1 at i=res-1.
		pts[i] = math.Pow(lo, 1-float64(i)/float64(res-1))
	}
	pts[res-1] = 1
	points := make([][]float64, d)
	for j := range points {
		points[j] = pts
	}
	return newGridFromPoints(points)
}

func newGridFromPoints(points [][]float64) Grid {
	g := Grid{D: len(points), Points: points}
	g.strides = make([]int, g.D)
	g.size = 1
	for d := g.D - 1; d >= 0; d-- {
		g.strides[d] = g.size
		g.size *= len(points[d])
	}
	return g
}

// Size returns the number of grid cells.
func (g Grid) Size() int { return g.size }

// Res returns the number of points along dimension d.
func (g Grid) Res(d int) int { return len(g.Points[d]) }

// Flatten converts a per-dimension index vector to a flat cell index.
func (g Grid) Flatten(idx []int) int {
	ci := 0
	for d, i := range idx {
		ci += i * g.strides[d]
	}
	return ci
}

// Unflatten converts a flat cell index into buf (which must have length D)
// and returns buf.
func (g Grid) Unflatten(ci int, buf []int) []int {
	for d := 0; d < g.D; d++ {
		buf[d] = ci / g.strides[d]
		ci %= g.strides[d]
	}
	return buf
}

// Coord returns the grid index along dimension d of the flat cell ci.
func (g Grid) Coord(ci, d int) int { return ci / g.strides[d] % len(g.Points[d]) }

// Location returns the selectivity location of the flat cell ci.
func (g Grid) Location(ci int) cost.Location {
	loc := make(cost.Location, g.D)
	for d := 0; d < g.D; d++ {
		loc[d] = g.Points[d][g.Coord(ci, d)]
	}
	return loc
}

// Step returns the flat index of the cell one grid step up along dimension
// d, and ok=false if ci is already at the maximum.
func (g Grid) Step(ci, d int) (int, bool) {
	if g.Coord(ci, d) == len(g.Points[d])-1 {
		return ci, false
	}
	return ci + g.strides[d], true
}

// CeilIndex returns the smallest grid index along dimension d whose
// selectivity is >= sel (clamped to the last index).
func (g Grid) CeilIndex(d int, sel float64) int {
	pts := g.Points[d]
	for i, v := range pts {
		if v >= sel-1e-15 {
			return i
		}
	}
	return len(pts) - 1
}

// Origin returns the flat index of the all-minimum cell.
func (g Grid) Origin() int { return 0 }

// Terminus returns the flat index of the all-maximum cell (paper Sec 2.1's
// terminus, selectivity 1 in every dimension).
func (g Grid) Terminus() int { return g.size - 1 }
