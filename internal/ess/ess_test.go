package ess

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/sqlmini"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "p_retailprice", Distinct: 1000, Min: 0, Max: 2000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	return c
}

func buildSpace(t *testing.T, res int) *Space {
	t.Helper()
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND p.p_retailprice < 1000`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return Build(optimizer.MustNew(m), NewGrid(2, res, 1e-6))
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(3, 5, 1e-4)
	if g.Size() != 125 {
		t.Fatalf("Size = %d, want 125", g.Size())
	}
	if g.Res(0) != 5 || g.D != 3 {
		t.Fatalf("Res/D wrong")
	}
	pts := g.Points[0]
	if math.Abs(pts[0]-1e-4) > 1e-12 || pts[4] != 1 {
		t.Errorf("endpoints = %g, %g", pts[0], pts[4])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Errorf("points not ascending at %d: %v", i, pts)
		}
	}
	// Log spacing: ratio between consecutive points constant.
	r1, r2 := pts[1]/pts[0], pts[2]/pts[1]
	if math.Abs(r1-r2)/r1 > 1e-9 {
		t.Errorf("not log-spaced: ratios %g vs %g", r1, r2)
	}
}

func TestGridFlattenRoundTrip(t *testing.T) {
	g := NewGrid(3, 4, 1e-3)
	buf := make([]int, 3)
	f := func(a, b, c uint8) bool {
		idx := []int{int(a) % 4, int(b) % 4, int(c) % 4}
		ci := g.Flatten(idx)
		got := g.Unflatten(ci, buf)
		for d := range idx {
			if got[d] != idx[d] || g.Coord(ci, d) != idx[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridStepAndCorners(t *testing.T) {
	g := NewGrid(2, 3, 1e-2)
	if g.Origin() != 0 || g.Terminus() != g.Size()-1 {
		t.Errorf("origin/terminus = %d/%d", g.Origin(), g.Terminus())
	}
	ci := g.Flatten([]int{2, 1})
	next, ok := g.Step(ci, 1)
	if !ok || g.Coord(next, 1) != 2 {
		t.Errorf("Step dim1: %d, %v", next, ok)
	}
	if _, ok := g.Step(next, 1); ok {
		t.Error("Step at max should report !ok")
	}
	if _, ok := g.Step(ci, 0); ok {
		t.Error("Step dim0 at max should report !ok")
	}
}

func TestGridCeilIndex(t *testing.T) {
	g := NewGrid(1, 4, 1e-3) // points: 1e-3, 1e-2, 1e-1, 1
	cases := []struct {
		sel  float64
		want int
	}{
		{1e-4, 0}, {1e-3, 0}, {5e-3, 1}, {1e-2, 1}, {0.5, 3}, {1, 3}, {2, 3},
	}
	for _, tc := range cases {
		if got := g.CeilIndex(0, tc.sel); got != tc.want {
			t.Errorf("CeilIndex(%g) = %d, want %d", tc.sel, got, tc.want)
		}
	}
}

func TestGridPanicsOnBadSpec(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(0, 4, 0.1) },
		func() { NewGrid(2, 1, 0.1) },
		func() { NewGrid(2, 4, 0) },
		func() { NewGrid(2, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSpaceBuild(t *testing.T) {
	s := buildSpace(t, 8)
	if got := len(s.Plans()); got < 2 {
		t.Errorf("POSP size = %d, want >= 2 (plan diversity)", got)
	}
	if s.MinCost() <= 0 || s.MaxCost() <= s.MinCost() {
		t.Errorf("cost range [%g, %g] malformed", s.MinCost(), s.MaxCost())
	}
	// Every cell's recorded cost must match re-evaluating its plan.
	for ci := 0; ci < s.Grid.Size(); ci += 7 {
		ev := s.Model.Eval(s.PlanAt(ci), s.Grid.Location(ci))
		if math.Abs(ev-s.CostAt(ci))/s.CostAt(ci) > 1e-9 {
			t.Fatalf("cell %d: recorded %g, eval %g", ci, s.CostAt(ci), ev)
		}
	}
}

func TestOCSMonotone(t *testing.T) {
	s := buildSpace(t, 8)
	g := s.Grid
	for ci := 0; ci < g.Size(); ci++ {
		for d := 0; d < g.D; d++ {
			if next, ok := g.Step(ci, d); ok && s.CostAt(next) < s.CostAt(ci)-1e-9 {
				t.Fatalf("OCS not monotone: cell %d dim %d: %g -> %g",
					ci, d, s.CostAt(ci), s.CostAt(next))
			}
		}
	}
}

func TestContourCosts(t *testing.T) {
	s := buildSpace(t, 8)
	costs := s.ContourCosts(CostDoublingRatio)
	if costs[0] != s.MinCost() {
		t.Errorf("first contour = %g, want C_min %g", costs[0], s.MinCost())
	}
	if costs[len(costs)-1] != s.MaxCost() {
		t.Errorf("last contour = %g, want C_max %g", costs[len(costs)-1], s.MaxCost())
	}
	for i := 1; i < len(costs)-1; i++ {
		if math.Abs(costs[i]/costs[i-1]-2) > 1e-9 {
			t.Errorf("contour %d not doubling: %g / %g", i, costs[i], costs[i-1])
		}
	}
	// Last step is capped, never more than doubling.
	n := len(costs)
	if n >= 2 && costs[n-1] > costs[n-2]*2+1e-9 {
		t.Errorf("final contour overshoots doubling: %g after %g", costs[n-1], costs[n-2])
	}
}

func TestContourCostsBadRatioPanics(t *testing.T) {
	s := buildSpace(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ratio <= 1")
		}
	}()
	s.ContourCosts(1.0)
}

// TestContourFrontier checks the defining properties of a discrete iso-cost
// contour: every contour cell is inside the hypograph, no contour cell
// strictly dominates another, and every hypograph cell is dominated by some
// contour cell.
func TestContourFrontier(t *testing.T) {
	s := buildSpace(t, 8)
	g := s.Grid
	full := s.Full()
	for _, cc := range s.ContourCosts(2)[1:4] {
		cells := full.ContourCells(cc)
		if len(cells) == 0 {
			t.Fatalf("contour %g empty", cc)
		}
		inContour := map[int]bool{}
		for _, ci := range cells {
			if s.CostAt(ci) > cc {
				t.Errorf("contour cell %d cost %g above budget %g", ci, s.CostAt(ci), cc)
			}
			inContour[ci] = true
		}
		// Pairwise non-dominance.
		for _, a := range cells {
			for _, b := range cells {
				if a == b {
					continue
				}
				la, lb := g.Location(a), g.Location(b)
				if la.Dominates(lb) {
					t.Fatalf("contour cells %v dominates %v", la, lb)
				}
			}
		}
		// Coverage: every hypograph cell is dominated by a contour cell.
		for ci := 0; ci < g.Size(); ci++ {
			if s.CostAt(ci) > cc {
				continue
			}
			loc := g.Location(ci)
			covered := false
			for _, fc := range cells {
				if g.Location(fc).Dominates(loc) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("hypograph cell %v not covered by contour %g", loc, cc)
			}
		}
	}
}

func TestSubspaceFixAndEach(t *testing.T) {
	s := buildSpace(t, 6)
	sub := s.Full().Fix(0, 3)
	if gi, ok := sub.Fixed(0); !ok || gi != 3 {
		t.Errorf("Fixed(0) = %d, %v", gi, ok)
	}
	if free := sub.FreeDims(); len(free) != 1 || free[0] != 1 {
		t.Errorf("FreeDims = %v", free)
	}
	count := 0
	sub.Each(func(ci int) {
		if s.Grid.Coord(ci, 0) != 3 {
			t.Errorf("cell %d escapes fixed dim", ci)
		}
		count++
	})
	if count != 6 {
		t.Errorf("Each visited %d cells, want 6", count)
	}
	if c0 := s.Grid.Coord(sub.MinCorner(), 0); c0 != 3 {
		t.Errorf("MinCorner dim0 = %d", c0)
	}
	if c1 := s.Grid.Coord(sub.MaxCorner(), 1); c1 != 5 {
		t.Errorf("MaxCorner dim1 = %d", c1)
	}
}

func TestSubspaceContour(t *testing.T) {
	s := buildSpace(t, 8)
	sub := s.Full().Fix(0, 4)
	costs := s.ContourCosts(2)
	// In a 1D subspace every non-empty contour has exactly one cell.
	for _, cc := range costs {
		cells := sub.ContourCells(cc)
		if len(cells) > 1 {
			t.Errorf("1D contour at %g has %d cells", cc, len(cells))
		}
		for _, ci := range cells {
			if s.Grid.Coord(ci, 0) != 4 {
				t.Errorf("subspace contour cell leaves fixed dim")
			}
		}
	}
	// The final contour (C_max of the full space) must include the
	// subspace terminus.
	last := sub.ContourCells(costs[len(costs)-1])
	if len(last) != 1 || last[0] != sub.MaxCorner() {
		t.Errorf("final subspace contour = %v, want [%d]", last, sub.MaxCorner())
	}
}

func TestCoveringContour(t *testing.T) {
	costs := []float64{10, 20, 40, 80}
	cases := []struct {
		c    float64
		want int
	}{{5, 0}, {10, 0}, {11, 1}, {40, 2}, {79, 3}, {200, 3}}
	for _, tc := range cases {
		if got := CoveringContour(costs, tc.c); got != tc.want {
			t.Errorf("CoveringContour(%g) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestNearlyEqual(t *testing.T) {
	if !NearlyEqual(100, 100.000001, 1e-6) {
		t.Error("NearlyEqual false negative")
	}
	if NearlyEqual(100, 101, 1e-6) {
		t.Error("NearlyEqual false positive")
	}
}

func TestContourCellsCached(t *testing.T) {
	s := buildSpace(t, 8)
	sub := s.Full()
	costs := s.ContourCosts(2)
	for _, cc := range costs[:4] {
		plain := sub.ContourCells(cc)
		cached := sub.ContourCellsCached(cc)
		if len(plain) != len(cached) {
			t.Fatalf("cached frontier size %d != %d", len(cached), len(plain))
		}
		for i := range plain {
			if plain[i] != cached[i] {
				t.Fatal("cached frontier differs")
			}
		}
		// Second call hits the cache and returns the same slice contents.
		again := sub.ContourCellsCached(cc)
		for i := range cached {
			if again[i] != cached[i] {
				t.Fatal("cache unstable")
			}
		}
	}
	// Distinct subspaces get distinct cache entries.
	fixed := sub.Fix(0, 2)
	if fixed.Key() == sub.Key() {
		t.Error("subspace keys should differ")
	}
	a := fixed.ContourCellsCached(costs[2])
	b := fixed.ContourCells(costs[2])
	if len(a) != len(b) {
		t.Error("fixed-subspace cached frontier differs")
	}
	if fixed.Space() != s {
		t.Error("Space accessor broken")
	}
}
