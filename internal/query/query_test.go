package query

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

func twoTables(t *testing.T) (*catalog.Table, *catalog.Table) {
	t.Helper()
	a := &catalog.Table{Name: "a", Rows: 10, RowBytes: 8, Columns: []catalog.Column{
		{Name: "x", Distinct: 10}, {Name: "k", Distinct: 10},
	}}
	b := &catalog.Table{Name: "b", Rows: 20, RowBytes: 8, Columns: []catalog.Column{
		{Name: "y", Distinct: 20}, {Name: "k", Distinct: 20},
	}}
	c := catalog.New("t")
	if err := c.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(b); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func validQuery(t *testing.T) *Query {
	t.Helper()
	a, b := twoTables(t)
	q := &Query{
		Name: "q",
		Relations: []Relation{
			{Alias: "a", Table: a},
			{Alias: "b", Table: b},
		},
		Joins: []Join{{
			ID:   0,
			Left: ColumnRef{Alias: "a", Column: "k"}, Right: ColumnRef{Alias: "b", Column: "k"},
		}},
		Filters: []Filter{{
			ID: 0, Col: ColumnRef{Alias: "a", Column: "x"}, Op: OpLt, Args: []float64{5},
		}},
		EPPs: []int{0},
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return q
}

func TestValidateFillsIndices(t *testing.T) {
	q := validQuery(t)
	if q.Joins[0].LeftRel != 0 || q.Joins[0].RightRel != 1 {
		t.Errorf("join rels = (%d,%d)", q.Joins[0].LeftRel, q.Joins[0].RightRel)
	}
	if q.Filters[0].Rel != 0 {
		t.Errorf("filter rel = %d", q.Filters[0].Rel)
	}
	if i, ok := q.RelationIndex("B"); !ok || i != 1 {
		t.Errorf("RelationIndex(B) = %d, %v", i, ok)
	}
}

func TestValidateErrors(t *testing.T) {
	a, b := twoTables(t)
	base := func() *Query {
		return &Query{
			Relations: []Relation{{Alias: "a", Table: a}, {Alias: "b", Table: b}},
			Joins: []Join{{
				ID:   0,
				Left: ColumnRef{Alias: "a", Column: "k"}, Right: ColumnRef{Alias: "b", Column: "k"},
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Query)
		want   string
	}{
		{"no relations", func(q *Query) { q.Relations = nil }, "no relations"},
		{"dup alias", func(q *Query) { q.Relations[1].Alias = "A" }, "duplicate alias"},
		{"nil table", func(q *Query) { q.Relations[0].Table = nil }, "no table"},
		{"bad join alias", func(q *Query) { q.Joins[0].Left.Alias = "zz" }, "unknown alias"},
		{"bad join column", func(q *Query) { q.Joins[0].Left.Column = "zz" }, "unknown column"},
		{"self join pred", func(q *Query) { q.Joins[0].Right.Alias = "a"; q.Joins[0].Right.Column = "x" }, "self-comparison"},
		{"join id mismatch", func(q *Query) { q.Joins[0].ID = 7 }, "has ID"},
		{"epp range", func(q *Query) { q.EPPs = []int{3} }, "out of range"},
		{"epp dup", func(q *Query) { q.EPPs = []int{0, 0} }, "duplicate epp"},
		{"disconnected", func(q *Query) { q.Joins = nil }, "disconnected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := base()
			tc.mutate(q)
			err := q.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestIsEPP(t *testing.T) {
	q := validQuery(t)
	if dim, ok := q.IsEPP(0); !ok || dim != 0 {
		t.Errorf("IsEPP(0) = %d,%v", dim, ok)
	}
	if _, ok := q.IsEPP(1); ok {
		t.Error("IsEPP(1) should be false")
	}
	if q.D() != 1 {
		t.Errorf("D = %d", q.D())
	}
}

func TestJoinsBetween(t *testing.T) {
	q := validQuery(t)
	got := q.JoinsBetween(1<<0, 1<<1)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("JoinsBetween = %v", got)
	}
	if got := q.JoinsBetween(1<<0, 1<<0); len(got) != 0 {
		t.Errorf("same-side JoinsBetween = %v", got)
	}
}

func TestFiltersOn(t *testing.T) {
	q := validQuery(t)
	if fs := q.FiltersOn(0); len(fs) != 1 {
		t.Errorf("FiltersOn(0) = %v", fs)
	}
	if fs := q.FiltersOn(1); len(fs) != 0 {
		t.Errorf("FiltersOn(1) = %v", fs)
	}
}

func TestStringRendering(t *testing.T) {
	q := validQuery(t)
	s := q.String()
	for _, want := range []string{"a ⋈ b", "epps", "a.k = b.k"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if got := (ColumnRef{Alias: "t", Column: "c"}).String(); got != "t.c" {
		t.Errorf("ColumnRef.String = %q", got)
	}
}

func TestFilterOpString(t *testing.T) {
	ops := map[FilterOp]string{
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
		OpGt: ">", OpGe: ">=", OpBetween: "BETWEEN", OpIn: "IN",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if s := FilterOp(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown op String = %q", s)
	}
}

func TestSortedAliases(t *testing.T) {
	q := validQuery(t)
	got := q.SortedAliases()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("SortedAliases = %v", got)
	}
}

func TestMarkEPPsInPackage(t *testing.T) {
	q := validQuery(t)
	if err := q.MarkEPPs("b.k = a.k"); err != nil {
		t.Fatalf("MarkEPPs reversed: %v", err)
	}
	if q.D() != 1 || q.EPPs[0] != 0 {
		t.Errorf("EPPs = %v", q.EPPs)
	}
	if err := q.MarkEPPs("a.k = c.z"); err == nil {
		t.Error("unknown predicate should fail")
	}
	if err := q.MarkEPPs("malformed"); err == nil {
		t.Error("malformed predicate should fail")
	}
}
