// Package query defines the bound representation of an SPJ query: the
// relations it touches, its equi-join graph, its filter predicates, and the
// designation of which join predicates are error-prone (the epps of the
// paper). All downstream components — plan, cost, optimizer, ess and the
// robust execution algorithms — operate on this representation.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
)

// ColumnRef names a column of one of the query's relations via the
// relation's alias.
type ColumnRef struct {
	// Alias is the relation alias within the query.
	Alias string
	// Column is the column name within that relation.
	Column string
}

// String returns the usual alias.column rendering.
func (c ColumnRef) String() string { return c.Alias + "." + c.Column }

// Relation is one base-table occurrence in the FROM list.
type Relation struct {
	// Alias is the name the query uses for this occurrence; it defaults to
	// the table name.
	Alias string
	// Table is the catalog table backing the relation.
	Table *catalog.Table
}

// Join is an equi-join predicate between two relations.
type Join struct {
	// ID is the predicate's index within Query.Joins.
	ID int
	// Left and Right are the joined columns. Left.Alias's relation index is
	// always lower than Right.Alias's, establishing a canonical direction.
	Left, Right ColumnRef
	// LeftRel and RightRel are the indices into Query.Relations.
	LeftRel, RightRel int
}

// String renders the predicate as "l.a = r.b".
func (j Join) String() string { return j.Left.String() + " = " + j.Right.String() }

// FilterOp enumerates the comparison operators supported in filter
// predicates.
type FilterOp int

// Supported filter operators.
const (
	OpEq FilterOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpIn
)

// String returns the SQL spelling of the operator.
func (op FilterOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	}
	return fmt.Sprintf("FilterOp(%d)", int(op))
}

// Filter is a single-relation predicate of the form col OP args.
type Filter struct {
	// ID is the predicate's index within Query.Filters.
	ID int
	// Col is the filtered column.
	Col ColumnRef
	// Rel is the index into Query.Relations of the filtered relation.
	Rel int
	// Op is the comparison operator.
	Op FilterOp
	// Args holds the literal operands: one value for the simple comparisons,
	// two (low, high) for BETWEEN, and the list members for IN. String
	// literals are represented by their estimation-relevant surrogate (see
	// sqlmini), so only numeric values appear here.
	Args []float64
	// Text preserves the original literal rendering for display.
	Text string
}

// String renders the predicate for display.
func (f Filter) String() string {
	if f.Text != "" {
		return f.Text
	}
	return fmt.Sprintf("%s %s %v", f.Col, f.Op, f.Args)
}

// Query is a bound select-project-join query.
type Query struct {
	// Name is an optional label (e.g. "4D_Q91").
	Name string
	// Relations lists the FROM entries.
	Relations []Relation
	// Joins lists the equi-join predicates.
	Joins []Join
	// Filters lists the single-relation predicates.
	Filters []Filter
	// EPPs lists, in dimension order, the IDs of the error-prone join
	// predicates. Dimension j of the ESS corresponds to Joins[EPPs[j]].
	EPPs []int
	// GroupBy lists the grouping columns, if the query aggregates.
	GroupBy []ColumnRef

	byAlias map[string]int
}

// Validate checks internal consistency: alias uniqueness, join/filter
// references, a connected join graph, and well-formed epp designations.
// It also (re)builds the internal alias index.
func (q *Query) Validate() error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("query %q: no relations", q.Name)
	}
	q.byAlias = make(map[string]int, len(q.Relations))
	for i, r := range q.Relations {
		a := strings.ToLower(r.Alias)
		if a == "" {
			return fmt.Errorf("query %q: relation %d has empty alias", q.Name, i)
		}
		if _, dup := q.byAlias[a]; dup {
			return fmt.Errorf("query %q: duplicate alias %q", q.Name, r.Alias)
		}
		if r.Table == nil {
			return fmt.Errorf("query %q: relation %q has no table", q.Name, r.Alias)
		}
		q.byAlias[a] = i
	}
	for i := range q.Joins {
		j := &q.Joins[i]
		if j.ID != i {
			return fmt.Errorf("query %q: join %d has ID %d", q.Name, i, j.ID)
		}
		var ok bool
		if j.LeftRel, ok = q.RelationIndex(j.Left.Alias); !ok {
			return fmt.Errorf("query %q: join %v references unknown alias %q", q.Name, j, j.Left.Alias)
		}
		if j.RightRel, ok = q.RelationIndex(j.Right.Alias); !ok {
			return fmt.Errorf("query %q: join %v references unknown alias %q", q.Name, j, j.Right.Alias)
		}
		if j.LeftRel == j.RightRel {
			return fmt.Errorf("query %q: join %v is a self-comparison", q.Name, j)
		}
		if j.LeftRel > j.RightRel {
			j.Left, j.Right = j.Right, j.Left
			j.LeftRel, j.RightRel = j.RightRel, j.LeftRel
		}
		if !q.Relations[j.LeftRel].Table.HasColumn(j.Left.Column) {
			return fmt.Errorf("query %q: unknown column %v", q.Name, j.Left)
		}
		if !q.Relations[j.RightRel].Table.HasColumn(j.Right.Column) {
			return fmt.Errorf("query %q: unknown column %v", q.Name, j.Right)
		}
	}
	for i := range q.Filters {
		f := &q.Filters[i]
		if f.ID != i {
			return fmt.Errorf("query %q: filter %d has ID %d", q.Name, i, f.ID)
		}
		var ok bool
		if f.Rel, ok = q.RelationIndex(f.Col.Alias); !ok {
			return fmt.Errorf("query %q: filter %v references unknown alias %q", q.Name, f, f.Col.Alias)
		}
		if !q.Relations[f.Rel].Table.HasColumn(f.Col.Column) {
			return fmt.Errorf("query %q: unknown column %v", q.Name, f.Col)
		}
	}
	for i, gb := range q.GroupBy {
		rel, ok := q.RelationIndex(gb.Alias)
		if !ok {
			return fmt.Errorf("query %q: group-by %v references unknown alias %q", q.Name, gb, gb.Alias)
		}
		if !q.Relations[rel].Table.HasColumn(gb.Column) {
			return fmt.Errorf("query %q: unknown group-by column %v", q.Name, gb)
		}
		_ = i
	}
	seen := make(map[int]bool, len(q.EPPs))
	for _, id := range q.EPPs {
		if id < 0 || id >= len(q.Joins) {
			return fmt.Errorf("query %q: epp join id %d out of range", q.Name, id)
		}
		if seen[id] {
			return fmt.Errorf("query %q: duplicate epp join id %d", q.Name, id)
		}
		seen[id] = true
	}
	if !q.Connected() {
		return fmt.Errorf("query %q: join graph is disconnected", q.Name)
	}
	return nil
}

// RelationIndex returns the index of the relation with the given alias.
func (q *Query) RelationIndex(alias string) (int, bool) {
	i, ok := q.byAlias[strings.ToLower(alias)]
	return i, ok
}

// D returns the ESS dimensionality, i.e. the number of epps.
func (q *Query) D() int { return len(q.EPPs) }

// IsEPP reports whether the join predicate with the given ID is error-prone,
// and if so returns its ESS dimension.
func (q *Query) IsEPP(joinID int) (dim int, ok bool) {
	for d, id := range q.EPPs {
		if id == joinID {
			return d, true
		}
	}
	return -1, false
}

// FiltersOn returns the filters applying to relation index rel.
func (q *Query) FiltersOn(rel int) []Filter {
	var out []Filter
	for _, f := range q.Filters {
		if f.Rel == rel {
			out = append(out, f)
		}
	}
	return out
}

// JoinsBetween returns the IDs of join predicates with one side in set a and
// the other in set b, where a and b are bitmasks over relation indices.
func (q *Query) JoinsBetween(a, b uint64) []int {
	var out []int
	for _, j := range q.Joins {
		lbit, rbit := uint64(1)<<j.LeftRel, uint64(1)<<j.RightRel
		if (a&lbit != 0 && b&rbit != 0) || (a&rbit != 0 && b&lbit != 0) {
			out = append(out, j.ID)
		}
	}
	return out
}

// Connected reports whether the join graph spans all relations.
func (q *Query) Connected() bool {
	if len(q.Relations) == 0 {
		return false
	}
	adj := make([][]int, len(q.Relations))
	for _, j := range q.Joins {
		adj[j.LeftRel] = append(adj[j.LeftRel], j.RightRel)
		adj[j.RightRel] = append(adj[j.RightRel], j.LeftRel)
	}
	seen := make([]bool, len(q.Relations))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == len(q.Relations)
}

// MarkEPPs designates the join predicates rendered as "alias.col = alias.col"
// (order-insensitive) as the error-prone predicates, in the order given.
// It returns an error if any predicate is not found.
func (q *Query) MarkEPPs(preds ...string) error {
	q.EPPs = q.EPPs[:0]
	for _, p := range preds {
		id, err := q.findJoin(p)
		if err != nil {
			return err
		}
		q.EPPs = append(q.EPPs, id)
	}
	return q.Validate()
}

func (q *Query) findJoin(pred string) (int, error) {
	norm := func(a, b string) string {
		a, b = strings.ToLower(strings.TrimSpace(a)), strings.ToLower(strings.TrimSpace(b))
		if a > b {
			a, b = b, a
		}
		return a + "=" + b
	}
	parts := strings.SplitN(pred, "=", 2)
	if len(parts) != 2 {
		return -1, fmt.Errorf("query %q: malformed join predicate %q", q.Name, pred)
	}
	want := norm(parts[0], parts[1])
	for _, j := range q.Joins {
		if norm(j.Left.String(), j.Right.String()) == want {
			return j.ID, nil
		}
	}
	return -1, fmt.Errorf("query %q: no join predicate %q", q.Name, pred)
}

// String renders the query compactly for logs and traces.
func (q *Query) String() string {
	var b strings.Builder
	if q.Name != "" {
		fmt.Fprintf(&b, "%s: ", q.Name)
	}
	names := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		names[i] = r.Alias
	}
	b.WriteString(strings.Join(names, " ⋈ "))
	if len(q.EPPs) > 0 {
		eppStrs := make([]string, len(q.EPPs))
		for d, id := range q.EPPs {
			eppStrs[d] = q.Joins[id].String()
		}
		fmt.Fprintf(&b, " [epps: %s]", strings.Join(eppStrs, ", "))
	}
	return b.String()
}

// SortedAliases returns the relation aliases in sorted order; useful for
// deterministic iteration in tests and rendering.
func (q *Query) SortedAliases() []string {
	out := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		out[i] = r.Alias
	}
	sort.Strings(out)
	return out
}
