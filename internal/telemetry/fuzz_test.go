package telemetry

import (
	"strings"
	"testing"
)

// FuzzParseProm feeds arbitrary text to the exposition parser — the consumer
// half of the registry, which smoke tooling points at scraped /v1/metrics
// bodies. It must never panic, and whatever it accepts must satisfy the
// structural invariants the rest of the tooling relies on: named families
// with a declared type, samples attached to their declaring family, and
// histogram bucket labels present on bucket samples.
func FuzzParseProm(f *testing.F) {
	f.Add("# HELP rqp_x X.\n# TYPE rqp_x counter\nrqp_x 1\n")
	f.Add("# TYPE rqp_y gauge\nrqp_y{a=\"b\",c=\"d\"} 2.5\n")
	f.Add("# TYPE rqp_h histogram\n" +
		"rqp_h_bucket{le=\"1\"} 1\nrqp_h_bucket{le=\"+Inf\"} 2\n" +
		"rqp_h_sum 3\nrqp_h_count 2\n")
	f.Add("# TYPE rqp_z untyped\nrqp_z NaN\nrqp_z +Inf 1700000000\n")
	f.Add("# TYPE rqp_e counter\nrqp_e{v=\"a\\\\b\\\"c\\nd\"} 0\n")
	f.Add("rqp_undeclared 1\n")
	f.Add("# TYPE bad name\n")
	f.Add("{} 1\n")

	f.Fuzz(func(t *testing.T, text string) {
		fams, err := ParseProm(strings.NewReader(text))
		if err != nil {
			return
		}
		for name, fam := range fams {
			if fam == nil {
				t.Fatalf("nil family %q", name)
			}
			if fam.Name != name {
				t.Fatalf("family keyed %q but named %q", name, fam.Name)
			}
			if fam.Type == "" {
				t.Fatalf("accepted family %q without a TYPE", name)
			}
			for _, s := range fam.Samples {
				if s.Name != fam.Name && !strings.HasPrefix(s.Name, fam.Name+"_") {
					t.Fatalf("sample %q filed under family %q", s.Name, fam.Name)
				}
				if s.Labels == nil {
					t.Fatalf("sample %q has nil label map", s.Name)
				}
				if fam.Type == "histogram" && strings.HasSuffix(s.Name, "_bucket") {
					if _, ok := s.Labels["le"]; !ok {
						t.Fatalf("accepted bucket sample %q without le label", s.Name)
					}
				}
			}
		}
	})
}
