package telemetry

import (
	"fmt"
	"strings"
)

// RenderTrace renders the event stream into the legacy human-readable run
// transcript, byte-compatible with the trace strings the session layer used
// to assemble by hand: execution lines first in recorded order, then the
// resilience notes, then the degradation record. Purely diagnostic events
// (ContourEnter, HalfSpacePrune, BudgetSpend, Done) render nothing — they
// exist for machine consumption.
func RenderTrace(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		renderExec(&b, ev)
	}
	for _, ev := range events {
		if ev.Kind == Retry {
			b.WriteString("resilience: ")
			b.WriteString(ev.Detail)
			b.WriteByte('\n')
		}
	}
	for _, ev := range events {
		if ev.Kind == Degrade {
			fmt.Fprintf(&b, "degraded: %s\n", ev.Detail)
			fmt.Fprintf(&b, "degraded: falling back to native plan at estimate %s, cost %.4g\n",
				formatLocation(ev.Location), ev.Spent)
			// Guarantee -1 is the JSON-safe marker for "no MSO bound" (the
			// selection strategies); bounded strategies render the number.
			if ev.Guarantee < 0 {
				fmt.Fprintf(&b, "degraded: guarantee downgraded from none (%s) to +Inf (native, no MSO bound)\n",
					ev.Algorithm)
			} else {
				fmt.Fprintf(&b, "degraded: guarantee downgraded from %.4g (%s) to +Inf (native, no MSO bound)\n",
					ev.Guarantee, ev.Algorithm)
			}
		}
	}
	return b.String()
}

// renderExec writes the trace line of one execution event, in the exact
// notation of bouquet.Step.String and spillbound.Execution.String.
func renderExec(b *strings.Builder, ev Event) {
	switch ev.Kind {
	case PlanExec:
		if ev.Mode == "native" {
			fmt.Fprintf(b, "native: plan at estimate %s, cost %.4g\n", formatLocation(ev.Location), ev.Spent)
			return
		}
		if ev.Mode == "guard" {
			// The ESS-escape safe path: the max-corner terminal plan run in
			// native (unbudgeted) mode.
			fmt.Fprintf(b, "guard: safe-path terminal plan P%d, cost %.4g\n", ev.PlanID, ev.Spent)
			return
		}
		mark := "✗"
		if ev.Completed {
			mark = "✓"
		}
		fmt.Fprintf(b, "IC%d: P%d|%.4g %s\n", ev.Contour, ev.PlanID, ev.Budget, mark)
	case SpillExec:
		tag := ""
		if ev.Repeat {
			tag = " (repeat)"
		}
		fmt.Fprintf(b, "IC%d: p%d|%.4g spill dim %d → %.3g%s\n",
			ev.Contour, ev.PlanID, ev.Budget, ev.Dim, ev.Learned, tag)
	case RunResume:
		// Only durable resumed runs carry this event, so legacy traces stay
		// byte-identical.
		fmt.Fprintf(b, "resumed: run %s from checkpoint at IC%d, ledger %.4g\n",
			ev.Detail, ev.Contour, ev.Spent)
	case BudgetAbort:
		// Guard events appear only on watchdog-aborted (faulted) runs, so
		// clean traces stay byte-identical.
		fmt.Fprintf(b, "guard: budget abort at ceiling %.4g (budget %.4g)\n", ev.Spent, ev.Budget)
	case ESSEscape:
		fmt.Fprintf(b, "guard: ess escape on dim %d (learned %.3g), taking safe path\n",
			ev.Dim, ev.Learned)
	}
}

// formatLocation renders a selectivity location exactly as cost.Location
// does ("(0.02, 0.3)"); replicated here so telemetry stays dependency-free.
func formatLocation(loc []float64) string {
	s := "("
	for d, v := range loc {
		if d > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3g", v)
	}
	return s + ")"
}

// CountRetries counts the actual retry attempts in the stream — the single
// source of truth for RunResult.Retries. Final ("giving up") notes are
// records of exhaustion, not attempts, and are excluded.
func CountRetries(events []Event) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == Retry && !ev.Final {
			n++
		}
	}
	return n
}

// GuardVerdict derives the runtime-guard verdict from the stream — the
// single source of truth for RunResult.GuardVerdict. An ESS escape (the
// guard abandoned discovery for the safe path) dominates budget aborts
// (discovery continued and completed under the enforced ledger); a clean
// stream yields "".
func GuardVerdict(events []Event) string {
	verdict := ""
	for _, ev := range events {
		switch ev.Kind {
		case ESSEscape:
			return string(ESSEscape)
		case BudgetAbort:
			verdict = string(BudgetAbort)
		}
	}
	return verdict
}

// Degradation reports whether the stream records a Native-plan fallback and
// the terminal failure that forced it — the single source of truth for
// RunResult.Degraded / DegradedReason.
func Degradation(events []Event) (degraded bool, reason string) {
	for _, ev := range events {
		if ev.Kind == Degrade {
			return true, ev.Detail
		}
	}
	return false, ""
}
