// Package telemetry is the structured observability layer of the library:
// typed run events recorded by the discovery algorithms and the execution
// engine, and a dependency-free metrics registry with Prometheus text
// exposition (registry.go).
//
// The paper's guarantees are behavioral — MSO comes from what the executor
// did at run time: which contours were entered, which plans ran in spill
// mode, which half-spaces were pruned (Lemma 3.1), when the discovery
// jumped contours (Lemma 3.2). Events make that behavior machine-readable;
// the legacy human trace is a deterministic rendering of the event stream
// (render.go), so nothing is recorded twice.
//
// A Recorder travels on the context. Emitters call
//
//	telemetry.From(ctx).Record(telemetry.Event{...})
//
// unconditionally: a nil Recorder (no telemetry requested) records nothing,
// so paths that are not observed — whole-space sweeps, benchmarks — pay one
// nil check per event.
package telemetry

import (
	"context"
	"sync"
)

// Kind discriminates the event types of a robust processing run.
type Kind string

// The event kinds, in rough lifecycle order.
const (
	// ContourEnter marks the discovery entering an iso-cost contour.
	ContourEnter Kind = "contour_enter"
	// PlanExec is a regular (non-spill) budgeted plan execution: a
	// PlanBouquet step, the terminal 1-D phase of SpillBound/AlignedBound,
	// or the Native baseline's single unbudgeted execution.
	PlanExec Kind = "plan_exec"
	// SpillExec is a spill-mode execution on one ESS dimension (Sec 3.1.2).
	SpillExec Kind = "spill_exec"
	// HalfSpacePrune records a fully learnt selectivity restricting the
	// effective search space (Lemma 3.1's half-space pruning).
	HalfSpacePrune Kind = "half_space_prune"
	// BudgetSpend is the engine-level accounting of one execution: budget
	// assigned vs cost charged, emitted by the cost-model simulator and the
	// row engine adapter.
	BudgetSpend Kind = "budget_spend"
	// BudgetAbort records the budget watchdog hard-aborting an execution
	// whose charged cost reached the guard ceiling (budget plus the explicit
	// λ slack); discovery resumes at the next plan/contour and the clamped
	// charge stands in the ledger.
	BudgetAbort Kind = "budget_abort"
	// ESSEscape records run-time monitoring driving a learned selectivity
	// past the ESS boundary; the guard escalates to the safe path (the
	// max-corner terminal plan in native mode) instead of indexing off-grid.
	ESSEscape Kind = "ess_escape"
	// Retry records the resilience layer retrying (or giving up on) a
	// failed execution step.
	Retry Kind = "retry"
	// Degrade records the fall back to the Native plan after the retry
	// budget was exhausted; the MSO guarantee no longer applies.
	Degrade Kind = "degrade"
	// CheckpointSave records a durable run-state snapshot landing at a
	// contour boundary (crash tolerance; Spent carries the budget ledger,
	// Detail the run ID).
	CheckpointSave Kind = "checkpoint_save"
	// RunResume opens the event stream of a resumed incarnation: Contour is
	// the restart contour, Spent the ledger carried over from the crashed
	// incarnation, Detail the run ID.
	RunResume Kind = "run_resume"
	// Done terminates the stream with the run's aggregate outcome.
	Done Kind = "done"

	// BuildChunk records one ESS-build worker finishing its contiguous grid
	// range [CellLo, CellHi): the per-chunk construction spans of a
	// session-build trace.
	BuildChunk Kind = "build_chunk"
	// BuildMemo records the post-build session assembly (plan-diagram
	// reduction and the shared memoized optimizer).
	BuildMemo Kind = "build_memo"

	// PeerDown and PeerUp record fleet heartbeat state transitions: a peer
	// crossing the mark-down (consecutive probe failures) or mark-up
	// (consecutive probe successes) hysteresis threshold. Detail carries the
	// peer address; Contour carries the transition ordinal.
	PeerDown Kind = "peer_down"
	PeerUp   Kind = "peer_up"
	// Failover records an orphaned durable run being resumed by a new owner
	// after its previous owner was marked down: Detail carries the run ID,
	// Mode the adopting node, Spent the ledger the new incarnation resumed
	// at. Injected into the resumed run's stream (and the fleet membership
	// stream) so failovers show up as zero-width markers in flamegraphs.
	Failover Kind = "failover"
	// BrownoutStage records a staged-brownout transition on a node: Contour
	// carries the new stage, Dim the previous one, Detail the node address.
	// Recorded into the fleet membership stream so brownout episodes render
	// as zero-width markers on the same timeline as peer transitions.
	BrownoutStage Kind = "brownout_stage"
)

// Event is one typed run-time occurrence. One struct covers every kind;
// fields irrelevant to a kind stay at their zero value and are elided from
// JSON where unambiguous. Dim uses -1 (not 0) for "no dimension" since 0 is
// a valid ESS dimension.
type Event struct {
	// Seq is the 0-based position in the run's event stream.
	Seq int `json:"seq"`
	// Kind discriminates the event type.
	Kind Kind `json:"kind"`
	// Contour is the 1-based iso-cost contour (0 = not contour-scoped).
	Contour int `json:"contour,omitempty"`
	// Dim is the ESS dimension spilled/pruned on; -1 for regular
	// executions and non-dimensional events.
	Dim int `json:"dim"`
	// PlanID is the executed plan's POSP index (-1 for beam-enumerated
	// replacement plans outside the POSP pool).
	PlanID int `json:"planID,omitempty"`
	// Budget and Spent are the assigned and charged costs; Budget -1 marks
	// an unbudgeted execution.
	Budget float64 `json:"budget,omitempty"`
	Spent  float64 `json:"spent,omitempty"`
	// Completed reports completion within budget.
	Completed bool `json:"completed,omitempty"`
	// Learned is the selectivity information gained on Dim.
	Learned float64 `json:"learned,omitempty"`
	// Repeat marks a repeat spill (same contour, P^j_max changed).
	Repeat bool `json:"repeat,omitempty"`
	// Penalty is AlignedBound's induced-alignment penalty for the
	// execution (1 = natively aligned).
	Penalty float64 `json:"penalty,omitempty"`
	// Mode refines the kind: "native" (baseline execution), "exec"/"spill"
	// (BudgetSpend origin), "rowexec" (row-engine BudgetSpend).
	Mode string `json:"mode,omitempty"`
	// Location is a selectivity location attached to the event (the
	// optimizer estimate for native/degrade events).
	Location []float64 `json:"location,omitempty"`
	// Detail carries free text: retry notes and degrade causes.
	Detail string `json:"detail,omitempty"`
	// Final marks a Retry event that records retry exhaustion (the
	// "giving up" note) rather than an actual re-attempt.
	Final bool `json:"final,omitempty"`
	// TotalCost, SubOpt and Guarantee carry run aggregates on Done and
	// Degrade events.
	TotalCost float64 `json:"totalCost,omitempty"`
	SubOpt    float64 `json:"subOpt,omitempty"`
	Guarantee float64 `json:"guarantee,omitempty"`
	// Algorithm names the strategy on Done/Degrade events.
	Algorithm string `json:"algorithm,omitempty"`
	// CellLo and CellHi are the half-open grid-cell range of a BuildChunk
	// event (zero on every other kind).
	CellLo int `json:"cellLo,omitempty"`
	CellHi int `json:"cellHi,omitempty"`
}

// Recorder accumulates the event stream of one run. It is safe for
// concurrent use (the resilience layer and the engine may record from the
// same step), and a nil *Recorder is a valid no-op sink.
type Recorder struct {
	mu          sync.Mutex
	events      []Event
	lastContour int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{lastContour: -1} }

// Record appends the event, assigning its sequence number. Recording on a
// nil recorder is a no-op, so emitters need no nil checks.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev.Seq = len(r.events)
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// EnterContour records a ContourEnter event for the 1-based contour,
// deduplicating consecutive entries of the same contour — the hand-off from
// a spill phase to the terminal 1-D phase re-enters the contour it was
// already exploring, which is one entry, not two.
func (r *Recorder) EnterContour(contour int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.lastContour != contour {
		r.lastContour = contour
		r.events = append(r.events, Event{Seq: len(r.events), Kind: ContourEnter, Contour: contour, Dim: -1})
	}
	r.mu.Unlock()
}

// Events returns a copy of the stream recorded so far.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len reports the number of events recorded so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// ctxKey keys the recorder on a context.
type ctxKey struct{}

// With attaches the recorder to the context; the discovery runners and the
// execution engine pick it up with From.
func With(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the context's recorder, or nil (a valid no-op sink) when
// none was attached.
func From(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
