package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestRecorderSequencesEvents(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Kind: SpillExec, Dim: 1})
	r.Record(Event{Kind: Done, Dim: -1})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("events = %+v", evs)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	// The returned slice is a copy.
	evs[0].Kind = Degrade
	if r.Events()[0].Kind != SpillExec {
		t.Error("Events returned aliased storage")
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: Done})
	r.EnterContour(3)
	if r.Events() != nil || r.Len() != 0 {
		t.Error("nil recorder should record nothing")
	}
}

func TestEnterContourDedupes(t *testing.T) {
	r := NewRecorder()
	r.EnterContour(1)
	r.EnterContour(1) // phase hand-off re-entry: deduped
	r.EnterContour(2)
	r.EnterContour(1) // going back is a real entry again
	var got []int
	for _, ev := range r.Events() {
		if ev.Kind != ContourEnter {
			t.Fatalf("unexpected kind %s", ev.Kind)
		}
		got = append(got, ev.Contour)
	}
	want := []int{1, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("contours = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contours = %v, want %v", got, want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	if From(context.Background()) != nil {
		t.Error("empty context should carry no recorder")
	}
	r := NewRecorder()
	ctx := With(context.Background(), r)
	if From(ctx) != r {
		t.Error("recorder lost on context")
	}
}

// TestConcurrentRecord exercises one shared recorder from many goroutines
// under -race: the engine and the resilience layer may both record while a
// step is in flight.
func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: BudgetSpend, Dim: -1, Spent: 1})
				r.EnterContour(i % 5)
			}
		}()
	}
	wg.Wait()
	evs := r.Events()
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	spends := 0
	for _, ev := range evs {
		if ev.Kind == BudgetSpend {
			spends++
		}
	}
	if spends != 800 {
		t.Errorf("spends = %d, want 800", spends)
	}
}

func TestRenderTraceFormats(t *testing.T) {
	events := []Event{
		{Kind: ContourEnter, Contour: 1, Dim: -1},
		{Kind: SpillExec, Contour: 1, Dim: 0, PlanID: 4, Budget: 2048, Learned: 0.0123},
		{Kind: BudgetSpend, Dim: 0, Budget: 2048, Spent: 2048},
		{Kind: SpillExec, Contour: 1, Dim: 1, PlanID: 7, Budget: 2048, Learned: 0.5, Repeat: true},
		{Kind: HalfSpacePrune, Contour: 1, Dim: 1, Learned: 0.5},
		{Kind: PlanExec, Contour: 2, Dim: -1, PlanID: 3, Budget: 4096, Completed: false},
		{Kind: PlanExec, Contour: 3, Dim: -1, PlanID: 3, Budget: 8192, Completed: true},
		{Kind: Retry, Dim: -1, Detail: "spill: attempt 1 failed (boom), retrying in 1ms"},
		{Kind: Done, Dim: -1, TotalCost: 12288, SubOpt: 1.5},
	}
	got := RenderTrace(events)
	want := "IC1: p4|2048 spill dim 0 → 0.0123\n" +
		"IC1: p7|2048 spill dim 1 → 0.5 (repeat)\n" +
		"IC2: P3|4096 ✗\n" +
		"IC3: P3|8192 ✓\n" +
		"resilience: spill: attempt 1 failed (boom), retrying in 1ms\n"
	if got != want {
		t.Errorf("trace:\n%q\nwant:\n%q", got, want)
	}
}

func TestRenderTraceNativeAndDegrade(t *testing.T) {
	native := RenderTrace([]Event{{
		Kind: PlanExec, Dim: -1, Mode: "native",
		Location: []float64{0.02, 0.3}, Spent: 123.456,
	}})
	if native != "native: plan at estimate (0.02, 0.3), cost 123.5\n" {
		t.Errorf("native line = %q", native)
	}
	deg := RenderTrace([]Event{{
		Kind: Degrade, Dim: -1, Detail: "engine: execution step failed after 3 attempts: boom",
		Location: []float64{0.1, 0.2}, Spent: 42, Guarantee: 10, Algorithm: "spillbound",
	}})
	want := "degraded: engine: execution step failed after 3 attempts: boom\n" +
		"degraded: falling back to native plan at estimate (0.1, 0.2), cost 42\n" +
		"degraded: guarantee downgraded from 10 (spillbound) to +Inf (native, no MSO bound)\n"
	if deg != want {
		t.Errorf("degrade trace:\n%q\nwant:\n%q", deg, want)
	}
}

func TestRetryAndDegradationHelpers(t *testing.T) {
	events := []Event{
		{Kind: Retry, Detail: "a"},
		{Kind: Retry, Detail: "b"},
		{Kind: Retry, Detail: "giving up", Final: true},
		{Kind: Degrade, Detail: "cause"},
	}
	if n := CountRetries(events); n != 2 {
		t.Errorf("retries = %d, want 2", n)
	}
	deg, reason := Degradation(events)
	if !deg || reason != "cause" {
		t.Errorf("degradation = %v %q", deg, reason)
	}
	deg, reason = Degradation(nil)
	if deg || reason != "" {
		t.Error("empty stream should not degrade")
	}
	if strings.Contains(RenderTrace(events), "giving up\nresilience") {
		t.Error("final retry note ordering broken")
	}
}
