package telemetry

import (
	"strings"
	"testing"
)

// A crash-resumed run's event stream is a suffix: it opens with RunResume
// carrying the checkpoint coordinates, then continues with ordinary
// execution events. These tests pin the transcript rendering of that suffix
// and of the guard events that only appear on faulted runs.

func TestRenderTraceResumeSuffix(t *testing.T) {
	events := []Event{
		{Kind: RunResume, Dim: -1, Detail: "r7", Contour: 2, Spent: 1536},
		{Kind: ContourEnter, Contour: 2, Dim: -1},
		{Kind: PlanExec, Contour: 2, Dim: -1, PlanID: 3, Budget: 4096, Completed: true},
		{Kind: Done, Dim: -1, TotalCost: 5632, SubOpt: 1.2},
	}
	got := RenderTrace(events)
	want := "resumed: run r7 from checkpoint at IC2, ledger 1536\n" +
		"IC2: P3|4096 ✓\n"
	if got != want {
		t.Errorf("resume suffix:\n%q\nwant:\n%q", got, want)
	}
}

func TestRenderTraceResumeOrderingAndLedgerFormat(t *testing.T) {
	// The resumed line renders in recorded order — before the suffix's
	// executions, never hoisted or sunk — and the ledger uses %.4g, so a
	// zero carry-over renders as "0" and a fractional one stays compact.
	events := []Event{
		{Kind: RunResume, Dim: -1, Detail: "r0", Contour: 0, Spent: 0},
		{Kind: SpillExec, Contour: 0, Dim: 1, PlanID: 2, Budget: 512, Learned: 0.25},
	}
	got := RenderTrace(events)
	if !strings.HasPrefix(got, "resumed: run r0 from checkpoint at IC0, ledger 0\n") {
		t.Errorf("zero-ledger resume line:\n%q", got)
	}
	if strings.Index(got, "resumed:") > strings.Index(got, "IC0:") {
		t.Errorf("resume line rendered after the suffix executions:\n%q", got)
	}
	frac := RenderTrace([]Event{
		{Kind: RunResume, Dim: -1, Detail: "r1", Contour: 1, Spent: 1234.5678},
	})
	if frac != "resumed: run r1 from checkpoint at IC1, ledger 1235\n" {
		t.Errorf("ledger %%.4g rendering = %q", frac)
	}
}

func TestRenderTraceCleanStreamHasNoResumeLine(t *testing.T) {
	// First-incarnation streams carry no RunResume event, so legacy traces
	// stay byte-identical: no "resumed:" line may appear.
	events := []Event{
		{Kind: ContourEnter, Contour: 1, Dim: -1},
		{Kind: PlanExec, Contour: 1, Dim: -1, PlanID: 5, Budget: 1024, Completed: true},
		{Kind: Done, Dim: -1, TotalCost: 1024, SubOpt: 1},
	}
	if got := RenderTrace(events); strings.Contains(got, "resumed") {
		t.Errorf("clean stream rendered a resume line:\n%q", got)
	}
}

func TestRenderTraceGuardLines(t *testing.T) {
	// Guard events appear only on faulted runs: the watchdog's budget abort,
	// the ESS escape, and the safe-path terminal plan run in guard mode.
	events := []Event{
		{Kind: RunResume, Dim: -1, Detail: "r9", Contour: 3, Spent: 100},
		{Kind: ESSEscape, Dim: 1, Learned: 0.125},
		{Kind: PlanExec, Dim: -1, Mode: "guard", PlanID: 7, Spent: 256},
		{Kind: BudgetAbort, Dim: -1, Budget: 300, Spent: 301.5},
	}
	got := RenderTrace(events)
	want := "resumed: run r9 from checkpoint at IC3, ledger 100\n" +
		"guard: ess escape on dim 1 (learned 0.125), taking safe path\n" +
		"guard: safe-path terminal plan P7, cost 256\n" +
		"guard: budget abort at ceiling 301.5 (budget 300)\n"
	if got != want {
		t.Errorf("guard lines:\n%q\nwant:\n%q", got, want)
	}
}

func TestRenderTraceResumeThenDegrade(t *testing.T) {
	// A resumed incarnation that subsequently degrades renders the resume
	// line in the execution section and the degradation record at the end;
	// Guarantee -1 is the JSON-safe "no MSO bound" marker and renders as
	// "none".
	events := []Event{
		{Kind: RunResume, Dim: -1, Detail: "r2", Contour: 1, Spent: 50},
		{Kind: Degrade, Dim: -1, Detail: "engine: boom",
			Location: []float64{0.5}, Spent: 75, Guarantee: -1, Algorithm: "native"},
	}
	got := RenderTrace(events)
	want := "resumed: run r2 from checkpoint at IC1, ledger 50\n" +
		"degraded: engine: boom\n" +
		"degraded: falling back to native plan at estimate (0.5), cost 75\n" +
		"degraded: guarantee downgraded from none (native) to +Inf (native, no MSO bound)\n"
	if got != want {
		t.Errorf("resume+degrade:\n%q\nwant:\n%q", got, want)
	}
}
