package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "Total jobs.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := reg.Gauge("temperature", "Current temperature.")
	g.Set(20)
	g.Add(-1.5)
	gv := reg.GaugeVec("queue_depth", "Depth per queue.", "queue")
	gv.With("fast").Set(3)
	gv.With("slow").SetMax(7)
	gv.With("slow").SetMax(2) // lower: keeps high-water mark

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"temperature 18.5",
		`queue_depth{queue="fast"} 3`,
		`queue_depth{queue="slow"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("counter value = %g", c.Value())
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestGaugeFuncAndInf(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("answer", "Computed at scrape.", func() float64 { return 42 })
	g := reg.Gauge("inf_gauge", "Can be infinite.")
	g.Set(math.Inf(1))
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "answer 42") {
		t.Errorf("missing gauge func sample:\n%s", out)
	}
	if !strings.Contains(out, "inf_gauge +Inf") {
		t.Errorf("missing +Inf spelling:\n%s", out)
	}
}

func TestExpositionParsesCleanly(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A counter.").Add(4)
	reg.CounterVec("b_total", "With labels.", "route", "status").With(`/v1/x"y\z`, "200").Inc()
	h := reg.HistogramVec("c_seconds", "Labeled histogram.", []float64{0.5, 2}, "route")
	h.With("/v1/run").Observe(1)
	h.With("/v1/run").Observe(99)
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, b.String())
	}
	if fams["a_total"].Type != "counter" || len(fams["a_total"].Samples) != 1 || fams["a_total"].Samples[0].Value != 4 {
		t.Errorf("a_total = %+v", fams["a_total"])
	}
	bt := fams["b_total"].Samples[0]
	if bt.Labels["route"] != `/v1/x"y\z` || bt.Labels["status"] != "200" {
		t.Errorf("label escaping round-trip broken: %+v", bt.Labels)
	}
	if got := len(fams["c_seconds"].Samples); got != 5 { // 3 buckets + sum + count
		t.Errorf("c_seconds samples = %d", got)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := []string{
		"no_type_decl 1\n# TYPE other counter\nother 2\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n",
		"# TYPE x wat\nx 1\n",
		"# TYPE c counter\nc{bad name=\"v\"} 1\n",
	}
	for i, c := range cases {
		if _, err := ParseProm(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected parse error for:\n%s", i, c)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "x")
	v := reg.CounterVec("m_total", "x", "who")
	h := reg.Histogram("d", "x", []float64{1, 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				v.With("worker").Inc()
				h.Observe(float64(i % 20))
				if i%50 == 0 {
					var b strings.Builder
					_ = reg.WriteProm(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Errorf("counter = %g, want 1600", c.Value())
	}
	if h.Count() != 1600 {
		t.Errorf("histogram count = %d", h.Count())
	}
	snap := Snapshot(reg)
	if snap.Runtime.Goroutines <= 0 || len(snap.Metrics) != 3 {
		t.Errorf("snapshot = %+v", snap.Runtime)
	}
}

func TestSnapshotMetricsShape(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("r_total", "x", "algo").With("spillbound").Add(2)
	h := reg.Histogram("s", "x", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	snap := reg.SnapshotMetrics()
	if len(snap) != 2 {
		t.Fatalf("families = %d", len(snap))
	}
	var rs, ss *FamilySnapshot
	for i := range snap {
		switch snap[i].Name {
		case "r_total":
			rs = &snap[i]
		case "s":
			ss = &snap[i]
		}
	}
	if rs == nil || ss == nil {
		t.Fatalf("missing families: %+v", snap)
	}
	if rs.Series[0].Labels["algo"] != "spillbound" || rs.Series[0].Value != 2 {
		t.Errorf("counter series = %+v", rs.Series[0])
	}
	if ss.Series[0].Count != 2 || ss.Series[0].Sum != 3.5 {
		t.Errorf("histogram series = %+v", ss.Series[0])
	}
	if got := ss.Series[0].Buckets; len(got) != 2 || got[0].Count != 1 || got[1].Count != 2 || got[1].LE != "+Inf" {
		t.Errorf("buckets = %+v", got)
	}
}
