package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the process-metrics half of the telemetry layer: a
// dependency-free counter/gauge/histogram registry exposed in the Prometheus
// text exposition format (version 0.0.4). Counters and gauges are single
// atomically-updated float64 cells; histograms use fixed buckets with atomic
// per-bucket counts, so the hot path never takes the registry lock.

// Registry holds a set of metric families. Registration (Counter, Gauge,
// Histogram, their Vec variants, GaugeFunc) is expected at construction
// time and panics on invalid or duplicate names — a programming error, like
// redefining a flag. Updates and exposition are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed label schema.
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histogram upper bounds, ascending, no +Inf
	fn              func() float64

	mu     sync.Mutex
	series map[string]*series
}

// series is one label-value combination's data cells.
type series struct {
	labelValues []string
	bits        atomic.Uint64   // counter/gauge value as float64 bits
	counts      []atomic.Uint64 // histogram per-bucket (non-cumulative); last is +Inf
	sumBits     atomic.Uint64
	count       atomic.Uint64

	// exMu guards exemplars, the last trace-linked observation per
	// histogram bucket (nil until the first ObserveTrace). Exemplars are
	// off the hot path — only trace-sampled observations take the lock.
	exMu      sync.Mutex
	exemplars []exemplar
}

// exemplar links one histogram bucket to the trace that last landed in it
// (OpenMetrics exemplar: `... # {trace_id="..."} value`).
type exemplar struct {
	traceID string
	value   float64
}

// addFloat atomically adds v to a float64-bits cell.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// maxFloat atomically raises a float64-bits cell to at least v.
func maxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and installs a family.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic("telemetry: invalid metric name " + f.name)
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic("telemetry: invalid label name " + l + " on " + f.name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic("telemetry: duplicate metric " + f.name)
	}
	f.series = make(map[string]*series)
	r.families[f.name] = f
	return f
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// with resolves (creating on first use) the series for the label values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.typ == "histogram" {
			s.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0; negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// Value reads the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.with(values)} }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds v (possibly negative).
func (g *Gauge) Add(v float64) { addFloat(&g.s.bits, v) }

// SetMax raises the gauge to at least v (a high-water mark).
func (g *Gauge) SetMax(v float64) { maxFloat(&g.s.bits, v) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.with(values)} }

// Histogram is a fixed-bucket distribution.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.s.counts[i].Add(1)
	h.s.count.Add(1)
	addFloat(&h.s.sumBits, v)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// ObserveTrace records one sample and, when traceID is non-empty, stores it
// as the landing bucket's exemplar: the OpenMetrics exposition
// (WriteOpenMetrics) then links that bucket to the trace, so a dashboard's
// "what made this bucket move" click lands on a span tree.
func (h *Histogram) ObserveTrace(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.s.exMu.Lock()
	if h.s.exemplars == nil {
		h.s.exemplars = make([]exemplar, len(h.buckets)+1)
	}
	h.s.exemplars[i] = exemplar{traceID: traceID, value: v}
	h.s.exMu.Unlock()
}

// exemplarAt snapshots bucket i's exemplar ("" when none was recorded).
func (s *series) exemplarAt(i int) (exemplar, bool) {
	s.exMu.Lock()
	defer s.exMu.Unlock()
	if s.exemplars == nil || s.exemplars[i].traceID == "" {
		return exemplar{}, false
	}
	return s.exemplars[i], true
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values, creating on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{v.f.with(values), v.f.buckets}
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter"})
	return &Counter{f.with(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, typ: "counter", labels: labels})}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge"})
	return &Gauge{f.with(nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, typ: "gauge", labels: labels})}
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", fn: fn})
}

// Histogram registers an unlabeled fixed-bucket histogram. Bounds must be
// ascending; the implicit +Inf bucket is added automatically.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: "histogram", buckets: checkBuckets(name, buckets)})
	return &Histogram{f.with(nil), f.buckets}
}

// HistogramVec registers a labeled fixed-bucket histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{
		name: name, help: help, typ: "histogram",
		buckets: checkBuckets(name, buckets), labels: labels,
	})}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram " + name + " buckets not ascending")
		}
	}
	return append([]float64(nil), buckets...)
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots a family's series in label-value order.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	f.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool {
		return strings.Join(ss[i].labelValues, "\x00") < strings.Join(ss[j].labelValues, "\x00")
	})
	return ss
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4). Exemplars are omitted — the classic format has no
// syntax for them; scrape WriteOpenMetrics to see them.
func (r *Registry) WriteProm(w io.Writer) error { return r.writeText(w, false) }

// WriteOpenMetrics writes the registry in an OpenMetrics-flavored text
// exposition: the classic format plus histogram bucket exemplars
// (`... # {trace_id="..."} value`) and the terminal `# EOF` marker. Served
// when a scraper negotiates Accept: application/openmetrics-text.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.writeText(w, true) }

func (r *Registry) writeText(w io.Writer, openMetrics bool) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		for _, s := range f.sortedSeries() {
			base := labelString(f.labels, s.labelValues, "", "")
			if f.typ != "histogram" {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, base, formatValue(math.Float64frombits(s.bits.Load())))
				continue
			}
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += s.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d", f.name,
					labelString(f.labels, s.labelValues, "le", formatValue(ub)), cum)
				if openMetrics {
					if ex, ok := s.exemplarAt(i); ok {
						fmt.Fprintf(&b, " # {trace_id=\"%s\"} %s", escapeLabel(ex.traceID), formatValue(ex.value))
					}
				}
				b.WriteByte('\n')
			}
			cum += s.counts[len(f.buckets)].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d", f.name,
				labelString(f.labels, s.labelValues, "le", "+Inf"), cum)
			if openMetrics {
				if ex, ok := s.exemplarAt(len(f.buckets)); ok {
					fmt.Fprintf(&b, " # {trace_id=\"%s\"} %s", escapeLabel(ex.traceID), formatValue(ex.value))
				}
			}
			b.WriteByte('\n')
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, base, formatValue(math.Float64frombits(s.sumBits.Load())))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, base, s.count.Load())
		}
	}
	if openMetrics {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram "le" bound); empty when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: shortest round-trip float, with the
// Prometheus spellings for the infinities.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FamilySnapshot is one metric family in a point-in-time snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labeled series' data.
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// SnapshotMetrics captures every family's current values — the JSON twin of
// the text exposition, served by /v1/debug/stats.
func (r *Registry) SnapshotMetrics() []FamilySnapshot {
	var out []FamilySnapshot
	for _, f := range r.sortedFamilies() {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		if f.fn != nil {
			fs.Series = []SeriesSnapshot{{Value: f.fn()}}
			out = append(out, fs)
			continue
		}
		for _, s := range f.sortedSeries() {
			ss := SeriesSnapshot{}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					ss.Labels[n] = s.labelValues[i]
				}
			}
			if f.typ == "histogram" {
				cum := uint64(0)
				for i, ub := range f.buckets {
					cum += s.counts[i].Load()
					ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: formatValue(ub), Count: cum})
				}
				cum += s.counts[len(f.buckets)].Load()
				ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: "+Inf", Count: cum})
				ss.Count = s.count.Load()
				ss.Sum = math.Float64frombits(s.sumBits.Load())
			} else {
				ss.Value = math.Float64frombits(s.bits.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// RuntimeStats is the process-level half of a debug snapshot.
type RuntimeStats struct {
	Goroutines     int    `json:"goroutines"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	TotalAllocated uint64 `json:"totalAllocBytes"`
	SysBytes       uint64 `json:"sysBytes"`
	NumGC          uint32 `json:"numGC"`
}

// Stats is the full debug snapshot served by /v1/debug/stats.
type Stats struct {
	Runtime RuntimeStats     `json:"runtime"`
	Metrics []FamilySnapshot `json:"metrics"`
}

// Snapshot captures the registry together with process runtime statistics.
func Snapshot(r *Registry) Stats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return Stats{
		Runtime: RuntimeStats{
			Goroutines:     runtime.NumGoroutine(),
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
			HeapAllocBytes: m.HeapAlloc,
			TotalAllocated: m.TotalAlloc,
			SysBytes:       m.Sys,
			NumGC:          m.NumGC,
		},
		Metrics: r.SnapshotMetrics(),
	}
}
