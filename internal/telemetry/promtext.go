package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is a small parser for the Prometheus text exposition format —
// the consumer half of the registry: the metrics-smoke tooling scrapes
// /v1/metrics and validates with ParseProm that the output is well-formed
// (declared families, legal names, parsable values, cumulative histogram
// buckets terminated by +Inf), and tests assert on the parsed samples.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name (including _bucket/_sum/_count).
	Name string
	// Labels holds the label pairs, "le" included.
	Labels map[string]string
	// Value is the sample value.
	Value float64
	// Exemplar is the OpenMetrics exemplar attached to the sample
	// (`... # {trace_id="..."} value`), nil when absent.
	Exemplar *Exemplar
}

// Exemplar is one parsed OpenMetrics exemplar.
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one declared metric family with its samples.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseProm parses and validates a text exposition stream. It returns the
// families by name, or the first syntax or structural error encountered.
func ParseProm(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			if !validName(name) {
				return nil, fmt.Errorf("line %d: bad HELP name %q", lineNo, name)
			}
			fam := fams[name]
			if fam == nil {
				fam = &ParsedFamily{Name: name}
				fams[name] = fam
			}
			fam.Help = strings.TrimPrefix(strings.TrimPrefix(line, "# HELP "), name+" ")
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			fam := fams[name]
			if fam == nil {
				fam = &ParsedFamily{Name: name}
				fams[name] = fam
			}
			if fam.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			fam.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := fams[familyOf(s.Name, fams)]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", fam.Name)
		}
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyOf resolves a sample name to its declaring family, stripping the
// histogram suffixes when the base name is a declared histogram.
func familyOf(name string, fams map[string]*ParsedFamily) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := fams[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// parseSample parses `name{label="value",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := closeBrace(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// After the value: nothing, a legal trailing timestamp, or an
	// OpenMetrics exemplar (`# {labels} value`). Take the first field as
	// the value, then classify the remainder.
	tail := ""
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		tail = strings.TrimSpace(rest[j+1:])
		rest = rest[:j]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	if strings.HasPrefix(tail, "#") {
		ex, err := parseExemplar(strings.TrimSpace(tail[1:]))
		if err != nil {
			return s, fmt.Errorf("bad exemplar on %q: %v", s.Name, err)
		}
		s.Exemplar = ex
	}
	return s, nil
}

// parseExemplar parses the OpenMetrics exemplar body `{labels} value [ts]`.
func parseExemplar(body string) (*Exemplar, error) {
	if len(body) == 0 || body[0] != '{' {
		return nil, fmt.Errorf("exemplar missing label set")
	}
	end := closeBrace(body)
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar label set")
	}
	ex := &Exemplar{Labels: map[string]string{}}
	if err := parseLabels(body[1:end], ex.Labels); err != nil {
		return nil, err
	}
	rest := strings.TrimSpace(body[end+1:])
	if rest == "" {
		return nil, fmt.Errorf("exemplar missing value")
	}
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j] // trailing exemplar timestamp is legal
	}
	v, err := parseValue(rest)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %v", rest, err)
	}
	ex.Value = v
	return ex, nil
}

// closeBrace finds the '}' terminating the label set opened at s[0],
// skipping quoted label values (which may legally contain braces). It must
// be the first unquoted brace, not the last on the line — an OpenMetrics
// exemplar appends its own braced label set after the value.
func closeBrace(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair near %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !validName(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return fmt.Errorf("label %q value not quoted", name)
		}
		body = body[1:]
		var val strings.Builder
		for {
			if len(body) == 0 {
				return fmt.Errorf("unterminated value for label %q", name)
			}
			c := body[0]
			body = body[1:]
			if c == '\\' {
				if len(body) == 0 {
					return fmt.Errorf("dangling escape in label %q", name)
				}
				switch body[0] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[0])
				default:
					return fmt.Errorf("bad escape \\%c in label %q", body[0], name)
				}
				body = body[1:]
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		into[name] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(body), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogram validates histogram structure per label set: cumulative
// non-decreasing buckets, a terminal +Inf bucket, and _count equal to it.
func checkHistogram(fam *ParsedFamily) error {
	type hist struct {
		buckets  []Sample
		count    float64
		hasCount bool
	}
	groups := map[string]*hist{}
	groupKey := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k + "=" + labels[k] + "\x00")
		}
		return b.String()
	}
	for _, s := range fam.Samples {
		g := groups[groupKey(s.Labels)]
		if g == nil {
			g = &hist{}
			groups[groupKey(s.Labels)] = g
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			g.count = s.Value
			g.hasCount = true
		}
	}
	for _, g := range groups {
		prev := -1.0
		sawInf := false
		for _, b := range g.buckets {
			le, ok := b.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", fam.Name)
			}
			if b.Value < prev {
				return fmt.Errorf("histogram %s: bucket le=%s not cumulative", fam.Name, le)
			}
			prev = b.Value
			if le == "+Inf" {
				sawInf = true
				if g.hasCount && b.Value != g.count {
					return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", fam.Name, b.Value, g.count)
				}
			}
		}
		if len(g.buckets) > 0 && !sawInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", fam.Name)
		}
	}
	return nil
}
