package telemetry

import (
	"strings"
	"testing"
)

const exTrace = "4bf92f3577b34da6a3ce929d0e0e4736"

func TestObserveTraceExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "request latency", []float64{0.1, 1, 10})
	h.ObserveTrace(0.05, exTrace) // first bucket
	h.ObserveTrace(5, strings.Repeat("ab", 16))
	h.Observe(0.5) // plain observation leaves its bucket exemplar-free

	var om, prom strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	// The classic exposition has no exemplar syntax and no EOF marker.
	if strings.Contains(prom.String(), "trace_id") || strings.Contains(prom.String(), "# EOF") {
		t.Errorf("WriteProm leaked OpenMetrics syntax:\n%s", prom.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Errorf("OpenMetrics exposition missing terminal # EOF:\n%s", om.String())
	}

	fams, err := ParseProm(strings.NewReader(om.String()))
	if err != nil {
		t.Fatalf("OpenMetrics output does not parse: %v\n%s", err, om.String())
	}
	fam := fams["req_seconds"]
	if fam == nil {
		t.Fatal("family missing from parse")
	}
	byLE := map[string]*Exemplar{}
	for _, s := range fam.Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			byLE[s.Labels["le"]] = s.Exemplar
		}
	}
	ex := byLE["0.1"]
	if ex == nil || ex.Labels["trace_id"] != exTrace || ex.Value != 0.05 {
		t.Errorf("bucket le=0.1 exemplar = %+v, want trace %s value 0.05", ex, exTrace)
	}
	if ex := byLE["10"]; ex == nil || ex.Labels["trace_id"] != strings.Repeat("ab", 16) || ex.Value != 5 {
		t.Errorf("bucket le=10 exemplar = %+v", ex)
	}
	// 0.5 landed in the le=1 bucket via plain Observe: no exemplar there.
	if byLE["1"] != nil {
		t.Errorf("plain Observe attached an exemplar: %+v", byLE["1"])
	}
}

func TestObserveTraceOverwriteAndEmptyID(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1})
	h.ObserveTrace(0.5, "") // empty trace ID records the sample but no exemplar
	var out strings.Builder
	if err := r.WriteOpenMetrics(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "trace_id") {
		t.Errorf("empty trace ID produced an exemplar:\n%s", out.String())
	}
	if h.Count() != 1 {
		t.Errorf("count = %d, want 1", h.Count())
	}

	h.ObserveTrace(0.3, "aaaa")
	h.ObserveTrace(0.7, "bbbb") // same bucket: last observation wins
	out.Reset()
	if err := r.WriteOpenMetrics(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `# {trace_id="bbbb"} 0.7`) {
		t.Errorf("exemplar not overwritten by the latest observation:\n%s", out.String())
	}
	if strings.Contains(out.String(), "aaaa") {
		t.Errorf("stale exemplar survived:\n%s", out.String())
	}
}

func TestParsePromExemplarSyntax(t *testing.T) {
	// Hand-written exposition exercising the parser's exemplar path: sample
	// labels and exemplar labels on one line, exemplar timestamps, and a
	// quoted label value containing the brace that used to confuse the
	// label-set scanner.
	src := `# HELP d demo
# TYPE d histogram
d_bucket{op="a}b",le="1"} 3 # {trace_id="cafe"} 0.5 1700000000.5
d_bucket{op="a}b",le="+Inf"} 3
d_sum{op="a}b"} 1.5
d_count{op="a}b"} 3
# EOF
`
	fams, err := ParseProm(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := fams["d"].Samples[0]
	if s.Labels["op"] != "a}b" || s.Labels["le"] != "1" || s.Value != 3 {
		t.Fatalf("sample parsed as %+v", s)
	}
	if s.Exemplar == nil || s.Exemplar.Labels["trace_id"] != "cafe" || s.Exemplar.Value != 0.5 {
		t.Fatalf("exemplar parsed as %+v", s.Exemplar)
	}

	bad := []string{
		"# TYPE x counter\nx 1 # trace_id\n",            // exemplar without label set
		"# TYPE x counter\nx 1 # {trace_id=\"a\"}\n",    // exemplar without value
		"# TYPE x counter\nx 1 # {trace_id=\"a} nope\n", // unterminated exemplar labels
	}
	for _, src := range bad {
		if _, err := ParseProm(strings.NewReader(src)); err == nil {
			t.Errorf("ParseProm accepted %q", src)
		}
	}
}

func TestCloseBrace(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{`{a="b"}`, 6},
		{`{a="}"} trailing }`, 6},    // quoted brace skipped
		{`{a="\"}"}`, 8},             // escaped quote inside value
		{`{a="b"} 1 # {c="d"} 2`, 6}, // first unquoted brace, not the last
		{`{a="unterminated`, -1},     // no closing brace
		{`{a="\\"}`, 7},              // escaped backslash does not eat the quote
	}
	for _, c := range cases {
		if got := closeBrace(c.in); got != c.want {
			t.Errorf("closeBrace(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
