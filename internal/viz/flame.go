package viz

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Flamegraph renders a trace's span tree as a standalone SVG flamegraph:
// one row per tree depth, the X axis spanning the root span's work units
// (the cost ledger for runs, grid cells for builds), span rectangles
// colored by kind, zero-width markers as thin ticks. The render is a pure
// function of the tree, so a deterministic tree yields a byte-identical
// document.

// Flamegraph geometry.
const (
	flameWidth  = 960 // drawable span width, px
	flameRowH   = 22  // row height, px
	flamePad    = 8   // outer margin
	flameHeader = 34  // title block height
	flameMinW   = 2.0 // minimum rendered span width, px
)

// kindColor maps a span kind to its fill.
func kindColor(kind string) string {
	switch kind {
	case trace.KindRun, trace.KindBuild:
		return "#64748b" // slate roots
	case trace.KindContour:
		return "#93c5fd" // light blue contour bands
	case trace.KindPlanExec:
		return "#22c55e" // green regular executions
	case trace.KindSpillExec:
		return "#0d9488" // teal spill executions
	case trace.KindBudgetSpend:
		return "#bbf7d0" // pale green engine accounting
	case trace.KindGuard:
		return "#d97706" // amber guard interventions
	case trace.KindPrune:
		return "#a855f7" // purple half-space prunes
	case trace.KindRetry:
		return "#f43f5e" // red retries
	case trace.KindDegrade:
		return "#475569" // slate native fallback
	case trace.KindCheckpoint:
		return "#2563eb" // blue durable snapshots
	case trace.KindResume:
		return "#1d4ed8" // dark blue resume marker
	case trace.KindBuildChunk:
		return "#22c55e"
	case trace.KindBuildMemo:
		return "#a855f7"
	}
	return "#cbd5e1"
}

// Flamegraph renders the span tree. A nil or empty tree renders a small
// document stating so, never an invalid one.
func Flamegraph(t *trace.Tree) string {
	var out strings.Builder
	if t == nil || t.Root == nil {
		out.WriteString(`<svg xmlns="http://www.w3.org/2000/svg" width="320" height="40">` + "\n")
		out.WriteString(`<text x="8" y="24" font-family="monospace" font-size="12">empty trace</text>` + "\n")
		out.WriteString("</svg>\n")
		return out.String()
	}
	depth := 0
	var measure func(sp *trace.Span, d int)
	measure = func(sp *trace.Span, d int) {
		if d > depth {
			depth = d
		}
		for _, c := range sp.Children {
			measure(c, d+1)
		}
	}
	measure(t.Root, 0)

	span := t.Root.End - t.Root.Start
	if span <= 0 {
		span = 1
	}
	width := flameWidth + 2*flamePad
	height := flameHeader + (depth+1)*flameRowH + 2*flamePad
	fmt.Fprintf(&out, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&out, `<text x="%d" y="%d" font-size="13">trace %s — %d spans (%s)</text>`+"\n",
		flamePad, flamePad+14, escape(t.TraceID), t.Spans, escape(t.Kind))

	x := func(v float64) float64 {
		return flamePad + (v-t.Root.Start)/span*flameWidth
	}
	var draw func(sp *trace.Span, d int)
	draw = func(sp *trace.Span, d int) {
		y := flameHeader + d*flameRowH + flamePad
		x0, x1 := x(sp.Start), x(sp.End)
		w := x1 - x0
		if w < flameMinW {
			w = flameMinW
		}
		fmt.Fprintf(&out, `<g><title>%s [%g, %g] %s</title>`, escape(sp.Name), sp.Start, sp.End, escape(sp.Kind))
		fmt.Fprintf(&out, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#ffffff" stroke-width="0.5"/>`,
			x0, y, w, flameRowH-3, kindColor(sp.Kind))
		// Label spans wide enough to hold any text; ~6.6px per monospace char.
		if maxChars := int(w / 6.6); maxChars >= 4 {
			label := sp.Name
			if len(label) > maxChars {
				label = label[:maxChars-1] + "…"
			}
			fmt.Fprintf(&out, `<text x="%.1f" y="%d" fill="#0f172a">%s</text>`, x0+2, y+flameRowH-8, escape(label))
		}
		out.WriteString("</g>\n")
		for _, c := range sp.Children {
			draw(c, d+1)
		}
	}
	draw(t.Root, 0)
	out.WriteString("</svg>\n")
	return out.String()
}
