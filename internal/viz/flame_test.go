package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

func flameTree() *trace.Tree {
	return trace.FromRun("4bf92f3577b34da6a3ce929d0e0e4736", []telemetry.Event{
		{Kind: telemetry.ContourEnter, Contour: 0, Dim: -1},
		{Kind: telemetry.PlanExec, PlanID: 3, Budget: 10, Spent: 10, Dim: -1},
		{Kind: telemetry.ContourEnter, Contour: 1, Dim: -1},
		{Kind: telemetry.SpillExec, PlanID: 5, Budget: 20, Spent: 20, Dim: 0},
		{Kind: telemetry.Done, Algorithm: "spillbound", TotalCost: 30, SubOpt: 1.5, Completed: true, Dim: -1},
	})
}

// wellFormed parses the SVG with the XML tokenizer and counts elements.
func wellFormed(t *testing.T, svg string) int {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	n := 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("SVG does not parse: %v\n%s", err, svg)
		}
		if _, ok := tok.(xml.StartElement); ok {
			n++
		}
	}
	return n
}

func TestFlamegraphStructure(t *testing.T) {
	tree := flameTree()
	svg := Flamegraph(tree)
	if n := wellFormed(t, svg); n < 5 {
		t.Errorf("flamegraph has only %d elements", n)
	}
	// One rect per span, plus header text.
	if got := strings.Count(svg, "<rect "); got != tree.Spans {
		t.Errorf("%d rects for %d spans", got, tree.Spans)
	}
	if !strings.Contains(svg, tree.TraceID) {
		t.Error("header does not name the trace")
	}
	// The root and at least one execution carry their kind colors.
	for _, color := range []string{"#64748b", "#22c55e", "#0d9488", "#93c5fd"} {
		if !strings.Contains(svg, color) {
			t.Errorf("kind color %s missing", color)
		}
	}
}

func TestFlamegraphDeterministic(t *testing.T) {
	if Flamegraph(flameTree()) != Flamegraph(flameTree()) {
		t.Error("same tree rendered two different documents")
	}
}

func TestFlamegraphEmptyAndNil(t *testing.T) {
	for _, tree := range []*trace.Tree{nil, {}} {
		svg := Flamegraph(tree)
		wellFormed(t, svg)
		if !strings.Contains(svg, "empty trace") {
			t.Errorf("empty-tree document: %q", svg)
		}
	}
}

func TestFlamegraphEscapesNames(t *testing.T) {
	// Span names flow into text and title nodes; markup must be escaped so
	// a hostile algorithm name cannot break the document.
	tree := trace.FromRun("4bf92f3577b34da6a3ce929d0e0e4736", []telemetry.Event{
		{Kind: telemetry.Done, Algorithm: `<script>"x"&y</script>`, TotalCost: 1, Dim: -1},
	})
	svg := Flamegraph(tree)
	wellFormed(t, svg)
	if strings.Contains(svg, "<script>") {
		t.Error("unescaped markup in span name")
	}
}
