package viz

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/spillbound"
	"repro/internal/workload"
)

func build2D(t *testing.T, res int) *ess.Space {
	t.Helper()
	cat := catalog.TPCDS(10)
	q, err := workload.Q91(2).Build(cat)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(2, res, 1e-6))
}

func build3D(t *testing.T) *ess.Space {
	t.Helper()
	cat := catalog.TPCDS(10)
	q, err := workload.Q91(3).Build(cat)
	if err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(3, 4, 1e-6))
}

func TestContourMapRenders(t *testing.T) {
	s := build2D(t, 12)
	out, err := ContourMap(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 12 rows + axis + 2 label lines.
	if len(lines) != 1+12+1+2 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "contour map") {
		t.Error("missing header")
	}
	// The origin (bottom-left) is on the cheapest contour (band 0) and the
	// terminus (top-right) on the most expensive band.
	bottom := lines[1+12-1]
	top := lines[1]
	if !strings.Contains(bottom, "|0") {
		t.Errorf("bottom row should start at band 0: %q", bottom)
	}
	if strings.HasSuffix(top, "0") {
		t.Errorf("top row should end on an expensive band: %q", top)
	}
}

func TestContourMapBandsMonotone(t *testing.T) {
	s := build2D(t, 10)
	out, err := ContourMap(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Along each row, the band character must be nondecreasing in
	// band-index order (left to right = increasing selectivity).
	idx := func(c byte) int { return strings.IndexByte(bandChars, c) }
	for _, line := range strings.Split(out, "\n") {
		bar := strings.IndexByte(line, '|')
		if bar < 0 {
			continue
		}
		row := line[bar+1:]
		prev := -1
		for i := 0; i < len(row); i++ {
			b := idx(row[i])
			if b < 0 {
				t.Fatalf("unexpected rune %q in map row", row[i])
			}
			if b < prev {
				t.Fatalf("bands decrease along row: %q", row)
			}
			prev = b
		}
	}
}

func TestFig7Overlay(t *testing.T) {
	s := build2D(t, 16)
	truth := cost.Location{0.04, 0.1}
	run := spillbound.NewRunner(s).Run(engine.New(s.Model, truth))
	out, err := Fig7(s, 2, run, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "X") {
		t.Error("truth marker missing")
	}
	if strings.Count(out, "*") < 3 {
		t.Errorf("Manhattan profile too short:\n%s", out)
	}
	if !strings.Contains(out, "q_run") {
		t.Error("legend missing")
	}
}

func TestRenderRejectsNon2D(t *testing.T) {
	s := build3D(t)
	if _, err := ContourMap(s, 2); err == nil {
		t.Error("3D map should be rejected")
	}
	if _, err := Fig7(s, 2, spillbound.Outcome{}, cost.Location{1, 1, 1}); err == nil {
		t.Error("3D Fig7 should be rejected")
	}
}

func TestBandChar(t *testing.T) {
	if bandChar(0) != '0' || bandChar(10) != 'a' {
		t.Error("band characters misaligned")
	}
	if bandChar(-1) != '?' || bandChar(1000) != '+' {
		t.Error("band character bounds misbehave")
	}
}

func TestPlanDiagram(t *testing.T) {
	s := build2D(t, 12)
	out, err := PlanDiagram(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan diagram") {
		t.Error("header missing")
	}
	// Must show at least two distinct plan labels when the POSP is diverse.
	if len(distinctBodyRunes(out)) < 2 {
		t.Errorf("plan diagram shows a single region:\n%s", out)
	}
	if _, err := PlanDiagram(build3D(t), nil); err == nil {
		t.Error("3D plan diagram should be rejected")
	}
}

// distinctBodyRunes collects the cell labels from a rendered map.
func distinctBodyRunes(out string) map[byte]bool {
	seen := map[byte]bool{}
	for _, line := range strings.Split(out, "\n") {
		bar := strings.IndexByte(line, '|')
		if bar < 0 {
			continue
		}
		for i := bar + 1; i < len(line); i++ {
			seen[line[i]] = true
		}
	}
	return seen
}
