// Package viz renders 2-dimensional error-prone selectivity spaces as text:
// the iso-cost contour bands of the optimal cost surface and, overlaid, the
// Manhattan discovery profile of a SpillBound run — a textual reproduction
// of the paper's Fig. 7 ("Execution trace for TPC-DS Query 91").
package viz

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/spillbound"
)

// bandChars maps a contour index to its display rune: digits, then
// lowercase letters.
const bandChars = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

func bandChar(i int) byte {
	if i < 0 {
		return '?'
	}
	if i >= len(bandChars) {
		return '+'
	}
	return bandChars[i]
}

// ContourMap renders the covering-contour index of every grid cell of a 2D
// space: cell (x,y) shows the first contour whose budget covers the
// optimal cost there. The Y (dimension 1) axis points up.
func ContourMap(s *ess.Space, ratio float64) (string, error) {
	return render(s, ratio, nil, nil)
}

// PlanDiagram renders the 2D plan diagram (Picasso-style): each cell shows
// which POSP plan is optimal there, labelled by plan index. The optimality
// regions are the colored areas of the paper's Fig. 3.
func PlanDiagram(s *ess.Space, a interface{ PlanIDAt(int) int }) (string, error) {
	g := s.Grid
	if g.D != 2 {
		return "", fmt.Errorf("viz: can only render 2D plan diagrams, have %dD", g.D)
	}
	nx, ny := g.Res(0), g.Res(1)
	var out strings.Builder
	fmt.Fprintf(&out, "plan diagram (%d POSP plans; cells labelled by plan id)\n", len(s.Plans()))
	for y := ny - 1; y >= 0; y-- {
		out.WriteString("  |")
		for x := 0; x < nx; x++ {
			out.WriteByte(bandChar(a.PlanIDAt(g.Flatten([]int{x, y}))))
		}
		out.WriteByte('\n')
	}
	out.WriteString("  +" + strings.Repeat("-", nx) + "\n")
	return out.String(), nil
}

// Fig7 renders the contour map with a SpillBound run's Manhattan profile
// overlaid: '*' marks the running location's path from the origin, 'X' the
// true location q_a.
func Fig7(s *ess.Space, ratio float64, out spillbound.Outcome, truth cost.Location) (string, error) {
	path, err := manhattanPath(s, out, truth)
	if err != nil {
		return "", err
	}
	return render(s, ratio, path, truth)
}

// manhattanPath converts a run's executions into the sequence of grid
// vertices the running location q_run visits: axis-parallel moves from the
// origin, each spill execution advancing its dimension to the learnt value
// (paper Sec 4.1.1).
func manhattanPath(s *ess.Space, out spillbound.Outcome, truth cost.Location) ([][2]int, error) {
	g := s.Grid
	if g.D != 2 {
		return nil, fmt.Errorf("viz: Manhattan profile needs a 2D space, have %dD", g.D)
	}
	cur := [2]int{0, 0}
	path := [][2]int{cur}
	push := func(p [2]int) {
		if p != path[len(path)-1] {
			path = append(path, p)
		}
	}
	for _, x := range out.Executions {
		if x.Dim < 0 || x.Learned <= 0 {
			continue
		}
		idx := g.CeilIndex(x.Dim, x.Learned)
		if idx > cur[x.Dim] {
			cur[x.Dim] = idx
			push(cur)
		}
	}
	// The terminal phase implicitly resolves the remaining dimension at
	// the truth.
	for d := 0; d < 2; d++ {
		if idx := g.CeilIndex(d, truth[d]); idx > cur[d] {
			cur[d] = idx
			push(cur)
		}
	}
	return path, nil
}

// render paints the map; path (vertex list) and truth may be nil.
func render(s *ess.Space, ratio float64, path [][2]int, truth cost.Location) (string, error) {
	g := s.Grid
	if g.D != 2 {
		return "", fmt.Errorf("viz: can only render 2D spaces, have %dD", g.D)
	}
	costs := s.ContourCosts(ratio)
	nx, ny := g.Res(0), g.Res(1)

	// Base layer: contour bands.
	cells := make([][]byte, ny)
	for y := range cells {
		cells[y] = make([]byte, nx)
		for x := range cells[y] {
			ci := g.Flatten([]int{x, y})
			band := ess.CoveringContour(costs, s.CostAt(ci))
			cells[y][x] = bandChar(band)
		}
	}
	// Trace layer.
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		dx, dy := sign(b[0]-a[0]), sign(b[1]-a[1])
		for p := a; p != b; p[0], p[1] = p[0]+dx, p[1]+dy {
			cells[p[1]][p[0]] = '*'
		}
		cells[b[1]][b[0]] = '*'
	}
	if truth != nil {
		tx, ty := g.CeilIndex(0, truth[0]), g.CeilIndex(1, truth[1])
		cells[ty][tx] = 'X'
	}

	var out strings.Builder
	fmt.Fprintf(&out, "ESS contour map (%d contours, C_min=%.3g, C_max=%.3g; bands labelled by covering contour)\n",
		len(costs), s.MinCost(), s.MaxCost())
	if path != nil {
		out.WriteString("'*' = q_run Manhattan profile, 'X' = q_a\n")
	}
	// Rows top-down (max y first), with sparse Y-axis selectivity labels.
	for y := ny - 1; y >= 0; y-- {
		label := "          "
		if y == ny-1 || y == 0 || y == ny/2 {
			label = fmt.Sprintf("%9.0e ", g.Points[1][y])
		}
		out.WriteString(label)
		out.WriteString("|")
		out.Write(cells[y])
		out.WriteByte('\n')
	}
	out.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", nx) + "\n")
	lo := fmt.Sprintf("%.0e", g.Points[0][0])
	hi := fmt.Sprintf("%.0e", g.Points[0][nx-1])
	pad := nx - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	out.WriteString(strings.Repeat(" ", 11) + lo + strings.Repeat(" ", pad) + hi + "\n")
	out.WriteString(strings.Repeat(" ", 11) + "dimension 0 selectivity (log scale) →\n")
	return out.String(), nil
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
