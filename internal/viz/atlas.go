package viz

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Atlas is the per-regime robustness atlas of a 2D session: for every
// (algorithm, regime) pair, a map of the worst sub-optimality observed at
// each ESS grid cell across the regime's scenarios, overlaid with the
// guardrail interventions that occurred there. It is pure render data —
// assembled by the session sweep, serialized as JSON or drawn as SVG.
type Atlas struct {
	// Query names the session's benchmark query.
	Query string `json:"query"`
	// NX and NY are the ESS grid resolutions (dimension 0 and 1).
	NX int `json:"nx"`
	NY int `json:"ny"`
	// SelX and SelY are the grid's selectivity points per dimension.
	SelX []float64 `json:"sel_x"`
	SelY []float64 `json:"sel_y"`
	// Regimes lists the regime labels in sweep order; Maps holds one entry
	// per (algorithm, regime) pair, regime-major within each algorithm.
	Regimes []string   `json:"regimes"`
	Maps    []AtlasMap `json:"maps"`
}

// AtlasMap is one algorithm's robustness map within one error regime.
type AtlasMap struct {
	Algorithm string `json:"algorithm"`
	Regime    string `json:"regime"`
	// MSO and ASO aggregate the regime's (scenario, location) evaluations.
	MSO float64 `json:"mso"`
	ASO float64 `json:"aso"`
	// Guard is the guardrail-intervention census ("budget_abort",
	// "ess_escape", "crashed"); Degraded counts Native-plan fallbacks.
	Guard    map[string]int `json:"guard,omitempty"`
	Degraded int            `json:"degraded,omitempty"`
	// SubOpt[ci] is the worst sub-optimality at flat grid cell ci
	// (ci = x*NY + y); 0 marks an unswept cell. Verdict[ci] is the most
	// severe guard verdict observed there ("" when every run was clean).
	SubOpt  []float64 `json:"subopt"`
	Verdict []string  `json:"verdict"`
}

// JSON serializes the atlas, indented, with a trailing newline.
func (a *Atlas) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SVG geometry: fixed-size cells on a panel lattice, regimes as columns and
// algorithms as rows, so the guard overlays line up for visual comparison
// across strategies.
const (
	atlasCell    = 12 // cell edge, px
	atlasPad     = 56 // outer margin (axis + row labels)
	atlasGapX    = 28 // horizontal gap between panels
	atlasGapY    = 44 // vertical gap between panels (panel titles live here)
	atlasLegendH = 34
)

// verdictColor maps a guard verdict to its overlay marker color.
func verdictColor(v string) string {
	switch v {
	case "ess_escape":
		return "#7b2d8b" // purple: the guarantee's last resort
	case "budget_abort":
		return "#d97706" // amber: the watchdog clawed the run back
	case "crashed":
		return "#2563eb" // blue: recoverable by design
	case "degraded":
		return "#475569" // slate: fell back to the native plan
	}
	return ""
}

// heat maps a sub-optimality to a white→red fill on a log2 ramp shared by
// the whole atlas (so panels are directly comparable): white at 1 (optimal),
// saturated red at the atlas-wide maximum. Unswept cells (0) render gray.
func heat(subOpt, max float64) string {
	if subOpt <= 0 {
		return "#e2e8f0"
	}
	t := 0.0
	if max > 1 && subOpt > 1 {
		t = math.Log2(subOpt) / math.Log2(max)
	}
	if t > 1 {
		t = 1
	}
	// Interpolate white (255,255,255) → red (178,24,43).
	r := 255 - int(t*(255-178))
	g := 255 - int(t*(255-24))
	b := 255 - int(t*(255-43))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// SVG renders the atlas as a standalone SVG document: a lattice of heatmap
// panels (regimes across, algorithms down; the Y selectivity axis points
// up), guard verdict markers overlaid per cell, and a shared legend — the
// Graefe-style robustness map extended with the runtime-guard dimension.
func (a *Atlas) SVG() string {
	cols := len(a.Regimes)
	if cols == 0 {
		cols = 1
	}
	rows := (len(a.Maps) + cols - 1) / cols
	if rows == 0 {
		rows = 1
	}
	panelW := a.NX * atlasCell
	panelH := a.NY * atlasCell
	width := atlasPad + cols*(panelW+atlasGapX)
	height := atlasPad + rows*(panelH+atlasGapY) + atlasLegendH

	maxSub := 1.0
	for _, m := range a.Maps {
		if m.MSO > maxSub {
			maxSub = m.MSO
		}
	}

	var out strings.Builder
	fmt.Fprintf(&out, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="monospace" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&out, `<title>robustness atlas: %s</title>`+"\n", escape(a.Query))
	fmt.Fprintf(&out, `<text x="%d" y="16" font-size="13">robustness atlas — %s (suboptimality heat, guard overlays)</text>`+"\n",
		atlasPad, escape(a.Query))

	for mi, m := range a.Maps {
		col, row := mi%cols, mi/cols
		x0 := atlasPad + col*(panelW+atlasGapX)
		y0 := atlasPad + row*(panelH+atlasGapY)
		fmt.Fprintf(&out, `<text x="%d" y="%d">%s / %s  MSO=%.3g ASO=%.3g</text>`+"\n",
			x0, y0-6, escape(m.Algorithm), escape(m.Regime), m.MSO, m.ASO)
		fmt.Fprintf(&out, `<g shape-rendering="crispEdges">`+"\n")
		for x := 0; x < a.NX; x++ {
			for y := 0; y < a.NY; y++ {
				ci := x*a.NY + y
				var sub float64
				if ci < len(m.SubOpt) {
					sub = m.SubOpt[ci]
				}
				// Y axis points up: grid y=0 is the bottom row.
				px := x0 + x*atlasCell
				py := y0 + (a.NY-1-y)*atlasCell
				fmt.Fprintf(&out, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
					px, py, atlasCell, atlasCell, heat(sub, maxSub))
			}
		}
		out.WriteString("</g>\n")
		// Guard overlay markers, drawn above the heat layer.
		for x := 0; x < a.NX; x++ {
			for y := 0; y < a.NY; y++ {
				ci := x*a.NY + y
				if ci >= len(m.Verdict) || m.Verdict[ci] == "" {
					continue
				}
				color := verdictColor(m.Verdict[ci])
				cx := x0 + x*atlasCell + atlasCell/2
				cy := y0 + (a.NY-1-y)*atlasCell + atlasCell/2
				switch m.Verdict[ci] {
				case "ess_escape":
					// Diagonal cross: the run left the enumerated space.
					fmt.Fprintf(&out, `<path d="M%d %dL%d %dM%d %dL%d %d" stroke="%s" stroke-width="1.5"/>`+"\n",
						cx-3, cy-3, cx+3, cy+3, cx-3, cy+3, cx+3, cy-3, color)
				case "budget_abort":
					fmt.Fprintf(&out, `<circle cx="%d" cy="%d" r="3" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
						cx, cy, color)
				case "crashed":
					fmt.Fprintf(&out, `<rect x="%d" y="%d" width="6" height="6" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
						cx-3, cy-3, color)
				default: // degraded
					fmt.Fprintf(&out, `<circle cx="%d" cy="%d" r="1.5" fill="%s"/>`+"\n", cx, cy, color)
				}
			}
		}
		fmt.Fprintf(&out, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#64748b"/>`+"\n",
			x0, y0, panelW, panelH)
	}

	// Legend: verdict markers plus the heat ramp endpoints.
	ly := height - atlasLegendH + 14
	fmt.Fprintf(&out, `<text x="%d" y="%d">guards:</text>`+"\n", atlasPad, ly)
	lx := atlasPad + 56
	for _, v := range []string{"ess_escape", "budget_abort", "crashed", "degraded"} {
		fmt.Fprintf(&out, `<rect x="%d" y="%d" width="8" height="8" fill="%s"/>`+"\n", lx, ly-8, verdictColor(v))
		fmt.Fprintf(&out, `<text x="%d" y="%d">%s</text>`+"\n", lx+12, ly, v)
		lx += 12*len(v) + 40
	}
	fmt.Fprintf(&out, `<text x="%d" y="%d">heat: white=optimal, red=%.3gx suboptimal, gray=unswept</text>`+"\n",
		atlasPad, ly+16, maxSub)
	out.WriteString("</svg>\n")
	return out.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
