package viz

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// smallAtlas is a hand-built 3x2 atlas exercising every render path: the
// heat ramp, the unswept-cell gray, and one overlay marker per guard class.
func smallAtlas() *Atlas {
	return &Atlas{
		Query:   "Q91 & friends", // & exercises escaping
		NX:      3,
		NY:      2,
		SelX:    []float64{1e-6, 1e-3, 1},
		SelY:    []float64{1e-6, 1},
		Regimes: []string{"benign", "adversarial"},
		Maps: []AtlasMap{
			{
				Algorithm: "spillbound", Regime: "benign",
				MSO: 2, ASO: 1.5,
				// Flat index ci = x*NY + y; cell (2,1) left unswept.
				SubOpt:   []float64{1, 1.2, 1.5, 2, 1.1, 0},
				Verdict:  []string{"", "", "", "degraded", "", ""},
				Guard:    map[string]int{},
				Degraded: 1,
			},
			{
				Algorithm: "spillbound", Regime: "adversarial",
				MSO: 8, ASO: 4,
				SubOpt:  []float64{8, 4, 3, 2, 5, 6},
				Verdict: []string{"ess_escape", "budget_abort", "crashed", "", "ess_escape", "budget_abort"},
				Guard:   map[string]int{"ess_escape": 2, "budget_abort": 2, "crashed": 1},
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s unreadable (run go test ./internal/viz -update): %v", name, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden; rerun with -update if intended.\n--- got ---\n%s", name, got)
	}
}

func TestAtlasGoldenSVG(t *testing.T) {
	checkGolden(t, "atlas.svg", []byte(smallAtlas().SVG()))
}

func TestAtlasGoldenJSON(t *testing.T) {
	b, err := smallAtlas().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "atlas.json", b)
}

func TestAtlasSVGStructure(t *testing.T) {
	svg := smallAtlas().SVG()
	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not a standalone SVG document")
	}
	// 2 panels x 6 cells of heat, plus panel frames and legend swatches.
	if n := strings.Count(svg, "<rect "); n < 12 {
		t.Errorf("only %d rects; heat layer missing cells", n)
	}
	// One overlay glyph per non-empty verdict: 3 escapes→paths, circles for
	// the two aborts, a square for the crash, a dot for the degradation.
	if n := strings.Count(svg, "<path "); n != 2 {
		t.Errorf("%d escape crosses, want 2", n)
	}
	if n := strings.Count(svg, `r="3"`); n != 2 {
		t.Errorf("%d abort circles, want 2", n)
	}
	if n := strings.Count(svg, `r="1.5"`); n != 1 {
		t.Errorf("%d degradation dots, want 1", n)
	}
	if !strings.Contains(svg, "&amp; friends") {
		t.Error("query name not escaped")
	}
	if !strings.Contains(svg, "gray=unswept") {
		t.Error("legend missing")
	}
}

func TestAtlasHeatRamp(t *testing.T) {
	if heat(0, 8) != "#e2e8f0" {
		t.Error("unswept cells should render gray")
	}
	if heat(1, 8) != "#ffffff" {
		t.Error("optimal cells should render white")
	}
	if heat(8, 8) != "#b2182b" {
		t.Error("the atlas-wide max should saturate the ramp")
	}
	if heat(100, 8) != "#b2182b" {
		t.Error("above-max values must clamp")
	}
}
