// Package catalog provides the database metadata substrate used by the
// robust-query-processing stack: tables, columns, row counts and simple
// statistics. The optimizer and cost model consume only this metadata;
// no actual data is stored. Two synthetic catalogs ship with the package:
// a TPC-DS-shaped catalog at a configurable scale factor and an
// IMDB-shaped catalog for the Join Order Benchmark analogue.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a table, carrying the statistics the
// cost model needs for cardinality estimation of non-error-prone predicates.
type Column struct {
	// Name is the column name, unique within its table.
	Name string
	// Distinct is the number of distinct values (NDV). It drives
	// equality- and join-selectivity estimates.
	Distinct int64
	// Min and Max bound the value domain for range-selectivity estimates.
	Min, Max float64
	// NullFrac is the fraction of NULL entries in [0,1].
	NullFrac float64
	// Skew shapes the synthetic data generator's value distribution:
	// 0 = uniform over the NDV values; larger values concentrate mass on
	// the low end of the domain (power-law-style heavy hitters). Catalog
	// statistics (NDV, Min, Max) do not capture skew — which is exactly
	// why estimators derived from them err on skewed data (the paper's
	// premise).
	Skew float64
}

// Table describes one base relation.
type Table struct {
	// Name is the table name, unique within its catalog.
	Name string
	// Rows is the table cardinality.
	Rows int64
	// RowBytes is the average row width in bytes; together with Rows it
	// determines the page count used by the I/O cost component.
	RowBytes int
	// Columns lists the table's attributes in declaration order.
	Columns []Column

	byName map[string]int
}

// Column returns the named column and true, or a zero Column and false if
// the table has no such column.
func (t *Table) Column(name string) (Column, bool) {
	i, ok := t.byName[strings.ToLower(name)]
	if !ok {
		return Column{}, false
	}
	return t.Columns[i], true
}

// HasColumn reports whether the table declares the named column.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[strings.ToLower(name)]
	return ok
}

// Pages returns the number of disk pages the table occupies under the
// given page size. It is at least 1 for a non-empty table.
func (t *Table) Pages(pageBytes int) int64 {
	if t.Rows == 0 {
		return 0
	}
	rowsPerPage := int64(pageBytes / t.RowBytes)
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	p := t.Rows / rowsPerPage
	if t.Rows%rowsPerPage != 0 {
		p++
	}
	return p
}

// Catalog is a set of tables addressable by name. The zero value is an
// empty catalog ready to use.
type Catalog struct {
	// Name identifies the catalog (e.g. "tpcds-sf100").
	Name string

	tables map[string]*Table
	order  []string
}

// New returns an empty catalog with the given name.
func New(name string) *Catalog {
	return &Catalog{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table. It returns an error if a table with the same
// name already exists, if the table has no rows metadata, or if a column
// name is duplicated.
func (c *Catalog) AddTable(t *Table) error {
	if c.tables == nil {
		c.tables = make(map[string]*Table)
	}
	key := strings.ToLower(t.Name)
	if key == "" {
		return fmt.Errorf("catalog: table with empty name")
	}
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	if t.Rows < 0 {
		return fmt.Errorf("catalog: table %q has negative row count %d", t.Name, t.Rows)
	}
	if t.RowBytes <= 0 {
		return fmt.Errorf("catalog: table %q has non-positive row width %d", t.Name, t.RowBytes)
	}
	t.byName = make(map[string]int, len(t.Columns))
	for i, col := range t.Columns {
		ck := strings.ToLower(col.Name)
		if _, dup := t.byName[ck]; dup {
			return fmt.Errorf("catalog: table %q duplicates column %q", t.Name, col.Name)
		}
		if col.Distinct <= 0 {
			return fmt.Errorf("catalog: column %s.%s has non-positive NDV %d", t.Name, col.Name, col.Distinct)
		}
		t.byName[ck] = i
	}
	c.tables[key] = t
	c.order = append(c.order, key)
	return nil
}

// MustAddTable is AddTable that panics on error; it is intended for the
// package's own built-in catalog constructors, where an error is a bug.
func (c *Catalog) MustAddTable(t *Table) {
	if err := c.AddTable(t); err != nil {
		panic(err)
	}
}

// Table returns the named table and true, or nil and false if absent.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables in registration order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.tables[k])
	}
	return out
}

// TableNames returns the sorted list of table names.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of tables in the catalog.
func (c *Catalog) Len() int { return len(c.tables) }
