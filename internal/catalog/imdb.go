package catalog

// IMDB returns an IMDB-shaped catalog matching the Join Order Benchmark's
// schema subset used by the JOB Q1a analogue. Row counts follow the
// published IMDB snapshot sizes the benchmark was defined on. The JOB data
// is heavily skewed, which is what defeats native optimizers; the skew is
// reflected here through low NDVs on the filtered columns.
func IMDB() *Catalog {
	c := New("imdb")
	c.MustAddTable(&Table{
		Name: "title", Rows: 2528312, RowBytes: 94,
		Columns: []Column{
			{Name: "id", Distinct: 2528312, Min: 1, Max: 2528312},
			{Name: "kind_id", Distinct: 7, Min: 1, Max: 7},
			{Name: "production_year", Distinct: 133, Min: 1880, Max: 2019},
		},
	})
	c.MustAddTable(&Table{
		Name: "movie_companies", Rows: 2609129, RowBytes: 60,
		Columns: []Column{
			{Name: "id", Distinct: 2609129, Min: 1, Max: 2609129},
			{Name: "movie_id", Distinct: 1087236, Min: 1, Max: 2528312},
			{Name: "company_id", Distinct: 234997, Min: 1, Max: 234997},
			{Name: "company_type_id", Distinct: 2, Min: 1, Max: 2},
		},
	})
	c.MustAddTable(&Table{
		Name: "movie_info_idx", Rows: 1380035, RowBytes: 40,
		Columns: []Column{
			{Name: "id", Distinct: 1380035, Min: 1, Max: 1380035},
			{Name: "movie_id", Distinct: 459925, Min: 1, Max: 2528312},
			{Name: "info_type_id", Distinct: 5, Min: 99, Max: 113},
		},
	})
	c.MustAddTable(&Table{
		Name: "company_type", Rows: 4, RowBytes: 24,
		Columns: []Column{
			{Name: "id", Distinct: 4, Min: 1, Max: 4},
			{Name: "kind", Distinct: 4, Min: 1, Max: 4},
		},
	})
	c.MustAddTable(&Table{
		Name: "info_type", Rows: 113, RowBytes: 24,
		Columns: []Column{
			{Name: "id", Distinct: 113, Min: 1, Max: 113},
			{Name: "info", Distinct: 113, Min: 1, Max: 113},
		},
	})
	return c
}
