package catalog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndLookupTable(t *testing.T) {
	c := New("test")
	err := c.AddTable(&Table{
		Name: "orders", Rows: 100, RowBytes: 50,
		Columns: []Column{{Name: "o_id", Distinct: 100}},
	})
	if err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	tab, ok := c.Table("orders")
	if !ok {
		t.Fatal("Table(orders) not found")
	}
	if tab.Rows != 100 {
		t.Errorf("Rows = %d, want 100", tab.Rows)
	}
	if _, ok := c.Table("ORDERS"); !ok {
		t.Error("table lookup should be case-insensitive")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("Table(nope) should be absent")
	}
}

func TestAddTableErrors(t *testing.T) {
	cases := []struct {
		name string
		tab  *Table
		want string
	}{
		{"empty name", &Table{Name: "", Rows: 1, RowBytes: 10}, "empty name"},
		{"negative rows", &Table{Name: "t", Rows: -1, RowBytes: 10}, "negative row count"},
		{"zero width", &Table{Name: "t", Rows: 1, RowBytes: 0}, "non-positive row width"},
		{
			"dup column",
			&Table{Name: "t", Rows: 1, RowBytes: 10, Columns: []Column{
				{Name: "a", Distinct: 1}, {Name: "A", Distinct: 1},
			}},
			"duplicates column",
		},
		{
			"bad ndv",
			&Table{Name: "t", Rows: 1, RowBytes: 10, Columns: []Column{{Name: "a", Distinct: 0}}},
			"non-positive NDV",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New("test")
			err := c.AddTable(tc.tab)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("AddTable err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDuplicateTable(t *testing.T) {
	c := New("test")
	tab := func() *Table { return &Table{Name: "t", Rows: 1, RowBytes: 10} }
	if err := c.AddTable(tab()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tab()); err == nil {
		t.Error("duplicate AddTable should fail")
	}
}

func TestColumnLookup(t *testing.T) {
	tab := &Table{Name: "t", Rows: 10, RowBytes: 8, Columns: []Column{
		{Name: "a", Distinct: 5, Min: 0, Max: 9},
		{Name: "b", Distinct: 2},
	}}
	c := New("test")
	if err := c.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	col, ok := tab.Column("A")
	if !ok || col.Distinct != 5 {
		t.Errorf("Column(A) = %+v, %v; want Distinct=5, true", col, ok)
	}
	if tab.HasColumn("c") {
		t.Error("HasColumn(c) should be false")
	}
}

func TestPages(t *testing.T) {
	tab := &Table{Name: "t", Rows: 1000, RowBytes: 100}
	if got := tab.Pages(8192); got != 13 { // 81 rows/page -> ceil(1000/81)=13
		t.Errorf("Pages = %d, want 13", got)
	}
	empty := &Table{Name: "e", Rows: 0, RowBytes: 100}
	if got := empty.Pages(8192); got != 0 {
		t.Errorf("empty Pages = %d, want 0", got)
	}
	wide := &Table{Name: "w", Rows: 3, RowBytes: 1 << 20}
	if got := wide.Pages(8192); got != 3 { // rows wider than a page: one page per row
		t.Errorf("wide Pages = %d, want 3", got)
	}
}

func TestPagesMonotoneInRows(t *testing.T) {
	f := func(rows uint16, extra uint8) bool {
		a := &Table{Name: "a", Rows: int64(rows), RowBytes: 100}
		b := &Table{Name: "b", Rows: int64(rows) + int64(extra), RowBytes: 100}
		return b.Pages(8192) >= a.Pages(8192)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTPCDSCatalog(t *testing.T) {
	c := TPCDS(100)
	wantTables := []string{
		"store_sales", "catalog_sales", "web_sales", "store_returns",
		"catalog_returns", "inventory", "date_dim", "time_dim", "customer",
		"customer_address", "customer_demographics", "household_demographics",
		"item", "store", "promotion", "warehouse", "call_center", "web_page",
		"ship_mode", "reason",
	}
	for _, name := range wantTables {
		tab, ok := c.Table(name)
		if !ok {
			t.Errorf("TPCDS missing table %q", name)
			continue
		}
		if tab.Rows <= 0 {
			t.Errorf("table %q has %d rows", name, tab.Rows)
		}
		for _, col := range tab.Columns {
			if col.Distinct <= 0 {
				t.Errorf("%s.%s NDV = %d", name, col.Name, col.Distinct)
			}
		}
	}
	if c.Len() != len(wantTables) {
		t.Errorf("Len = %d, want %d", c.Len(), len(wantTables))
	}

	ss, _ := c.Table("store_sales")
	if ss.Rows != 288040400 {
		t.Errorf("store_sales rows at SF100 = %d, want 288040400", ss.Rows)
	}
	cust, _ := c.Table("customer")
	if cust.Rows != 2000000 {
		t.Errorf("customer rows at SF100 = %d, want 2000000", cust.Rows)
	}
}

func TestTPCDSScaling(t *testing.T) {
	small := TPCDS(1)
	big := TPCDS(100)
	for _, name := range []string{"store_sales", "catalog_sales", "customer"} {
		s, _ := small.Table(name)
		b, _ := big.Table(name)
		if s.Rows >= b.Rows {
			t.Errorf("%s: SF1 rows %d not < SF100 rows %d", name, s.Rows, b.Rows)
		}
	}
	// Fixed-size dimensions do not scale.
	sd, _ := small.Table("date_dim")
	bd, _ := big.Table("date_dim")
	if sd.Rows != bd.Rows {
		t.Errorf("date_dim should not scale: %d vs %d", sd.Rows, bd.Rows)
	}
}

func TestIMDBCatalog(t *testing.T) {
	c := IMDB()
	for _, name := range []string{"title", "movie_companies", "movie_info_idx", "company_type", "info_type"} {
		tab, ok := c.Table(name)
		if !ok {
			t.Fatalf("IMDB missing table %q", name)
		}
		if tab.Rows <= 0 {
			t.Errorf("%s rows = %d", name, tab.Rows)
		}
	}
	title, _ := c.Table("title")
	if !title.HasColumn("production_year") {
		t.Error("title missing production_year")
	}
}

func TestTableNamesSorted(t *testing.T) {
	c := TPCDS(1)
	names := c.TableNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("TableNames not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	if len(names) != c.Len() {
		t.Errorf("TableNames len %d != Len %d", len(names), c.Len())
	}
}

func TestTablesOrder(t *testing.T) {
	c := New("test")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := c.AddTable(&Table{Name: n, Rows: 1, RowBytes: 8}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Tables()
	want := []string{"zeta", "alpha", "mid"}
	for i, tab := range got {
		if tab.Name != want[i] {
			t.Errorf("Tables()[%d] = %q, want %q (registration order)", i, tab.Name, want[i])
		}
	}
}

func TestTPCHCatalog(t *testing.T) {
	c := TPCH(1)
	for _, name := range []string{"part", "supplier", "partsupp", "customer", "orders", "lineitem", "nation", "region"} {
		tab, ok := c.Table(name)
		if !ok {
			t.Fatalf("TPCH missing %q", name)
		}
		if tab.Rows <= 0 {
			t.Errorf("%s rows = %d", name, tab.Rows)
		}
	}
	li, _ := c.Table("lineitem")
	if li.Rows != 6000000 {
		t.Errorf("lineitem rows at SF1 = %d, want 6000000", li.Rows)
	}
	// Scaling.
	big := TPCH(10)
	bli, _ := big.Table("lineitem")
	if bli.Rows != 60000000 {
		t.Errorf("lineitem rows at SF10 = %d", bli.Rows)
	}
	nat, _ := big.Table("nation")
	if nat.Rows != 25 {
		t.Errorf("nation should not scale: %d", nat.Rows)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := TPCH(1)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Name != orig.Name {
		t.Fatalf("len/name mismatch: %d/%q", loaded.Len(), loaded.Name)
	}
	for _, ot := range orig.Tables() {
		lt, ok := loaded.Table(ot.Name)
		if !ok {
			t.Fatalf("missing %q after round trip", ot.Name)
		}
		if lt.Rows != ot.Rows || lt.RowBytes != ot.RowBytes || len(lt.Columns) != len(ot.Columns) {
			t.Errorf("%s mismatch after round trip", ot.Name)
		}
	}
}

func TestReadJSONValidates(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"name":"x","tables":[{"name":"t","rows":-1,"rowBytes":8}]}`,                                   // bad rows
		`{"name":"x","tables":[{"name":"t","rows":1,"rowBytes":8,"columns":[{"name":"c"}]}]}`,           // NDV 0
		`{"name":"x","tables":[{"name":"t","rows":1,"rowBytes":8}],"bogus":1}`,                          // unknown field
		`{"name":"x","tables":[{"name":"t","rows":1,"rowBytes":8},{"name":"t","rows":1,"rowBytes":8}]}`, // dup
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", in)
		}
	}
}
