package catalog

// TPC-DS synthetic catalog. Row counts follow the published TPC-DS scaling
// tables; column NDVs are realistic approximations sufficient to drive
// join-selectivity estimates. Only the tables and columns referenced by the
// workload queries are modeled.

// scaled multiplies a base-per-SF row count by the scale factor.
func scaled(perSF int64, sf float64) int64 {
	v := int64(float64(perSF) * sf)
	if v < 1 {
		v = 1
	}
	return v
}

// TPCDS returns a TPC-DS-shaped catalog at the given scale factor
// (sf = 100 corresponds to the paper's 100 GB configuration). Fact tables
// scale linearly; dimension tables use the benchmark's sub-linear steps,
// approximated here by fixed SF-100 sizes scaled proportionally for other
// factors.
func TPCDS(sf float64) *Catalog {
	c := New("tpcds")
	rel := sf / 100.0 // dimension sizes are anchored at SF-100
	dim := func(rowsAt100 int64) int64 {
		v := int64(float64(rowsAt100) * rel)
		if v < 1 {
			v = 1
		}
		return v
	}

	// Fact tables (rows per SF from the TPC-DS specification).
	c.MustAddTable(&Table{
		Name: "store_sales", Rows: scaled(2880404, sf), RowBytes: 164,
		Columns: []Column{
			{Name: "ss_sold_date_sk", Distinct: 1823, Min: 2450816, Max: 2452642},
			{Name: "ss_sold_time_sk", Distinct: 46200, Min: 0, Max: 86399},
			{Name: "ss_item_sk", Distinct: dim(204000), Min: 1, Max: float64(dim(204000))},
			{Name: "ss_customer_sk", Distinct: dim(2000000), Min: 1, Max: float64(dim(2000000))},
			{Name: "ss_cdemo_sk", Distinct: 1920800, Min: 1, Max: 1920800},
			{Name: "ss_hdemo_sk", Distinct: 7200, Min: 1, Max: 7200},
			{Name: "ss_addr_sk", Distinct: dim(1000000), Min: 1, Max: float64(dim(1000000))},
			{Name: "ss_store_sk", Distinct: dim(402), Min: 1, Max: float64(dim(402))},
			{Name: "ss_promo_sk", Distinct: dim(1000), Min: 1, Max: float64(dim(1000))},
			{Name: "ss_ticket_number", Distinct: scaled(240000, sf), Min: 1, Max: float64(scaled(240000, sf))},
			{Name: "ss_quantity", Distinct: 100, Min: 1, Max: 100},
			{Name: "ss_sales_price", Distinct: 19900, Min: 0, Max: 200},
			{Name: "ss_net_profit", Distinct: 30000, Min: -10000, Max: 20000},
		},
	})
	c.MustAddTable(&Table{
		Name: "catalog_sales", Rows: scaled(1441548, sf), RowBytes: 226,
		Columns: []Column{
			{Name: "cs_sold_date_sk", Distinct: 1823, Min: 2450816, Max: 2452642},
			{Name: "cs_ship_date_sk", Distinct: 1823, Min: 2450816, Max: 2452642},
			{Name: "cs_bill_customer_sk", Distinct: dim(2000000), Min: 1, Max: float64(dim(2000000))},
			{Name: "cs_bill_cdemo_sk", Distinct: 1920800, Min: 1, Max: 1920800},
			{Name: "cs_bill_hdemo_sk", Distinct: 7200, Min: 1, Max: 7200},
			{Name: "cs_ship_customer_sk", Distinct: dim(2000000), Min: 1, Max: float64(dim(2000000))},
			{Name: "cs_ship_addr_sk", Distinct: dim(1000000), Min: 1, Max: float64(dim(1000000))},
			{Name: "cs_call_center_sk", Distinct: dim(42), Min: 1, Max: float64(dim(42))},
			{Name: "cs_catalog_page_sk", Distinct: dim(20400), Min: 1, Max: float64(dim(20400))},
			{Name: "cs_ship_mode_sk", Distinct: 20, Min: 1, Max: 20},
			{Name: "cs_warehouse_sk", Distinct: dim(15), Min: 1, Max: float64(dim(15))},
			{Name: "cs_item_sk", Distinct: dim(204000), Min: 1, Max: float64(dim(204000))},
			{Name: "cs_promo_sk", Distinct: dim(1000), Min: 1, Max: float64(dim(1000))},
			{Name: "cs_order_number", Distinct: scaled(160000, sf), Min: 1, Max: float64(scaled(160000, sf))},
			{Name: "cs_quantity", Distinct: 100, Min: 1, Max: 100},
			{Name: "cs_sales_price", Distinct: 29900, Min: 0, Max: 300},
			{Name: "cs_net_profit", Distinct: 30000, Min: -10000, Max: 20000},
		},
	})
	c.MustAddTable(&Table{
		Name: "web_sales", Rows: scaled(719384, sf), RowBytes: 226,
		Columns: []Column{
			{Name: "ws_sold_date_sk", Distinct: 1823, Min: 2450816, Max: 2452642},
			{Name: "ws_item_sk", Distinct: dim(204000), Min: 1, Max: float64(dim(204000))},
			{Name: "ws_bill_customer_sk", Distinct: dim(2000000), Min: 1, Max: float64(dim(2000000))},
			{Name: "ws_web_page_sk", Distinct: dim(2040), Min: 1, Max: float64(dim(2040))},
			{Name: "ws_web_site_sk", Distinct: dim(24), Min: 1, Max: float64(dim(24))},
			{Name: "ws_ship_addr_sk", Distinct: dim(1000000), Min: 1, Max: float64(dim(1000000))},
			{Name: "ws_promo_sk", Distinct: dim(1000), Min: 1, Max: float64(dim(1000))},
			{Name: "ws_order_number", Distinct: scaled(60000, sf), Min: 1, Max: float64(scaled(60000, sf))},
			{Name: "ws_quantity", Distinct: 100, Min: 1, Max: 100},
			{Name: "ws_sales_price", Distinct: 29900, Min: 0, Max: 300},
		},
	})
	c.MustAddTable(&Table{
		Name: "store_returns", Rows: scaled(287514, sf), RowBytes: 134,
		Columns: []Column{
			{Name: "sr_returned_date_sk", Distinct: 2003, Min: 2450820, Max: 2452822},
			{Name: "sr_item_sk", Distinct: dim(204000), Min: 1, Max: float64(dim(204000))},
			{Name: "sr_customer_sk", Distinct: dim(2000000), Min: 1, Max: float64(dim(2000000))},
			{Name: "sr_cdemo_sk", Distinct: 1920800, Min: 1, Max: 1920800},
			{Name: "sr_hdemo_sk", Distinct: 7200, Min: 1, Max: 7200},
			{Name: "sr_store_sk", Distinct: dim(402), Min: 1, Max: float64(dim(402))},
			{Name: "sr_reason_sk", Distinct: dim(55), Min: 1, Max: float64(dim(55))},
			{Name: "sr_ticket_number", Distinct: scaled(240000, sf), Min: 1, Max: float64(scaled(240000, sf))},
			{Name: "sr_return_quantity", Distinct: 100, Min: 1, Max: 100},
		},
	})
	c.MustAddTable(&Table{
		Name: "catalog_returns", Rows: scaled(144067, sf), RowBytes: 166,
		Columns: []Column{
			{Name: "cr_returned_date_sk", Distinct: 2003, Min: 2450820, Max: 2452822},
			{Name: "cr_item_sk", Distinct: dim(204000), Min: 1, Max: float64(dim(204000))},
			{Name: "cr_returning_customer_sk", Distinct: dim(2000000), Min: 1, Max: float64(dim(2000000))},
			{Name: "cr_call_center_sk", Distinct: dim(42), Min: 1, Max: float64(dim(42))},
			{Name: "cr_order_number", Distinct: scaled(160000, sf), Min: 1, Max: float64(scaled(160000, sf))},
			{Name: "cr_return_quantity", Distinct: 100, Min: 1, Max: 100},
		},
	})
	c.MustAddTable(&Table{
		Name: "inventory", Rows: scaled(117250, sf) * 100, RowBytes: 16,
		Columns: []Column{
			{Name: "inv_date_sk", Distinct: 261, Min: 2450815, Max: 2452635},
			{Name: "inv_item_sk", Distinct: dim(204000), Min: 1, Max: float64(dim(204000))},
			{Name: "inv_warehouse_sk", Distinct: dim(15), Min: 1, Max: float64(dim(15))},
			{Name: "inv_quantity_on_hand", Distinct: 1000, Min: 0, Max: 1000},
		},
	})

	// Dimension tables (SF-100 sizes).
	c.MustAddTable(&Table{
		Name: "date_dim", Rows: 73049, RowBytes: 141,
		Columns: []Column{
			{Name: "d_date_sk", Distinct: 73049, Min: 2415022, Max: 2488070},
			{Name: "d_year", Distinct: 200, Min: 1900, Max: 2100},
			{Name: "d_moy", Distinct: 12, Min: 1, Max: 12},
			{Name: "d_dom", Distinct: 31, Min: 1, Max: 31},
			{Name: "d_qoy", Distinct: 4, Min: 1, Max: 4},
		},
	})
	c.MustAddTable(&Table{
		Name: "time_dim", Rows: 86400, RowBytes: 59,
		Columns: []Column{
			{Name: "t_time_sk", Distinct: 86400, Min: 0, Max: 86399},
			{Name: "t_hour", Distinct: 24, Min: 0, Max: 23},
			{Name: "t_minute", Distinct: 60, Min: 0, Max: 59},
		},
	})
	c.MustAddTable(&Table{
		Name: "customer", Rows: dim(2000000), RowBytes: 132,
		Columns: []Column{
			{Name: "c_customer_sk", Distinct: dim(2000000), Min: 1, Max: float64(dim(2000000))},
			{Name: "c_current_cdemo_sk", Distinct: 1221032, Min: 1, Max: 1920800},
			{Name: "c_current_hdemo_sk", Distinct: 7200, Min: 1, Max: 7200},
			{Name: "c_current_addr_sk", Distinct: dim(1000000), Min: 1, Max: float64(dim(1000000))},
			{Name: "c_birth_year", Distinct: 69, Min: 1924, Max: 1992},
			{Name: "c_birth_month", Distinct: 12, Min: 1, Max: 12},
		},
	})
	c.MustAddTable(&Table{
		Name: "customer_address", Rows: dim(1000000), RowBytes: 110,
		Columns: []Column{
			{Name: "ca_address_sk", Distinct: dim(1000000), Min: 1, Max: float64(dim(1000000))},
			{Name: "ca_state", Distinct: 51, Min: 1, Max: 51},
			{Name: "ca_city", Distinct: 901, Min: 1, Max: 901},
			{Name: "ca_gmt_offset", Distinct: 6, Min: -10, Max: -5},
			{Name: "ca_country", Distinct: 1, Min: 1, Max: 1},
		},
	})
	c.MustAddTable(&Table{
		Name: "customer_demographics", Rows: 1920800, RowBytes: 42,
		Columns: []Column{
			{Name: "cd_demo_sk", Distinct: 1920800, Min: 1, Max: 1920800},
			{Name: "cd_gender", Distinct: 2, Min: 1, Max: 2},
			{Name: "cd_marital_status", Distinct: 5, Min: 1, Max: 5},
			{Name: "cd_education_status", Distinct: 7, Min: 1, Max: 7},
			{Name: "cd_dep_count", Distinct: 7, Min: 0, Max: 6},
		},
	})
	c.MustAddTable(&Table{
		Name: "household_demographics", Rows: 7200, RowBytes: 21,
		Columns: []Column{
			{Name: "hd_demo_sk", Distinct: 7200, Min: 1, Max: 7200},
			{Name: "hd_income_band_sk", Distinct: 20, Min: 1, Max: 20},
			{Name: "hd_buy_potential", Distinct: 6, Min: 1, Max: 6},
			{Name: "hd_dep_count", Distinct: 10, Min: 0, Max: 9},
			{Name: "hd_vehicle_count", Distinct: 6, Min: -1, Max: 4},
		},
	})
	c.MustAddTable(&Table{
		Name: "item", Rows: dim(204000), RowBytes: 281,
		Columns: []Column{
			{Name: "i_item_sk", Distinct: dim(204000), Min: 1, Max: float64(dim(204000))},
			{Name: "i_brand_id", Distinct: 951, Min: 1, Max: 10016017},
			{Name: "i_category_id", Distinct: 10, Min: 1, Max: 10},
			{Name: "i_manufact_id", Distinct: 1000, Min: 1, Max: 1000},
			{Name: "i_current_price", Distinct: 9900, Min: 0.09, Max: 99.99},
		},
	})
	c.MustAddTable(&Table{
		Name: "store", Rows: dim(402), RowBytes: 263,
		Columns: []Column{
			{Name: "s_store_sk", Distinct: dim(402), Min: 1, Max: float64(dim(402))},
			{Name: "s_state", Distinct: 9, Min: 1, Max: 9},
			{Name: "s_number_employees", Distinct: 100, Min: 200, Max: 300},
		},
	})
	c.MustAddTable(&Table{
		Name: "promotion", Rows: dim(1000), RowBytes: 124,
		Columns: []Column{
			{Name: "p_promo_sk", Distinct: dim(1000), Min: 1, Max: float64(dim(1000))},
			{Name: "p_channel_email", Distinct: 2, Min: 0, Max: 1},
			{Name: "p_channel_event", Distinct: 2, Min: 0, Max: 1},
		},
	})
	c.MustAddTable(&Table{
		Name: "warehouse", Rows: dim(15), RowBytes: 117,
		Columns: []Column{
			{Name: "w_warehouse_sk", Distinct: dim(15), Min: 1, Max: float64(dim(15))},
			{Name: "w_state", Distinct: 9, Min: 1, Max: 9},
		},
	})
	c.MustAddTable(&Table{
		Name: "call_center", Rows: dim(42), RowBytes: 305,
		Columns: []Column{
			{Name: "cc_call_center_sk", Distinct: dim(42), Min: 1, Max: float64(dim(42))},
			{Name: "cc_county", Distinct: 8, Min: 1, Max: 8},
		},
	})
	c.MustAddTable(&Table{
		Name: "web_page", Rows: dim(2040), RowBytes: 96,
		Columns: []Column{
			{Name: "wp_web_page_sk", Distinct: dim(2040), Min: 1, Max: float64(dim(2040))},
			{Name: "wp_char_count", Distinct: 2000, Min: 100, Max: 8000},
		},
	})
	c.MustAddTable(&Table{
		Name: "ship_mode", Rows: 20, RowBytes: 56,
		Columns: []Column{
			{Name: "sm_ship_mode_sk", Distinct: 20, Min: 1, Max: 20},
			{Name: "sm_type", Distinct: 5, Min: 1, Max: 5},
		},
	})
	c.MustAddTable(&Table{
		Name: "reason", Rows: dim(55), RowBytes: 38,
		Columns: []Column{
			{Name: "r_reason_sk", Distinct: dim(55), Min: 1, Max: float64(dim(55))},
		},
	})
	return c
}
