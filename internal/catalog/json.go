package catalog

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON (de)serialization of catalogs, so users can process their own
// schemas without writing Go: a catalog file is
//
//	{
//	  "name": "webshop",
//	  "tables": [
//	    {"name": "events", "rows": 40000000, "rowBytes": 96,
//	     "columns": [{"name": "user_id", "distinct": 1500000,
//	                  "min": 1, "max": 1500000}]},
//	    ...
//	  ]
//	}

// catalogJSON is the file representation.
type catalogJSON struct {
	Name   string      `json:"name"`
	Tables []tableJSON `json:"tables"`
}

type tableJSON struct {
	Name     string       `json:"name"`
	Rows     int64        `json:"rows"`
	RowBytes int          `json:"rowBytes"`
	Columns  []columnJSON `json:"columns"`
}

type columnJSON struct {
	Name     string  `json:"name"`
	Distinct int64   `json:"distinct"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	NullFrac float64 `json:"nullFrac,omitempty"`
	Skew     float64 `json:"skew,omitempty"`
}

// ReadJSON parses a catalog from JSON, validating it through AddTable.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var cj catalogJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cj); err != nil {
		return nil, fmt.Errorf("catalog: json: %w", err)
	}
	c := New(cj.Name)
	for _, tj := range cj.Tables {
		t := &Table{Name: tj.Name, Rows: tj.Rows, RowBytes: tj.RowBytes}
		for _, col := range tj.Columns {
			t.Columns = append(t.Columns, Column{
				Name: col.Name, Distinct: col.Distinct,
				Min: col.Min, Max: col.Max,
				NullFrac: col.NullFrac, Skew: col.Skew,
			})
		}
		if err := c.AddTable(t); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// WriteJSON serializes the catalog.
func (c *Catalog) WriteJSON(w io.Writer) error {
	cj := catalogJSON{Name: c.Name}
	for _, t := range c.Tables() {
		tj := tableJSON{Name: t.Name, Rows: t.Rows, RowBytes: t.RowBytes}
		for _, col := range t.Columns {
			tj.Columns = append(tj.Columns, columnJSON{
				Name: col.Name, Distinct: col.Distinct,
				Min: col.Min, Max: col.Max,
				NullFrac: col.NullFrac, Skew: col.Skew,
			})
		}
		cj.Tables = append(cj.Tables, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&cj)
}
