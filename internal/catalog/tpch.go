package catalog

// TPCH returns a TPC-H-shaped catalog at the given scale factor. The
// paper's motivating example query EQ (Fig. 1) — orders for cheap parts,
// joining part ⋈ lineitem ⋈ orders with the retail-price filter — runs
// over this schema. Row counts follow the TPC-H specification (SF 1 =
// 6M lineitem rows); only the columns the workload touches are modeled.
func TPCH(sf float64) *Catalog {
	c := New("tpch")
	n := func(perSF int64) int64 { return scaled(perSF, sf) }
	c.MustAddTable(&Table{
		Name: "part", Rows: n(200000), RowBytes: 155,
		Columns: []Column{
			{Name: "p_partkey", Distinct: n(200000), Min: 1, Max: float64(n(200000))},
			{Name: "p_retailprice", Distinct: 20899, Min: 900, Max: 2099},
			{Name: "p_size", Distinct: 50, Min: 1, Max: 50},
			{Name: "p_brand", Distinct: 25, Min: 1, Max: 25},
		},
	})
	c.MustAddTable(&Table{
		Name: "supplier", Rows: n(10000), RowBytes: 159,
		Columns: []Column{
			{Name: "s_suppkey", Distinct: n(10000), Min: 1, Max: float64(n(10000))},
			{Name: "s_nationkey", Distinct: 25, Min: 0, Max: 24},
		},
	})
	c.MustAddTable(&Table{
		Name: "partsupp", Rows: n(800000), RowBytes: 144,
		Columns: []Column{
			{Name: "ps_partkey", Distinct: n(200000), Min: 1, Max: float64(n(200000))},
			{Name: "ps_suppkey", Distinct: n(10000), Min: 1, Max: float64(n(10000))},
			{Name: "ps_availqty", Distinct: 9999, Min: 1, Max: 9999},
		},
	})
	c.MustAddTable(&Table{
		Name: "customer", Rows: n(150000), RowBytes: 179,
		Columns: []Column{
			{Name: "c_custkey", Distinct: n(150000), Min: 1, Max: float64(n(150000))},
			{Name: "c_nationkey", Distinct: 25, Min: 0, Max: 24},
			{Name: "c_acctbal", Distinct: 100000, Min: -999, Max: 9999},
		},
	})
	c.MustAddTable(&Table{
		Name: "orders", Rows: n(1500000), RowBytes: 104,
		Columns: []Column{
			{Name: "o_orderkey", Distinct: n(1500000), Min: 1, Max: float64(n(6000000))},
			{Name: "o_custkey", Distinct: n(100000), Min: 1, Max: float64(n(150000))},
			{Name: "o_orderdate", Distinct: 2406, Min: 0, Max: 2405},
			{Name: "o_totalprice", Distinct: 1000000, Min: 850, Max: 560000},
		},
	})
	c.MustAddTable(&Table{
		Name: "lineitem", Rows: n(6000000), RowBytes: 112,
		Columns: []Column{
			{Name: "l_orderkey", Distinct: n(1500000), Min: 1, Max: float64(n(6000000))},
			{Name: "l_partkey", Distinct: n(200000), Min: 1, Max: float64(n(200000))},
			{Name: "l_suppkey", Distinct: n(10000), Min: 1, Max: float64(n(10000))},
			{Name: "l_shipdate", Distinct: 2526, Min: 0, Max: 2525},
			{Name: "l_quantity", Distinct: 50, Min: 1, Max: 50},
			{Name: "l_extendedprice", Distinct: 933900, Min: 900, Max: 104950},
		},
	})
	c.MustAddTable(&Table{
		Name: "nation", Rows: 25, RowBytes: 128,
		Columns: []Column{
			{Name: "n_nationkey", Distinct: 25, Min: 0, Max: 24},
			{Name: "n_regionkey", Distinct: 5, Min: 0, Max: 4},
		},
	})
	c.MustAddTable(&Table{
		Name: "region", Rows: 5, RowBytes: 124,
		Columns: []Column{
			{Name: "r_regionkey", Distinct: 5, Min: 0, Max: 4},
		},
	})
	return c
}
