package sqlmini

import (
	"strings"
	"testing"
)

func TestParseGroupBy(t *testing.T) {
	q, err := Parse(testCatalog(), `
		SELECT p_type FROM part p, lineitem l
		WHERE p.p_partkey = l.l_partkey
		GROUP BY p.p_type, l.l_quantity`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.GroupBy) != 2 {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	if q.GroupBy[0].String() != "p.p_type" || q.GroupBy[1].String() != "l.l_quantity" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
}

func TestParseGroupByUnqualified(t *testing.T) {
	q, err := Parse(testCatalog(), `
		SELECT * FROM part p, lineitem l
		WHERE p.p_partkey = l.l_partkey
		GROUP BY p_type`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Alias != "p" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
}

func TestParseGroupByErrors(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT * FROM part p GROUP p.p_type", "expected BY"},
		{"SELECT * FROM part p GROUP BY p.nope", "no column"},
		{"SELECT * FROM part p GROUP BY nada", "unknown column"},
	}
	for _, tc := range cases {
		if _, err := Parse(testCatalog(), tc.sql); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want %q", tc.sql, err, tc.want)
		}
	}
}

// TestLexerNeverPanics drives the lexer over adversarial inputs; errors are
// fine, panics are not.
func TestLexerNeverPanics(t *testing.T) {
	inputs := []string{
		"", " ", "'", "''", "-", "--", "1.2.3", "1e", "1e-", "a.b.c.d",
		"SELECT * FROM part WHERE x = 'unterminated", "\x00\x01\x02",
		"💥 SELECT", "SELECT * FROM part WHERE p_size = 1e+",
		strings.Repeat("(", 1000), strings.Repeat("a.", 500),
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("lexer/parser panicked on %q: %v", in, r)
				}
			}()
			_, _ = Parse(testCatalog(), in)
		}()
	}
}
