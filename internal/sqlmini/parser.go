package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/query"
)

// Parse parses and binds an SPJ query against the catalog, returning the
// bound query. The projection list is accepted but ignored — the robust
// processing algorithms are driven by the join graph and predicates.
func Parse(cat *catalog.Catalog, sql string) (*query.Query, error) {
	toks, err := lexAll(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{cat: cat, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for use in the built-in workload
// definitions, where a parse failure is a bug.
func MustParse(cat *catalog.Catalog, sql string) *query.Query {
	q, err := Parse(cat, sql)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	cat  *catalog.Catalog
	toks []token
	i    int
	q    *query.Query
}

func (p *parser) peek() token {
	if p.i >= len(p.toks) {
		return token{kind: tokEOF}
	}
	return p.toks[p.i]
}

func (p *parser) advance() token {
	t := p.peek()
	if p.i < len(p.toks) {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.advance()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlmini: expected %s, found %s", kw, t)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.advance()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sqlmini: expected %q, found %s", sym, t)
	}
	return nil
}

func (p *parser) parseQuery() (*query.Query, error) {
	p.q = &query.Query{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFromList(); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokKeyword && t.text == "WHERE" {
		p.advance()
		if err := p.parsePredicates(); err != nil {
			return nil, err
		}
	}
	if t := p.peek(); t.kind == tokKeyword && t.text == "GROUP" {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			p.q.GroupBy = append(p.q.GroupBy, ref)
			if n := p.peek(); n.kind == tokSymbol && n.text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if t := p.peek(); t.kind == tokSymbol && t.text == ";" {
		p.advance()
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlmini: trailing input at %s", t)
	}
	return p.q, nil
}

// parseSelectList consumes the projection list. Entries are either *,
// identifiers, or qualified names; they are validated lazily by binding and
// otherwise ignored.
func (p *parser) parseSelectList() error {
	for {
		t := p.advance()
		switch {
		case t.kind == tokSymbol && t.text == "*":
		case t.kind == tokIdent:
			// Optional qualifier.
			if n := p.peek(); n.kind == tokSymbol && n.text == "." {
				p.advance()
				if c := p.advance(); c.kind != tokIdent {
					return fmt.Errorf("sqlmini: expected column after %q., found %s", t.text, c)
				}
			}
		default:
			return fmt.Errorf("sqlmini: expected projection item, found %s", t)
		}
		if n := p.peek(); n.kind == tokSymbol && n.text == "," {
			p.advance()
			continue
		}
		return nil
	}
}

func (p *parser) parseFromList() error {
	if err := p.parseTableRef(); err != nil {
		return err
	}
	for {
		n := p.peek()
		switch {
		case n.kind == tokSymbol && n.text == ",":
			p.advance()
			if err := p.parseTableRef(); err != nil {
				return err
			}
		case n.kind == tokKeyword && (n.text == "JOIN" || n.text == "INNER"):
			// [INNER] JOIN tableRef ON predicate (AND predicate)*
			p.advance()
			if n.text == "INNER" {
				if err := p.expectKeyword("JOIN"); err != nil {
					return err
				}
			}
			if err := p.parseTableRef(); err != nil {
				return err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return err
			}
			if err := p.parsePredicate(); err != nil {
				return err
			}
			for {
				if t := p.peek(); t.kind == tokKeyword && t.text == "AND" {
					// Only consume the AND if another ON-clause predicate
					// follows; a WHERE keyword ends the join condition.
					p.advance()
					if err := p.parsePredicate(); err != nil {
						return err
					}
					continue
				}
				break
			}
		default:
			return nil
		}
	}
}

// parseTableRef parses one FROM entry: table [AS] [alias].
func (p *parser) parseTableRef() error {
	t := p.advance()
	if t.kind != tokIdent {
		return fmt.Errorf("sqlmini: expected table name, found %s", t)
	}
	tab, ok := p.cat.Table(t.text)
	if !ok {
		return fmt.Errorf("sqlmini: unknown table %q", t.text)
	}
	alias := tab.Name
	if n := p.peek(); n.kind == tokKeyword && n.text == "AS" {
		p.advance()
		a := p.advance()
		if a.kind != tokIdent {
			return fmt.Errorf("sqlmini: expected alias after AS, found %s", a)
		}
		alias = a.text
	} else if n.kind == tokIdent {
		p.advance()
		alias = n.text
	}
	p.q.Relations = append(p.q.Relations, query.Relation{Alias: alias, Table: tab})
	return nil
}

func (p *parser) parsePredicates() error {
	for {
		if err := p.parsePredicate(); err != nil {
			return err
		}
		if t := p.peek(); t.kind == tokKeyword && t.text == "AND" {
			p.advance()
			continue
		}
		return nil
	}
}

// parseColumnRef parses ident[.ident] into a ColumnRef, resolving an
// unqualified column to the unique relation declaring it.
func (p *parser) parseColumnRef() (query.ColumnRef, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return query.ColumnRef{}, fmt.Errorf("sqlmini: expected column reference, found %s", t)
	}
	if n := p.peek(); n.kind == tokSymbol && n.text == "." {
		p.advance()
		c := p.advance()
		if c.kind != tokIdent {
			return query.ColumnRef{}, fmt.Errorf("sqlmini: expected column after %q., found %s", t.text, c)
		}
		ref := query.ColumnRef{Alias: t.text, Column: c.text}
		if err := p.checkRef(ref); err != nil {
			return query.ColumnRef{}, err
		}
		return ref, nil
	}
	// Unqualified: find the unique owning relation.
	var owner string
	for _, r := range p.q.Relations {
		if r.Table.HasColumn(t.text) {
			if owner != "" {
				return query.ColumnRef{}, fmt.Errorf("sqlmini: column %q is ambiguous (in %q and %q)", t.text, owner, r.Alias)
			}
			owner = r.Alias
		}
	}
	if owner == "" {
		return query.ColumnRef{}, fmt.Errorf("sqlmini: unknown column %q", t.text)
	}
	return query.ColumnRef{Alias: owner, Column: t.text}, nil
}

func (p *parser) checkRef(ref query.ColumnRef) error {
	for _, r := range p.q.Relations {
		if strings.EqualFold(r.Alias, ref.Alias) {
			if !r.Table.HasColumn(ref.Column) {
				return fmt.Errorf("sqlmini: table %q (alias %q) has no column %q", r.Table.Name, r.Alias, ref.Column)
			}
			return nil
		}
	}
	return fmt.Errorf("sqlmini: unknown alias %q", ref.Alias)
}

func (p *parser) parsePredicate() error {
	lhs, err := p.parseColumnRef()
	if err != nil {
		return err
	}
	t := p.advance()
	switch {
	case t.kind == tokSymbol && t.text == "=":
		// Join predicate if the RHS is a column reference; filter otherwise.
		if n := p.peek(); n.kind == tokIdent {
			rhs, err := p.parseColumnRef()
			if err != nil {
				return err
			}
			p.q.Joins = append(p.q.Joins, query.Join{ID: len(p.q.Joins), Left: lhs, Right: rhs})
			return nil
		}
		return p.finishFilter(lhs, query.OpEq, 1)
	case t.kind == tokSymbol:
		op, ok := map[string]query.FilterOp{
			"<>": query.OpNe, "<": query.OpLt, "<=": query.OpLe,
			">": query.OpGt, ">=": query.OpGe,
		}[t.text]
		if !ok {
			return fmt.Errorf("sqlmini: unexpected operator %s", t)
		}
		return p.finishFilter(lhs, op, 1)
	case t.kind == tokKeyword && t.text == "BETWEEN":
		lo, loText, err := p.parseLiteral()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return err
		}
		hi, hiText, err := p.parseLiteral()
		if err != nil {
			return err
		}
		p.q.Filters = append(p.q.Filters, query.Filter{
			ID: len(p.q.Filters), Col: lhs, Op: query.OpBetween,
			Args: []float64{lo, hi},
			Text: fmt.Sprintf("%s BETWEEN %s AND %s", lhs, loText, hiText),
		})
		return nil
	case t.kind == tokKeyword && t.text == "IN":
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		var args []float64
		var texts []string
		for {
			v, txt, err := p.parseLiteral()
			if err != nil {
				return err
			}
			args = append(args, v)
			texts = append(texts, txt)
			n := p.advance()
			if n.kind == tokSymbol && n.text == "," {
				continue
			}
			if n.kind == tokSymbol && n.text == ")" {
				break
			}
			return fmt.Errorf("sqlmini: expected ',' or ')' in IN list, found %s", n)
		}
		p.q.Filters = append(p.q.Filters, query.Filter{
			ID: len(p.q.Filters), Col: lhs, Op: query.OpIn, Args: args,
			Text: fmt.Sprintf("%s IN (%s)", lhs, strings.Join(texts, ", ")),
		})
		return nil
	default:
		return fmt.Errorf("sqlmini: expected comparison after %s, found %s", lhs, t)
	}
}

// finishFilter parses nargs literals and appends a filter predicate.
func (p *parser) finishFilter(col query.ColumnRef, op query.FilterOp, nargs int) error {
	args := make([]float64, 0, nargs)
	texts := make([]string, 0, nargs)
	for k := 0; k < nargs; k++ {
		v, txt, err := p.parseLiteral()
		if err != nil {
			return err
		}
		args = append(args, v)
		texts = append(texts, txt)
	}
	p.q.Filters = append(p.q.Filters, query.Filter{
		ID: len(p.q.Filters), Col: col, Op: op, Args: args,
		Text: fmt.Sprintf("%s %s %s", col, op, strings.Join(texts, ", ")),
	})
	return nil
}

// parseLiteral consumes a numeric or string literal. String literals bind
// to a stable surrogate hash so equality-style selectivity estimation (which
// only consults NDVs) works without a value domain.
func (p *parser) parseLiteral() (float64, string, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, "", fmt.Errorf("sqlmini: bad number %q: %v", t.text, err)
		}
		return v, t.text, nil
	case tokString:
		var h uint32 = 2166136261
		for i := 0; i < len(t.text); i++ {
			h ^= uint32(t.text[i])
			h *= 16777619
		}
		return float64(h % 1000003), "'" + t.text + "'", nil
	default:
		return 0, "", fmt.Errorf("sqlmini: expected literal, found %s", t)
	}
}
