package sqlmini

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/query"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 1000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 1000, Min: 1, Max: 1000},
			{Name: "p_retailprice", Distinct: 500, Min: 0, Max: 2000},
			{Name: "p_type", Distinct: 10, Min: 1, Max: 10},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 100000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 1000, Min: 1, Max: 1000},
			{Name: "l_orderkey", Distinct: 25000, Min: 1, Max: 25000},
			{Name: "l_quantity", Distinct: 50, Min: 1, Max: 50},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 25000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 25000, Min: 1, Max: 25000},
			{Name: "o_status", Distinct: 3, Min: 1, Max: 3},
		},
	})
	return c
}

// exampleQuery is the paper's example query EQ (Fig. 1).
const exampleQuery = `
SELECT * FROM part p, lineitem l, orders o
WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
AND p.p_retailprice < 1000`

func TestParseExampleQuery(t *testing.T) {
	q, err := Parse(testCatalog(), exampleQuery)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Relations) != 3 {
		t.Fatalf("relations = %d, want 3", len(q.Relations))
	}
	if q.Relations[0].Alias != "p" || q.Relations[0].Table.Name != "part" {
		t.Errorf("relation[0] = %q/%q", q.Relations[0].Alias, q.Relations[0].Table.Name)
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(q.Joins))
	}
	if got := q.Joins[0].String(); got != "p.p_partkey = l.l_partkey" {
		t.Errorf("join[0] = %q", got)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %d, want 1", len(q.Filters))
	}
	f := q.Filters[0]
	if f.Op != query.OpLt || f.Args[0] != 1000 {
		t.Errorf("filter = %v %v", f.Op, f.Args)
	}
}

func TestParseAliasForms(t *testing.T) {
	cat := testCatalog()
	for _, sql := range []string{
		"SELECT * FROM part AS p, lineitem AS l WHERE p.p_partkey = l.l_partkey",
		"SELECT * FROM part p, lineitem l WHERE p.p_partkey = l.l_partkey",
		"SELECT * FROM part, lineitem WHERE part.p_partkey = lineitem.l_partkey",
	} {
		q, err := Parse(cat, sql)
		if err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
			continue
		}
		if len(q.Joins) != 1 {
			t.Errorf("Parse(%q): joins = %d", sql, len(q.Joins))
		}
	}
}

func TestParseUnqualifiedColumns(t *testing.T) {
	q, err := Parse(testCatalog(), `
		SELECT p_partkey FROM part, lineitem
		WHERE p_partkey = l_partkey AND l_quantity >= 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Joins[0].Left.Alias != "part" || q.Joins[0].Right.Alias != "lineitem" {
		t.Errorf("join binding = %v", q.Joins[0])
	}
	if q.Filters[0].Col.Alias != "lineitem" {
		t.Errorf("filter binding = %v", q.Filters[0].Col)
	}
}

func TestParseFilterOperators(t *testing.T) {
	cat := testCatalog()
	cases := []struct {
		where string
		op    query.FilterOp
		nargs int
	}{
		{"l.l_quantity = 5", query.OpEq, 1},
		{"l.l_quantity <> 5", query.OpNe, 1},
		{"l.l_quantity < 5", query.OpLt, 1},
		{"l.l_quantity <= 5", query.OpLe, 1},
		{"l.l_quantity > 5", query.OpGt, 1},
		{"l.l_quantity >= 5", query.OpGe, 1},
		{"l.l_quantity BETWEEN 5 AND 10", query.OpBetween, 2},
		{"l.l_quantity IN (1, 2, 3)", query.OpIn, 3},
	}
	for _, tc := range cases {
		sql := "SELECT * FROM part p, lineitem l WHERE p.p_partkey = l.l_partkey AND " + tc.where
		q, err := Parse(cat, sql)
		if err != nil {
			t.Errorf("Parse(%s): %v", tc.where, err)
			continue
		}
		if len(q.Filters) != 1 {
			t.Errorf("%s: filters = %d", tc.where, len(q.Filters))
			continue
		}
		f := q.Filters[0]
		if f.Op != tc.op || len(f.Args) != tc.nargs {
			t.Errorf("%s: parsed op=%v args=%v", tc.where, f.Op, f.Args)
		}
	}
}

func TestParseStringLiteral(t *testing.T) {
	q, err := Parse(testCatalog(), `
		SELECT * FROM part p, lineitem l
		WHERE p.p_partkey = l.l_partkey AND p.p_type = 'BRASS'`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Filters) != 1 || q.Filters[0].Op != query.OpEq {
		t.Fatalf("filters = %+v", q.Filters)
	}
	if !strings.Contains(q.Filters[0].Text, "'BRASS'") {
		t.Errorf("filter text = %q, want string literal preserved", q.Filters[0].Text)
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog()
	cases := []struct {
		sql  string
		want string
	}{
		{"FROM part", "expected SELECT"},
		{"SELECT * part", "expected FROM"},
		{"SELECT * FROM nothere", "unknown table"},
		{"SELECT * FROM part p WHERE p.nope = 1", "no column"},
		{"SELECT * FROM part p, lineitem l WHERE p_partkey = nosuch", "unknown column"},
		{"SELECT * FROM part p, lineitem l WHERE x.p_partkey = l.l_partkey", "unknown alias"},
		{"SELECT * FROM part p, part q WHERE p.p_partkey = q.p_partkey AND p_type = 1", "ambiguous"},
		{"SELECT * FROM part p WHERE p.p_partkey BETWEEN 1", "expected AND"},
		{"SELECT * FROM part p WHERE p.p_partkey IN (1, 2", "expected ',' or ')'"},
		{"SELECT * FROM part p WHERE p.p_partkey = 'abc", "unterminated string"},
		{"SELECT * FROM part p, lineitem l", "disconnected"},
		{"SELECT * FROM part p WHERE p.p_partkey = 1 EXTRA", "trailing input"},
	}
	for _, tc := range cases {
		_, err := Parse(cat, tc.sql)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", tc.sql, err, tc.want)
		}
	}
}

func TestParseNumericForms(t *testing.T) {
	cat := testCatalog()
	q, err := Parse(cat, `SELECT * FROM part p WHERE p.p_retailprice BETWEEN -1.5 AND 2e3`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := q.Filters[0]
	if f.Args[0] != -1.5 || f.Args[1] != 2000 {
		t.Errorf("args = %v, want [-1.5 2000]", f.Args)
	}
}

func TestSingleTableQuery(t *testing.T) {
	q, err := Parse(testCatalog(), "SELECT * FROM part")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Relations) != 1 || len(q.Joins) != 0 {
		t.Errorf("got %d relations, %d joins", len(q.Relations), len(q.Joins))
	}
}

func TestMarkEPPs(t *testing.T) {
	q := MustParse(testCatalog(), exampleQuery)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "o.o_orderkey = l.l_orderkey"); err != nil {
		t.Fatalf("MarkEPPs: %v", err)
	}
	if q.D() != 2 {
		t.Fatalf("D = %d, want 2", q.D())
	}
	// Reversed operand order must still match (order-insensitive).
	if q.EPPs[1] != 1 {
		t.Errorf("EPPs = %v, want second epp to be join 1", q.EPPs)
	}
	if err := q.MarkEPPs("p.p_partkey = o.o_orderkey"); err == nil {
		t.Error("MarkEPPs with non-existent predicate should fail")
	}
}

func TestJoinCanonicalDirection(t *testing.T) {
	// Join written with the later relation first must be canonicalized.
	q := MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l WHERE l.l_partkey = p.p_partkey`)
	j := q.Joins[0]
	if j.LeftRel != 0 || j.RightRel != 1 {
		t.Errorf("join rels = (%d,%d), want (0,1)", j.LeftRel, j.RightRel)
	}
	if j.Left.Alias != "p" {
		t.Errorf("canonical left = %v, want p-side", j.Left)
	}
}

func TestParseJoinOnSyntax(t *testing.T) {
	cat := testCatalog()
	q, err := Parse(cat, `
		SELECT * FROM part p
		JOIN lineitem l ON p.p_partkey = l.l_partkey
		INNER JOIN orders o ON o.o_orderkey = l.l_orderkey AND o.o_status = 1
		WHERE p.p_retailprice < 500`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Relations) != 3 {
		t.Fatalf("relations = %d", len(q.Relations))
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(q.Joins))
	}
	// ON-clause filter predicates land in Filters just like WHERE ones.
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %d, want 2 (ON extra + WHERE)", len(q.Filters))
	}
}

func TestParseJoinOnEquivalentToCommaForm(t *testing.T) {
	cat := testCatalog()
	a, err := Parse(cat, `
		SELECT * FROM part p JOIN lineitem l ON p.p_partkey = l.l_partkey`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(cat, `
		SELECT * FROM part p, lineitem l WHERE p.p_partkey = l.l_partkey`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Joins[0].String() != b.Joins[0].String() {
		t.Errorf("JOIN ON form differs: %q vs %q", a.Joins[0].String(), b.Joins[0].String())
	}
}

func TestParseJoinOnErrors(t *testing.T) {
	cat := testCatalog()
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT * FROM part p JOIN lineitem l", "expected ON"},
		{"SELECT * FROM part p INNER lineitem l ON p.p_partkey = l.l_partkey", "expected JOIN"},
		{"SELECT * FROM part p JOIN nothere n ON p.p_partkey = n.x", "unknown table"},
	}
	for _, tc := range cases {
		if _, err := Parse(cat, tc.sql); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want %q", tc.sql, err, tc.want)
		}
	}
}
