// Package sqlmini implements the small SQL dialect used by the workload:
// select-project-join(-aggregate) queries of the form
//
//	SELECT <cols|*> FROM t1 [AS] a1 [, t2 a2 | JOIN t2 a2 ON a1.x = a2.y] ...
//	WHERE a1.x = a2.y AND a1.z < 100 AND a2.w BETWEEN 1 AND 5 AND ...
//	GROUP BY a1.g, a2.h
//
// Parsing and binding produce a *query.Query against a catalog. Only
// conjunctive predicates are supported: equality joins between columns, and
// single-column filters with =, <>, <, <=, >, >=, BETWEEN and IN. GROUP BY
// adds a hash-aggregate root to every plan; aggregate expressions in the
// projection are accepted syntactically as plain columns and ignored (the
// robustness machinery consumes cardinalities, not values).
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators: , ( ) * = <> < <= > >= .
	tokKeyword // SELECT FROM WHERE AND AS BETWEEN IN
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"AS": true, "BETWEEN": true, "IN": true,
	"JOIN": true, "INNER": true, "ON": true,
	"GROUP": true, "BY": true,
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer splits an input string into tokens.
type lexer struct {
	src string
	pos int
}

// next returns the following token, or an error for malformed input.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	ch := l.src[l.pos]
	switch {
	case isIdentStart(ch):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[strings.ToUpper(text)] {
			return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil
	case ch >= '0' && ch <= '9' || ch == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '.' {
				if seenDot {
					break
				}
				// A dot not followed by a digit terminates the number
				// (it is a qualifier dot, though numbers are never
				// qualified in practice).
				if l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9' {
					break
				}
				seenDot = true
				l.pos++
				continue
			}
			if c < '0' || c > '9' {
				if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) && (isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
					l.pos += 2
					for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
						l.pos++
					}
				}
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case ch == '\'':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sqlmini: unterminated string literal at offset %d", start)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, pos: start}, nil
	case ch == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case ch == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case ch == '-':
		// Negative numeric literal.
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			l.pos++
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlmini: unexpected '-' at offset %d", start)
	case strings.ContainsRune(",()*=.;", rune(ch)):
		l.pos++
		return token{kind: tokSymbol, text: string(ch), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sqlmini: unexpected character %q at offset %d", ch, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexAll tokenizes the whole input, returning the token stream without the
// trailing EOF token.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokEOF {
			return out, nil
		}
		out = append(out, t)
	}
}
