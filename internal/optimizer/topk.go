package optimizer

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cost"
	"repro/internal/plan"
)

// K-best plan enumeration. The paper's evaluation (Sec 6.1) extended
// PostgreSQL with "a feature that obtains a least cost plan from optimizer
// which spills on a user-specified epp ... primarily needed for
// AlignedBound". This file provides that feature: a beam-search variant of
// the DP that retains the k cheapest alternatives per relation subset, from
// which BestSpillingOn filters by spill target.

// ScoredPlan pairs a plan with its cost at the enumeration location.
type ScoredPlan struct {
	// Plan is the enumerated plan.
	Plan *plan.Plan
	// Cost is Cost(Plan, at).
	Cost float64
}

// beamEntry is one retained alternative for a subset.
type beamEntry struct {
	nc                cost.NodeCost
	kind              plan.OpKind
	leftSet, rightSet int
	leftIdx, rightIdx int
	joinIDs           []int
	rel               int
}

// TopK enumerates up to k alternative plans for the full query at the
// given location, cheapest first. TopK(at, 1)[0] coincides with
// Optimize(at). k is clamped to [1, 16].
func (o *Optimizer) TopK(at cost.Location, k int) []ScoredPlan {
	if len(at) != o.q.D() {
		panic(fmt.Sprintf("optimizer: location has %d dims, query has %d epps", len(at), o.q.D()))
	}
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	size := 1 << uint(o.n)
	beams := make([][]beamEntry, size)
	for r := 0; r < o.n; r++ {
		s := 1 << uint(r)
		beams[s] = []beamEntry{{nc: o.model.ScanNC(r), kind: plan.SeqScan, rel: r}}
	}

	var crossBuf []int
	for s := 3; s < size; s++ {
		if bits.OnesCount64(uint64(s)) < 2 {
			continue
		}
		var beam []beamEntry
		worst := func() float64 {
			if len(beam) < k {
				return -1
			}
			return beam[len(beam)-1].nc.Total
		}
		insert := func(e beamEntry) {
			if w := worst(); w >= 0 && e.nc.Total >= w {
				return
			}
			pos := sort.Search(len(beam), func(i int) bool { return beam[i].nc.Total > e.nc.Total })
			beam = append(beam, beamEntry{})
			copy(beam[pos+1:], beam[pos:])
			beam[pos] = e
			if len(beam) > k {
				beam = beam[:k]
			}
		}
		inS := o.internalJoins[s]
		for s1 := (s - 1) & s; s1 > 0; s1 = (s1 - 1) & s {
			s2 := s &^ s1
			b1, b2 := beams[s1], beams[s2]
			if len(b1) == 0 || len(b2) == 0 {
				continue
			}
			crossBuf = crossBuf[:0]
			for _, id := range inS {
				j := &o.q.Joins[id]
				if (s1&(1<<uint(j.LeftRel)) != 0) != (s1&(1<<uint(j.RightRel)) != 0) {
					crossBuf = append(crossBuf, id)
				}
			}
			if len(crossBuf) == 0 {
				continue
			}
			joinIDs := append([]int(nil), crossBuf...)
			for i1, e1 := range b1 {
				for i2, e2 := range b2 {
					consider := func(kind plan.OpKind, l, r cost.NodeCost, innerRel int) {
						nc := o.model.JoinNC(kind, joinIDs, l, r, innerRel, at)
						insert(beamEntry{
							nc: nc, kind: kind,
							leftSet: s1, rightSet: s2,
							leftIdx: i1, rightIdx: i2,
							joinIDs: joinIDs,
						})
					}
					consider(plan.HashJoin, e1.nc, e2.nc, -1)
					consider(plan.MergeJoin, o.model.SortNC(e1.nc), o.model.SortNC(e2.nc), -1)
					consider(plan.NestLoop, e1.nc, e2.nc, -1)
					if bits.OnesCount64(uint64(s2)) == 1 {
						consider(plan.IndexNestLoop, e1.nc, cost.NodeCost{}, bits.TrailingZeros64(uint64(s2)))
					}
				}
			}
		}
		beams[s] = beam
	}

	full := beams[size-1]
	out := make([]ScoredPlan, 0, len(full))
	seen := map[string]bool{}
	for _, e := range full {
		root := reconstructBeam(beams, size-1, e)
		if len(o.q.GroupBy) > 0 {
			root = &plan.Node{Kind: plan.Aggregate, Rel: -1, Left: root}
		}
		p := plan.New(root)
		if seen[p.Fingerprint()] {
			continue
		}
		seen[p.Fingerprint()] = true
		total := e.nc.Total
		if len(o.q.GroupBy) > 0 {
			total = o.model.AggNC(e.nc).Total
		}
		out = append(out, ScoredPlan{Plan: p, Cost: total})
	}
	return out
}

func reconstructBeam(beams [][]beamEntry, set int, e beamEntry) *plan.Node {
	if e.kind == plan.SeqScan {
		return &plan.Node{Kind: plan.SeqScan, Rel: e.rel}
	}
	left := reconstructBeam(beams, e.leftSet, beams[e.leftSet][e.leftIdx])
	right := reconstructBeam(beams, e.rightSet, beams[e.rightSet][e.rightIdx])
	if e.kind == plan.MergeJoin {
		left = &plan.Node{Kind: plan.Sort, Rel: -1, Left: left}
		right = &plan.Node{Kind: plan.Sort, Rel: -1, Left: right}
	}
	return &plan.Node{Kind: e.kind, Rel: -1, JoinIDs: e.joinIDs, Left: left, Right: right}
}

// BestSpillingOn returns the cheapest of the k enumerated plans whose
// spill-node identification (under the learned set) selects the join
// predicate of ESS dimension dim, together with its cost at the location.
// ok is false if no such plan is found within the beam.
func (o *Optimizer) BestSpillingOn(at cost.Location, dim, k int, learned map[int]bool) (ScoredPlan, bool) {
	epps := o.q.EPPs
	for _, sp := range o.TopK(at, k) {
		tgt, has := sp.Plan.SpillTarget(epps, learned)
		if !has {
			continue
		}
		if d, isEPP := o.q.IsEPP(tgt.JoinID); isEPP && d == dim {
			return sp, true
		}
	}
	return ScoredPlan{}, false
}
